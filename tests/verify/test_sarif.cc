/**
 * @file
 * Tests for the SARIF 2.1.0 exporter: document structure, rule catalog
 * embedding, result attribution and JSON string escaping. Assertions
 * are substring-based — the repo deliberately has no JSON parser — but
 * run_all.sh additionally validates the emitted file with python3's
 * json module when available.
 */

#include "verify/sarif.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "sched/crhcs.h"
#include "sparse/generators.h"
#include "verify/mutate.h"
#include "verify/rules.h"

namespace chason {
namespace verify {
namespace {

VerifyResult
corruptedResult(const sparse::CsrMatrix &a, Corruption kind)
{
    sched::Schedule sch =
        sched::CrhcsScheduler(sched::SchedConfig{}).schedule(a);
    corruptSchedule(sch, kind);
    VerifyOptions options;
    options.matrix = &a;
    return verifySchedule(sch, options);
}

TEST(Sarif, EmptyLogIsAWellFormedDocument)
{
    const SarifLog log;
    const std::string json = log.toJson();
    EXPECT_NE(json.find("\"version\": \"2.1.0\""), std::string::npos);
    EXPECT_NE(json.find("sarif-2.1.0.json"), std::string::npos);
    EXPECT_NE(json.find("\"name\": \"chason_verify\""), std::string::npos);
    EXPECT_NE(json.find("\"results\": []"), std::string::npos);
}

TEST(Sarif, EmbedsTheFullRuleCatalog)
{
    const SarifLog log;
    const std::string json = log.toJson();
    std::size_t count = 0;
    const RuleInfo *rules = ruleCatalog(&count);
    for (std::size_t i = 0; i < count; ++i) {
        EXPECT_NE(json.find(std::string("\"id\": \"") + rules[i].id +
                            "\""),
                  std::string::npos)
            << rules[i].id << " missing from driver.rules";
    }
}

TEST(Sarif, ResultsCarryRuleLevelAndLocations)
{
    Rng rng(11);
    const sparse::CsrMatrix a =
        sparse::zipfRows(1500, 1500, 12000, 1.25, rng);
    const VerifyResult result =
        corruptedResult(a, Corruption::kRawDistance);
    ASSERT_FALSE(result.clean());

    SarifLog log;
    log.addResult(result, "schedules/test.crhcs.sched");
    EXPECT_EQ(log.size(), result.diagnostics.size());

    const std::string json = log.toJson();
    EXPECT_NE(json.find("\"ruleId\": \"CHV004\""), std::string::npos);
    EXPECT_NE(json.find("\"level\": \"error\""), std::string::npos);
    EXPECT_NE(json.find("\"uri\": \"schedules/test.crhcs.sched\""),
              std::string::npos);
    EXPECT_NE(json.find("logicalLocations"), std::string::npos);
    EXPECT_NE(json.find("fullyQualifiedName"), std::string::npos);
    // ruleIndex must reference the catalog position of CHV004 (3).
    EXPECT_NE(json.find("\"ruleIndex\": 3"), std::string::npos);
}

TEST(Sarif, AggregatesSeveralArtifactsIntoOneRun)
{
    Rng rng(12);
    const sparse::CsrMatrix a =
        sparse::zipfRows(1500, 1500, 12000, 1.25, rng);

    SarifLog log;
    log.addResult(corruptedResult(a, Corruption::kValueTamper),
                  "schedules/one.sched");
    log.addResult(corruptedResult(a, Corruption::kDropElement),
                  "schedules/two.sched");
    ASSERT_GE(log.size(), 2u);

    const std::string json = log.toJson();
    EXPECT_NE(json.find("schedules/one.sched"), std::string::npos);
    EXPECT_NE(json.find("schedules/two.sched"), std::string::npos);
    // Exactly one run aggregates everything.
    EXPECT_EQ(json.find("\"runs\""), json.rfind("\"runs\""));
}

TEST(Sarif, JsonEscapingHandlesControlAndQuoteCharacters)
{
    EXPECT_EQ(jsonEscape("plain"), "plain");
    EXPECT_EQ(jsonEscape("a\"b"), "a\\\"b");
    EXPECT_EQ(jsonEscape("a\\b"), "a\\\\b");
    EXPECT_EQ(jsonEscape("a\nb"), "a\\nb");
    EXPECT_EQ(jsonEscape("a\tb"), "a\\tb");
    EXPECT_EQ(jsonEscape(std::string(1, '\x01')), "\\u0001");
}

TEST(Sarif, ArtifactUriSpacesAreEscaped)
{
    Rng rng(13);
    const sparse::CsrMatrix a =
        sparse::zipfRows(1500, 1500, 12000, 1.25, rng);
    SarifLog log;
    log.addResult(corruptedResult(a, Corruption::kValueTamper),
                  "my schedules/a b.sched");
    const std::string json = log.toJson();
    EXPECT_NE(json.find("my%20schedules/a%20b.sched"), std::string::npos);
    EXPECT_EQ(json.find("my schedules"), std::string::npos);
}

} // namespace
} // namespace verify
} // namespace chason
