/**
 * @file
 * Tests for the multi-run SARIF layer underneath chason_lint: run
 * merging into one document, stable rule de-duplication, tool
 * metadata (semanticVersion + properties.revision), fingerprint
 * stability and extraction, and the baseline diff semantics the
 * ratchet is built on (new-finding detection, shrink-only updates).
 * Substring-based like test_sarif.cc; run_all.sh additionally
 * validates emitted files with python3's json module.
 */

#include "verify/sarif.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>
#include <vector>

namespace chason {
namespace verify {
namespace {

std::size_t
countOf(const std::string &haystack, const std::string &needle)
{
    std::size_t count = 0;
    std::size_t pos = 0;
    while ((pos = haystack.find(needle, pos)) != std::string::npos) {
        ++count;
        pos += needle.size();
    }
    return count;
}

SarifRun
lintRun(const std::string &tool,
        const std::vector<SarifFinding> &findings)
{
    SarifRun run;
    run.toolName = tool;
    run.toolVersion = "1.0.0";
    run.semanticVersion = "1.0.0";
    run.informationUri = "https://github.com/chason-sim/chason";
    run.revision = "abc1234";
    run.addRule({"CHL001", "UnbalancedTraceSpan", "span dies at once",
                 "", "error"});
    run.addRule({"CHL002", "HotLoopAllocation", "growth in hot loop",
                 "", "error"});
    run.results = findings;
    return run;
}

SarifFinding
finding(const std::string &rule, const std::string &uri,
        const std::string &message, int line)
{
    SarifFinding f;
    f.ruleId = rule;
    f.level = "error";
    f.message = message;
    f.uri = uri;
    f.line = line;
    f.fingerprint = lintFingerprint(rule, uri, message);
    return f;
}

TEST(SarifMerge, TwoRunsShareOneRunsArray)
{
    SarifDocument doc;
    doc.addRun(lintRun("chason_lint",
                       {finding("CHL001", "a.cc", "m1", 4)}));
    doc.addRun(lintRun("clang-tidy",
                       {finding("CHL002", "b.cc", "m2", 9)}));
    ASSERT_EQ(doc.runCount(), 2u);
    EXPECT_EQ(doc.resultCount(), 2u);

    const std::string json = doc.toJson();
    // One document, one "runs" key, both drivers inside it.
    EXPECT_EQ(countOf(json, "\"runs\""), 1u);
    EXPECT_NE(json.find("\"name\": \"chason_lint\""), std::string::npos);
    EXPECT_NE(json.find("\"name\": \"clang-tidy\""), std::string::npos);
    EXPECT_NE(json.find("\"ruleId\": \"CHL001\""), std::string::npos);
    EXPECT_NE(json.find("\"ruleId\": \"CHL002\""), std::string::npos);
}

TEST(SarifMerge, RuleDeDupIsStable)
{
    SarifRun run;
    const int a = run.addRule({"CHL001", "A", "first", "", "error"});
    const int b = run.addRule({"CHL002", "B", "second", "", "error"});
    // Re-adding an id returns the original index and does not grow
    // the table — results referencing it keep a stable ruleIndex.
    const int a2 = run.addRule({"CHL001", "A", "changed text", "",
                                "warning"});
    EXPECT_EQ(a, 0);
    EXPECT_EQ(b, 1);
    EXPECT_EQ(a2, a);
    EXPECT_EQ(run.rules.size(), 2u);
    EXPECT_EQ(run.ruleIndexOf("CHL002"), 1);
    EXPECT_EQ(run.ruleIndexOf("CHL999"), -1);
}

TEST(SarifMerge, ResultsReferenceTheirRuleIndex)
{
    SarifDocument doc;
    doc.addRun(lintRun("chason_lint",
                       {finding("CHL002", "x.cc", "grew", 3)}));
    const std::string json = doc.toJson();
    // CHL002 is the second rule of the run's table.
    EXPECT_NE(json.find("\"ruleIndex\": 1"), std::string::npos);
    EXPECT_NE(json.find("\"region\": {\"startLine\": 3}"),
              std::string::npos);
}

TEST(SarifMerge, ToolMetadataIsEmittedPerRun)
{
    SarifDocument doc;
    doc.addRun(lintRun("chason_lint", {}));
    const std::string json = doc.toJson();
    EXPECT_NE(json.find("\"semanticVersion\": \"1.0.0\""),
              std::string::npos);
    EXPECT_NE(json.find("\"properties\": {\"revision\": \"abc1234\"}"),
              std::string::npos);
    EXPECT_NE(json.find("\"informationUri\""), std::string::npos);
}

TEST(SarifMerge, VerifyFacadeCarriesMetadataToo)
{
    const SarifLog log;
    const std::string json = log.toJson();
    EXPECT_NE(json.find("\"name\": \"chason_verify\""),
              std::string::npos);
    EXPECT_NE(json.find("\"semanticVersion\""), std::string::npos);
    // The revision value depends on the checkout; only the key shape
    // is asserted.
    EXPECT_NE(json.find("\"properties\": {\"revision\": \""),
              std::string::npos);
}

TEST(SarifMerge, FingerprintIsStableAndLineFree)
{
    const std::string fp1 = lintFingerprint("CHL001", "a.cc", "msg");
    const std::string fp2 = lintFingerprint("CHL001", "a.cc", "msg");
    EXPECT_EQ(fp1, fp2);
    EXPECT_EQ(fp1.size(), 16u);
    // Identity excludes the line on purpose: two findings differing
    // only by position hash identically, so unrelated edits that shift
    // code do not churn the baseline...
    SarifFinding at_4 = finding("CHL001", "a.cc", "msg", 4);
    SarifFinding at_90 = finding("CHL001", "a.cc", "msg", 90);
    EXPECT_EQ(at_4.fingerprint, at_90.fingerprint);
    // ...but any of rule, file or message changes the identity.
    EXPECT_NE(fp1, lintFingerprint("CHL002", "a.cc", "msg"));
    EXPECT_NE(fp1, lintFingerprint("CHL001", "b.cc", "msg"));
    EXPECT_NE(fp1, lintFingerprint("CHL001", "a.cc", "other"));
}

TEST(SarifMerge, FingerprintsRoundTripThroughTheDocument)
{
    SarifDocument doc;
    doc.addRun(lintRun("chason_lint",
                       {finding("CHL001", "a.cc", "one", 1),
                        finding("CHL002", "a.cc", "two", 2)}));
    doc.addRun(lintRun("clang-tidy",
                       {finding("CHL002", "b.cc", "three", 3)}));
    const std::vector<std::string> fps =
        sarifFingerprints(doc.toJson());
    ASSERT_EQ(fps.size(), 3u);
    EXPECT_EQ(fps[0], lintFingerprint("CHL001", "a.cc", "one"));
    EXPECT_EQ(fps[1], lintFingerprint("CHL002", "a.cc", "two"));
    EXPECT_EQ(fps[2], lintFingerprint("CHL002", "b.cc", "three"));
    // A finding without a fingerprint emits no partialFingerprints.
    SarifFinding bare;
    bare.ruleId = "CHL001";
    bare.message = "no fp";
    bare.uri = "c.cc";
    SarifDocument doc2;
    doc2.addRun(lintRun("chason_lint", {bare}));
    EXPECT_TRUE(sarifFingerprints(doc2.toJson()).empty());
}

/** The ratchet's set algebra, exactly as chason_lint computes it. */
struct BaselineDiff
{
    std::size_t fresh = 0;
    std::size_t stale = 0;
};

BaselineDiff
diffAgainstBaseline(const std::string &currentJson,
                    const std::string &baselineJson)
{
    const auto cur_v = sarifFingerprints(currentJson);
    const auto base_v = sarifFingerprints(baselineJson);
    const std::set<std::string> cur(cur_v.begin(), cur_v.end());
    const std::set<std::string> base(base_v.begin(), base_v.end());
    BaselineDiff d;
    for (const std::string &fp : cur)
        d.fresh += base.count(fp) == 0 ? 1 : 0;
    for (const std::string &fp : base)
        d.stale += cur.count(fp) == 0 ? 1 : 0;
    return d;
}

TEST(SarifMerge, NewFindingIsDetectedAgainstTheBaseline)
{
    SarifDocument baseline;
    baseline.addRun(lintRun("chason_lint",
                            {finding("CHL001", "a.cc", "old", 1)}));
    SarifDocument current;
    current.addRun(lintRun("chason_lint",
                           {finding("CHL001", "a.cc", "old", 1),
                            finding("CHL002", "b.cc", "new", 2)}));
    const BaselineDiff d =
        diffAgainstBaseline(current.toJson(), baseline.toJson());
    EXPECT_EQ(d.fresh, 1u);
    EXPECT_EQ(d.stale, 0u);
}

TEST(SarifMerge, RatchetShrinkLeavesNoNewFindings)
{
    SarifDocument baseline;
    baseline.addRun(lintRun("chason_lint",
                            {finding("CHL001", "a.cc", "old", 1),
                             finding("CHL002", "b.cc", "fixed", 2)}));
    SarifDocument current;
    current.addRun(lintRun("chason_lint",
                           {finding("CHL001", "a.cc", "old", 1)}));
    const BaselineDiff d =
        diffAgainstBaseline(current.toJson(), baseline.toJson());
    // A fixed finding is ratchet slack, never a failure: the baseline
    // may be rewritten (it shrinks), and nothing is "new".
    EXPECT_EQ(d.fresh, 0u);
    EXPECT_EQ(d.stale, 1u);
}

TEST(SarifMerge, LineShiftDoesNotReadAsANewFinding)
{
    SarifDocument baseline;
    baseline.addRun(lintRun("chason_lint",
                            {finding("CHL001", "a.cc", "msg", 10)}));
    SarifDocument current;
    current.addRun(lintRun("chason_lint",
                           {finding("CHL001", "a.cc", "msg", 57)}));
    const BaselineDiff d =
        diffAgainstBaseline(current.toJson(), baseline.toJson());
    EXPECT_EQ(d.fresh, 0u);
    EXPECT_EQ(d.stale, 0u);
}

} // namespace
} // namespace verify
} // namespace chason
