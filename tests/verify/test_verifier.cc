/**
 * @file
 * Tests for the static schedule verifier: clean schedules pass, each
 * injected defect class is flagged under its own CHV rule with a
 * populated schedule location, and the reporting knobs (per-rule cap,
 * matrix-less mode) behave as documented.
 */

#include "verify/verifier.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "common/rng.h"
#include "sched/crhcs.h"
#include "sched/pe_aware.h"
#include "sched/row_based.h"
#include "sparse/generators.h"
#include "verify/mutate.h"
#include "verify/rules.h"

namespace chason {
namespace verify {
namespace {

sparse::CsrMatrix
sampleMatrix(std::uint64_t seed)
{
    Rng rng(seed);
    return sparse::zipfRows(1500, 1500, 12000, 1.25, rng);
}

bool
hasRule(const VerifyResult &result, const char *ruleId)
{
    return std::any_of(result.diagnostics.begin(),
                       result.diagnostics.end(),
                       [ruleId](const Diagnostic &d) {
                           return d.ruleId == ruleId;
                       });
}

TEST(Verifier, AllSchedulersProduceCleanSchedules)
{
    const sparse::CsrMatrix a = sampleMatrix(1);
    sched::SchedConfig serial;
    serial.migrationDepth = 0;

    const sched::Schedule schedules[] = {
        sched::RowBasedScheduler(serial).schedule(a),
        sched::PeAwareScheduler(serial).schedule(a),
        sched::CrhcsScheduler(sched::SchedConfig{}).schedule(a),
    };
    for (const sched::Schedule &sch : schedules) {
        SCOPED_TRACE(sch.scheduler);
        VerifyOptions options;
        options.matrix = &a;
        const VerifyResult result = verifySchedule(sch, options);
        EXPECT_TRUE(result.clean()) << result.summary();
        EXPECT_EQ(result.warnings, 0u);
        EXPECT_EQ(result.checkedSlots, a.nnz());
        EXPECT_EQ(result.firstError(), nullptr);
    }
}

TEST(Verifier, EachCorruptionFlagsItsOwnRule)
{
    const sparse::CsrMatrix a = sampleMatrix(2);
    const sched::Schedule clean =
        sched::CrhcsScheduler(sched::SchedConfig{}).schedule(a);

    const Corruption kinds[] = {
        Corruption::kRawDistance,
        Corruption::kDuplicateElement,
        Corruption::kDropElement,
        Corruption::kValueTamper,
    };
    for (Corruption kind : kinds) {
        SCOPED_TRACE(corruptionName(kind));
        sched::Schedule corrupted = clean;
        ASSERT_TRUE(corruptSchedule(corrupted, kind));

        VerifyOptions options;
        options.matrix = &a;
        const VerifyResult result = verifySchedule(corrupted, options);
        EXPECT_FALSE(result.clean());
        EXPECT_TRUE(hasRule(result, expectedRule(kind)))
            << "expected " << expectedRule(kind) << ", got: "
            << result.summary();
    }
}

TEST(Verifier, DiagnosticsCarryScheduleCoordinates)
{
    const sparse::CsrMatrix a = sampleMatrix(3);
    sched::Schedule sch =
        sched::CrhcsScheduler(sched::SchedConfig{}).schedule(a);
    ASSERT_TRUE(corruptSchedule(sch, Corruption::kRawDistance));

    VerifyOptions options;
    options.matrix = &a;
    const VerifyResult result = verifySchedule(sch, options);
    ASSERT_FALSE(result.clean());
    const Diagnostic *error = result.firstError();
    ASSERT_NE(error, nullptr);
    EXPECT_EQ(error->ruleId, rule::kRawHazard);
    EXPECT_GE(error->loc.phase, 0);
    EXPECT_GE(error->loc.channel, 0);
    EXPECT_GE(error->loc.beat, 0);
    EXPECT_GE(error->loc.pe, 0);
    // The rendered location reads like a path into the schedule.
    EXPECT_NE(error->loc.qualifiedName().find("channel["),
              std::string::npos);
    EXPECT_NE(toString(*error).find("CHV004"), std::string::npos);
}

TEST(Verifier, WrongSlotSourceFlagsLaneMapping)
{
    const sparse::CsrMatrix a = sampleMatrix(4);
    sched::Schedule sch =
        sched::PeAwareScheduler(sched::SchedConfig{}).schedule(a);

    // Point one slot's source wires at the neighbouring PE: the element
    // would be accumulated in the wrong lane's ScUG.
    const unsigned pes = sch.config.pesPerGroup();
    bool tampered = false;
    for (auto &phase : sch.phases) {
        for (auto &ch : phase.channels) {
            for (auto &beat : ch.beats) {
                for (unsigned p = 0; p < pes && !tampered; ++p) {
                    sched::Slot &slot = beat.slots[p];
                    if (!slot.valid)
                        continue;
                    slot.peSrc = static_cast<std::uint8_t>(
                        (slot.peSrc + 1) % pes);
                    tampered = true;
                }
                if (tampered)
                    break;
            }
            if (tampered)
                break;
        }
        if (tampered)
            break;
    }
    ASSERT_TRUE(tampered);

    VerifyOptions options;
    options.matrix = &a;
    const VerifyResult result = verifySchedule(sch, options);
    EXPECT_FALSE(result.clean());
    EXPECT_TRUE(hasRule(result, rule::kLaneMapping)) << result.summary();
}

TEST(Verifier, SwappedPhasesFlagPhaseOrder)
{
    const sparse::CsrMatrix a = sampleMatrix(5);
    sched::SchedConfig cfg;
    cfg.windowCols = 256; // force several column windows
    sched::Schedule sch = sched::CrhcsScheduler(cfg).schedule(a);
    ASSERT_GE(sch.phases.size(), 2u);
    std::swap(sch.phases[0], sch.phases[1]);

    VerifyOptions options;
    options.matrix = &a;
    const VerifyResult result = verifySchedule(sch, options);
    // Out-of-order phases are suspicious but functionally simulatable,
    // so the rule reports a warning; a *duplicated* phase is the error
    // case (tested via completeness: its elements appear twice).
    EXPECT_GT(result.warnings, 0u);
    EXPECT_TRUE(hasRule(result, rule::kPhaseOrder)) << result.summary();
}

TEST(Verifier, DuplicatedPhaseIsAnError)
{
    const sparse::CsrMatrix a = sampleMatrix(5);
    sched::SchedConfig cfg;
    cfg.windowCols = 256;
    sched::Schedule sch = sched::CrhcsScheduler(cfg).schedule(a);
    ASSERT_GE(sch.phases.size(), 2u);
    sch.phases[1] = sch.phases[0]; // same (pass, window) twice

    VerifyOptions options;
    options.matrix = &a;
    const VerifyResult result = verifySchedule(sch, options);
    EXPECT_FALSE(result.clean());
    EXPECT_TRUE(hasRule(result, rule::kPhaseOrder)) << result.summary();
}

TEST(Verifier, ScugCapacityRuleUsesCallerLimit)
{
    const sparse::CsrMatrix a = sampleMatrix(6);
    const sched::Schedule sch =
        sched::CrhcsScheduler(sched::SchedConfig{}).schedule(a);

    VerifyOptions options;
    options.matrix = &a;
    // Physical limit far above the schedule's needs: clean.
    options.capacityRowsPerLane = 1u << 20;
    EXPECT_TRUE(verifySchedule(sch, options).clean());

    // One row per lane per pass: this matrix needs more.
    options.capacityRowsPerLane = 1;
    const VerifyResult result = verifySchedule(sch, options);
    EXPECT_FALSE(result.clean());
    EXPECT_TRUE(hasRule(result, rule::kScugCapacity)) << result.summary();
}

TEST(Verifier, WithoutMatrixSkipsCompletenessButKeepsHazards)
{
    const sparse::CsrMatrix a = sampleMatrix(7);
    const sched::Schedule clean =
        sched::CrhcsScheduler(sched::SchedConfig{}).schedule(a);

    // A tampered value is invisible without the ground-truth matrix...
    sched::Schedule tampered = clean;
    ASSERT_TRUE(corruptSchedule(tampered, Corruption::kValueTamper));
    EXPECT_TRUE(verifySchedule(tampered).clean());

    // ...but a RAW hazard is intrinsic to the schedule itself.
    sched::Schedule hazardous = clean;
    ASSERT_TRUE(corruptSchedule(hazardous, Corruption::kRawDistance));
    const VerifyResult result = verifySchedule(hazardous);
    EXPECT_FALSE(result.clean());
    EXPECT_TRUE(hasRule(result, rule::kRawHazard));
}

TEST(Verifier, PerRuleCapSuppressesButStillCounts)
{
    const sparse::CsrMatrix a = sampleMatrix(8);
    sched::Schedule sch =
        sched::CrhcsScheduler(sched::SchedConfig{}).schedule(a);
    // Tamper several distinct elements (different seeds pick different
    // sites) so CHV003 fires more than once.
    for (std::uint64_t seed = 1; seed <= 6; ++seed)
        corruptSchedule(sch, Corruption::kValueTamper, seed);

    VerifyOptions options;
    options.matrix = &a;
    options.maxDiagnosticsPerRule = 2;
    const VerifyResult capped = verifySchedule(sch, options);
    ASSERT_FALSE(capped.clean());

    options.maxDiagnosticsPerRule = 0; // unlimited
    const VerifyResult full = verifySchedule(sch, options);
    EXPECT_EQ(capped.errors, full.errors); // tallies are not capped
    EXPECT_LE(capped.diagnostics.size(), full.diagnostics.size());
    if (full.errors > 2)
        EXPECT_GT(capped.suppressed, 0u);
}

TEST(Verifier, RuleCatalogIsCompleteAndOrdered)
{
    std::size_t count = 0;
    const RuleInfo *rules = ruleCatalog(&count);
    ASSERT_EQ(count, 18u);
    for (std::size_t i = 0; i < count; ++i) {
        EXPECT_STREQ(rules[i].id, findRule(rules[i].id)->id);
        EXPECT_NE(rules[i].summary, nullptr);
        EXPECT_NE(rules[i].paperRef, nullptr);
        if (i > 0)
            EXPECT_LT(std::string(rules[i - 1].id), rules[i].id);
    }
    EXPECT_EQ(findRule("CHV999"), nullptr);
}

TEST(VerifierDeath, ValidateScheduleStillPanicsOnIllegalSchedule)
{
    const sparse::CsrMatrix a = sampleMatrix(9);
    sched::Schedule sch =
        sched::CrhcsScheduler(sched::SchedConfig{}).schedule(a);
    sched::validateSchedule(sch, a); // legal: no panic
    ASSERT_TRUE(corruptSchedule(sch, Corruption::kDuplicateElement));
    EXPECT_DEATH(sched::validateSchedule(sch, a), "CHV002");
}

} // namespace
} // namespace verify
} // namespace chason
