/**
 * @file
 * Differential tests: the static verifier's verdict must be consistent
 * with what the cycle simulator actually computes. A verifier-clean
 * schedule simulates to the double-precision reference within float
 * tolerance; a schedule corrupted in a value-changing way is both
 * flagged by the verifier and functionally wrong in simulation — i.e.
 * the verifier predicts simulator correctness without running it.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "arch/chason_accel.h"
#include "arch/serpens_accel.h"
#include "common/rng.h"
#include "sched/crhcs.h"
#include "sched/pe_aware.h"
#include "sched/row_based.h"
#include "sparse/generators.h"
#include "verify/mutate.h"
#include "verify/verifier.h"

namespace chason {
namespace verify {
namespace {

bool
matchesReference(const std::vector<float> &y,
                 const std::vector<double> &ref)
{
    for (std::size_t r = 0; r < ref.size(); ++r) {
        const double tol = 1e-4 * std::max(1.0, std::abs(ref[r]));
        if (std::abs(static_cast<double>(y[r]) - ref[r]) > tol)
            return false;
    }
    return true;
}

TEST(Differential, CleanSchedulesSimulateCorrectlyAllSchedulers)
{
    Rng rng(21);
    const sparse::CsrMatrix a =
        sparse::zipfRows(1400, 1400, 11000, 1.3, rng);
    const std::vector<float> x = sparse::randomVector(a.cols(), rng);
    const std::vector<double> ref = sparse::spmvReference(a, x);

    struct Case
    {
        const char *label;
        sched::Schedule schedule;
        bool migrated;
    };
    sched::SchedConfig serial;
    serial.migrationDepth = 0;
    Case cases[] = {
        {"row-based", sched::RowBasedScheduler(serial).schedule(a),
         false},
        {"pe-aware", sched::PeAwareScheduler(serial).schedule(a), false},
        {"crhcs",
         sched::CrhcsScheduler(sched::SchedConfig{}).schedule(a), true},
    };

    for (const Case &c : cases) {
        SCOPED_TRACE(c.label);
        VerifyOptions options;
        options.matrix = &a;
        const VerifyResult verdict =
            verifySchedule(c.schedule, options);
        ASSERT_TRUE(verdict.clean()) << verdict.summary();

        arch::ArchConfig cfg;
        cfg.sched = c.schedule.config;
        const arch::RunResult run = c.migrated
            ? arch::ChasonAccelerator(cfg).run(c.schedule, x)
            : arch::SerpensAccelerator(cfg).run(c.schedule, x);
        EXPECT_TRUE(matchesReference(run.y, ref));
    }
}

TEST(Differential, ValueCorruptionIsFlaggedAndChangesTheOutputBits)
{
    Rng rng(22);
    const sparse::CsrMatrix a =
        sparse::zipfRows(1400, 1400, 11000, 1.3, rng);
    const std::vector<float> x = sparse::randomVector(a.cols(), rng);

    arch::ArchConfig cfg;
    const sched::Schedule clean =
        sched::CrhcsScheduler(cfg.sched).schedule(a);
    sched::Schedule tampered = clean;
    // A mantissa-bit flip is far below any float tolerance, so compare
    // the corrupted simulation bit-exactly against the clean one — the
    // same precision at which the verifier (CHV003) caught it.
    ASSERT_TRUE(
        corruptSchedule(tampered, Corruption::kValueTamper, 1));

    VerifyOptions options;
    options.matrix = &a;
    EXPECT_TRUE(verifySchedule(clean, options).clean());
    const VerifyResult verdict = verifySchedule(tampered, options);
    EXPECT_FALSE(verdict.clean());

    const arch::ChasonAccelerator accel(cfg);
    const arch::RunResult before = accel.run(clean, x);
    const arch::RunResult after = accel.run(tampered, x);
    EXPECT_NE(before.y, after.y);
}

TEST(Differential, DroppedElementIsFlaggedAndChangesTheResult)
{
    Rng rng(23);
    const sparse::CsrMatrix a =
        sparse::zipfRows(1400, 1400, 11000, 1.3, rng);
    const std::vector<float> x = sparse::randomVector(a.cols(), rng);
    const std::vector<double> ref = sparse::spmvReference(a, x);

    arch::ArchConfig cfg;
    sched::Schedule sch = sched::CrhcsScheduler(cfg.sched).schedule(a);
    for (std::uint64_t seed = 1; seed <= 8; ++seed)
        ASSERT_TRUE(corruptSchedule(sch, Corruption::kDropElement, seed));

    VerifyOptions options;
    options.matrix = &a;
    const VerifyResult verdict = verifySchedule(sch, options);
    EXPECT_FALSE(verdict.clean());

    const arch::RunResult run = arch::ChasonAccelerator(cfg).run(sch, x);
    EXPECT_FALSE(matchesReference(run.y, ref));
}

} // namespace
} // namespace verify
} // namespace chason
