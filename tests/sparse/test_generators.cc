/**
 * @file
 * Unit and property tests for the synthetic generators.
 */

#include "sparse/generators.h"

#include <gtest/gtest.h>

namespace chason {
namespace sparse {
namespace {

TEST(ErdosRenyi, ShapeAndNnz)
{
    Rng rng(1);
    const CsrMatrix a = erdosRenyi(200, 300, 2000, rng);
    EXPECT_EQ(a.rows(), 200u);
    EXPECT_EQ(a.cols(), 300u);
    EXPECT_LE(a.nnz(), 2000u);
    EXPECT_GT(a.nnz(), 1900u); // few duplicate collisions at 3% density
}

TEST(ErdosRenyi, Deterministic)
{
    Rng a_rng(42), b_rng(42);
    const CsrMatrix a = erdosRenyi(100, 100, 500, a_rng);
    const CsrMatrix b = erdosRenyi(100, 100, 500, b_rng);
    EXPECT_EQ(a.colIdx(), b.colIdx());
    EXPECT_EQ(a.values(), b.values());
}

TEST(Rmat, PowerLawSkew)
{
    Rng rng(2);
    const CsrMatrix a = rmat(12, 40000, rng);
    EXPECT_EQ(a.rows(), 4096u);
    // Heavy-tailed: the max row far exceeds the mean (~10).
    EXPECT_GT(a.maxRowNnz(), 60u);
}

TEST(PreferentialAttachment, HubColumnsAndHeavyRows)
{
    Rng rng(3);
    const CsrMatrix a = preferentialAttachment(2000, 8, rng);
    EXPECT_EQ(a.rows(), 2000u);
    const std::size_t mean = a.nnz() / a.rows();
    EXPECT_GE(mean, 4u);
    // Out-degree tail: some row well above the mean.
    EXPECT_GT(a.maxRowNnz(), 4 * mean);
    // In-degree hubs: early nodes collect many edges.
    const CsrMatrix t = a.transpose();
    EXPECT_GT(t.maxRowNnz(), 20 * mean);
}

TEST(Banded, StructureWithinBand)
{
    Rng rng(4);
    const std::uint32_t band = 3;
    const CsrMatrix a = banded(50, band, 0.5, rng);
    for (std::uint32_t r = 0; r < a.rows(); ++r) {
        for (std::size_t i = a.rowPtr()[r]; i < a.rowPtr()[r + 1]; ++i) {
            const std::int64_t delta =
                static_cast<std::int64_t>(a.colIdx()[i]) - r;
            EXPECT_LE(std::abs(delta), band);
        }
        // Diagonal always present.
        EXPECT_GE(a.rowNnz(r), 1u);
    }
}

TEST(ArrowBanded, DenseRowsPresent)
{
    Rng rng(5);
    const CsrMatrix a = arrowBanded(256, 4, 0.3, 3, rng);
    unsigned dense_rows = 0;
    for (std::uint32_t r = 0; r < a.rows(); ++r) {
        if (a.rowNnz(r) == a.cols())
            ++dense_rows;
    }
    EXPECT_EQ(dense_rows, 3u);
    EXPECT_EQ(a.maxRowNnz(), a.cols());
}

TEST(ArrowBanded, ZeroDenseRowsEqualsBanded)
{
    Rng rng(6);
    const CsrMatrix a = arrowBanded(128, 4, 0.3, 0, rng);
    EXPECT_LT(a.maxRowNnz(), 10u);
}

TEST(BlockDiagonal, BlockResidency)
{
    Rng rng(7);
    const std::uint32_t block = 16;
    const CsrMatrix a = blockDiagonal(64, block, 0.5, 0.1, rng);
    for (std::uint32_t r = 0; r < a.rows(); ++r) {
        for (std::size_t i = a.rowPtr()[r]; i < a.rowPtr()[r + 1]; ++i) {
            // Entries live in the row's block or the immediately next one.
            const std::uint32_t row_block = r / block;
            const std::uint32_t col_block = a.colIdx()[i] / block;
            EXPECT_LE(col_block, row_block + 1);
            EXPECT_GE(col_block, row_block); // own or next block only
        }
    }
}

TEST(Mycielskian, ExactCountsMatchTable2)
{
    // M12 is the paper's MY matrix: 3071 vertices, 407200 stored entries.
    const CsrMatrix m12 = mycielskian(12);
    EXPECT_EQ(m12.rows(), 3071u);
    EXPECT_EQ(m12.cols(), 3071u);
    EXPECT_EQ(m12.nnz(), 407200u);
    EXPECT_NEAR(m12.densityPercent(), 4.31, 0.02);
}

TEST(Mycielskian, SmallOrdersExact)
{
    // n_k = 2 n_{k-1} + 1, e_k = 3 e_{k-1} + n_{k-1}; nnz = 2 e.
    const CsrMatrix m2 = mycielskian(2);
    EXPECT_EQ(m2.rows(), 2u);
    EXPECT_EQ(m2.nnz(), 2u);
    const CsrMatrix m3 = mycielskian(3); // the 5-cycle
    EXPECT_EQ(m3.rows(), 5u);
    EXPECT_EQ(m3.nnz(), 10u);
    const CsrMatrix m4 = mycielskian(4); // the Grötzsch graph
    EXPECT_EQ(m4.rows(), 11u);
    EXPECT_EQ(m4.nnz(), 40u);
}

TEST(Mycielskian, Symmetric)
{
    const CsrMatrix m5 = mycielskian(5);
    const CsrMatrix t = m5.transpose();
    EXPECT_EQ(m5.colIdx(), t.colIdx());
    EXPECT_EQ(m5.values(), t.values());
}

TEST(Poisson2d, StencilCounts)
{
    const CsrMatrix a = poisson2d(10);
    EXPECT_EQ(a.rows(), 100u);
    // 5-point stencil: nnz = 5*n - 4*grid boundary corrections.
    EXPECT_EQ(a.nnz(), 5u * 100 - 4 * 10);
    // Interior row has 5 entries.
    EXPECT_EQ(a.rowNnz(5 * 10 + 5), 5u);
    // Corner has 3.
    EXPECT_EQ(a.rowNnz(0), 3u);
}

TEST(ZipfRows, SkewGrowsWithS)
{
    Rng rng1(8), rng2(9);
    const CsrMatrix mild = zipfRows(1024, 1024, 20000, 1.1, rng1);
    const CsrMatrix wild = zipfRows(1024, 1024, 20000, 1.8, rng2);
    EXPECT_GT(wild.maxRowNnz(), mild.maxRowNnz());
}

TEST(RandomVector, RangeAndDeterminism)
{
    Rng rng(10);
    const std::vector<float> v = randomVector(100, rng);
    ASSERT_EQ(v.size(), 100u);
    for (float e : v) {
        EXPECT_GE(e, 0.1f);
        EXPECT_LT(e, 1.0f);
    }
    Rng rng2(10);
    EXPECT_EQ(randomVector(100, rng2), v);
}

TEST(DrawValue, Distributions)
{
    Rng rng(11);
    EXPECT_EQ(drawValue(rng, ValueDistribution::Ones), 1.0f);
    for (int i = 0; i < 100; ++i) {
        const float p = drawValue(rng, ValueDistribution::PositiveUniform);
        EXPECT_GE(p, 0.1f);
        EXPECT_LT(p, 1.0f);
        const float s = drawValue(rng, ValueDistribution::SignedUniform);
        EXPECT_GE(s, -1.0f);
        EXPECT_LT(s, 1.0f);
    }
}

} // namespace
} // namespace sparse
} // namespace chason
