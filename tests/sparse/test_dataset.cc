/**
 * @file
 * Tests for the Table 2 registry and sweep corpus.
 */

#include "sparse/dataset.h"

#include <gtest/gtest.h>

#include <set>

namespace chason {
namespace sparse {
namespace {

TEST(Table2, TwentyEntriesTenPerCollection)
{
    const auto &entries = table2();
    ASSERT_EQ(entries.size(), 20u);
    unsigned suite = 0, snap = 0;
    std::set<std::string> tags;
    for (const DatasetEntry &e : entries) {
        (e.collection == Collection::SuiteSparse ? suite : snap) += 1;
        tags.insert(e.id);
    }
    EXPECT_EQ(suite, 10u);
    EXPECT_EQ(snap, 10u);
    EXPECT_EQ(tags.size(), 20u) << "tags must be unique";
}

TEST(Table2, LookupByTag)
{
    EXPECT_EQ(table2ByTag("MY").name, "mycielskian12");
    EXPECT_EQ(table2ByTag("SC").name, "soc-Slashdot0811");
}

TEST(Table2Death, UnknownTagFatal)
{
    EXPECT_EXIT(table2ByTag("XX"), ::testing::ExitedWithCode(1),
                "unknown");
}

TEST(Table2, MyIsExact)
{
    const DatasetEntry &my = table2ByTag("MY");
    const CsrMatrix a = my.generate();
    EXPECT_EQ(a.nnz(), my.paperNnz);
}

/** Structural reproduction: NNZ within a band of the published value. */
class Table2Entry : public ::testing::TestWithParam<std::string>
{
};

TEST_P(Table2Entry, NnzWithinBandOfPaper)
{
    const DatasetEntry &e = table2ByTag(GetParam());
    const CsrMatrix a = e.generate();
    const double ratio = static_cast<double>(a.nnz()) /
        static_cast<double>(e.paperNnz);
    EXPECT_GT(ratio, 0.55) << e.name << ": " << a.describe();
    EXPECT_LT(ratio, 1.8) << e.name << ": " << a.describe();
    EXPECT_GT(a.rows(), 0u);
}

INSTANTIATE_TEST_SUITE_P(
    AllTags, Table2Entry,
    ::testing::Values("DY", "RE", "C5", "MY", "VS", "TS", "LO", "HA",
                      "TR", "CK", "WI", "EM", "AS", "OR", "WK", "SC",
                      "A7", "CM", "WB", "RT"),
    [](const auto &info) { return info.param; });

TEST(Table2, GenerationIsDeterministic)
{
    const DatasetEntry &e = table2ByTag("DY");
    const CsrMatrix a = e.generate();
    const CsrMatrix b = e.generate();
    EXPECT_EQ(a.colIdx(), b.colIdx());
    EXPECT_EQ(a.values(), b.values());
}

TEST(LoadOrGenerate, FallsBackToSynthesis)
{
    const DatasetEntry &e = table2ByTag("CM");
    const CsrMatrix a = loadOrGenerate(e, "/nonexistent-dir");
    EXPECT_GT(a.nnz(), 0u);
}


TEST(SerpensDozen, TwelveLargeEntries)
{
    const auto dozen = sparse::serpensDozen();
    ASSERT_EQ(dozen.size(), 12u);
    std::set<std::string> names;
    for (const auto &e : dozen)
        names.insert(e.name);
    EXPECT_EQ(names.size(), 12u);
}

TEST(SerpensDozen, EntriesAreLargeAndBalancedOnAverage)
{
    // Spot-check two representatives (generating all 12 is bench work).
    const auto dozen = sparse::serpensDozen();
    const sparse::CsrMatrix mesh = dozen[4].generate(); // mesh_banded
    EXPECT_GT(mesh.rows(), 100000u);
    EXPECT_LT(mesh.maxRowNnz(), 20u);
    const sparse::CsrMatrix p2p = dozen[9].generate();
    EXPECT_GT(p2p.nnz(), 1000000u);
}

TEST(SweepCorpus, PrefixProperty)
{
    const auto small = sweepCorpus(16);
    const auto bigger = sweepCorpus(32);
    ASSERT_EQ(small.size(), 16u);
    ASSERT_EQ(bigger.size(), 32u);
    for (std::size_t i = 0; i < small.size(); ++i)
        EXPECT_EQ(small[i].name, bigger[i].name);
}

TEST(SweepCorpus, EntriesGenerateAndVary)
{
    const auto corpus = sweepCorpus(8);
    std::set<std::size_t> nnzs;
    for (const SweepEntry &e : corpus) {
        const CsrMatrix a = e.generate();
        EXPECT_GT(a.nnz(), 0u) << e.name;
        nnzs.insert(a.nnz());
    }
    EXPECT_GT(nnzs.size(), 4u) << "corpus should be diverse";
}

TEST(SweepCorpus, DeterministicAcrossCalls)
{
    const auto a = sweepCorpus(8);
    const auto b = sweepCorpus(8);
    for (std::size_t i = 0; i < a.size(); ++i) {
        const CsrMatrix ma = a[i].generate();
        const CsrMatrix mb = b[i].generate();
        EXPECT_EQ(ma.colIdx(), mb.colIdx()) << a[i].name;
    }
}

} // namespace
} // namespace sparse
} // namespace chason
