/**
 * @file
 * Tests for the structural analysis module.
 */

#include "sparse/structure.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "sparse/generators.h"

namespace chason {
namespace sparse {
namespace {

TEST(Structure, UniformRowsHaveLowGini)
{
    const CsrMatrix a = poisson2d(30);
    const StructureProfile p = analyzeStructure(a);
    EXPECT_LT(p.rowGini, 0.1);
    EXPECT_EQ(p.emptyRows, 0u);
    EXPECT_NEAR(p.meanRowNnz, 5.0, 0.5);
    EXPECT_EQ(p.maxRowNnz, 5u);
    EXPECT_EQ(p.bandwidth, 30u); // the vertical stencil neighbour
}

TEST(Structure, SingleHeavyRowHasHighGini)
{
    CooMatrix coo(100, 200);
    for (std::uint32_t c = 0; c < 150; ++c)
        coo.add(7, c, 1.0f);
    const StructureProfile p = analyzeStructure(coo.toCsr());
    EXPECT_GT(p.rowGini, 0.95);
    EXPECT_EQ(p.maxRowNnz, 150u);
    EXPECT_EQ(p.emptyRows, 99u);
    EXPECT_NEAR(p.top1PercentShare, 1.0, 1e-9);
}

TEST(Structure, GiniOrdersFamiliesByImbalance)
{
    Rng rng(1);
    const StructureProfile uniform =
        analyzeStructure(banded(512, 6, 0.8, rng));
    const StructureProfile graph =
        analyzeStructure(preferentialAttachment(512, 6, rng));
    const StructureProfile heavy =
        analyzeStructure(zipfRows(512, 512, 4000, 1.4, rng));
    EXPECT_LT(uniform.rowGini, graph.rowGini);
    EXPECT_LT(graph.rowGini, heavy.rowGini);
}

TEST(Structure, SerializationRatioPredictsTailDominance)
{
    Rng rng(2);
    // Balanced: ratio << 1 at 128 lanes and distance 10.
    const StructureProfile balanced =
        analyzeStructure(banded(4096, 8, 0.8, rng));
    EXPECT_LT(balanced.serializationRatio(128, 10), 1.0);
    // Arrowhead: the dense row dominates.
    const StructureProfile arrow =
        analyzeStructure(arrowBanded(4096, 8, 0.3, 4, rng));
    EXPECT_GT(arrow.serializationRatio(128, 10), 5.0);
}

TEST(Structure, EmptyMatrix)
{
    CooMatrix coo(10, 10);
    const StructureProfile p = analyzeStructure(coo.toCsr());
    EXPECT_EQ(p.nnz, 0u);
    EXPECT_EQ(p.rowGini, 0.0);
    EXPECT_EQ(p.serializationRatio(128, 10), 0.0);
}

TEST(Structure, DescribeMentionsKeyNumbers)
{
    Rng rng(3);
    const CsrMatrix a = erdosRenyi(64, 64, 512, rng);
    const std::string d = analyzeStructure(a).describe();
    EXPECT_NE(d.find("64x64"), std::string::npos);
    EXPECT_NE(d.find("gini="), std::string::npos);
}

TEST(Structure, BandwidthOfDiagonalIsZero)
{
    CooMatrix coo(32, 32);
    for (std::uint32_t r = 0; r < 32; ++r)
        coo.add(r, r, 1.0f);
    EXPECT_EQ(analyzeStructure(coo.toCsr()).bandwidth, 0u);
}

} // namespace
} // namespace sparse
} // namespace chason
