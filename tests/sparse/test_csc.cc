/**
 * @file
 * Unit tests for the CSC format.
 */

#include "sparse/csc.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "sparse/generators.h"

namespace chason {
namespace sparse {
namespace {

CsrMatrix
smallCsr()
{
    CooMatrix coo(3, 4);
    coo.add(0, 0, 1.0f);
    coo.add(0, 1, 2.0f);
    coo.add(1, 0, -1.0f);
    coo.add(2, 3, 5.0f);
    return coo.toCsr();
}

TEST(Csc, FromCsrStructure)
{
    const CscMatrix csc = CscMatrix::fromCsr(smallCsr());
    EXPECT_EQ(csc.rows(), 3u);
    EXPECT_EQ(csc.cols(), 4u);
    EXPECT_EQ(csc.nnz(), 4u);
    EXPECT_EQ(csc.colNnz(0), 2u);
    EXPECT_EQ(csc.colNnz(1), 1u);
    EXPECT_EQ(csc.colNnz(2), 0u);
    EXPECT_EQ(csc.colNnz(3), 1u);
    EXPECT_EQ(csc.maxColNnz(), 2u);
    // Rows sorted within column 0.
    EXPECT_EQ(csc.rowIdx()[0], 0u);
    EXPECT_EQ(csc.rowIdx()[1], 1u);
}

TEST(Csc, RoundTripToCsr)
{
    Rng rng(1);
    const CsrMatrix csr = erdosRenyi(100, 150, 2000, rng);
    const CsrMatrix back = CscMatrix::fromCsr(csr).toCsr();
    EXPECT_EQ(back.rowPtr(), csr.rowPtr());
    EXPECT_EQ(back.colIdx(), csr.colIdx());
    EXPECT_EQ(back.values(), csr.values());
}

TEST(Csc, SpmvMatchesCsrKernel)
{
    Rng rng(2);
    const CsrMatrix csr = zipfRows(120, 200, 2500, 1.3, rng);
    const CscMatrix csc = CscMatrix::fromCsr(csr);
    const std::vector<float> x = randomVector(csr.cols(), rng);
    const std::vector<float> y = csc.spmv(x);
    const std::vector<double> ref = spmvReference(csr, x);
    EXPECT_LE(maxRelativeError(y, ref), 1.0);
}

TEST(Csc, TransposedSpmvMatchesExplicitTranspose)
{
    Rng rng(3);
    const CsrMatrix csr = erdosRenyi(80, 60, 900, rng);
    const CscMatrix csc = CscMatrix::fromCsr(csr);
    const std::vector<float> x = randomVector(csr.rows(), rng);
    const std::vector<float> y = csc.spmvTransposed(x);
    const std::vector<double> ref =
        spmvReference(csr.transpose(), x);
    EXPECT_LE(maxRelativeError(y, ref), 1.0);
}

TEST(Csc, EmptyMatrix)
{
    CooMatrix coo(5, 5);
    const CscMatrix csc = CscMatrix::fromCsr(coo.toCsr());
    EXPECT_EQ(csc.nnz(), 0u);
    EXPECT_EQ(csc.maxColNnz(), 0u);
    const std::vector<float> x(5, 1.0f);
    for (float v : csc.spmv(x))
        EXPECT_EQ(v, 0.0f);
}

TEST(CscDeath, BoundsChecked)
{
    const CscMatrix csc = CscMatrix::fromCsr(smallCsr());
    EXPECT_DEATH(csc.colNnz(4), "out of range");
    const std::vector<float> bad(2, 1.0f);
    EXPECT_DEATH(csc.spmv(bad), "columns");
}

} // namespace
} // namespace sparse
} // namespace chason
