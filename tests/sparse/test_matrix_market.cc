/**
 * @file
 * Unit tests for Matrix Market I/O.
 */

#include "sparse/matrix_market.h"

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

namespace chason {
namespace sparse {
namespace {

TEST(MatrixMarket, ReadGeneralReal)
{
    std::istringstream in(
        "%%MatrixMarket matrix coordinate real general\n"
        "% a comment\n"
        "3 4 2\n"
        "1 2 2.5\n"
        "3 4 -1\n");
    const CooMatrix coo = readMatrixMarket(in);
    EXPECT_EQ(coo.rows(), 3u);
    EXPECT_EQ(coo.cols(), 4u);
    ASSERT_EQ(coo.nnz(), 2u);
    EXPECT_EQ(coo.entries()[0], (Triplet{0, 1, 2.5f}));
    EXPECT_EQ(coo.entries()[1], (Triplet{2, 3, -1.0f}));
}

TEST(MatrixMarket, ReadSymmetricMirrors)
{
    std::istringstream in(
        "%%MatrixMarket matrix coordinate real symmetric\n"
        "3 3 2\n"
        "2 1 7\n"
        "3 3 1\n");
    const CooMatrix coo = readMatrixMarket(in);
    EXPECT_EQ(coo.nnz(), 3u); // (1,0), (0,1) and the diagonal
}

TEST(MatrixMarket, ReadSkewSymmetricNegates)
{
    std::istringstream in(
        "%%MatrixMarket matrix coordinate real skew-symmetric\n"
        "2 2 1\n"
        "2 1 3\n");
    const CsrMatrix a = readMatrixMarket(in).toCsr();
    const std::vector<float> x = {1.0f, 0.0f};
    const std::vector<double> y = spmvReference(a, x);
    EXPECT_DOUBLE_EQ(y[0], 0.0);
    EXPECT_DOUBLE_EQ(y[1], 3.0);
    const std::vector<float> x2 = {0.0f, 1.0f};
    EXPECT_DOUBLE_EQ(spmvReference(a, x2)[0], -3.0);
}

TEST(MatrixMarket, ReadPatternUsesOnes)
{
    std::istringstream in(
        "%%MatrixMarket matrix coordinate pattern general\n"
        "2 2 2\n"
        "1 1\n"
        "2 2\n");
    const CooMatrix coo = readMatrixMarket(in);
    ASSERT_EQ(coo.nnz(), 2u);
    EXPECT_EQ(coo.entries()[0].value, 1.0f);
}

TEST(MatrixMarket, AcceptsCrlfLineEndings)
{
    // A Windows-written file: every line ends \r\n, including a blank
    // line and a comment between header and size line.
    std::istringstream in(
        "%%MatrixMarket matrix coordinate real general\r\n"
        "% written on Windows\r\n"
        "\r\n"
        "3 4 2\r\n"
        "1 2 2.5\r\n"
        "3 4 -1\r\n");
    const CooMatrix coo = readMatrixMarket(in);
    EXPECT_EQ(coo.rows(), 3u);
    EXPECT_EQ(coo.cols(), 4u);
    ASSERT_EQ(coo.nnz(), 2u);
    EXPECT_EQ(coo.entries()[0], (Triplet{0, 1, 2.5f}));
    EXPECT_EQ(coo.entries()[1], (Triplet{2, 3, -1.0f}));
}

TEST(MatrixMarket, AcceptsBannerAndCommentWhitespaceVariants)
{
    // Tab-separated banner tokens, indented comments, and blank lines
    // before the size line all occur in collection dumps.
    std::istringstream in(
        "%%MatrixMarket\tmatrix   coordinate\treal general\n"
        "   % indented comment\n"
        "\t\n"
        "  \n"
        "2 2 1\n"
        "2 1 4.0\n");
    const CooMatrix coo = readMatrixMarket(in);
    ASSERT_EQ(coo.nnz(), 1u);
    EXPECT_EQ(coo.entries()[0], (Triplet{1, 0, 4.0f}));
}

TEST(MatrixMarket, CrlfFileFixtureRoundTrip)
{
    // Byte-exact CRLF fixture written in binary mode, read through the
    // public file entry point.
    const std::string path =
        ::testing::TempDir() + "/chason_mm_crlf.mtx";
    {
        std::ofstream out(path, std::ios::binary);
        out << "%%MatrixMarket matrix coordinate real symmetric\r\n"
               "% fixture\r\n"
               "3 3 2\r\n"
               "2 1 7\r\n"
               "3 3 1\r\n";
    }
    const CooMatrix coo = readMatrixMarketFile(path);
    EXPECT_EQ(coo.nnz(), 3u); // mirrored off-diagonal + diagonal
}

TEST(MatrixMarketDeath, CrlfDoesNotWeakenNanRejection)
{
    std::istringstream in(
        "%%MatrixMarket matrix coordinate real general\r\n"
        "2 2 1\r\n"
        "1 1 nan\r\n");
    EXPECT_EXIT(readMatrixMarket(in), ::testing::ExitedWithCode(1),
                "non-finite");
}

TEST(MatrixMarketDeath, CrlfDoesNotWeakenOverflowRejection)
{
    std::istringstream in(
        "%%MatrixMarket matrix coordinate real general\r\n"
        "4294967296 2 1\r\n"
        "1 1 1.0\r\n");
    EXPECT_EXIT(readMatrixMarket(in), ::testing::ExitedWithCode(1),
                "overflow");
}

TEST(MatrixMarketDeath, BlankLinesOnlyStillTruncated)
{
    // Tolerating blank lines must not mask a genuinely missing size
    // line.
    std::istringstream in(
        "%%MatrixMarket matrix coordinate real general\r\n"
        "\r\n"
        "   \r\n");
    EXPECT_EXIT(readMatrixMarket(in), ::testing::ExitedWithCode(1),
                "truncated before size line");
}

TEST(MatrixMarketDeath, RejectsBadBanner)
{
    std::istringstream in("%%NotMatrixMarket x y z w\n1 1 0\n");
    EXPECT_EXIT(readMatrixMarket(in), ::testing::ExitedWithCode(1),
                "banner");
}

TEST(MatrixMarketDeath, RejectsArrayFormat)
{
    std::istringstream in(
        "%%MatrixMarket matrix array real general\n2 2\n1\n2\n3\n4\n");
    EXPECT_EXIT(readMatrixMarket(in), ::testing::ExitedWithCode(1),
                "coordinate");
}

TEST(MatrixMarketDeath, RejectsOutOfBoundsEntry)
{
    std::istringstream in(
        "%%MatrixMarket matrix coordinate real general\n"
        "2 2 1\n"
        "3 1 1.0\n");
    EXPECT_EXIT(readMatrixMarket(in), ::testing::ExitedWithCode(1),
                "out of bounds");
}

TEST(MatrixMarketDeath, RejectsTruncatedStream)
{
    std::istringstream in(
        "%%MatrixMarket matrix coordinate real general\n"
        "2 2 2\n"
        "1 1 1.0\n");
    EXPECT_EXIT(readMatrixMarket(in), ::testing::ExitedWithCode(1),
                "truncated");
}

TEST(MatrixMarketDeath, RejectsStreamEndingBeforeSizeLine)
{
    std::istringstream in(
        "%%MatrixMarket matrix coordinate real general\n"
        "% only comments follow the banner\n");
    EXPECT_EXIT(readMatrixMarket(in), ::testing::ExitedWithCode(1),
                "truncated before size line");
}

TEST(MatrixMarketDeath, RejectsIncompleteSizeLine)
{
    std::istringstream in(
        "%%MatrixMarket matrix coordinate real general\n"
        "4 4\n"
        "1 1 1.0\n");
    EXPECT_EXIT(readMatrixMarket(in), ::testing::ExitedWithCode(1),
                "bad size line");
}

TEST(MatrixMarketDeath, RejectsOverflowingDimensions)
{
    // 2^32 rows cannot be indexed by uint32_t; the old cast silently
    // truncated to 0.
    std::istringstream in(
        "%%MatrixMarket matrix coordinate real general\n"
        "4294967296 2 1\n"
        "1 1 1.0\n");
    EXPECT_EXIT(readMatrixMarket(in), ::testing::ExitedWithCode(1),
                "overflow");
}

TEST(MatrixMarketDeath, RejectsNanValue)
{
    std::istringstream in(
        "%%MatrixMarket matrix coordinate real general\n"
        "2 2 1\n"
        "1 1 nan\n");
    EXPECT_EXIT(readMatrixMarket(in), ::testing::ExitedWithCode(1),
                "non-finite");
}

TEST(MatrixMarketDeath, RejectsInfValue)
{
    std::istringstream in(
        "%%MatrixMarket matrix coordinate real general\n"
        "2 2 1\n"
        "1 1 -inf\n");
    EXPECT_EXIT(readMatrixMarket(in), ::testing::ExitedWithCode(1),
                "non-finite");
}

TEST(MatrixMarket, WriteReadRoundTrip)
{
    CooMatrix coo(4, 5);
    coo.add(0, 0, 1.5f);
    coo.add(3, 4, -2.25f);
    coo.add(2, 1, 0.125f);
    coo.canonicalize();

    std::stringstream buffer;
    writeMatrixMarket(coo, buffer);
    const CooMatrix back = readMatrixMarket(buffer);
    EXPECT_EQ(back.rows(), coo.rows());
    EXPECT_EQ(back.cols(), coo.cols());
    EXPECT_EQ(back.entries(), coo.entries());
}

TEST(MatrixMarket, FileRoundTrip)
{
    CooMatrix coo(2, 2);
    coo.add(1, 1, 9.0f);
    const std::string path = ::testing::TempDir() + "/chason_mm_test.mtx";
    writeMatrixMarketFile(coo, path);
    const CooMatrix back = readMatrixMarketFile(path);
    EXPECT_EQ(back.entries(), coo.entries());
}

TEST(MatrixMarketDeath, MissingFileFatal)
{
    EXPECT_EXIT(readMatrixMarketFile("/nonexistent/nope.mtx"),
                ::testing::ExitedWithCode(1), "cannot open");
}

} // namespace
} // namespace sparse
} // namespace chason
