/**
 * @file
 * Unit tests for the sparse matrix containers and reference kernels.
 */

#include "sparse/formats.h"

#include <gtest/gtest.h>

namespace chason {
namespace sparse {
namespace {

CooMatrix
smallCoo()
{
    CooMatrix coo(3, 4);
    coo.add(0, 1, 2.0f);
    coo.add(2, 3, 5.0f);
    coo.add(1, 0, -1.0f);
    coo.add(0, 0, 1.0f);
    return coo;
}

TEST(CooMatrix, Basics)
{
    CooMatrix coo = smallCoo();
    EXPECT_EQ(coo.rows(), 3u);
    EXPECT_EQ(coo.cols(), 4u);
    EXPECT_EQ(coo.nnz(), 4u);
    EXPECT_NEAR(coo.densityPercent(), 100.0 * 4 / 12, 1e-9);
}

TEST(CooMatrix, OutOfRangePanics)
{
    CooMatrix coo(2, 2);
    EXPECT_DEATH(coo.add(2, 0, 1.0f), "out of range");
    EXPECT_DEATH(coo.add(0, 2, 1.0f), "out of range");
}

TEST(CooMatrix, CanonicalizeSortsAndMerges)
{
    CooMatrix coo(2, 2);
    coo.add(1, 1, 1.0f);
    coo.add(0, 0, 2.0f);
    coo.add(1, 1, 3.0f);
    coo.canonicalize();
    ASSERT_EQ(coo.nnz(), 2u);
    EXPECT_EQ(coo.entries()[0], (Triplet{0, 0, 2.0f}));
    EXPECT_EQ(coo.entries()[1], (Triplet{1, 1, 4.0f}));
}

TEST(CooMatrix, AddSymmetric)
{
    CooMatrix coo(3, 3);
    coo.addSymmetric(0, 1, 2.0f);
    coo.addSymmetric(2, 2, 1.0f);
    EXPECT_EQ(coo.nnz(), 3u); // off-diagonal doubled, diagonal not
}

TEST(CsrMatrix, FromCoo)
{
    const CsrMatrix csr = smallCoo().toCsr();
    EXPECT_EQ(csr.rows(), 3u);
    EXPECT_EQ(csr.cols(), 4u);
    EXPECT_EQ(csr.nnz(), 4u);
    EXPECT_EQ(csr.rowNnz(0), 2u);
    EXPECT_EQ(csr.rowNnz(1), 1u);
    EXPECT_EQ(csr.rowNnz(2), 1u);
    EXPECT_EQ(csr.maxRowNnz(), 2u);
    EXPECT_EQ(csr.emptyRows(), 0u);
    const std::vector<std::size_t> expected_ptr = {0, 2, 3, 4};
    EXPECT_EQ(csr.rowPtr(), expected_ptr);
}

TEST(CsrMatrix, EmptyRowsCounted)
{
    CooMatrix coo(5, 5);
    coo.add(0, 0, 1.0f);
    coo.add(4, 4, 1.0f);
    EXPECT_EQ(coo.toCsr().emptyRows(), 3u);
}

TEST(CsrMatrix, NonCanonicalInputPanics)
{
    const std::vector<Triplet> bad = {{1, 0, 1.0f}, {0, 0, 1.0f}};
    EXPECT_DEATH(CsrMatrix(2, 2, bad), "not canonical");
}

TEST(CsrMatrix, TransposeTwiceIsIdentity)
{
    const CsrMatrix csr = smallCoo().toCsr();
    const CsrMatrix back = csr.transpose().transpose();
    EXPECT_EQ(back.rowPtr(), csr.rowPtr());
    EXPECT_EQ(back.colIdx(), csr.colIdx());
    EXPECT_EQ(back.values(), csr.values());
}

TEST(CsrMatrix, RoundTripThroughCoo)
{
    const CsrMatrix csr = smallCoo().toCsr();
    const CsrMatrix again = csr.toCoo().toCsr();
    EXPECT_EQ(again.colIdx(), csr.colIdx());
    EXPECT_EQ(again.values(), csr.values());
}

TEST(CsrMatrix, Describe)
{
    const std::string d = smallCoo().toCsr().describe();
    EXPECT_NE(d.find("3x4"), std::string::npos);
    EXPECT_NE(d.find("4 nnz"), std::string::npos);
}

TEST(SpmvReference, KnownResult)
{
    // [1 2 0 0; -1 0 0 0; 0 0 0 5] * [1 2 3 4] = [5, -1, 20]
    const CsrMatrix csr = smallCoo().toCsr();
    const std::vector<float> x = {1, 2, 3, 4};
    const std::vector<double> y = spmvReference(csr, x);
    ASSERT_EQ(y.size(), 3u);
    EXPECT_DOUBLE_EQ(y[0], 5.0);
    EXPECT_DOUBLE_EQ(y[1], -1.0);
    EXPECT_DOUBLE_EQ(y[2], 20.0);
}

TEST(SpmvFloat, MatchesReferenceOnSmallInput)
{
    const CsrMatrix csr = smallCoo().toCsr();
    const std::vector<float> x = {1, 2, 3, 4};
    const std::vector<float> yf = spmvFloat(csr, x);
    const std::vector<double> yd = spmvReference(csr, x);
    EXPECT_LE(maxRelativeError(yf, yd), 1.0);
}

TEST(SpmvReference, SizeMismatchPanics)
{
    const CsrMatrix csr = smallCoo().toCsr();
    const std::vector<float> bad_x = {1, 2};
    EXPECT_DEATH(spmvReference(csr, bad_x), "columns");
}

TEST(MaxRelativeError, FlagsViolations)
{
    const std::vector<float> res = {1.0f, 2.0f};
    const std::vector<double> ref = {1.0, 3.0};
    EXPECT_GT(maxRelativeError(res, ref, 1e-3, 1e-4), 1.0);
    const std::vector<double> close = {1.0, 2.0000001};
    EXPECT_LE(maxRelativeError(res, close, 1e-3, 1e-4), 1.0);
}

} // namespace
} // namespace sparse
} // namespace chason
