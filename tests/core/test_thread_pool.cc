/**
 * @file
 * Work-stealing thread pool tests, written to be run under TSAN as
 * well as natively (run_all.sh's ThreadSanitizer leg includes this
 * binary). The stress cases target exactly the hazards a work-stealing
 * pool adds over a single-queue one: owner-vs-thief races on the deque
 * (steal-heavy skew), nested parallelFor joins from inside pool tasks,
 * and shutdown while tasks are still queued and posting more.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <thread>
#include <vector>

#include "core/thread_pool.h"

namespace chason {
namespace {

TEST(ThreadPool, SingleWorkerParallelForRunsInIndexOrder)
{
    core::ThreadPool pool(1);
    std::vector<std::size_t> order;
    pool.parallelFor(64, [&](std::size_t i) { order.push_back(i); });
    ASSERT_EQ(order.size(), 64u);
    for (std::size_t i = 0; i < order.size(); ++i)
        EXPECT_EQ(order[i], i);
}

TEST(ThreadPool, SingleWorkerParallelForDynamicRunsInIndexOrder)
{
    core::ThreadPool pool(1);
    for (std::size_t grain : {1u, 3u, 7u, 100u}) {
        std::vector<std::size_t> order;
        pool.parallelForDynamic(
            65, grain, [&](std::size_t i) { order.push_back(i); });
        ASSERT_EQ(order.size(), 65u);
        for (std::size_t i = 0; i < order.size(); ++i)
            EXPECT_EQ(order[i], i) << "grain " << grain;
    }
}

TEST(ThreadPool, ParallelForDynamicCoversEveryIndexOnce)
{
    core::ThreadPool pool(4);
    for (std::size_t n : {0u, 1u, 17u, 1000u}) {
        for (std::size_t grain : {0u, 1u, 8u, 64u, 2000u}) {
            std::vector<std::atomic<int>> hits(n);
            for (auto &h : hits)
                h.store(0);
            pool.parallelForDynamic(n, grain, [&](std::size_t i) {
                hits[i].fetch_add(1, std::memory_order_relaxed);
            });
            for (std::size_t i = 0; i < n; ++i)
                EXPECT_EQ(hits[i].load(), 1)
                    << "n " << n << " grain " << grain << " i " << i;
        }
    }
}

TEST(ThreadPool, PostAndWaitStillDrainEverything)
{
    core::ThreadPool pool(3);
    std::atomic<int> ran{0};
    for (int i = 0; i < 500; ++i)
        pool.post([&ran] { ran.fetch_add(1, std::memory_order_relaxed); });
    pool.wait();
    EXPECT_EQ(ran.load(), 500);
    EXPECT_EQ(pool.queueDepth(), 0u);
}

TEST(ThreadPool, TasksMayPostFurtherTasks)
{
    core::ThreadPool pool(2);
    std::atomic<int> ran{0};
    for (int i = 0; i < 50; ++i) {
        pool.post([&pool, &ran] {
            ran.fetch_add(1, std::memory_order_relaxed);
            pool.post([&ran] {
                ran.fetch_add(1, std::memory_order_relaxed);
            });
        });
    }
    pool.wait();
    EXPECT_EQ(ran.load(), 100);
}

TEST(ThreadPool, NestedParallelForFromWorkerThreads)
{
    // Every outer task runs a parallelFor of its own from inside the
    // pool — the help-execute join must make progress even when outer
    // tasks outnumber the workers.
    core::ThreadPool pool(4);
    constexpr std::size_t kOuter = 32;
    constexpr std::size_t kInner = 64;
    std::vector<std::atomic<int>> hits(kOuter * kInner);
    for (auto &h : hits)
        h.store(0);
    pool.parallelFor(kOuter, [&](std::size_t o) {
        pool.parallelForDynamic(kInner, 5, [&, o](std::size_t i) {
            hits[o * kInner + i].fetch_add(1,
                                           std::memory_order_relaxed);
        });
    });
    for (std::size_t i = 0; i < hits.size(); ++i)
        EXPECT_EQ(hits[i].load(), 1) << "slot " << i;
}

TEST(ThreadPool, DoublyNestedParallelFor)
{
    core::ThreadPool pool(3);
    std::atomic<int> leaves{0};
    pool.parallelFor(6, [&](std::size_t) {
        pool.parallelFor(4, [&](std::size_t) {
            pool.parallelForDynamic(8, 3, [&](std::size_t) {
                leaves.fetch_add(1, std::memory_order_relaxed);
            });
        });
    });
    EXPECT_EQ(leaves.load(), 6 * 4 * 8);
}

TEST(ThreadPool, StealHeavySkewedWorkload)
{
    // One long-running chunk plus a swarm of tiny ones: the dynamic
    // split must let the idle workers steal the tail instead of
    // waiting on a static barrier. The run also hammers the deque's
    // owner/thief CAS paths, which is the point under TSAN.
    core::ThreadPool pool(4);
    std::atomic<std::uint64_t> sum{0};
    pool.parallelForDynamic(2048, 1, [&](std::size_t i) {
        if (i == 0)
            std::this_thread::sleep_for(std::chrono::milliseconds(20));
        sum.fetch_add(i, std::memory_order_relaxed);
    });
    EXPECT_EQ(sum.load(), 2048ull * 2047ull / 2ull);
}

TEST(ThreadPool, ConcurrentExternalSubmitters)
{
    core::ThreadPool pool(4);
    std::atomic<int> ran{0};
    std::vector<std::thread> submitters;
    for (int s = 0; s < 4; ++s) {
        submitters.emplace_back([&pool, &ran] {
            for (int i = 0; i < 50; ++i) {
                pool.parallelForDynamic(20, 4, [&ran](std::size_t) {
                    ran.fetch_add(1, std::memory_order_relaxed);
                });
            }
        });
    }
    for (std::thread &t : submitters)
        t.join();
    EXPECT_EQ(ran.load(), 4 * 50 * 20);
}

TEST(ThreadPool, ShutdownWhileBusyDrainsOutstandingTasks)
{
    // The destructor contract: everything posted before destruction
    // runs, including tasks posted by tasks during the drain.
    auto ran = std::make_shared<std::atomic<int>>(0);
    {
        core::ThreadPool pool(2);
        for (int i = 0; i < 64; ++i) {
            pool.post([&pool, ran] {
                std::this_thread::sleep_for(
                    std::chrono::microseconds(200));
                ran->fetch_add(1, std::memory_order_relaxed);
                pool.post([ran] {
                    ran->fetch_add(1, std::memory_order_relaxed);
                });
            });
        }
        // No wait(): the destructor must drain all 128.
    }
    EXPECT_EQ(ran->load(), 128);
}

TEST(ThreadPool, WorkerCountAndDefaultClamp)
{
    EXPECT_GE(core::ThreadPool::defaultWorkers(), 1u);
    core::ThreadPool pool(5);
    EXPECT_EQ(pool.workers(), 5u);
    core::ThreadPool fallback(0);
    EXPECT_GE(fallback.workers(), 1u);
}

} // namespace
} // namespace chason
