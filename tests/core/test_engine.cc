/**
 * @file
 * Unit tests for the Engine facade.
 */

#include "core/engine.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "sparse/generators.h"

namespace chason {
namespace core {
namespace {

arch::ArchConfig
smallConfig()
{
    arch::ArchConfig cfg;
    cfg.sched.channels = 4;
    cfg.sched.pesOverride = 4;
    cfg.sched.rawDistance = 4;
    cfg.sched.windowCols = 128;
    cfg.sched.rowsPerLanePerPass = 64;
    return cfg;
}

TEST(Engine, KindsSelectSchedulerAndDatapath)
{
    Engine chason(Engine::Kind::Chason, smallConfig());
    EXPECT_EQ(chason.scheduler().name(), "crhcs");
    EXPECT_EQ(chason.accelerator().name(), "chason");
    Engine serpens(Engine::Kind::Serpens, smallConfig());
    EXPECT_EQ(serpens.scheduler().name(), "pe-aware");
    EXPECT_EQ(serpens.accelerator().name(), "serpens");
    EXPECT_EQ(serpens.config().sched.migrationDepth, 0u);
}

TEST(Engine, ReportIsPopulated)
{
    Rng rng(1);
    const sparse::CsrMatrix a = sparse::erdosRenyi(64, 200, 1000, rng);
    const std::vector<float> x = sparse::randomVector(a.cols(), rng);
    Engine engine(Engine::Kind::Chason, smallConfig());

    std::vector<float> y;
    const SpmvReport report = engine.run(a, x, "unit", &y);

    EXPECT_EQ(report.accelerator, "chason");
    EXPECT_EQ(report.dataset, "unit");
    EXPECT_EQ(report.nnz, a.nnz());
    EXPECT_EQ(report.rows, a.rows());
    EXPECT_EQ(report.cols, a.cols());
    EXPECT_GT(report.latencyMs, 0.0);
    EXPECT_GT(report.gflops, 0.0);
    EXPECT_GT(report.energyEfficiency, 0.0);
    EXPECT_GT(report.bandwidthEfficiency, 0.0);
    EXPECT_GE(report.underutilizationPercent, 0.0);
    EXPECT_LE(report.underutilizationPercent, 100.0);
    EXPECT_EQ(report.perPegUnderutilization.size(), 4u);
    EXPECT_GT(report.matrixStreamBytes, 0u);
    EXPECT_GE(report.totalBytes, report.matrixStreamBytes);
    EXPECT_EQ(y.size(), a.rows());
    // Functional check already ran inside: must be within tolerance.
    EXPECT_LE(report.functionalError, 1.0);
}

TEST(Engine, Equation5Consistency)
{
    Rng rng(2);
    const sparse::CsrMatrix a = sparse::erdosRenyi(64, 100, 800, rng);
    const std::vector<float> x = sparse::randomVector(a.cols(), rng);
    const SpmvReport r =
        Engine(Engine::Kind::Chason, smallConfig()).run(a, x);
    const double flops = 2.0 * (static_cast<double>(a.nnz()) + a.cols());
    EXPECT_NEAR(r.gflops, flops / (r.latencyMs * 1e6), 1e-9);
}

TEST(Engine, BandwidthEfficiencyEquation7)
{
    // Table 3 convention: GFLOPS per peak platform bandwidth in TB/s.
    Rng rng(3);
    const sparse::CsrMatrix a = sparse::erdosRenyi(64, 100, 800, rng);
    const std::vector<float> x = sparse::randomVector(a.cols(), rng);
    const SpmvReport r =
        Engine(Engine::Kind::Chason, smallConfig()).run(a, x);
    EXPECT_NEAR(r.bandwidthEfficiency, r.gflops / 0.45984, 1e-6);
}

TEST(Engine, RunScheduledSkipsRescheduling)
{
    Rng rng(4);
    const sparse::CsrMatrix a = sparse::erdosRenyi(64, 100, 500, rng);
    const std::vector<float> x = sparse::randomVector(a.cols(), rng);
    Engine engine(Engine::Kind::Serpens, smallConfig());
    const sched::Schedule sch = engine.schedule(a);
    const SpmvReport direct = engine.run(a, x);
    const SpmvReport prebuilt = engine.runScheduled(sch, a, x);
    EXPECT_EQ(direct.cycles, prebuilt.cycles);
    EXPECT_EQ(direct.matrixStreamBytes, prebuilt.matrixStreamBytes);
}

TEST(Engine, PowerNumbersPerKind)
{
    Rng rng(5);
    const sparse::CsrMatrix a = sparse::erdosRenyi(32, 64, 256, rng);
    const std::vector<float> x = sparse::randomVector(a.cols(), rng);
    EXPECT_DOUBLE_EQ(
        Engine(Engine::Kind::Chason, smallConfig()).run(a, x).powerW,
        39.0);
    EXPECT_DOUBLE_EQ(
        Engine(Engine::Kind::Serpens, smallConfig()).run(a, x).powerW,
        36.0);
}

TEST(Compare, ProducesBothReports)
{
    Rng rng(6);
    const sparse::CsrMatrix a = sparse::arrowBanded(128, 4, 0.3, 2, rng);
    const std::vector<float> x = sparse::randomVector(a.cols(), rng);
    const Comparison cmp = compare(a, x, "cmp", smallConfig());
    EXPECT_EQ(cmp.chason.accelerator, "chason");
    EXPECT_EQ(cmp.serpens.accelerator, "serpens");
    EXPECT_GT(cmp.speedup(), 1.0);
    EXPECT_GE(cmp.transferReduction(), 1.0);
    EXPECT_GT(cmp.energyGain(), 0.0);
}

TEST(Engine, DefaultConfigIsPaperGeometry)
{
    Engine engine(Engine::Kind::Chason);
    EXPECT_EQ(engine.config().sched.channels, 16u);
    EXPECT_EQ(engine.config().sched.pesPerGroup(), 8u);
    EXPECT_EQ(engine.config().sched.rawDistance, 10u);
    EXPECT_EQ(engine.config().sched.windowCols, 8192u);
    EXPECT_NEAR(engine.accelerator().frequencyMhz(), 301.0, 0.5);
}

} // namespace
} // namespace core
} // namespace chason
