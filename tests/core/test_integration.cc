/**
 * @file
 * Integration tests: full pipeline on Table 2 entries at the paper's
 * geometry, checking the evaluation section's qualitative claims.
 */

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/engine.h"
#include "sparse/dataset.h"
#include "sparse/generators.h"

namespace chason {
namespace core {
namespace {

SpmvReport
runKind(Engine::Kind kind, const sparse::CsrMatrix &a,
        const std::string &tag)
{
    Rng rng(0xE2E);
    const std::vector<float> x = sparse::randomVector(a.cols(), rng);
    return Engine(kind).run(a, x, tag);
}

TEST(Integration, MycielskianMatchesPaperShape)
{
    const sparse::CsrMatrix a = sparse::table2ByTag("MY").generate();
    const SpmvReport chason = runKind(Engine::Kind::Chason, a, "MY");
    const SpmvReport serpens = runKind(Engine::Kind::Serpens, a, "MY");

    // Functional correctness end to end.
    EXPECT_LE(chason.functionalError, 1.0);
    EXPECT_LE(serpens.functionalError, 1.0);

    // Fig. 11/12: Chasoň's underutilization is well below Serpens'.
    EXPECT_LT(chason.underutilizationPercent,
              serpens.underutilizationPercent);

    // Fig. 15 for MY: speedup ~4.3x, transfer reduction ~4.4x. Assert
    // the shape (clear win, single-digit factor).
    const double speedup = serpens.latencyMs / chason.latencyMs;
    EXPECT_GT(speedup, 2.0);
    EXPECT_LT(speedup, 12.0);
    const double transfer = static_cast<double>(
                                serpens.matrixStreamBytes) /
        static_cast<double>(chason.matrixStreamBytes);
    EXPECT_GT(transfer, 2.0);

    // Eq. 6: energy-efficiency gain ~1.8x in Table 3.
    const double energy_gain =
        chason.energyEfficiency / serpens.energyEfficiency;
    EXPECT_GT(energy_gain, 1.2);
}

TEST(Integration, TrajectoryMatrixHasExtremeSerpensStalls)
{
    // DY-class matrices drive Serpens above 90% underutilization
    // (Fig. 12) because dense border rows serialize.
    const sparse::CsrMatrix a = sparse::table2ByTag("DY").generate();
    const SpmvReport serpens = runKind(Engine::Kind::Serpens, a, "DY");
    EXPECT_GT(serpens.underutilizationPercent, 85.0);
    const SpmvReport chason = runKind(Engine::Kind::Chason, a, "DY");
    // The dense rows' serialization is irreducible, so Chasoň's stall
    // percentage stays high too (Fig. 12 shows DY in the 80-100 range
    // for both) — but strictly lower, with far fewer total beats.
    EXPECT_LT(chason.underutilizationPercent,
              serpens.underutilizationPercent);
    // Fig. 15: DY speedup ~7x; assert a substantial factor.
    EXPECT_GT(serpens.latencyMs / chason.latencyMs, 3.0);
}

TEST(Integration, SnapGraphWins)
{
    const sparse::CsrMatrix a = sparse::table2ByTag("WI").generate();
    const SpmvReport chason = runKind(Engine::Kind::Chason, a, "WI");
    const SpmvReport serpens = runKind(Engine::Kind::Serpens, a, "WI");
    EXPECT_LE(chason.functionalError, 1.0);
    EXPECT_GT(serpens.latencyMs / chason.latencyMs, 1.0);
}

TEST(Integration, FairnessAcrossPegs)
{
    // Fig. 13: Chasoň distributes stalls evenly across the 16 PEGs.
    const sparse::CsrMatrix a = sparse::table2ByTag("CM").generate();
    const SpmvReport chason = runKind(Engine::Kind::Chason, a, "CM");
    const SpmvReport serpens = runKind(Engine::Kind::Serpens, a, "CM");
    ASSERT_EQ(chason.perPegUnderutilization.size(), 16u);
    auto spread = [](const std::vector<double> &v) {
        const auto [lo, hi] = std::minmax_element(v.begin(), v.end());
        return *hi - *lo;
    };
    auto mean = [](const std::vector<double> &v) {
        double sum = 0.0;
        for (double e : v)
            sum += e;
        return sum / static_cast<double>(v.size());
    };
    // No PEG is left disproportionately starved (the spread stays
    // bounded even though the mean drops by tens of points), and the
    // mean itself is far below Serpens'.
    EXPECT_LE(spread(chason.perPegUnderutilization), 35.0);
    EXPECT_LT(mean(chason.perPegUnderutilization),
              mean(serpens.perPegUnderutilization) - 20.0);
}

TEST(Integration, C5ReductionOverheadStory)
{
    // Section 6.2.2: C5 (23 K rows/columns, few non-zeros) sweeps far
    // deeper URAMs through the Reduction Unit and drains a much longer
    // y than MY (3 K rows, dense), so the drain eats its transfer
    // savings: C5 converts a larger transfer reduction into a smaller
    // fraction of realized speedup than MY does.
    const sparse::CsrMatrix c5 = sparse::table2ByTag("C5").generate();
    const sparse::CsrMatrix my = sparse::table2ByTag("MY").generate();
    Rng rng(7);
    const std::vector<float> x5 = sparse::randomVector(c5.cols(), rng);
    const std::vector<float> xm = sparse::randomVector(my.cols(), rng);
    const Comparison cmp5 = compare(c5, x5, "C5");
    const Comparison cmpm = compare(my, xm, "MY");

    auto drain_share = [](const SpmvReport &r) {
        return static_cast<double>(r.cycleBreakdown.reduction +
                                   r.cycleBreakdown.writeback) /
            static_cast<double>(r.cycles);
    };
    EXPECT_GT(drain_share(cmp5.chason), drain_share(cmpm.chason));

    const double c5_realized = cmp5.speedup() / cmp5.transferReduction();
    const double my_realized = cmpm.speedup() / cmpm.transferReduction();
    EXPECT_LT(c5_realized, my_realized);
}

TEST(Integration, FrequencyAdvantageAppearsInLatency)
{
    // Even with zero stalls (a perfectly balanced matrix), Chasoň is
    // not slower than Serpens: effective beat rates are memory-matched.
    Rng rng(8);
    const sparse::CsrMatrix a = sparse::erdosRenyi(4096, 4096, 200000,
                                                   rng);
    const SpmvReport chason = runKind(Engine::Kind::Chason, a, "er");
    const SpmvReport serpens = runKind(Engine::Kind::Serpens, a, "er");
    EXPECT_LE(chason.latencyMs, serpens.latencyMs * 1.10);
}

} // namespace
} // namespace core
} // namespace chason
