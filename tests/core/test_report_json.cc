/**
 * @file
 * Tests for the JSON report emitter.
 */

#include "core/report_json.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "sparse/generators.h"

namespace chason {
namespace core {
namespace {

arch::ArchConfig
smallConfig()
{
    arch::ArchConfig cfg;
    cfg.sched.channels = 4;
    cfg.sched.pesOverride = 4;
    cfg.sched.rawDistance = 4;
    cfg.sched.windowCols = 128;
    cfg.sched.rowsPerLanePerPass = 64;
    return cfg;
}

TEST(JsonEscape, HandlesSpecials)
{
    EXPECT_EQ(jsonEscape("plain"), "plain");
    EXPECT_EQ(jsonEscape("a\"b"), "a\\\"b");
    EXPECT_EQ(jsonEscape("a\\b"), "a\\\\b");
    EXPECT_EQ(jsonEscape("a\nb\tc"), "a\\nb\\tc");
    EXPECT_EQ(jsonEscape(std::string(1, '\x01')), "\\u0001");
}

TEST(ToJson, SpmvReportFields)
{
    Rng rng(1);
    const sparse::CsrMatrix a = sparse::erdosRenyi(32, 64, 256, rng);
    const std::vector<float> x = sparse::randomVector(a.cols(), rng);
    const SpmvReport r =
        Engine(Engine::Kind::Chason, smallConfig()).run(a, x, "js\"on");
    const std::string json = toJson(r);

    EXPECT_EQ(json.front(), '{');
    EXPECT_EQ(json.back(), '}');
    EXPECT_NE(json.find("\"kind\":\"spmv\""), std::string::npos);
    EXPECT_NE(json.find("\"accelerator\":\"chason\""),
              std::string::npos);
    EXPECT_NE(json.find("\"dataset\":\"js\\\"on\""), std::string::npos);
    EXPECT_NE(json.find("\"nnz\":" + std::to_string(a.nnz())),
              std::string::npos);
    EXPECT_NE(json.find("\"per_peg_underutilization\":["),
              std::string::npos);
    // No raw control characters or NaNs.
    EXPECT_EQ(json.find("nan"), std::string::npos);
    EXPECT_EQ(json.find('\n'), std::string::npos);
}

TEST(ToJson, ComparisonNestsBothReports)
{
    Rng rng(2);
    const sparse::CsrMatrix a = sparse::arrowBanded(64, 4, 0.3, 1, rng);
    const std::vector<float> x = sparse::randomVector(a.cols(), rng);
    const Comparison cmp = compare(a, x, "cmp", smallConfig());
    const std::string json = toJson(cmp);
    EXPECT_NE(json.find("\"chason\":{"), std::string::npos);
    EXPECT_NE(json.find("\"serpens\":{"), std::string::npos);
    EXPECT_NE(json.find("\"speedup\":"), std::string::npos);
    EXPECT_NE(json.find("\"transfer_reduction\":"), std::string::npos);
}

TEST(ToJson, ScheduleStats)
{
    Rng rng(3);
    const sparse::CsrMatrix a = sparse::erdosRenyi(32, 64, 200, rng);
    Engine engine(Engine::Kind::Serpens, smallConfig());
    const sched::ScheduleStats stats =
        sched::analyze(engine.schedule(a));
    const std::string json = toJson(stats);
    EXPECT_NE(json.find("\"stalls\":"), std::string::npos);
    EXPECT_NE(json.find("\"matrix_bytes\":"), std::string::npos);
}

TEST(ToJson, SpmmReport)
{
    Rng rng(4);
    const sparse::CsrMatrix a = sparse::erdosRenyi(32, 64, 256, rng);
    std::vector<float> b(static_cast<std::size_t>(a.cols()) * 4, 0.5f);
    const SpmmReport r =
        SpmmEngine(Engine::Kind::Chason, SpmmConfig{}, smallConfig())
            .run(a, b, 4);
    const std::string json = toJson(r);
    EXPECT_NE(json.find("\"kind\":\"spmm\""), std::string::npos);
    EXPECT_NE(json.find("\"n_cols\":4"), std::string::npos);
    EXPECT_NE(json.find("\"tiles\":1"), std::string::npos);
}

TEST(ToJson, BalancedBraces)
{
    Rng rng(5);
    const sparse::CsrMatrix a = sparse::erdosRenyi(16, 16, 64, rng);
    const std::vector<float> x = sparse::randomVector(a.cols(), rng);
    const Comparison cmp = compare(a, x, "", smallConfig());
    const std::string json = toJson(cmp);
    int depth = 0;
    for (char c : json) {
        if (c == '{')
            ++depth;
        if (c == '}')
            --depth;
        EXPECT_GE(depth, 0);
    }
    EXPECT_EQ(depth, 0);
}

} // namespace
} // namespace core
} // namespace chason
