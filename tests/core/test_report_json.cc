/**
 * @file
 * Tests for the JSON report emitter.
 */

#include "core/report_json.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "sparse/generators.h"

namespace chason {
namespace core {
namespace {

arch::ArchConfig
smallConfig()
{
    arch::ArchConfig cfg;
    cfg.sched.channels = 4;
    cfg.sched.pesOverride = 4;
    cfg.sched.rawDistance = 4;
    cfg.sched.windowCols = 128;
    cfg.sched.rowsPerLanePerPass = 64;
    return cfg;
}

TEST(JsonEscape, HandlesSpecials)
{
    EXPECT_EQ(jsonEscape("plain"), "plain");
    EXPECT_EQ(jsonEscape("a\"b"), "a\\\"b");
    EXPECT_EQ(jsonEscape("a\\b"), "a\\\\b");
    EXPECT_EQ(jsonEscape("a\nb\tc"), "a\\nb\\tc");
    EXPECT_EQ(jsonEscape(std::string(1, '\x01')), "\\u0001");
}

/** Inverse of jsonEscape for the escapes it emits, to prove the
 *  escaping is lossless rather than merely parseable. */
std::string
jsonUnescape(const std::string &escaped)
{
    std::string out;
    for (std::size_t i = 0; i < escaped.size(); ++i) {
        if (escaped[i] != '\\') {
            out += escaped[i];
            continue;
        }
        const char next = escaped[++i];
        switch (next) {
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case 'u': {
            const unsigned code = static_cast<unsigned>(
                std::stoul(escaped.substr(i + 1, 4), nullptr, 16));
            out += static_cast<char>(code);
            i += 4;
            break;
          }
          default: ADD_FAILURE() << "unknown escape \\" << next;
        }
    }
    return out;
}

TEST(JsonEscape, ControlCharactersRoundTrip)
{
    // Every byte below 0x20 must come back bit-identical, whether it
    // uses a short escape (\n, \t, \r) or \uXXXX.
    std::string raw = "a\nb\tc\x01d";
    raw += '\x1f';
    raw += '\0';
    raw += '\x0b';
    EXPECT_EQ(jsonUnescape(jsonEscape(raw)), raw);

    std::string all;
    for (int c = 0; c < 0x20; ++c)
        all += static_cast<char>(c);
    const std::string escaped = jsonEscape(all);
    // Escaped form itself contains no raw control bytes.
    for (char c : escaped)
        EXPECT_GE(static_cast<unsigned char>(c), 0x20u);
    EXPECT_EQ(jsonUnescape(escaped), all);
}

TEST(ToJson, SpmvReportFields)
{
    Rng rng(1);
    const sparse::CsrMatrix a = sparse::erdosRenyi(32, 64, 256, rng);
    const std::vector<float> x = sparse::randomVector(a.cols(), rng);
    const SpmvReport r =
        Engine(Engine::Kind::Chason, smallConfig()).run(a, x, "js\"on");
    const std::string json = toJson(r);

    EXPECT_EQ(json.front(), '{');
    EXPECT_EQ(json.back(), '}');
    EXPECT_NE(json.find("\"kind\":\"spmv\""), std::string::npos);
    EXPECT_NE(json.find("\"accelerator\":\"chason\""),
              std::string::npos);
    EXPECT_NE(json.find("\"dataset\":\"js\\\"on\""), std::string::npos);
    EXPECT_NE(json.find("\"nnz\":" + std::to_string(a.nnz())),
              std::string::npos);
    EXPECT_NE(json.find("\"per_peg_underutilization\":["),
              std::string::npos);
    // No raw control characters or NaNs.
    EXPECT_EQ(json.find("nan"), std::string::npos);
    EXPECT_EQ(json.find('\n'), std::string::npos);
}

TEST(ToJson, CycleBreakdownEmbeddedAndReconciles)
{
    Rng rng(6);
    const sparse::CsrMatrix a = sparse::erdosRenyi(48, 48, 300, rng);
    const std::vector<float> x = sparse::randomVector(a.cols(), rng);
    const SpmvReport r =
        Engine(Engine::Kind::Chason, smallConfig()).run(a, x, "bd");
    const std::string json = toJson(r);
    EXPECT_NE(json.find("\"cycle_breakdown\":{"), std::string::npos);
    EXPECT_NE(json.find("\"matrix_stream\":" +
                        std::to_string(r.cycleBreakdown.matrixStream)),
              std::string::npos);
    // The embedded total equals the report's top-level cycle count.
    EXPECT_NE(json.find("\"total\":" + std::to_string(r.cycles)),
              std::string::npos);

    const std::string breakdown = toJson(r.cycleBreakdown);
    EXPECT_NE(breakdown.find("\"reduction\":"), std::string::npos);
    EXPECT_NE(breakdown.find("\"launch\":"), std::string::npos);
}

TEST(ToJson, ComparisonNestsBothReports)
{
    Rng rng(2);
    const sparse::CsrMatrix a = sparse::arrowBanded(64, 4, 0.3, 1, rng);
    const std::vector<float> x = sparse::randomVector(a.cols(), rng);
    const Comparison cmp = compare(a, x, "cmp", smallConfig());
    const std::string json = toJson(cmp);
    EXPECT_NE(json.find("\"chason\":{"), std::string::npos);
    EXPECT_NE(json.find("\"serpens\":{"), std::string::npos);
    EXPECT_NE(json.find("\"speedup\":"), std::string::npos);
    EXPECT_NE(json.find("\"transfer_reduction\":"), std::string::npos);
}

TEST(ToJson, ScheduleStats)
{
    Rng rng(3);
    const sparse::CsrMatrix a = sparse::erdosRenyi(32, 64, 200, rng);
    Engine engine(Engine::Kind::Serpens, smallConfig());
    const sched::ScheduleStats stats =
        sched::analyze(engine.schedule(a));
    const std::string json = toJson(stats);
    EXPECT_NE(json.find("\"stalls\":"), std::string::npos);
    EXPECT_NE(json.find("\"matrix_bytes\":"), std::string::npos);
}

TEST(ToJson, SpmmReport)
{
    Rng rng(4);
    const sparse::CsrMatrix a = sparse::erdosRenyi(32, 64, 256, rng);
    std::vector<float> b(static_cast<std::size_t>(a.cols()) * 4, 0.5f);
    const SpmmReport r =
        SpmmEngine(Engine::Kind::Chason, SpmmConfig{}, smallConfig())
            .run(a, b, 4);
    const std::string json = toJson(r);
    EXPECT_NE(json.find("\"kind\":\"spmm\""), std::string::npos);
    EXPECT_NE(json.find("\"n_cols\":4"), std::string::npos);
    EXPECT_NE(json.find("\"tiles\":1"), std::string::npos);
}

TEST(ToJson, BalancedBraces)
{
    Rng rng(5);
    const sparse::CsrMatrix a = sparse::erdosRenyi(16, 16, 64, rng);
    const std::vector<float> x = sparse::randomVector(a.cols(), rng);
    const Comparison cmp = compare(a, x, "", smallConfig());
    const std::string json = toJson(cmp);
    int depth = 0;
    for (char c : json) {
        if (c == '{')
            ++depth;
        if (c == '}')
            --depth;
        EXPECT_GE(depth, 0);
    }
    EXPECT_EQ(depth, 0);
}

} // namespace
} // namespace core
} // namespace chason
