/**
 * @file
 * Tests for the thread pool and the batch execution engine: result
 * ordering, cache accounting, and — the load-bearing guarantee —
 * bit-identical results to the serial engine for any worker count.
 */

#include "core/batch_engine.h"

#include <algorithm>
#include <atomic>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "sparse/generators.h"

namespace chason {
namespace core {
namespace {

arch::ArchConfig
smallConfig()
{
    arch::ArchConfig cfg;
    cfg.sched.channels = 4;
    cfg.sched.pesOverride = 4;
    cfg.sched.rawDistance = 4;
    cfg.sched.windowCols = 128;
    cfg.sched.rowsPerLanePerPass = 64;
    return cfg;
}

sparse::CsrMatrix
matrix(std::uint64_t seed)
{
    Rng rng(seed);
    return sparse::erdosRenyi(96, 96, 900, rng);
}

/** Every SpmvReport field must match bit for bit. */
void
expectIdentical(const SpmvReport &a, const SpmvReport &b)
{
    EXPECT_EQ(a.accelerator, b.accelerator);
    EXPECT_EQ(a.dataset, b.dataset);
    EXPECT_EQ(a.rows, b.rows);
    EXPECT_EQ(a.cols, b.cols);
    EXPECT_EQ(a.nnz, b.nnz);
    EXPECT_EQ(a.frequencyMhz, b.frequencyMhz);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.latencyMs, b.latencyMs);
    EXPECT_EQ(a.gflops, b.gflops);
    EXPECT_EQ(a.powerW, b.powerW);
    EXPECT_EQ(a.energyEfficiency, b.energyEfficiency);
    EXPECT_EQ(a.bandwidthEfficiency, b.bandwidthEfficiency);
    EXPECT_EQ(a.underutilizationPercent, b.underutilizationPercent);
    EXPECT_EQ(a.perPegUnderutilization, b.perPegUnderutilization);
    EXPECT_EQ(a.matrixStreamBytes, b.matrixStreamBytes);
    EXPECT_EQ(a.totalBytes, b.totalBytes);
    EXPECT_EQ(a.functionalError, b.functionalError);
}

BatchJob
job(std::uint64_t matrixSeed, Engine::Kind kind, const std::string &tag)
{
    BatchJob j;
    j.dataset = tag;
    j.matrix = matrix(matrixSeed);
    j.kind = kind;
    j.config = smallConfig();
    j.xSeed = 0xABC0 + matrixSeed;
    return j;
}

TEST(ThreadPool, ParallelForCoversEveryIndexOnce)
{
    ThreadPool pool(4);
    EXPECT_EQ(pool.workers(), 4u);

    constexpr std::size_t kN = 500;
    std::vector<std::atomic<int>> counts(kN);
    pool.parallelFor(kN, [&](std::size_t i) { ++counts[i]; });
    for (std::size_t i = 0; i < kN; ++i)
        EXPECT_EQ(counts[i].load(), 1);
}

TEST(ThreadPool, WaitDrainsPostedTasks)
{
    ThreadPool pool(3);
    std::atomic<int> done{0};
    for (int i = 0; i < 64; ++i)
        pool.post([&done] { ++done; });
    pool.wait();
    EXPECT_EQ(done.load(), 64);
}

TEST(BatchEngine, ResultsBitIdenticalToSerialEngine)
{
    BatchOptions options;
    options.workers = 4;
    BatchEngine batch(options);

    std::vector<BatchJob> jobs;
    for (std::uint64_t seed = 1; seed <= 5; ++seed) {
        jobs.push_back(job(seed, Engine::Kind::Chason, "c"));
        jobs.push_back(job(seed, Engine::Kind::Serpens, "s"));
    }
    for (std::size_t i = 0; i < jobs.size(); ++i)
        EXPECT_EQ(batch.submit(jobs[i]), i);
    const BatchReport report = batch.drain();

    ASSERT_EQ(report.reports.size(), jobs.size());
    EXPECT_EQ(report.jobs, jobs.size());
    EXPECT_EQ(report.workers, 4u);
    for (std::size_t i = 0; i < jobs.size(); ++i) {
        const Engine engine(jobs[i].kind, jobs[i].config);
        Rng rng(jobs[i].xSeed);
        const std::vector<float> x =
            sparse::randomVector(jobs[i].matrix.cols(), rng);
        expectIdentical(report.reports[i],
                        engine.run(jobs[i].matrix, x, jobs[i].dataset));
    }
}

TEST(BatchEngine, SameSeedSameJobsAnyWorkerCount)
{
    auto runBatch = [](unsigned workers) {
        BatchOptions options;
        options.workers = workers;
        BatchEngine batch(options);
        for (std::uint64_t seed = 1; seed <= 6; ++seed)
            batch.submit(job(seed, seed % 2 == 0
                                       ? Engine::Kind::Chason
                                       : Engine::Kind::Serpens,
                             "m" + std::to_string(seed)));
        return batch.drain();
    };

    const BatchReport serial = runBatch(1);
    const BatchReport parallel = runBatch(4);
    ASSERT_EQ(serial.reports.size(), parallel.reports.size());
    for (std::size_t i = 0; i < serial.reports.size(); ++i)
        expectIdentical(serial.reports[i], parallel.reports[i]);

    // The cache sees the same key set either way.
    EXPECT_EQ(serial.cache.hits, parallel.cache.hits);
    EXPECT_EQ(serial.cache.misses, parallel.cache.misses);
}

TEST(BatchEngine, DuplicateJobsHitTheSharedCache)
{
    BatchOptions options;
    options.workers = 4;
    BatchEngine batch(options);

    // Three copies of the same (matrix, config) job plus one distinct.
    for (int copy = 0; copy < 3; ++copy)
        batch.submit(job(1, Engine::Kind::Chason, "dup"));
    batch.submit(job(2, Engine::Kind::Chason, "other"));
    const BatchReport report = batch.drain();

    EXPECT_EQ(report.cache.misses, 2u); // one per distinct schedule
    EXPECT_EQ(report.cache.hits, 2u);   // the duplicate copies
    expectIdentical(report.reports[0], report.reports[1]);
    expectIdentical(report.reports[1], report.reports[2]);
}

TEST(BatchEngine, DrainStartsAFreshBatch)
{
    BatchEngine batch(BatchOptions{2, ScheduleCache::kDefaultBudgetBytes});
    batch.submit(job(1, Engine::Kind::Chason, "a"));
    EXPECT_EQ(batch.drain().reports.size(), 1u);

    // Indices restart; the cache carries over (same key: a hit).
    EXPECT_EQ(batch.submit(job(1, Engine::Kind::Chason, "a")), 0u);
    const BatchReport second = batch.drain();
    EXPECT_EQ(second.reports.size(), 1u);
    EXPECT_EQ(second.cache.hits, 1u);
}

TEST(BatchEngine, CollectRetiresOneJobAndMatchesDrain)
{
    BatchOptions options;
    options.workers = 2;
    BatchEngine streaming(options);
    BatchEngine batch(options);

    // Reference reports through the batch path.
    const std::size_t i0 = batch.submit(job(1, Engine::Kind::Chason, "a"));
    const std::size_t i1 = batch.submit(job(2, Engine::Kind::Chason, "b"));
    ASSERT_EQ(i0, 0u);
    ASSERT_EQ(i1, 1u);
    const BatchReport reference = batch.drain();

    // Streaming path: collect out of submission order.
    const std::size_t s0 =
        streaming.submit(job(1, Engine::Kind::Chason, "a"));
    const std::size_t s1 =
        streaming.submit(job(2, Engine::Kind::Chason, "b"));
    const SpmvReport r1 = streaming.collect(s1);
    const SpmvReport r0 = streaming.collect(s0);
    expectIdentical(r0, reference.reports[0]);
    expectIdentical(r1, reference.reports[1]);
    EXPECT_EQ(streaming.pendingJobs(), 0u);

    // drain() after per-job retirement sees only uncollected jobs.
    const std::size_t s2 =
        streaming.submit(job(3, Engine::Kind::Chason, "c"));
    streaming.collect(s2);
    streaming.submit(job(4, Engine::Kind::Chason, "d"));
    const BatchReport rest = streaming.drain();
    ASSERT_EQ(rest.reports.size(), 1u);
    EXPECT_EQ(rest.reports[0].dataset, "d");
    // Indices restart after drain.
    EXPECT_EQ(streaming.submit(job(5, Engine::Kind::Chason, "e")), 0u);
    streaming.drain();
}

TEST(BatchEngine, CollectOfUnknownIndexDies)
{
    BatchOptions options;
    options.workers = 1;
    BatchEngine engine(options);
    const std::size_t index =
        engine.submit(job(1, Engine::Kind::Chason, "a"));
    engine.collect(index);
    EXPECT_DEATH(engine.collect(index), "already-collected");
    EXPECT_DEATH(engine.collect(1234), "unknown");
}

// The streaming-caller regression: submitting 10k jobs while
// collecting keeps the engine at O(window) slots — before the retire
// path, jobs_/reports_ (and every submitted matrix) grew until
// drain().
TEST(BatchEngine, SteadyStateMemoryIsBoundedOver10kSubmits)
{
    BatchOptions options;
    options.workers = 4;
    BatchEngine engine(options);

    // Tiny jobs; the point is slot accounting, not simulation work.
    const sparse::CsrMatrix a = matrix(7);
    constexpr std::size_t kSubmits = 10000;
    constexpr std::size_t kWindow = 16;
    std::size_t maxPending = 0;
    std::vector<std::size_t> inFlight;
    inFlight.reserve(kWindow);
    for (std::size_t i = 0; i < kSubmits; ++i) {
        BatchJob j;
        j.dataset = "steady";
        j.matrix = a;
        j.config = smallConfig();
        j.xSeed = 0x5EED + (i % 8);
        inFlight.push_back(engine.submit(std::move(j)));
        if (inFlight.size() == kWindow) {
            for (const std::size_t index : inFlight)
                engine.collect(index);
            inFlight.clear();
            maxPending = std::max(maxPending, engine.pendingJobs());
        }
    }
    for (const std::size_t index : inFlight)
        engine.collect(index);
    // Steady state never accumulates beyond the in-flight window.
    EXPECT_LE(maxPending, kWindow);
    EXPECT_EQ(engine.pendingJobs(), 0u);
    EXPECT_EQ(engine.drain().reports.size(), 0u);
}

TEST(BatchEngine, ParallelForSharesTheCache)
{
    BatchOptions options;
    options.workers = 4;
    BatchEngine batch(options);
    const sparse::CsrMatrix a = matrix(3);

    std::vector<std::shared_ptr<const sched::Schedule>> seen(8);
    batch.parallelFor(seen.size(), [&](std::size_t i) {
        const Engine engine(Engine::Kind::Chason, smallConfig());
        seen[i] = batch.schedule(engine, a);
    });
    for (std::size_t i = 1; i < seen.size(); ++i)
        EXPECT_EQ(seen[0].get(), seen[i].get());
    EXPECT_EQ(batch.cache().stats().misses, 1u);
}

} // namespace
} // namespace core
} // namespace chason
