/**
 * @file
 * Tests for the full kernel contract y = alpha * A x + beta * y_in.
 */

#include <gtest/gtest.h>

#include "core/engine.h"
#include "common/rng.h"
#include "sparse/generators.h"

namespace chason {
namespace core {
namespace {

arch::ArchConfig
smallConfig()
{
    arch::ArchConfig cfg;
    cfg.sched.channels = 4;
    cfg.sched.pesOverride = 4;
    cfg.sched.rawDistance = 4;
    cfg.sched.windowCols = 128;
    cfg.sched.rowsPerLanePerPass = 64;
    return cfg;
}

struct Fixture
{
    sparse::CsrMatrix a;
    std::vector<float> x;
    std::vector<float> y_in;

    explicit Fixture(std::uint64_t seed)
    {
        Rng rng(seed);
        a = sparse::erdosRenyi(80, 200, 900, rng);
        x = sparse::randomVector(a.cols(), rng);
        y_in = sparse::randomVector(a.rows(), rng);
    }
};

TEST(AlphaBeta, DefaultIsPlainSpmv)
{
    Fixture f(1);
    Engine engine(Engine::Kind::Chason, smallConfig());
    std::vector<float> y_default, y_explicit;
    engine.run(f.a, f.x, "", &y_default);
    arch::SpmvParams params;
    params.alpha = 1.0f;
    params.beta = 0.0f;
    engine.run(f.a, f.x, "", &y_explicit, params);
    EXPECT_EQ(y_default, y_explicit);
}

TEST(AlphaBeta, AlphaScalesResult)
{
    Fixture f(2);
    Engine engine(Engine::Kind::Chason, smallConfig());
    std::vector<float> y1, y2;
    engine.run(f.a, f.x, "", &y1);
    arch::SpmvParams params;
    params.alpha = -2.5f;
    const SpmvReport r = engine.run(f.a, f.x, "", &y2, params);
    EXPECT_LE(r.functionalError, 1.0);
    for (std::size_t i = 0; i < y1.size(); ++i)
        EXPECT_FLOAT_EQ(y2[i], -2.5f * y1[i]);
}

TEST(AlphaBeta, BetaBlendsPreviousY)
{
    Fixture f(3);
    Engine engine(Engine::Kind::Chason, smallConfig());
    std::vector<float> ax, blended;
    engine.run(f.a, f.x, "", &ax);
    arch::SpmvParams params;
    params.alpha = 1.0f;
    params.beta = 0.5f;
    params.yIn = &f.y_in;
    const SpmvReport r = engine.run(f.a, f.x, "", &blended, params);
    EXPECT_LE(r.functionalError, 1.0);
    for (std::size_t i = 0; i < ax.size(); ++i)
        EXPECT_NEAR(blended[i], ax[i] + 0.5f * f.y_in[i], 1e-4);
}

TEST(AlphaBeta, BetaAddsYReadTraffic)
{
    Fixture f(4);
    Engine engine(Engine::Kind::Chason, smallConfig());
    const SpmvReport plain = engine.run(f.a, f.x);
    arch::SpmvParams params;
    params.beta = 1.0f;
    params.yIn = &f.y_in;
    const SpmvReport blended =
        engine.run(f.a, f.x, "", nullptr, params);
    EXPECT_GT(blended.totalBytes, plain.totalBytes);
    // The read prefetches behind streaming: no extra cycles.
    EXPECT_EQ(blended.cycles, plain.cycles);
}

TEST(AlphaBeta, WorksOnSerpensToo)
{
    Fixture f(5);
    Engine engine(Engine::Kind::Serpens, smallConfig());
    arch::SpmvParams params;
    params.alpha = 3.0f;
    params.beta = -1.0f;
    params.yIn = &f.y_in;
    const SpmvReport r = engine.run(f.a, f.x, "", nullptr, params);
    EXPECT_LE(r.functionalError, 1.0);
}

TEST(AlphaBetaDeath, BetaWithoutYInPanics)
{
    Fixture f(6);
    Engine engine(Engine::Kind::Chason, smallConfig());
    arch::SpmvParams params;
    params.beta = 1.0f; // yIn left null
    EXPECT_DEATH(engine.run(f.a, f.x, "", nullptr, params), "y_in");
}

TEST(AlphaBeta, JacobiIterationConverges)
{
    // A practical use of the contract: Jacobi on a diagonally dominant
    // system, x_{k+1} = x_k + D^-1 (b - A x_k), expressed with
    // alpha/beta calls.
    Rng rng(7);
    const std::uint32_t n = 96;
    sparse::CooMatrix coo(n, n);
    for (std::uint32_t r = 0; r < n; ++r) {
        coo.add(r, r, 4.0f);
        coo.add(r, (r + 1) % n, -1.0f);
        coo.add(r, (r + 7) % n, -1.0f);
    }
    const sparse::CsrMatrix a = coo.toCsr();
    std::vector<float> b(n, 1.0f);
    std::vector<float> xk(n, 0.0f);

    Engine engine(Engine::Kind::Chason, smallConfig());
    const sched::Schedule sch = engine.schedule(a);
    for (int it = 0; it < 40; ++it) {
        // r_k = -A x_k + b   (alpha = -1, beta = 1, y_in = b)
        arch::SpmvParams params;
        params.alpha = -1.0f;
        params.beta = 1.0f;
        params.yIn = &b;
        std::vector<float> residual;
        engine.runScheduled(sch, a, xk, "", &residual, params);
        for (std::uint32_t i = 0; i < n; ++i)
            xk[i] += residual[i] / 4.0f;
    }
    const std::vector<double> ax = sparse::spmvReference(a, xk);
    for (std::uint32_t i = 0; i < n; ++i)
        EXPECT_NEAR(ax[i], 1.0, 1e-4);
}

} // namespace
} // namespace core
} // namespace chason
