/**
 * @file
 * Determinism regressions for the offline fast paths.
 *
 * The rewrite's contract is that none of its speed mechanisms —
 * parallel phase scheduling (jobs > 1), the SoA/AVX2 streaming core,
 * the precomputed StreamPlan, PEG pooling, the blocked column scatter —
 * may change one bit of any result. These tests pin that contract on
 * three R-MAT tiers: parallel CrHCS must serialize to the exact bytes
 * of the sequential schedule, the planned simulation must reproduce
 * run() exactly (y, every cycle counter, the report JSON), and the
 * cache-blocked scatter must produce the direct scatter's arrays.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <vector>

#include "arch/chason_accel.h"
#include "arch/stream_soa.h"
#include "common/rng.h"
#include "core/engine.h"
#include "core/report_json.h"
#include "sched/crhcs.h"
#include "sched/schedule_io.h"
#include "sparse/csc.h"
#include "sparse/generators.h"

namespace chason {
namespace {

struct Tier
{
    const char *name;
    std::uint32_t scale;
    std::size_t nnzTarget;
};

/** Three sizes: single-window, multi-window, multi-pass territory. */
const Tier kTiers[] = {
    {"tiny", 8, 1u << 12},
    {"small", 10, 1u << 14},
    {"medium", 12, 1u << 16},
};

sparse::CsrMatrix
tierMatrix(const Tier &tier)
{
    Rng rng = Rng::forStream(0xD373, tier.scale);
    return sparse::rmat(tier.scale, tier.nnzTarget, rng);
}

std::string
scheduleBytes(const sched::Schedule &schedule)
{
    std::ostringstream out;
    sched::writeSchedule(schedule, out);
    return out.str();
}

TEST(PerfDeterminism, ParallelSchedulingIsBitIdentical)
{
    const sched::SchedConfig config;
    for (const Tier &tier : kTiers) {
        SCOPED_TRACE(tier.name);
        const sparse::CsrMatrix a = tierMatrix(tier);

        sched::CrhcsScheduler sequential(config);
        sequential.setJobs(1);
        const std::string bytes1 =
            scheduleBytes(sequential.schedule(a));
        // Oversubscribed worker counts on small machines are fine —
        // and exactly the point: the (pass, window) fan-out, the
        // work-stealing pool and the sharded migration setup must
        // serialize to the same bytes at *every* jobs value.
        for (const unsigned jobs : {3u, 8u}) {
            SCOPED_TRACE(jobs);
            sched::CrhcsScheduler parallel(config);
            parallel.setJobs(jobs);
            EXPECT_EQ(bytes1, scheduleBytes(parallel.schedule(a)));
        }
    }
}

TEST(PerfDeterminism, PlannedSimulationMatchesRunExactly)
{
    arch::ArchConfig ac;
    const arch::ChasonAccelerator accel(ac);
    const sched::CrhcsScheduler scheduler(ac.sched);
    for (const Tier &tier : kTiers) {
        SCOPED_TRACE(tier.name);
        const sparse::CsrMatrix a = tierMatrix(tier);
        Rng rng = Rng::forStream(0xD373F00D, tier.scale);
        const std::vector<float> x = sparse::randomVector(a.cols(), rng);

        const sched::Schedule schedule = scheduler.schedule(a);
        const arch::StreamPlan plan(schedule, accel.migrationDepth());

        const arch::RunResult ref = accel.run(schedule, x);
        const arch::RunResult planned =
            accel.runPlanned(schedule, plan, x);

        ASSERT_EQ(ref.y.size(), planned.y.size());
        // operator== on the vectors is the bit check: equal floats,
        // including signed zeros behaving identically downstream.
        EXPECT_TRUE(ref.y == planned.y);
        EXPECT_EQ(ref.cycles.total(), planned.cycles.total());
        EXPECT_EQ(ref.cycles.matrixStream, planned.cycles.matrixStream);
        EXPECT_EQ(ref.cycles.xLoad, planned.cycles.xLoad);
        EXPECT_EQ(ref.cycles.pipelineFill, planned.cycles.pipelineFill);
        EXPECT_EQ(ref.cycles.reduction, planned.cycles.reduction);
        EXPECT_EQ(ref.cycles.writeback, planned.cycles.writeback);
        EXPECT_DOUBLE_EQ(ref.latencyUs, planned.latencyUs);
    }
}

TEST(PerfDeterminism, ReportJsonUnchangedByParallelScheduling)
{
    const core::Engine engine(core::Engine::Kind::Chason);
    for (const Tier &tier : kTiers) {
        SCOPED_TRACE(tier.name);
        const sparse::CsrMatrix a = tierMatrix(tier);
        Rng rng = Rng::forStream(0xD373F00D, tier.scale);
        const std::vector<float> x = sparse::randomVector(a.cols(), rng);

        sched::CrhcsScheduler sequential(engine.config().sched);
        sequential.setJobs(1);
        const std::string json1 = core::toJson(engine.runScheduled(
            sequential.schedule(a), a, x, tier.name));
        for (const unsigned jobs : {3u, 8u}) {
            SCOPED_TRACE(jobs);
            sched::CrhcsScheduler parallel(engine.config().sched);
            parallel.setJobs(jobs);
            const std::string jsonN = core::toJson(engine.runScheduled(
                parallel.schedule(a), a, x, tier.name));
            EXPECT_EQ(json1, jsonN);
        }
    }
}

TEST(PerfDeterminism, BlockedColumnScatterMatchesDirect)
{
    for (const Tier &tier : kTiers) {
        SCOPED_TRACE(tier.name);
        const sparse::CsrMatrix a = tierMatrix(tier);
        const std::vector<std::size_t> col_ptr =
            sparse::columnPointers(a);

        std::vector<std::uint32_t> direct_idx(a.nnz());
        std::vector<float> direct_val(a.nnz());
        // block_cols >= cols forces the direct path.
        sparse::scatterByColumn(a, col_ptr, direct_idx.data(),
                                direct_val.data(), a.cols());

        for (std::uint32_t block_cols : {16u, 64u, 1024u}) {
            std::vector<std::uint32_t> blocked_idx(a.nnz());
            std::vector<float> blocked_val(a.nnz());
            sparse::scatterByColumn(a, col_ptr, blocked_idx.data(),
                                    blocked_val.data(), block_cols);
            EXPECT_TRUE(direct_idx == blocked_idx);
            EXPECT_TRUE(direct_val == blocked_val);
        }

        // And the conversions built on it still round-trip.
        const sparse::CsrMatrix t2 = a.transpose().transpose();
        EXPECT_TRUE(a.rowPtr() == t2.rowPtr());
        EXPECT_TRUE(a.colIdx() == t2.colIdx());
        EXPECT_TRUE(a.values() == t2.values());
        const sparse::CsrMatrix round =
            sparse::CscMatrix::fromCsr(a).toCsr();
        EXPECT_TRUE(a.colIdx() == round.colIdx());
        EXPECT_TRUE(a.values() == round.values());
    }
}

} // namespace
} // namespace chason
