/**
 * @file
 * Tests for the SpMM extension (Section 7.2).
 */

#include "core/spmm.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "sparse/generators.h"

namespace chason {
namespace core {
namespace {

arch::ArchConfig
smallArch()
{
    arch::ArchConfig cfg;
    cfg.sched.pesOverride = 4;
    cfg.sched.rawDistance = 4;
    cfg.sched.windowCols = 256;
    cfg.sched.rowsPerLanePerPass = 64;
    return cfg;
}

std::vector<float>
denseB(std::uint32_t rows, std::uint32_t cols, std::uint64_t seed)
{
    Rng rng(seed);
    std::vector<float> b(static_cast<std::size_t>(rows) * cols);
    for (float &v : b)
        v = rng.nextFloat(0.1f, 1.0f);
    return b;
}

TEST(SpmmReference, MatchesHandComputation)
{
    // A = [[2, 0], [0, 3]], B = [[1, 4], [2, 5]] -> C = [[2, 8], [6, 15]]
    sparse::CooMatrix coo(2, 2);
    coo.add(0, 0, 2.0f);
    coo.add(1, 1, 3.0f);
    const std::vector<float> b = {1, 2, 4, 5}; // column-major
    const std::vector<double> c = spmmReference(coo.toCsr(), b, 2);
    EXPECT_DOUBLE_EQ(c[0], 2.0);
    EXPECT_DOUBLE_EQ(c[1], 6.0);
    EXPECT_DOUBLE_EQ(c[2], 8.0);
    EXPECT_DOUBLE_EQ(c[3], 15.0);
}

TEST(SpmmEngine, FunctionallyCorrectChason)
{
    Rng rng(1);
    const sparse::CsrMatrix a = sparse::zipfRows(96, 300, 1500, 1.3, rng);
    const std::vector<float> b = denseB(a.cols(), 12, 2);

    SpmmEngine engine(Engine::Kind::Chason, SpmmConfig{}, smallArch());
    std::vector<float> c;
    const SpmmReport report = engine.run(a, b, 12, &c);

    EXPECT_LE(report.functionalError, 1.0);
    ASSERT_EQ(c.size(), static_cast<std::size_t>(a.rows()) * 12);
    const std::vector<double> ref = spmmReference(a, b, 12);
    for (std::size_t i = 0; i < c.size(); ++i)
        EXPECT_NEAR(c[i], ref[i], 1e-3 * std::abs(ref[i]) + 1e-4);
}

TEST(SpmmEngine, FunctionallyCorrectSerpens)
{
    Rng rng(3);
    const sparse::CsrMatrix a = sparse::erdosRenyi(80, 200, 1200, rng);
    const std::vector<float> b = denseB(a.cols(), 6, 4);
    SpmmEngine engine(Engine::Kind::Serpens, SpmmConfig{}, smallArch());
    const SpmmReport report = engine.run(a, b, 6);
    EXPECT_LE(report.functionalError, 1.0);
    EXPECT_EQ(report.accelerator, "serpens");
}

TEST(SpmmEngine, TileCountAndThroughputScaling)
{
    Rng rng(5);
    const sparse::CsrMatrix a = sparse::erdosRenyi(64, 128, 800, rng);
    SpmmEngine engine(Engine::Kind::Chason, SpmmConfig{}, smallArch());

    const SpmmReport r8 = engine.run(a, denseB(a.cols(), 8, 6), 8);
    const SpmmReport r32 = engine.run(a, denseB(a.cols(), 32, 7), 32);
    EXPECT_EQ(r8.tiles, 1u);
    EXPECT_EQ(r32.tiles, 4u);
    // 4x the work at ~4x the time: throughput roughly flat or better.
    EXPECT_GT(r32.gflops, 0.7 * r8.gflops);
    EXPECT_GT(r32.latencyMs, r8.latencyMs);
}

TEST(SpmmEngine, ChasonBeatsSerpensOnImbalance)
{
    Rng rng(8);
    const sparse::CsrMatrix a = sparse::arrowBanded(96, 4, 0.3, 2, rng);
    const std::vector<float> b = denseB(a.cols(), 8, 9);
    const SpmmReport c =
        SpmmEngine(Engine::Kind::Chason, SpmmConfig{}, smallArch())
            .run(a, b, 8);
    const SpmmReport s =
        SpmmEngine(Engine::Kind::Serpens, SpmmConfig{}, smallArch())
            .run(a, b, 8);
    EXPECT_LT(c.latencyMs, s.latencyMs);
    EXPECT_LT(c.underutilizationPercent, s.underutilizationPercent);
}

TEST(SpmmEngine, Equation8AlphaBeta)
{
    // C = alpha*A*B + beta*C_in (Eq. 8).
    Rng rng(11);
    const sparse::CsrMatrix a = sparse::erdosRenyi(48, 96, 500, rng);
    const std::vector<float> b = denseB(a.cols(), 4, 12);
    const std::vector<float> c_in = denseB(a.rows(), 4, 13);
    SpmmEngine engine(Engine::Kind::Chason, SpmmConfig{}, smallArch());

    std::vector<float> plain, blended;
    engine.run(a, b, 4, &plain);
    const SpmmReport r =
        engine.run(a, b, 4, &blended, 2.0f, -0.5f, &c_in);
    EXPECT_LE(r.functionalError, 1.0);
    for (std::size_t i = 0; i < plain.size(); ++i)
        EXPECT_NEAR(blended[i], 2.0f * plain[i] - 0.5f * c_in[i], 1e-3);
}

TEST(SpmmEngineDeath, BetaWithoutCinPanics)
{
    Rng rng(14);
    const sparse::CsrMatrix a = sparse::erdosRenyi(32, 64, 200, rng);
    const std::vector<float> b = denseB(a.cols(), 4, 15);
    SpmmEngine engine(Engine::Kind::Chason, SpmmConfig{}, smallArch());
    EXPECT_DEATH(engine.run(a, b, 4, nullptr, 1.0f, 0.5f, nullptr),
                 "C_in");
}

TEST(SpmmEngine, PaperChannelAllocation)
{
    const SpmmConfig cfg;
    EXPECT_EQ(cfg.aChannels, 8u);
    EXPECT_EQ(cfg.bChannels, 4u);
    EXPECT_EQ(cfg.cChannels, 8u);
    // 8 + 4 + 8 + descriptor = 21 here; the paper counts 29 by writing
    // C through dedicated read+write ports — either way it fits 32.
    EXPECT_LE(cfg.usedChannels(), 32u);
}

TEST(SpmmEngineDeath, SizeMismatchPanics)
{
    Rng rng(10);
    const sparse::CsrMatrix a = sparse::erdosRenyi(32, 64, 200, rng);
    SpmmEngine engine(Engine::Kind::Chason, SpmmConfig{}, smallArch());
    const std::vector<float> bad(10, 1.0f);
    EXPECT_DEATH(engine.run(a, bad, 4), "entries");
}

} // namespace
} // namespace core
} // namespace chason
