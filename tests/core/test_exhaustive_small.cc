/**
 * @file
 * Exhaustive small-scale verification: hundreds of randomly-structured
 * tiny matrices pushed end to end through both engines, every result
 * checked against the double-precision reference and every schedule
 * validated. Tiny inputs hit the corner cases large corpora miss: empty
 * matrices, single elements, full rows, duplicate-heavy patterns, rows
 * beyond the lane count, single-column matrices.
 */

#include <algorithm>

#include <gtest/gtest.h>

#include "core/engine.h"
#include "common/rng.h"
#include "sched/analyzer.h"
#include "sparse/generators.h"

namespace chason {
namespace core {
namespace {

arch::ArchConfig
tinyConfig(unsigned channels, unsigned pes, unsigned raw)
{
    arch::ArchConfig cfg;
    cfg.sched.channels = channels;
    cfg.sched.pesOverride = pes;
    cfg.sched.rawDistance = raw;
    cfg.sched.windowCols = 16;
    cfg.sched.rowsPerLanePerPass = 4;
    cfg.scugSize = std::min(4u, pes); // ScUG cannot exceed the PE count
    return cfg;
}

TEST(ExhaustiveSmall, RandomTinyMatricesBothEngines)
{
    Rng rng(0xE5A11);
    int checked = 0;
    for (int trial = 0; trial < 300; ++trial) {
        const auto rows = static_cast<std::uint32_t>(
            1 + rng.nextBounded(40));
        const auto cols = static_cast<std::uint32_t>(
            1 + rng.nextBounded(40));
        const auto target = rng.nextBounded(
            static_cast<std::uint64_t>(rows) * cols + 1);

        sparse::CooMatrix coo(rows, cols);
        for (std::uint64_t e = 0; e < target; ++e) {
            coo.add(static_cast<std::uint32_t>(rng.nextBounded(rows)),
                    static_cast<std::uint32_t>(rng.nextBounded(cols)),
                    rng.nextFloat(0.1f, 1.0f));
        }
        const sparse::CsrMatrix a = coo.toCsr();
        const std::vector<float> x = sparse::randomVector(cols, rng);

        // Rotate through several geometries, including FP64-style 5 PEs.
        const unsigned channels = 2 + trial % 3;       // 2..4
        const unsigned pes = 2 + (trial / 3) % 4;      // 2..5
        const unsigned raw = 2 + (trial / 12) % 5;     // 2..6
        const arch::ArchConfig cfg = tinyConfig(channels, pes, raw);

        for (const Engine::Kind kind :
             {Engine::Kind::Chason, Engine::Kind::Serpens}) {
            Engine engine(kind, cfg);
            const sched::Schedule sch = engine.schedule(a);
            sched::validateSchedule(sch, a);
            const SpmvReport r = engine.runScheduled(sch, a, x);
            ASSERT_LE(r.functionalError, 1.0)
                << "trial " << trial << " " << a.describe()
                << " kind=" << static_cast<int>(kind)
                << " ch=" << channels << " pes=" << pes
                << " raw=" << raw;
            ++checked;
        }
    }
    EXPECT_EQ(checked, 600);
}

TEST(ExhaustiveSmall, DegenerateShapes)
{
    Rng rng(0xD0D0);
    const arch::ArchConfig cfg = tinyConfig(2, 2, 3);

    // Single element, single row, single column, diagonal-only, dense.
    std::vector<sparse::CsrMatrix> shapes;
    {
        sparse::CooMatrix m(1, 1);
        m.add(0, 0, 2.5f);
        shapes.push_back(m.toCsr());
    }
    {
        sparse::CooMatrix m(1, 30);
        for (std::uint32_t c = 0; c < 30; ++c)
            m.add(0, c, 1.0f);
        shapes.push_back(m.toCsr());
    }
    {
        sparse::CooMatrix m(30, 1);
        for (std::uint32_t r = 0; r < 30; ++r)
            m.add(r, 0, 1.0f);
        shapes.push_back(m.toCsr());
    }
    {
        sparse::CooMatrix m(12, 12);
        for (std::uint32_t r = 0; r < 12; ++r)
            m.add(r, r, static_cast<float>(r + 1));
        shapes.push_back(m.toCsr());
    }
    {
        sparse::CooMatrix m(8, 8);
        for (std::uint32_t r = 0; r < 8; ++r) {
            for (std::uint32_t c = 0; c < 8; ++c)
                m.add(r, c, 0.25f);
        }
        shapes.push_back(m.toCsr());
    }

    for (const sparse::CsrMatrix &a : shapes) {
        const std::vector<float> x = sparse::randomVector(a.cols(), rng);
        const Comparison cmp = compare(a, x, a.describe(), cfg);
        EXPECT_LE(cmp.chason.functionalError, 1.0) << a.describe();
        EXPECT_LE(cmp.serpens.functionalError, 1.0) << a.describe();
        EXPECT_LE(cmp.chason.matrixStreamBytes,
                  cmp.serpens.matrixStreamBytes)
            << a.describe();
    }
}

TEST(ExhaustiveSmall, EmptyMatrixProducesZeroVector)
{
    sparse::CooMatrix coo(16, 16);
    const sparse::CsrMatrix a = coo.toCsr();
    const std::vector<float> x(16, 3.0f);
    std::vector<float> y;
    Engine(Engine::Kind::Chason, tinyConfig(2, 2, 3))
        .run(a, x, "", &y);
    ASSERT_EQ(y.size(), 16u);
    for (float v : y)
        EXPECT_EQ(v, 0.0f);
}

} // namespace
} // namespace core
} // namespace chason
