/**
 * @file
 * Tests for the concurrent schedule cache: keying, LRU byte budget,
 * counters, and multi-threaded hammering on shared and distinct keys.
 */

#include "core/schedule_cache.h"

#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "sched/crhcs.h"
#include "sched/pe_aware.h"
#include "sparse/generators.h"

namespace chason {
namespace core {
namespace {

arch::ArchConfig
smallConfig()
{
    arch::ArchConfig cfg;
    cfg.sched.channels = 4;
    cfg.sched.pesOverride = 4;
    cfg.sched.rawDistance = 4;
    cfg.sched.windowCols = 128;
    cfg.sched.rowsPerLanePerPass = 64;
    return cfg;
}

sparse::CsrMatrix
matrix(std::uint64_t seed)
{
    Rng rng(seed);
    return sparse::erdosRenyi(64, 128, 700, rng);
}

TEST(Fingerprint, DeterministicAndSensitive)
{
    const sparse::CsrMatrix a = matrix(1);
    EXPECT_EQ(fingerprint(a), fingerprint(a));
    EXPECT_FALSE(fingerprint(a) == fingerprint(matrix(2)));

    // A single value change must alter the fingerprint.
    sparse::CooMatrix coo1(4, 4), coo2(4, 4);
    coo1.add(1, 2, 1.0f);
    coo2.add(1, 2, 1.5f);
    EXPECT_FALSE(fingerprint(coo1.toCsr()) ==
                 fingerprint(coo2.toCsr()));

    // A structure change (same nnz) too.
    sparse::CooMatrix coo3(4, 4);
    coo3.add(2, 1, 1.0f);
    EXPECT_FALSE(fingerprint(coo1.toCsr()) ==
                 fingerprint(coo3.toCsr()));
}

TEST(ScheduleKeyTest, SchedulerIdentityAndConfigAreKeyed)
{
    const sparse::CsrMatrix a = matrix(1);
    const sched::SchedConfig cfg = smallConfig().sched;

    // Same scheduler + config + matrix: same key.
    EXPECT_EQ(scheduleKey(sched::PeAwareScheduler(cfg), a),
              scheduleKey(sched::PeAwareScheduler(cfg), a));

    // Different algorithm on the same matrix: different key.
    sched::SchedConfig crhcsCfg = cfg;
    crhcsCfg.migrationDepth = 1;
    EXPECT_FALSE(scheduleKey(sched::PeAwareScheduler(cfg), a) ==
                 scheduleKey(sched::CrhcsScheduler(crhcsCfg), a));

    // Different geometry: different key.
    sched::SchedConfig wide = cfg;
    wide.rawDistance = 8;
    EXPECT_FALSE(scheduleKey(sched::PeAwareScheduler(cfg), a) ==
                 scheduleKey(sched::PeAwareScheduler(wide), a));

    // Different matrix: different key.
    EXPECT_FALSE(scheduleKey(sched::PeAwareScheduler(cfg), a) ==
                 scheduleKey(sched::PeAwareScheduler(cfg), matrix(2)));
}

TEST(ScheduleCache, HitsAfterFirstMiss)
{
    Engine engine(Engine::Kind::Chason, smallConfig());
    ScheduleCache cache;
    const sparse::CsrMatrix a = matrix(3);

    const auto first = cache.get(engine, a);
    EXPECT_EQ(cache.stats().misses, 1u);
    EXPECT_EQ(cache.stats().hits, 0u);
    const auto second = cache.get(engine, a);
    EXPECT_EQ(cache.stats().hits, 1u);
    EXPECT_EQ(first.get(), second.get()); // same resident object
    EXPECT_GT(cache.stats().bytes, 0u);
    EXPECT_EQ(cache.stats().bytes, first->memoryBytes());
}

TEST(ScheduleCache, EnginesWithEqualConfigShareEntries)
{
    Engine e1(Engine::Kind::Chason, smallConfig());
    Engine e2(Engine::Kind::Chason, smallConfig());
    ScheduleCache cache;
    const sparse::CsrMatrix a = matrix(3);

    cache.get(e1, a);
    cache.get(e2, a);
    EXPECT_EQ(cache.stats().misses, 1u);
    EXPECT_EQ(cache.stats().hits, 1u);

    // The Serpens engine schedules differently: separate entry.
    Engine serpens(Engine::Kind::Serpens, smallConfig());
    cache.get(serpens, a);
    EXPECT_EQ(cache.stats().misses, 2u);
}

TEST(ScheduleCache, EvictsLeastRecentlyUsedOverByteBudget)
{
    Engine engine(Engine::Kind::Serpens, smallConfig());
    const sparse::CsrMatrix a = matrix(4);
    const sparse::CsrMatrix b = matrix(5);

    // Budget of exactly one schedule: inserting the second must evict
    // the least recently used first, whatever b's exact size.
    ScheduleCache probe;
    const std::size_t one = probe.get(engine, a)->memoryBytes();

    ScheduleCache cache(one);
    const auto sa = cache.get(engine, a);
    cache.get(engine, b); // over budget: evicts a
    EXPECT_EQ(cache.stats().evictions, 1u);
    EXPECT_EQ(cache.stats().entries, 1u);

    // Shared ownership: the evicted schedule we still hold is intact.
    EXPECT_EQ(sa->memoryBytes(), one);

    cache.get(engine, b); // most recent: still resident
    EXPECT_EQ(cache.stats().hits, 1u);
    cache.get(engine, a); // was evicted: schedules again
    EXPECT_EQ(cache.stats().misses, 3u);
}

TEST(ScheduleCache, OversizedEntryIsStillAdmitted)
{
    Engine engine(Engine::Kind::Chason, smallConfig());
    ScheduleCache cache(1); // 1-byte budget: everything is oversized
    const sparse::CsrMatrix a = matrix(6);

    cache.get(engine, a);
    EXPECT_EQ(cache.stats().entries, 1u); // MRU entry is never evicted
    cache.get(engine, a);
    EXPECT_EQ(cache.stats().hits, 1u);
}

TEST(ScheduleCache, ByteAccountingSurvivesOversizedInserts)
{
    // Every insert exceeds the 1-byte budget; resident bytes must track
    // exactly the MRU survivor, never accumulate ghosts of evicted
    // entries (the residentBytes_ / lru_ consistency contract).
    Engine engine(Engine::Kind::Chason, smallConfig());
    ScheduleCache cache(1);
    const sparse::CsrMatrix a = matrix(20);
    const sparse::CsrMatrix b = matrix(21);

    const auto sa = cache.get(engine, a);
    EXPECT_EQ(cache.stats().bytes, sa->memoryBytes());
    EXPECT_TRUE(cache.debugCheckConsistency());

    const auto sb = cache.get(engine, b); // evicts a, admits b
    EXPECT_EQ(cache.stats().entries, 1u);
    EXPECT_EQ(cache.stats().bytes, sb->memoryBytes());
    EXPECT_TRUE(cache.debugCheckConsistency());
}

TEST(ScheduleCache, ReinsertAfterEvictionAccountsCurrentSize)
{
    // a is inserted, evicted, then rescheduled: the second insert must
    // account the fresh instance's size, not double-count or reuse the
    // first accounting.
    Engine engine(Engine::Kind::Serpens, smallConfig());
    const sparse::CsrMatrix a = matrix(22);
    const sparse::CsrMatrix b = matrix(23);

    ScheduleCache probe;
    const std::size_t a_bytes = probe.get(engine, a)->memoryBytes();

    ScheduleCache cache(a_bytes);
    cache.get(engine, a);
    cache.get(engine, b); // evicts a
    EXPECT_TRUE(cache.debugCheckConsistency());
    const auto again = cache.get(engine, a); // evicts b, re-admits a
    EXPECT_EQ(cache.stats().bytes, again->memoryBytes());
    EXPECT_EQ(cache.stats().entries, 1u);
    EXPECT_TRUE(cache.debugCheckConsistency());
}

TEST(ScheduleCache, ConsistentAfterClearAndConcurrentRefill)
{
    Engine engine(Engine::Kind::Chason, smallConfig());
    ScheduleCache cache;
    cache.get(engine, matrix(24));
    cache.clear();
    EXPECT_TRUE(cache.debugCheckConsistency());

    std::vector<std::thread> threads;
    for (unsigned t = 0; t < 4; ++t) {
        threads.emplace_back([&, t] {
            cache.get(engine, matrix(30 + t % 2));
        });
    }
    for (std::thread &th : threads)
        th.join();
    EXPECT_EQ(cache.stats().entries, 2u);
    EXPECT_TRUE(cache.debugCheckConsistency());
}

TEST(ScheduleCache, ClearKeepsCounters)
{
    Engine engine(Engine::Kind::Chason, smallConfig());
    ScheduleCache cache;
    cache.get(engine, matrix(9));
    cache.clear();
    EXPECT_EQ(cache.stats().entries, 0u);
    EXPECT_EQ(cache.stats().bytes, 0u);
    EXPECT_EQ(cache.stats().misses, 1u);
    cache.get(engine, matrix(9));
    EXPECT_EQ(cache.stats().misses, 2u); // refilled after clear
}

TEST(ScheduleCache, CachedScheduleRunsCorrectly)
{
    Engine engine(Engine::Kind::Chason, smallConfig());
    ScheduleCache cache;
    const sparse::CsrMatrix a = matrix(7);
    Rng rng(8);
    const std::vector<float> x = sparse::randomVector(a.cols(), rng);

    const SpmvReport direct = engine.run(a, x);
    const SpmvReport via_cache =
        engine.runScheduled(*cache.get(engine, a), a, x);
    EXPECT_EQ(direct.cycles, via_cache.cycles);
    EXPECT_LE(via_cache.functionalError, 1.0);
}

TEST(ScheduleCache, ConcurrentSameKeyCoalescesToOneScheduling)
{
    Engine engine(Engine::Kind::Chason, smallConfig());
    ScheduleCache cache;
    const sparse::CsrMatrix a = matrix(10);

    constexpr unsigned kThreads = 8;
    constexpr unsigned kRounds = 16;
    std::vector<std::shared_ptr<const sched::Schedule>> seen(kThreads);
    std::vector<std::thread> threads;
    for (unsigned t = 0; t < kThreads; ++t) {
        threads.emplace_back([&, t] {
            for (unsigned r = 0; r < kRounds; ++r)
                seen[t] = cache.get(engine, a);
        });
    }
    for (std::thread &th : threads)
        th.join();

    const ScheduleCacheStats s = cache.stats();
    EXPECT_EQ(s.misses, 1u); // exactly one thread scheduled
    EXPECT_EQ(s.hits, kThreads * kRounds - 1u);
    EXPECT_EQ(s.entries, 1u);
    for (unsigned t = 1; t < kThreads; ++t)
        EXPECT_EQ(seen[0].get(), seen[t].get());
}

TEST(ScheduleCache, ConcurrentDistinctKeysAllResident)
{
    Engine engine(Engine::Kind::Serpens, smallConfig());
    ScheduleCache cache;

    constexpr unsigned kThreads = 8;
    std::vector<sparse::CsrMatrix> matrices;
    for (unsigned t = 0; t < kThreads; ++t)
        matrices.push_back(matrix(100 + t));

    std::vector<std::thread> threads;
    for (unsigned t = 0; t < kThreads; ++t) {
        threads.emplace_back([&, t] {
            // Each thread first fills its own key, then hits the
            // others' (or coalesces with their in-flight fill).
            cache.get(engine, matrices[t]);
            for (unsigned o = 0; o < kThreads; ++o)
                cache.get(engine, matrices[o]);
        });
    }
    for (std::thread &th : threads)
        th.join();

    const ScheduleCacheStats s = cache.stats();
    EXPECT_EQ(s.misses, kThreads);
    EXPECT_EQ(s.hits, kThreads * (kThreads + 1) - kThreads);
    EXPECT_EQ(s.entries, kThreads);
    EXPECT_EQ(s.evictions, 0u);
}

} // namespace
} // namespace core
} // namespace chason
