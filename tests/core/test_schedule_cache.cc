/**
 * @file
 * Tests for the schedule cache.
 */

#include "core/schedule_cache.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "sparse/generators.h"

namespace chason {
namespace core {
namespace {

arch::ArchConfig
smallConfig()
{
    arch::ArchConfig cfg;
    cfg.sched.channels = 4;
    cfg.sched.pesOverride = 4;
    cfg.sched.rawDistance = 4;
    cfg.sched.windowCols = 128;
    cfg.sched.rowsPerLanePerPass = 64;
    return cfg;
}

sparse::CsrMatrix
matrix(std::uint64_t seed)
{
    Rng rng(seed);
    return sparse::erdosRenyi(64, 128, 700, rng);
}

TEST(Fingerprint, DeterministicAndSensitive)
{
    const sparse::CsrMatrix a = matrix(1);
    EXPECT_EQ(fingerprint(a), fingerprint(a));
    EXPECT_FALSE(fingerprint(a) == fingerprint(matrix(2)));

    // A single value change must alter the fingerprint.
    sparse::CooMatrix coo1(4, 4), coo2(4, 4);
    coo1.add(1, 2, 1.0f);
    coo2.add(1, 2, 1.5f);
    EXPECT_FALSE(fingerprint(coo1.toCsr()) ==
                 fingerprint(coo2.toCsr()));

    // A structure change (same nnz) too.
    sparse::CooMatrix coo3(4, 4);
    coo3.add(2, 1, 1.0f);
    EXPECT_FALSE(fingerprint(coo1.toCsr()) ==
                 fingerprint(coo3.toCsr()));
}

TEST(ScheduleCache, HitsAfterFirstMiss)
{
    Engine engine(Engine::Kind::Chason, smallConfig());
    ScheduleCache cache(engine, 4);
    const sparse::CsrMatrix a = matrix(3);

    const sched::Schedule &first = cache.get(a);
    EXPECT_EQ(cache.misses(), 1u);
    EXPECT_EQ(cache.hits(), 0u);
    const sched::Schedule &second = cache.get(a);
    EXPECT_EQ(cache.hits(), 1u);
    EXPECT_EQ(&first, &second); // same resident object
}

TEST(ScheduleCache, EvictsLeastRecentlyUsed)
{
    Engine engine(Engine::Kind::Serpens, smallConfig());
    ScheduleCache cache(engine, 2);
    const sparse::CsrMatrix a = matrix(4);
    const sparse::CsrMatrix b = matrix(5);
    const sparse::CsrMatrix c = matrix(6);

    cache.get(a);
    cache.get(b);
    cache.get(a); // a is now most recent
    cache.get(c); // evicts b
    EXPECT_EQ(cache.evictions(), 1u);
    EXPECT_EQ(cache.size(), 2u);

    cache.get(a); // still resident
    EXPECT_EQ(cache.hits(), 2u);
    cache.get(b); // was evicted: miss again
    EXPECT_EQ(cache.misses(), 4u);
}

TEST(ScheduleCache, CachedScheduleRunsCorrectly)
{
    Engine engine(Engine::Kind::Chason, smallConfig());
    ScheduleCache cache(engine, 2);
    const sparse::CsrMatrix a = matrix(7);
    Rng rng(8);
    const std::vector<float> x = sparse::randomVector(a.cols(), rng);

    const SpmvReport direct = engine.run(a, x);
    const SpmvReport via_cache =
        engine.runScheduled(cache.get(a), a, x);
    EXPECT_EQ(direct.cycles, via_cache.cycles);
    EXPECT_LE(via_cache.functionalError, 1.0);
}

TEST(ScheduleCache, ClearKeepsCounters)
{
    Engine engine(Engine::Kind::Chason, smallConfig());
    ScheduleCache cache(engine, 2);
    cache.get(matrix(9));
    cache.clear();
    EXPECT_EQ(cache.size(), 0u);
    EXPECT_EQ(cache.misses(), 1u);
    cache.get(matrix(9));
    EXPECT_EQ(cache.misses(), 2u); // refilled after clear
}

} // namespace
} // namespace core
} // namespace chason
