/**
 * @file
 * End-to-end property sweep: for every matrix family, both engines are
 * functionally correct, Chasoň never moves more matrix data than
 * Serpens, and never has higher PE underutilization (parameterized
 * gtest over the families).
 */

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/engine.h"
#include "sparse/generators.h"

namespace chason {
namespace core {
namespace {

struct E2eCase
{
    std::string name;
    std::uint64_t seed;
    std::function<sparse::CsrMatrix(Rng &)> make;
};

std::vector<E2eCase>
cases()
{
    return {
        {"erdos", 21,
         [](Rng &r) { return sparse::erdosRenyi(600, 900, 9000, r); }},
        {"zipf", 22,
         [](Rng &r) { return sparse::zipfRows(700, 700, 8000, 1.4, r); }},
        {"rmat", 23, [](Rng &r) { return sparse::rmat(10, 10000, r); }},
        {"banded", 24,
         [](Rng &r) { return sparse::banded(900, 10, 0.4, r); }},
        {"arrow", 25,
         [](Rng &r) { return sparse::arrowBanded(800, 6, 0.3, 4, r); }},
        {"blockdiag", 26,
         [](Rng &r) {
             return sparse::blockDiagonal(800, 32, 0.5, 0.05, r);
         }},
        {"pagraph", 27,
         [](Rng &r) { return sparse::preferentialAttachment(1500, 7, r); }},
        {"poisson", 28, [](Rng &) { return sparse::poisson2d(30); }},
        {"mycielskian8", 29, [](Rng &) { return sparse::mycielskian(8); }},
        {"tall", 30,
         [](Rng &r) { return sparse::erdosRenyi(5000, 300, 15000, r); }},
        {"wide", 31,
         [](Rng &r) { return sparse::erdosRenyi(300, 20000, 15000, r); }},
    };
}

class E2eProperties : public ::testing::TestWithParam<E2eCase>
{
  protected:
    void
    SetUp() override
    {
        Rng rng(GetParam().seed);
        a_ = GetParam().make(rng);
        x_ = sparse::randomVector(a_.cols(), rng);
    }

    /** Small geometry keeps the sweep fast but multi-channel. */
    arch::ArchConfig
    config() const
    {
        arch::ArchConfig cfg;
        cfg.sched.channels = 8;
        cfg.sched.pesOverride = 4;
        cfg.sched.rawDistance = 6;
        cfg.sched.windowCols = 1024;
        cfg.sched.rowsPerLanePerPass = 256;
        return cfg;
    }

    sparse::CsrMatrix a_;
    std::vector<float> x_;
};

TEST_P(E2eProperties, BothEnginesFunctionallyCorrect)
{
    const Comparison cmp = compare(a_, x_, GetParam().name, config());
    EXPECT_LE(cmp.chason.functionalError, 1.0) << a_.describe();
    EXPECT_LE(cmp.serpens.functionalError, 1.0) << a_.describe();
}

TEST_P(E2eProperties, ChasonNeverMovesMoreMatrixData)
{
    const Comparison cmp = compare(a_, x_, GetParam().name, config());
    EXPECT_LE(cmp.chason.matrixStreamBytes, cmp.serpens.matrixStreamBytes);
    EXPECT_GE(cmp.transferReduction(), 1.0);
}

TEST_P(E2eProperties, ChasonNeverMoreUnderutilized)
{
    const Comparison cmp = compare(a_, x_, GetParam().name, config());
    EXPECT_LE(cmp.chason.underutilizationPercent,
              cmp.serpens.underutilizationPercent + 1e-9);
}

TEST_P(E2eProperties, ResultsMatchAcrossEngines)
{
    // Both datapaths compute the same y (up to FP32 association).
    std::vector<float> y_chason, y_serpens;
    Engine(Engine::Kind::Chason, config())
        .run(a_, x_, "", &y_chason);
    Engine(Engine::Kind::Serpens, config())
        .run(a_, x_, "", &y_serpens);
    ASSERT_EQ(y_chason.size(), y_serpens.size());
    const std::vector<double> ref = sparse::spmvReference(a_, x_);
    EXPECT_LE(sparse::maxRelativeError(y_chason, ref), 1.0);
    EXPECT_LE(sparse::maxRelativeError(y_serpens, ref), 1.0);
}

INSTANTIATE_TEST_SUITE_P(
    Families, E2eProperties, ::testing::ValuesIn(cases()),
    [](const auto &info) { return info.param.name; });

} // namespace
} // namespace core
} // namespace chason
