/**
 * @file
 * Tests for the ScheduleCache disk tier: disk-hit promotion across
 * cache instances, memory eviction with the artifact store intact,
 * corrupt-artifact fallback (and write-behind healing), foreign-key
 * rejection, and the serving determinism contract — a schedule loaded
 * zero-copy from an artifact simulates bit-identically, report JSON
 * included, to the freshly scheduled original.
 */

#include "core/schedule_cache.h"

#include <atomic>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/report_json.h"
#include "sched/artifact.h"
#include "sched/schedule_io.h"
#include "sparse/generators.h"

namespace chason {
namespace core {
namespace {

arch::ArchConfig
smallConfig()
{
    arch::ArchConfig cfg;
    cfg.sched.channels = 4;
    cfg.sched.pesOverride = 4;
    cfg.sched.rawDistance = 4;
    cfg.sched.windowCols = 128;
    cfg.sched.rowsPerLanePerPass = 64;
    return cfg;
}

sparse::CsrMatrix
matrix(std::uint64_t seed)
{
    Rng rng(seed);
    return sparse::erdosRenyi(64, 128, 700, rng);
}

/** Fresh per-test artifact directory under the gtest temp root. */
std::string
artifactDir(const char *name)
{
    const std::string dir =
        ::testing::TempDir() + "chason_cache_" + name;
    std::filesystem::remove_all(dir);
    return dir;
}

/** The store path the cache uses for @p engine's schedule of @p a. */
std::string
storedPath(const std::string &dir, const Engine &engine,
           const sparse::CsrMatrix &a)
{
    const ScheduleKey key = scheduleKey(engine.scheduler(), a);
    return dir + "/" +
           sched::artifactFileName(
               {key.matrix.lo, key.matrix.hi, key.scheduler});
}

void
flipByte(const std::string &path, std::uint64_t offset)
{
    std::fstream f(path, std::ios::binary | std::ios::in | std::ios::out);
    ASSERT_TRUE(f.is_open());
    f.seekg(static_cast<std::streamoff>(offset));
    char byte = 0;
    f.read(&byte, 1);
    byte = static_cast<char>(byte ^ 0x5a);
    f.seekp(static_cast<std::streamoff>(offset));
    f.write(&byte, 1);
    ASSERT_TRUE(f.good());
}

TEST(ArtifactCache, MissPersistsAndFreshCachePromotesFromDisk)
{
    const std::string dir = artifactDir("promote");
    Engine engine(Engine::Kind::Chason, smallConfig());
    const sparse::CsrMatrix a = matrix(1);

    ScheduleCache writer;
    writer.setArtifactDir(dir);
    const auto fresh = writer.get(engine, a);
    EXPECT_EQ(writer.stats().misses, 1u);
    EXPECT_EQ(writer.stats().diskMisses, 1u);
    EXPECT_EQ(writer.stats().diskHits, 0u);
    EXPECT_EQ(writer.stats().persisted, 1u);
    EXPECT_TRUE(std::filesystem::exists(storedPath(dir, engine, a)));

    // A fresh process (cache instance) over the same store: the memory
    // miss is served by the artifact, not by rescheduling.
    ScheduleCache reader;
    reader.setArtifactDir(dir);
    const auto promoted = reader.get(engine, a);
    EXPECT_EQ(reader.stats().misses, 1u);
    EXPECT_EQ(reader.stats().diskHits, 1u);
    EXPECT_EQ(reader.stats().diskMisses, 0u);
    EXPECT_EQ(reader.stats().persisted, 0u); // disk hits are not rewritten
    // Same schedule bits; the promoted copy costs less private memory
    // because its beats alias the file-backed mapping.
    EXPECT_EQ(sched::scheduleArtifactBytes(*promoted),
              sched::scheduleArtifactBytes(*fresh));
    EXPECT_LT(promoted->memoryBytes(), fresh->memoryBytes());

    // Promotion populated the memory tier: the next get is a plain hit.
    reader.get(engine, a);
    EXPECT_EQ(reader.stats().hits, 1u);
    std::filesystem::remove_all(dir);
}

TEST(ArtifactCache, MemoryEvictionLeavesDiskTierIntact)
{
    const std::string dir = artifactDir("evict");
    Engine engine(Engine::Kind::Chason, smallConfig());
    const sparse::CsrMatrix a = matrix(2);
    const sparse::CsrMatrix b = matrix(3);

    ScheduleCache cache(1); // 1-byte budget: each insert evicts the last
    cache.setArtifactDir(dir);
    cache.get(engine, a);
    cache.get(engine, b); // evicts a from memory; a's artifact remains
    EXPECT_EQ(cache.stats().evictions, 1u);
    EXPECT_EQ(cache.stats().persisted, 2u);

    // Re-requesting the evicted key is a memory miss served from disk —
    // the eviction cost CrHCS nothing.
    cache.get(engine, a);
    EXPECT_EQ(cache.stats().diskHits, 1u);
    EXPECT_EQ(cache.stats().diskMisses, 2u); // only the two cold fills
    EXPECT_EQ(cache.stats().persisted, 2u);
    std::filesystem::remove_all(dir);
}

TEST(ArtifactCache, ClearedMemoryTierIsRefilledFromDisk)
{
    const std::string dir = artifactDir("clear");
    Engine engine(Engine::Kind::Chason, smallConfig());
    const sparse::CsrMatrix a = matrix(4);

    ScheduleCache cache;
    cache.setArtifactDir(dir);
    cache.get(engine, a);
    cache.clear(); // memory tier only; the artifact survives
    cache.get(engine, a);
    EXPECT_EQ(cache.stats().diskHits, 1u);
    EXPECT_EQ(cache.stats().misses, 2u);
    std::filesystem::remove_all(dir);
}

TEST(ArtifactCache, CorruptArtifactFallsBackAndHeals)
{
    const std::string dir = artifactDir("corrupt");
    Engine engine(Engine::Kind::Chason, smallConfig());
    const sparse::CsrMatrix a = matrix(5);

    ScheduleCache writer;
    writer.setArtifactDir(dir);
    const auto fresh = writer.get(engine, a);
    const std::string path = storedPath(dir, engine, a);

    // Corrupt the beat payload: open() passes, the digest rejects.
    flipByte(path, std::filesystem::file_size(path) - 9);

    ScheduleCache reader;
    reader.setArtifactDir(dir);
    const auto rescheduled = reader.get(engine, a);
    EXPECT_EQ(reader.stats().corrupt, 1u);
    EXPECT_EQ(reader.stats().diskHits, 0u);
    EXPECT_EQ(reader.stats().diskMisses, 1u);
    // The fallback is transparent: the schedule is the real one.
    EXPECT_EQ(sched::scheduleArtifactBytes(*rescheduled),
              sched::scheduleArtifactBytes(*fresh));
    // And the write-behind persist healed the store in place.
    EXPECT_EQ(reader.stats().persisted, 1u);

    ScheduleCache healed;
    healed.setArtifactDir(dir);
    healed.get(engine, a);
    EXPECT_EQ(healed.stats().diskHits, 1u);
    EXPECT_EQ(healed.stats().corrupt, 0u);
    std::filesystem::remove_all(dir);
}

TEST(ArtifactCache, ForeignKeyedArtifactIsRejected)
{
    const std::string dir = artifactDir("foreign");
    Engine engine(Engine::Kind::Chason, smallConfig());
    const sparse::CsrMatrix a = matrix(6);
    const sparse::CsrMatrix b = matrix(7);

    ScheduleCache writer;
    writer.setArtifactDir(dir);
    writer.get(engine, a);

    // Plant a's artifact under b's canonical name: the embedded key
    // must veto serving it, whatever the filename claims.
    std::filesystem::copy_file(storedPath(dir, engine, a),
                               storedPath(dir, engine, b));

    ScheduleCache reader;
    reader.setArtifactDir(dir);
    reader.get(engine, b);
    EXPECT_EQ(reader.stats().corrupt, 1u);
    EXPECT_EQ(reader.stats().diskHits, 0u);
    std::filesystem::remove_all(dir);
}

TEST(ArtifactCache, StatsJsonCarriesDiskTierCounters)
{
    const std::string dir = artifactDir("json");
    Engine engine(Engine::Kind::Chason, smallConfig());
    ScheduleCache cache;
    cache.setArtifactDir(dir);
    cache.get(engine, matrix(8));

    const std::string json = toJson(cache.stats());
    EXPECT_NE(json.find("\"disk_hits\":0"), std::string::npos);
    EXPECT_NE(json.find("\"disk_misses\":1"), std::string::npos);
    EXPECT_NE(json.find("\"persisted\":1"), std::string::npos);
    EXPECT_NE(json.find("\"corrupt\":0"), std::string::npos);
    std::filesystem::remove_all(dir);
}

/** Delegating scheduler that counts how often schedule() really runs. */
class CountingScheduler : public sched::Scheduler
{
  public:
    CountingScheduler(const Engine &engine, std::atomic<int> &builds)
        : sched::Scheduler(engine.scheduler().config()),
          inner_(engine.scheduler()), builds_(builds)
    {
    }

    std::string name() const override { return inner_.name(); }

    sched::Schedule schedule(const sparse::CsrMatrix &m) const override
    {
        ++builds_;
        return inner_.schedule(m);
    }

  private:
    const sched::Scheduler &inner_;
    std::atomic<int> &builds_;
};

/**
 * The daemon's hot-path race: N threads miss on the same key of a
 * disk-backed cache at once. Exactly one may build, the rest must
 * coalesce onto it, and the write-behind persist must produce one
 * valid (untorn) artifact.
 */
TEST(ArtifactCache, ConcurrentSameKeyMissBuildsAndPersistsOnce)
{
    const std::string dir = artifactDir("race");
    Engine engine(Engine::Kind::Chason, smallConfig());
    const sparse::CsrMatrix a = matrix(9);
    std::atomic<int> builds{0};
    const CountingScheduler counting(engine, builds);

    ScheduleCache cache;
    cache.setArtifactDir(dir);

    constexpr int kThreads = 8;
    std::vector<std::shared_ptr<const sched::Schedule>> results(
        kThreads);
    std::atomic<int> ready{0};
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int i = 0; i < kThreads; ++i) {
        threads.emplace_back([&, i] {
            // Rendezvous so the gets really overlap.
            ++ready;
            while (ready.load() < kThreads) {
            }
            results[i] = cache.get(counting, a);
        });
    }
    for (std::thread &thread : threads)
        thread.join();

    EXPECT_EQ(builds.load(), 1);
    for (int i = 1; i < kThreads; ++i)
        EXPECT_EQ(results[i], results[0]); // one shared instance
    const ScheduleCacheStats stats = cache.stats();
    EXPECT_EQ(stats.misses, 1u);
    EXPECT_EQ(stats.hits, static_cast<std::uint64_t>(kThreads - 1));
    EXPECT_EQ(stats.diskMisses, 1u);
    EXPECT_EQ(stats.diskHits, 0u);
    EXPECT_EQ(stats.persisted, 1u);

    // The single persisted artifact is valid: a fresh cache admits it
    // as a disk hit with zero corruption, and the loaded schedule has
    // the same bits as the built one.
    ScheduleCache reader;
    reader.setArtifactDir(dir);
    const auto loaded = reader.get(counting, a);
    EXPECT_EQ(reader.stats().diskHits, 1u);
    EXPECT_EQ(reader.stats().corrupt, 0u);
    EXPECT_EQ(builds.load(), 1); // served from disk, not rebuilt
    EXPECT_EQ(sched::scheduleArtifactBytes(*loaded),
              sched::scheduleArtifactBytes(*results[0]));
    std::filesystem::remove_all(dir);
}

/**
 * The serving determinism contract, across three matrix tiers: an
 * artifact-loaded schedule must simulate bit-identically to the
 * freshly scheduled one — identical cycle counts, identical report
 * JSON, identical output vectors to the last bit.
 */
TEST(ArtifactCache, LoadedScheduleSimulatesBitIdenticallyAcrossTiers)
{
    const std::string dir = artifactDir("determinism");
    Engine engine(Engine::Kind::Chason, smallConfig());

    struct Tier
    {
        const char *name;
        sparse::CsrMatrix a;
    };
    Rng rng(40);
    std::vector<Tier> tiers;
    tiers.push_back({"rmat", sparse::rmat(8, 2048, rng)});
    tiers.push_back({"erdos", sparse::erdosRenyi(200, 160, 3000, rng)});
    tiers.push_back({"arrow", sparse::arrowBanded(512, 5, 0.4, 2, rng)});

    for (const Tier &tier : tiers) {
        SCOPED_TRACE(tier.name);
        ScheduleCache writer;
        writer.setArtifactDir(dir);
        const auto fresh = writer.get(engine, tier.a);

        ScheduleCache reader;
        reader.setArtifactDir(dir);
        const auto loaded = reader.get(engine, tier.a);
        ASSERT_EQ(reader.stats().diskHits, 1u);

        Rng vec(41);
        const std::vector<float> x =
            sparse::randomVector(tier.a.cols(), vec);
        std::vector<float> y_fresh, y_loaded;
        const SpmvReport r_fresh = engine.runScheduled(
            *fresh, tier.a, x, tier.name, &y_fresh);
        const SpmvReport r_loaded = engine.runScheduled(
            *loaded, tier.a, x, tier.name, &y_loaded);

        EXPECT_EQ(r_fresh.cycles, r_loaded.cycles);
        EXPECT_EQ(toJson(r_fresh), toJson(r_loaded));
        ASSERT_EQ(y_fresh.size(), y_loaded.size());
        ASSERT_GT(y_fresh.size(), 0u);
        EXPECT_EQ(0, std::memcmp(y_fresh.data(), y_loaded.data(),
                                 y_fresh.size() * sizeof(float)));
    }
    std::filesystem::remove_all(dir);
}

} // namespace
} // namespace core
} // namespace chason
