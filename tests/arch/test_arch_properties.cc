/**
 * @file
 * Architecture-level property tests: claims the paper makes about the
 * design space, checked against the models.
 */

#include <gtest/gtest.h>

#include "arch/chason_accel.h"
#include "arch/estimator.h"
#include "arch/serpens_accel.h"
#include "common/rng.h"
#include "core/engine.h"
#include "sched/crhcs.h"
#include "sched/pe_aware.h"
#include "sparse/generators.h"

namespace chason {
namespace arch {
namespace {

sparse::CsrMatrix
testMatrix(std::uint64_t seed)
{
    Rng rng(seed);
    return sparse::zipfRows(2000, 2000, 24000, 1.2, rng);
}

TEST(ArchProperties, ScugFoldingIsPerformanceNeutral)
{
    // Section 4.5: reducing the ScUG from 8 to 4 (or 1) URAMs does not
    // affect performance for matrices that still fit one pass.
    const sparse::CsrMatrix a = testMatrix(1);
    Rng rng(2);
    const std::vector<float> x = sparse::randomVector(a.cols(), rng);

    std::uint64_t baseline_cycles = 0;
    for (unsigned scug : {8u, 4u, 2u}) {
        ArchConfig cfg;
        cfg.scugSize = scug;
        cfg.sched.rowsPerLanePerPass = cfg.capacityRowsPerLane();
        core::Engine engine(core::Engine::Kind::Chason, cfg);
        const core::SpmvReport r = engine.run(a, x);
        if (baseline_cycles == 0)
            baseline_cycles = r.cycles;
        EXPECT_EQ(r.cycles, baseline_cycles) << "scug " << scug;
    }
}

TEST(ArchProperties, LowerPlatformBandwidthNeverSpeedsUp)
{
    const sparse::CsrMatrix a = testMatrix(3);
    ArchConfig u55c;
    ArchConfig u280;
    u280.hbm = hbm::HbmConfig::alveoU280();
    const sched::Schedule sch =
        sched::CrhcsScheduler(u55c.sched).schedule(a);
    EXPECT_LE(estimateLatencyUs(sch, u55c, DatapathKind::Chason),
              estimateLatencyUs(sch, u280, DatapathKind::Chason));
}

TEST(ArchProperties, SpeedupIsBandwidthPortable)
{
    // The CrHCS-over-PE-aware speedup comes from beats, not bytes/s:
    // moving both designs to the U280 changes latencies but barely the
    // ratio.
    const sparse::CsrMatrix a = testMatrix(4);
    sched::SchedConfig pe_cfg;
    pe_cfg.migrationDepth = 0;
    const sched::Schedule pe =
        sched::PeAwareScheduler(pe_cfg).schedule(a);
    sched::SchedConfig cr_cfg;
    const sched::Schedule cr = sched::CrhcsScheduler(cr_cfg).schedule(a);

    auto ratio = [&](const hbm::HbmConfig &hbm_cfg) {
        ArchConfig cfg;
        cfg.hbm = hbm_cfg;
        return estimateLatencyUs(pe, cfg, DatapathKind::Serpens) /
            estimateLatencyUs(cr, cfg, DatapathKind::Chason);
    };
    const double u55c = ratio(hbm::HbmConfig::alveoU55c());
    const double u280 = ratio(hbm::HbmConfig::alveoU280());
    EXPECT_NEAR(u280 / u55c, 1.0, 0.25);
}

TEST(ArchProperties, DeeperMigrationNeverSlowerOnImbalance)
{
    // Section 6.1: extending the scheduling scope to more channels can
    // only help (it costs URAMs, which the resource model charges).
    sparse::CooMatrix coo(256, 2048);
    Rng rng(5);
    for (std::uint32_t c = 0; c < 600; ++c)
        coo.add(0, c, rng.nextFloat(0.1f, 1.0f));
    for (std::uint32_t r = 0; r < 256; ++r)
        coo.add(r, r, 1.0f);
    const sparse::CsrMatrix a = coo.toCsr();
    const std::vector<float> x = sparse::randomVector(a.cols(), rng);

    double prev = 1e300;
    for (unsigned depth : {1u, 2u, 3u}) {
        ArchConfig cfg;
        cfg.sched.migrationDepth = depth;
        cfg.sched.rowsPerLanePerPass = 1024; // fit the URAM budget
        const sched::Schedule sch =
            sched::CrhcsScheduler(cfg.sched).schedule(a);
        const RunResult r = ChasonAccelerator(cfg).run(sch, x);
        const std::vector<double> ref = sparse::spmvReference(a, x);
        EXPECT_LE(sparse::maxRelativeError(r.y, ref), 1.0)
            << "depth " << depth;
        EXPECT_LE(r.latencyUs, prev * 1.05) << "depth " << depth;
        prev = r.latencyUs;
    }
}

TEST(ArchProperties, Fp64ModeRunsAndCostsMoreBeats)
{
    // Section 5.5: FP64 packs 5 elements per beat, so the same matrix
    // needs more beats.
    Rng rng(6);
    const sparse::CsrMatrix a = sparse::erdosRenyi(512, 512, 6000, rng);
    const std::vector<float> x = sparse::randomVector(a.cols(), rng);

    ArchConfig fp32;
    ArchConfig fp64;
    fp64.sched.precision = sched::Precision::Fp64;
    fp64.sched.rowsPerLanePerPass = 2048;

    core::Engine e32(core::Engine::Kind::Chason, fp32);
    core::Engine e64(core::Engine::Kind::Chason, fp64);
    const core::SpmvReport r32 = e32.run(a, x);
    const core::SpmvReport r64 = e64.run(a, x);
    EXPECT_LE(r32.functionalError, 1.0);
    EXPECT_LE(r64.functionalError, 1.0);
    // Same stream bytes would mean same beats; FP64 mode carries only 5
    // elements per beat so it needs more of them for equal nnz.
    EXPECT_GT(r64.matrixStreamBytes, r32.matrixStreamBytes / 2);
}

TEST(ArchProperties, LatencyMonotoneInRawDistance)
{
    const sparse::CsrMatrix a = testMatrix(7);
    Rng rng(8);
    const std::vector<float> x = sparse::randomVector(a.cols(), rng);
    double prev = 0.0;
    for (unsigned d : {2u, 6u, 10u, 14u}) {
        ArchConfig cfg;
        cfg.sched.rawDistance = d;
        core::Engine engine(core::Engine::Kind::Serpens, cfg);
        const core::SpmvReport r = engine.run(a, x);
        EXPECT_GE(r.latencyMs, prev) << "distance " << d;
        prev = r.latencyMs;
    }
}

TEST(ArchProperties, TrafficEqualsArtifactPlusVectors)
{
    const sparse::CsrMatrix a = testMatrix(9);
    Rng rng(10);
    const std::vector<float> x = sparse::randomVector(a.cols(), rng);
    ArchConfig cfg;
    core::Engine engine(core::Engine::Kind::Chason, cfg);
    const sched::Schedule sch = engine.schedule(a);
    const core::SpmvReport r = engine.runScheduled(sch, a, x);
    // Total traffic = matrix stream + x loads + y write + descriptors.
    EXPECT_GT(r.totalBytes, r.matrixStreamBytes);
    EXPECT_LT(r.totalBytes,
              r.matrixStreamBytes +
                  (static_cast<std::uint64_t>(a.cols()) +
                   a.rows()) * 8 + 64 * 1024);
}

} // namespace
} // namespace arch
} // namespace chason
