/**
 * @file
 * Unit tests for the power model against Fig. 10.
 */

#include "arch/power.h"

#include <gtest/gtest.h>

namespace chason {
namespace arch {
namespace {

TEST(Power, Fig10TotalIs48_715W)
{
    // Fig. 10's printed components sum to 48.625 W against the stated
    // 48.715 W total (the paper rounds); accept the component sum.
    const PowerBreakdown p = chasonEstimatedPower();
    EXPECT_NEAR(p.totalW(), 48.715, 0.1);
    EXPECT_NEAR(p.staticW, 12.845, 1e-9);
    EXPECT_NEAR(p.dynamicW(), 35.78, 0.1);
}

TEST(Power, HbmDominates)
{
    const PowerBreakdown p = chasonEstimatedPower();
    EXPECT_GT(p.hbmW, p.logicW);
    EXPECT_GT(p.hbmW, p.uramW);
    EXPECT_NEAR(p.hbmW, 18.95, 1e-9);
}

TEST(Power, LogicShareIsEightPercent)
{
    // Section 5.1: "Chasoň logic is only taking 8% of the total power".
    const PowerBreakdown p = chasonEstimatedPower();
    EXPECT_NEAR(100.0 * p.logicW / p.totalW(), 8.0, 2.5);
}

TEST(Power, MemorySharesAreSmall)
{
    const PowerBreakdown p = chasonEstimatedPower();
    EXPECT_NEAR(100.0 * p.bramW / p.totalW(), 3.0, 1.0);
    EXPECT_NEAR(100.0 * p.uramW / p.totalW(), 4.0, 1.5);
}

TEST(Power, EstimateAtReferencePointReproducesFig10)
{
    const PowerBreakdown p =
        estimatePower(chasonResources(ArchConfig{}), 301.0);
    EXPECT_NEAR(p.totalW(), chasonEstimatedPower().totalW(), 1e-6);
}

TEST(Power, SerpensEstimateIsLower)
{
    const PowerBreakdown serpens =
        estimatePower(serpensResources(ArchConfig{}), 223.0);
    const PowerBreakdown chason =
        estimatePower(chasonResources(ArchConfig{}), 301.0);
    EXPECT_LT(serpens.dynamicW(), chason.dynamicW());
    // Static + HBM components do not scale away.
    EXPECT_DOUBLE_EQ(serpens.staticW, chason.staticW);
    EXPECT_DOUBLE_EQ(serpens.hbmW, chason.hbmW);
}

TEST(Power, FrequencyScalesDynamicOnly)
{
    const FpgaResources r = chasonResources(ArchConfig{});
    const PowerBreakdown fast = estimatePower(r, 301.0);
    const PowerBreakdown slow = estimatePower(r, 150.5);
    EXPECT_NEAR(slow.clocksW, fast.clocksW / 2.0, 1e-9);
    EXPECT_DOUBLE_EQ(slow.staticW, fast.staticW);
}

TEST(Power, MeasuredNumbersMatchPaper)
{
    // Section 6.2.2: ~39 W vs ~36 W measured with xbutil.
    EXPECT_DOUBLE_EQ(chasonMeasuredPowerW(), 39.0);
    EXPECT_DOUBLE_EQ(serpensMeasuredPowerW(), 36.0);
    EXPECT_GT(chasonMeasuredPowerW(), serpensMeasuredPowerW());
}

} // namespace
} // namespace arch
} // namespace chason
