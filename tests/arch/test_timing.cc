/**
 * @file
 * Unit tests for the timing helpers and frequency model.
 */

#include "arch/timing.h"

#include <gtest/gtest.h>

#include "arch/frequency.h"

namespace chason {
namespace arch {
namespace {

TEST(MemoryStallFactor, SerpensClockIsBeatLimited)
{
    // 223 MHz x 64 B = 14.27 GB/s < 14.37 GB/s channel peak.
    const double f =
        memoryStallFactor(hbm::HbmConfig::alveoU55c(), 223.0);
    EXPECT_DOUBLE_EQ(f, 1.0);
}

TEST(MemoryStallFactor, ChasonClockIsBandwidthLimited)
{
    // 301 MHz wants 19.26 GB/s against 14.37 GB/s: ~1.34 cycles/beat.
    const double f =
        memoryStallFactor(hbm::HbmConfig::alveoU55c(), 301.0);
    EXPECT_NEAR(f, 19.264 / 14.37, 1e-3);
}

TEST(MemoryStallFactor, EffectiveBeatRatesNearlyEqual)
{
    // The key timing consequence: both designs stream beats at almost
    // the same wall-clock rate, so Chasoň's win comes from fewer beats.
    const hbm::HbmConfig cfg = hbm::HbmConfig::alveoU55c();
    const double serpens_rate = 223.0 / memoryStallFactor(cfg, 223.0);
    const double chason_rate = 301.0 / memoryStallFactor(cfg, 301.0);
    EXPECT_NEAR(chason_rate / serpens_rate, 1.0, 0.02);
}

TEST(StreamCycles, CeilsProperly)
{
    EXPECT_EQ(streamCycles(100, 1.0), 100u);
    EXPECT_EQ(streamCycles(100, 1.34), 134u);
    EXPECT_EQ(streamCycles(3, 1.34), 5u); // 4.02 -> 5
    EXPECT_EQ(streamCycles(0, 2.0), 0u);
}

TEST(CycleBreakdown, TotalSums)
{
    CycleBreakdown b;
    b.matrixStream = 100;
    b.xLoad = 10;
    b.pipelineFill = 5;
    b.reduction = 20;
    b.writeback = 7;
    b.instStream = 2;
    b.launch = 50;
    EXPECT_EQ(b.total(), 194u);
}

TEST(TimingConfig, CyclesForUs)
{
    TimingConfig t;
    t.frequencyMhz = 300.0;
    EXPECT_EQ(t.cyclesForUs(2.0), 600u);
}

TEST(FrequencyModel, ReproducesPaperClocks)
{
    const FrequencyModel fm;
    EXPECT_NEAR(fm.achievedMhz(MemoryTopology::SingleUramPerPe), 223.0,
                0.5);
    EXPECT_NEAR(fm.achievedMhz(MemoryTopology::DistributedUramGroup),
                301.0, 0.5);
}

TEST(FrequencyModel, DistributedIsFaster)
{
    const FrequencyModel fm;
    EXPECT_GT(fm.achievedMhz(MemoryTopology::DistributedUramGroup),
              fm.achievedMhz(MemoryTopology::SingleUramPerPe));
}

} // namespace
} // namespace arch
} // namespace chason
