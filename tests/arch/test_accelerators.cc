/**
 * @file
 * Unit and integration tests for the Serpens and Chasoň datapaths.
 */

#include <gtest/gtest.h>

#include "arch/chason_accel.h"
#include "arch/serpens_accel.h"
#include "common/rng.h"
#include "sched/crhcs.h"
#include "sched/pe_aware.h"
#include "sparse/generators.h"

namespace chason {
namespace arch {
namespace {

ArchConfig
smallArch(unsigned depth)
{
    ArchConfig cfg;
    cfg.sched.channels = 4;
    cfg.sched.pesOverride = 4;
    cfg.sched.rawDistance = 4;
    cfg.sched.windowCols = 128;
    cfg.sched.rowsPerLanePerPass = 64;
    cfg.sched.migrationDepth = depth;
    return cfg;
}

sparse::CsrMatrix
randomMatrix(std::uint64_t seed, std::uint32_t rows = 100,
             std::uint32_t cols = 300, std::size_t nnz = 1200)
{
    Rng rng(seed);
    return sparse::erdosRenyi(rows, cols, nnz, rng);
}

TEST(Serpens, FunctionallyCorrectOnPeAwareSchedule)
{
    const ArchConfig cfg = smallArch(0);
    const sparse::CsrMatrix a = randomMatrix(1);
    Rng rng(2);
    const std::vector<float> x = sparse::randomVector(a.cols(), rng);
    const sched::Schedule sch =
        sched::PeAwareScheduler(cfg.sched).schedule(a);

    const RunResult result = SerpensAccelerator(cfg).run(sch, x);
    const std::vector<double> ref = sparse::spmvReference(a, x);
    EXPECT_LE(sparse::maxRelativeError(result.y, ref), 1.0);
}

TEST(Chason, FunctionallyCorrectOnCrhcsSchedule)
{
    const ArchConfig cfg = smallArch(1);
    const sparse::CsrMatrix a = randomMatrix(3);
    Rng rng(4);
    const std::vector<float> x = sparse::randomVector(a.cols(), rng);
    const sched::Schedule sch =
        sched::CrhcsScheduler(cfg.sched).schedule(a);

    const RunResult result = ChasonAccelerator(cfg).run(sch, x);
    const std::vector<double> ref = sparse::spmvReference(a, x);
    EXPECT_LE(sparse::maxRelativeError(result.y, ref), 1.0);
}

TEST(SerpensDeath, RejectsMigratedSchedules)
{
    const ArchConfig cfg = smallArch(1);
    // A matrix that certainly triggers migration: one long row plus
    // neighbour-channel work.
    sparse::CooMatrix coo(64, 128);
    for (std::uint32_t c = 0; c < 64; ++c)
        coo.add(0, c, 1.0f);
    for (std::uint32_t r = 4; r < 8; ++r)
        coo.add(r, r, 1.0f);
    const sparse::CsrMatrix a = coo.toCsr();
    const sched::Schedule sch =
        sched::CrhcsScheduler(cfg.sched).schedule(a);

    ArchConfig serpens_cfg = smallArch(0);
    std::vector<float> x(a.cols(), 1.0f);
    EXPECT_DEATH(SerpensAccelerator(serpens_cfg).run(sch, x),
                 "migrated");
}

TEST(Chason, RunsSerpensSchedulesToo)
{
    // A pure PE-aware schedule contains no migrated slots; Chasoň's
    // datapath is a superset and must execute it correctly.
    const ArchConfig cfg = smallArch(1);
    const sparse::CsrMatrix a = randomMatrix(5);
    Rng rng(6);
    const std::vector<float> x = sparse::randomVector(a.cols(), rng);
    sched::SchedConfig pe_cfg = cfg.sched;
    pe_cfg.migrationDepth = 0;
    const sched::Schedule sch =
        sched::PeAwareScheduler(pe_cfg).schedule(a);
    const RunResult result = ChasonAccelerator(cfg).run(sch, x);
    const std::vector<double> ref = sparse::spmvReference(a, x);
    EXPECT_LE(sparse::maxRelativeError(result.y, ref), 1.0);
}

TEST(Accelerators, ChasonIsFasterOnStallHeavyMatrix)
{
    const ArchConfig cfg_c = smallArch(1);
    const ArchConfig cfg_s = smallArch(0);
    // Arrowhead structure: dense rows serialize on Serpens.
    Rng rng(7);
    const sparse::CsrMatrix a = sparse::arrowBanded(128, 4, 0.3, 2, rng);
    const std::vector<float> x = sparse::randomVector(a.cols(), rng);

    const sched::Schedule pe =
        sched::PeAwareScheduler(cfg_s.sched).schedule(a);
    const sched::Schedule cr =
        sched::CrhcsScheduler(cfg_c.sched).schedule(a);

    const RunResult serpens = SerpensAccelerator(cfg_s).run(pe, x);
    const RunResult chason = ChasonAccelerator(cfg_c).run(cr, x);
    EXPECT_LT(chason.latencyUs, serpens.latencyUs);
    // And it moves less matrix data (fewer padded beats).
    std::uint64_t serpens_matrix = 0, chason_matrix = 0;
    for (unsigned ch = 0; ch < cfg_s.sched.channels; ++ch) {
        serpens_matrix += serpens.traffic.channel(ch).readBytes();
        chason_matrix += chason.traffic.channel(ch).readBytes();
    }
    EXPECT_LT(chason_matrix, serpens_matrix);
}

TEST(Accelerators, CycleBreakdownIsConsistent)
{
    const ArchConfig cfg = smallArch(1);
    const sparse::CsrMatrix a = randomMatrix(8);
    Rng rng(9);
    const std::vector<float> x = sparse::randomVector(a.cols(), rng);
    const sched::Schedule sch =
        sched::CrhcsScheduler(cfg.sched).schedule(a);
    const RunResult r = ChasonAccelerator(cfg).run(sch, x);
    EXPECT_GT(r.cycles.matrixStream, 0u);
    EXPECT_GT(r.cycles.xLoad, 0u);
    EXPECT_GT(r.cycles.reduction, 0u);
    EXPECT_GT(r.cycles.writeback, 0u);
    EXPECT_EQ(r.cycles.total(),
              r.cycles.matrixStream + r.cycles.xLoad +
                  r.cycles.pipelineFill + r.cycles.reduction +
                  r.cycles.writeback + r.cycles.instStream +
                  r.cycles.launch);
    EXPECT_GT(r.latencyUs, 0.0);
    EXPECT_GE(r.memStallFactor, 1.0);
}

TEST(Accelerators, SerpensHasNoReductionCycles)
{
    const ArchConfig cfg = smallArch(0);
    const sparse::CsrMatrix a = randomMatrix(10);
    Rng rng(11);
    const std::vector<float> x = sparse::randomVector(a.cols(), rng);
    const sched::Schedule sch =
        sched::PeAwareScheduler(cfg.sched).schedule(a);
    const RunResult r = SerpensAccelerator(cfg).run(sch, x);
    EXPECT_EQ(r.cycles.reduction, 0u);
}

TEST(Accelerators, MultiPassMatrixIsCorrect)
{
    // 4 x 4 lanes x 64 rows per lane = 1024 rows per pass; 2200 rows
    // forces three passes.
    const ArchConfig cfg = smallArch(1);
    Rng rng(12);
    const sparse::CsrMatrix a = sparse::erdosRenyi(2200, 500, 8000, rng);
    const std::vector<float> x = sparse::randomVector(a.cols(), rng);
    const sched::Schedule sch =
        sched::CrhcsScheduler(cfg.sched).schedule(a);
    EXPECT_GT(sch.passes(), 1u);
    const RunResult r = ChasonAccelerator(cfg).run(sch, x);
    const std::vector<double> ref = sparse::spmvReference(a, x);
    EXPECT_LE(sparse::maxRelativeError(r.y, ref), 1.0);
}

TEST(Accelerators, MultiWindowMatrixIsCorrect)
{
    const ArchConfig cfg = smallArch(1);
    Rng rng(13);
    const sparse::CsrMatrix a = sparse::erdosRenyi(100, 1000, 6000, rng);
    const std::vector<float> x = sparse::randomVector(a.cols(), rng);
    const sched::Schedule sch =
        sched::CrhcsScheduler(cfg.sched).schedule(a);
    EXPECT_GT(sch.windowsPerPass(), 1u);
    const RunResult r = ChasonAccelerator(cfg).run(sch, x);
    const std::vector<double> ref = sparse::spmvReference(a, x);
    EXPECT_LE(sparse::maxRelativeError(r.y, ref), 1.0);
}

TEST(Accelerators, TrafficRolesAreSeparated)
{
    const ArchConfig cfg = smallArch(1);
    const sparse::CsrMatrix a = randomMatrix(14);
    Rng rng(15);
    const std::vector<float> x = sparse::randomVector(a.cols(), rng);
    const sched::Schedule sch =
        sched::CrhcsScheduler(cfg.sched).schedule(a);
    const RunResult r = ChasonAccelerator(cfg).run(sch, x);
    // x channel read-only; y channel write-only (beta = 0); inst
    // channel tiny.
    EXPECT_GT(r.traffic.channel(cfg.xChannel()).readBytes(), 0u);
    EXPECT_EQ(r.traffic.channel(cfg.xChannel()).writeBytes(), 0u);
    EXPECT_GT(r.traffic.channel(cfg.yChannel()).writeBytes(), 0u);
    EXPECT_EQ(r.traffic.channel(cfg.yChannel()).readBytes(), 0u);
    EXPECT_EQ(r.traffic.channel(cfg.instChannel()).readBeats(),
              sch.phases.size());
}

TEST(Accelerators, FrequenciesMatchPaper)
{
    EXPECT_NEAR(ChasonAccelerator(smallArch(1)).frequencyMhz(), 301.0,
                0.5);
    EXPECT_NEAR(SerpensAccelerator(smallArch(0)).frequencyMhz(), 223.0,
                0.5);
}

} // namespace
} // namespace arch
} // namespace chason
