/**
 * @file
 * Unit tests for the resource model against Table 1.
 */

#include "arch/resources.h"

#include <gtest/gtest.h>

namespace chason {
namespace arch {
namespace {

TEST(Resources, SerpensMatchesTable1)
{
    const FpgaResources r = serpensResources(ArchConfig{});
    EXPECT_NEAR(static_cast<double>(r.lut), 219000.0, 1000.0);
    EXPECT_NEAR(static_cast<double>(r.ff), 252000.0, 1000.0);
    EXPECT_EQ(r.dsp, 798u);
    EXPECT_EQ(r.bram18k, 1024u);
    EXPECT_EQ(r.uram, 384u);
    EXPECT_TRUE(r.fitsU55c());
}

TEST(Resources, ChasonMatchesTable1)
{
    const FpgaResources r = chasonResources(ArchConfig{});
    EXPECT_NEAR(static_cast<double>(r.lut), 346000.0, 1000.0);
    EXPECT_NEAR(static_cast<double>(r.ff), 418000.0, 1000.0);
    EXPECT_EQ(r.dsp, 1254u);
    EXPECT_EQ(r.bram18k, 1024u);
    EXPECT_EQ(r.uram, 512u);
    EXPECT_TRUE(r.fitsU55c());
}

TEST(Resources, UramPercentagesMatchTable1)
{
    EXPECT_NEAR(serpensResources(ArchConfig{}).uramPercent(), 40.0, 0.5);
    EXPECT_NEAR(chasonResources(ArchConfig{}).uramPercent(), 52.0, 1.5);
}

TEST(Resources, FullScugDoesNotFitU55c)
{
    // Section 4.5: the theoretical 8-URAM ScUG needs 1024 URAMs, more
    // than the 960 available.
    ArchConfig cfg;
    cfg.scugSize = 8;
    EXPECT_EQ(chasonUramCount(cfg), 1024u);
    EXPECT_FALSE(chasonResources(cfg).fitsU55c());
}

TEST(Resources, ShippedScugUses512Urams)
{
    ArchConfig cfg;
    cfg.scugSize = 4;
    EXPECT_EQ(chasonUramCount(cfg), 512u);
}

TEST(Resources, MinimalScugUses128Urams)
{
    ArchConfig cfg;
    cfg.scugSize = 1;
    cfg.sched.rowsPerLanePerPass = 1024;
    EXPECT_EQ(chasonUramCount(cfg), 128u);
    EXPECT_TRUE(chasonResources(cfg).fitsU55c());
}

TEST(Resources, DeeperMigrationCostsMoreUram)
{
    ArchConfig d1;
    d1.sched.migrationDepth = 1;
    ArchConfig d2 = d1;
    d2.sched.migrationDepth = 2;
    d2.sched.rowsPerLanePerPass = 4096;
    EXPECT_GT(chasonResources(d2).uram, chasonResources(d1).uram);
    EXPECT_GT(chasonResources(d2).dsp, chasonResources(d1).dsp);
}

TEST(Resources, ChasonCostsMoreThanSerpens)
{
    const FpgaResources s = serpensResources(ArchConfig{});
    const FpgaResources c = chasonResources(ArchConfig{});
    EXPECT_GT(c.lut, s.lut);
    EXPECT_GT(c.ff, s.ff);
    EXPECT_GT(c.dsp, s.dsp);
    EXPECT_GT(c.uram, s.uram);
    EXPECT_EQ(c.bram18k, s.bram18k); // same x buffering
}

TEST(ArchConfig, CapacityFollowsScugSize)
{
    ArchConfig cfg;
    cfg.scugSize = 8;
    EXPECT_EQ(cfg.capacityRowsPerLane(), 8192u);
    cfg.scugSize = 4;
    EXPECT_EQ(cfg.capacityRowsPerLane(), 4096u);
    cfg.scugSize = 1;
    EXPECT_EQ(cfg.capacityRowsPerLane(), 1024u);
    cfg.sched.migrationDepth = 0; // Serpens: only the private URAM
    EXPECT_EQ(cfg.capacityRowsPerLane(), 8192u);
}

TEST(ArchConfigDeath, OverCapacityPassHeightPanics)
{
    ArchConfig cfg;
    cfg.scugSize = 1;
    cfg.sched.rowsPerLanePerPass = 4096; // capacity is 1024
    EXPECT_DEATH(cfg.validate(), "capacity");
}

TEST(ArchConfig, ChannelRoles)
{
    ArchConfig cfg;
    EXPECT_EQ(cfg.xChannel(), 16u);
    EXPECT_EQ(cfg.yChannel(), 17u);
    EXPECT_EQ(cfg.instChannel(), 18u);
    EXPECT_EQ(cfg.usedChannels(), 19u); // Section 5.1: 19 channels
}

} // namespace
} // namespace arch
} // namespace chason
