/**
 * @file
 * Unit tests for the PEG model (accumulator banks, router, reduction).
 */

#include "arch/peg.h"

#include <gtest/gtest.h>

namespace chason {
namespace arch {
namespace {

sched::SchedConfig
cfg4()
{
    sched::SchedConfig cfg;
    cfg.channels = 4;
    cfg.pesOverride = 4;
    cfg.rawDistance = 3;
    cfg.windowCols = 64;
    cfg.rowsPerLanePerPass = 16;
    cfg.migrationDepth = 1;
    return cfg;
}

TEST(AccumulatorBank, AccumulatesAndReads)
{
    AccumulatorBank bank;
    bank.reset(8);
    bank.accumulate(3, 1.5f, 0, 3);
    bank.accumulate(3, 2.0f, 3, 3);
    EXPECT_FLOAT_EQ(bank.value(3), 3.5f);
    EXPECT_FLOAT_EQ(bank.value(0), 0.0f);
}

TEST(AccumulatorBankDeath, RawHazardPanics)
{
    AccumulatorBank bank;
    bank.reset(8);
    bank.accumulate(2, 1.0f, 10, 3);
    EXPECT_DEATH(bank.accumulate(2, 1.0f, 12, 3), "RAW");
}

TEST(AccumulatorBank, DifferentAddressesNoHazard)
{
    AccumulatorBank bank;
    bank.reset(8);
    bank.accumulate(0, 1.0f, 0, 3);
    bank.accumulate(1, 1.0f, 1, 3); // different row: fine
    SUCCEED();
}

TEST(AccumulatorBankDeath, OutOfDepthPanics)
{
    AccumulatorBank bank;
    bank.reset(4);
    EXPECT_DEATH(bank.accumulate(4, 1.0f, 0, 1), "depth");
    EXPECT_DEATH(bank.value(9), "depth");
}

TEST(AccumulatorBank, ResetClearsHistory)
{
    AccumulatorBank bank;
    bank.reset(4);
    bank.accumulate(1, 5.0f, 0, 3);
    bank.reset(4);
    EXPECT_FLOAT_EQ(bank.value(1), 0.0f);
    bank.accumulate(1, 1.0f, 0, 3); // no stale RAW state
    SUCCEED();
}

TEST(XWindowBuffer, LoadAndRead)
{
    XWindowBuffer buf;
    const std::vector<float> x = {0, 1, 2, 3, 4, 5, 6, 7};
    buf.load(x, 4, 3);
    EXPECT_EQ(buf.base(), 4u);
    EXPECT_EQ(buf.length(), 3u);
    EXPECT_FLOAT_EQ(buf.at(4), 4.0f);
    EXPECT_FLOAT_EQ(buf.at(6), 6.0f);
}

TEST(XWindowBufferDeath, OutsideWindowPanics)
{
    XWindowBuffer buf;
    const std::vector<float> x(16, 1.0f);
    buf.load(x, 8, 4);
    EXPECT_DEATH(buf.at(7), "window");
    EXPECT_DEATH(buf.at(12), "window");
}

TEST(XWindowBufferDeath, LoadBeyondXPanics)
{
    XWindowBuffer buf;
    const std::vector<float> x(4, 1.0f);
    EXPECT_DEATH(buf.load(x, 2, 4), "outside x");
}

TEST(Pe, PrivateRouting)
{
    sched::SchedConfig cfg = cfg4();
    Pe pe(1, 4);
    pe.reset(16);
    XWindowBuffer buf;
    const std::vector<float> x(64, 2.0f);
    buf.load(x, 0, 64);

    sched::Slot slot;
    slot.valid = true;
    slot.value = 3.0f;
    slot.row = 16; // lane (0,0), local row 1
    slot.col = 5;
    slot.pvt = true;
    slot.peSrc = 0;
    slot.chSrc = 0;
    pe.process(slot, buf, 0, cfg, 0, 0);
    EXPECT_FLOAT_EQ(pe.pvt().value(1), 6.0f);
}

TEST(Pe, SharedRoutingByPeSrc)
{
    sched::SchedConfig cfg = cfg4();
    Pe pe(1, 4);
    pe.reset(16);
    XWindowBuffer buf;
    const std::vector<float> x(64, 1.0f);
    buf.load(x, 0, 64);

    // Row 22: lane 22 % 16 = 6 -> channel 1, pe 2, local row 1.
    sched::Slot slot;
    slot.valid = true;
    slot.value = 4.0f;
    slot.row = 22;
    slot.col = 0;
    slot.pvt = false;
    slot.peSrc = 2;
    slot.chSrc = 1;
    pe.process(slot, buf, 0, cfg, /*my_channel=*/0, /*my_pe=*/3);
    EXPECT_FLOAT_EQ(pe.shared(1, 2).value(1), 4.0f);
    EXPECT_FLOAT_EQ(pe.pvt().value(1), 0.0f);
}

TEST(Pe, InvalidSlotIsIgnored)
{
    sched::SchedConfig cfg = cfg4();
    Pe pe(1, 4);
    pe.reset(4);
    XWindowBuffer buf;
    const std::vector<float> x(64, 1.0f);
    buf.load(x, 0, 64);
    pe.process(sched::Slot(), buf, 0, cfg, 0, 0);
    EXPECT_FLOAT_EQ(pe.pvt().value(0), 0.0f);
}

TEST(PeDeath, WrongLanePanics)
{
    sched::SchedConfig cfg = cfg4();
    Pe pe(1, 4);
    pe.reset(4);
    XWindowBuffer buf;
    const std::vector<float> x(64, 1.0f);
    buf.load(x, 0, 64);
    sched::Slot slot;
    slot.valid = true;
    slot.value = 1.0f;
    slot.row = 1; // lane (0,1)
    slot.col = 0;
    slot.pvt = true;
    slot.peSrc = 1;
    slot.chSrc = 0;
    EXPECT_DEATH(pe.process(slot, buf, 0, cfg, 0, 0), "routed");
}

TEST(PeDeath, MigrationBeyondDepthPanics)
{
    sched::SchedConfig cfg = cfg4();
    Pe pe(1, 4); // depth 1 only
    pe.reset(4);
    XWindowBuffer buf;
    const std::vector<float> x(64, 1.0f);
    buf.load(x, 0, 64);
    sched::Slot slot;
    slot.valid = true;
    slot.value = 1.0f;
    slot.row = 8; // channel 2
    slot.col = 0;
    slot.pvt = false;
    slot.peSrc = 0;
    slot.chSrc = 2;
    // Received on channel 0: distance 2 > depth 1.
    EXPECT_DEATH(pe.process(slot, buf, 0, cfg, 0, 0), "distance");
}

TEST(Peg, ReduceSharedSumsAcrossPes)
{
    sched::SchedConfig cfg = cfg4();
    Peg peg(cfg, 1);
    peg.reset(8);
    XWindowBuffer buf;
    const std::vector<float> x(64, 1.0f);
    buf.load(x, 0, 64);

    // Row 21 -> lane 5 -> channel 1, pe 1, local row 1. Spread three
    // contributions of the same row over different destination PEs.
    for (unsigned dest_pe : {0u, 1u, 2u}) {
        sched::Slot slot;
        slot.valid = true;
        slot.value = 2.0f;
        slot.row = 21;
        slot.col = static_cast<std::uint32_t>(dest_pe);
        slot.pvt = false;
        slot.peSrc = 1;
        slot.chSrc = 1;
        peg.pe(dest_pe).process(slot, buf, 0, cfg, 0, dest_pe);
    }
    const std::vector<float> reduced = peg.reduceShared(1, 1);
    ASSERT_EQ(reduced.size(), 8u);
    EXPECT_FLOAT_EQ(reduced[1], 6.0f);
    EXPECT_FLOAT_EQ(reduced[0], 0.0f);
    // Other source PE banks untouched.
    EXPECT_FLOAT_EQ(peg.reduceShared(1, 0)[1], 0.0f);
}

TEST(Peg, SerpensStylePeHasNoSharedBanks)
{
    sched::SchedConfig cfg = cfg4();
    Peg peg(cfg, 0);
    peg.reset(4);
    EXPECT_EQ(peg.pe(0).migrationDepth(), 0u);
    EXPECT_DEATH(peg.pe(0).shared(1, 0), "distance");
}

} // namespace
} // namespace arch
} // namespace chason
