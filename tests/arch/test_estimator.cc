/**
 * @file
 * The closed-form estimator must agree with the beat-level simulator
 * cycle-for-cycle on every matrix family (parameterized sweep).
 */

#include "arch/estimator.h"

#include <gtest/gtest.h>

#include "arch/chason_accel.h"
#include "arch/serpens_accel.h"
#include "common/rng.h"
#include "core/engine.h"
#include "sched/crhcs.h"
#include "sched/pe_aware.h"
#include "sparse/generators.h"

namespace chason {
namespace arch {
namespace {

struct EstCase
{
    std::string name;
    std::uint64_t seed;
    std::function<sparse::CsrMatrix(Rng &)> make;
};

std::vector<EstCase>
cases()
{
    return {
        {"erdos", 1,
         [](Rng &r) { return sparse::erdosRenyi(500, 700, 6000, r); }},
        {"zipf", 2,
         [](Rng &r) { return sparse::zipfRows(400, 400, 5000, 1.3, r); }},
        {"arrow", 3,
         [](Rng &r) { return sparse::arrowBanded(600, 6, 0.3, 3, r); }},
        {"graph", 4,
         [](Rng &r) { return sparse::preferentialAttachment(900, 6, r); }},
        {"multiwindow", 5,
         [](Rng &r) { return sparse::erdosRenyi(200, 20000, 9000, r); }},
        {"multipass", 6,
         [](Rng &r) { return sparse::erdosRenyi(300000, 200, 40000, r); }},
        {"mycielskian", 7, [](Rng &) { return sparse::mycielskian(7); }},
    };
}

class EstimatorAgreement : public ::testing::TestWithParam<EstCase>
{
};

TEST_P(EstimatorAgreement, ChasonCyclesExact)
{
    Rng rng(GetParam().seed);
    const sparse::CsrMatrix a = GetParam().make(rng);
    const std::vector<float> x = sparse::randomVector(a.cols(), rng);
    const ArchConfig cfg;
    const sched::Schedule sch =
        sched::CrhcsScheduler(cfg.sched).schedule(a);

    const RunResult run = ChasonAccelerator(cfg).run(sch, x);
    const CycleBreakdown est =
        estimateCycles(sch, cfg, DatapathKind::Chason);

    EXPECT_EQ(run.cycles.matrixStream, est.matrixStream);
    EXPECT_EQ(run.cycles.xLoad, est.xLoad);
    EXPECT_EQ(run.cycles.pipelineFill, est.pipelineFill);
    EXPECT_EQ(run.cycles.reduction, est.reduction);
    EXPECT_EQ(run.cycles.writeback, est.writeback);
    EXPECT_EQ(run.cycles.instStream, est.instStream);
    EXPECT_EQ(run.cycles.launch, est.launch);
    EXPECT_EQ(run.cycles.total(), est.total());
    EXPECT_NEAR(run.latencyUs,
                estimateLatencyUs(sch, cfg, DatapathKind::Chason), 1e-9);
}

TEST_P(EstimatorAgreement, SerpensCyclesExact)
{
    Rng rng(GetParam().seed + 100);
    const sparse::CsrMatrix a = GetParam().make(rng);
    const std::vector<float> x = sparse::randomVector(a.cols(), rng);
    ArchConfig cfg;
    cfg.sched.migrationDepth = 0;
    const sched::Schedule sch =
        sched::PeAwareScheduler(cfg.sched).schedule(a);

    const RunResult run = SerpensAccelerator(cfg).run(sch, x);
    const CycleBreakdown est =
        estimateCycles(sch, cfg, DatapathKind::Serpens);
    EXPECT_EQ(run.cycles.total(), est.total());
    EXPECT_EQ(run.cycles.reduction, 0u);
    EXPECT_EQ(est.reduction, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Families, EstimatorAgreement, ::testing::ValuesIn(cases()),
    [](const auto &info) { return info.param.name; });

TEST(Estimator, FrequencyPerKind)
{
    EXPECT_NEAR(datapathFrequencyMhz(DatapathKind::Chason), 301.0, 0.5);
    EXPECT_NEAR(datapathFrequencyMhz(DatapathKind::Serpens), 223.0, 0.5);
}

} // namespace
} // namespace arch
} // namespace chason
