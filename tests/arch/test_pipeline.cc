/**
 * @file
 * Tests for the stage-level adder pipeline model (Fig. 2).
 */

#include "arch/pipeline.h"

#include <gtest/gtest.h>

#include "sched/crhcs.h"
#include "sched/pe_aware.h"
#include "sched/row_based.h"
#include "sparse/formats.h"

namespace chason {
namespace arch {
namespace {

TEST(AdderPipeline, FlowsThroughAllStages)
{
    AdderPipeline pipe(3);
    pipe.step(PipelineInstruction{1, 10, false});
    EXPECT_TRUE(pipe.at(1).has_value());
    EXPECT_EQ(pipe.at(1)->id, 1u);
    pipe.step(std::nullopt);
    EXPECT_FALSE(pipe.at(1).has_value());
    EXPECT_EQ(pipe.at(2)->id, 1u);
    pipe.step(std::nullopt);
    EXPECT_EQ(pipe.at(3)->id, 1u);
    EXPECT_EQ(pipe.completed(), 0u);
    pipe.step(std::nullopt);
    EXPECT_EQ(pipe.completed(), 1u);
    EXPECT_FALSE(pipe.busy());
}

TEST(AdderPipeline, BackToBackDifferentRows)
{
    AdderPipeline pipe(4);
    for (std::uint32_t i = 0; i < 6; ++i)
        pipe.step(PipelineInstruction{i + 1, 100 + i, false});
    while (pipe.busy())
        pipe.step(std::nullopt);
    EXPECT_EQ(pipe.completed(), 6u);
    EXPECT_EQ(pipe.cycles(), 6u + 4u);
}

TEST(AdderPipeline, ExactRawDistanceIsLegal)
{
    AdderPipeline pipe(5);
    pipe.step(PipelineInstruction{1, 7, false});
    for (int i = 0; i < 4; ++i)
        pipe.step(std::nullopt);
    // 5 cycles after issue: the predecessor drained this very cycle.
    pipe.step(PipelineInstruction{2, 7, false});
    while (pipe.busy())
        pipe.step(std::nullopt);
    EXPECT_EQ(pipe.completed(), 2u);
}

TEST(AdderPipelineDeath, InFlightSameRowPanics)
{
    AdderPipeline pipe(5);
    pipe.step(PipelineInstruction{1, 7, false});
    pipe.step(std::nullopt);
    EXPECT_DEATH(pipe.step(PipelineInstruction{2, 7, false}),
                 "RAW corruption");
}

sched::SchedConfig
fig2Config(unsigned depth)
{
    sched::SchedConfig cfg;
    cfg.channels = 2;
    cfg.pesOverride = 4;
    cfg.rawDistance = 10;
    cfg.windowCols = 64;
    cfg.rowsPerLanePerPass = 64;
    cfg.migrationDepth = depth;
    return cfg;
}

sparse::CsrMatrix
fig2Matrix()
{
    sparse::CooMatrix coo(64, 8);
    // Lane (0,0): rows 0 (3 nz), 8 (1), 16 (2), 24 (2) — Fig. 1.
    coo.add(0, 0, 1.0f);
    coo.add(0, 1, 2.0f);
    coo.add(0, 3, 3.0f);
    coo.add(8, 0, 11.0f);
    coo.add(16, 0, 21.0f);
    coo.add(16, 3, 23.0f);
    coo.add(24, 0, 31.0f);
    coo.add(24, 2, 32.0f);
    // Channel 1: a rich donor supply on every lane (Fig. 2c's i8..i11).
    for (std::uint32_t r = 4; r < 64; r += 8) {
        coo.add(r, 1, 5.0f);
        coo.add(r + 1, 2, 6.0f);
        coo.add(r + 2, 4, 7.0f);
        coo.add(r + 3, 6, 8.0f);
    }
    return coo.toCsr();
}

TEST(TracePipeline, RowBasedMatchesFig2aShape)
{
    const sched::Schedule sch =
        sched::RowBasedScheduler(fig2Config(0)).schedule(fig2Matrix());
    const PipelineTrace trace = tracePipeline(sch, 0, 0, 0);
    EXPECT_EQ(trace.instructions, 8u);
    // Fig. 2a: throughput is dreadful (paper: 0.10/cycle).
    EXPECT_LT(trace.throughputPerCycle, 0.45);
    EXPECT_EQ(trace.stages, 10u);
    EXPECT_FALSE(trace.lines.empty());
    EXPECT_NE(trace.toString().find("S.1"), std::string::npos);
}

TEST(TracePipeline, PeAwareImproves)
{
    const sched::Schedule row =
        sched::RowBasedScheduler(fig2Config(0)).schedule(fig2Matrix());
    const sched::Schedule pe =
        sched::PeAwareScheduler(fig2Config(0)).schedule(fig2Matrix());
    EXPECT_GT(tracePipeline(pe, 0, 0, 0).throughputPerCycle,
              tracePipeline(row, 0, 0, 0).throughputPerCycle);
}

TEST(TracePipeline, CrhcsReachesFullThroughput)
{
    const sched::Schedule cr =
        sched::CrhcsScheduler(fig2Config(1)).schedule(fig2Matrix());
    const PipelineTrace trace = tracePipeline(cr, 0, 0, 0);
    // Fig. 2c: the pipeline stays filled (1 non-zero per cycle).
    EXPECT_GE(trace.throughputPerCycle, 0.99);
    // Migrated instructions are rendered lowercase ('i' prefix).
    EXPECT_NE(trace.toString().find(" i"), std::string::npos);
}

TEST(TracePipeline, EverySchedulerPassesTheInFlightCheck)
{
    // Replaying any scheduler's lane through the stage model must not
    // trip the in-flight RAW check: rawDistance == stage depth is
    // sufficient by construction.
    const sparse::CsrMatrix a = fig2Matrix();
    for (int which = 0; which < 3; ++which) {
        sched::Schedule sch;
        if (which == 0)
            sch = sched::RowBasedScheduler(fig2Config(0)).schedule(a);
        else if (which == 1)
            sch = sched::PeAwareScheduler(fig2Config(0)).schedule(a);
        else
            sch = sched::CrhcsScheduler(fig2Config(1)).schedule(a);
        for (unsigned pe = 0; pe < 4; ++pe)
            (void)tracePipeline(sch, 0, 0, pe);
        for (unsigned pe = 0; pe < 4; ++pe)
            (void)tracePipeline(sch, 0, 1, pe);
    }
    SUCCEED();
}

} // namespace
} // namespace arch
} // namespace chason
