/**
 * @file
 * Tests for schedule serialization: the artifact round trip must
 * preserve the schedule exactly, and a schedule reconstructed from the
 * wire encoding must simulate identically — functionally and in cycles.
 */

#include "sched/schedule_io.h"

#include <gtest/gtest.h>

#include <sstream>

#include "arch/chason_accel.h"
#include "common/rng.h"
#include "sched/analyzer.h"
#include "sched/crhcs.h"
#include "sched/pe_aware.h"
#include "sched/row_based.h"
#include "sparse/generators.h"
#include "verify/verifier.h"

namespace chason {
namespace sched {
namespace {

Schedule
sampleSchedule(std::uint64_t seed, bool migrated)
{
    Rng rng(seed);
    const sparse::CsrMatrix a =
        sparse::arrowBanded(800, 6, 0.3, 2, rng);
    SchedConfig cfg;
    cfg.migrationDepth = migrated ? 1 : 0;
    if (migrated)
        return CrhcsScheduler(cfg).schedule(a);
    return PeAwareScheduler(cfg).schedule(a);
}

void
expectEqualSchedules(const Schedule &a, const Schedule &b)
{
    ASSERT_EQ(a.phases.size(), b.phases.size());
    EXPECT_EQ(a.rows, b.rows);
    EXPECT_EQ(a.cols, b.cols);
    EXPECT_EQ(a.nnz, b.nnz);
    EXPECT_EQ(a.scheduler, b.scheduler);
    for (std::size_t ph = 0; ph < a.phases.size(); ++ph) {
        const WindowSchedule &pa = a.phases[ph];
        const WindowSchedule &pb = b.phases[ph];
        EXPECT_EQ(pa.pass, pb.pass);
        EXPECT_EQ(pa.window, pb.window);
        EXPECT_EQ(pa.alignedBeats, pb.alignedBeats);
        ASSERT_EQ(pa.channels.size(), pb.channels.size());
        for (std::size_t ch = 0; ch < pa.channels.size(); ++ch) {
            ASSERT_EQ(pa.channels[ch].length(), pb.channels[ch].length());
            for (std::size_t t = 0; t < pa.channels[ch].length(); ++t) {
                for (unsigned p = 0; p < a.config.pesPerGroup(); ++p) {
                    const Slot &sa = pa.channels[ch].beats[t].slots[p];
                    const Slot &sb = pb.channels[ch].beats[t].slots[p];
                    ASSERT_EQ(sa.valid, sb.valid);
                    if (!sa.valid)
                        continue;
                    EXPECT_EQ(sa.row, sb.row);
                    EXPECT_EQ(sa.col, sb.col);
                    EXPECT_EQ(sa.value, sb.value);
                    EXPECT_EQ(sa.pvt, sb.pvt);
                    EXPECT_EQ(sa.peSrc, sb.peSrc);
                    EXPECT_EQ(sa.chSrc, sb.chSrc);
                }
            }
        }
    }
}

TEST(ScheduleIo, RoundTripPeAware)
{
    const Schedule original = sampleSchedule(1, false);
    std::stringstream buffer;
    writeSchedule(original, buffer);
    const Schedule restored = readSchedule(buffer);
    expectEqualSchedules(original, restored);
}

TEST(ScheduleIo, RoundTripCrhcsWithMigratedElements)
{
    const Schedule original = sampleSchedule(2, true);
    // Confirm the sample actually contains migrated work.
    std::size_t migrated = 0;
    for (const WindowSchedule &phase : original.phases) {
        for (const auto &ch : phase.channels) {
            for (const Beat &beat : ch.beats) {
                for (unsigned p = 0; p < 8; ++p) {
                    if (beat.slots[p].valid && !beat.slots[p].pvt)
                        ++migrated;
                }
            }
        }
    }
    ASSERT_GT(migrated, 0u);

    std::stringstream buffer;
    writeSchedule(original, buffer);
    const Schedule restored = readSchedule(buffer);
    expectEqualSchedules(original, restored);
}

TEST(ScheduleIo, RestoredScheduleSimulatesIdentically)
{
    Rng rng(3);
    const sparse::CsrMatrix a = sparse::arrowBanded(800, 6, 0.3, 2, rng);
    const std::vector<float> x = sparse::randomVector(a.cols(), rng);
    const arch::ArchConfig cfg;
    const Schedule original = CrhcsScheduler(cfg.sched).schedule(a);

    std::stringstream buffer;
    writeSchedule(original, buffer);
    const Schedule restored = readSchedule(buffer);

    const arch::ChasonAccelerator accel(cfg);
    const arch::RunResult r1 = accel.run(original, x);
    const arch::RunResult r2 = accel.run(restored, x);
    EXPECT_EQ(r1.y, r2.y); // bit-identical results
    EXPECT_EQ(r1.cycles.total(), r2.cycles.total());
    validateSchedule(restored, a);
}

TEST(ScheduleIo, FileRoundTrip)
{
    const Schedule original = sampleSchedule(4, true);
    const std::string path =
        ::testing::TempDir() + "/chason_schedule_test.bin";
    writeScheduleFile(original, path);
    const Schedule restored = readScheduleFile(path);
    expectEqualSchedules(original, restored);
}

TEST(ScheduleIoDeath, BadMagicFatal)
{
    std::stringstream buffer;
    buffer.write("NOTASCHD........", 16);
    EXPECT_EXIT(readSchedule(buffer), ::testing::ExitedWithCode(1),
                "magic");
}

TEST(ScheduleIoDeath, TruncationFatal)
{
    const Schedule original = sampleSchedule(5, false);
    std::stringstream buffer;
    writeSchedule(original, buffer);
    const std::string full = buffer.str();
    std::stringstream cut(full.substr(0, full.size() / 2));
    EXPECT_EXIT(readSchedule(cut), ::testing::ExitedWithCode(1),
                "truncated");
}

// Save -> load -> verify for each scheduler family: the restored
// artifact must be element-identical to the original AND pass the
// static verifier with completeness checked against the source matrix.
TEST(ScheduleIo, RoundTripVerifierCleanAllSchedulers)
{
    Rng rng(8);
    const sparse::CsrMatrix a = sparse::zipfRows(1200, 1200, 9000, 1.2, rng);

    std::vector<Schedule> originals;
    {
        SchedConfig serial;
        serial.migrationDepth = 0;
        originals.push_back(RowBasedScheduler(serial).schedule(a));
        originals.push_back(PeAwareScheduler(serial).schedule(a));
        originals.push_back(CrhcsScheduler(SchedConfig{}).schedule(a));
    }

    for (const Schedule &original : originals) {
        SCOPED_TRACE(original.scheduler);
        std::stringstream buffer;
        writeSchedule(original, buffer);
        const Schedule restored = readSchedule(buffer);
        expectEqualSchedules(original, restored);

        verify::VerifyOptions options;
        options.matrix = &a;
        const verify::VerifyResult result =
            verify::verifySchedule(restored, options);
        EXPECT_TRUE(result.clean()) << result.summary();
        EXPECT_EQ(result.errors, 0u);
        EXPECT_EQ(result.warnings, 0u);
    }
}

TEST(ScheduleIo, ArtifactBytesMatchAnalyzer)
{
    const Schedule sch = sampleSchedule(6, true);
    EXPECT_EQ(scheduleArtifactBytes(sch), analyze(sch).matrixBytes);
}

TEST(ScheduleIoDeath, DeepMigrationUnserializable)
{
    Rng rng(7);
    const sparse::CsrMatrix a = sparse::zipfRows(64, 64, 500, 1.3, rng);
    SchedConfig cfg;
    cfg.channels = 8;
    cfg.migrationDepth = 2;
    const Schedule sch = CrhcsScheduler(cfg).schedule(a);
    std::stringstream buffer;
    EXPECT_DEATH(writeSchedule(sch, buffer), "immediate next channel");
}

} // namespace
} // namespace sched
} // namespace chason
