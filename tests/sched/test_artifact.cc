/**
 * @file
 * Tests for the CHSA on-disk schedule artifact: bit-exact round trip,
 * zero-copy aliasing (and detach-on-mutation), the chunk-folded digest,
 * and the admission gate's rejection of every corruption class —
 * wrong magic, wrong version, truncation, tampered header, tampered
 * payload, trailing garbage.
 */

#include "sched/artifact.h"

#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "sched/crhcs.h"
#include "sched/pe_aware.h"
#include "sparse/generators.h"

namespace chason {
namespace sched {
namespace {

Schedule
sampleSchedule(std::uint64_t seed, bool migrated)
{
    Rng rng(seed);
    const sparse::CsrMatrix a = sparse::arrowBanded(800, 6, 0.3, 2, rng);
    SchedConfig cfg;
    cfg.migrationDepth = migrated ? 1 : 0;
    if (migrated)
        return CrhcsScheduler(cfg).schedule(a);
    return PeAwareScheduler(cfg).schedule(a);
}

std::string
tempPath(const char *name)
{
    return ::testing::TempDir() + "chason_artifact_" + name + ".chsa";
}

/** Write @p schedule and return the path; asserts success. */
std::string
writeSample(const Schedule &schedule, const char *name,
            const ArtifactKey &key = {0x11, 0x22, 0x33})
{
    const std::string path = tempPath(name);
    ArtifactError error;
    EXPECT_TRUE(writeArtifactFile(schedule, key, path, &error))
        << error.detail;
    return path;
}

void
flipByte(const std::string &path, std::uint64_t offset)
{
    std::fstream f(path, std::ios::binary | std::ios::in | std::ios::out);
    ASSERT_TRUE(f.is_open());
    f.seekg(static_cast<std::streamoff>(offset));
    char byte = 0;
    f.read(&byte, 1);
    byte = static_cast<char>(byte ^ 0x5a);
    f.seekp(static_cast<std::streamoff>(offset));
    f.write(&byte, 1);
    ASSERT_TRUE(f.good());
}

void
expectEqualSchedules(const Schedule &a, const Schedule &b)
{
    ASSERT_EQ(a.phases.size(), b.phases.size());
    EXPECT_EQ(a.rows, b.rows);
    EXPECT_EQ(a.cols, b.cols);
    EXPECT_EQ(a.nnz, b.nnz);
    EXPECT_EQ(a.scheduler, b.scheduler);
    EXPECT_EQ(a.config.channels, b.config.channels);
    EXPECT_EQ(a.config.rawDistance, b.config.rawDistance);
    EXPECT_EQ(a.config.windowCols, b.config.windowCols);
    EXPECT_EQ(a.config.migrationDepth, b.config.migrationDepth);
    for (std::size_t ph = 0; ph < a.phases.size(); ++ph) {
        const WindowSchedule &pa = a.phases[ph];
        const WindowSchedule &pb = b.phases[ph];
        EXPECT_EQ(pa.pass, pb.pass);
        EXPECT_EQ(pa.window, pb.window);
        EXPECT_EQ(pa.alignedBeats, pb.alignedBeats);
        ASSERT_EQ(pa.channels.size(), pb.channels.size());
        for (std::size_t ch = 0; ch < pa.channels.size(); ++ch) {
            ASSERT_EQ(pa.channels[ch].length(),
                      pb.channels[ch].length());
            const std::size_t bytes =
                pa.channels[ch].length() * sizeof(Beat);
            if (bytes == 0)
                continue;
            // Beat is trivially copyable and the writer serializes the
            // raw representation, so bitwise equality is the contract.
            EXPECT_EQ(0, std::memcmp(&pa.channels[ch].beats[0],
                                     &pb.channels[ch].beats[0], bytes));
        }
    }
}

TEST(ArtifactHash, DeterministicAndSensitive)
{
    std::vector<std::uint8_t> buf(4096);
    for (std::size_t i = 0; i < buf.size(); ++i)
        buf[i] = static_cast<std::uint8_t>(i * 37 + 11);

    const std::uint64_t h = artifactHash(buf.data(), buf.size());
    EXPECT_EQ(h, artifactHash(buf.data(), buf.size()));

    buf[1000] ^= 1;
    EXPECT_NE(h, artifactHash(buf.data(), buf.size()));
    buf[1000] ^= 1;
    EXPECT_EQ(h, artifactHash(buf.data(), buf.size()));

    // Length is part of the digest: a prefix must not collide.
    EXPECT_NE(artifactHash(buf.data(), buf.size()),
              artifactHash(buf.data(), buf.size() - 1));
    // The empty string has a stable, non-degenerate digest.
    EXPECT_EQ(artifactHash(nullptr, 0), artifactHash(nullptr, 0));
}

TEST(ArtifactHash, ChunkBoundarySizes)
{
    // Sizes straddling the 4 MiB chunk fold: the digest must be
    // well-defined and distinct across one-byte differences in length.
    std::vector<std::uint8_t> buf(kArtifactChunkBytes + 64);
    Rng rng(7);
    for (std::size_t i = 0; i < buf.size(); ++i)
        buf[i] = static_cast<std::uint8_t>(rng.next());

    std::uint64_t last = 0;
    for (std::size_t n : {kArtifactChunkBytes - 1, kArtifactChunkBytes,
                          kArtifactChunkBytes + 1,
                          kArtifactChunkBytes + 64}) {
        const std::uint64_t h = artifactHash(buf.data(), n);
        EXPECT_NE(h, last);
        last = h;
    }
}

TEST(ArtifactFile, CanonicalFileName)
{
    EXPECT_EQ(artifactFileName({1, 2, 3}),
              "chsa-0000000000000001"
              "0000000000000002-0000000000000003.chsa");
    EXPECT_EQ(artifactFileName({0xdeadbeefcafef00dull, 0, 0xffull}),
              "chsa-deadbeefcafef00d"
              "0000000000000000-00000000000000ff.chsa");
}

TEST(ArtifactFile, RoundTripIsBitExactAndZeroCopy)
{
    for (const bool migrated : {false, true}) {
        const Schedule original = sampleSchedule(1, migrated);
        const ArtifactKey key{0xabc, 0xdef, 0x123};
        const std::string path = writeSample(
            original, migrated ? "rt_migrated" : "rt_plain", key);

        ArtifactError error;
        const ArtifactReader reader = ArtifactReader::open(path, &error);
        ASSERT_TRUE(reader.ok()) << error.detail;
        EXPECT_TRUE(reader.info().key == key);
        EXPECT_EQ(reader.info().scheduler, original.scheduler);
        EXPECT_EQ(reader.info().rows, original.rows);
        EXPECT_EQ(reader.info().nnz, original.nnz);
        ASSERT_TRUE(reader.payloadIntact(&error)) << error.detail;

        const Schedule loaded = reader.load();
        expectEqualSchedules(original, loaded);

        // Zero copy: every non-empty channel aliases the mapping.
        for (const WindowSchedule &phase : loaded.phases)
            for (const ChannelWindowSchedule &ch : phase.channels)
                if (ch.length() > 0)
                    EXPECT_TRUE(ch.beats.aliased());
        std::filesystem::remove(path);
    }
}

TEST(ArtifactFile, MappingOutlivesReader)
{
    const Schedule original = sampleSchedule(2, true);
    const std::string path = writeSample(original, "outlive");

    Schedule loaded;
    {
        ArtifactError error;
        const ArtifactReader reader = ArtifactReader::open(path, &error);
        ASSERT_TRUE(reader.ok()) << error.detail;
        ASSERT_TRUE(reader.payloadIntact(&error)) << error.detail;
        loaded = reader.load();
    } // reader destroyed; the shared mapping must keep the beats alive
    std::filesystem::remove(path); // and the unlinked file mapped

    expectEqualSchedules(original, loaded);
}

TEST(ArtifactFile, MutationDetachesFromMapping)
{
    const Schedule original = sampleSchedule(3, true);
    const std::string path = writeSample(original, "detach");

    ArtifactError error;
    const ArtifactReader reader = ArtifactReader::open(path, &error);
    ASSERT_TRUE(reader.ok()) << error.detail;
    ASSERT_TRUE(reader.payloadIntact(&error)) << error.detail;
    Schedule loaded = reader.load();

    WindowSchedule *phase = nullptr;
    for (WindowSchedule &p : loaded.phases)
        for (ChannelWindowSchedule &ch : p.channels)
            if (ch.length() > 0 && phase == nullptr)
                phase = &p;
    ASSERT_NE(phase, nullptr);
    for (ChannelWindowSchedule &ch : phase->channels) {
        if (ch.length() == 0)
            continue;
        ASSERT_TRUE(ch.beats.aliased());
        ch.beats[0].slots[0].valid = false; // non-const access detaches
        EXPECT_FALSE(ch.beats.aliased());
        break;
    }

    // A second load still sees the pristine bytes.
    const Schedule again = reader.load();
    expectEqualSchedules(original, again);
    std::filesystem::remove(path);
}

TEST(ArtifactFile, PayloadVerdictIndependentOfJobCount)
{
    const Schedule original = sampleSchedule(4, true);
    const std::string path = writeSample(original, "jobs");

    for (const unsigned jobs : {1u, 2u, 7u}) {
        ArtifactError error;
        const ArtifactReader reader = ArtifactReader::open(path, &error);
        ASSERT_TRUE(reader.ok()) << error.detail;
        EXPECT_TRUE(reader.payloadIntact(&error, jobs)) << error.detail;
    }
    std::filesystem::remove(path);
}

TEST(ArtifactReject, NotAnArtifact)
{
    const std::string path = tempPath("junk");
    {
        std::ofstream f(path, std::ios::binary);
        std::vector<char> junk(256, 'x');
        f.write(junk.data(),
                static_cast<std::streamsize>(junk.size()));
    }
    ArtifactError error;
    EXPECT_FALSE(ArtifactReader::open(path, &error).ok());
    EXPECT_EQ(error.status, ArtifactStatus::kBadMagic);
    std::filesystem::remove(path);
}

TEST(ArtifactReject, MissingFileIsIoError)
{
    ArtifactError error;
    EXPECT_FALSE(
        ArtifactReader::open(tempPath("never_written"), &error).ok());
    EXPECT_EQ(error.status, ArtifactStatus::kIoError);
}

TEST(ArtifactReject, WrongVersion)
{
    const Schedule original = sampleSchedule(5, false);
    const std::string path = writeSample(original, "version");
    flipByte(path, 8); // ArtifactHeader::version (checked before digest)
    ArtifactError error;
    EXPECT_FALSE(ArtifactReader::open(path, &error).ok());
    EXPECT_EQ(error.status, ArtifactStatus::kBadVersion);
    std::filesystem::remove(path);
}

TEST(ArtifactReject, Truncation)
{
    const Schedule original = sampleSchedule(6, false);
    const std::string path = writeSample(original, "trunc");
    const std::uint64_t size = std::filesystem::file_size(path);
    std::filesystem::resize_file(path, size - 1);

    ArtifactError error;
    EXPECT_FALSE(ArtifactReader::open(path, &error).ok());
    EXPECT_EQ(error.status, ArtifactStatus::kTruncated);

    std::filesystem::resize_file(path, 32); // shorter than the header
    EXPECT_FALSE(ArtifactReader::open(path, &error).ok());
    EXPECT_EQ(error.status, ArtifactStatus::kTruncated);
    std::filesystem::remove(path);
}

TEST(ArtifactReject, TrailingGarbage)
{
    const Schedule original = sampleSchedule(7, false);
    const std::string path = writeSample(original, "trailing");
    {
        std::ofstream f(path, std::ios::binary | std::ios::app);
        f.put('!');
    }
    ArtifactError error;
    EXPECT_FALSE(ArtifactReader::open(path, &error).ok());
    EXPECT_EQ(error.status, ArtifactStatus::kBadStructure);
    std::filesystem::remove(path);
}

TEST(ArtifactReject, TamperedHeaderField)
{
    const Schedule original = sampleSchedule(8, false);
    const std::string path = writeSample(original, "header");
    flipByte(path, 24); // keyLo: covered only by the header digest
    ArtifactError error;
    EXPECT_FALSE(ArtifactReader::open(path, &error).ok());
    EXPECT_EQ(error.status, ArtifactStatus::kBadChecksum);
    std::filesystem::remove(path);
}

TEST(ArtifactReject, TamperedMeta)
{
    const Schedule original = sampleSchedule(9, false);
    const std::string path = writeSample(original, "meta");
    // Scheduler name bytes, deep inside the meta section.
    flipByte(path, sizeof(ArtifactHeader) +
                       3 * sizeof(ArtifactSectionEntry) + 60);
    ArtifactError error;
    EXPECT_FALSE(ArtifactReader::open(path, &error).ok());
    EXPECT_EQ(error.status, ArtifactStatus::kBadChecksum);
    std::filesystem::remove(path);
}

TEST(ArtifactReject, TamperedPayloadCaughtByDeepCheck)
{
    const Schedule original = sampleSchedule(10, true);
    const std::string path = writeSample(original, "payload");
    const std::uint64_t size = std::filesystem::file_size(path);
    flipByte(path, size - 17); // inside the beat payload

    ArtifactError error;
    const ArtifactReader reader = ArtifactReader::open(path, &error);
    // Header and section tables are intact: open() succeeds...
    ASSERT_TRUE(reader.ok()) << error.detail;
    // ...and the payload digest is what catches it, on any job count.
    EXPECT_FALSE(reader.payloadIntact(&error, 3));
    EXPECT_EQ(error.status, ArtifactStatus::kBadChecksum);
    // The verdict is cached: asking again must not flip it.
    EXPECT_FALSE(reader.payloadIntact(&error, 1));
    std::filesystem::remove(path);
}

TEST(ArtifactReject, StatusNamesAreStable)
{
    EXPECT_STREQ(artifactStatusName(ArtifactStatus::kOk), "ok");
    EXPECT_STREQ(artifactStatusName(ArtifactStatus::kIoError),
                 "io-error");
    EXPECT_STREQ(artifactStatusName(ArtifactStatus::kBadMagic),
                 "bad-magic");
    EXPECT_STREQ(artifactStatusName(ArtifactStatus::kBadVersion),
                 "bad-version");
    EXPECT_STREQ(artifactStatusName(ArtifactStatus::kTruncated),
                 "truncated");
    EXPECT_STREQ(artifactStatusName(ArtifactStatus::kBadStructure),
                 "bad-structure");
    EXPECT_STREQ(artifactStatusName(ArtifactStatus::kBadChecksum),
                 "bad-checksum");
}

} // namespace
} // namespace sched
} // namespace chason
