/**
 * @file
 * Unit tests for the PE-aware (Serpens) scheduler (Fig. 2b).
 */

#include "sched/pe_aware.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "sched/analyzer.h"
#include "sched/row_based.h"
#include "sparse/generators.h"

namespace chason {
namespace sched {
namespace {

SchedConfig
smallConfig()
{
    SchedConfig cfg;
    cfg.channels = 2;
    cfg.pesOverride = 4;
    cfg.rawDistance = 4;
    cfg.windowCols = 256;
    cfg.rowsPerLanePerPass = 256;
    cfg.migrationDepth = 0;
    return cfg;
}

TEST(PeAware, Name)
{
    EXPECT_EQ(PeAwareScheduler(smallConfig()).name(), "pe-aware");
}

TEST(PeAware, InterleavesRowsToHideLatency)
{
    // Two rows on the same lane, both with 4 elements: round-robin
    // interleaving needs no stalls once rawDistance <= row count * 1.
    SchedConfig cfg = smallConfig();
    cfg.rawDistance = 2;
    sparse::CooMatrix coo(16, 16);
    for (std::uint32_t c = 0; c < 4; ++c) {
        coo.add(0, c, 1.0f);  // lane (0,0)
        coo.add(8, c, 2.0f);  // lane (0,0) as well (8 % 8)
    }
    const sparse::CsrMatrix a = coo.toCsr();
    const Schedule sch = PeAwareScheduler(cfg).schedule(a);
    // 8 elements on one lane, perfectly interleaved: exactly 8 beats.
    EXPECT_EQ(sch.phases[0].channels[0].length(), 8u);
    validateSchedule(sch, a);
}

TEST(PeAware, InsertsExplicitStallsWhenRowsExhaust)
{
    // One row with 3 elements on a lane: the tail serializes.
    SchedConfig cfg = smallConfig();
    sparse::CooMatrix coo(8, 16);
    coo.add(0, 0, 1.0f);
    coo.add(0, 1, 2.0f);
    coo.add(0, 2, 3.0f);
    const sparse::CsrMatrix a = coo.toCsr();
    const Schedule sch = PeAwareScheduler(cfg).schedule(a);
    // Elements at beats 0, 4, 8 -> 9 beats, 6 stall beats on the lane.
    EXPECT_EQ(sch.phases[0].channels[0].length(), 9u);
    const ScheduleStats stats = analyze(sch);
    EXPECT_EQ(stats.nnz, 3u);
    EXPECT_GT(stats.stalls, 0u);
    validateSchedule(sch, a);
}

TEST(PeAware, NeverBeatsRawDistanceOnARow)
{
    SchedConfig cfg = smallConfig();
    Rng rng(3);
    const sparse::CsrMatrix a =
        sparse::zipfRows(64, 200, 1500, 1.3, rng);
    const Schedule sch = PeAwareScheduler(cfg).schedule(a);
    validateSchedule(sch, a); // includes the RAW check on every bank
}

TEST(PeAware, CoversEveryNonZeroExactlyOnce)
{
    SchedConfig cfg = smallConfig();
    Rng rng(4);
    const sparse::CsrMatrix a = sparse::erdosRenyi(100, 500, 3000, rng);
    const Schedule sch = PeAwareScheduler(cfg).schedule(a);
    const ScheduleStats stats = analyze(sch);
    EXPECT_EQ(stats.nnz, a.nnz());
    validateSchedule(sch, a);
}

TEST(PeAware, NoWorseThanRowBased)
{
    SchedConfig cfg = smallConfig();
    Rng rng(5);
    const sparse::CsrMatrix a = sparse::banded(128, 6, 0.5, rng);
    const Schedule pe = PeAwareScheduler(cfg).schedule(a);
    const Schedule row = RowBasedScheduler(cfg).schedule(a);
    EXPECT_LE(analyze(pe).underutilizationPercent,
              analyze(row).underutilizationPercent);
    EXPECT_LE(pe.totalAlignedBeats(), row.totalAlignedBeats());
}

TEST(PeAware, ChannelsAlignedToLongest)
{
    SchedConfig cfg = smallConfig();
    // Put all the work on channel 0 (rows with lane < 4).
    sparse::CooMatrix coo(8, 64);
    for (std::uint32_t c = 0; c < 32; ++c)
        coo.add(0, c, 1.0f);
    coo.add(4, 0, 1.0f); // channel 1 has a single element
    const sparse::CsrMatrix a = coo.toCsr();
    const Schedule sch = PeAwareScheduler(cfg).schedule(a);
    const WindowSchedule &ws = sch.phases[0];
    EXPECT_GT(ws.channels[0].length(), ws.channels[1].length());
    EXPECT_EQ(ws.alignedBeats, ws.channels[0].length());
    // Eq. 4 counts channel 1's padding as stalls.
    const ScheduleStats stats = analyze(sch);
    EXPECT_GT(stats.perPegUnderutilization[1],
              stats.perPegUnderutilization[0]);
}

TEST(PeAware, PurePaddingDominatedByLongRow)
{
    // A single dense row makes its lane serialize at rawDistance; this
    // is the Section 2.2 pathology CrHCS later fixes.
    SchedConfig cfg = smallConfig();
    sparse::CooMatrix coo(8, 256);
    for (std::uint32_t c = 0; c < 64; ++c)
        coo.add(0, c, 1.0f);
    const sparse::CsrMatrix a = coo.toCsr();
    const Schedule sch = PeAwareScheduler(cfg).schedule(a);
    // 64 elements, 4 apart: 253 beats.
    EXPECT_EQ(sch.phases[0].alignedBeats,
              63u * cfg.rawDistance + 1u);
    EXPECT_GT(analyze(sch).underutilizationPercent, 90.0);
}

TEST(PeAware, WindowingSplitsLongRows)
{
    SchedConfig cfg = smallConfig();
    cfg.windowCols = 32;
    sparse::CooMatrix coo(8, 256);
    for (std::uint32_t c = 0; c < 64; ++c)
        coo.add(0, c, 1.0f);
    const sparse::CsrMatrix a = coo.toCsr();
    const Schedule sch = PeAwareScheduler(cfg).schedule(a);
    EXPECT_EQ(sch.phases.size(), 2u); // 64 columns over 32-wide windows
    validateSchedule(sch, a);
}

} // namespace
} // namespace sched
} // namespace chason
