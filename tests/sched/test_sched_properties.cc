/**
 * @file
 * Property-based tests: scheduler invariants over a randomized sweep of
 * matrix families and configurations (parameterized gtest).
 */

#include <gtest/gtest.h>

#include "common/rng.h"
#include "sched/analyzer.h"
#include "sched/crhcs.h"
#include "sched/pe_aware.h"
#include "sched/row_based.h"
#include "sparse/generators.h"

namespace chason {
namespace sched {
namespace {

struct PropertyCase
{
    std::string name;
    unsigned channels;
    unsigned pes;
    unsigned raw_distance;
    std::uint32_t window_cols;
    std::uint64_t seed;
    std::function<sparse::CsrMatrix(Rng &)> make;
};

std::vector<PropertyCase>
cases()
{
    std::vector<PropertyCase> out;
    auto add = [&out](std::string name, unsigned ch, unsigned pes,
                      unsigned d, std::uint32_t w, std::uint64_t seed,
                      std::function<sparse::CsrMatrix(Rng &)> make) {
        out.push_back({std::move(name), ch, pes, d, w, seed,
                       std::move(make)});
    };

    add("er_small", 4, 4, 4, 128, 1, [](Rng &rng) {
        return sparse::erdosRenyi(100, 300, 1500, rng);
    });
    add("er_paper_geometry", 16, 8, 10, 8192, 2, [](Rng &rng) {
        return sparse::erdosRenyi(2000, 2000, 20000, rng);
    });
    add("zipf_mild", 8, 4, 6, 512, 3, [](Rng &rng) {
        return sparse::zipfRows(512, 1024, 8000, 1.2, rng);
    });
    add("zipf_heavy", 8, 4, 6, 512, 4, [](Rng &rng) {
        return sparse::zipfRows(512, 1024, 8000, 1.7, rng);
    });
    add("banded", 4, 8, 10, 256, 5, [](Rng &rng) {
        return sparse::banded(700, 12, 0.4, rng);
    });
    add("arrow", 8, 8, 10, 2048, 6, [](Rng &rng) {
        return sparse::arrowBanded(1024, 8, 0.3, 3, rng);
    });
    add("rmat", 16, 8, 10, 1024, 7, [](Rng &rng) {
        return sparse::rmat(10, 12000, rng);
    });
    add("pa_graph", 16, 8, 10, 4096, 8, [](Rng &rng) {
        return sparse::preferentialAttachment(3000, 6, rng);
    });
    add("poisson", 4, 4, 10, 512, 9, [](Rng &) {
        return sparse::poisson2d(40);
    });
    add("block_diag", 8, 8, 8, 1024, 10, [](Rng &rng) {
        return sparse::blockDiagonal(900, 30, 0.5, 0.05, rng);
    });
    add("tall_multi_pass", 4, 2, 3, 64, 11, [](Rng &rng) {
        return sparse::erdosRenyi(4000, 100, 9000, rng);
    });
    add("wide_multi_window", 4, 4, 5, 128, 12, [](Rng &rng) {
        return sparse::erdosRenyi(200, 3000, 9000, rng);
    });
    add("fp64_mode", 8, 5, 10, 1024, 13, [](Rng &rng) {
        return sparse::erdosRenyi(800, 800, 8000, rng);
    });
    add("single_dense_row", 4, 4, 8, 1024, 14, [](Rng &rng) {
        sparse::CooMatrix coo(64, 1024);
        for (std::uint32_t c = 0; c < 300; ++c)
            coo.add(5, c, rng.nextFloat(0.1f, 1.0f));
        for (std::uint32_t r = 0; r < 64; ++r)
            coo.add(r, r, 1.0f);
        return coo.toCsr();
    });
    add("empty_rows", 4, 4, 6, 256, 15, [](Rng &rng) {
        sparse::CooMatrix coo(256, 256);
        for (std::uint32_t r = 0; r < 256; r += 16) {
            for (unsigned k = 0; k < 5; ++k) {
                coo.add(r, static_cast<std::uint32_t>(
                               rng.nextBounded(256)),
                        1.0f);
            }
        }
        return coo.toCsr();
    });
    return out;
}

class SchedulerProperties
    : public ::testing::TestWithParam<PropertyCase>
{
  protected:
    SchedConfig
    makeConfig(unsigned migration_depth) const
    {
        const PropertyCase &pc = GetParam();
        SchedConfig cfg;
        cfg.channels = pc.channels;
        cfg.pesOverride = pc.pes;
        cfg.rawDistance = pc.raw_distance;
        cfg.windowCols = pc.window_cols;
        cfg.rowsPerLanePerPass = 4096;
        cfg.migrationDepth = migration_depth;
        return cfg;
    }

    sparse::CsrMatrix
    makeMatrix() const
    {
        Rng rng(GetParam().seed);
        return GetParam().make(rng);
    }
};

TEST_P(SchedulerProperties, PeAwareIsStructurallyValid)
{
    const sparse::CsrMatrix a = makeMatrix();
    const Schedule sch = PeAwareScheduler(makeConfig(0)).schedule(a);
    validateSchedule(sch, a);
    EXPECT_EQ(analyze(sch).nnz, a.nnz());
}

TEST_P(SchedulerProperties, CrhcsIsStructurallyValid)
{
    const sparse::CsrMatrix a = makeMatrix();
    const Schedule sch = CrhcsScheduler(makeConfig(1)).schedule(a);
    validateSchedule(sch, a);
    EXPECT_EQ(analyze(sch).nnz, a.nnz());
}

TEST_P(SchedulerProperties, RowBasedIsStructurallyValid)
{
    const sparse::CsrMatrix a = makeMatrix();
    const Schedule sch = RowBasedScheduler(makeConfig(0)).schedule(a);
    validateSchedule(sch, a);
}

TEST_P(SchedulerProperties, CrhcsNeverWorseThanPeAware)
{
    const sparse::CsrMatrix a = makeMatrix();
    const Schedule pe = PeAwareScheduler(makeConfig(0)).schedule(a);
    const Schedule cr = CrhcsScheduler(makeConfig(1)).schedule(a);
    EXPECT_LE(cr.totalAlignedBeats(), pe.totalAlignedBeats());
    EXPECT_LE(analyze(cr).underutilizationPercent,
              analyze(pe).underutilizationPercent + 1e-9);
}

TEST_P(SchedulerProperties, PeAwareNeverWorseThanRowBased)
{
    const sparse::CsrMatrix a = makeMatrix();
    const Schedule row = RowBasedScheduler(makeConfig(0)).schedule(a);
    const Schedule pe = PeAwareScheduler(makeConfig(0)).schedule(a);
    EXPECT_LE(pe.totalAlignedBeats(), row.totalAlignedBeats());
}

TEST_P(SchedulerProperties, EveryMigrationDepthBoundedByPeAware)
{
    const PropertyCase &pc = GetParam();
    if (pc.channels < 4)
        GTEST_SKIP() << "needs at least 4 channels for depth sweep";
    const sparse::CsrMatrix a = makeMatrix();
    const std::size_t pe_beats = PeAwareScheduler(makeConfig(0))
                                     .schedule(a)
                                     .totalAlignedBeats();
    for (unsigned depth : {1u, 2u, 3u}) {
        const Schedule sch = CrhcsScheduler(makeConfig(depth)).schedule(a);
        validateSchedule(sch, a);
        EXPECT_LE(sch.totalAlignedBeats(), pe_beats)
            << "depth " << depth;
    }
}

TEST_P(SchedulerProperties, SchedulingIsDeterministic)
{
    const sparse::CsrMatrix a = makeMatrix();
    const Schedule s1 = CrhcsScheduler(makeConfig(1)).schedule(a);
    const Schedule s2 = CrhcsScheduler(makeConfig(1)).schedule(a);
    ASSERT_EQ(s1.phases.size(), s2.phases.size());
    EXPECT_EQ(s1.totalAlignedBeats(), s2.totalAlignedBeats());
    EXPECT_EQ(analyze(s1).stalls, analyze(s2).stalls);
}

INSTANTIATE_TEST_SUITE_P(
    Families, SchedulerProperties, ::testing::ValuesIn(cases()),
    [](const auto &info) { return info.param.name; });

} // namespace
} // namespace sched
} // namespace chason
