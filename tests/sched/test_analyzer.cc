/**
 * @file
 * Unit tests for the schedule analyzer (Eq. 4 and traffic accounting).
 */

#include "sched/analyzer.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "sched/pe_aware.h"
#include "sparse/generators.h"

namespace chason {
namespace sched {
namespace {

SchedConfig
cfg2x2()
{
    SchedConfig cfg;
    cfg.channels = 2;
    cfg.pesOverride = 2;
    cfg.rawDistance = 2;
    cfg.windowCols = 64;
    cfg.rowsPerLanePerPass = 64;
    cfg.migrationDepth = 0;
    return cfg;
}

/** Hand-build a schedule: ch0 has 3 valid slots in 2 beats, ch1 empty. */
Schedule
handSchedule()
{
    SchedConfig cfg = cfg2x2();
    Schedule sch;
    sch.config = cfg;
    sch.scheduler = "hand";
    sch.rows = 4;
    sch.cols = 4;
    sch.nnz = 3;

    WindowSchedule ws;
    ws.channels.resize(2);
    ws.channels[0].beats.resize(2);
    auto set = [](Slot &slot, std::uint32_t row, std::uint32_t col) {
        slot.valid = true;
        slot.row = row;
        slot.col = col;
        slot.value = 1.0f;
        slot.pvt = true;
    };
    set(ws.channels[0].beats[0].slots[0], 0, 0);
    set(ws.channels[0].beats[0].slots[1], 1, 0);
    set(ws.channels[0].beats[1].slots[0], 0, 2);
    ws.channels[0].beats[1].slots[0].peSrc = 0;
    ws.channels[0].beats[0].slots[1].peSrc = 1;
    ws.realign();
    sch.phases.push_back(ws);
    return sch;
}

TEST(Analyze, Equation4)
{
    const ScheduleStats stats = analyze(handSchedule());
    // 2 aligned beats x 2 channels x 2 PEs = 8 slots, 3 valid.
    EXPECT_EQ(stats.totalSlots, 8u);
    EXPECT_EQ(stats.nnz, 3u);
    EXPECT_EQ(stats.stalls, 5u);
    EXPECT_NEAR(stats.underutilizationPercent, 100.0 * 5 / 8, 1e-9);
}

TEST(Analyze, PerPegBreakdown)
{
    const ScheduleStats stats = analyze(handSchedule());
    ASSERT_EQ(stats.perPegUnderutilization.size(), 2u);
    EXPECT_NEAR(stats.perPegUnderutilization[0], 25.0, 1e-9);
    EXPECT_NEAR(stats.perPegUnderutilization[1], 100.0, 1e-9);
    EXPECT_NEAR(stats.meanPegUnderutilization(), 62.5, 1e-9);
    EXPECT_NEAR(stats.pegUnderutilizationSpread(), 75.0, 1e-9);
}

TEST(Analyze, TrafficCounts)
{
    const ScheduleStats stats = analyze(handSchedule());
    EXPECT_EQ(stats.streamBeatsPerChannel, 2u);
    EXPECT_EQ(stats.matrixBeats, 4u); // 2 beats x 2 channels
    EXPECT_EQ(stats.matrixBytes, 4u * 64);
    EXPECT_EQ(stats.phases, 1u);
}

TEST(Analyze, EmptySchedule)
{
    Schedule sch;
    sch.config = cfg2x2();
    const ScheduleStats stats = analyze(sch);
    EXPECT_EQ(stats.totalSlots, 0u);
    EXPECT_EQ(stats.underutilizationPercent, 0.0);
}

TEST(Validate, AcceptsRealSchedules)
{
    SchedConfig cfg = cfg2x2();
    Rng rng(1);
    const sparse::CsrMatrix a = sparse::erdosRenyi(30, 60, 300, rng);
    const Schedule sch = PeAwareScheduler(cfg).schedule(a);
    validateSchedule(sch, a);
    SUCCEED();
}

TEST(ValidateDeath, CatchesMissingElements)
{
    SchedConfig cfg = cfg2x2();
    sparse::CooMatrix coo(4, 4);
    coo.add(0, 0, 1.0f);
    coo.add(0, 2, 1.0f);
    const sparse::CsrMatrix a = coo.toCsr();
    Schedule sch = PeAwareScheduler(cfg).schedule(a);
    // Drop one element.
    sch.phases[0].channels[0].beats.back().slots[0].valid = false;
    EXPECT_DEATH(validateSchedule(sch, a), "covers");
}

TEST(ValidateDeath, CatchesWrongLane)
{
    SchedConfig cfg = cfg2x2();
    sparse::CooMatrix coo(4, 4);
    coo.add(0, 0, 1.0f);
    const sparse::CsrMatrix a = coo.toCsr();
    Schedule sch = PeAwareScheduler(cfg).schedule(a);
    // Claim the element belongs to another PE.
    sch.phases[0].channels[0].beats[0].slots[0].peSrc = 1;
    EXPECT_DEATH(validateSchedule(sch, a), "lane");
}

TEST(ValidateDeath, CatchesRawViolation)
{
    SchedConfig cfg = cfg2x2();
    sparse::CooMatrix coo(4, 4);
    coo.add(0, 0, 1.0f);
    coo.add(0, 1, 2.0f);
    const sparse::CsrMatrix a = coo.toCsr();
    Schedule sch = PeAwareScheduler(cfg).schedule(a);
    // Squeeze the second element right after the first (distance 1 < 2).
    ASSERT_GE(sch.phases[0].channels[0].beats.size(), 3u);
    Slot moved = sch.phases[0].channels[0].beats[2].slots[0];
    ASSERT_TRUE(moved.valid);
    sch.phases[0].channels[0].beats[2].slots[0] = Slot();
    sch.phases[0].channels[0].beats[1].slots[0] = moved;
    EXPECT_DEATH(validateSchedule(sch, a), "RAW");
}

TEST(ValidateDeath, CatchesValueTampering)
{
    SchedConfig cfg = cfg2x2();
    sparse::CooMatrix coo(4, 4);
    coo.add(1, 1, 5.0f);
    const sparse::CsrMatrix a = coo.toCsr();
    Schedule sch = PeAwareScheduler(cfg).schedule(a);
    sch.phases[0].channels[0].beats[0].slots[1].value = 6.0f;
    EXPECT_DEATH(validateSchedule(sch, a), "value mismatch");
}

} // namespace
} // namespace sched
} // namespace chason
