/**
 * @file
 * Unit tests for CrHCS (Section 3).
 */

#include "sched/crhcs.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "sched/analyzer.h"
#include "sched/pe_aware.h"
#include "sparse/generators.h"

namespace chason {
namespace sched {
namespace {

SchedConfig
smallConfig(unsigned depth = 1)
{
    SchedConfig cfg;
    cfg.channels = 4;
    cfg.pesOverride = 4;
    cfg.rawDistance = 4;
    cfg.windowCols = 512;
    cfg.rowsPerLanePerPass = 512;
    cfg.migrationDepth = depth;
    return cfg;
}

TEST(Crhcs, Name)
{
    EXPECT_EQ(CrhcsScheduler(smallConfig()).name(), "crhcs");
}

TEST(Crhcs, FillsStallsWithNeighbourWork)
{
    // Channel 0: one long row (serializes). Channel 1: plenty of
    // independent single-element rows that can migrate into the stalls.
    SchedConfig cfg = smallConfig();
    sparse::CooMatrix coo(64, 512);
    for (std::uint32_t c = 0; c < 16; ++c)
        coo.add(0, c, 1.0f); // lane (0,0), serialized tail
    for (std::uint32_t i = 0; i < 12; ++i) {
        const std::uint32_t row = 4 + (i % 4) * 16; // lanes of channel 1
        coo.add(row, 100 + i, 2.0f);
    }
    const sparse::CsrMatrix a = coo.toCsr();

    const Schedule pe = PeAwareScheduler(cfg).schedule(a);
    const Schedule cr = CrhcsScheduler(cfg).schedule(a);
    validateSchedule(cr, a);

    const ScheduleStats pe_stats = analyze(pe);
    const ScheduleStats cr_stats = analyze(cr);
    EXPECT_LT(cr_stats.underutilizationPercent,
              pe_stats.underutilizationPercent);
    // Migrated slots exist and are tagged.
    std::size_t migrated = 0;
    for (const auto &phase : cr.phases) {
        for (unsigned ch = 0; ch < cfg.channels; ++ch) {
            for (const Beat &beat : phase.channels[ch].beats) {
                for (unsigned p = 0; p < cfg.pesPerGroup(); ++p) {
                    const Slot &slot = beat.slots[p];
                    if (slot.valid && !slot.pvt) {
                        ++migrated;
                        EXPECT_EQ(slot.chSrc, (ch + 1) % cfg.channels);
                    }
                }
            }
        }
    }
    EXPECT_GT(migrated, 0u);
}

TEST(Crhcs, MigratedElementsRespectRawDistanceInDestination)
{
    // A dense row on channel 1 migrates into channel 0; two of its
    // elements on the same destination PE must be >= rawDistance apart.
    SchedConfig cfg = smallConfig();
    sparse::CooMatrix coo(64, 512);
    for (std::uint32_t c = 0; c < 40; ++c)
        coo.add(4, c, 1.0f); // lane (1,0): long row
    for (std::uint32_t c = 0; c < 6; ++c)
        coo.add(0, 200 + c, 2.0f); // channel 0 gets some own work
    const sparse::CsrMatrix a = coo.toCsr();
    const Schedule cr = CrhcsScheduler(cfg).schedule(a);
    validateSchedule(cr, a); // asserts the per-bank RAW distance
}

TEST(Crhcs, SpreadsLongRowOverNeighbourBanks)
{
    // The serialized tail of a dense row should finish ~ (pes+1)x faster
    // with migration: pes shared banks + the private one.
    SchedConfig cfg = smallConfig();
    sparse::CooMatrix coo(64, 512);
    for (std::uint32_t c = 0; c < 128; ++c)
        coo.add(4, c, 1.0f); // channel 1, lane (1,0)
    const sparse::CsrMatrix a = coo.toCsr();

    const Schedule pe = PeAwareScheduler(cfg).schedule(a);
    const Schedule cr = CrhcsScheduler(cfg).schedule(a);
    validateSchedule(cr, a);
    // PE-aware: 127*4+1 = 509 beats. CrHCS: close to 1/(pes+1) of that.
    EXPECT_EQ(pe.totalAlignedBeats(), 509u);
    EXPECT_LT(cr.totalAlignedBeats(), 509u / 3);
}

TEST(Crhcs, DepthZeroIsPeAware)
{
    SchedConfig cfg = smallConfig(0);
    Rng rng(7);
    const sparse::CsrMatrix a = sparse::erdosRenyi(100, 400, 2000, rng);
    const Schedule cr = CrhcsScheduler(cfg).schedule(a);
    const Schedule pe = PeAwareScheduler(cfg).schedule(a);
    EXPECT_EQ(analyze(cr).stalls, analyze(pe).stalls);
    EXPECT_EQ(cr.totalAlignedBeats(), pe.totalAlignedBeats());
}

TEST(Crhcs, DeeperMigrationHelpsImbalance)
{
    // All work on channel 0: depth 1 can only export to one channel
    // (and the wrap pass), deeper migration spreads further.
    sparse::CooMatrix coo(64, 512);
    for (std::uint32_t c = 0; c < 200; ++c)
        coo.add(0, c, 1.0f);
    const sparse::CsrMatrix a = coo.toCsr();

    const Schedule d1 = CrhcsScheduler(smallConfig(1)).schedule(a);
    const Schedule d3 = CrhcsScheduler(smallConfig(3)).schedule(a);
    validateSchedule(d1, a);
    validateSchedule(d3, a);
    EXPECT_LE(analyze(d3).underutilizationPercent,
              analyze(d1).underutilizationPercent);
}

TEST(Crhcs, OnlyPrivateElementsMigrate)
{
    // An element must not migrate twice: every migrated slot's source
    // must be the immediate donor channel, never two hops away (at
    // depth 1).
    SchedConfig cfg = smallConfig();
    Rng rng(11);
    const sparse::CsrMatrix a = sparse::zipfRows(64, 512, 3000, 1.3, rng);
    const Schedule cr = CrhcsScheduler(cfg).schedule(a);
    for (const auto &phase : cr.phases) {
        for (unsigned ch = 0; ch < cfg.channels; ++ch) {
            for (const Beat &beat : phase.channels[ch].beats) {
                for (unsigned p = 0; p < cfg.pesPerGroup(); ++p) {
                    const Slot &slot = beat.slots[p];
                    if (slot.valid && !slot.pvt) {
                        EXPECT_EQ(slot.chSrc, (ch + 1) % cfg.channels);
                    }
                }
            }
        }
    }
}

TEST(Crhcs, NeverIncreasesTotalBeats)
{
    SchedConfig cfg = smallConfig();
    Rng rng(13);
    for (int trial = 0; trial < 5; ++trial) {
        const sparse::CsrMatrix a =
            sparse::zipfRows(128, 512, 4000 + 500 * trial,
                             1.1 + 0.15 * trial, rng);
        const Schedule pe = PeAwareScheduler(cfg).schedule(a);
        const Schedule cr = CrhcsScheduler(cfg).schedule(a);
        EXPECT_LE(cr.totalAlignedBeats(), pe.totalAlignedBeats())
            << a.describe();
        validateSchedule(cr, a);
    }
}

TEST(Crhcs, SequentialStrategyIsValidButNotBetter)
{
    // The sequential-greedy ablation must still produce structurally
    // valid schedules; the default beat-synchronous sweep should never
    // produce more beats.
    SchedConfig cfg = smallConfig();
    Rng rng(21);
    const sparse::CsrMatrix a =
        sparse::zipfRows(128, 512, 5000, 1.2, rng);
    const Schedule seq =
        CrhcsScheduler(cfg, MigrationStrategy::SequentialGreedy)
            .schedule(a);
    const Schedule sync = CrhcsScheduler(cfg).schedule(a);
    validateSchedule(seq, a);
    validateSchedule(sync, a);
    EXPECT_LE(sync.totalAlignedBeats(), seq.totalAlignedBeats());
    EXPECT_EQ(seq.scheduler, "crhcs-sequential");
    EXPECT_EQ(sync.scheduler, "crhcs");
}

TEST(Crhcs, SynchronousNeverLosesWhenAllChannelsAreHeavy)
{
    // One serialized row per channel: a naive sequential pass would let
    // channel 0 absorb channel 1's tail and become the bottleneck; with
    // the bottleneck guard both strategies balance, and the synchronous
    // sweep must never be the worse of the two.
    SchedConfig cfg = smallConfig();
    sparse::CooMatrix coo(64, 512);
    Rng rng(22);
    for (unsigned ch = 0; ch < 4; ++ch) {
        const std::uint32_t row = ch * 4; // lane (ch, 0)
        for (std::uint32_t c = 0; c < 80; ++c)
            coo.add(row, c, rng.nextFloat(0.1f, 1.0f));
    }
    const sparse::CsrMatrix a = coo.toCsr();
    const Schedule seq =
        CrhcsScheduler(cfg, MigrationStrategy::SequentialGreedy)
            .schedule(a);
    const Schedule sync = CrhcsScheduler(cfg).schedule(a);
    validateSchedule(seq, a);
    validateSchedule(sync, a);
    EXPECT_LE(sync.totalAlignedBeats(), seq.totalAlignedBeats());
}

TEST(Crhcs, MigratePhaseIsExposedForExploration)
{
    SchedConfig cfg = smallConfig();
    sparse::CooMatrix coo(64, 512);
    for (std::uint32_t c = 0; c < 24; ++c)
        coo.add(4, c, 1.0f);
    const sparse::CsrMatrix a = coo.toCsr();
    const auto work = buildPhaseWork(a, cfg);
    ASSERT_EQ(work.size(), 1u);
    WindowSchedule phase = PeAwareScheduler::schedulePhase(work[0], cfg);
    phase.realign();
    const std::size_t before = phase.alignedBeats;
    CrhcsScheduler::migratePhase(phase, cfg);
    EXPECT_LE(phase.alignedBeats, before);
}

} // namespace
} // namespace sched
} // namespace chason
