/**
 * @file
 * Mutation testing of the schedule validator: every class of corruption
 * a buggy scheduler (or a bit flip in the artifact path) could
 * introduce must be caught by validateSchedule. This is the safety net
 * under all the scheduler properties — if the validator were blind to a
 * defect class, the green property suite would prove nothing about it.
 */

#include <gtest/gtest.h>

#include "common/rng.h"
#include "sched/analyzer.h"
#include "sched/crhcs.h"
#include "sparse/generators.h"

namespace chason {
namespace sched {
namespace {

SchedConfig
cfg()
{
    SchedConfig c;
    c.channels = 4;
    c.pesOverride = 4;
    c.rawDistance = 4;
    c.windowCols = 256;
    c.rowsPerLanePerPass = 64;
    c.migrationDepth = 1;
    return c;
}

struct Prepared
{
    sparse::CsrMatrix a;
    Schedule sch;
};

Prepared
prepare(std::uint64_t seed)
{
    Rng rng(seed);
    Prepared p;
    p.a = sparse::zipfRows(96, 512, 3000, 1.25, rng);
    p.sch = CrhcsScheduler(cfg()).schedule(p.a);
    return p;
}

/** Collect the (phase, channel, beat, pe) of every valid slot. */
std::vector<std::array<std::size_t, 4>>
validSlots(const Schedule &sch)
{
    std::vector<std::array<std::size_t, 4>> out;
    for (std::size_t ph = 0; ph < sch.phases.size(); ++ph) {
        const auto &phase = sch.phases[ph];
        for (std::size_t ch = 0; ch < phase.channels.size(); ++ch) {
            const auto &beats = phase.channels[ch].beats;
            for (std::size_t t = 0; t < beats.size(); ++t) {
                for (std::size_t p = 0; p < 4; ++p) {
                    if (beats[t].slots[p].valid)
                        out.push_back({ph, ch, t, p});
                }
            }
        }
    }
    return out;
}

Slot &
slotAt(Schedule &sch, const std::array<std::size_t, 4> &where)
{
    return sch.phases[where[0]]
        .channels[where[1]]
        .beats[where[2]]
        .slots[where[3]];
}

class MutationFuzz : public ::testing::TestWithParam<int>
{
};

TEST_P(MutationFuzz, DropIsCaught)
{
    Prepared p = prepare(100 + GetParam());
    const auto slots = validSlots(p.sch);
    Rng rng(GetParam());
    slotAt(p.sch, slots[rng.nextBounded(slots.size())]) = Slot();
    EXPECT_DEATH(validateSchedule(p.sch, p.a), "covers");
}

TEST_P(MutationFuzz, DuplicateIsCaught)
{
    Prepared p = prepare(200 + GetParam());
    const auto slots = validSlots(p.sch);
    Rng rng(GetParam());
    // Copy a valid slot over a stall slot somewhere in the same phase
    // and channel (keeps lane/window residency plausible).
    const auto src = slots[rng.nextBounded(slots.size())];
    auto &beats = p.sch.phases[src[0]].channels[src[1]].beats;
    for (auto &beat : beats) {
        Slot &candidate = beat.slots[src[3]];
        if (!candidate.valid) {
            candidate = slotAt(p.sch, src);
            EXPECT_DEATH(validateSchedule(p.sch, p.a),
                         "duplicated|RAW");
            return;
        }
    }
    GTEST_SKIP() << "no stall slot available for duplication";
}

TEST_P(MutationFuzz, ValueTamperIsCaught)
{
    Prepared p = prepare(300 + GetParam());
    const auto slots = validSlots(p.sch);
    Rng rng(GetParam());
    Slot &slot = slotAt(p.sch, slots[rng.nextBounded(slots.size())]);
    slot.value += 0.125f;
    EXPECT_DEATH(validateSchedule(p.sch, p.a), "value mismatch");
}

TEST_P(MutationFuzz, LaneRetagIsCaught)
{
    Prepared p = prepare(400 + GetParam());
    const auto slots = validSlots(p.sch);
    Rng rng(GetParam());
    Slot &slot = slotAt(p.sch, slots[rng.nextBounded(slots.size())]);
    slot.peSrc = static_cast<std::uint8_t>((slot.peSrc + 1) % 4);
    EXPECT_DEATH(validateSchedule(p.sch, p.a), "lane");
}

TEST_P(MutationFuzz, ColumnCorruptionIsCaught)
{
    Prepared p = prepare(500 + GetParam());
    const auto slots = validSlots(p.sch);
    Rng rng(GetParam());
    const auto where = slots[rng.nextBounded(slots.size())];
    Slot &slot = slotAt(p.sch, where);
    // Push the column outside the slot's phase window.
    slot.col = (p.sch.phases[where[0]].window + 1) * cfg().windowCols +
        1000;
    EXPECT_DEATH(validateSchedule(p.sch, p.a), "window|unexpected");
}

TEST_P(MutationFuzz, PvtFlagFlipIsCaught)
{
    Prepared p = prepare(600 + GetParam());
    const auto slots = validSlots(p.sch);
    Rng rng(GetParam());
    Slot &slot = slotAt(p.sch, slots[rng.nextBounded(slots.size())]);
    slot.pvt = !slot.pvt;
    // Either the pvt tag no longer matches the streaming channel, or a
    // "migrated" element claims an illegal source distance.
    EXPECT_DEATH(validateSchedule(p.sch, p.a), "pvt|depth|lane");
}

INSTANTIATE_TEST_SUITE_P(Seeds, MutationFuzz, ::testing::Range(0, 8));

} // namespace
} // namespace sched
} // namespace chason
