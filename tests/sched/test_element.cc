/**
 * @file
 * Unit tests for the 64-bit sparse element encoding (Section 3.2).
 */

#include "sched/element.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace chason {
namespace sched {
namespace {

TEST(ElementLayout, FieldsPartitionTheWord)
{
    EXPECT_EQ(ElementLayout::kColBits + ElementLayout::kPeSrcBits +
                  ElementLayout::kPvtBits + ElementLayout::kRowBits +
                  ElementLayout::kValueBits,
              64u);
    EXPECT_EQ(ElementLayout::kColLsb, 0u);
    EXPECT_EQ(ElementLayout::kValueLsb + ElementLayout::kValueBits, 64u);
}

TEST(ElementLayout, PaperFieldWidths)
{
    // Section 3.2: 32-bit value, 15-bit row, 1-bit pvt, 3-bit PE_src,
    // 13-bit column.
    EXPECT_EQ(ElementLayout::kValueBits, 32u);
    EXPECT_EQ(ElementLayout::kRowBits, 15u);
    EXPECT_EQ(ElementLayout::kPvtBits, 1u);
    EXPECT_EQ(ElementLayout::kPeSrcBits, 3u);
    EXPECT_EQ(ElementLayout::kColBits, 13u);
    EXPECT_EQ(ElementLayout::maxLocalRow(), 32767u);
    EXPECT_EQ(ElementLayout::maxLocalCol(), 8191u);
    EXPECT_EQ(ElementLayout::maxPeSrc(), 7u);
}

TEST(EncodedElement, RoundTripExtremes)
{
    const DecodedElement cases[] = {
        {1.0f, 0, 0, true, 0},
        {-3.5f, 32767, 8191, false, 7},
        {0.25f, 12345, 4096, false, 3},
        {1e-20f, 1, 1, true, 0},
    };
    for (const DecodedElement &e : cases) {
        const EncodedElement packed = EncodedElement::pack(e);
        EXPECT_EQ(packed.unpack(), e);
    }
}

TEST(EncodedElement, RandomRoundTrip)
{
    Rng rng(99);
    for (int i = 0; i < 2000; ++i) {
        DecodedElement e;
        e.value = rng.nextFloat(-100.0f, 100.0f);
        e.localRow = static_cast<std::uint32_t>(rng.nextBounded(32768));
        e.localCol = static_cast<std::uint32_t>(rng.nextBounded(8192));
        e.pvt = rng.nextBool(0.5);
        e.peSrc = static_cast<unsigned>(rng.nextBounded(8));
        EXPECT_EQ(EncodedElement::pack(e).unpack(), e);
    }
}

TEST(EncodedElement, StallMarker)
{
    EXPECT_TRUE(EncodedElement().isStall());
    EXPECT_TRUE(EncodedElement(0).isStall());
    DecodedElement e;
    e.value = 1.0f;
    e.pvt = true;
    EXPECT_FALSE(EncodedElement::pack(e).isStall());
}

TEST(EncodedElement, PvtBitAloneDistinguishesZeroValue)
{
    // A private element with value 0 and all-zero indices must not be
    // confused with the stall marker (the pvt bit is set).
    DecodedElement e;
    e.value = 0.0f;
    e.pvt = true;
    EXPECT_FALSE(EncodedElement::pack(e).isStall());
}

TEST(EncodedElementDeath, OverflowChecks)
{
    DecodedElement e;
    e.localRow = 32768;
    EXPECT_DEATH(EncodedElement::pack(e), "row");
    e.localRow = 0;
    e.localCol = 8192;
    EXPECT_DEATH(EncodedElement::pack(e), "col");
    e.localCol = 0;
    e.peSrc = 8;
    EXPECT_DEATH(EncodedElement::pack(e), "PE_src");
}

TEST(EncodedElement, EightPerBeatAtFp32)
{
    // 512-bit beat / 64-bit element = 8 elements (Section 3.2).
    EXPECT_EQ(512 / 64, 8);
}

} // namespace
} // namespace sched
} // namespace chason
