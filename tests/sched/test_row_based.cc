/**
 * @file
 * Unit tests for the row-based scheduler (Fig. 1 / Fig. 2a).
 */

#include "sched/row_based.h"

#include <gtest/gtest.h>

#include "sched/analyzer.h"
#include "sparse/formats.h"

namespace chason {
namespace sched {
namespace {

SchedConfig
fig2Config()
{
    // One channel, 4 PEs, 10-cycle accumulator: the Fig. 1/2 setting.
    SchedConfig cfg;
    cfg.channels = 1;
    cfg.pesOverride = 4;
    cfg.rawDistance = 10;
    cfg.windowCols = 64;
    cfg.rowsPerLanePerPass = 64;
    cfg.migrationDepth = 0;
    return cfg;
}

/** Rows 0,4,8,12 on PE0 with the Fig. 1 non-zero counts (3,1,2,2). */
sparse::CsrMatrix
fig1Matrix()
{
    sparse::CooMatrix coo(16, 8);
    // PE0 rows.
    coo.add(0, 0, 1.0f);
    coo.add(0, 1, 2.0f);
    coo.add(0, 3, 3.0f);
    coo.add(4, 0, 11.0f);
    coo.add(8, 0, 21.0f);
    coo.add(8, 3, 23.0f);
    coo.add(12, 0, 31.0f);
    coo.add(12, 2, 32.0f);
    // One element elsewhere so other PEs are not empty.
    coo.add(1, 0, 5.0f);
    return coo.toCsr();
}

TEST(RowBased, Name)
{
    EXPECT_EQ(RowBasedScheduler(fig2Config()).name(), "row-based");
}

TEST(RowBased, SameRowElementsSpacedByRawDistance)
{
    const Schedule sch = RowBasedScheduler(fig2Config())
                             .schedule(fig1Matrix());
    ASSERT_EQ(sch.phases.size(), 1u);
    const auto &beats = sch.phases[0].channels[0].beats;

    // Row 0 has 3 elements on PE0: issued at t, t+10, t+20.
    std::vector<std::size_t> row0_beats;
    for (std::size_t t = 0; t < beats.size(); ++t) {
        const Slot &slot = beats[t].slots[0];
        if (slot.valid && slot.row == 0)
            row0_beats.push_back(t);
    }
    ASSERT_EQ(row0_beats.size(), 3u);
    EXPECT_EQ(row0_beats[1] - row0_beats[0], 10u);
    EXPECT_EQ(row0_beats[2] - row0_beats[1], 10u);
}

TEST(RowBased, RowsIssueInOrder)
{
    const Schedule sch = RowBasedScheduler(fig2Config())
                             .schedule(fig1Matrix());
    const auto &beats = sch.phases[0].channels[0].beats;
    std::uint32_t last_row = 0;
    for (const Beat &beat : beats) {
        const Slot &slot = beat.slots[0];
        if (slot.valid) {
            EXPECT_GE(slot.row, last_row);
            last_row = slot.row;
        }
    }
}

TEST(RowBased, Fig2aUtilizationIsPoor)
{
    // Fig. 2a's point: in-order same-row issue leaves the PE idle for
    // most cycles (0.10 non-zeros per cycle in the paper's example).
    const Schedule sch = RowBasedScheduler(fig2Config())
                             .schedule(fig1Matrix());
    const ScheduleStats stats = analyze(sch);
    EXPECT_GT(stats.underutilizationPercent, 60.0);
}

TEST(RowBased, ValidatesAgainstMatrix)
{
    const sparse::CsrMatrix a = fig1Matrix();
    const Schedule sch = RowBasedScheduler(fig2Config()).schedule(a);
    validateSchedule(sch, a); // panics on any structural violation
    SUCCEED();
}

TEST(RowBased, SingleElementRowsHaveNoGaps)
{
    SchedConfig cfg = fig2Config();
    sparse::CooMatrix coo(8, 8);
    for (std::uint32_t r = 0; r < 8; ++r)
        coo.add(r, 0, 1.0f);
    const sparse::CsrMatrix a = coo.toCsr();
    const Schedule sch = RowBasedScheduler(cfg).schedule(a);
    // Two rows per PE, different rows: no RAW wait, 2 beats total.
    EXPECT_EQ(sch.phases[0].alignedBeats, 2u);
    const ScheduleStats stats = analyze(sch);
    EXPECT_EQ(stats.stalls, 0u);
}

TEST(RowBased, EmptyMatrixYieldsNoPhases)
{
    sparse::CooMatrix coo(8, 8);
    const Schedule sch =
        RowBasedScheduler(fig2Config()).schedule(coo.toCsr());
    EXPECT_TRUE(sch.phases.empty());
    EXPECT_EQ(analyze(sch).nnz, 0u);
}

} // namespace
} // namespace sched
} // namespace chason
