/**
 * @file
 * Unit tests for the schedule containers, phase bucketing and the wire
 * encoding round trip.
 */

#include "sched/schedule.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "sched/pe_aware.h"
#include "sparse/generators.h"

namespace chason {
namespace sched {
namespace {

SchedConfig
tinyConfig()
{
    SchedConfig cfg;
    cfg.channels = 4;
    cfg.pesOverride = 2;
    cfg.rawDistance = 3;
    cfg.windowCols = 16;
    cfg.rowsPerLanePerPass = 8;
    cfg.migrationDepth = 1;
    return cfg;
}

TEST(LaneMap, RoundTrip)
{
    SchedConfig cfg = tinyConfig();
    const LaneMap map(cfg);
    EXPECT_EQ(map.lanes(), 8u);
    for (std::uint32_t row = 0; row < 100; ++row) {
        const unsigned ch = map.channelOf(row);
        const unsigned pe = map.peOf(row);
        const std::uint32_t local = map.localRowOf(row);
        EXPECT_LT(ch, cfg.channels);
        EXPECT_LT(pe, cfg.pesPerGroup());
        EXPECT_EQ(map.globalRowOf(ch, pe, local), row);
    }
}

TEST(LaneMap, PaperEquationExample)
{
    // Eq. 1: PE_id = row % TotalPEs; Fig. 1 uses 4 PEs on one channel.
    SchedConfig cfg;
    cfg.channels = 1;
    cfg.pesOverride = 4;
    const LaneMap map(cfg);
    EXPECT_EQ(map.peOf(0), 0u);
    EXPECT_EQ(map.peOf(1), 1u);
    EXPECT_EQ(map.peOf(4), 0u);
    EXPECT_EQ(map.peOf(12), 0u);
}

TEST(SchedConfig, PrecisionSelectsPes)
{
    SchedConfig cfg;
    EXPECT_EQ(cfg.pesPerGroup(), 8u);
    cfg.precision = Precision::Fp64;
    EXPECT_EQ(cfg.pesPerGroup(), 5u); // Section 5.5
    cfg.pesOverride = 6;
    EXPECT_EQ(cfg.pesPerGroup(), 6u);
}

TEST(SchedConfigDeath, ValidateCatchesBadGeometry)
{
    SchedConfig cfg;
    cfg.channels = 0;
    EXPECT_DEATH(cfg.validate(), "channel");
    cfg = SchedConfig();
    cfg.migrationDepth = 16;
    EXPECT_DEATH(cfg.validate(), "migrationDepth");
}

TEST(Beat, ValidCount)
{
    Beat beat;
    EXPECT_TRUE(beat.allStall(8));
    beat.slots[0].valid = true;
    beat.slots[7].valid = true;
    EXPECT_EQ(beat.validCount(8), 2u);
    EXPECT_EQ(beat.validCount(4), 1u); // only slot 0 within 4 PEs
    EXPECT_FALSE(beat.allStall(8));
}

TEST(ChannelWindowSchedule, TrimTrailingStalls)
{
    ChannelWindowSchedule cws;
    cws.beats.resize(5);
    cws.beats[1].slots[0].valid = true;
    cws.trimTrailingStalls(8);
    EXPECT_EQ(cws.length(), 2u);
    EXPECT_EQ(cws.validSlots(8), 1u);
}

TEST(WindowSchedule, Realign)
{
    WindowSchedule ws;
    ws.channels.resize(3);
    ws.channels[1].beats.resize(7);
    ws.channels[2].beats.resize(4);
    ws.realign();
    EXPECT_EQ(ws.alignedBeats, 7u);
}

TEST(BuildPhaseWork, SplitsByWindowAndLane)
{
    SchedConfig cfg = tinyConfig(); // windows of 16 columns, 8 lanes
    sparse::CooMatrix coo(10, 40);
    coo.add(0, 0, 1.0f);   // window 0, lane 0
    coo.add(0, 20, 2.0f);  // window 1, lane 0
    coo.add(9, 39, 3.0f);  // window 2, lane 1 (9 % 8)
    const sparse::CsrMatrix csr = coo.toCsr();
    const auto work = buildPhaseWork(csr, cfg);
    ASSERT_EQ(work.size(), 3u); // three non-empty windows
    EXPECT_EQ(work[0].window, 0u);
    EXPECT_EQ(work[0].nnz, 1u);
    ASSERT_EQ(work[0].lanes[0].size(), 1u);
    EXPECT_EQ(work[0].lanes[0][0].row, 0u);
    EXPECT_EQ(work[2].window, 2u);
    ASSERT_EQ(work[2].lanes[1].size(), 1u);
    EXPECT_EQ(work[2].lanes[1][0].row, 9u);
}

TEST(BuildPhaseWork, EmptyWindowsOmitted)
{
    SchedConfig cfg = tinyConfig();
    sparse::CooMatrix coo(4, 64); // 4 windows of 16
    coo.add(1, 50, 1.0f);         // only window 3 has work
    const sparse::CsrMatrix csr = coo.toCsr();
    const auto work = buildPhaseWork(csr, cfg);
    ASSERT_EQ(work.size(), 1u);
    EXPECT_EQ(work[0].window, 3u);
}

TEST(BuildPhaseWork, MultiplePasses)
{
    SchedConfig cfg = tinyConfig(); // 8 lanes x 8 rows = 64 rows/pass
    sparse::CooMatrix coo(130, 8);
    coo.add(0, 0, 1.0f);   // pass 0
    coo.add(70, 0, 1.0f);  // pass 1
    coo.add(129, 0, 1.0f); // pass 2
    const sparse::CsrMatrix csr = coo.toCsr();
    const auto work = buildPhaseWork(csr, cfg);
    ASSERT_EQ(work.size(), 3u);
    EXPECT_EQ(work[0].pass, 0u);
    EXPECT_EQ(work[1].pass, 1u);
    EXPECT_EQ(work[2].pass, 2u);
}

TEST(BuildPhaseWork, RowSplitAcrossWindowsKeepsColumnOrder)
{
    SchedConfig cfg = tinyConfig();
    sparse::CooMatrix coo(2, 48);
    for (std::uint32_t c = 0; c < 48; c += 4)
        coo.add(1, c, static_cast<float>(c));
    const sparse::CsrMatrix csr = coo.toCsr();
    const auto work = buildPhaseWork(csr, cfg);
    ASSERT_EQ(work.size(), 3u);
    for (const auto &pw : work) {
        const auto &runs = pw.lanes[1];
        ASSERT_EQ(runs.size(), 1u);
        EXPECT_EQ(runs[0].len, 4u);
        // Slices reference the CSR arrays directly, in column order.
        for (std::uint32_t i = 1; i < runs[0].len; ++i)
            EXPECT_LT(pw.col(runs[0], i - 1), pw.col(runs[0], i));
    }
}

TEST(EncodeDecode, RoundTripOnRealSchedule)
{
    SchedConfig cfg;
    cfg.channels = 16;
    cfg.rawDistance = 10;
    Rng rng(5);
    const sparse::CsrMatrix a = sparse::erdosRenyi(500, 500, 4000, rng);
    const Schedule sch = PeAwareScheduler(cfg).schedule(a);

    ASSERT_FALSE(sch.phases.empty());
    for (std::size_t phase = 0; phase < sch.phases.size(); ++phase) {
        for (unsigned ch = 0; ch < cfg.channels; ++ch) {
            const auto words = encodeChannelStream(sch, phase, ch);
            const ChannelWindowSchedule decoded = decodeChannelStream(
                cfg, words, sch.phases[phase].pass,
                sch.phases[phase].window, ch);
            const ChannelWindowSchedule &orig =
                sch.phases[phase].channels[ch];
            ASSERT_EQ(decoded.length(), orig.length());
            for (std::size_t t = 0; t < orig.length(); ++t) {
                for (unsigned p = 0; p < cfg.pesPerGroup(); ++p) {
                    const Slot &o = orig.beats[t].slots[p];
                    const Slot &d = decoded.beats[t].slots[p];
                    ASSERT_EQ(d.valid, o.valid);
                    if (!o.valid)
                        continue;
                    EXPECT_EQ(d.row, o.row);
                    EXPECT_EQ(d.col, o.col);
                    EXPECT_EQ(d.value, o.value);
                    EXPECT_EQ(d.pvt, o.pvt);
                    EXPECT_EQ(d.peSrc, o.peSrc);
                    EXPECT_EQ(d.chSrc, o.chSrc);
                }
            }
        }
    }
}

TEST(Schedule, GeometryHelpers)
{
    SchedConfig cfg = tinyConfig();
    Schedule sch;
    sch.config = cfg;
    sch.rows = 130;
    sch.cols = 40;
    EXPECT_EQ(sch.windowsPerPass(), 3u);
    EXPECT_EQ(sch.passes(), 3u); // 64 rows per pass
}

} // namespace
} // namespace sched
} // namespace chason
