/**
 * @file
 * Equivalence regressions for the migration fast path.
 *
 * CrhcsScheduler::schedule() runs migration through the optimized
 * fresh-placement route: free-slot and donor bitmaps handed straight
 * over from placement, donor-pool setup sharded across the scheduling
 * pool, mask-driven hole walking and an O(1) tail trim. The public
 * CrhcsScheduler::migratePhase() entry point is the semantic
 * reference: it accepts an arbitrary phase, recovers both bitmaps by
 * scanning the beats, and trims by walking the tail. These tests pin
 * the two routes to each other beat-for-beat across matrix shapes and
 * configs, and pin the conservation law every migration pass must
 * obey: elements move between channels, they are never dropped,
 * duplicated or revalued.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <tuple>
#include <vector>

#include "common/rng.h"
#include "sched/crhcs.h"
#include "sched/pe_aware.h"
#include "sparse/generators.h"

namespace chason {
namespace {

struct Shape
{
    const char *name;
    std::uint32_t scale;
    std::size_t nnzTarget;
};

/** Single-window, multi-window and multi-pass territory. */
const Shape kShapes[] = {
    {"tiny", 8, 1u << 12},
    {"small", 10, 1u << 14},
    {"medium", 12, 1u << 16},
};

sparse::CsrMatrix
shapeMatrix(const Shape &shape)
{
    Rng rng = Rng::forStream(0x319E, shape.scale);
    return sparse::rmat(shape.scale, shape.nnzTarget, rng);
}

/** Configs covering depth, geometry and RAW-window variation. */
std::vector<sched::SchedConfig>
migrationConfigs()
{
    std::vector<sched::SchedConfig> configs;
    configs.emplace_back(); // paper defaults
    {
        sched::SchedConfig c;
        c.migrationDepth = 3;
        configs.push_back(c);
    }
    {
        sched::SchedConfig c;
        c.channels = 4;
        c.pesOverride = 5;
        c.migrationDepth = 2;
        c.rawDistance = 4;
        configs.push_back(c);
    }
    return configs;
}

/** Beat-for-beat equality; Slot is 16 packed bytes, so raw compare. */
void
expectPhasesEqual(const sched::WindowSchedule &fast,
                  const sched::WindowSchedule &ref)
{
    EXPECT_EQ(fast.pass, ref.pass);
    EXPECT_EQ(fast.window, ref.window);
    EXPECT_EQ(fast.alignedBeats, ref.alignedBeats);
    ASSERT_EQ(fast.channels.size(), ref.channels.size());
    for (std::size_t ch = 0; ch < fast.channels.size(); ++ch) {
        const sched::ChannelWindowSchedule &fc = fast.channels[ch];
        const sched::ChannelWindowSchedule &rc = ref.channels[ch];
        ASSERT_EQ(fc.length(), rc.length()) << "channel " << ch;
        for (std::size_t t = 0; t < fc.length(); ++t) {
            ASSERT_EQ(std::memcmp(&fc.beats[t], &rc.beats[t],
                                  sizeof(sched::Beat)),
                      0)
                << "channel " << ch << " beat " << t;
        }
    }
}

TEST(MigrationEquivalence, FastPathMatchesPublicMigratePhase)
{
    for (const sched::SchedConfig &config : migrationConfigs()) {
        for (const Shape &shape : kShapes) {
            SCOPED_TRACE(shape.name);
            const sparse::CsrMatrix a = shapeMatrix(shape);

            sched::CrhcsScheduler scheduler(config);
            scheduler.setJobs(1);
            const sched::Schedule fast = scheduler.schedule(a);

            // Reference route: the same placement, migrated through
            // the scan-and-rebuild entry point.
            const sched::PhaseWorkList work =
                sched::buildPhaseWork(a, config);
            ASSERT_EQ(work.size(), fast.phases.size());
            for (std::size_t i = 0; i < work.size(); ++i) {
                sched::WindowSchedule ref =
                    sched::PeAwareScheduler::schedulePhase(work[i],
                                                           config);
                sched::CrhcsScheduler::migratePhase(ref, config);
                expectPhasesEqual(fast.phases[i], ref);
            }
        }
    }
}

/** (row, col, value bits) of every valid slot in the schedule. */
std::vector<std::tuple<std::uint32_t, std::uint32_t, std::uint32_t>>
scheduledElements(const sched::Schedule &s, unsigned pes)
{
    std::vector<std::tuple<std::uint32_t, std::uint32_t, std::uint32_t>>
        out;
    for (const sched::WindowSchedule &phase : s.phases) {
        for (const sched::ChannelWindowSchedule &ch : phase.channels) {
            for (std::size_t t = 0; t < ch.length(); ++t) {
                for (unsigned p = 0; p < pes; ++p) {
                    const sched::Slot &slot = ch.beats[t].slots[p];
                    if (!slot.valid)
                        continue;
                    std::uint32_t bits = 0;
                    std::memcpy(&bits, &slot.value, sizeof(bits));
                    out.emplace_back(slot.row, slot.col, bits);
                }
            }
        }
    }
    std::sort(out.begin(), out.end());
    return out;
}

TEST(MigrationEquivalence, MigrationConservesEveryElement)
{
    for (const sched::SchedConfig &config : migrationConfigs()) {
        for (const Shape &shape : kShapes) {
            SCOPED_TRACE(shape.name);
            const sparse::CsrMatrix a = shapeMatrix(shape);

            std::vector<
                std::tuple<std::uint32_t, std::uint32_t, std::uint32_t>>
                expected;
            for (std::uint32_t r = 0; r < a.rows(); ++r) {
                for (std::size_t i = a.rowPtr()[r];
                     i < a.rowPtr()[r + 1]; ++i) {
                    std::uint32_t bits = 0;
                    std::memcpy(&bits, &a.values()[i], sizeof(bits));
                    expected.emplace_back(r, a.colIdx()[i], bits);
                }
            }
            std::sort(expected.begin(), expected.end());

            for (const sched::MigrationStrategy strategy :
                 {sched::MigrationStrategy::BeatSynchronous,
                  sched::MigrationStrategy::SequentialGreedy}) {
                sched::CrhcsScheduler scheduler(config, strategy);
                scheduler.setJobs(1);
                const sched::Schedule s = scheduler.schedule(a);
                EXPECT_EQ(scheduledElements(s, config.pesPerGroup()),
                          expected);
            }
        }
    }
}

} // namespace
} // namespace chason
