/**
 * @file
 * Unit tests for the serving layer's pure parts: the JSON parser, the
 * request parser with its protocol-boundary bounds (nothing a client
 * sends may reach a fatal SchedConfig::validate()), response
 * rendering, the y-vector digest, and deterministic token-bucket /
 * admission-control behavior with caller-supplied time.
 */

#include "serve/admission.h"
#include "serve/json.h"
#include "serve/protocol.h"

#include <cmath>
#include <string>

#include <gtest/gtest.h>

namespace chason {
namespace serve {
namespace {

// ---------------------------------------------------------------- JSON

TEST(ServeJson, ParsesNestedDocument)
{
    JsonValue v;
    std::string error;
    ASSERT_TRUE(parseJson(
        R"({"a":1,"b":[true,null,"x\n\u0041"],"c":{"d":-2.5}})", v,
        error))
        << error;
    ASSERT_TRUE(v.isObject());
    std::uint64_t a = 0;
    EXPECT_TRUE(v.getUint("a", a));
    EXPECT_EQ(a, 1u);
    const JsonValue *b = v.find("b");
    ASSERT_NE(b, nullptr);
    ASSERT_TRUE(b->isArray());
    ASSERT_EQ(b->items.size(), 3u);
    EXPECT_TRUE(b->items[0].isBool());
    EXPECT_TRUE(b->items[0].boolean);
    EXPECT_TRUE(b->items[1].isNull());
    EXPECT_EQ(b->items[2].text, "x\nA");
    const JsonValue *c = v.find("c");
    ASSERT_NE(c, nullptr);
    const JsonValue *d = c->find("d");
    ASSERT_NE(d, nullptr);
    EXPECT_DOUBLE_EQ(d->number, -2.5);
}

TEST(ServeJson, RejectsMalformedInput)
{
    JsonValue v;
    std::string error;
    EXPECT_FALSE(parseJson("", v, error));
    EXPECT_FALSE(parseJson("{", v, error));
    EXPECT_FALSE(parseJson("{\"a\":1,}", v, error));
    EXPECT_FALSE(parseJson("{\"a\":1} garbage", v, error));
    EXPECT_FALSE(parseJson("{\"a\":01}", v, error));
    EXPECT_FALSE(parseJson("\"\\q\"", v, error));
    EXPECT_FALSE(parseJson("nul", v, error));
}

TEST(ServeJson, CapsNestingDepth)
{
    std::string deep;
    for (int i = 0; i < 64; ++i)
        deep += "[";
    for (int i = 0; i < 64; ++i)
        deep += "]";
    JsonValue v;
    std::string error;
    EXPECT_FALSE(parseJson(deep, v, error));
    EXPECT_NE(error.find("depth"), std::string::npos);
}

TEST(ServeJson, GetUintRejectsNonIntegers)
{
    JsonValue v;
    std::string error;
    ASSERT_TRUE(parseJson(
        R"({"frac":1.5,"neg":-1,"big":1e300,"ok":9007199254740992})", v,
        error));
    std::uint64_t out = 7;
    EXPECT_FALSE(v.getUint("frac", out));
    EXPECT_FALSE(v.getUint("neg", out));
    EXPECT_FALSE(v.getUint("big", out));
    EXPECT_FALSE(v.getUint("absent", out));
    EXPECT_EQ(out, 7u); // untouched on failure
    EXPECT_TRUE(v.getUint("ok", out));
    EXPECT_EQ(out, 9007199254740992u); // 2^53, the inclusive cap
}

// ------------------------------------------------------------ requests

TEST(ServeProtocol, ParsesMinimalDatasetRequest)
{
    Request request;
    std::string error;
    ASSERT_TRUE(
        parseRequest(R"({"id":7,"dataset":"CM"})", request, error))
        << error;
    EXPECT_TRUE(request.hasId);
    EXPECT_EQ(request.id, 7u);
    EXPECT_EQ(request.tenant, "default");
    EXPECT_EQ(request.source, Request::Source::Dataset);
    EXPECT_EQ(request.dataset, "CM");
    EXPECT_EQ(request.kind, core::Engine::Kind::Chason);
    EXPECT_EQ(request.matrixKey(), "dataset:CM");
}

TEST(ServeProtocol, ParsesFullRmatRequest)
{
    Request request;
    std::string error;
    ASSERT_TRUE(parseRequest(
        R"({"id":1,"tenant":"t0","rmat":{"scale":9,"edges":4000,)"
        R"("seed":3},"xseed":42,"engine":"serpens",)"
        R"("config":{"channels":8,"window":256,"rows_per_lane":64,)"
        R"("raw_distance":4,"pes":4}})",
        request, error))
        << error;
    EXPECT_EQ(request.source, Request::Source::Rmat);
    EXPECT_EQ(request.rmatScale, 9u);
    EXPECT_EQ(request.rmatEdges, 4000u);
    EXPECT_EQ(request.rmatSeed, 3u);
    EXPECT_EQ(request.xSeed, 42u);
    EXPECT_EQ(request.kind, core::Engine::Kind::Serpens);
    EXPECT_EQ(request.channels, 8u);
    EXPECT_EQ(request.window, 256u);
    EXPECT_EQ(request.rowsPerLane, 64u);
    EXPECT_EQ(request.rawDistance, 4u);
    EXPECT_EQ(request.pes, 4u);
    EXPECT_EQ(request.matrixKey(), "rmat:s9:e4000:seed3");

    arch::ArchConfig config;
    request.applyConfig(config);
    EXPECT_EQ(config.sched.channels, 8u);
    EXPECT_EQ(config.sched.windowCols, 256u);
    EXPECT_EQ(config.sched.rowsPerLanePerPass, 64u);
    EXPECT_EQ(config.sched.rawDistance, 4u);
    EXPECT_EQ(config.sched.pesOverride, 4u);
}

TEST(ServeProtocol, RejectsStructurallyInvalidRequests)
{
    Request request;
    std::string error;
    // Not JSON at all.
    EXPECT_FALSE(parseRequest("hello", request, error));
    // Missing id.
    EXPECT_FALSE(parseRequest(R"({"dataset":"CM"})", request, error));
    // Unknown top-level key.
    EXPECT_FALSE(parseRequest(
        R"({"id":1,"dataset":"CM","chanels":4})", request, error));
    EXPECT_NE(error.find("chanels"), std::string::npos);
    // Zero or two matrix sources.
    EXPECT_FALSE(parseRequest(R"({"id":1})", request, error));
    EXPECT_FALSE(parseRequest(
        R"({"id":1,"dataset":"CM","path":"x.mtx"})", request, error));
    // Unknown engine.
    EXPECT_FALSE(parseRequest(
        R"({"id":1,"dataset":"CM","engine":"gpu"})", request, error));
    // Unknown rmat / config member.
    EXPECT_FALSE(parseRequest(
        R"({"id":1,"rmat":{"scale":8,"edges":10,"fanout":2}})", request,
        error));
    EXPECT_FALSE(parseRequest(
        R"({"id":1,"dataset":"CM","config":{"lanes":4}})", request,
        error));
    // Over-long tenant.
    EXPECT_FALSE(parseRequest(
        R"({"id":1,"dataset":"CM","tenant":")" + std::string(65, 't') +
            R"("})",
        request, error));
}

/**
 * Geometry that would trip SchedConfig::validate()'s fatal checks must
 * be refused at the protocol boundary — the daemon never panics on
 * client input.
 */
TEST(ServeProtocol, RejectsOutOfBoundsGeometry)
{
    Request request;
    std::string error;
    // channels=1 < migrationDepth+1.
    EXPECT_FALSE(parseRequest(
        R"({"id":1,"dataset":"CM","config":{"channels":1}})", request,
        error));
    // pes above the hardware's 8-per-group limit.
    EXPECT_FALSE(parseRequest(
        R"({"id":1,"dataset":"CM","config":{"pes":9}})", request,
        error));
    EXPECT_FALSE(parseRequest(
        R"({"id":1,"dataset":"CM","config":{"window":0}})", request,
        error));
    EXPECT_FALSE(parseRequest(
        R"({"id":1,"rmat":{"scale":40,"edges":10}})", request, error));
    // The id still parsed, so the error can be correlated.
    EXPECT_TRUE(request.hasId);
    EXPECT_EQ(request.id, 1u);
}

// ----------------------------------------------------------- responses

TEST(ServeProtocol, ResponsesRoundTripThroughTheParser)
{
    Request request;
    std::string error;
    ASSERT_TRUE(
        parseRequest(R"({"id":33,"dataset":"CM"})", request, error));
    core::SpmvReport report;
    report.dataset = "dataset:CM";
    report.accelerator = "chason";
    report.rows = 10;
    report.cols = 12;
    report.nnz = 34;
    report.cycles = 999;
    report.latencyMs = 0.5;
    report.gflops = 1.25;
    report.functionalError = 0.0;

    JsonValue v;
    ASSERT_TRUE(
        parseJson(resultResponse(request, report, 0xabcdef0123456789ull,
                                 2.5),
                  v, error))
        << error;
    std::uint64_t id = 0;
    EXPECT_TRUE(v.getUint("id", id));
    EXPECT_EQ(id, 33u);
    ASSERT_NE(v.find("ok"), nullptr);
    EXPECT_TRUE(v.find("ok")->boolean);
    std::string digest;
    EXPECT_TRUE(v.getString("ydigest", digest));
    EXPECT_EQ(digest, "abcdef0123456789");
    std::uint64_t cycles = 0;
    EXPECT_TRUE(v.getUint("cycles", cycles));
    EXPECT_EQ(cycles, 999u);

    ASSERT_TRUE(parseJson(
        errorResponse(true, 33, kErrOverBudget, "tenant \"x\" dry"), v,
        error))
        << error;
    EXPECT_FALSE(v.find("ok")->boolean);
    std::string type;
    EXPECT_TRUE(v.getString("error", type));
    EXPECT_EQ(type, "over_budget");
    std::string detail;
    EXPECT_TRUE(v.getString("detail", detail));
    EXPECT_EQ(detail, "tenant \"x\" dry");

    // Unparsable id: correlated as null.
    ASSERT_TRUE(parseJson(errorResponse(false, 0, kErrBadRequest, "x"),
                          v, error));
    ASSERT_NE(v.find("id"), nullptr);
    EXPECT_TRUE(v.find("id")->isNull());
}

TEST(ServeProtocol, VectorDigestSeparatesBitPatterns)
{
    const std::vector<float> a = {1.0f, 2.0f, 3.0f};
    std::vector<float> b = a;
    EXPECT_EQ(vectorDigest(a), vectorDigest(b));
    b[2] = std::nextafter(b[2], 4.0f); // one ulp
    EXPECT_NE(vectorDigest(a), vectorDigest(b));
    // Order matters, and so does the split into elements.
    EXPECT_NE(vectorDigest({1.0f, 2.0f}), vectorDigest({2.0f, 1.0f}));
    EXPECT_NE(vectorDigest({}), vectorDigest({0.0f}));
}

// ----------------------------------------------------------- admission

TEST(ServeAdmission, TokenBucketRefillsDeterministically)
{
    TokenBucket bucket(2.0, 3.0, 0.0); // 2/s sustained, burst 3
    EXPECT_TRUE(bucket.tryTake(0.0));
    EXPECT_TRUE(bucket.tryTake(0.0));
    EXPECT_TRUE(bucket.tryTake(0.0));
    EXPECT_FALSE(bucket.tryTake(0.0)); // burst exhausted
    EXPECT_FALSE(bucket.tryTake(0.4)); // 0.8 tokens: not enough
    EXPECT_TRUE(bucket.tryTake(0.5));  // 1.0 token
    EXPECT_FALSE(bucket.tryTake(0.5));
    // Refill clamps at burst: a long idle gap buys 3, not 2000.
    EXPECT_TRUE(bucket.tryTake(1000.0));
    EXPECT_TRUE(bucket.tryTake(1000.0));
    EXPECT_TRUE(bucket.tryTake(1000.0));
    EXPECT_FALSE(bucket.tryTake(1000.0));
}

TEST(ServeAdmission, BudgetIsCheckedBeforeQueueAndPerTenant)
{
    AdmissionControl::Options options;
    options.queueCapacity = 2;
    options.tokensPerSec = 1.0;
    options.tokenBurst = 2.0;
    AdmissionControl control(options);

    // Tenant a: burst of 2 admits, third is over budget even though
    // it also would not fit the queue — budget answers first, so a
    // flooding tenant learns nothing about global queue pressure.
    EXPECT_EQ(control.tryAdmit("a", 0.0), Admission::kAdmitted);
    EXPECT_EQ(control.tryAdmit("a", 0.0), Admission::kAdmitted);
    EXPECT_EQ(control.tryAdmit("a", 0.0), Admission::kOverBudget);
    EXPECT_EQ(control.depth(), 2u);

    // Tenant b has its own untouched bucket, but the queue is full.
    EXPECT_EQ(control.tryAdmit("b", 0.0), Admission::kQueueFull);

    control.release();
    EXPECT_EQ(control.tryAdmit("b", 0.0), Admission::kAdmitted);
    EXPECT_EQ(control.depth(), 2u);
    EXPECT_EQ(control.maxDepth(), 2u);

    control.release();
    control.release();
    EXPECT_EQ(control.depth(), 0u);
    EXPECT_EQ(control.maxDepth(), 2u);
}

TEST(ServeAdmission, ZeroRateDisablesQos)
{
    AdmissionControl::Options options;
    options.queueCapacity = 100;
    options.tokensPerSec = 0.0;
    AdmissionControl control(options);
    for (int i = 0; i < 50; ++i)
        EXPECT_EQ(control.tryAdmit("t", 0.0), Admission::kAdmitted);
}

} // namespace
} // namespace serve
} // namespace chason
