/**
 * @file
 * In-process end-to-end tests for the serving daemon: a real Daemon on
 * a temp Unix socket, driven through real client connections.
 *
 * The central contract is the ISSUE's acceptance bar: a served result
 * is bit-identical to running the same deterministic spec directly
 * through Engine::runScheduled — checked via the y-vector digest.
 * Around it: typed errors in request order, per-tenant QoS isolation,
 * a well-formed stats document (including the empty-daemon case, which
 * must not trip the percentile-on-empty assertion), and graceful,
 * idempotent shutdown.
 */

#include "serve/daemon.h"

#include <cinttypes>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>
#include <unistd.h>

#include "common/rng.h"
#include "core/engine.h"
#include "serve/json.h"
#include "serve/net.h"
#include "serve/protocol.h"
#include "sparse/generators.h"

namespace chason {
namespace serve {
namespace {

std::string
socketPath(const char *name)
{
    return ::testing::TempDir() + "chason_" + name + ".sock";
}

/** The daemon's pipeline recomputed directly: digest of y. */
std::string
referenceDigest(std::uint32_t scale, std::size_t edges,
                std::uint64_t seed, std::uint64_t xseed)
{
    Rng matrixRng(seed);
    const sparse::CsrMatrix a = sparse::rmat(scale, edges, matrixRng);
    Rng xRng(xseed);
    const std::vector<float> x = sparse::randomVector(a.cols(), xRng);
    const core::Engine engine(core::Engine::Kind::Chason, {});
    const sched::Schedule schedule = engine.schedule(a);
    std::vector<float> y;
    engine.runScheduled(schedule, a, x, "ref", &y);
    char hex[24];
    std::snprintf(hex, sizeof(hex), "%016" PRIx64, vectorDigest(y));
    return hex;
}

std::string
rmatRequest(std::uint64_t id, const char *tenant, std::uint32_t scale,
            std::size_t edges, std::uint64_t seed, std::uint64_t xseed)
{
    char buffer[256];
    std::snprintf(buffer, sizeof(buffer),
                  "{\"id\":%" PRIu64
                  ",\"tenant\":\"%s\",\"rmat\":{\"scale\":%u,"
                  "\"edges\":%zu,\"seed\":%" PRIu64 "},\"xseed\":%" PRIu64
                  "}\n",
                  id, tenant, scale, edges, seed, xseed);
    return buffer;
}

/** Read one response line and parse it; fails the test on EOF. */
JsonValue
readResponse(LineReader &reader)
{
    std::string line;
    EXPECT_TRUE(reader.readLine(line));
    JsonValue v;
    std::string error;
    EXPECT_TRUE(parseJson(line, v, error)) << line << ": " << error;
    return v;
}

TEST(ServeDaemon, ServedResultsAreBitIdenticalToDirectEngineRuns)
{
    DaemonOptions options;
    options.socketPath = socketPath("serve");
    Daemon daemon(options);
    std::string error;
    ASSERT_TRUE(daemon.start(&error)) << error;

    const int fd = connectUnixSocket(options.socketPath, &error);
    ASSERT_GE(fd, 0) << error;
    LineReader reader(fd);

    // Two distinct specs plus a repeat of the first (a schedule-cache
    // hit): every answer must match the direct Engine::runScheduled
    // digest for its spec.
    ASSERT_TRUE(sendAll(fd, rmatRequest(1, "t", 7, 1500, 11, 101)));
    ASSERT_TRUE(sendAll(fd, rmatRequest(2, "t", 8, 3000, 13, 103)));
    ASSERT_TRUE(sendAll(fd, rmatRequest(3, "t", 7, 1500, 11, 101)));
    const std::string digestA = referenceDigest(7, 1500, 11, 101);
    const std::string digestB = referenceDigest(8, 3000, 13, 103);
    const std::string expected[] = {digestA, digestB, digestA};
    for (std::uint64_t i = 0; i < 3; ++i) {
        const JsonValue v = readResponse(reader);
        std::uint64_t id = 0;
        EXPECT_TRUE(v.getUint("id", id));
        EXPECT_EQ(id, i + 1); // request order per connection
        ASSERT_NE(v.find("ok"), nullptr);
        EXPECT_TRUE(v.find("ok")->boolean);
        std::string digest;
        EXPECT_TRUE(v.getString("ydigest", digest));
        EXPECT_EQ(digest, expected[i]);
        const JsonValue *serviceMs = v.find("service_ms");
        ASSERT_NE(serviceMs, nullptr);
        EXPECT_GE(serviceMs->number, 0.0);
    }

    // Streaming retirement: answered jobs are gone from the engine.
    EXPECT_EQ(daemon.engine().pendingJobs(), 0u);
    ::close(fd);
    daemon.shutdown();
}

TEST(ServeDaemon, TypedErrorsComeBackInRequestOrder)
{
    DaemonOptions options;
    options.socketPath = socketPath("errors");
    Daemon daemon(options);
    std::string error;
    ASSERT_TRUE(daemon.start(&error)) << error;

    const int fd = connectUnixSocket(options.socketPath, &error);
    ASSERT_GE(fd, 0) << error;
    LineReader reader(fd);

    ASSERT_TRUE(sendAll(fd, "this is not json\n"));
    ASSERT_TRUE(sendAll(fd, "{\"id\":5,\"dataset\":\"NOPE\"}\n"));
    ASSERT_TRUE(sendAll(
        fd, "{\"id\":6,\"dataset\":\"CM\",\"config\":{\"channels\":1}}"
            "\n"));
    ASSERT_TRUE(sendAll(fd, rmatRequest(7, "t", 7, 1500, 11, 101)));

    // Malformed line: id could not parse, correlated as null.
    JsonValue v = readResponse(reader);
    ASSERT_NE(v.find("id"), nullptr);
    EXPECT_TRUE(v.find("id")->isNull());
    std::string type;
    EXPECT_TRUE(v.getString("error", type));
    EXPECT_EQ(type, kErrBadRequest);

    // Unknown dataset: typed error, id echoed.
    v = readResponse(reader);
    std::uint64_t id = 0;
    EXPECT_TRUE(v.getUint("id", id));
    EXPECT_EQ(id, 5u);
    EXPECT_TRUE(v.getString("error", type));
    EXPECT_EQ(type, kErrBadRequest);
    std::string detail;
    EXPECT_TRUE(v.getString("detail", detail));
    EXPECT_NE(detail.find("NOPE"), std::string::npos);

    // Geometry that would be fatal in SchedConfig::validate(): the
    // daemon answers instead of dying.
    v = readResponse(reader);
    EXPECT_TRUE(v.getUint("id", id));
    EXPECT_EQ(id, 6u);
    EXPECT_TRUE(v.getString("error", type));
    EXPECT_EQ(type, kErrBadRequest);

    // And the connection is still fully usable afterwards.
    v = readResponse(reader);
    EXPECT_TRUE(v.getUint("id", id));
    EXPECT_EQ(id, 7u);
    ASSERT_NE(v.find("ok"), nullptr);
    EXPECT_TRUE(v.find("ok")->boolean);

    ::close(fd);
    daemon.shutdown();
}

TEST(ServeDaemon, QosThrottlesOneTenantWithoutTouchingAnother)
{
    DaemonOptions options;
    options.socketPath = socketPath("qos");
    options.tokensPerSec = 0.001; // effectively no refill in-test
    options.tokenBurst = 2.0;
    Daemon daemon(options);
    std::string error;
    ASSERT_TRUE(daemon.start(&error)) << error;

    const int fd = connectUnixSocket(options.socketPath, &error);
    ASSERT_GE(fd, 0) << error;
    LineReader reader(fd);

    for (std::uint64_t i = 1; i <= 5; ++i)
        ASSERT_TRUE(
            sendAll(fd, rmatRequest(i, "greedy", 7, 1500, 11, 101)));
    // A different tenant interleaved with the greedy one: its own
    // burst is untouched.
    ASSERT_TRUE(sendAll(fd, rmatRequest(6, "polite", 7, 1500, 11, 101)));

    int ok = 0;
    int overBudget = 0;
    bool politeServed = false;
    for (int i = 0; i < 6; ++i) {
        const JsonValue v = readResponse(reader);
        std::uint64_t id = 0;
        ASSERT_TRUE(v.getUint("id", id));
        ASSERT_NE(v.find("ok"), nullptr);
        if (v.find("ok")->boolean) {
            ++ok;
            politeServed = politeServed || id == 6;
        } else {
            ++overBudget;
            std::string type;
            EXPECT_TRUE(v.getString("error", type));
            EXPECT_EQ(type, kErrOverBudget);
            EXPECT_LE(id, 5u); // only the greedy tenant is rejected
        }
    }
    EXPECT_EQ(ok, 3);         // greedy burst of 2 + polite 1
    EXPECT_EQ(overBudget, 3); // greedy requests 3..5
    EXPECT_TRUE(politeServed);

    ::close(fd);
    daemon.shutdown();
}

TEST(ServeDaemon, StatsJsonIsWellFormedEvenWhenIdle)
{
    DaemonOptions options;
    options.socketPath = socketPath("stats");
    options.queueCapacity = 17;
    Daemon daemon(options);
    std::string error;
    ASSERT_TRUE(daemon.start(&error)) << error;

    // Idle daemon: zero samples must not trip the percentile-on-empty
    // assertion — the probe reports zeros.
    JsonValue v;
    ASSERT_TRUE(parseJson(daemon.statsJson(), v, error)) << error;
    const JsonValue *latency = v.find("latency_ms");
    ASSERT_NE(latency, nullptr);
    std::uint64_t count = 99;
    EXPECT_TRUE(latency->getUint("count", count));
    EXPECT_EQ(count, 0u);
    EXPECT_DOUBLE_EQ(latency->find("p99")->number, 0.0);

    const int fd = connectUnixSocket(options.socketPath, &error);
    ASSERT_GE(fd, 0) << error;
    LineReader reader(fd);
    ASSERT_TRUE(sendAll(fd, rmatRequest(1, "alpha", 7, 1500, 11, 101)));
    ASSERT_TRUE(sendAll(fd, rmatRequest(2, "alpha", 7, 1500, 11, 101)));
    ASSERT_TRUE(sendAll(fd, "bad\n"));
    for (int i = 0; i < 3; ++i)
        readResponse(reader);

    ASSERT_TRUE(parseJson(daemon.statsJson(), v, error)) << error;
    const JsonValue *requests = v.find("requests");
    ASSERT_NE(requests, nullptr);
    std::uint64_t received = 0, served = 0, bad = 0;
    EXPECT_TRUE(requests->getUint("received", received));
    EXPECT_TRUE(requests->getUint("served", served));
    EXPECT_TRUE(requests->getUint("bad_request", bad));
    EXPECT_EQ(received, 3u);
    EXPECT_EQ(served, 2u);
    EXPECT_EQ(bad, 1u);

    latency = v.find("latency_ms");
    ASSERT_NE(latency, nullptr);
    EXPECT_TRUE(latency->getUint("count", count));
    EXPECT_EQ(count, 2u);
    EXPECT_GE(latency->find("p50")->number, 0.0);
    EXPECT_GE(latency->find("p99")->number,
              latency->find("p50")->number);

    const JsonValue *queue = v.find("queue");
    ASSERT_NE(queue, nullptr);
    std::uint64_t capacity = 0;
    EXPECT_TRUE(queue->getUint("capacity", capacity));
    EXPECT_EQ(capacity, 17u);

    // Both cache tiers are visible: the repeat request hit in memory.
    const JsonValue *cache = v.find("cache");
    ASSERT_NE(cache, nullptr);
    std::uint64_t hits = 0, misses = 0;
    EXPECT_TRUE(cache->getUint("hits", hits));
    EXPECT_TRUE(cache->getUint("misses", misses));
    EXPECT_EQ(hits, 1u);
    EXPECT_EQ(misses, 1u);
    ASSERT_NE(cache->find("disk_hits"), nullptr);
    ASSERT_NE(cache->find("disk_hit_rate"), nullptr);

    const JsonValue *tenants = v.find("tenants");
    ASSERT_NE(tenants, nullptr);
    const JsonValue *alpha = tenants->find("alpha");
    ASSERT_NE(alpha, nullptr);
    std::uint64_t alphaServed = 0;
    EXPECT_TRUE(alpha->getUint("served", alphaServed));
    EXPECT_EQ(alphaServed, 2u);

    ::close(fd);
    daemon.shutdown();
}

TEST(ServeDaemon, ShutdownIsGracefulAndIdempotent)
{
    DaemonOptions options;
    options.socketPath = socketPath("shutdown");
    auto daemon = std::make_unique<Daemon>(options);
    std::string error;
    ASSERT_TRUE(daemon->start(&error)) << error;

    const int fd = connectUnixSocket(options.socketPath, &error);
    ASSERT_GE(fd, 0) << error;
    ASSERT_TRUE(sendAll(fd, rmatRequest(1, "t", 7, 1500, 11, 101)));
    LineReader reader(fd);
    const JsonValue v = readResponse(reader);
    ASSERT_NE(v.find("ok"), nullptr);
    EXPECT_TRUE(v.find("ok")->boolean);
    daemon->shutdown();
    ::close(fd);

    daemon->shutdown(); // idempotent
    // The socket file is gone; a new connect must fail.
    EXPECT_LT(connectUnixSocket(options.socketPath, &error), 0);
    daemon.reset(); // destructor after explicit shutdown: no-op
}

} // namespace
} // namespace serve
} // namespace chason
