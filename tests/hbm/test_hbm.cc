/**
 * @file
 * Unit tests for the HBM device model.
 */

#include "hbm/hbm.h"

#include <gtest/gtest.h>

namespace chason {
namespace hbm {
namespace {

TEST(HbmConfig, U55cPreset)
{
    const HbmConfig cfg = HbmConfig::alveoU55c();
    EXPECT_EQ(cfg.totalChannels, 32u);
    EXPECT_EQ(cfg.channelBits, 512u);
    EXPECT_EQ(cfg.bytesPerBeat(), 64u);
    EXPECT_NEAR(cfg.peakBandwidthGBps(), 460.0, 1.0);
}

TEST(HbmConfig, U280Preset)
{
    const HbmConfig cfg = HbmConfig::alveoU280();
    EXPECT_NEAR(cfg.peakBandwidthGBps(), 273.0, 1.0);
}

TEST(ChannelCounter, Accounting)
{
    ChannelCounter c;
    c.recordBeats(Direction::Read, 10, 64);
    c.recordBeats(Direction::Write, 3, 64);
    EXPECT_EQ(c.readBeats(), 10u);
    EXPECT_EQ(c.writeBeats(), 3u);
    EXPECT_EQ(c.readBytes(), 640u);
    EXPECT_EQ(c.writeBytes(), 192u);
    EXPECT_EQ(c.totalBytes(), 832u);
    c.reset();
    EXPECT_EQ(c.totalBytes(), 0u);
}

TEST(HbmDevice, PerChannelTotals)
{
    HbmDevice dev(HbmConfig::alveoU55c());
    dev.recordBeats(0, Direction::Read, 100);
    dev.recordBeats(5, Direction::Write, 50);
    EXPECT_EQ(dev.channel(0).readBeats(), 100u);
    EXPECT_EQ(dev.channel(5).writeBeats(), 50u);
    EXPECT_EQ(dev.totalBeats(), 150u);
    EXPECT_EQ(dev.totalBytes(), 150u * 64);
    dev.reset();
    EXPECT_EQ(dev.totalBytes(), 0u);
}

TEST(HbmDevice, ChannelBoundsChecked)
{
    HbmDevice dev(HbmConfig::alveoU55c());
    EXPECT_DEATH(dev.recordBeats(32, Direction::Read, 1), "out of range");
    EXPECT_DEATH(dev.channel(99), "out of range");
}

TEST(HbmDevice, AchievedBandwidth)
{
    HbmDevice dev(HbmConfig::alveoU55c());
    // 1e6 beats on one channel at 250 MHz: 64 MB in 4 ms = 16 GB/s.
    dev.recordBeats(0, Direction::Read, 1000000);
    EXPECT_NEAR(dev.achievedBandwidthGBps(1000000, 250.0), 16.0, 0.01);
    EXPECT_DOUBLE_EQ(dev.achievedBandwidthGBps(0, 250.0), 0.0);
}

TEST(MinCycles, BeatRateLimited)
{
    const HbmConfig cfg = HbmConfig::alveoU55c();
    // At 200 MHz one channel moves 12.8 GB/s < 14.37: beat limited.
    // 64 MB over one channel: 1e6 beats = 1e6 cycles.
    EXPECT_EQ(minCyclesForBytes(cfg, 1, 64000000, 200.0), 1000000u);
}

TEST(MinCycles, BandwidthLimited)
{
    const HbmConfig cfg = HbmConfig::alveoU55c();
    // At 301 MHz a channel wants 19.26 GB/s but gets 14.37: more cycles
    // than beats.
    const std::uint64_t beats = 1000000;
    const std::uint64_t cycles =
        minCyclesForBytes(cfg, 1, beats * 64, 301.0);
    EXPECT_GT(cycles, beats);
    EXPECT_NEAR(static_cast<double>(cycles) / beats, 19.264 / 14.37,
                0.01);
}

TEST(MinCycles, ScalesWithChannels)
{
    const HbmConfig cfg = HbmConfig::alveoU55c();
    const std::uint64_t one = minCyclesForBytes(cfg, 1, 1 << 26, 200.0);
    const std::uint64_t sixteen =
        minCyclesForBytes(cfg, 16, 1 << 26, 200.0);
    EXPECT_NEAR(static_cast<double>(one) / sixteen, 16.0, 0.1);
}

} // namespace
} // namespace hbm
} // namespace chason
