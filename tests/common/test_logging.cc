/**
 * @file
 * Unit tests for the logging / assertion helpers.
 */

#include "common/logging.h"

#include <gtest/gtest.h>

namespace chason {
namespace {

TEST(Assert, PassingConditionIsSilent)
{
    chason_assert(1 + 1 == 2);
    chason_assert(true, "message %d", 42);
    SUCCEED();
}

TEST(AssertDeath, FailingConditionAborts)
{
    EXPECT_DEATH(chason_assert(false, "custom detail %d", 7),
                 "custom detail 7");
}

TEST(AssertDeath, ConditionTextIsReported)
{
    EXPECT_DEATH(chason_assert(2 > 3), "2 > 3");
}

TEST(PanicDeath, Aborts)
{
    EXPECT_DEATH(chason_panic("boom %s", "now"), "boom now");
}

TEST(FatalDeath, ExitsWithError)
{
    EXPECT_EXIT(chason_fatal("bad config: %d", -1),
                ::testing::ExitedWithCode(1), "bad config: -1");
}

TEST(Warn, DoesNotTerminate)
{
    warn("just a warning %d", 1);
    inform("just info");
    setInformEnabled(false);
    inform("suppressed");
    setInformEnabled(true);
    SUCCEED();
}

} // namespace
} // namespace chason
