/**
 * @file
 * Unit tests for statistics helpers.
 */

#include "common/stats.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <thread>
#include <utility>

namespace chason {
namespace {

TEST(SummaryStats, Basics)
{
    SummaryStats st;
    st.add({4.0, 1.0, 3.0, 2.0});
    EXPECT_EQ(st.count(), 4u);
    EXPECT_DOUBLE_EQ(st.min(), 1.0);
    EXPECT_DOUBLE_EQ(st.max(), 4.0);
    EXPECT_DOUBLE_EQ(st.sum(), 10.0);
    EXPECT_DOUBLE_EQ(st.mean(), 2.5);
    EXPECT_DOUBLE_EQ(st.median(), 2.5);
}

TEST(SummaryStats, Geomean)
{
    SummaryStats st;
    st.add({1.0, 4.0});
    EXPECT_DOUBLE_EQ(st.geomean(), 2.0);
    st.add(2.0);
    EXPECT_NEAR(st.geomean(), 2.0, 1e-12);
}

TEST(SummaryStats, GeomeanRejectsNonPositive)
{
    SummaryStats st;
    st.add({1.0, -2.0});
    EXPECT_DEATH(st.geomean(), "positive");
}

TEST(SummaryStats, Percentiles)
{
    SummaryStats st;
    for (int i = 0; i <= 100; ++i)
        st.add(static_cast<double>(i));
    EXPECT_DOUBLE_EQ(st.percentile(0), 0.0);
    EXPECT_DOUBLE_EQ(st.percentile(50), 50.0);
    EXPECT_DOUBLE_EQ(st.percentile(100), 100.0);
    EXPECT_NEAR(st.percentile(25), 25.0, 1e-9);
}

TEST(SummaryStats, PercentileExtremesAndTwoSamples)
{
    SummaryStats st;
    st.add({3.0, 7.0});
    // p=0 / p=100 are exactly min / max, no interpolation residue.
    EXPECT_DOUBLE_EQ(st.percentile(0.0), 3.0);
    EXPECT_DOUBLE_EQ(st.percentile(100.0), 7.0);
    // Linear interpolation between the only two samples.
    EXPECT_DOUBLE_EQ(st.percentile(50.0), 5.0);
    EXPECT_DOUBLE_EQ(st.percentile(25.0), 4.0);
    EXPECT_DOUBLE_EQ(st.percentile(75.0), 6.0);
}

TEST(SummaryStats, PercentileSingleSample)
{
    SummaryStats st;
    st.add(42.0);
    EXPECT_DOUBLE_EQ(st.percentile(0.0), 42.0);
    EXPECT_DOUBLE_EQ(st.percentile(50.0), 42.0);
    EXPECT_DOUBLE_EQ(st.percentile(100.0), 42.0);
}

TEST(SummaryStats, PercentileDuplicateHeavy)
{
    // 90 copies of 1.0 and 10 of 2.0: every percentile through the
    // duplicate mass must return the duplicate, and p=100 the max.
    SummaryStats st;
    for (int i = 0; i < 90; ++i)
        st.add(1.0);
    for (int i = 0; i < 10; ++i)
        st.add(2.0);
    EXPECT_DOUBLE_EQ(st.percentile(0.0), 1.0);
    EXPECT_DOUBLE_EQ(st.percentile(50.0), 1.0);
    EXPECT_DOUBLE_EQ(st.percentile(80.0), 1.0);
    EXPECT_DOUBLE_EQ(st.percentile(100.0), 2.0);
    // All-duplicates: interpolation between equal neighbours is exact.
    SummaryStats dup;
    dup.add({5.0, 5.0, 5.0, 5.0});
    EXPECT_DOUBLE_EQ(dup.percentile(33.3), 5.0);
    EXPECT_DOUBLE_EQ(dup.percentile(66.6), 5.0);
}

TEST(SummaryStats, StddevKnown)
{
    SummaryStats st;
    st.add({2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0});
    EXPECT_DOUBLE_EQ(st.stddev(), 2.0);
}

TEST(SummaryStats, AddAfterQueryInvalidatesCache)
{
    SummaryStats st;
    st.add(1.0);
    EXPECT_DOUBLE_EQ(st.max(), 1.0);
    st.add(5.0);
    EXPECT_DOUBLE_EQ(st.max(), 5.0);
}

TEST(Histogram, BinningAndFrequency)
{
    Histogram h(0.0, 100.0, 10);
    for (int i = 0; i < 10; ++i)
        h.add(5.0); // bin 0
    h.add(95.0);    // bin 9
    EXPECT_EQ(h.count(0), 10u);
    EXPECT_EQ(h.count(9), 1u);
    EXPECT_EQ(h.total(), 11u);
    EXPECT_NEAR(h.frequency(0), 10.0 / 11.0, 1e-12);
    EXPECT_EQ(h.modeBin(), 0u);
    EXPECT_DOUBLE_EQ(h.binCenter(0), 5.0);
}

TEST(Histogram, ClampsOutOfRange)
{
    Histogram h(0.0, 10.0, 5);
    h.add(-100.0);
    h.add(1e9);
    EXPECT_EQ(h.count(0), 1u);
    EXPECT_EQ(h.count(4), 1u);
}

TEST(Histogram, EdgeSamplesLandInEdgeBins)
{
    // A sample exactly at hi must land in the last bin, not be dropped
    // or clamped into a phantom bin past the end; exactly at lo must
    // land in bin 0. Interior bin boundaries belong to the upper bin.
    Histogram h(0.0, 100.0, 10);
    h.add(0.0);   // == lo
    h.add(100.0); // == hi
    h.add(10.0);  // interior boundary -> bin 1
    h.add(90.0);  // last bin's lower edge -> bin 9
    EXPECT_EQ(h.count(0), 1u);
    EXPECT_EQ(h.count(1), 1u);
    EXPECT_EQ(h.count(9), 2u);
    EXPECT_EQ(h.total(), 4u);
}

TEST(Histogram, HiLandsInLastBinForAwkwardWidths)
{
    // (hi - lo) / bins is not exactly representable here; the explicit
    // sample >= hi branch must still place hi in the last bin.
    Histogram h(0.0, 1.0, 3);
    h.add(1.0);
    h.add(std::nextafter(1.0, 0.0)); // just below hi
    EXPECT_EQ(h.count(2), 2u);
    Histogram w(0.1, 0.7, 7);
    w.add(0.7);
    w.add(0.1);
    EXPECT_EQ(w.count(6), 1u);
    EXPECT_EQ(w.count(0), 1u);
    EXPECT_EQ(w.total(), 2u);
}

TEST(Histogram, DensityIntegratesToOne)
{
    Histogram h(0.0, 1.0, 4);
    for (int i = 0; i < 100; ++i)
        h.add(i / 100.0);
    double integral = 0.0;
    for (std::size_t b = 0; b < h.bins(); ++b)
        integral += h.density(b) * 0.25;
    EXPECT_NEAR(integral, 1.0, 1e-9);
}

TEST(KdePdf, PeakNearSampleMass)
{
    std::vector<double> samples;
    for (int i = 0; i < 200; ++i)
        samples.push_back(70.0 + (i % 10) * 0.1);
    KdePdf kde(samples);
    EXPECT_NEAR(kde.peak(0.0, 100.0), 70.5, 2.0);
}

TEST(KdePdf, DensityIntegratesToOne)
{
    std::vector<double> samples = {10, 20, 30, 40, 50};
    KdePdf kde(samples);
    const auto grid = kde.evaluate(-100.0, 160.0, 2000);
    double integral = 0.0;
    const double dx = 260.0 / 1999.0;
    for (const auto &[x, d] : grid)
        integral += d * dx;
    EXPECT_NEAR(integral, 1.0, 0.01);
}

TEST(KdePdf, ExplicitBandwidth)
{
    KdePdf kde({0.0}, 1.0);
    EXPECT_DOUBLE_EQ(kde.bandwidth(), 1.0);
    // Standard normal density at 0.
    EXPECT_NEAR(kde.density(0.0), 1.0 / std::sqrt(2.0 * M_PI), 1e-9);
}

TEST(Geomean, FreeFunction)
{
    EXPECT_DOUBLE_EQ(geomean({2.0, 8.0}), 4.0);
}

// Regression for the daemon's latency reporter: two threads reading
// p50/p99 from a shared const instance used to race on the mutable
// sorted_ cache. Run under TSAN by run_all.sh's concurrency leg.
TEST(SummaryStats, ConcurrentConstReadsAreSafe)
{
    SummaryStats st;
    for (int i = 999; i >= 0; --i)
        st.add(static_cast<double>(i));
    const SummaryStats &shared = st;

    // The cache is cold when the threads start, so they also race the
    // first lazy sort, not just steady-state reads.
    constexpr int kThreads = 8;
    constexpr int kIters = 200;
    std::vector<std::thread> threads;
    std::vector<double> p50(kThreads), p99(kThreads);
    std::atomic<int> failures{0};
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&, t] {
            p50[t] = shared.percentile(50.0);
            p99[t] = shared.percentile(99.0);
            for (int i = 0; i < kIters; ++i) {
                if (shared.percentile(50.0) != p50[t] ||
                    shared.percentile(99.0) != p99[t] ||
                    shared.min() != 0.0 || shared.max() != 999.0)
                    failures.fetch_add(1);
            }
        });
    }
    for (auto &thread : threads)
        thread.join();
    EXPECT_EQ(failures.load(), 0);
    for (int t = 0; t < kThreads; ++t) {
        EXPECT_EQ(p50[t], shared.percentile(50.0));
        EXPECT_EQ(p99[t], shared.percentile(99.0));
    }
}

TEST(SummaryStats, CopyAndMoveDropTheCache)
{
    SummaryStats st;
    st.add({3.0, 1.0, 2.0});
    EXPECT_DOUBLE_EQ(st.median(), 2.0); // builds the sorted cache

    SummaryStats copy(st);
    copy.add(10.0);
    EXPECT_DOUBLE_EQ(copy.max(), 10.0);
    EXPECT_DOUBLE_EQ(st.max(), 3.0);

    SummaryStats assigned;
    assigned = copy;
    EXPECT_DOUBLE_EQ(assigned.max(), 10.0);

    SummaryStats moved(std::move(copy));
    EXPECT_DOUBLE_EQ(moved.max(), 10.0);
    EXPECT_EQ(moved.count(), 4u);
}

} // namespace
} // namespace chason
