/**
 * @file
 * Unit tests for statistics helpers.
 */

#include "common/stats.h"

#include <gtest/gtest.h>

#include <cmath>

namespace chason {
namespace {

TEST(SummaryStats, Basics)
{
    SummaryStats st;
    st.add({4.0, 1.0, 3.0, 2.0});
    EXPECT_EQ(st.count(), 4u);
    EXPECT_DOUBLE_EQ(st.min(), 1.0);
    EXPECT_DOUBLE_EQ(st.max(), 4.0);
    EXPECT_DOUBLE_EQ(st.sum(), 10.0);
    EXPECT_DOUBLE_EQ(st.mean(), 2.5);
    EXPECT_DOUBLE_EQ(st.median(), 2.5);
}

TEST(SummaryStats, Geomean)
{
    SummaryStats st;
    st.add({1.0, 4.0});
    EXPECT_DOUBLE_EQ(st.geomean(), 2.0);
    st.add(2.0);
    EXPECT_NEAR(st.geomean(), 2.0, 1e-12);
}

TEST(SummaryStats, GeomeanRejectsNonPositive)
{
    SummaryStats st;
    st.add({1.0, -2.0});
    EXPECT_DEATH(st.geomean(), "positive");
}

TEST(SummaryStats, Percentiles)
{
    SummaryStats st;
    for (int i = 0; i <= 100; ++i)
        st.add(static_cast<double>(i));
    EXPECT_DOUBLE_EQ(st.percentile(0), 0.0);
    EXPECT_DOUBLE_EQ(st.percentile(50), 50.0);
    EXPECT_DOUBLE_EQ(st.percentile(100), 100.0);
    EXPECT_NEAR(st.percentile(25), 25.0, 1e-9);
}

TEST(SummaryStats, StddevKnown)
{
    SummaryStats st;
    st.add({2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0});
    EXPECT_DOUBLE_EQ(st.stddev(), 2.0);
}

TEST(SummaryStats, AddAfterQueryInvalidatesCache)
{
    SummaryStats st;
    st.add(1.0);
    EXPECT_DOUBLE_EQ(st.max(), 1.0);
    st.add(5.0);
    EXPECT_DOUBLE_EQ(st.max(), 5.0);
}

TEST(Histogram, BinningAndFrequency)
{
    Histogram h(0.0, 100.0, 10);
    for (int i = 0; i < 10; ++i)
        h.add(5.0); // bin 0
    h.add(95.0);    // bin 9
    EXPECT_EQ(h.count(0), 10u);
    EXPECT_EQ(h.count(9), 1u);
    EXPECT_EQ(h.total(), 11u);
    EXPECT_NEAR(h.frequency(0), 10.0 / 11.0, 1e-12);
    EXPECT_EQ(h.modeBin(), 0u);
    EXPECT_DOUBLE_EQ(h.binCenter(0), 5.0);
}

TEST(Histogram, ClampsOutOfRange)
{
    Histogram h(0.0, 10.0, 5);
    h.add(-100.0);
    h.add(1e9);
    EXPECT_EQ(h.count(0), 1u);
    EXPECT_EQ(h.count(4), 1u);
}

TEST(Histogram, DensityIntegratesToOne)
{
    Histogram h(0.0, 1.0, 4);
    for (int i = 0; i < 100; ++i)
        h.add(i / 100.0);
    double integral = 0.0;
    for (std::size_t b = 0; b < h.bins(); ++b)
        integral += h.density(b) * 0.25;
    EXPECT_NEAR(integral, 1.0, 1e-9);
}

TEST(KdePdf, PeakNearSampleMass)
{
    std::vector<double> samples;
    for (int i = 0; i < 200; ++i)
        samples.push_back(70.0 + (i % 10) * 0.1);
    KdePdf kde(samples);
    EXPECT_NEAR(kde.peak(0.0, 100.0), 70.5, 2.0);
}

TEST(KdePdf, DensityIntegratesToOne)
{
    std::vector<double> samples = {10, 20, 30, 40, 50};
    KdePdf kde(samples);
    const auto grid = kde.evaluate(-100.0, 160.0, 2000);
    double integral = 0.0;
    const double dx = 260.0 / 1999.0;
    for (const auto &[x, d] : grid)
        integral += d * dx;
    EXPECT_NEAR(integral, 1.0, 0.01);
}

TEST(KdePdf, ExplicitBandwidth)
{
    KdePdf kde({0.0}, 1.0);
    EXPECT_DOUBLE_EQ(kde.bandwidth(), 1.0);
    // Standard normal density at 0.
    EXPECT_NEAR(kde.density(0.0), 1.0 / std::sqrt(2.0 * M_PI), 1e-9);
}

TEST(Geomean, FreeFunction)
{
    EXPECT_DOUBLE_EQ(geomean({2.0, 8.0}), 4.0);
}

} // namespace
} // namespace chason
