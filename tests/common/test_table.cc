/**
 * @file
 * Unit tests for the text table formatter.
 */

#include "common/table.h"

#include <gtest/gtest.h>

namespace chason {
namespace {

TEST(TextTable, AlignsColumns)
{
    TextTable t;
    t.setHeader({"id", "value"});
    t.addRow({"a", "1"});
    t.addRow({"long-name", "22"});
    const std::string s = t.toString();
    EXPECT_NE(s.find("id         value"), std::string::npos);
    EXPECT_NE(s.find("long-name  22"), std::string::npos);
    EXPECT_NE(s.find("---"), std::string::npos);
    EXPECT_EQ(t.rows(), 2u);
}

TEST(TextTable, NoHeaderNoSeparator)
{
    TextTable t;
    t.addRow({"x", "y"});
    EXPECT_EQ(t.toString().find("---"), std::string::npos);
}

TEST(TextTable, RaggedRows)
{
    TextTable t;
    t.addRow({"a"});
    t.addRow({"b", "c", "d"});
    const std::string s = t.toString();
    EXPECT_NE(s.find("b  c  d"), std::string::npos);
}

TEST(TextTable, Formatters)
{
    EXPECT_EQ(TextTable::num(3.14159, 2), "3.14");
    EXPECT_EQ(TextTable::pct(42.5, 1), "42.5%");
    EXPECT_EQ(TextTable::speedup(6.096, 2), "6.10x");
}

} // namespace
} // namespace chason
