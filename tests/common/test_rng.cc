/**
 * @file
 * Unit and statistical tests for the deterministic RNG.
 */

#include "common/rng.h"

#include <gtest/gtest.h>

#include <set>

namespace chason {
namespace {

TEST(Rng, DeterministicForSeed)
{
    Rng a(123), b(123);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i) {
        if (a.next() == b.next())
            ++same;
    }
    EXPECT_LT(same, 2);
}

TEST(Rng, NextBoundedInRange)
{
    Rng rng(7);
    for (int i = 0; i < 10000; ++i)
        EXPECT_LT(rng.nextBounded(17), 17u);
}

TEST(Rng, NextBoundedCoversRange)
{
    Rng rng(9);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 1000; ++i)
        seen.insert(rng.nextBounded(8));
    EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, NextRangeInclusive)
{
    Rng rng(11);
    bool hit_lo = false, hit_hi = false;
    for (int i = 0; i < 5000; ++i) {
        const std::int64_t v = rng.nextRange(-3, 3);
        EXPECT_GE(v, -3);
        EXPECT_LE(v, 3);
        hit_lo |= v == -3;
        hit_hi |= v == 3;
    }
    EXPECT_TRUE(hit_lo);
    EXPECT_TRUE(hit_hi);
}

TEST(Rng, NextDoubleUniformish)
{
    Rng rng(13);
    double sum = 0.0;
    for (int i = 0; i < 20000; ++i) {
        const double v = rng.nextDouble();
        ASSERT_GE(v, 0.0);
        ASSERT_LT(v, 1.0);
        sum += v;
    }
    EXPECT_NEAR(sum / 20000.0, 0.5, 0.02);
}

TEST(Rng, NextBoolProbability)
{
    Rng rng(17);
    int hits = 0;
    for (int i = 0; i < 20000; ++i)
        hits += rng.nextBool(0.3);
    EXPECT_NEAR(hits / 20000.0, 0.3, 0.02);
}

TEST(Rng, GaussianMoments)
{
    Rng rng(19);
    double sum = 0.0, sq = 0.0;
    const int n = 50000;
    for (int i = 0; i < n; ++i) {
        const double v = rng.nextGaussian();
        sum += v;
        sq += v * v;
    }
    EXPECT_NEAR(sum / n, 0.0, 0.03);
    EXPECT_NEAR(sq / n, 1.0, 0.05);
}

TEST(Rng, ZipfHeavyHead)
{
    Rng rng(23);
    int head = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) {
        const std::uint64_t r = rng.nextZipf(1000, 2.0);
        EXPECT_LT(r, 1000u);
        head += r == 0;
    }
    // Rank 0 carries ~ 1/zeta(2) ~ 61% of the mass.
    EXPECT_GT(head, n / 2);
}

TEST(Rng, SplitIndependentStreams)
{
    Rng a(31);
    Rng b = a.split();
    int same = 0;
    for (int i = 0; i < 64; ++i) {
        if (a.next() == b.next())
            ++same;
    }
    EXPECT_LT(same, 2);
}

TEST(Rng, ForStreamIsPureAndIndependent)
{
    // Pure function of (seed, stream): reconstructing the generator
    // yields the identical sequence — the per-worker determinism rule.
    Rng a = Rng::forStream(0xBEEF, 7);
    Rng b = Rng::forStream(0xBEEF, 7);
    for (int i = 0; i < 16; ++i)
        EXPECT_EQ(a.next(), b.next());

    // Adjacent streams and adjacent seeds are decorrelated.
    Rng c = Rng::forStream(0xBEEF, 8);
    Rng d = Rng::forStream(0xBEF0, 7);
    int same_stream = 0, same_seed = 0;
    for (int i = 0; i < 64; ++i) {
        const std::uint64_t r = a.next();
        same_stream += r == c.next();
        same_seed += r == d.next();
    }
    EXPECT_LT(same_stream, 2);
    EXPECT_LT(same_seed, 2);
}

TEST(SplitMix, KnownSequenceIsStable)
{
    std::uint64_t s = 0;
    const std::uint64_t first = splitMix64(s);
    const std::uint64_t second = splitMix64(s);
    EXPECT_NE(first, second);
    std::uint64_t s2 = 0;
    EXPECT_EQ(splitMix64(s2), first);
}

} // namespace
} // namespace chason
