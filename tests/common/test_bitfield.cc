/**
 * @file
 * Unit tests for the bit-field helpers.
 */

#include "common/bitfield.h"

#include <gtest/gtest.h>

namespace chason {
namespace {

TEST(MaskBits, Widths)
{
    EXPECT_EQ(maskBits(0), 0u);
    EXPECT_EQ(maskBits(1), 1u);
    EXPECT_EQ(maskBits(13), 0x1fffu);
    EXPECT_EQ(maskBits(15), 0x7fffu);
    EXPECT_EQ(maskBits(32), 0xffffffffull);
    EXPECT_EQ(maskBits(64), ~0ull);
}

TEST(ExtractBits, Basic)
{
    const std::uint64_t word = 0xDEADBEEFCAFEF00Dull;
    EXPECT_EQ(extractBits(word, 0, 4), 0xDu);
    EXPECT_EQ(extractBits(word, 4, 8), 0x00u);
    EXPECT_EQ(extractBits(word, 32, 32), 0xDEADBEEFull);
    EXPECT_EQ(extractBits(word, 0, 64), word);
}

TEST(InsertBits, RoundTrip)
{
    std::uint64_t word = 0;
    word = insertBits(word, 0, 13, 0x1abc);
    word = insertBits(word, 13, 3, 5);
    word = insertBits(word, 16, 1, 1);
    word = insertBits(word, 17, 15, 0x7fff);
    EXPECT_EQ(extractBits(word, 0, 13), 0x1abcu);
    EXPECT_EQ(extractBits(word, 13, 3), 5u);
    EXPECT_EQ(extractBits(word, 16, 1), 1u);
    EXPECT_EQ(extractBits(word, 17, 15), 0x7fffu);
}

TEST(InsertBits, Overwrite)
{
    std::uint64_t word = ~0ull;
    word = insertBits(word, 8, 8, 0x00);
    EXPECT_EQ(extractBits(word, 8, 8), 0x00u);
    EXPECT_EQ(extractBits(word, 0, 8), 0xffu);
    EXPECT_EQ(extractBits(word, 16, 8), 0xffu);
}

TEST(InsertBits, OverflowPanics)
{
    EXPECT_DEATH(insertBits(0, 0, 3, 8), "does not fit");
}

TEST(FloatBits, RoundTrip)
{
    const float values[] = {0.0f, 1.0f, -1.0f, 3.14159f, 1e-30f, -1e30f};
    for (float v : values)
        EXPECT_EQ(bitsToFloat(floatToBits(v)), v);
}

TEST(FloatBits, KnownPattern)
{
    EXPECT_EQ(floatToBits(1.0f), 0x3f800000u);
    EXPECT_EQ(bitsToFloat(0x40490fdbu), 3.14159274f);
}

} // namespace
} // namespace chason
