/**
 * @file
 * PagePool unit tests: recycling, accounting, trim and the cap.
 *
 * The pool is thread-local and tuned by environment variables read at
 * first use, so these tests only assert behavior that holds under
 * every configuration — including the sanitizer builds where pooling
 * is disabled and every call falls through to malloc/free.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "common/pagepool.h"

namespace chason {
namespace common {
namespace {

TEST(PagePool, AllocatesUsableMemoryAcrossSizes)
{
    for (const std::size_t bytes :
         {std::size_t{1}, std::size_t{64}, std::size_t{1} << 12,
          std::size_t{1} << 16, (std::size_t{1} << 20) + 3}) {
        void *p = pagePoolAlloc(bytes);
        ASSERT_NE(p, nullptr);
        // Touch every page: the block must be real, writable memory.
        std::memset(p, 0xAB, bytes);
        pagePoolFree(p, bytes);
    }
}

TEST(PagePool, RecyclesLargeBlocksWhenPoolingIsOn)
{
    pagePoolTrim(); // leftovers from other tests would skew held bytes
    constexpr std::size_t kBytes = std::size_t{1} << 16;
    void *first = pagePoolAlloc(kBytes);
    ASSERT_NE(first, nullptr);
    pagePoolFree(first, kBytes);
    if (pagePoolHeldBytes() == 0) {
        // Pooling disabled (sanitizer build or CHASON_POOL_MB=0):
        // recycling is intentionally off, nothing further to assert.
        return;
    }
    // Same size class must hand the retained block straight back.
    void *second = pagePoolAlloc(kBytes);
    EXPECT_EQ(second, first);
    EXPECT_EQ(pagePoolHeldBytes(), 0u);
    pagePoolFree(second, kBytes);
    pagePoolTrim();
}

TEST(PagePool, HeldBytesTracksFreesAndTrimReleasesAll)
{
    pagePoolTrim();
    std::vector<void *> blocks;
    constexpr std::size_t kBytes = std::size_t{1} << 14;
    for (int i = 0; i < 4; ++i)
        blocks.push_back(pagePoolAlloc(kBytes));
    EXPECT_EQ(pagePoolHeldBytes(), 0u); // live blocks are not "held"
    for (void *p : blocks)
        pagePoolFree(p, kBytes);
    // Either pooling is off (0 held) or all four round-up classes are.
    const std::size_t held = pagePoolHeldBytes();
    if (held != 0)
        EXPECT_EQ(held, 4 * kBytes);
    pagePoolTrim();
    EXPECT_EQ(pagePoolHeldBytes(), 0u);
}

TEST(PagePool, SubPageAllocationsBypassTheFreelists)
{
    pagePoolTrim();
    void *p = pagePoolAlloc(256); // below the 4 KiB pooling floor
    ASSERT_NE(p, nullptr);
    pagePoolFree(p, 256);
    EXPECT_EQ(pagePoolHeldBytes(), 0u);
}

} // namespace
} // namespace common
} // namespace chason
