/**
 * @file
 * Unit tests for the environment-variable gateway.
 *
 * envUint must return the documented fallback on *any* parse failure:
 * a mistyped CHASON_JOBS=garbage once clamped to 0 and silently
 * disabled parallelism instead of using the default. The setenv calls
 * here are sound with respect to env.cc's getenv soundness note: the
 * test body runs single-threaded.
 */

#include "common/env.h"

#include <cstdlib>

#include <gtest/gtest.h>

namespace chason {
namespace common {
namespace {

constexpr const char *kVar = "CHASON_TEST_ENV_UINT";
constexpr std::uint64_t kFallback = 42;

std::uint64_t
parsedAs(const char *value)
{
    ::setenv(kVar, value, 1);
    const std::uint64_t result = envUint(kVar, kFallback);
    ::unsetenv(kVar);
    return result;
}

TEST(EnvUint, UnsetReturnsFallback)
{
    ::unsetenv(kVar);
    EXPECT_EQ(envUint(kVar, kFallback), kFallback);
    EXPECT_EQ(envUint(kVar, 0), 0u);
}

TEST(EnvUint, ParsesPlainIntegers)
{
    EXPECT_EQ(parsedAs("0"), 0u);
    EXPECT_EQ(parsedAs("1"), 1u);
    EXPECT_EQ(parsedAs("8"), 8u);
    EXPECT_EQ(parsedAs("1048576"), 1048576u);
    // strtoll skips leading whitespace; that is still one integer.
    EXPECT_EQ(parsedAs("  16"), 16u);
    EXPECT_EQ(parsedAs("+3"), 3u);
}

TEST(EnvUint, EmptyReturnsFallback)
{
    EXPECT_EQ(parsedAs(""), kFallback);
}

TEST(EnvUint, GarbageReturnsFallback)
{
    EXPECT_EQ(parsedAs("garbage"), kFallback);
    EXPECT_EQ(parsedAs("x4"), kFallback);
    EXPECT_EQ(parsedAs("--2"), kFallback);
    EXPECT_EQ(parsedAs(" "), kFallback);
}

TEST(EnvUint, TrailingJunkReturnsFallback)
{
    EXPECT_EQ(parsedAs("4x"), kFallback);
    EXPECT_EQ(parsedAs("4 "), kFallback);
    EXPECT_EQ(parsedAs("4.5"), kFallback);
    EXPECT_EQ(parsedAs("4,096"), kFallback);
    EXPECT_EQ(parsedAs("0x10"), kFallback);
}

TEST(EnvUint, NegativeReturnsFallback)
{
    EXPECT_EQ(parsedAs("-1"), kFallback);
    EXPECT_EQ(parsedAs("-9999999999999999999999"), kFallback);
}

TEST(EnvUint, OverflowReturnsFallback)
{
    // Saturates strtoll (ERANGE) — must not silently cap.
    EXPECT_EQ(parsedAs("9223372036854775808"), kFallback);
    EXPECT_EQ(parsedAs("99999999999999999999999999"), kFallback);
    // Largest representable value still parses.
    EXPECT_EQ(parsedAs("9223372036854775807"),
              9223372036854775807ull);
}

TEST(EnvString, FallbackAndCopyOut)
{
    ::unsetenv(kVar);
    EXPECT_EQ(envString(kVar, "dflt"), "dflt");
    EXPECT_FALSE(envIsSet(kVar));
    ::setenv(kVar, "", 1);
    EXPECT_TRUE(envIsSet(kVar));
    EXPECT_EQ(envString(kVar, "dflt"), "");
    ::setenv(kVar, "value", 1);
    EXPECT_EQ(envString(kVar, "dflt"), "value");
    ::unsetenv(kVar);
}

} // namespace
} // namespace common
} // namespace chason
