/**
 * @file
 * Tests for the TAPA-stub runtime and the Fig. 6 dataflow kernel.
 */

#include "hls/spmv_kernel.h"

#include <gtest/gtest.h>

#include <atomic>

#include "arch/chason_accel.h"
#include "common/rng.h"
#include "hls/tapa_stub.h"
#include "sched/crhcs.h"
#include "sparse/generators.h"

namespace chason {
namespace hls {
namespace {

TEST(Stream, FifoOrderAndClose)
{
    Stream<int> s(4);
    s.write(1);
    s.write(2);
    s.close();
    EXPECT_EQ(s.read(), 1);
    EXPECT_EQ(s.read(), 2);
    EXPECT_EQ(s.read(), std::nullopt);
    EXPECT_EQ(s.read(), std::nullopt); // stays drained
}

TEST(Stream, BackpressureBlocksProducer)
{
    Stream<int> s(1);
    std::atomic<int> produced{0};
    TaskGroup tasks;
    tasks.invoke([&s, &produced] {
        for (int i = 0; i < 100; ++i) {
            s.write(i);
            produced.fetch_add(1);
        }
        s.close();
    });
    int expected = 0;
    while (auto v = s.read()) {
        EXPECT_EQ(*v, expected);
        ++expected;
    }
    tasks.join();
    EXPECT_EQ(expected, 100);
    EXPECT_EQ(produced.load(), 100);
}

TEST(StreamDeath, WriteAfterClosePanics)
{
    Stream<int> s(2);
    s.close();
    EXPECT_DEATH(s.write(1), "closed");
}

TEST(TaskGroup, JoinWaitsForAll)
{
    std::atomic<int> done{0};
    {
        TaskGroup tasks;
        for (int i = 0; i < 8; ++i)
            tasks.invoke([&done] { done.fetch_add(1); });
        tasks.join();
        EXPECT_EQ(done.load(), 8);
    }
}

struct DataflowCase
{
    std::string name;
    std::uint64_t seed;
    std::function<sparse::CsrMatrix(Rng &)> make;
};

std::vector<DataflowCase>
cases()
{
    return {
        {"erdos", 1,
         [](Rng &r) { return sparse::erdosRenyi(400, 700, 5000, r); }},
        {"zipf", 2,
         [](Rng &r) { return sparse::zipfRows(300, 300, 4000, 1.3, r); }},
        {"arrow", 3,
         [](Rng &r) { return sparse::arrowBanded(500, 5, 0.3, 3, r); }},
        {"multiwindow", 4,
         [](Rng &r) { return sparse::erdosRenyi(200, 20000, 8000, r); }},
        {"multipass", 5,
         [](Rng &r) { return sparse::erdosRenyi(600000, 64, 30000, r); }},
        {"mycielskian", 6, [](Rng &) { return sparse::mycielskian(7); }},
    };
}

class DataflowEquivalence
    : public ::testing::TestWithParam<DataflowCase>
{
};

TEST_P(DataflowEquivalence, BitExactAgainstBeatSimulator)
{
    Rng rng(GetParam().seed);
    const sparse::CsrMatrix a = GetParam().make(rng);
    const std::vector<float> x = sparse::randomVector(a.cols(), rng);

    const arch::ArchConfig cfg;
    const sched::Schedule sch =
        sched::CrhcsScheduler(cfg.sched).schedule(a);

    const arch::RunResult simulated =
        arch::ChasonAccelerator(cfg).run(sch, x);
    const std::vector<float> dataflow = runDataflowSpmv(sch, x);

    ASSERT_EQ(dataflow.size(), simulated.y.size());
    for (std::size_t i = 0; i < dataflow.size(); ++i) {
        ASSERT_EQ(dataflow[i], simulated.y[i])
            << "row " << i << " of " << GetParam().name;
    }
}

INSTANTIATE_TEST_SUITE_P(
    Families, DataflowEquivalence, ::testing::ValuesIn(cases()),
    [](const auto &info) { return info.param.name; });

TEST(Dataflow, EmptyScheduleGivesZeros)
{
    sparse::CooMatrix coo(32, 32);
    const sched::Schedule sch =
        sched::CrhcsScheduler(sched::SchedConfig{}).schedule(coo.toCsr());
    const std::vector<float> x(32, 1.0f);
    for (float v : runDataflowSpmv(sch, x))
        EXPECT_EQ(v, 0.0f);
}

TEST(DataflowDeath, RejectsDeepMigration)
{
    Rng rng(9);
    const sparse::CsrMatrix a = sparse::erdosRenyi(64, 64, 400, rng);
    sched::SchedConfig cfg;
    cfg.migrationDepth = 2;
    const sched::Schedule sch = sched::CrhcsScheduler(cfg).schedule(a);
    const std::vector<float> x(64, 1.0f);
    EXPECT_DEATH(runDataflowSpmv(sch, x), "depth-1");
}

} // namespace
} // namespace hls
} // namespace chason
