/**
 * @file
 * Unit tests for the tracing layer: sink recording, counters, scoped
 * thread-local activation, and the Chrome trace_event exporter.
 */

#include "trace/trace.h"

#include <thread>

#include <gtest/gtest.h>

#include "trace/chrome_export.h"

namespace chason {
namespace trace {
namespace {

SpanEvent
deviceSpan(const char *name, Category cat, std::uint32_t track,
           double begin, double dur)
{
    SpanEvent s;
    s.name = name;
    s.cat = cat;
    s.track = track;
    s.device = true;
    s.begin = begin;
    s.dur = dur;
    return s;
}

TEST(TraceSink, StartsEmpty)
{
    TraceSink sink;
    EXPECT_TRUE(sink.empty());
    EXPECT_TRUE(sink.spans().empty());
    EXPECT_TRUE(sink.counters().empty());
}

TEST(TraceSink, RecordsSpansAndInstants)
{
    TraceSink sink;
    sink.recordSpan(deviceSpan("busy", Category::MatrixStream, 3, 0, 10));
    sink.recordInstant("cache_hit", 0, 1.5);
    EXPECT_FALSE(sink.empty());
    ASSERT_EQ(sink.spans().size(), 1u);
    EXPECT_EQ(sink.spans()[0].name, "busy");
    EXPECT_EQ(sink.spans()[0].track, 3u);
    ASSERT_EQ(sink.instants().size(), 1u);
    EXPECT_EQ(sink.instants()[0].name, "cache_hit");
}

TEST(TraceSink, CountersAccumulate)
{
    TraceSink sink;
    sink.addCounter("schedule_cache.hits");
    sink.addCounter("schedule_cache.hits", 4);
    sink.addCounter("schedule_cache.misses");
    const auto counters = sink.counters();
    EXPECT_EQ(counters.at("schedule_cache.hits"), 5u);
    EXPECT_EQ(counters.at("schedule_cache.misses"), 1u);
}

TEST(TraceSink, SampledCountersKeepTimestamps)
{
    TraceSink sink;
    sink.sampleCounter("thread_pool.queue_depth", 3.0);
    sink.sampleCounter("thread_pool.queue_depth", 7.0);
    const auto samples = sink.samples();
    ASSERT_EQ(samples.size(), 2u);
    EXPECT_EQ(samples[0].value, 3.0);
    EXPECT_EQ(samples[1].value, 7.0);
    EXPECT_LE(samples[0].tsUs, samples[1].tsUs);
}

TEST(TraceSink, CategoryCyclesSumsDeviceSpansOnly)
{
    TraceSink sink;
    sink.recordSpan(deviceSpan("a", Category::MatrixStream, 0, 0, 10));
    sink.recordSpan(deviceSpan("b", Category::MatrixStream, 1, 0, 32));
    sink.recordSpan(deviceSpan("c", Category::Reduction, 0xffff, 10, 5));
    SpanEvent host;
    host.name = "host-side";
    host.cat = Category::Host;
    host.dur = 1e6; // must not leak into device totals
    sink.recordSpan(host);

    const auto totals = sink.categoryCycles();
    EXPECT_EQ(totals.at("matrix_stream"), 42u);
    EXPECT_EQ(totals.at("reduction"), 5u);
    EXPECT_EQ(totals.at("writeback"), 0u);
    EXPECT_EQ(totals.count("host"), 0u);

    const auto per_peg = sink.pegStreamCycles();
    EXPECT_EQ(per_peg.at(0), 10u);
    EXPECT_EQ(per_peg.at(1), 32u);
    EXPECT_EQ(per_peg.count(0xffff), 0u); // reduction is not streaming
}

#if CHASON_TRACE_ENABLED

TEST(ScopedSinkTest, ActivationIsScopedAndNested)
{
    EXPECT_EQ(activeSink(), nullptr);
    TraceSink outer, inner;
    {
        ScopedSink a(outer);
        EXPECT_EQ(activeSink(), &outer);
        {
            ScopedSink b(inner);
            EXPECT_EQ(activeSink(), &inner);
        }
        EXPECT_EQ(activeSink(), &outer);
    }
    EXPECT_EQ(activeSink(), nullptr);
}

TEST(ScopedSinkTest, ActivationIsThreadLocal)
{
    TraceSink sink;
    ScopedSink scope(sink);
    TraceSink *seen = &sink;
    std::thread([&seen] { seen = activeSink(); }).join();
    EXPECT_EQ(seen, nullptr); // the other thread never activated one
    EXPECT_EQ(activeSink(), &sink);
}

TEST(HostSpanTest, RecordsOnActiveSink)
{
    TraceSink sink;
    {
        ScopedSink scope(sink);
        HostSpan span("work");
    }
    ASSERT_EQ(sink.spans().size(), 1u);
    EXPECT_EQ(sink.spans()[0].name, "work");
    EXPECT_EQ(sink.spans()[0].cat, Category::Host);
    EXPECT_FALSE(sink.spans()[0].device);
}

TEST(HostSpanTest, InertWithoutActiveSink)
{
    TraceSink sink;
    { HostSpan span("dropped"); }
    EXPECT_TRUE(sink.empty());
}

#endif // CHASON_TRACE_ENABLED

TEST(ChromeExport, ProducesBalancedNonEmptyJson)
{
    TraceSink sink;
    sink.recordSpan(deviceSpan("stream_busy", Category::MatrixStream,
                               2, 0, 100));
    sink.recordInstant("cache_miss", 0, 0.5);
    sink.addCounter("schedule_cache.misses");
    sink.sampleCounter("thread_pool.queue_depth", 2.0);

    const std::string json = chromeTraceJson(sink);
    EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(json.find("stream_busy"), std::string::npos);
    EXPECT_NE(json.find("cache_miss"), std::string::npos);
    // Metadata names the device process and the PEG thread.
    EXPECT_NE(json.find("process_name"), std::string::npos);
    EXPECT_NE(json.find("thread_name"), std::string::npos);

    int brace = 0, bracket = 0;
    for (char c : json) {
        brace += c == '{';
        brace -= c == '}';
        bracket += c == '[';
        bracket -= c == ']';
        ASSERT_GE(brace, 0);
        ASSERT_GE(bracket, 0);
    }
    EXPECT_EQ(brace, 0);
    EXPECT_EQ(bracket, 0);
}

TEST(ChromeExport, EscapesSpanNames)
{
    TraceSink sink;
    sink.recordSpan(deviceSpan("quote\"back\\slash", Category::XLoad,
                               0, 0, 1));
    const std::string json = chromeTraceJson(sink);
    EXPECT_NE(json.find("quote\\\"back\\\\slash"), std::string::npos);
    EXPECT_EQ(json.find("quote\"back"), std::string::npos);
}

TEST(ChromeExport, CountersJsonShape)
{
    TraceSink sink;
    sink.addCounter("schedule_cache.hits", 3);
    sink.recordSpan(deviceSpan("s", Category::MatrixStream, 0, 0, 7));
    sink.recordSpan(deviceSpan("s", Category::MatrixStream, 1, 0, 7));
    const std::string json = countersJson(sink);
    EXPECT_NE(json.find("\"counters\""), std::string::npos);
    EXPECT_NE(json.find("\"schedule_cache.hits\":3"), std::string::npos);
    EXPECT_NE(json.find("\"category_cycles\""), std::string::npos);
    EXPECT_NE(json.find("\"matrix_stream\":14"), std::string::npos);
    EXPECT_NE(json.find("\"peg_matrix_stream_cycles\":[7,7]"),
              std::string::npos);
}

} // namespace
} // namespace trace
} // namespace chason
