/**
 * @file
 * The tracing layer's checked property: device spans emitted by a
 * simulation reconcile exactly with the run's CycleBreakdown — per
 * category and per PEG track. Runs both engines over several matrix
 * shapes; any double-count or dropped span fails here.
 */

#include "trace/attribution.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/engine.h"
#include "sparse/generators.h"
#include "trace/trace.h"

namespace chason {
namespace trace {
namespace {

arch::ArchConfig
smallConfig()
{
    arch::ArchConfig cfg;
    cfg.sched.channels = 4;
    cfg.sched.pesOverride = 4;
    cfg.sched.rawDistance = 4;
    cfg.sched.windowCols = 128;
    cfg.sched.rowsPerLanePerPass = 64;
    return cfg;
}

CycleTotals
totalsOf(const arch::CycleBreakdown &cycles)
{
    CycleTotals t;
    t.matrixStream = cycles.matrixStream;
    t.xLoad = cycles.xLoad;
    t.pipelineFill = cycles.pipelineFill;
    t.reduction = cycles.reduction;
    t.writeback = cycles.writeback;
    t.instStream = cycles.instStream;
    t.launch = cycles.launch;
    return t;
}

core::SpmvReport
tracedRun(core::Engine::Kind kind, const sparse::CsrMatrix &a,
          TraceSink &sink)
{
    Rng rng(0xC0FFEE);
    const std::vector<float> x = sparse::randomVector(a.cols(), rng);
    const core::Engine engine(kind, smallConfig());
    ScopedSink scope(sink);
    return engine.run(a, x, "invariant");
}

void
expectReconciles(core::Engine::Kind kind, const sparse::CsrMatrix &a)
{
    TraceSink sink;
    const core::SpmvReport report = tracedRun(kind, a, sink);

    if (!kEnabled) {
        EXPECT_TRUE(sink.empty());
        return;
    }
    const AttributionCheck check = checkCycleAttribution(
        sink, totalsOf(report.cycleBreakdown),
        smallConfig().sched.channels);
    EXPECT_TRUE(check.ok) << check.message;

    // The trace carries the full attribution, so its categories (each
    // PEG repeats the lockstep matrixStream total) also reproduce the
    // report's total cycle count.
    const auto cycles = sink.categoryCycles();
    std::uint64_t total = 0;
    for (const auto &[name, value] : cycles) {
        total += name == "matrix_stream"
            ? value / smallConfig().sched.channels
            : value;
    }
    EXPECT_EQ(total, report.cycles);
}

TEST(CycleAttribution, ChasonSkewedMatrix)
{
    Rng rng(11);
    expectReconciles(core::Engine::Kind::Chason,
                     sparse::zipfRows(256, 256, 4096, 1.3, rng));
}

TEST(CycleAttribution, SerpensSkewedMatrix)
{
    Rng rng(11);
    expectReconciles(core::Engine::Kind::Serpens,
                     sparse::zipfRows(256, 256, 4096, 1.3, rng));
}

TEST(CycleAttribution, ChasonBalancedMatrix)
{
    Rng rng(12);
    expectReconciles(core::Engine::Kind::Chason,
                     sparse::banded(512, 4, 0.8, rng));
}

TEST(CycleAttribution, SerpensMultiPassMatrix)
{
    // Enough rows to force multiple passes/windows per channel.
    Rng rng(13);
    expectReconciles(core::Engine::Kind::Serpens,
                     sparse::preferentialAttachment(2048, 6, rng));
}

TEST(CycleAttribution, ChasonWithEmptyRows)
{
    Rng rng(14);
    expectReconciles(core::Engine::Kind::Chason,
                     sparse::erdosRenyi(300, 300, 900, rng));
}

TEST(CycleAttribution, DetectsMissingCycles)
{
    if (!kEnabled)
        GTEST_SKIP() << "tracing compiled out";
    Rng rng(15);
    const sparse::CsrMatrix a = sparse::erdosRenyi(128, 128, 512, rng);
    TraceSink sink;
    const core::SpmvReport report =
        tracedRun(core::Engine::Kind::Chason, a, sink);

    // Tamper with the expectation: the checker must notice.
    CycleTotals wrong = totalsOf(report.cycleBreakdown);
    wrong.reduction += 1;
    const AttributionCheck check = checkCycleAttribution(
        sink, wrong, smallConfig().sched.channels);
    EXPECT_FALSE(check.ok);
    EXPECT_FALSE(check.message.empty());
}

TEST(CycleAttribution, PerPegClauseDetectsTrackImbalance)
{
    if (!kEnabled)
        GTEST_SKIP() << "tracing compiled out";
    // Hand-built sink where category totals agree but one track lost a
    // span: clause 2 must catch it.
    TraceSink sink;
    auto span = [](std::uint32_t track, double dur) {
        SpanEvent s;
        s.name = "stream_busy";
        s.cat = Category::MatrixStream;
        s.track = track;
        s.device = true;
        s.dur = dur;
        return s;
    };
    sink.recordSpan(span(0, 10));
    sink.recordSpan(span(1, 6)); // should be 10 like track 0
    CycleTotals expected;
    expected.matrixStream = 8; // category average masks the imbalance
    const AttributionCheck check =
        checkCycleAttribution(sink, expected, 2);
    EXPECT_FALSE(check.ok);
}

} // namespace
} // namespace trace
} // namespace chason
