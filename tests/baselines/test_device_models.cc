/**
 * @file
 * Calibration tests for the analytical GPU/CPU baseline models.
 */

#include "baselines/device_models.h"

#include <gtest/gtest.h>

namespace chason {
namespace baselines {
namespace {

TEST(DeviceSpecs, PaperHardwareParameters)
{
    EXPECT_NEAR(DeviceSpec::rtx4090().dramBandwidthGBps, 1008.0, 1.0);
    EXPECT_NEAR(DeviceSpec::rtxA6000Ada().dramBandwidthGBps, 768.0, 1.0);
    EXPECT_NEAR(DeviceSpec::rtx4090().averagePowerW, 70.0, 0.1);
    EXPECT_NEAR(DeviceSpec::rtxA6000Ada().averagePowerW, 65.0, 0.1);
    EXPECT_NEAR(DeviceSpec::corei9_11980hk().averagePowerW, 132.0, 0.1);
}

TEST(DeviceModels, PeakGflopsLandNearPaperPeaks)
{
    // Section 6.2.1: peak throughput over the 800-matrix corpus is
    // 19.83 (4090), 44.20 (A6000) and 23.88 (i9) GFLOPS. Evaluate each
    // model at a large cache-resident matrix (nnz 1e6, n 64 K).
    const AnalyticalSpmvModel gpu4090(DeviceSpec::rtx4090());
    const AnalyticalSpmvModel a6000(DeviceSpec::rtxA6000Ada());
    const AnalyticalSpmvModel i9(DeviceSpec::corei9_11980hk());
    const std::size_t nnz = 1000000;
    const std::uint32_t n = 65536;
    EXPECT_NEAR(gpu4090.gflops(nnz, n, n), 19.83, 4.0);
    EXPECT_NEAR(a6000.gflops(nnz, n, n), 44.20, 9.0);
    EXPECT_NEAR(i9.gflops(nnz, n, n), 23.88, 5.0);
}

TEST(DeviceModels, DispatchOverheadDominatesSmallMatrices)
{
    const AnalyticalSpmvModel gpu(DeviceSpec::rtx4090());
    const double tiny = gpu.latencyUs(2000, 1000, 1000);
    EXPECT_NEAR(tiny, gpu.spec().dispatchOverheadUs, 1.0);
    // Doubling a tiny workload barely changes latency.
    const double tiny2 = gpu.latencyUs(4000, 1000, 1000);
    EXPECT_LT(tiny2 / tiny, 1.05);
}

TEST(DeviceModels, CpuBeatsGpusOnSmallMatrices)
{
    // The paper's surprising result: the i9 outruns both GPUs on the
    // small, cache-resident corpus because of GPU dispatch overheads.
    const AnalyticalSpmvModel gpu4090(DeviceSpec::rtx4090());
    const AnalyticalSpmvModel a6000(DeviceSpec::rtxA6000Ada());
    const AnalyticalSpmvModel i9(DeviceSpec::corei9_11980hk());
    const std::size_t nnz = 30000;
    const std::uint32_t n = 4000;
    EXPECT_LT(i9.latencyUs(nnz, n, n), gpu4090.latencyUs(nnz, n, n));
    EXPECT_LT(i9.latencyUs(nnz, n, n), a6000.latencyUs(nnz, n, n));
}

TEST(DeviceModels, A6000FasterThan4090)
{
    // Matches the paper's ordering (geomean 1.28x vs 4x speedups).
    const AnalyticalSpmvModel gpu4090(DeviceSpec::rtx4090());
    const AnalyticalSpmvModel a6000(DeviceSpec::rtxA6000Ada());
    for (std::size_t nnz : {10000ul, 100000ul, 1000000ul}) {
        EXPECT_LT(a6000.latencyUs(nnz, 10000, 10000),
                  gpu4090.latencyUs(nnz, 10000, 10000));
    }
}

TEST(DeviceModels, SpillingToDramSlowsDown)
{
    const AnalyticalSpmvModel i9(DeviceSpec::corei9_11980hk());
    // ~16 MB resident vs ~160 MB spilled.
    const double resident = i9.latencyUs(2000000, 10000, 10000);
    const double spilled = i9.latencyUs(20000000, 100000, 100000);
    EXPECT_GT(spilled, 10.0 * resident);
}

TEST(DeviceModels, TrafficBytesFormula)
{
    // nnz*8 + rows*12 + cols*4.
    EXPECT_EQ(AnalyticalSpmvModel::trafficBytes(10, 4, 8),
              10u * 8 + 4u * 12 + 8u * 4);
}

TEST(DeviceModels, EnergyEfficiencyUsesMeasuredPower)
{
    const AnalyticalSpmvModel i9(DeviceSpec::corei9_11980hk());
    const double g = i9.gflops(100000, 5000, 5000);
    EXPECT_NEAR(i9.energyEfficiency(100000, 5000, 5000), g / 132.0,
                1e-9);
}

} // namespace
} // namespace baselines
} // namespace chason
