/**
 * @file
 * Unit tests for the multithreaded CPU SpMV baseline.
 */

#include "baselines/cpu_spmv.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "sparse/generators.h"

namespace chason {
namespace baselines {
namespace {

TEST(CpuSpmv, MatchesReferenceSingleThread)
{
    Rng rng(1);
    const sparse::CsrMatrix a = sparse::erdosRenyi(200, 200, 3000, rng);
    const std::vector<float> x = sparse::randomVector(a.cols(), rng);
    const std::vector<float> y = CpuSpmv(1).run(a, x);
    const std::vector<double> ref = sparse::spmvReference(a, x);
    EXPECT_LE(sparse::maxRelativeError(y, ref), 1.0);
}

TEST(CpuSpmv, MatchesReferenceMultiThread)
{
    Rng rng(2);
    const sparse::CsrMatrix a = sparse::zipfRows(500, 500, 20000, 1.3,
                                                 rng);
    const std::vector<float> x = sparse::randomVector(a.cols(), rng);
    const std::vector<float> st = CpuSpmv(1).run(a, x);
    const std::vector<float> mt = CpuSpmv(4).run(a, x);
    // Row-parallel partitioning preserves per-row accumulation order.
    EXPECT_EQ(st, mt);
}

TEST(CpuSpmv, DefaultsToHardwareConcurrency)
{
    EXPECT_GE(CpuSpmv().threads(), 1u);
    EXPECT_EQ(CpuSpmv(3).threads(), 3u);
}

TEST(CpuSpmv, HandlesEmptyMatrix)
{
    sparse::CooMatrix coo(10, 10);
    const sparse::CsrMatrix a = coo.toCsr();
    const std::vector<float> x(10, 1.0f);
    const std::vector<float> y = CpuSpmv(2).run(a, x);
    for (float v : y)
        EXPECT_EQ(v, 0.0f);
}

TEST(CpuSpmv, HandlesHeavySingleRow)
{
    sparse::CooMatrix coo(4, 1000);
    for (std::uint32_t c = 0; c < 1000; ++c)
        coo.add(2, c, 1.0f);
    const sparse::CsrMatrix a = coo.toCsr();
    const std::vector<float> x(1000, 0.5f);
    const std::vector<float> y = CpuSpmv(4).run(a, x);
    EXPECT_FLOAT_EQ(y[2], 500.0f);
    EXPECT_FLOAT_EQ(y[0], 0.0f);
}

TEST(CpuSpmv, MeasureLatencyIsPositive)
{
    Rng rng(3);
    const sparse::CsrMatrix a = sparse::erdosRenyi(100, 100, 1000, rng);
    const std::vector<float> x = sparse::randomVector(a.cols(), rng);
    EXPECT_GT(CpuSpmv(2).measureLatencyUs(a, x, 1, 3), 0.0);
}

} // namespace
} // namespace baselines
} // namespace chason
