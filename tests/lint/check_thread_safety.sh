#!/usr/bin/env bash
# ctest driver for the thread-safety annotation fixtures.
#
#   check_thread_safety.sh <repo root>
#
# Compiles the three fixtures with clang++ -Wthread-safety
# -Werror=thread-safety-analysis:
#  - ts_clean.cc must compile (the annotations accept correct locking);
#  - ts_missing_lock_cache.cc and ts_missing_lock_steal.cc must FAIL —
#    they are the ScheduleCache-lookup and ThreadPool-steal shapes with
#    one lock acquisition removed, so a passing compile would mean the
#    analysis (or the annotations) stopped working.
#
# Exits 77 (ctest SKIP_RETURN_CODE) when clang++ is not available: GCC
# has no -Wthread-safety, so there is nothing to check.
set -u

ROOT="$1"
FIX="$ROOT/tests/lint/fixtures"

if ! command -v clang++ > /dev/null 2>&1; then
    echo "SKIP: clang++ not in PATH (no thread-safety analysis)"
    exit 77
fi

CXX_FLAGS="-std=c++20 -fsyntax-only -I$ROOT/src \
           -Wthread-safety -Werror=thread-safety-analysis"

if ! clang++ $CXX_FLAGS "$FIX/ts_clean.cc"; then
    echo "FAIL: ts_clean.cc should compile under -Wthread-safety"
    exit 1
fi

for bad in ts_missing_lock_cache ts_missing_lock_steal; do
    if clang++ $CXX_FLAGS "$FIX/$bad.cc" 2> /dev/null; then
        echo "FAIL: $bad.cc compiled — the missing lock went undetected"
        exit 1
    fi
done

echo "PASS: clean fixture accepted, both missing-lock fixtures rejected"
exit 0
