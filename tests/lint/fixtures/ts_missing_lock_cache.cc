/**
 * @file
 * Negative thread-safety fixture: the ScheduleCache-lookup shape with
 * the lock acquisition removed — get() reads the GUARDED_BY map with
 * no MutexLock. This file must FAIL to compile under clang++
 * -Wthread-safety -Werror=thread-safety-analysis; the failure is the
 * assertion of tests/lint/check_thread_safety.sh (a toolchain where
 * this compiles has lost the analysis, and the annotations in
 * src/core/schedule_cache.h would be decoration).
 */

#include <map>

#include "common/thread_annotations.h"

namespace {

struct MiniCache
{
    int get(int key) EXCLUDES(mutex_)
    {
        // Deliberately missing: chason::common::MutexLock lock(mutex_);
        const auto it = entries_.find(key);
        return it == entries_.end() ? -1 : it->second;
    }

    mutable chason::common::Mutex mutex_;
    std::map<int, int> entries_ GUARDED_BY(mutex_);
};

} // namespace

int
main()
{
    MiniCache cache;
    return cache.get(1);
}
