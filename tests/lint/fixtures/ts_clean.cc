/**
 * @file
 * Positive thread-safety fixture: the same cache-lookup and
 * deque-steal shapes as the two ts_missing_lock_*.cc negatives, but
 * with every guarded access under its MutexLock. Must compile clean
 * under clang++ -Wthread-safety -Werror=thread-safety-analysis;
 * tests/lint/check_thread_safety.sh asserts it (and skips on
 * GCC-only toolchains, which lack the analysis).
 */

#include <deque>
#include <map>

#include "common/thread_annotations.h"

namespace {

struct MiniCache
{
    int get(int key) EXCLUDES(mutex_)
    {
        chason::common::MutexLock lock(mutex_);
        const auto it = entries_.find(key);
        return it == entries_.end() ? -1 : it->second;
    }

    void put(int key, int value) EXCLUDES(mutex_)
    {
        chason::common::MutexLock lock(mutex_);
        entries_[key] = value;
    }

    mutable chason::common::Mutex mutex_;
    std::map<int, int> entries_ GUARDED_BY(mutex_);
};

struct MiniPool
{
    int steal() EXCLUDES(mutex_)
    {
        chason::common::MutexLock lock(mutex_);
        if (inbox_.empty())
            return -1;
        const int task = inbox_.front();
        inbox_.pop_front();
        return task;
    }

    void post(int task) EXCLUDES(mutex_)
    {
        chason::common::MutexLock lock(mutex_);
        inbox_.push_back(task);
    }

    mutable chason::common::Mutex mutex_;
    std::deque<int> inbox_ GUARDED_BY(mutex_);
};

} // namespace

int
main()
{
    MiniCache cache;
    cache.put(1, 2);
    MiniPool pool;
    pool.post(7);
    return cache.get(1) == 2 && pool.steal() == 7 ? 0 : 1;
}
