/**
 * @file
 * Negative thread-safety fixture: the ThreadPool inbox-steal shape
 * with the lock acquisition removed — steal() pops the GUARDED_BY
 * deque with no MutexLock. Must FAIL to compile under clang++
 * -Wthread-safety -Werror=thread-safety-analysis; asserted by
 * tests/lint/check_thread_safety.sh.
 */

#include <deque>

#include "common/thread_annotations.h"

namespace {

struct MiniPool
{
    int steal() EXCLUDES(mutex_)
    {
        // Deliberately missing: chason::common::MutexLock lock(mutex_);
        if (inbox_.empty())
            return -1;
        const int task = inbox_.front();
        inbox_.pop_front();
        return task;
    }

    mutable chason::common::Mutex mutex_;
    std::deque<int> inbox_ GUARDED_BY(mutex_);
};

} // namespace

int
main()
{
    MiniPool pool;
    return pool.steal();
}
