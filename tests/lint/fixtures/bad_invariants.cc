/**
 * @file
 * Deliberately broken fixture for chason_lint --check-invariants.
 * Never compiled (and excluded from clean-tree lint runs); each
 * function below violates exactly one CHL rule, and
 * tests/lint/check_invariants.sh asserts the tool reports all of them
 * with a nonzero exit.
 */

#include <vector>

namespace chason {

void
unbalancedSpan()
{
    // CHL001: statement-shaped temporary — the span ends immediately.
    trace::HostSpan("schedule_phase");
}

void
hotLoopAllocation(std::vector<int> &out)
{
    // chason-lint: begin-hot (fixture hot region)
    for (int i = 0; i < 16; ++i)
        out.push_back(i); // CHL002: growth inside the hot region
    // chason-lint: end-hot
}

const int *
uncheckedMmapView(const unsigned char *base)
{
    // chason-lint: begin-mmap-region (fixture mapped bytes)
    // CHL003: no chason_assert precedes the typed view.
    return reinterpret_cast<const int *>(base);
    // chason-lint: end-mmap-region
}

} // namespace chason
