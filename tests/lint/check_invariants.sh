#!/usr/bin/env bash
# ctest driver for the chason_lint invariant leg.
#
#   check_invariants.sh <chason_lint binary> <repo root>
#
# Two assertions:
#  1. The deliberately broken fixture (unbalanced span, hot-loop
#     allocation, unchecked mmap cast) makes the tool exit nonzero and
#     the SARIF it writes names CHL001, CHL002 and CHL003.
#  2. The clean tree itself passes against the committed baseline —
#     the gate run_all.sh relies on.
set -u

LINT="$1"
ROOT="$2"
TMP="$(mktemp -d)"
trap 'rm -rf "$TMP"' EXIT

FIXTURE="$ROOT/tests/lint/fixtures/bad_invariants.cc"

# --- broken fixture must fail and report every seeded rule ----------
"$LINT" --check-invariants --root "$ROOT" \
        --baseline "$ROOT/lint_baseline.sarif" \
        --sarif "$TMP/fixture.sarif" "$FIXTURE" > "$TMP/fixture.log"
status=$?
if [ "$status" -eq 0 ]; then
    echo "FAIL: broken fixture exited 0"
    cat "$TMP/fixture.log"
    exit 1
fi
for rule in CHL001 CHL002 CHL003; do
    if ! grep -q "\"ruleId\": \"$rule\"" "$TMP/fixture.sarif"; then
        echo "FAIL: $rule missing from fixture SARIF"
        cat "$TMP/fixture.sarif"
        exit 1
    fi
done

# --- clean tree must pass against the committed baseline ------------
if ! "$LINT" --check-invariants --root "$ROOT" \
        --baseline "$ROOT/lint_baseline.sarif" \
        --sarif "$TMP/tree.sarif" > "$TMP/tree.log"; then
    echo "FAIL: clean tree has findings beyond the baseline"
    cat "$TMP/tree.log"
    exit 1
fi

# The emitted document must be valid JSON when python3 is available.
if command -v python3 > /dev/null 2>&1; then
    if ! python3 -c "import json,sys; json.load(open(sys.argv[1]))" \
            "$TMP/tree.sarif"; then
        echo "FAIL: emitted SARIF is not valid JSON"
        exit 1
    fi
fi

echo "PASS: fixture rejected (exit $status), clean tree accepted"
exit 0
