/**
 * @file
 * Tests for the host-side execution model (Section 5.2 methodology).
 */

#include "runtime/host.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "sched/crhcs.h"
#include "sched/pe_aware.h"
#include "sparse/generators.h"

namespace chason {
namespace runtime {
namespace {

sched::Schedule
sampleSchedule()
{
    Rng rng(1);
    const sparse::CsrMatrix a =
        sparse::zipfRows(2000, 2000, 30000, 1.2, rng);
    return sched::CrhcsScheduler(sched::SchedConfig{}).schedule(a);
}

TEST(HostPlatform, DmaCostModel)
{
    HostPlatform p;
    p.pcieBandwidthGBps = 10.0;
    p.dmaLatencyUs = 5.0;
    // 10 MB at 10 GB/s = 1000 us + 5 us latency.
    EXPECT_NEAR(p.dmaUs(10'000'000), 1005.0, 1e-6);
    EXPECT_NEAR(p.dmaUs(0), 5.0, 1e-9);
}

TEST(HostSession, AmortizationConvergesToSteadyState)
{
    const sched::Schedule sch = sampleSchedule();
    const HostSession session(arch::DatapathKind::Chason);

    const EndToEndReport one = session.measure(sch, 1, true);
    const EndToEndReport thousand = session.measure(sch, 1000);

    // With one iteration and a cold board the bitstream dominates by
    // orders of magnitude; at 1000 iterations on a configured board
    // (the paper's methodology) the one-time costs fade.
    EXPECT_GT(one.amortizedPerIterationUs(),
              100.0 * one.steadyStatePerIterationUs());
    EXPECT_LT(thousand.amortizedPerIterationUs(),
              2.0 * thousand.steadyStatePerIterationUs());
    EXPECT_DOUBLE_EQ(one.steadyStatePerIterationUs(),
                     thousand.steadyStatePerIterationUs());
}

TEST(HostSession, ThousandIterationsIsKernelDominated)
{
    // Section 5.2's claim, quantified: at 1000 iterations the
    // measurement mostly sees the kernel.
    const sched::Schedule sch = sampleSchedule();
    const HostSession session(arch::DatapathKind::Chason);
    const EndToEndReport r = session.measure(sch, 1000);
    EXPECT_GT(r.kernelShare(), 0.25);
    EXPECT_GT(r.kernelUs, 0.0);
    EXPECT_EQ(r.iterations, 1000u);
}

TEST(HostSession, SerpensPaysForItsPaddingTwice)
{
    // The padded Serpens artifact is bigger, so its one-time DMA is
    // longer than Chasoň's for the same matrix.
    Rng rng(2);
    const sparse::CsrMatrix a =
        sparse::arrowBanded(1000, 6, 0.3, 3, rng);
    sched::SchedConfig pe_cfg;
    pe_cfg.migrationDepth = 0;
    const sched::Schedule serpens =
        sched::PeAwareScheduler(pe_cfg).schedule(a);
    const sched::Schedule chason =
        sched::CrhcsScheduler(sched::SchedConfig{}).schedule(a);

    const HostSession s_serpens(arch::DatapathKind::Serpens);
    const HostSession s_chason(arch::DatapathKind::Chason);
    const EndToEndReport rs = s_serpens.measure(serpens, 1000);
    const EndToEndReport rc = s_chason.measure(chason, 1000);
    EXPECT_GT(rs.artifactDmaMs, rc.artifactDmaMs);
    EXPECT_GT(rs.kernelUs, rc.kernelUs);
}

TEST(HostSession, TotalsAreConsistent)
{
    const sched::Schedule sch = sampleSchedule();
    const HostSession session(arch::DatapathKind::Chason);
    const EndToEndReport r = session.measure(sch, 10);
    EXPECT_NEAR(r.totalMs(),
                r.bitstreamMs + r.artifactDmaMs +
                    10.0 * r.steadyStatePerIterationUs() / 1e3,
                1e-9);
    EXPECT_NEAR(r.amortizedPerIterationUs() * 10.0, r.totalMs() * 1e3,
                1e-6);
}

TEST(HostSessionDeath, ZeroIterationsPanics)
{
    const sched::Schedule sch = sampleSchedule();
    const HostSession session(arch::DatapathKind::Chason);
    EXPECT_DEATH(session.measure(sch, 0), "iteration");
}

} // namespace
} // namespace runtime
} // namespace chason
