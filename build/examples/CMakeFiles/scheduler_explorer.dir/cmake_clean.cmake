file(REMOVE_RECURSE
  "CMakeFiles/scheduler_explorer.dir/scheduler_explorer.cpp.o"
  "CMakeFiles/scheduler_explorer.dir/scheduler_explorer.cpp.o.d"
  "scheduler_explorer"
  "scheduler_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scheduler_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
