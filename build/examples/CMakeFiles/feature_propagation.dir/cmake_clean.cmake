file(REMOVE_RECURSE
  "CMakeFiles/feature_propagation.dir/feature_propagation.cpp.o"
  "CMakeFiles/feature_propagation.dir/feature_propagation.cpp.o.d"
  "feature_propagation"
  "feature_propagation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/feature_propagation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
