# Empty dependencies file for feature_propagation.
# This may be replaced when dependencies are built.
