# Empty dependencies file for bfs.
# This may be replaced when dependencies are built.
