file(REMOVE_RECURSE
  "CMakeFiles/bfs.dir/bfs.cpp.o"
  "CMakeFiles/bfs.dir/bfs.cpp.o.d"
  "bfs"
  "bfs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bfs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
