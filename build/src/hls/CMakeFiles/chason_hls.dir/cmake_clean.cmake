file(REMOVE_RECURSE
  "CMakeFiles/chason_hls.dir/spmv_kernel.cc.o"
  "CMakeFiles/chason_hls.dir/spmv_kernel.cc.o.d"
  "libchason_hls.a"
  "libchason_hls.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chason_hls.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
