file(REMOVE_RECURSE
  "libchason_hls.a"
)
