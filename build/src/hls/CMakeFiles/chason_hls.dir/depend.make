# Empty dependencies file for chason_hls.
# This may be replaced when dependencies are built.
