file(REMOVE_RECURSE
  "libchason_sparse.a"
)
