
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sparse/csc.cc" "src/sparse/CMakeFiles/chason_sparse.dir/csc.cc.o" "gcc" "src/sparse/CMakeFiles/chason_sparse.dir/csc.cc.o.d"
  "/root/repo/src/sparse/dataset.cc" "src/sparse/CMakeFiles/chason_sparse.dir/dataset.cc.o" "gcc" "src/sparse/CMakeFiles/chason_sparse.dir/dataset.cc.o.d"
  "/root/repo/src/sparse/formats.cc" "src/sparse/CMakeFiles/chason_sparse.dir/formats.cc.o" "gcc" "src/sparse/CMakeFiles/chason_sparse.dir/formats.cc.o.d"
  "/root/repo/src/sparse/generators.cc" "src/sparse/CMakeFiles/chason_sparse.dir/generators.cc.o" "gcc" "src/sparse/CMakeFiles/chason_sparse.dir/generators.cc.o.d"
  "/root/repo/src/sparse/matrix_market.cc" "src/sparse/CMakeFiles/chason_sparse.dir/matrix_market.cc.o" "gcc" "src/sparse/CMakeFiles/chason_sparse.dir/matrix_market.cc.o.d"
  "/root/repo/src/sparse/structure.cc" "src/sparse/CMakeFiles/chason_sparse.dir/structure.cc.o" "gcc" "src/sparse/CMakeFiles/chason_sparse.dir/structure.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/chason_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
