# Empty dependencies file for chason_sparse.
# This may be replaced when dependencies are built.
