file(REMOVE_RECURSE
  "CMakeFiles/chason_sparse.dir/csc.cc.o"
  "CMakeFiles/chason_sparse.dir/csc.cc.o.d"
  "CMakeFiles/chason_sparse.dir/dataset.cc.o"
  "CMakeFiles/chason_sparse.dir/dataset.cc.o.d"
  "CMakeFiles/chason_sparse.dir/formats.cc.o"
  "CMakeFiles/chason_sparse.dir/formats.cc.o.d"
  "CMakeFiles/chason_sparse.dir/generators.cc.o"
  "CMakeFiles/chason_sparse.dir/generators.cc.o.d"
  "CMakeFiles/chason_sparse.dir/matrix_market.cc.o"
  "CMakeFiles/chason_sparse.dir/matrix_market.cc.o.d"
  "CMakeFiles/chason_sparse.dir/structure.cc.o"
  "CMakeFiles/chason_sparse.dir/structure.cc.o.d"
  "libchason_sparse.a"
  "libchason_sparse.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chason_sparse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
