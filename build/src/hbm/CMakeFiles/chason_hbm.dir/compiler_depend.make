# Empty compiler generated dependencies file for chason_hbm.
# This may be replaced when dependencies are built.
