file(REMOVE_RECURSE
  "libchason_hbm.a"
)
