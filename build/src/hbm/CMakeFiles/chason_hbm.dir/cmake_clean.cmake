file(REMOVE_RECURSE
  "CMakeFiles/chason_hbm.dir/hbm.cc.o"
  "CMakeFiles/chason_hbm.dir/hbm.cc.o.d"
  "libchason_hbm.a"
  "libchason_hbm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chason_hbm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
