file(REMOVE_RECURSE
  "CMakeFiles/chason_sched.dir/analyzer.cc.o"
  "CMakeFiles/chason_sched.dir/analyzer.cc.o.d"
  "CMakeFiles/chason_sched.dir/crhcs.cc.o"
  "CMakeFiles/chason_sched.dir/crhcs.cc.o.d"
  "CMakeFiles/chason_sched.dir/element.cc.o"
  "CMakeFiles/chason_sched.dir/element.cc.o.d"
  "CMakeFiles/chason_sched.dir/pe_aware.cc.o"
  "CMakeFiles/chason_sched.dir/pe_aware.cc.o.d"
  "CMakeFiles/chason_sched.dir/row_based.cc.o"
  "CMakeFiles/chason_sched.dir/row_based.cc.o.d"
  "CMakeFiles/chason_sched.dir/schedule.cc.o"
  "CMakeFiles/chason_sched.dir/schedule.cc.o.d"
  "CMakeFiles/chason_sched.dir/schedule_io.cc.o"
  "CMakeFiles/chason_sched.dir/schedule_io.cc.o.d"
  "CMakeFiles/chason_sched.dir/scheduler.cc.o"
  "CMakeFiles/chason_sched.dir/scheduler.cc.o.d"
  "libchason_sched.a"
  "libchason_sched.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chason_sched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
