# Empty compiler generated dependencies file for chason_sched.
# This may be replaced when dependencies are built.
