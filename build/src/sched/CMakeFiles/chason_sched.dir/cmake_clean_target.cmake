file(REMOVE_RECURSE
  "libchason_sched.a"
)
