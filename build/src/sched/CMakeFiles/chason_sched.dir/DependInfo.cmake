
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sched/analyzer.cc" "src/sched/CMakeFiles/chason_sched.dir/analyzer.cc.o" "gcc" "src/sched/CMakeFiles/chason_sched.dir/analyzer.cc.o.d"
  "/root/repo/src/sched/crhcs.cc" "src/sched/CMakeFiles/chason_sched.dir/crhcs.cc.o" "gcc" "src/sched/CMakeFiles/chason_sched.dir/crhcs.cc.o.d"
  "/root/repo/src/sched/element.cc" "src/sched/CMakeFiles/chason_sched.dir/element.cc.o" "gcc" "src/sched/CMakeFiles/chason_sched.dir/element.cc.o.d"
  "/root/repo/src/sched/pe_aware.cc" "src/sched/CMakeFiles/chason_sched.dir/pe_aware.cc.o" "gcc" "src/sched/CMakeFiles/chason_sched.dir/pe_aware.cc.o.d"
  "/root/repo/src/sched/row_based.cc" "src/sched/CMakeFiles/chason_sched.dir/row_based.cc.o" "gcc" "src/sched/CMakeFiles/chason_sched.dir/row_based.cc.o.d"
  "/root/repo/src/sched/schedule.cc" "src/sched/CMakeFiles/chason_sched.dir/schedule.cc.o" "gcc" "src/sched/CMakeFiles/chason_sched.dir/schedule.cc.o.d"
  "/root/repo/src/sched/schedule_io.cc" "src/sched/CMakeFiles/chason_sched.dir/schedule_io.cc.o" "gcc" "src/sched/CMakeFiles/chason_sched.dir/schedule_io.cc.o.d"
  "/root/repo/src/sched/scheduler.cc" "src/sched/CMakeFiles/chason_sched.dir/scheduler.cc.o" "gcc" "src/sched/CMakeFiles/chason_sched.dir/scheduler.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/chason_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sparse/CMakeFiles/chason_sparse.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
