# Empty compiler generated dependencies file for chason_common.
# This may be replaced when dependencies are built.
