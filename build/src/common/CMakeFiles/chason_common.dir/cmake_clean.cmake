file(REMOVE_RECURSE
  "CMakeFiles/chason_common.dir/bitfield.cc.o"
  "CMakeFiles/chason_common.dir/bitfield.cc.o.d"
  "CMakeFiles/chason_common.dir/logging.cc.o"
  "CMakeFiles/chason_common.dir/logging.cc.o.d"
  "CMakeFiles/chason_common.dir/rng.cc.o"
  "CMakeFiles/chason_common.dir/rng.cc.o.d"
  "CMakeFiles/chason_common.dir/stats.cc.o"
  "CMakeFiles/chason_common.dir/stats.cc.o.d"
  "CMakeFiles/chason_common.dir/table.cc.o"
  "CMakeFiles/chason_common.dir/table.cc.o.d"
  "libchason_common.a"
  "libchason_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chason_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
