file(REMOVE_RECURSE
  "libchason_common.a"
)
