file(REMOVE_RECURSE
  "libchason_arch.a"
)
