file(REMOVE_RECURSE
  "CMakeFiles/chason_arch.dir/accelerator.cc.o"
  "CMakeFiles/chason_arch.dir/accelerator.cc.o.d"
  "CMakeFiles/chason_arch.dir/chason_accel.cc.o"
  "CMakeFiles/chason_arch.dir/chason_accel.cc.o.d"
  "CMakeFiles/chason_arch.dir/estimator.cc.o"
  "CMakeFiles/chason_arch.dir/estimator.cc.o.d"
  "CMakeFiles/chason_arch.dir/frequency.cc.o"
  "CMakeFiles/chason_arch.dir/frequency.cc.o.d"
  "CMakeFiles/chason_arch.dir/peg.cc.o"
  "CMakeFiles/chason_arch.dir/peg.cc.o.d"
  "CMakeFiles/chason_arch.dir/pipeline.cc.o"
  "CMakeFiles/chason_arch.dir/pipeline.cc.o.d"
  "CMakeFiles/chason_arch.dir/power.cc.o"
  "CMakeFiles/chason_arch.dir/power.cc.o.d"
  "CMakeFiles/chason_arch.dir/resources.cc.o"
  "CMakeFiles/chason_arch.dir/resources.cc.o.d"
  "CMakeFiles/chason_arch.dir/serpens_accel.cc.o"
  "CMakeFiles/chason_arch.dir/serpens_accel.cc.o.d"
  "CMakeFiles/chason_arch.dir/timing.cc.o"
  "CMakeFiles/chason_arch.dir/timing.cc.o.d"
  "libchason_arch.a"
  "libchason_arch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chason_arch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
