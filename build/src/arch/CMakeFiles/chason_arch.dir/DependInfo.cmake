
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/arch/accelerator.cc" "src/arch/CMakeFiles/chason_arch.dir/accelerator.cc.o" "gcc" "src/arch/CMakeFiles/chason_arch.dir/accelerator.cc.o.d"
  "/root/repo/src/arch/chason_accel.cc" "src/arch/CMakeFiles/chason_arch.dir/chason_accel.cc.o" "gcc" "src/arch/CMakeFiles/chason_arch.dir/chason_accel.cc.o.d"
  "/root/repo/src/arch/estimator.cc" "src/arch/CMakeFiles/chason_arch.dir/estimator.cc.o" "gcc" "src/arch/CMakeFiles/chason_arch.dir/estimator.cc.o.d"
  "/root/repo/src/arch/frequency.cc" "src/arch/CMakeFiles/chason_arch.dir/frequency.cc.o" "gcc" "src/arch/CMakeFiles/chason_arch.dir/frequency.cc.o.d"
  "/root/repo/src/arch/peg.cc" "src/arch/CMakeFiles/chason_arch.dir/peg.cc.o" "gcc" "src/arch/CMakeFiles/chason_arch.dir/peg.cc.o.d"
  "/root/repo/src/arch/pipeline.cc" "src/arch/CMakeFiles/chason_arch.dir/pipeline.cc.o" "gcc" "src/arch/CMakeFiles/chason_arch.dir/pipeline.cc.o.d"
  "/root/repo/src/arch/power.cc" "src/arch/CMakeFiles/chason_arch.dir/power.cc.o" "gcc" "src/arch/CMakeFiles/chason_arch.dir/power.cc.o.d"
  "/root/repo/src/arch/resources.cc" "src/arch/CMakeFiles/chason_arch.dir/resources.cc.o" "gcc" "src/arch/CMakeFiles/chason_arch.dir/resources.cc.o.d"
  "/root/repo/src/arch/serpens_accel.cc" "src/arch/CMakeFiles/chason_arch.dir/serpens_accel.cc.o" "gcc" "src/arch/CMakeFiles/chason_arch.dir/serpens_accel.cc.o.d"
  "/root/repo/src/arch/timing.cc" "src/arch/CMakeFiles/chason_arch.dir/timing.cc.o" "gcc" "src/arch/CMakeFiles/chason_arch.dir/timing.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/chason_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sparse/CMakeFiles/chason_sparse.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/chason_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/hbm/CMakeFiles/chason_hbm.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
