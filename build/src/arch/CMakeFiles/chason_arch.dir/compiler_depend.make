# Empty compiler generated dependencies file for chason_arch.
# This may be replaced when dependencies are built.
