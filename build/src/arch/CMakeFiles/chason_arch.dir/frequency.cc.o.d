src/arch/CMakeFiles/chason_arch.dir/frequency.cc.o: \
 /root/repo/src/arch/frequency.cc /usr/include/stdc-predef.h \
 /root/repo/src/arch/frequency.h
