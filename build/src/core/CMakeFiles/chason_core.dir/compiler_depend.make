# Empty compiler generated dependencies file for chason_core.
# This may be replaced when dependencies are built.
