file(REMOVE_RECURSE
  "CMakeFiles/chason_core.dir/engine.cc.o"
  "CMakeFiles/chason_core.dir/engine.cc.o.d"
  "CMakeFiles/chason_core.dir/report_json.cc.o"
  "CMakeFiles/chason_core.dir/report_json.cc.o.d"
  "CMakeFiles/chason_core.dir/schedule_cache.cc.o"
  "CMakeFiles/chason_core.dir/schedule_cache.cc.o.d"
  "CMakeFiles/chason_core.dir/spmm.cc.o"
  "CMakeFiles/chason_core.dir/spmm.cc.o.d"
  "libchason_core.a"
  "libchason_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chason_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
