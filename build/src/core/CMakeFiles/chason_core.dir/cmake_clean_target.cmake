file(REMOVE_RECURSE
  "libchason_core.a"
)
