file(REMOVE_RECURSE
  "CMakeFiles/chason_baselines.dir/cpu_spmv.cc.o"
  "CMakeFiles/chason_baselines.dir/cpu_spmv.cc.o.d"
  "CMakeFiles/chason_baselines.dir/device_models.cc.o"
  "CMakeFiles/chason_baselines.dir/device_models.cc.o.d"
  "libchason_baselines.a"
  "libchason_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chason_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
