# Empty compiler generated dependencies file for chason_baselines.
# This may be replaced when dependencies are built.
