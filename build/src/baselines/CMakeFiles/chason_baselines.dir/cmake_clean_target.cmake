file(REMOVE_RECURSE
  "libchason_baselines.a"
)
