
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/cpu_spmv.cc" "src/baselines/CMakeFiles/chason_baselines.dir/cpu_spmv.cc.o" "gcc" "src/baselines/CMakeFiles/chason_baselines.dir/cpu_spmv.cc.o.d"
  "/root/repo/src/baselines/device_models.cc" "src/baselines/CMakeFiles/chason_baselines.dir/device_models.cc.o" "gcc" "src/baselines/CMakeFiles/chason_baselines.dir/device_models.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/chason_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sparse/CMakeFiles/chason_sparse.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
