file(REMOVE_RECURSE
  "CMakeFiles/chason_runtime.dir/host.cc.o"
  "CMakeFiles/chason_runtime.dir/host.cc.o.d"
  "libchason_runtime.a"
  "libchason_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chason_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
