# Empty dependencies file for chason_runtime.
# This may be replaced when dependencies are built.
