file(REMOVE_RECURSE
  "libchason_runtime.a"
)
