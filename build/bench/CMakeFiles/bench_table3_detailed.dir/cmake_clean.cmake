file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_detailed.dir/bench_table3_detailed.cpp.o"
  "CMakeFiles/bench_table3_detailed.dir/bench_table3_detailed.cpp.o.d"
  "bench_table3_detailed"
  "bench_table3_detailed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_detailed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
