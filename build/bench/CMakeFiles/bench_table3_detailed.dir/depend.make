# Empty dependencies file for bench_table3_detailed.
# This may be replaced when dependencies are built.
