# Empty dependencies file for bench_methodology_iterations.
# This may be replaced when dependencies are built.
