file(REMOVE_RECURSE
  "CMakeFiles/bench_methodology_iterations.dir/bench_methodology_iterations.cpp.o"
  "CMakeFiles/bench_methodology_iterations.dir/bench_methodology_iterations.cpp.o.d"
  "bench_methodology_iterations"
  "bench_methodology_iterations.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_methodology_iterations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
