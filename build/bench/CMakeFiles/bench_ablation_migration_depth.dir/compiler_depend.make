# Empty compiler generated dependencies file for bench_ablation_migration_depth.
# This may be replaced when dependencies are built.
