file(REMOVE_RECURSE
  "libchason_bench_support.a"
)
