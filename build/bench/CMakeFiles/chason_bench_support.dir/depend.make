# Empty dependencies file for chason_bench_support.
# This may be replaced when dependencies are built.
