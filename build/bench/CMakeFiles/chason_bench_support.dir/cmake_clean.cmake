file(REMOVE_RECURSE
  "CMakeFiles/chason_bench_support.dir/support.cc.o"
  "CMakeFiles/chason_bench_support.dir/support.cc.o.d"
  "libchason_bench_support.a"
  "libchason_bench_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chason_bench_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
