# Empty dependencies file for bench_fig11_underutilization.
# This may be replaced when dependencies are built.
