file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_underutilization.dir/bench_fig11_underutilization.cpp.o"
  "CMakeFiles/bench_fig11_underutilization.dir/bench_fig11_underutilization.cpp.o.d"
  "bench_fig11_underutilization"
  "bench_fig11_underutilization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_underutilization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
