file(REMOVE_RECURSE
  "CMakeFiles/bench_serpens_dozen.dir/bench_serpens_dozen.cpp.o"
  "CMakeFiles/bench_serpens_dozen.dir/bench_serpens_dozen.cpp.o.d"
  "bench_serpens_dozen"
  "bench_serpens_dozen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_serpens_dozen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
