
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_serpens_dozen.cpp" "bench/CMakeFiles/bench_serpens_dozen.dir/bench_serpens_dozen.cpp.o" "gcc" "bench/CMakeFiles/bench_serpens_dozen.dir/bench_serpens_dozen.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/bench/CMakeFiles/chason_bench_support.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/chason_core.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/chason_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/chason_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/arch/CMakeFiles/chason_arch.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/chason_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/sparse/CMakeFiles/chason_sparse.dir/DependInfo.cmake"
  "/root/repo/build/src/hbm/CMakeFiles/chason_hbm.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/chason_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
