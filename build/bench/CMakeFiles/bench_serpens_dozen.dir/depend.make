# Empty dependencies file for bench_serpens_dozen.
# This may be replaced when dependencies are built.
