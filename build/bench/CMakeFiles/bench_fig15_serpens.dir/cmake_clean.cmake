file(REMOVE_RECURSE
  "CMakeFiles/bench_fig15_serpens.dir/bench_fig15_serpens.cpp.o"
  "CMakeFiles/bench_fig15_serpens.dir/bench_fig15_serpens.cpp.o.d"
  "bench_fig15_serpens"
  "bench_fig15_serpens.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig15_serpens.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
