# Empty compiler generated dependencies file for bench_fig13_peg_fairness.
# This may be replaced when dependencies are built.
