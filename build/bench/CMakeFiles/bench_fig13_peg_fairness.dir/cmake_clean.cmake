file(REMOVE_RECURSE
  "CMakeFiles/bench_fig13_peg_fairness.dir/bench_fig13_peg_fairness.cpp.o"
  "CMakeFiles/bench_fig13_peg_fairness.dir/bench_fig13_peg_fairness.cpp.o.d"
  "bench_fig13_peg_fairness"
  "bench_fig13_peg_fairness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13_peg_fairness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
