# Empty dependencies file for bench_imbalance_correlation.
# This may be replaced when dependencies are built.
