file(REMOVE_RECURSE
  "CMakeFiles/bench_imbalance_correlation.dir/bench_imbalance_correlation.cpp.o"
  "CMakeFiles/bench_imbalance_correlation.dir/bench_imbalance_correlation.cpp.o.d"
  "bench_imbalance_correlation"
  "bench_imbalance_correlation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_imbalance_correlation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
