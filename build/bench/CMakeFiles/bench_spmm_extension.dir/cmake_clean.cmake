file(REMOVE_RECURSE
  "CMakeFiles/bench_spmm_extension.dir/bench_spmm_extension.cpp.o"
  "CMakeFiles/bench_spmm_extension.dir/bench_spmm_extension.cpp.o.d"
  "bench_spmm_extension"
  "bench_spmm_extension.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_spmm_extension.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
