# Empty dependencies file for bench_spmm_extension.
# This may be replaced when dependencies are built.
