# Empty compiler generated dependencies file for bench_ablation_scug.
# This may be replaced when dependencies are built.
