file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_scug.dir/bench_ablation_scug.cpp.o"
  "CMakeFiles/bench_ablation_scug.dir/bench_ablation_scug.cpp.o.d"
  "bench_ablation_scug"
  "bench_ablation_scug.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_scug.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
