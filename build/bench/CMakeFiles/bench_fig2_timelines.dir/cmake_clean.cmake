file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_timelines.dir/bench_fig2_timelines.cpp.o"
  "CMakeFiles/bench_fig2_timelines.dir/bench_fig2_timelines.cpp.o.d"
  "bench_fig2_timelines"
  "bench_fig2_timelines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_timelines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
