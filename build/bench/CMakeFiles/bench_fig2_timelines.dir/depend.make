# Empty dependencies file for bench_fig2_timelines.
# This may be replaced when dependencies are built.
