file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12_peg_pdfs.dir/bench_fig12_peg_pdfs.cpp.o"
  "CMakeFiles/bench_fig12_peg_pdfs.dir/bench_fig12_peg_pdfs.cpp.o.d"
  "bench_fig12_peg_pdfs"
  "bench_fig12_peg_pdfs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_peg_pdfs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
