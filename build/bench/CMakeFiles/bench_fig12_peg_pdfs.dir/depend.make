# Empty dependencies file for bench_fig12_peg_pdfs.
# This may be replaced when dependencies are built.
