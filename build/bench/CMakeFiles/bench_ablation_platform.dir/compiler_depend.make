# Empty compiler generated dependencies file for bench_ablation_platform.
# This may be replaced when dependencies are built.
