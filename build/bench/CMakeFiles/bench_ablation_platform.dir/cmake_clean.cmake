file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_platform.dir/bench_ablation_platform.cpp.o"
  "CMakeFiles/bench_ablation_platform.dir/bench_ablation_platform.cpp.o.d"
  "bench_ablation_platform"
  "bench_ablation_platform.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_platform.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
