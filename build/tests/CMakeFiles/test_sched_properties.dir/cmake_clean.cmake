file(REMOVE_RECURSE
  "CMakeFiles/test_sched_properties.dir/sched/test_sched_properties.cc.o"
  "CMakeFiles/test_sched_properties.dir/sched/test_sched_properties.cc.o.d"
  "test_sched_properties"
  "test_sched_properties.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sched_properties.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
