file(REMOVE_RECURSE
  "CMakeFiles/test_exhaustive_small.dir/core/test_exhaustive_small.cc.o"
  "CMakeFiles/test_exhaustive_small.dir/core/test_exhaustive_small.cc.o.d"
  "test_exhaustive_small"
  "test_exhaustive_small.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_exhaustive_small.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
