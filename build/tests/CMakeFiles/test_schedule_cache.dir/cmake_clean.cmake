file(REMOVE_RECURSE
  "CMakeFiles/test_schedule_cache.dir/core/test_schedule_cache.cc.o"
  "CMakeFiles/test_schedule_cache.dir/core/test_schedule_cache.cc.o.d"
  "test_schedule_cache"
  "test_schedule_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_schedule_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
