# Empty dependencies file for test_schedule_cache.
# This may be replaced when dependencies are built.
