file(REMOVE_RECURSE
  "CMakeFiles/test_csc.dir/sparse/test_csc.cc.o"
  "CMakeFiles/test_csc.dir/sparse/test_csc.cc.o.d"
  "test_csc"
  "test_csc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_csc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
