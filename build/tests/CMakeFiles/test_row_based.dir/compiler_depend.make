# Empty compiler generated dependencies file for test_row_based.
# This may be replaced when dependencies are built.
