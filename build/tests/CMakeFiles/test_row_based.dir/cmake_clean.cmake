file(REMOVE_RECURSE
  "CMakeFiles/test_row_based.dir/sched/test_row_based.cc.o"
  "CMakeFiles/test_row_based.dir/sched/test_row_based.cc.o.d"
  "test_row_based"
  "test_row_based.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_row_based.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
