file(REMOVE_RECURSE
  "CMakeFiles/test_spmm.dir/core/test_spmm.cc.o"
  "CMakeFiles/test_spmm.dir/core/test_spmm.cc.o.d"
  "test_spmm"
  "test_spmm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_spmm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
