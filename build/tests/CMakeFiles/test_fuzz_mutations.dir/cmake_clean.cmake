file(REMOVE_RECURSE
  "CMakeFiles/test_fuzz_mutations.dir/sched/test_fuzz_mutations.cc.o"
  "CMakeFiles/test_fuzz_mutations.dir/sched/test_fuzz_mutations.cc.o.d"
  "test_fuzz_mutations"
  "test_fuzz_mutations.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fuzz_mutations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
