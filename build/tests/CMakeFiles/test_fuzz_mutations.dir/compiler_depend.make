# Empty compiler generated dependencies file for test_fuzz_mutations.
# This may be replaced when dependencies are built.
