file(REMOVE_RECURSE
  "CMakeFiles/test_arch_properties.dir/arch/test_arch_properties.cc.o"
  "CMakeFiles/test_arch_properties.dir/arch/test_arch_properties.cc.o.d"
  "test_arch_properties"
  "test_arch_properties.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_arch_properties.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
