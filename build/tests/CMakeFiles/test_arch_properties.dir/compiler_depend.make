# Empty compiler generated dependencies file for test_arch_properties.
# This may be replaced when dependencies are built.
