# Empty dependencies file for test_pe_aware.
# This may be replaced when dependencies are built.
