file(REMOVE_RECURSE
  "CMakeFiles/test_pe_aware.dir/sched/test_pe_aware.cc.o"
  "CMakeFiles/test_pe_aware.dir/sched/test_pe_aware.cc.o.d"
  "test_pe_aware"
  "test_pe_aware.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pe_aware.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
