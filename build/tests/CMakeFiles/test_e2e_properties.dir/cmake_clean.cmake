file(REMOVE_RECURSE
  "CMakeFiles/test_e2e_properties.dir/core/test_e2e_properties.cc.o"
  "CMakeFiles/test_e2e_properties.dir/core/test_e2e_properties.cc.o.d"
  "test_e2e_properties"
  "test_e2e_properties.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_e2e_properties.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
