file(REMOVE_RECURSE
  "CMakeFiles/test_alpha_beta.dir/core/test_alpha_beta.cc.o"
  "CMakeFiles/test_alpha_beta.dir/core/test_alpha_beta.cc.o.d"
  "test_alpha_beta"
  "test_alpha_beta.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_alpha_beta.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
