file(REMOVE_RECURSE
  "CMakeFiles/test_cpu_spmv.dir/baselines/test_cpu_spmv.cc.o"
  "CMakeFiles/test_cpu_spmv.dir/baselines/test_cpu_spmv.cc.o.d"
  "test_cpu_spmv"
  "test_cpu_spmv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cpu_spmv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
