# Empty dependencies file for test_cpu_spmv.
# This may be replaced when dependencies are built.
