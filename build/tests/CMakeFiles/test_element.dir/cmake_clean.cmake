file(REMOVE_RECURSE
  "CMakeFiles/test_element.dir/sched/test_element.cc.o"
  "CMakeFiles/test_element.dir/sched/test_element.cc.o.d"
  "test_element"
  "test_element.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_element.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
