file(REMOVE_RECURSE
  "CMakeFiles/test_hbm.dir/hbm/test_hbm.cc.o"
  "CMakeFiles/test_hbm.dir/hbm/test_hbm.cc.o.d"
  "test_hbm"
  "test_hbm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_hbm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
