# Empty compiler generated dependencies file for test_device_models.
# This may be replaced when dependencies are built.
