file(REMOVE_RECURSE
  "CMakeFiles/test_device_models.dir/baselines/test_device_models.cc.o"
  "CMakeFiles/test_device_models.dir/baselines/test_device_models.cc.o.d"
  "test_device_models"
  "test_device_models.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_device_models.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
