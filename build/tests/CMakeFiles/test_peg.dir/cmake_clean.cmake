file(REMOVE_RECURSE
  "CMakeFiles/test_peg.dir/arch/test_peg.cc.o"
  "CMakeFiles/test_peg.dir/arch/test_peg.cc.o.d"
  "test_peg"
  "test_peg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_peg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
