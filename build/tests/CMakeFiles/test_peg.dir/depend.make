# Empty dependencies file for test_peg.
# This may be replaced when dependencies are built.
