file(REMOVE_RECURSE
  "CMakeFiles/test_report_json.dir/core/test_report_json.cc.o"
  "CMakeFiles/test_report_json.dir/core/test_report_json.cc.o.d"
  "test_report_json"
  "test_report_json.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_report_json.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
