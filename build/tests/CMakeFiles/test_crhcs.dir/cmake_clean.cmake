file(REMOVE_RECURSE
  "CMakeFiles/test_crhcs.dir/sched/test_crhcs.cc.o"
  "CMakeFiles/test_crhcs.dir/sched/test_crhcs.cc.o.d"
  "test_crhcs"
  "test_crhcs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_crhcs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
