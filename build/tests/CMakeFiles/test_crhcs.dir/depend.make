# Empty dependencies file for test_crhcs.
# This may be replaced when dependencies are built.
