# Empty compiler generated dependencies file for chason_spmv.
# This may be replaced when dependencies are built.
