file(REMOVE_RECURSE
  "CMakeFiles/chason_spmv.dir/chason_spmv.cpp.o"
  "CMakeFiles/chason_spmv.dir/chason_spmv.cpp.o.d"
  "chason_spmv"
  "chason_spmv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chason_spmv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
