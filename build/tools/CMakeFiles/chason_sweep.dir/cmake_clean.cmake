file(REMOVE_RECURSE
  "CMakeFiles/chason_sweep.dir/chason_sweep.cpp.o"
  "CMakeFiles/chason_sweep.dir/chason_sweep.cpp.o.d"
  "chason_sweep"
  "chason_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chason_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
