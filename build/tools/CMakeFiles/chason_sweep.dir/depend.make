# Empty dependencies file for chason_sweep.
# This may be replaced when dependencies are built.
