file(REMOVE_RECURSE
  "CMakeFiles/chason_dse.dir/chason_dse.cpp.o"
  "CMakeFiles/chason_dse.dir/chason_dse.cpp.o.d"
  "chason_dse"
  "chason_dse.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chason_dse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
