# Empty dependencies file for chason_dse.
# This may be replaced when dependencies are built.
