/**
 * @file
 * A miniature TAPA-style dataflow runtime.
 *
 * The real Chasoň is written against the TAPA framework: a graph of
 * free-running tasks connected by bounded FIFO streams, synthesized by
 * Vitis HLS. This header provides just enough of that programming
 * model — `Stream<T>` (bounded, closable FIFO) and `TaskGroup`
 * (spawn/join of concurrent tasks) — to express the paper's Fig. 6
 * dataflow as host-executable C++. Tasks run as real threads, so FIFO
 * backpressure, ordering and end-of-stream handling behave like the
 * hardware's; a kernel that deadlocks here would deadlock on the board
 * for the same structural reason.
 */

#ifndef CHASON_HLS_TAPA_STUB_H_
#define CHASON_HLS_TAPA_STUB_H_

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <optional>
#include <thread>
#include <vector>

#include "common/logging.h"

namespace chason {
namespace hls {

/**
 * Bounded FIFO stream with close semantics. write() blocks when full,
 * read() blocks when empty and returns nullopt once the stream is
 * closed and drained — the `eot` (end of transaction) convention of
 * TAPA streams.
 */
template <typename T>
class Stream
{
  public:
    explicit Stream(std::size_t depth = 2) : depth_(depth)
    {
        chason_assert(depth_ >= 1, "stream needs depth >= 1");
    }

    Stream(const Stream &) = delete;
    Stream &operator=(const Stream &) = delete;

    /** Blocking write; panics if the stream was already closed. */
    void
    write(T value)
    {
        std::unique_lock<std::mutex> lock(mutex_);
        notFull_.wait(lock, [this] {
            return queue_.size() < depth_ || closed_;
        });
        chason_assert(!closed_, "write to a closed stream");
        queue_.push_back(std::move(value));
        notEmpty_.notify_one();
    }

    /** Blocking read; nullopt after close-and-drain. */
    std::optional<T>
    read()
    {
        std::unique_lock<std::mutex> lock(mutex_);
        notEmpty_.wait(lock, [this] {
            return !queue_.empty() || closed_;
        });
        if (queue_.empty())
            return std::nullopt;
        T value = std::move(queue_.front());
        queue_.pop_front();
        notFull_.notify_one();
        return value;
    }

    /** Signal end of transaction. */
    void
    close()
    {
        std::lock_guard<std::mutex> lock(mutex_);
        closed_ = true;
        notEmpty_.notify_all();
        notFull_.notify_all();
    }

  private:
    std::size_t depth_;
    std::deque<T> queue_;
    bool closed_ = false;
    std::mutex mutex_;
    std::condition_variable notEmpty_;
    std::condition_variable notFull_;
};

/** Spawn-and-join group of concurrent tasks (TAPA's task().invoke). */
class TaskGroup
{
  public:
    TaskGroup() = default;
    TaskGroup(const TaskGroup &) = delete;
    TaskGroup &operator=(const TaskGroup &) = delete;

    ~TaskGroup() { join(); }

    /** Launch one task. */
    void
    invoke(std::function<void()> task)
    {
        threads_.emplace_back(std::move(task));
    }

    /** Wait for every task to finish. */
    void
    join()
    {
        for (std::thread &t : threads_) {
            if (t.joinable())
                t.join();
        }
        threads_.clear();
    }

  private:
    std::vector<std::thread> threads_;
};

} // namespace hls
} // namespace chason

#endif // CHASON_HLS_TAPA_STUB_H_
