/**
 * @file
 * The Fig. 6 dataflow expressed as TAPA-style tasks.
 *
 * This is the shape of the shipped HLS artifact: per matrix channel a
 * free-running reader task and a PEG task, all feeding a Merger task
 * over bounded FIFO streams. It executes the *same* offline schedules
 * as the beat-level simulator and must produce bit-identical results
 * (asserted by tests/hls/test_dataflow.cc) — demonstrating that the
 * paper's task decomposition (Read -> PEG -> Reduction -> Re-order/
 * Merge -> write) is functionally equivalent to the monolithic model.
 *
 * Scope: the functional dataflow with depth-1 migration (the paper's
 * configuration). Timing is the simulator's job; this layer checks
 * structure (FIFO ordering, end-of-stream handling, per-pass
 * synchronization between 16 producers and one consumer).
 */

#ifndef CHASON_HLS_SPMV_KERNEL_H_
#define CHASON_HLS_SPMV_KERNEL_H_

#include <vector>

#include "sched/schedule.h"

namespace chason {
namespace hls {

/**
 * Execute y = A x as the Fig. 6 dataflow.
 * Requires a schedule with migrationDepth <= 1 (the paper's design).
 */
std::vector<float> runDataflowSpmv(const sched::Schedule &schedule,
                                   const std::vector<float> &x);

} // namespace hls
} // namespace chason

#endif // CHASON_HLS_SPMV_KERNEL_H_
