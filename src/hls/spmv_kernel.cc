/**
 * @file
 * Dataflow SpMV kernel implementation.
 */

#include "hls/spmv_kernel.h"

#include <algorithm>
#include <memory>

#include "common/logging.h"
#include "hls/tapa_stub.h"

namespace chason {
namespace hls {

namespace {

/** Token on the per-channel A stream. */
struct AToken
{
    enum class Kind
    {
        PhaseStart, ///< window/pass header
        Beat,       ///< one 512-bit line of the channel's data list
        PassEnd,    ///< drain: reduce and emit
    };

    Kind kind = Kind::Beat;
    sched::Beat beat{};
    std::uint32_t pass = 0;
    std::uint32_t window = 0;
};

/** Per-pass lane sums a PEG hands to the Merger. */
struct LaneSums
{
    std::uint32_t pass = 0;
    // [pe][addr]: private partial sums of this channel's lanes.
    std::vector<std::vector<float>> pvt;
    // [src_pe][addr]: reduced shared sums for the next channel's lanes.
    std::vector<std::vector<float>> reduced;
};

/** Rows per lane actually used by a pass. */
std::uint32_t
passDepth(const sched::Schedule &schedule, std::uint32_t pass)
{
    const sched::SchedConfig &sc = schedule.config;
    const std::uint64_t pass_rows = std::min<std::uint64_t>(
        sc.rowsPerPass(),
        static_cast<std::uint64_t>(schedule.rows) -
            static_cast<std::uint64_t>(pass) * sc.rowsPerPass());
    return static_cast<std::uint32_t>(
        (pass_rows + sc.lanes() - 1) / sc.lanes());
}

/** The reader task: streams one channel's data lists, phase by phase. */
void
readerTask(const sched::Schedule &schedule, unsigned channel,
           Stream<AToken> &out)
{
    std::int64_t current_pass = -1;
    for (const sched::WindowSchedule &phase : schedule.phases) {
        if (static_cast<std::int64_t>(phase.pass) != current_pass) {
            if (current_pass >= 0) {
                AToken end;
                end.kind = AToken::Kind::PassEnd;
                out.write(end);
            }
            current_pass = phase.pass;
        }
        AToken header;
        header.kind = AToken::Kind::PhaseStart;
        header.pass = phase.pass;
        header.window = phase.window;
        out.write(header);
        for (const sched::Beat &beat : phase.channels[channel].beats) {
            AToken token;
            token.kind = AToken::Kind::Beat;
            token.beat = beat;
            out.write(token);
        }
    }
    if (current_pass >= 0) {
        AToken end;
        end.kind = AToken::Kind::PassEnd;
        out.write(end);
    }
    out.close();
}

/**
 * The PEG task: MACs beats into its URAM banks, and on PassEnd sweeps
 * the ScUGs through the (pairwise) adder tree and emits the lane sums.
 */
void
pegTask(const sched::Schedule &schedule, unsigned channel,
        const std::vector<float> &x, Stream<AToken> &in,
        Stream<LaneSums> &out)
{
    const sched::SchedConfig &sc = schedule.config;
    const sched::LaneMap map(sc);
    const unsigned pes = sc.pesPerGroup();

    std::uint32_t depth = 0;
    std::uint32_t current_pass = 0;
    // pvt[pe][addr]; sh[pe][src_pe][addr].
    std::vector<std::vector<float>> pvt;
    std::vector<std::vector<std::vector<float>>> sh;

    auto reset_banks = [&](std::uint32_t pass) {
        depth = passDepth(schedule, pass);
        pvt.assign(pes, std::vector<float>(depth, 0.0f));
        sh.assign(pes, std::vector<std::vector<float>>(
                           pes, std::vector<float>(depth, 0.0f)));
    };

    bool banks_ready = false;
    for (;;) {
        const std::optional<AToken> token = in.read();
        if (!token)
            break;
        switch (token->kind) {
          case AToken::Kind::PhaseStart:
            if (!banks_ready || token->pass != current_pass) {
                current_pass = token->pass;
                reset_banks(current_pass);
                banks_ready = true;
            }
            break;
          case AToken::Kind::Beat:
            for (unsigned p = 0; p < pes; ++p) {
                const sched::Slot &slot = token->beat.slots[p];
                if (!slot.valid)
                    continue;
                const float product = slot.value * x[slot.col];
                const std::uint32_t addr =
                    map.localRowOf(slot.row) % sc.rowsPerLanePerPass;
                chason_assert(addr < depth, "URAM address overflow");
                if (slot.pvt) {
                    pvt[p][addr] += product;
                } else {
                    chason_assert(
                        slot.chSrc == (channel + 1) % sc.channels,
                        "dataflow kernel supports depth-1 migration");
                    sh[p][slot.peSrc][addr] += product;
                }
            }
            break;
          case AToken::Kind::PassEnd: {
            // Reduction Unit: pairwise tree over the pes ScUG banks for
            // each source PE (same association as the hardware tree).
            LaneSums sums;
            sums.pass = current_pass;
            sums.pvt = pvt;
            sums.reduced.assign(pes, std::vector<float>(depth, 0.0f));
            for (unsigned k = 0; k < pes; ++k) {
                std::vector<std::vector<float>> stage;
                stage.reserve(pes);
                for (unsigned p = 0; p < pes; ++p)
                    stage.push_back(sh[p][k]);
                while (stage.size() > 1) {
                    std::vector<std::vector<float>> next;
                    for (std::size_t i = 0; i + 1 < stage.size(); i += 2) {
                        std::vector<float> merged(depth);
                        for (std::uint32_t a = 0; a < depth; ++a)
                            merged[a] = stage[i][a] + stage[i + 1][a];
                        next.push_back(std::move(merged));
                    }
                    if (stage.size() % 2 == 1)
                        next.push_back(std::move(stage.back()));
                    stage = std::move(next);
                }
                sums.reduced[k] = std::move(stage.front());
            }
            out.write(std::move(sums));
            banks_ready = false;
            break;
          }
        }
    }
    out.close();
}

/** The Merger: per pass, combine all 16 PEGs' sums into y. */
void
mergerTask(const sched::Schedule &schedule,
           std::vector<std::unique_ptr<Stream<LaneSums>>> &ins,
           std::vector<float> &y)
{
    const sched::SchedConfig &sc = schedule.config;
    const sched::LaneMap map(sc);
    const unsigned pes = sc.pesPerGroup();

    for (;;) {
        // One LaneSums per channel per pass, in channel order (the
        // Arbiter's round robin).
        std::vector<LaneSums> round;
        round.reserve(sc.channels);
        for (unsigned ch = 0; ch < sc.channels; ++ch) {
            std::optional<LaneSums> sums = ins[ch]->read();
            if (!sums) {
                chason_assert(ch == 0, "PEG streams ended out of sync");
                return; // all streams drained together
            }
            round.push_back(std::move(*sums));
        }

        const std::uint32_t pass = round.front().pass;
        const std::uint32_t local_base = pass * sc.rowsPerLanePerPass;
        const std::uint32_t depth = passDepth(schedule, pass);
        for (unsigned s = 0; s < sc.channels; ++s) {
            chason_assert(round[s].pass == pass, "pass skew in merger");
            // Shared sums for channel s were computed one channel back.
            const unsigned dest = (s + sc.channels - 1) % sc.channels;
            for (unsigned k = 0; k < pes; ++k) {
                for (std::uint32_t a = 0; a < depth; ++a) {
                    float value = round[s].pvt[k][a];
                    if (sc.channels > 1)
                        value += round[dest].reduced[k][a];
                    const std::uint32_t row =
                        map.globalRowOf(s, k, local_base + a);
                    if (row < schedule.rows)
                        y[row] = value;
                }
            }
        }
    }
}

} // namespace

std::vector<float>
runDataflowSpmv(const sched::Schedule &schedule,
                const std::vector<float> &x)
{
    const sched::SchedConfig &sc = schedule.config;
    chason_assert(sc.migrationDepth <= 1,
                  "dataflow kernel implements the paper's depth-1 design");
    chason_assert(x.size() == schedule.cols, "x size mismatch");

    std::vector<float> y(schedule.rows, 0.0f);
    if (schedule.phases.empty())
        return y;

    std::vector<std::unique_ptr<Stream<AToken>>> a_streams;
    std::vector<std::unique_ptr<Stream<LaneSums>>> sum_streams;
    for (unsigned ch = 0; ch < sc.channels; ++ch) {
        a_streams.push_back(std::make_unique<Stream<AToken>>(64));
        sum_streams.push_back(std::make_unique<Stream<LaneSums>>(2));
    }

    TaskGroup tasks;
    for (unsigned ch = 0; ch < sc.channels; ++ch) {
        Stream<AToken> &a_stream = *a_streams[ch];
        Stream<LaneSums> &sum_stream = *sum_streams[ch];
        tasks.invoke([&schedule, ch, &a_stream] {
            readerTask(schedule, ch, a_stream);
        });
        tasks.invoke([&schedule, ch, &x, &a_stream, &sum_stream] {
            pegTask(schedule, ch, x, a_stream, sum_stream);
        });
    }
    tasks.invoke([&schedule, &sum_streams, &y] {
        mergerTask(schedule, sum_streams, y);
    });
    tasks.join();
    return y;
}

} // namespace hls
} // namespace chason
