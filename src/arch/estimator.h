/**
 * @file
 * Closed-form cycle estimator.
 *
 * Computes the exact cycle breakdown an accelerator run will report
 * without executing the beat-by-beat simulation — useful for fast
 * design-space sweeps (the ablation benches) and as a specification of
 * the timing model: tests assert the estimator and the simulator agree
 * cycle-for-cycle on every matrix family.
 */

#ifndef CHASON_ARCH_ESTIMATOR_H_
#define CHASON_ARCH_ESTIMATOR_H_

#include "arch/accelerator.h"

namespace chason {
namespace arch {

/** Which datapath's timing rules to apply. */
enum class DatapathKind
{
    Serpens,
    Chason,
};

/**
 * Cycle breakdown of running @p schedule on the given datapath; equal
 * to the breakdown the corresponding Accelerator::run() reports.
 */
CycleBreakdown estimateCycles(const sched::Schedule &schedule,
                              const ArchConfig &config, DatapathKind kind);

/** Latency in microseconds for the same run. */
double estimateLatencyUs(const sched::Schedule &schedule,
                         const ArchConfig &config, DatapathKind kind);

/** The clock the datapath kind closes timing at (frequency model). */
double datapathFrequencyMhz(DatapathKind kind);

} // namespace arch
} // namespace chason

#endif // CHASON_ARCH_ESTIMATOR_H_
