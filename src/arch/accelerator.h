/**
 * @file
 * Accelerator base: configuration, run results, and the shared streaming
 * simulation both Serpens and Chasoň build on.
 */

#ifndef CHASON_ARCH_ACCELERATOR_H_
#define CHASON_ARCH_ACCELERATOR_H_

#include <memory>
#include <string>
#include <vector>

#include "arch/peg.h"
#include "arch/timing.h"
#include "hbm/hbm.h"
#include "sched/config.h"
#include "sched/schedule.h"

namespace chason {
namespace arch {

class StreamPlan; // arch/stream_soa.h

/** Full architecture configuration. */
struct ArchConfig
{
    sched::SchedConfig sched;
    hbm::HbmConfig hbm = hbm::HbmConfig::alveoU55c();
    TimingConfig timing;

    /**
     * Physical URAMs per ScUG (Section 4.5). 8 keeps one URAM per
     * logical bank; the shipped design folds to 4 (two banks per URAM),
     * halving the rows a pass can cover but not the performance.
     */
    unsigned scugSize = 4;

    /** Dense-vector x channel (one beyond the matrix channels). */
    unsigned xChannel() const { return sched.channels; }

    /** Result y channel. */
    unsigned yChannel() const { return sched.channels + 1; }

    /** Instruction/descriptor channel. */
    unsigned instChannel() const { return sched.channels + 2; }

    /** Channels in use (19 in the paper's configuration). */
    unsigned usedChannels() const { return sched.channels + 3; }

    /** Rows one pass may cover given the physical URAM capacity. */
    std::uint32_t capacityRowsPerLane() const;

    /** Validate and panic on inconsistencies. */
    void validate() const;
};

/**
 * Kernel-call parameters: the full contract is y = alpha * A x +
 * beta * y_in (the Serpens kernel family's interface; Eq. 8 uses the
 * same scalars for SpMM). The default (alpha 1, beta 0) is plain SpMV.
 */
struct SpmvParams
{
    float alpha = 1.0f;
    float beta = 0.0f;

    /** Previous y; required when beta != 0, ignored otherwise. */
    const std::vector<float> *yIn = nullptr;
};

/** Outcome of simulating one SpMV invocation. */
struct RunResult
{
    /** The computed result vector (length = matrix rows). */
    std::vector<float> y;

    /** Cycle breakdown at the accelerator's clock. */
    CycleBreakdown cycles;

    /** Per-channel transfer accounting. */
    hbm::HbmDevice traffic;

    /** Latency in microseconds at the configured clock. */
    double latencyUs = 0.0;

    /** Memory stall factor that was applied. */
    double memStallFactor = 1.0;

    RunResult() : traffic(hbm::HbmConfig::alveoU55c()) {}
};

/** Abstract streaming SpMV accelerator. */
class Accelerator
{
  public:
    explicit Accelerator(const ArchConfig &config);
    virtual ~Accelerator() = default;

    virtual std::string name() const = 0;

    /** Kernel clock this architecture closes timing at. */
    virtual double frequencyMhz() const = 0;

    /** Execute a schedule against the dense vector @p x. */
    virtual RunResult run(const sched::Schedule &schedule,
                          const std::vector<float> &x,
                          const SpmvParams &params = {}) const = 0;

    const ArchConfig &config() const { return config_; }

  protected:
    ArchConfig config_;

    /**
     * Shared streaming core. Simulates every phase beat by beat through
     * per-channel PEGs, accumulates timing and traffic, merges partial
     * sums into y at pass boundaries and accounts the final writeback.
     *
     * @param migration_depth shared banks instantiated per PE; 0 makes
     *        any migrated slot a hard error (the Serpens datapath).
     * @param with_reduction  account Reduction Unit sweeps per pass.
     * @param plan            optional pre-packed SoA lanes for this
     *        exact (schedule, migration_depth) pair — skips the
     *        beat-list traversal on every run (see arch/stream_soa.h).
     *        Results are bit-identical with or without a plan.
     */
    RunResult simulateStreaming(const sched::Schedule &schedule,
                                const std::vector<float> &x,
                                const SpmvParams &params,
                                unsigned migration_depth,
                                bool with_reduction,
                                const StreamPlan *plan = nullptr) const;
};

} // namespace arch
} // namespace chason

#endif // CHASON_ARCH_ACCELERATOR_H_
