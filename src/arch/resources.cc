/**
 * @file
 * Resource model implementation.
 *
 * Calibration targets (Table 1):
 *   Serpens: 219 K LUT, 252 K FF,  798 DSP, 1024 BRAM18K, 384 URAM
 *   Chasoň:  346 K LUT, 418 K FF, 1254 DSP, 1024 BRAM18K, 512 URAM
 */

#include "arch/resources.h"

namespace chason {
namespace arch {

namespace {

// Per-component costs (calibrated; see file header).
constexpr std::uint64_t kLutPerPe = 1200;        // mult + adder + ctrl
constexpr std::uint64_t kFfPerPe = 1400;
constexpr std::uint64_t kDspPerMult = 3;         // FP32 multiplier
constexpr std::uint64_t kDspPerAdd = 2;          // FP32 adder

constexpr std::uint64_t kLutPerChannelInfra = 2500; // AXI + FIFOs
constexpr std::uint64_t kFfPerChannelInfra = 3000;

constexpr std::uint64_t kLutDenseKernels = 18000;
constexpr std::uint64_t kFfDenseKernels = 15800;
constexpr std::uint64_t kDspDenseSerpens = 158;
constexpr std::uint64_t kDspDenseChason = 134; // merger absorbs arbiter

// Chasoň additions.
constexpr std::uint64_t kLutPerRouter = 400;    // per PE
constexpr std::uint64_t kFfPerRouter = 500;
constexpr std::uint64_t kLutPerReduction = 2800; // per PEG
constexpr std::uint64_t kFfPerReduction = 3600;
constexpr std::uint64_t kLutPerReorder = 1950;  // per channel
constexpr std::uint64_t kFfPerReorder = 2775;

// x-vector buffering: 4 dual-port BRAM36 per PE = 8 BRAM18 equivalents.
constexpr std::uint64_t kBram18PerPe = 8;

// Serpens partial-output storage per PE (calibrated to 384 total).
constexpr std::uint64_t kUramPerSerpensPe = 3;

} // namespace

double
FpgaResources::lutPercent() const
{
    return 100.0 * static_cast<double>(lut) / U55cDevice::kLut;
}

double
FpgaResources::ffPercent() const
{
    return 100.0 * static_cast<double>(ff) / U55cDevice::kFf;
}

double
FpgaResources::dspPercent() const
{
    return 100.0 * static_cast<double>(dsp) / U55cDevice::kDsp;
}

double
FpgaResources::bram18kPercent() const
{
    return 100.0 * static_cast<double>(bram18k) / U55cDevice::kBram18k;
}

double
FpgaResources::uramPercent() const
{
    return 100.0 * static_cast<double>(uram) / U55cDevice::kUram;
}

bool
FpgaResources::fitsU55c() const
{
    return lut <= U55cDevice::kLut && ff <= U55cDevice::kFf &&
        dsp <= U55cDevice::kDsp && bram18k <= U55cDevice::kBram18k &&
        uram <= U55cDevice::kUram;
}

FpgaResources
serpensResources(const ArchConfig &config)
{
    const std::uint64_t pes = config.sched.lanes();
    const std::uint64_t channels = config.usedChannels();

    FpgaResources r;
    r.lut = pes * kLutPerPe + channels * kLutPerChannelInfra +
        kLutDenseKernels;
    r.ff = pes * kFfPerPe + channels * kFfPerChannelInfra +
        kFfDenseKernels;
    r.dsp = pes * (kDspPerMult + kDspPerAdd) + kDspDenseSerpens;
    r.bram18k = pes * kBram18PerPe;
    r.uram = pes * kUramPerSerpensPe;
    return r;
}

std::uint64_t
chasonUramCount(const ArchConfig &config)
{
    // Eq. 3 with the shipped folding: one physical URAM per ScUG slot,
    // URAM_pvt folded into the group's budget.
    return static_cast<std::uint64_t>(config.sched.lanes()) *
        config.scugSize;
}

FpgaResources
chasonResources(const ArchConfig &config)
{
    const std::uint64_t pes = config.sched.lanes();
    const std::uint64_t pegs = config.sched.channels;
    const unsigned depth = std::max(1u, config.sched.migrationDepth);

    FpgaResources r = serpensResources(config);
    r.lut += pes * kLutPerRouter + pegs * kLutPerReduction * depth +
        pegs * kLutPerReorder;
    r.ff += pes * kFfPerRouter + pegs * kFfPerReduction * depth +
        pegs * kFfPerReorder;
    // Reduction adder tree (pes-1 adders per PEG per supported distance)
    // and the merging adders of the Rearrange Unit.
    r.dsp = pes * (kDspPerMult + kDspPerAdd) + kDspDenseChason +
        pegs * (config.sched.pesPerGroup() - 1) * kDspPerAdd * depth +
        pes * kDspPerAdd;
    r.uram = chasonUramCount(config) * depth;
    return r;
}

} // namespace arch
} // namespace chason
