/**
 * @file
 * Achieved-frequency model.
 *
 * On multi-die FPGAs the achievable clock is set by routing congestion
 * around the memory subsystem. Serpens funnels every partial output of a
 * PE into a single URAM, concentrating traffic and closing timing at
 * 223 MHz on the U55c; Chasoň's ScUG distributes that traffic over
 * several URAMs, and with Autobridge floorplanning closes at 301 MHz
 * (Section 4.5). The model captures this as a platform fmax derated by
 * a memory-port-concentration penalty, calibrated to the two published
 * design points.
 */

#ifndef CHASON_ARCH_FREQUENCY_H_
#define CHASON_ARCH_FREQUENCY_H_

namespace chason {
namespace arch {

/** How a design routes PE partial sums to on-chip memory. */
enum class MemoryTopology
{
    SingleUramPerPe,      ///< Serpens: one write target per PE
    DistributedUramGroup, ///< Chasoň: ScUG spreads the write traffic
};

/** Frequency model parameters (calibrated to the paper's U55c runs). */
struct FrequencyModel
{
    /** Kernel-clock ceiling attainable with Autobridge on the U55c. */
    double platformFmaxMhz = 322.0;

    /** Congestion penalty for concentrating writes on one URAM. */
    double singleUramPenalty = 0.3075;

    /** Residual penalty of the distributed topology (router muxes). */
    double distributedPenalty = 0.0652;

    /** Achieved clock for a topology. */
    double achievedMhz(MemoryTopology topology) const;
};

} // namespace arch
} // namespace chason

#endif // CHASON_ARCH_FREQUENCY_H_
