/**
 * @file
 * Stage-level pipeline model implementation.
 */

#include "arch/pipeline.h"

#include <cstdio>
#include <sstream>

#include "common/logging.h"

namespace chason {
namespace arch {

AdderPipeline::AdderPipeline(unsigned stages)
{
    chason_assert(stages >= 1, "pipeline needs at least one stage");
    inFlight_.resize(stages);
}

void
AdderPipeline::step(std::optional<PipelineInstruction> issue)
{
    // Drain the last stage and shift: an instruction issued exactly
    // rawDistance cycles after its same-address predecessor sees the
    // completed result, which is the tightest legal spacing.
    if (inFlight_.back())
        ++completed_;
    for (std::size_t s = inFlight_.size(); s-- > 1;)
        inFlight_[s] = inFlight_[s - 1];
    inFlight_[0] = std::nullopt;
    if (issue) {
        // A same-address instruction still in flight means the new one
        // would read a stale partial sum: the exact hazard PE-aware /
        // CrHCS scheduling exists to avoid (Section 2.2).
        for (const auto &slot : inFlight_) {
            chason_assert(!slot || slot->row != issue->row,
                          "RAW corruption: row %u issued while I%u is "
                          "still in flight", issue->row, slot->id);
        }
        inFlight_[0] = issue;
    }
    ++cycles_;
}

std::optional<PipelineInstruction>
AdderPipeline::at(unsigned stage) const
{
    chason_assert(stage >= 1 && stage <= inFlight_.size(),
                  "stage %u out of range", stage);
    return inFlight_[stage - 1];
}

bool
AdderPipeline::busy() const
{
    for (const auto &slot : inFlight_) {
        if (slot)
            return true;
    }
    return false;
}

std::string
PipelineTrace::toString() const
{
    std::ostringstream out;
    out << "cc |";
    for (unsigned s = 1; s <= stages; ++s) {
        char head[8];
        std::snprintf(head, sizeof(head), " S.%-3u", s);
        out << head;
    }
    out << "\n";
    for (std::size_t c = 0; c < lines.size(); ++c) {
        char head[32];
        std::snprintf(head, sizeof(head), "%2llu |",
                      static_cast<unsigned long long>(c + 1));
        out << head << lines[c] << "\n";
    }
    char tail[96];
    std::snprintf(tail, sizeof(tail),
                  "%llu instructions over %llu cycles: %.2f non-zeros "
                  "per cycle\n",
                  static_cast<unsigned long long>(instructions),
                  static_cast<unsigned long long>(cyclesToDrain),
                  throughputPerCycle);
    out << tail;
    return out.str();
}

PipelineTrace
tracePipeline(const sched::Schedule &schedule, std::size_t phase,
              unsigned channel, unsigned pe, std::size_t max_cycles)
{
    chason_assert(phase < schedule.phases.size(), "phase out of range");
    const sched::WindowSchedule &ws = schedule.phases[phase];
    chason_assert(channel < ws.channels.size(), "channel out of range");
    chason_assert(pe < schedule.config.pesPerGroup(), "PE out of range");

    const unsigned stages = schedule.config.rawDistance;
    AdderPipeline pipe(stages);
    PipelineTrace trace;
    trace.stages = stages;

    const auto &beats = ws.channels[channel].beats;
    std::uint32_t next_id = 1;

    auto snapshot = [&trace, &pipe, stages, max_cycles]() {
        if (trace.lines.size() >= max_cycles)
            return;
        std::string line;
        for (unsigned s = 1; s <= stages; ++s) {
            const auto inst = pipe.at(s);
            char cell[8];
            if (inst) {
                std::snprintf(cell, sizeof(cell), " %c%-4u",
                              inst->migrated ? 'i' : 'I', inst->id);
            } else {
                std::snprintf(cell, sizeof(cell), " %-5s", ".");
            }
            line += cell;
        }
        trace.lines.push_back(std::move(line));
    };

    for (const sched::Beat &beat : beats) {
        const sched::Slot &slot = beat.slots[pe];
        std::optional<PipelineInstruction> issue;
        if (slot.valid) {
            issue = PipelineInstruction{next_id++, slot.row, !slot.pvt};
            ++trace.instructions;
        }
        pipe.step(issue);
        snapshot();
    }
    while (pipe.busy()) {
        pipe.step(std::nullopt);
        snapshot();
    }

    trace.cyclesToDrain = pipe.cycles();
    trace.throughputPerCycle = beats.empty()
        ? 0.0
        : static_cast<double>(trace.instructions) /
            static_cast<double>(beats.size());
    chason_assert(pipe.completed() == trace.instructions,
                  "pipeline lost instructions");
    return trace;
}

} // namespace arch
} // namespace chason
