/**
 * @file
 * Frequency model implementation.
 *
 * Calibration: 322 * (1 - 0.3075) = 222.98 ~ 223 MHz (Serpens) and
 * 322 * (1 - 0.0652) = 301.0 MHz (Chasoň).
 */

#include "arch/frequency.h"

namespace chason {
namespace arch {

double
FrequencyModel::achievedMhz(MemoryTopology topology) const
{
    switch (topology) {
      case MemoryTopology::SingleUramPerPe:
        return platformFmaxMhz * (1.0 - singleUramPenalty);
      case MemoryTopology::DistributedUramGroup:
        return platformFmaxMhz * (1.0 - distributedPenalty);
    }
    return platformFmaxMhz;
}

} // namespace arch
} // namespace chason
