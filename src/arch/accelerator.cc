/**
 * @file
 * Shared streaming simulation core.
 */

#include "arch/accelerator.h"

#include <algorithm>
#include <cmath>
#include <mutex>

#include "arch/stream_soa.h"
#include "common/logging.h"
#include "trace/trace.h"

namespace chason {
namespace arch {

namespace {

/** FP32 words carried by one 512-bit beat of a dense stream. */
constexpr std::uint32_t kDenseWordsPerBeat = 16;

std::uint64_t
denseBeats(std::uint64_t words)
{
    return (words + kDenseWordsPerBeat - 1) / kDenseWordsPerBeat;
}

/**
 * Emit one device span onto the simulated-cycle timeline. Spans with
 * zero duration are dropped: they carry no cycles, and skipping them
 * keeps traces compact without affecting the attribution sums.
 */
void
deviceSpan(trace::TraceSink *sink, const char *name, trace::Category cat,
           std::uint32_t track, std::uint64_t begin, std::uint64_t dur,
           const char *arg_name0 = nullptr, std::uint64_t arg0 = 0,
           const char *arg_name1 = nullptr, std::uint64_t arg1 = 0)
{
    if (!sink || dur == 0)
        return;
    trace::SpanEvent span;
    span.name = name;
    span.cat = cat;
    span.track = track;
    span.device = true;
    span.begin = static_cast<double>(begin);
    span.dur = static_cast<double>(dur);
    span.argName0 = arg_name0;
    span.argVal0 = arg0;
    span.argName1 = arg_name1;
    span.argVal1 = arg1;
    sink->recordSpan(std::move(span));
}

/**
 * Reuse pool for PEG sets. Every simulateStreaming call needs a fully
 * reset PEG per channel; constructing them fresh allocates and
 * page-faults tens of MB of bank storage per run, which dominated
 * repeated-run simulation cost. Released sets keep their bank storage;
 * on reacquisition Peg::reset clears only the banks the previous run
 * actually wrote (AccumulatorBank tracks a dirty bit), so a pooled set
 * is bit-identical to a freshly constructed one.
 */
class PegSetPool
{
  public:
    static std::vector<Peg>
    acquire(const sched::SchedConfig &sc, unsigned migration_depth)
    {
        {
            std::lock_guard<std::mutex> lock(mutex());
            auto &sets = freeSets();
            for (std::size_t i = 0; i < sets.size(); ++i) {
                if (sets[i].channels == sc.channels &&
                    sets[i].pes == sc.pesPerGroup() &&
                    sets[i].depth == migration_depth) {
                    std::vector<Peg> pegs = std::move(sets[i].pegs);
                    sets.erase(sets.begin() +
                               static_cast<std::ptrdiff_t>(i));
                    return pegs;
                }
            }
        }
        std::vector<Peg> pegs;
        pegs.reserve(sc.channels);
        for (unsigned ch = 0; ch < sc.channels; ++ch)
            pegs.emplace_back(sc, migration_depth);
        return pegs;
    }

    static void
    release(const sched::SchedConfig &sc, unsigned migration_depth,
            std::vector<Peg> &&pegs)
    {
        std::lock_guard<std::mutex> lock(mutex());
        auto &sets = freeSets();
        if (sets.size() >= kMaxPooled)
            return; // drop: bounded cache, not a leak
        sets.push_back(
            {sc.channels, sc.pesPerGroup(), migration_depth,
             std::move(pegs)});
    }

  private:
    struct Entry
    {
        unsigned channels;
        unsigned pes;
        unsigned depth;
        std::vector<Peg> pegs;
    };

    static constexpr std::size_t kMaxPooled = 4;

    static std::mutex &
    mutex()
    {
        static std::mutex m;
        return m;
    }

    static std::vector<Entry> &
    freeSets()
    {
        static std::vector<Entry> sets;
        return sets;
    }
};

/** RAII lease so PEG sets return to the pool on every exit path. */
struct PegSetLease
{
    PegSetLease(const sched::SchedConfig &sc, unsigned migration_depth)
        : sc_(sc), depth_(migration_depth),
          pegs(PegSetPool::acquire(sc, migration_depth))
    {
    }

    ~PegSetLease()
    {
        PegSetPool::release(sc_, depth_, std::move(pegs));
    }

    const sched::SchedConfig &sc_;
    unsigned depth_;
    std::vector<Peg> pegs;
};

} // namespace

std::uint32_t
ArchConfig::capacityRowsPerLane() const
{
    // One URAM bank: 4096 deep x 72 bit, two FP32 partial sums per slot.
    constexpr std::uint32_t kRowsPerUram = 8192;
    // URAM_pvt is a full URAM; logical shared banks fold scugSize
    // physical URAMs over pesPerGroup() logical banks.
    const std::uint32_t shared_rows = static_cast<std::uint32_t>(
        static_cast<std::uint64_t>(kRowsPerUram) * scugSize /
        sched.pesPerGroup());
    if (sched.migrationDepth == 0)
        return kRowsPerUram;
    return std::min(kRowsPerUram, shared_rows);
}

void
ArchConfig::validate() const
{
    sched.validate();
    chason_assert(usedChannels() <= hbm.totalChannels,
                  "design needs %u channels, platform has %u",
                  usedChannels(), hbm.totalChannels);
    chason_assert(scugSize >= 1 && scugSize <= sched.pesPerGroup(),
                  "scugSize %u out of [1,%u]", scugSize,
                  sched.pesPerGroup());
    chason_assert(sched.rowsPerLanePerPass <= capacityRowsPerLane(),
                  "pass height %u exceeds URAM capacity %u",
                  sched.rowsPerLanePerPass, capacityRowsPerLane());
}

Accelerator::Accelerator(const ArchConfig &config) : config_(config)
{
    config_.validate();
}

RunResult
Accelerator::simulateStreaming(const sched::Schedule &schedule,
                               const std::vector<float> &x,
                               const SpmvParams &params,
                               unsigned migration_depth,
                               bool with_reduction,
                               const StreamPlan *plan) const
{
    chason_assert(plan == nullptr ||
                      plan->matches(schedule, migration_depth),
                  "stream plan was built for a different schedule or "
                  "migration depth");
    const sched::SchedConfig &sc = schedule.config;
    const bool reads_y = params.beta != 0.0f;
    chason_assert(!reads_y ||
                      (params.yIn && params.yIn->size() == schedule.rows),
                  "beta != 0 requires a y_in of %u entries",
                  schedule.rows);
    chason_assert(sc.channels == config_.sched.channels &&
                      sc.pesPerGroup() == config_.sched.pesPerGroup(),
                  "schedule geometry does not match the architecture");
    chason_assert(x.size() == schedule.cols,
                  "x has %zu entries, schedule expects %u", x.size(),
                  schedule.cols);
    // Note: a schedule whose slots migrate farther than the datapath's
    // shared banks reach is caught inside Pe::process.

    const sched::LaneMap map(sc);
    const double freq = frequencyMhz();
    const double mem_factor = memoryStallFactor(config_.hbm, freq);

    // Tracing: null (and folded away under -DCHASON_TRACE=OFF) unless
    // the calling thread is inside a trace::ScopedSink. sim_now is the
    // span cursor on the simulated-cycle timeline; it advances exactly
    // in step with the CycleBreakdown accumulation so the attribution
    // invariant (trace/attribution.h) holds by construction.
    trace::TraceSink *sink = trace::activeSink();
    std::uint64_t sim_now = 0;

    RunResult result;
    result.traffic = hbm::HbmDevice(config_.hbm);
    result.memStallFactor = mem_factor;
    result.y.assign(schedule.rows, 0.0f);

    PegSetLease lease(sc, migration_depth);
    std::vector<Peg> &pegs = lease.pegs;

    XWindowBuffer xbuf;
    StreamScratch stream_scratch;
    std::int64_t beat_base = 0;
    bool first_phase = true;

    // Depth of the URAM region a pass actually uses.
    auto pass_depth = [&](std::uint32_t pass) {
        const std::uint64_t pass_rows = std::min<std::uint64_t>(
            sc.rowsPerPass(),
            static_cast<std::uint64_t>(schedule.rows) -
                static_cast<std::uint64_t>(pass) * sc.rowsPerPass());
        return static_cast<std::uint32_t>(
            (pass_rows + map.lanes() - 1) / map.lanes());
    };

    // Merge partial sums of a finished pass into y and account the
    // Reduction Unit sweep. The two scratch vectors are hoisted out of
    // the per-(channel, PE) loop and the bank reads go through the raw
    // sum storage — same additions in the same order, no per-lane
    // allocation.
    std::vector<float> lane_sum;
    std::vector<float> reduced;
    auto finish_pass = [&](std::uint32_t pass) {
        const std::uint32_t depth = pass_depth(pass);
        const std::uint32_t local_base = pass * sc.rowsPerLanePerPass;

        // Consolidated shared sums: [source channel][source PE] -> rows.
        for (unsigned s = 0; s < sc.channels; ++s) {
            for (unsigned k = 0; k < sc.pesPerGroup(); ++k) {
                const float *pvt = pegs[s].pe(k).pvt().data();
                lane_sum.assign(pvt, pvt + depth);
                for (unsigned off = 1; off <= migration_depth; ++off) {
                    const unsigned dest =
                        (s + sc.channels - off) % sc.channels;
                    if (dest == s)
                        break;
                    reduced.resize(depth);
                    pegs[dest].reduceSharedInto(off, k, reduced.data());
                    for (std::uint32_t a = 0; a < depth; ++a)
                        lane_sum[a] += reduced[a];
                }
                for (std::uint32_t a = 0; a < depth; ++a) {
                    const std::uint32_t row =
                        map.globalRowOf(s, k, local_base + a);
                    if (row < schedule.rows) {
                        // Dense Vector Kernels unit: alpha/beta blend.
                        float value = params.alpha * lane_sum[a];
                        if (reads_y)
                            value += params.beta * (*params.yIn)[row];
                        result.y[row] = value;
                    }
                }
            }
        }

        // Drain of the finished pass. The Reduction Unit sweep (one
        // address per cycle per PEG, pes x depth x distances) feeds the
        // Re-order/Arbiter/Merger pipeline that writes y, so the two
        // overlap: the exposed time is max(sweep, y write) plus the
        // adder-tree latency. Serpens drains through the same y write
        // without a reduction stage.
        const std::uint64_t pass_rows = std::min<std::uint64_t>(
            sc.rowsPerPass(),
            static_cast<std::uint64_t>(schedule.rows) -
                static_cast<std::uint64_t>(pass) * sc.rowsPerPass());
        const std::uint64_t y_beats = denseBeats(pass_rows);
        const std::uint64_t y_cycles = streamCycles(y_beats, mem_factor);
        result.traffic.recordBeats(config_.yChannel(),
                                   hbm::Direction::Write, y_beats);
        // A beta != 0 call also streams the previous y in; the read is
        // independent of the matrix data and prefetches behind the
        // streaming phases, so it costs traffic but no exposed cycles.
        if (reads_y) {
            result.traffic.recordBeats(config_.yChannel(),
                                       hbm::Direction::Read, y_beats);
        }
        result.cycles.writeback += y_cycles;
        deviceSpan(sink, "y_writeback", trace::Category::Writeback,
                   trace::kTrackSequencer, sim_now, y_cycles, "pass",
                   pass, "y_beats", y_beats);
        sim_now += y_cycles;
        if (with_reduction && migration_depth > 0) {
            const std::uint64_t sweep =
                static_cast<std::uint64_t>(sc.pesPerGroup()) * depth *
                migration_depth;
            const std::uint64_t red_cycles =
                (sweep > y_cycles ? sweep - y_cycles : 0) +
                config_.timing.reductionTreeLatency;
            result.cycles.reduction += red_cycles;
            deviceSpan(sink, "scug_reduction", trace::Category::Reduction,
                       trace::kTrackSequencer, sim_now, red_cycles,
                       "pass", pass, "sweep_addresses", sweep);
            sim_now += red_cycles;
        }
    };

    std::int64_t current_pass = -1;
    for (std::size_t phase_idx = 0; phase_idx < schedule.phases.size();
         ++phase_idx) {
        const sched::WindowSchedule &phase = schedule.phases[phase_idx];
        if (static_cast<std::int64_t>(phase.pass) != current_pass) {
            if (current_pass >= 0)
                finish_pass(static_cast<std::uint32_t>(current_pass));
            current_pass = phase.pass;
            const std::uint32_t depth =
                pass_depth(static_cast<std::uint32_t>(current_pass));
            for (Peg &peg : pegs)
                peg.reset(depth);
        }

        // Dense-vector window load (one channel, broadcast to all
        // PEGs). The load of window w+1 is double-buffered behind the
        // streaming of window w in the dataflow design, so only the
        // first window's load — and any excess over the matrix stream —
        // costs wall-clock cycles.
        const std::uint32_t col_base = phase.window * sc.windowCols;
        const std::uint32_t win_len = std::min<std::uint32_t>(
            sc.windowCols, schedule.cols - col_base);
        xbuf.load(x, col_base, win_len);
        const std::uint64_t x_beats = denseBeats(win_len);
        result.traffic.recordBeats(config_.xChannel(),
                                   hbm::Direction::Read, x_beats);
        const std::uint64_t x_cycles = streamCycles(x_beats, mem_factor);
        const std::uint64_t stream_cycles =
            streamCycles(phase.alignedBeats, mem_factor);
        std::uint64_t exposed_x = 0;
        if (first_phase) {
            exposed_x = x_cycles;
            first_phase = false;
        } else if (x_cycles > stream_cycles) {
            exposed_x = x_cycles - stream_cycles;
        }
        result.cycles.xLoad += exposed_x;
        deviceSpan(sink, "x_window_load", trace::Category::XLoad,
                   trace::kTrackSequencer, sim_now, exposed_x, "window",
                   phase.window, "x_beats", x_beats);
        sim_now += exposed_x;

        // Matrix streaming: all channels in lockstep for alignedBeats.
        // The SoA path performs the same per-slot multiplies and
        // checked accumulations as walking Pe::process over the AoS
        // beat list, in the same per-bank order (see stream_soa.h).
        // With a StreamPlan the pre-packed lanes are replayed and the
        // beat-list traversal is skipped entirely.
        // chason-lint: begin-hot (per-channel streaming loop: the
        // simulator's steady-state replay path must not allocate)
        for (unsigned ch = 0; ch < sc.channels; ++ch) {
            const sched::ChannelWindowSchedule &cws = phase.channels[ch];
            if (plan) {
                macPackedChannel(plan->channel(phase_idx, ch), pegs[ch],
                                 xbuf, beat_base, sc,
                                 stream_scratch.product);
            } else {
                streamChannelSoa(cws, pegs[ch], xbuf, beat_base, sc, ch,
                                 migration_depth, stream_scratch);
            }
            result.traffic.recordBeats(ch, hbm::Direction::Read,
                                       phase.alignedBeats);

            // Per-PEG busy/stall split of this phase's streaming
            // window. A beat is busy when the channel's own list has a
            // valid slot in it; the lockstep padding up to alignedBeats
            // and all-stall beats are the stalls CrHCS exists to fill
            // (Fig. 2). busy + stall == stream_cycles exactly, so each
            // PEG track sums to CycleBreakdown::matrixStream.
            if (sink) {
                std::uint64_t busy_beats = 0;
                std::uint64_t valid_slots = 0;
                for (const sched::Beat &beat : cws.beats) {
                    const unsigned valid =
                        beat.validCount(sc.pesPerGroup());
                    busy_beats += valid > 0 ? 1 : 0;
                    valid_slots += valid;
                }
                const std::uint64_t busy = std::min(
                    streamCycles(busy_beats, mem_factor), stream_cycles);
                const std::uint64_t stall = stream_cycles - busy;
                deviceSpan(sink, "stream_busy",
                           trace::Category::MatrixStream, ch, sim_now,
                           busy, "valid_slots", valid_slots, "beats",
                           busy_beats);
                deviceSpan(sink, "stream_stall",
                           trace::Category::MatrixStream, ch,
                           sim_now + busy, stall, "stall_beats",
                           phase.alignedBeats - busy_beats);
            }
        }
        // chason-lint: end-hot
        result.cycles.matrixStream += stream_cycles;
        sim_now += stream_cycles;
        result.cycles.pipelineFill += config_.timing.pipelineFillCycles;
        deviceSpan(sink, "window_switch", trace::Category::PipelineFill,
                   trace::kTrackSequencer, sim_now,
                   config_.timing.pipelineFillCycles, "pass", phase.pass,
                   "window", phase.window);
        sim_now += config_.timing.pipelineFillCycles;

        // One descriptor beat on the instruction channel per phase.
        result.traffic.recordBeats(config_.instChannel(),
                                   hbm::Direction::Read, 1);
        result.cycles.instStream += 1;
        deviceSpan(sink, "descriptor", trace::Category::InstStream,
                   trace::kTrackSequencer, sim_now, 1);
        sim_now += 1;

        // The pipeline drains between phases, which also clears RAW
        // hazards across the boundary.
        beat_base += static_cast<std::int64_t>(phase.alignedBeats) +
            sc.rawDistance;
    }
    if (current_pass >= 0)
        finish_pass(static_cast<std::uint32_t>(current_pass));

    result.cycles.launch = static_cast<std::uint64_t>(
        std::ceil(config_.timing.launchOverheadUs * freq));
    deviceSpan(sink, "kernel_launch", trace::Category::Launch,
               trace::kTrackSequencer, sim_now, result.cycles.launch);
    sim_now += result.cycles.launch;

    result.latencyUs =
        static_cast<double>(result.cycles.total()) / freq;
    return result;
}

} // namespace arch
} // namespace chason
