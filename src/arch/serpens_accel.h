/**
 * @file
 * The Serpens baseline accelerator (Song et al., DAC 2022; Section 4.4).
 *
 * Same PEG geometry as Chasoň (16 channels x 8 PEs), but each PE stores
 * all partial outputs in a single private URAM: the datapath cannot
 * execute work from another channel, so any migrated slot in a schedule
 * is a hard error. There is no Reduction Unit; the Arbiter and Merger
 * only concatenate private streams. Closes timing at 223 MHz on the
 * U55c (rebuilt with Autobridge, Section 5.2).
 */

#ifndef CHASON_ARCH_SERPENS_ACCEL_H_
#define CHASON_ARCH_SERPENS_ACCEL_H_

#include "arch/accelerator.h"
#include "arch/frequency.h"

namespace chason {
namespace arch {

/** Serpens: intra-channel streaming SpMV accelerator. */
class SerpensAccelerator : public Accelerator
{
  public:
    explicit SerpensAccelerator(const ArchConfig &config);

    std::string name() const override { return "serpens"; }

    double frequencyMhz() const override { return frequencyMhz_; }

    RunResult run(const sched::Schedule &schedule,
                  const std::vector<float> &x,
                  const SpmvParams &params = {}) const override;

  private:
    double frequencyMhz_;
};

} // namespace arch
} // namespace chason

#endif // CHASON_ARCH_SERPENS_ACCEL_H_
