/**
 * @file
 * Serpens datapath implementation.
 */

#include "arch/serpens_accel.h"

#include "common/logging.h"

namespace chason {
namespace arch {

SerpensAccelerator::SerpensAccelerator(const ArchConfig &config)
    : Accelerator(config)
{
    FrequencyModel fm;
    frequencyMhz_ = fm.achievedMhz(MemoryTopology::SingleUramPerPe);
    chason_assert(config_.sched.migrationDepth == 0 ||
                      config_.sched.migrationDepth <= config_.sched
                          .channels,
                  "bad migration depth");
}

RunResult
SerpensAccelerator::run(const sched::Schedule &schedule,
                        const std::vector<float> &x,
                        const SpmvParams &params) const
{
    // The Serpens datapath has no shared banks: a schedule containing
    // migrated work cannot run on it.
    for (const sched::WindowSchedule &phase : schedule.phases) {
        for (const sched::ChannelWindowSchedule &ch : phase.channels) {
            for (const sched::Beat &beat : ch.beats) {
                for (unsigned p = 0; p < schedule.config.pesPerGroup();
                     ++p) {
                    chason_assert(!beat.slots[p].valid ||
                                      beat.slots[p].pvt,
                                  "Serpens cannot execute migrated "
                                  "non-zeros (row %u)",
                                  beat.slots[p].row);
                }
            }
        }
    }
    return simulateStreaming(schedule, x, params,
                             /*migration_depth=*/0,
                             /*with_reduction=*/false);
}

} // namespace arch
} // namespace chason
