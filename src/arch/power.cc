/**
 * @file
 * Power model implementation.
 */

#include "arch/power.h"

namespace chason {
namespace arch {

namespace {

// Fig. 10 calibration point: the shipped Chasoň at 301 MHz.
constexpr double kRefFrequencyMhz = 301.0;

} // namespace

PowerBreakdown
chasonEstimatedPower()
{
    PowerBreakdown p;
    p.staticW = 12.845;
    p.clocksW = 4.18;
    p.signalsW = 2.22;
    p.logicW = 2.76;
    p.bramW = 1.24;
    p.uramW = 1.51;
    p.dspW = 0.56;
    p.gtyW = 4.36;
    p.hbmW = 18.95;
    return p;
}

PowerBreakdown
estimatePower(const FpgaResources &resources, double frequency_mhz)
{
    const PowerBreakdown ref = chasonEstimatedPower();
    // The reference design the breakdown was measured on.
    ArchConfig ref_config;
    const FpgaResources ref_res = chasonResources(ref_config);

    const double f = frequency_mhz / kRefFrequencyMhz;
    auto scaled = [f](double ref_watts, double count, double ref_count) {
        if (ref_count <= 0.0)
            return ref_watts * f;
        return ref_watts * f * (count / ref_count);
    };

    PowerBreakdown p;
    p.staticW = ref.staticW;
    p.clocksW = ref.clocksW * f;
    p.signalsW = scaled(ref.signalsW, static_cast<double>(resources.ff),
                        static_cast<double>(ref_res.ff));
    p.logicW = scaled(ref.logicW, static_cast<double>(resources.lut),
                      static_cast<double>(ref_res.lut));
    p.bramW = scaled(ref.bramW, static_cast<double>(resources.bram18k),
                     static_cast<double>(ref_res.bram18k));
    p.uramW = scaled(ref.uramW, static_cast<double>(resources.uram),
                     static_cast<double>(ref_res.uram));
    p.dspW = scaled(ref.dspW, static_cast<double>(resources.dsp),
                    static_cast<double>(ref_res.dsp));
    p.gtyW = ref.gtyW;
    p.hbmW = ref.hbmW;
    return p;
}

double
chasonMeasuredPowerW()
{
    return 39.0;
}

double
serpensMeasuredPowerW()
{
    return 36.0;
}

} // namespace arch
} // namespace chason
