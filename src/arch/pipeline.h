/**
 * @file
 * Stage-level model of a PE's accumulating adder pipeline (Fig. 2).
 *
 * The beat-level simulator treats the accumulator as "one write per
 * rawDistance beats per bank". This model goes one level down: the
 * D-stage pipeline itself, with one instruction (one non-zero's
 * accumulation) entering per cycle and occupying stages S.1..S.D — the
 * view the paper draws in Figure 2. It exists to (a) render those
 * diagrams, and (b) prove by construction that a schedule satisfying
 * the RAW distance never has two in-flight instructions targeting the
 * same accumulator address — the hazard HLS cannot forward around
 * (Section 2.2: "dependent instructions must wait for the complete
 * output of their predecessors").
 */

#ifndef CHASON_ARCH_PIPELINE_H_
#define CHASON_ARCH_PIPELINE_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "sched/schedule.h"

namespace chason {
namespace arch {

/** One instruction flowing through the adder pipeline. */
struct PipelineInstruction
{
    std::uint32_t id = 0;     ///< issue order, 1-based like Fig. 2's I1..
    std::uint32_t row = 0;    ///< the accumulator address (global row)
    bool migrated = false;    ///< from a shared channel (pvt = 0)
};

/**
 * The D-stage accumulator pipeline of one PE. Issue at most one
 * instruction per cycle; issuing while another instruction with the
 * same accumulator address is still in flight panics (a real RAW
 * corruption).
 */
class AdderPipeline
{
  public:
    explicit AdderPipeline(unsigned stages);

    unsigned stages() const
    {
        return static_cast<unsigned>(inFlight_.size());
    }

    /** Advance one cycle, optionally issuing into stage 1. */
    void step(std::optional<PipelineInstruction> issue);

    /** Instruction currently in stage @p s (1-based), if any. */
    std::optional<PipelineInstruction> at(unsigned stage) const;

    /** Instructions completed (drained past the last stage) so far. */
    std::uint64_t completed() const { return completed_; }

    /** Cycles stepped so far. */
    std::uint64_t cycles() const { return cycles_; }

    /** True if any stage is occupied. */
    bool busy() const;

  private:
    std::vector<std::optional<PipelineInstruction>> inFlight_;
    std::uint64_t completed_ = 0;
    std::uint64_t cycles_ = 0;
};

/** One rendered row of the Fig. 2 pipeline table. */
struct PipelineTrace
{
    unsigned stages = 0;
    std::uint64_t cyclesToDrain = 0;
    std::uint64_t instructions = 0;
    double throughputPerCycle = 0.0; ///< the figure's headline number

    /** The rendered table: one line per cycle, "I<k>" per stage. */
    std::vector<std::string> lines;

    std::string toString() const;
};

/**
 * Replay one lane of one phase through the stage pipeline and render
 * the Fig. 2 style table. Panics if the schedule would ever overlap two
 * same-address instructions in flight — which also proves that the
 * schedule's rawDistance >= the stage count is sufficient.
 *
 * @param max_cycles clip the rendering (the trace keeps counting).
 */
PipelineTrace tracePipeline(const sched::Schedule &schedule,
                            std::size_t phase, unsigned channel,
                            unsigned pe, std::size_t max_cycles = 48);

} // namespace arch
} // namespace chason

#endif // CHASON_ARCH_PIPELINE_H_
