/**
 * @file
 * SoA streaming fast path implementation.
 */

#include "arch/stream_soa.h"

#include "common/logging.h"

#if defined(__x86_64__) || defined(_M_X64)
#define CHASON_STREAM_SOA_X86 1
#include <immintrin.h>
#else
#define CHASON_STREAM_SOA_X86 0
#endif

namespace chason {
namespace arch {

namespace {

/**
 * out[i] = val[i] * win[idx[i]], element-wise fp32 multiply. Kept free
 * of fused multiply-adds on purpose: the product must round to fp32
 * before the accumulate so the fast path reproduces Pe::process
 * bit-for-bit.
 */
void
mulGatherScalar(const float *val, const std::uint32_t *idx,
                std::size_t n, const float *win, float *out)
{
    for (std::size_t i = 0; i < n; ++i)
        out[i] = val[i] * win[idx[i]];
}

#if CHASON_STREAM_SOA_X86
__attribute__((target("avx2"))) void
mulGatherAvx2(const float *val, const std::uint32_t *idx, std::size_t n,
              const float *win, float *out)
{
    std::size_t i = 0;
    for (; i + 8 <= n; i += 8) {
        const __m256i vi = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(idx + i));
        const __m256 vx = _mm256_i32gather_ps(win, vi, 4);
        const __m256 vv = _mm256_loadu_ps(val + i);
        // _mm256_mul_ps rounds exactly like the scalar fp32 multiply.
        _mm256_storeu_ps(out + i, _mm256_mul_ps(vv, vx));
    }
    for (; i < n; ++i)
        out[i] = val[i] * win[idx[i]];
}

bool
cpuHasAvx2()
{
    return __builtin_cpu_supports("avx2") != 0;
}
#endif

void
mulGather(const float *val, const std::uint32_t *idx, std::size_t n,
          const float *win, float *out)
{
#if CHASON_STREAM_SOA_X86
    static const bool use_avx2 = cpuHasAvx2();
    if (use_avx2) {
        mulGatherAvx2(val, idx, n, win, out);
        return;
    }
#endif
    mulGatherScalar(val, idx, n, win, out);
}

} // namespace

bool
streamSoaUsesAvx2()
{
#if CHASON_STREAM_SOA_X86
    return cpuHasAvx2();
#else
    return false;
#endif
}

void
packChannel(const sched::ChannelWindowSchedule &cws,
            const sched::SchedConfig &config, unsigned channel,
            unsigned migration_depth, std::uint32_t win_base,
            std::uint32_t win_len, PackedChannel &out)
{
    const unsigned pes = config.pesPerGroup();
    const sched::LaneMap map(config);
    const std::uint32_t lanes = map.lanes();
    const std::uint32_t rplp = config.rowsPerLanePerPass;

    // Power-of-two geometry (the default config) turns the per-slot
    // divisions of the local-row derivation into shifts/masks.
    const bool lanes_pow2 = (lanes & (lanes - 1)) == 0;
    const bool rplp_pow2 = (rplp & (rplp - 1)) == 0;
    unsigned lane_shift = 0;
    while (lanes_pow2 && (1u << lane_shift) < lanes)
        ++lane_shift;

    for (unsigned p = 0; p < pes; ++p)
        out.lanes[p].clear();

    // Pack pass: one sequential read of the AoS beat list, appending
    // each valid slot to its PE's SoA lane. All model checks that
    // Pe::process performed per slot happen here.
    for (std::size_t t = 0; t < cws.beats.size(); ++t) {
        const sched::Beat &bt = cws.beats[t];
        for (unsigned p = 0; p < pes; ++p) {
            const sched::Slot &slot = bt.slots[p];
            if (!slot.valid)
                continue; // explicit zero: MAC skipped, PE idle
            PackedLane &lane = out.lanes[p];

            chason_assert(slot.col >= win_base &&
                              slot.col - win_base < win_len,
                          "column %u outside loaded window [%u, %u)",
                          slot.col, win_base, win_base + win_len);
            const std::uint32_t local_row = lanes_pow2
                ? slot.row >> lane_shift
                : slot.row / lanes;
            const std::uint32_t addr =
                rplp_pow2 ? (local_row & (rplp - 1)) : (local_row % rplp);

            std::uint8_t bank;
            if (slot.pvt) {
                chason_assert(
                    slot.chSrc == channel && slot.peSrc == p,
                    "private slot of lane (%u,%u) routed to (%u,%u)",
                    slot.chSrc, slot.peSrc, channel, p);
                bank = 0;
            } else {
                const unsigned distance =
                    (slot.chSrc + config.channels - channel) %
                    config.channels;
                chason_assert(distance >= 1 &&
                                  distance <= migration_depth,
                              "migrated slot from channel %u needs "
                              "distance %u, PE supports %u",
                              slot.chSrc, distance, migration_depth);
                chason_assert(slot.peSrc < pes, "PE_src %u out of range",
                              slot.peSrc);
                const unsigned bank_id =
                    1 + (distance - 1) * pes + slot.peSrc;
                chason_assert(bank_id <= 255,
                              "bank id %u overflows the SoA routing tag",
                              bank_id);
                bank = static_cast<std::uint8_t>(bank_id);
            }
            lane.value.push_back(slot.value);
            lane.winCol.push_back(slot.col - win_base);
            lane.addr.push_back(addr);
            lane.beat.push_back(static_cast<std::uint32_t>(t));
            lane.bank.push_back(bank);
        }
    }
}

void
macPackedChannel(const PackedChannel &packed, Peg &peg,
                 const XWindowBuffer &x, std::int64_t beat_base,
                 const sched::SchedConfig &config,
                 std::vector<float> &product)
{
    const unsigned pes = config.pesPerGroup();

    // MAC pass, one PE at a time: dense multiply, then in-order
    // accumulation through the checked banks.
    // chason-lint: begin-hot (runPlanned replay: the packed-lane MAC
    // loop is the hottest code in the simulator)
    for (unsigned p = 0; p < pes; ++p) {
        const PackedLane &lane = packed.lanes[p];
        const std::size_t n = lane.value.size();
        if (n == 0)
            continue;
        product.resize(n); // chason-lint: allow(CHL002) amortized scratch, capacity survives across calls
        mulGather(lane.value.data(), lane.winCol.data(), n, x.data(),
                  product.data());

        // Bank routing table: index 0 is URAM_pvt, then the shared
        // banks in (distance, source PE) order.
        Pe &pe = peg.pe(p);
        const unsigned depth = pe.migrationDepth();
        AccumulatorBank *banks[256]; // indexed by the uint8 routing tag
        banks[0] = &pe.pvtBank();
        for (unsigned d = 1; d <= depth; ++d)
            for (unsigned s = 0; s < pes; ++s)
                banks[1 + (d - 1) * pes + s] = &pe.sharedBank(d, s);

        const std::uint32_t *addr = lane.addr.data();
        const std::uint32_t *beat = lane.beat.data();
        const std::uint8_t *bank = lane.bank.data();
        const float *prod = product.data();
        for (std::size_t i = 0; i < n; ++i) {
            banks[bank[i]]->accumulate(
                addr[i], prod[i],
                beat_base + static_cast<std::int64_t>(beat[i]),
                config.rawDistance);
        }
    }
    // chason-lint: end-hot
}

void
streamChannelSoa(const sched::ChannelWindowSchedule &cws, Peg &peg,
                 const XWindowBuffer &x, std::int64_t beat_base,
                 const sched::SchedConfig &config, unsigned channel,
                 unsigned migration_depth, StreamScratch &scratch)
{
    packChannel(cws, config, channel, migration_depth, x.base(),
                x.length(), scratch.packed);
    macPackedChannel(scratch.packed, peg, x, beat_base, config,
                     scratch.product);
}

StreamPlan::StreamPlan(const sched::Schedule &schedule,
                       unsigned migration_depth)
    : channels_(schedule.config.channels),
      migrationDepth_(migration_depth),
      phaseCount_(schedule.phases.size()), nnz_(schedule.nnz)
{
    const sched::SchedConfig &sc = schedule.config;
    packed_.resize(phaseCount_ * channels_);
    for (std::size_t ph = 0; ph < phaseCount_; ++ph) {
        const sched::WindowSchedule &phase = schedule.phases[ph];
        const std::uint32_t win_base = phase.window * sc.windowCols;
        const std::uint32_t win_len = std::min<std::uint32_t>(
            sc.windowCols, schedule.cols - win_base);
        for (unsigned ch = 0; ch < channels_; ++ch) {
            packChannel(phase.channels[ch], sc, ch, migration_depth,
                        win_base, win_len,
                        packed_[ph * channels_ + ch]);
        }
    }
}

bool
StreamPlan::matches(const sched::Schedule &schedule,
                    unsigned migration_depth) const
{
    return channels_ == schedule.config.channels &&
        migrationDepth_ == migration_depth &&
        phaseCount_ == schedule.phases.size() && nnz_ == schedule.nnz;
}

} // namespace arch
} // namespace chason
