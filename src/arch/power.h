/**
 * @file
 * Power model (Fig. 10 and the measured numbers of Section 6.2.2).
 *
 * Two views exist, mirroring the paper's methodology:
 *  - the implementation-tool estimate with a per-component breakdown
 *    (Fig. 10: 48.715 W for Chasoň, HBM dominating at 18.95 W);
 *  - the xbutil-measured wall power during SpMV runs (39 W Chasoň,
 *    36 W Serpens), which is what the energy-efficiency metric (Eq. 6)
 *    divides by.
 */

#ifndef CHASON_ARCH_POWER_H_
#define CHASON_ARCH_POWER_H_

#include "arch/resources.h"

namespace chason {
namespace arch {

/** Component power breakdown in watts (Fig. 10 categories). */
struct PowerBreakdown
{
    double staticW = 0.0;
    double clocksW = 0.0;
    double signalsW = 0.0;
    double logicW = 0.0;
    double bramW = 0.0;
    double uramW = 0.0;
    double dspW = 0.0;
    double gtyW = 0.0;
    double hbmW = 0.0;

    double totalW() const
    {
        return staticW + clocksW + signalsW + logicW + bramW + uramW +
            dspW + gtyW + hbmW;
    }

    double dynamicW() const { return totalW() - staticW; }
};

/** The published Chasoň estimate (Fig. 10; totals 48.715 W). */
PowerBreakdown chasonEstimatedPower();

/**
 * Scale the Fig. 10 breakdown to another design point: logic-class
 * components scale with their resource counts and linearly with clock
 * frequency; static, GTY and HBM power do not.
 */
PowerBreakdown estimatePower(const FpgaResources &resources,
                             double frequency_mhz);

/** Measured wall power during SpMV (xbutil), Section 6.2.2. */
double chasonMeasuredPowerW();
double serpensMeasuredPowerW();

} // namespace arch
} // namespace chason

#endif // CHASON_ARCH_POWER_H_
