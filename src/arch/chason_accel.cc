/**
 * @file
 * Chasoň datapath implementation.
 */

#include "arch/chason_accel.h"

#include <algorithm>

namespace chason {
namespace arch {

ChasonAccelerator::ChasonAccelerator(const ArchConfig &config)
    : Accelerator(config)
{
    FrequencyModel fm;
    frequencyMhz_ = fm.achievedMhz(MemoryTopology::DistributedUramGroup);
}

unsigned
ChasonAccelerator::migrationDepth() const
{
    return std::max(1u, config_.sched.migrationDepth);
}

RunResult
ChasonAccelerator::run(const sched::Schedule &schedule,
                       const std::vector<float> &x,
                       const SpmvParams &params) const
{
    return simulateStreaming(schedule, x, params, migrationDepth(),
                             /*with_reduction=*/true);
}

RunResult
ChasonAccelerator::runPlanned(const sched::Schedule &schedule,
                              const StreamPlan &plan,
                              const std::vector<float> &x,
                              const SpmvParams &params) const
{
    return simulateStreaming(schedule, x, params, migrationDepth(),
                             /*with_reduction=*/true, &plan);
}

} // namespace arch
} // namespace chason
