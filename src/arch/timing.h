/**
 * @file
 * Timing model shared by the accelerator simulators.
 *
 * Both Serpens and Chasoň are fully streaming II=1 designs, so time is
 * dominated by how many 512-bit beats each phase streams, capped by the
 * per-channel HBM bandwidth. A kernel clocked above the channel's beat
 * rate (Chasoň at 301 MHz wants 19.3 GB/s per channel against the U55c's
 * 14.37 GB/s) stalls on memory; the memory stall factor models that:
 * streaming N beats costs ceil(N * factor) cycles.
 */

#ifndef CHASON_ARCH_TIMING_H_
#define CHASON_ARCH_TIMING_H_

#include <cstdint>

#include "hbm/hbm.h"

namespace chason {
namespace arch {

/** Cycle-cost constants of the datapaths. */
struct TimingConfig
{
    /** Kernel clock in MHz. */
    double frequencyMhz = 301.0;

    /**
     * Pipeline fill/drain per (pass, window) phase: multiplier, adder and
     * routing latency before the first result lands and after the last
     * beat enters.
     */
    unsigned pipelineFillCycles = 48;

    /**
     * Latency of the Reduction Unit's 8-input adder tree (3 stages of
     * the 10-cycle FP accumulator, plus margin).
     */
    unsigned reductionTreeLatency = 32;

    /**
     * Host-side kernel dispatch overhead per invocation in microseconds.
     * The paper amortizes bitstream/launch costs over 1000 iterations
     * (Section 5.2), so the per-iteration share is tiny.
     */
    double launchOverheadUs = 0.2;

    /** Cycles at this clock for a duration in microseconds. */
    std::uint64_t cyclesForUs(double us) const;
};

/**
 * Memory stall factor >= 1: effective cycles per streamed beat when the
 * clock outruns the per-channel HBM bandwidth.
 */
double memoryStallFactor(const hbm::HbmConfig &hbm, double frequency_mhz);

/** Cycles to stream @p beats at the given stall factor. */
std::uint64_t streamCycles(std::uint64_t beats, double stall_factor);

/** Cycle breakdown of one accelerator run. */
struct CycleBreakdown
{
    std::uint64_t matrixStream = 0; ///< matrix channel beats (aligned)
    std::uint64_t xLoad = 0;        ///< dense vector window loads
    std::uint64_t pipelineFill = 0; ///< per-phase fill/drain
    std::uint64_t reduction = 0;    ///< ScUG sweeps (Chasoň only)
    std::uint64_t writeback = 0;    ///< y read + write streaming
    std::uint64_t instStream = 0;   ///< instruction-order channel
    std::uint64_t launch = 0;       ///< host dispatch share

    std::uint64_t total() const
    {
        return matrixStream + xLoad + pipelineFill + reduction +
            writeback + instStream + launch;
    }
};

} // namespace arch
} // namespace chason

#endif // CHASON_ARCH_TIMING_H_
