/**
 * @file
 * Timing helpers.
 */

#include "arch/timing.h"

#include <cmath>

#include "common/logging.h"

namespace chason {
namespace arch {

std::uint64_t
TimingConfig::cyclesForUs(double us) const
{
    return static_cast<std::uint64_t>(std::ceil(us * frequencyMhz));
}

double
memoryStallFactor(const hbm::HbmConfig &hbm, double frequency_mhz)
{
    chason_assert(frequency_mhz > 0.0, "frequency must be positive");
    const double wanted_gbps =
        frequency_mhz * 1e6 * hbm.bytesPerBeat() / 1e9;
    return std::max(1.0, wanted_gbps / hbm.channelBandwidthGBps);
}

std::uint64_t
streamCycles(std::uint64_t beats, double stall_factor)
{
    chason_assert(stall_factor >= 1.0, "stall factor below 1");
    return static_cast<std::uint64_t>(
        std::ceil(static_cast<double>(beats) * stall_factor));
}

} // namespace arch
} // namespace chason
