/**
 * @file
 * Processing element group model (Section 4.2).
 *
 * A PEG owns eight PEs. Each PE has a multiplier, a 10-cycle accumulating
 * adder, a private-partial-sum URAM (URAM_pvt), and — in Chasoň — a
 * shared-channel URAM group (ScUG) with one logical bank per source PE
 * (and per migration-distance when the scheduler is configured beyond
 * the paper's depth of 1). The Router steers each product to the right
 * bank using the (pvt, PE_src) tags.
 *
 * The model is functional plus checked: every accumulation verifies the
 * RAW distance on its physical bank, so a schedule that would corrupt
 * data on the real pipeline panics here instead of silently producing
 * wrong sums.
 */

#ifndef CHASON_ARCH_PEG_H_
#define CHASON_ARCH_PEG_H_

#include <cstdint>
#include <vector>

#include "sched/config.h"
#include "sched/schedule.h"

namespace chason {
namespace arch {

/** One accumulator URAM bank with RAW-distance checking. */
class AccumulatorBank
{
  public:
    /** Clear sums and RAW history; size for @p depth rows. */
    void reset(std::size_t depth);

    /**
     * Accumulate @p product into address @p addr at stream beat @p beat.
     * Panics if the previous write to @p addr was closer than
     * @p raw_distance beats — the real pipeline would have read a stale
     * partial sum.
     */
    void accumulate(std::uint32_t addr, float product, std::int64_t beat,
                    unsigned raw_distance);

    float value(std::uint32_t addr) const;
    std::size_t depth() const { return sums_.size(); }

  private:
    std::vector<float> sums_;
    std::vector<std::int64_t> lastWrite_;
};

/** BRAM buffer holding the current window of the dense vector x. */
class XWindowBuffer
{
  public:
    /** Load x[base, base+len) as the active window. */
    void load(const std::vector<float> &x, std::uint32_t base,
              std::uint32_t len);

    /** Read by global column index; panics outside the window. */
    float at(std::uint32_t global_col) const;

    std::uint32_t base() const { return base_; }
    std::uint32_t length() const
    {
        return static_cast<std::uint32_t>(window_.size());
    }

  private:
    std::vector<float> window_;
    std::uint32_t base_ = 0;
};

/**
 * One processing element: multiplier + router + accumulator banks.
 * Shared banks are indexed [migration distance - 1][source PE].
 */
class Pe
{
  public:
    /**
     * @param migration_depth shared-bank distances supported (0 = a
     *                        Serpens PE with no shared storage)
     * @param pes             source PEs per shared distance
     */
    Pe(unsigned migration_depth, unsigned pes);

    /** Clear all banks and size them for @p uram_depth rows. */
    void reset(std::size_t uram_depth);

    /**
     * Consume one slot at stream beat @p beat: multiply by the x window
     * entry and accumulate into the bank selected by the slot's tags.
     * Panics if the slot needs a bank this PE does not have.
     */
    void process(const sched::Slot &slot, const XWindowBuffer &x,
                 std::int64_t beat, const sched::SchedConfig &config,
                 unsigned my_channel, unsigned my_pe);

    const AccumulatorBank &pvt() const { return pvt_; }

    /** Shared bank for (distance, source PE); distance >= 1. */
    const AccumulatorBank &shared(unsigned distance, unsigned src_pe) const;

    unsigned migrationDepth() const
    {
        return static_cast<unsigned>(shared_.size());
    }

  private:
    AccumulatorBank pvt_;
    std::vector<std::vector<AccumulatorBank>> shared_;
    unsigned pes_;
};

/**
 * A PEG: the PEs of one channel plus its Reduction Unit.
 */
class Peg
{
  public:
    Peg(const sched::SchedConfig &config, unsigned migration_depth);

    void reset(std::size_t uram_depth);

    Pe &pe(unsigned p);
    const Pe &pe(unsigned p) const;
    unsigned pes() const { return static_cast<unsigned>(pes_.size()); }

    /**
     * Reduction Unit (Section 4.2.2): sum the shared banks of all PEs
     * for a given (distance, source PE) — the adder-tree sweep — and
     * return the consolidated per-row partial sums.
     */
    std::vector<float> reduceShared(unsigned distance,
                                    unsigned src_pe) const;

  private:
    std::vector<Pe> pes_;
};

} // namespace arch
} // namespace chason

#endif // CHASON_ARCH_PEG_H_
