/**
 * @file
 * Processing element group model (Section 4.2).
 *
 * A PEG owns eight PEs. Each PE has a multiplier, a 10-cycle accumulating
 * adder, a private-partial-sum URAM (URAM_pvt), and — in Chasoň — a
 * shared-channel URAM group (ScUG) with one logical bank per source PE
 * (and per migration-distance when the scheduler is configured beyond
 * the paper's depth of 1). The Router steers each product to the right
 * bank using the (pvt, PE_src) tags.
 *
 * The model is functional plus checked: every accumulation verifies the
 * RAW distance on its physical bank, so a schedule that would corrupt
 * data on the real pipeline panics here instead of silently producing
 * wrong sums.
 */

#ifndef CHASON_ARCH_PEG_H_
#define CHASON_ARCH_PEG_H_

#include <cstdint>
#include <limits>
#include <vector>

#include "common/logging.h"
#include "sched/config.h"
#include "sched/schedule.h"

namespace chason {
namespace arch {

/** One accumulator URAM bank with RAW-distance checking. */
class AccumulatorBank
{
  public:
    /**
     * Clear sums and RAW history; size for @p depth rows. A no-op when
     * the bank is already @p depth deep and has not been written since
     * its last reset — most shared banks of a PEG set never receive a
     * migrated product, and skipping their clears removes the bulk of
     * the per-run reset traffic when PEG sets are reused across runs.
     */
    void reset(std::size_t depth);

    /**
     * Accumulate @p product into address @p addr at stream beat @p beat.
     * Panics if the previous write to @p addr was closer than
     * @p raw_distance beats — the real pipeline would have read a stale
     * partial sum. Defined inline: this is the innermost operation of
     * the streaming simulation, executed once per non-zero.
     */
    void
    accumulate(std::uint32_t addr, float product, std::int64_t beat,
               unsigned raw_distance)
    {
        chason_assert(addr < sums_.size(),
                      "bank address %u beyond depth %zu", addr,
                      sums_.size());
        chason_assert(beat >= 0 && beat <= kMaxBeat,
                      "beat %lld outside the bank's RAW stamp range",
                      static_cast<long long>(beat));
        chason_assert(
            static_cast<std::int64_t>(lastWrite_[addr]) +
                    static_cast<std::int64_t>(raw_distance) <=
                beat,
            "RAW hazard at address %u: writes at beats %lld and %lld",
            addr, static_cast<long long>(lastWrite_[addr]),
            static_cast<long long>(beat));
        sums_[addr] += product;
        lastWrite_[addr] = static_cast<std::int32_t>(beat);
        dirty_ = true;
    }

    float value(std::uint32_t addr) const;
    std::size_t depth() const { return sums_.size(); }

    /** Raw partial-sum storage, indexed by bank address. */
    const float *data() const { return sums_.data(); }

    /** True when the bank was written since its last reset. */
    bool dirty() const { return dirty_; }

  private:
    // RAW stamps are stored as int32 — half the reset/accumulate
    // traffic of int64 stamps. Stream beats are bounded by the total
    // schedule length, far below 2^31; accumulate() asserts the bound.
    static constexpr std::int64_t kMaxBeat =
        std::numeric_limits<std::int32_t>::max();
    static constexpr std::int32_t kNeverWritten =
        std::numeric_limits<std::int32_t>::min() / 2;

    std::vector<float> sums_;
    std::vector<std::int32_t> lastWrite_;
    bool dirty_ = false;
};

/** BRAM buffer holding the current window of the dense vector x. */
class XWindowBuffer
{
  public:
    /** Load x[base, base+len) as the active window. */
    void load(const std::vector<float> &x, std::uint32_t base,
              std::uint32_t len);

    /** Read by global column index; panics outside the window. */
    float at(std::uint32_t global_col) const;

    /** Raw window storage, indexed by window-local column. */
    const float *data() const { return window_.data(); }

    std::uint32_t base() const { return base_; }
    std::uint32_t length() const
    {
        return static_cast<std::uint32_t>(window_.size());
    }

  private:
    std::vector<float> window_;
    std::uint32_t base_ = 0;
};

/**
 * One processing element: multiplier + router + accumulator banks.
 * Shared banks are indexed [migration distance - 1][source PE].
 */
class Pe
{
  public:
    /**
     * @param migration_depth shared-bank distances supported (0 = a
     *                        Serpens PE with no shared storage)
     * @param pes             source PEs per shared distance
     */
    Pe(unsigned migration_depth, unsigned pes);

    /** Clear all banks and size them for @p uram_depth rows. */
    void reset(std::size_t uram_depth);

    /**
     * Consume one slot at stream beat @p beat: multiply by the x window
     * entry and accumulate into the bank selected by the slot's tags.
     * Panics if the slot needs a bank this PE does not have.
     */
    void process(const sched::Slot &slot, const XWindowBuffer &x,
                 std::int64_t beat, const sched::SchedConfig &config,
                 unsigned my_channel, unsigned my_pe);

    const AccumulatorBank &pvt() const { return pvt_; }

    /** Shared bank for (distance, source PE); distance >= 1. */
    const AccumulatorBank &shared(unsigned distance, unsigned src_pe) const;

    /**
     * Mutable bank access for the SoA streaming fast path
     * (arch/stream_soa.cc), which routes products itself and writes
     * through AccumulatorBank::accumulate directly. Same checks, same
     * banks — just without the per-slot routing re-derivation.
     */
    AccumulatorBank &pvtBank() { return pvt_; }
    AccumulatorBank &
    sharedBank(unsigned distance, unsigned src_pe)
    {
        chason_assert(distance >= 1 && distance <= shared_.size(),
                      "shared distance %u out of range", distance);
        chason_assert(src_pe < pes_, "source PE %u out of range", src_pe);
        return shared_[distance - 1][src_pe];
    }

    unsigned migrationDepth() const
    {
        return static_cast<unsigned>(shared_.size());
    }

  private:
    AccumulatorBank pvt_;
    std::vector<std::vector<AccumulatorBank>> shared_;
    unsigned pes_;
};

/**
 * A PEG: the PEs of one channel plus its Reduction Unit.
 */
class Peg
{
  public:
    Peg(const sched::SchedConfig &config, unsigned migration_depth);

    void reset(std::size_t uram_depth);

    Pe &pe(unsigned p);
    const Pe &pe(unsigned p) const;
    unsigned pes() const { return static_cast<unsigned>(pes_.size()); }

    /**
     * Reduction Unit (Section 4.2.2): sum the shared banks of all PEs
     * for a given (distance, source PE) — the adder-tree sweep — and
     * return the consolidated per-row partial sums.
     */
    std::vector<float> reduceShared(unsigned distance,
                                    unsigned src_pe) const;

    /**
     * Allocation-free reduceShared: writes the consolidated sums into
     * @p out (bank depth entries). Summation order is the same balanced
     * pairwise adder tree, evaluated element-wise, so the results are
     * bit-identical to reduceShared().
     */
    void reduceSharedInto(unsigned distance, unsigned src_pe,
                          float *out) const;

  private:
    static constexpr std::size_t kMaxLeaves = sched::kMaxPesPerGroup;

    std::vector<Pe> pes_;
};

} // namespace arch
} // namespace chason

#endif // CHASON_ARCH_PEG_H_
