/**
 * @file
 * The Chasoň accelerator (Section 4).
 *
 * Extends the Serpens datapath with, per PE, a Router and a shared-
 * channel URAM group (ScUG), and per PEG a Reduction Unit (adder tree
 * over the eight ScUGs) plus the Re-order/Arbiter/Merger rearrange
 * logic, so that non-zeros migrated by CrHCS accumulate correctly.
 * Closes timing at 301 MHz on the U55c thanks to the distributed URAM
 * write traffic (Section 4.5).
 */

#ifndef CHASON_ARCH_CHASON_ACCEL_H_
#define CHASON_ARCH_CHASON_ACCEL_H_

#include "arch/accelerator.h"
#include "arch/frequency.h"

namespace chason {
namespace arch {

/** Chasoň: cross-channel streaming SpMV accelerator. */
class ChasonAccelerator : public Accelerator
{
  public:
    explicit ChasonAccelerator(const ArchConfig &config);

    std::string name() const override { return "chason"; }

    double frequencyMhz() const override { return frequencyMhz_; }

    RunResult run(const sched::Schedule &schedule,
                  const std::vector<float> &x,
                  const SpmvParams &params = {}) const override;

    /**
     * Run against a pre-packed StreamPlan (see arch/stream_soa.h).
     * Bit-identical to run(); skips the per-run beat-list traversal,
     * which is the dominant host cost when the same schedule is
     * simulated repeatedly. The plan must have been built from this
     * exact schedule with this accelerator's migrationDepth().
     */
    RunResult runPlanned(const sched::Schedule &schedule,
                         const StreamPlan &plan,
                         const std::vector<float> &x,
                         const SpmvParams &params = {}) const;

    /**
     * Shared-bank distances the datapath instantiates; follows the
     * scheduler configuration (the paper builds depth 1).
     */
    unsigned migrationDepth() const;

  private:
    double frequencyMhz_;
};

} // namespace arch
} // namespace chason

#endif // CHASON_ARCH_CHASON_ACCEL_H_
