/**
 * @file
 * FPGA resource model (Table 1, Eq. 3).
 *
 * Counts are built from per-component costs (PE datapath, router, ScUG,
 * Reduction Unit, rearrange logic, AXI/stream infrastructure, dense
 * vector kernels) calibrated so that the default Serpens and Chasoň
 * configurations reproduce the paper's Table 1 exactly. Off-default
 * configurations (ScUG size, migration depth, PE count ablations) scale
 * with their component counts.
 */

#ifndef CHASON_ARCH_RESOURCES_H_
#define CHASON_ARCH_RESOURCES_H_

#include <cstdint>
#include <string>

#include "arch/accelerator.h"

namespace chason {
namespace arch {

/** One design's resource usage. */
struct FpgaResources
{
    std::uint64_t lut = 0;
    std::uint64_t ff = 0;
    std::uint64_t dsp = 0;
    std::uint64_t bram18k = 0;
    std::uint64_t uram = 0;

    /** Utilization percentages against the U55c device totals. */
    double lutPercent() const;
    double ffPercent() const;
    double dspPercent() const;
    double bram18kPercent() const;
    double uramPercent() const;

    /** True if the design fits the device. */
    bool fitsU55c() const;
};

/** U55c device totals (XCU55C-2FSVH2892E). */
struct U55cDevice
{
    static constexpr std::uint64_t kLut = 1304000;
    static constexpr std::uint64_t kFf = 2607000;
    static constexpr std::uint64_t kDsp = 9024;
    static constexpr std::uint64_t kBram18k = 4032;
    static constexpr std::uint64_t kUram = 960;
};

/** Resource usage of the Serpens datapath for @p config. */
FpgaResources serpensResources(const ArchConfig &config);

/** Resource usage of the Chasoň datapath for @p config. */
FpgaResources chasonResources(const ArchConfig &config);

/**
 * URAM count following the paper's Eq. 3 accounting (channels x PEs x
 * ScUG size): 1024 for the full ScUG of 8, 512 for the shipped 4.
 */
std::uint64_t chasonUramCount(const ArchConfig &config);

} // namespace arch
} // namespace chason

#endif // CHASON_ARCH_RESOURCES_H_
