/**
 * @file
 * Closed-form cycle estimator implementation. Mirrors the accounting in
 * Accelerator::simulateStreaming() exactly — any change there must be
 * reflected here (the equality is enforced by tests/arch/
 * test_estimator.cc).
 */

#include "arch/estimator.h"

#include <algorithm>
#include <cmath>

#include "arch/frequency.h"
#include "common/logging.h"

namespace chason {
namespace arch {

double
datapathFrequencyMhz(DatapathKind kind)
{
    const FrequencyModel fm;
    return fm.achievedMhz(kind == DatapathKind::Serpens
                              ? MemoryTopology::SingleUramPerPe
                              : MemoryTopology::DistributedUramGroup);
}

CycleBreakdown
estimateCycles(const sched::Schedule &schedule, const ArchConfig &config,
               DatapathKind kind)
{
    const sched::SchedConfig &sc = schedule.config;
    const double freq = datapathFrequencyMhz(kind);
    const double mem_factor = memoryStallFactor(config.hbm, freq);
    const unsigned lanes = sc.lanes();
    const unsigned migration_depth = kind == DatapathKind::Serpens
        ? 0
        : std::max(1u, sc.migrationDepth);

    CycleBreakdown cycles;
    bool first_phase = true;
    std::int64_t current_pass = -1;

    auto pass_rows_of = [&](std::uint32_t pass) -> std::uint64_t {
        return std::min<std::uint64_t>(
            sc.rowsPerPass(),
            static_cast<std::uint64_t>(schedule.rows) -
                static_cast<std::uint64_t>(pass) * sc.rowsPerPass());
    };

    // Per-pass drain: y write overlapped with the Reduction Unit sweep
    // (Chasoň only) plus the adder-tree latency — mirrors the
    // finish_pass accounting of the simulator.
    auto account_pass = [&](std::uint32_t pass) {
        const std::uint64_t pass_rows = pass_rows_of(pass);
        const std::uint64_t depth = (pass_rows + lanes - 1) / lanes;
        const std::uint64_t y_cycles =
            streamCycles((pass_rows + 15) / 16, mem_factor);
        cycles.writeback += y_cycles;
        if (kind == DatapathKind::Chason && migration_depth > 0) {
            const std::uint64_t sweep =
                static_cast<std::uint64_t>(sc.pesPerGroup()) * depth *
                migration_depth;
            cycles.reduction +=
                (sweep > y_cycles ? sweep - y_cycles : 0) +
                config.timing.reductionTreeLatency;
        }
    };

    for (const sched::WindowSchedule &phase : schedule.phases) {
        if (static_cast<std::int64_t>(phase.pass) != current_pass) {
            current_pass = phase.pass;
            account_pass(phase.pass);
        }

        const std::uint32_t col_base = phase.window * sc.windowCols;
        const std::uint32_t win_len =
            std::min<std::uint32_t>(sc.windowCols,
                                    schedule.cols - col_base);
        const std::uint64_t x_beats = (win_len + 15) / 16;
        const std::uint64_t x_cycles = streamCycles(x_beats, mem_factor);
        const std::uint64_t stream_cycles =
            streamCycles(phase.alignedBeats, mem_factor);
        if (first_phase) {
            cycles.xLoad += x_cycles;
            first_phase = false;
        } else if (x_cycles > stream_cycles) {
            cycles.xLoad += x_cycles - stream_cycles;
        }
        cycles.matrixStream += stream_cycles;
        cycles.pipelineFill += config.timing.pipelineFillCycles;
        cycles.instStream += 1;
    }

    cycles.launch = static_cast<std::uint64_t>(
        std::ceil(config.timing.launchOverheadUs * freq));
    return cycles;
}

double
estimateLatencyUs(const sched::Schedule &schedule, const ArchConfig &config,
                  DatapathKind kind)
{
    return static_cast<double>(
               estimateCycles(schedule, config, kind).total()) /
        datapathFrequencyMhz(kind);
}

} // namespace arch
} // namespace chason
