/**
 * @file
 * PEG model implementation.
 */

#include "arch/peg.h"

namespace chason {
namespace arch {

void
AccumulatorBank::reset(std::size_t depth)
{
    if (sums_.size() == depth && !dirty_)
        return; // already sized and still in post-reset state
    sums_.assign(depth, 0.0f);
    lastWrite_.assign(depth, kNeverWritten);
    dirty_ = false;
}

float
AccumulatorBank::value(std::uint32_t addr) const
{
    chason_assert(addr < sums_.size(), "bank address %u beyond depth %zu",
                  addr, sums_.size());
    return sums_[addr];
}

void
XWindowBuffer::load(const std::vector<float> &x, std::uint32_t base,
                    std::uint32_t len)
{
    chason_assert(static_cast<std::size_t>(base) + len <= x.size(),
                  "window [%u, %u) outside x of size %zu", base,
                  base + len, x.size());
    base_ = base;
    window_.assign(x.begin() + base, x.begin() + base + len);
}

float
XWindowBuffer::at(std::uint32_t global_col) const
{
    chason_assert(global_col >= base_ &&
                      global_col - base_ < window_.size(),
                  "column %u outside loaded window [%u, %zu)", global_col,
                  base_, base_ + window_.size());
    return window_[global_col - base_];
}

Pe::Pe(unsigned migration_depth, unsigned pes) : pes_(pes)
{
    shared_.resize(migration_depth);
    for (auto &banks : shared_)
        banks.resize(pes);
}

void
Pe::reset(std::size_t uram_depth)
{
    pvt_.reset(uram_depth);
    for (auto &banks : shared_) {
        for (AccumulatorBank &bank : banks)
            bank.reset(uram_depth);
    }
}

void
Pe::process(const sched::Slot &slot, const XWindowBuffer &x,
            std::int64_t beat, const sched::SchedConfig &config,
            unsigned my_channel, unsigned my_pe)
{
    if (!slot.valid)
        return; // explicit zero: MAC skipped, PE idle this beat

    const sched::LaneMap map(config);
    const float product = slot.value * x.at(slot.col);
    const std::uint32_t local_row =
        map.localRowOf(slot.row) % config.rowsPerLanePerPass;

    if (slot.pvt) {
        chason_assert(slot.chSrc == my_channel && slot.peSrc == my_pe,
                      "private slot of lane (%u,%u) routed to (%u,%u)",
                      slot.chSrc, slot.peSrc, my_channel, my_pe);
        pvt_.accumulate(local_row, product, beat, config.rawDistance);
        return;
    }

    const unsigned distance =
        (slot.chSrc + config.channels - my_channel) % config.channels;
    chason_assert(distance >= 1 && distance <= shared_.size(),
                  "migrated slot from channel %u needs distance %u, PE "
                  "supports %zu", slot.chSrc, distance, shared_.size());
    chason_assert(slot.peSrc < pes_, "PE_src %u out of range", slot.peSrc);
    shared_[distance - 1][slot.peSrc].accumulate(local_row, product, beat,
                                                 config.rawDistance);
}

const AccumulatorBank &
Pe::shared(unsigned distance, unsigned src_pe) const
{
    chason_assert(distance >= 1 && distance <= shared_.size(),
                  "shared distance %u out of range", distance);
    chason_assert(src_pe < pes_, "source PE %u out of range", src_pe);
    return shared_[distance - 1][src_pe];
}

Peg::Peg(const sched::SchedConfig &config, unsigned migration_depth)
{
    pes_.reserve(config.pesPerGroup());
    for (unsigned p = 0; p < config.pesPerGroup(); ++p)
        pes_.emplace_back(migration_depth, config.pesPerGroup());
}

void
Peg::reset(std::size_t uram_depth)
{
    for (Pe &pe : pes_)
        pe.reset(uram_depth);
}

Pe &
Peg::pe(unsigned p)
{
    chason_assert(p < pes_.size(), "PE %u out of range", p);
    return pes_[p];
}

const Pe &
Peg::pe(unsigned p) const
{
    chason_assert(p < pes_.size(), "PE %u out of range", p);
    return pes_[p];
}

std::vector<float>
Peg::reduceShared(unsigned distance, unsigned src_pe) const
{
    chason_assert(!pes_.empty(), "PEG without PEs");
    const std::size_t depth = pes_.front().shared(distance, src_pe).depth();
    std::vector<float> reduced(depth);
    reduceSharedInto(distance, src_pe, reduced.data());
    return reduced;
}

void
Peg::reduceSharedInto(unsigned distance, unsigned src_pe,
                      float *out) const
{
    chason_assert(!pes_.empty(), "PEG without PEs");
    const std::size_t depth = pes_.front().shared(distance, src_pe).depth();
    const float *leaf[kMaxLeaves];
    const std::size_t n = pes_.size();
    chason_assert(n <= kMaxLeaves, "PEG with more than %zu PEs",
                  kMaxLeaves);
    for (std::size_t i = 0; i < n; ++i)
        leaf[i] = pes_[i].shared(distance, src_pe).data();

    // Adder-tree order: pairwise over the eight ScUGs. Summation order
    // matches a balanced tree, like the hardware — evaluated one
    // address at a time, so nothing is allocated per sweep. An odd
    // stage carries its last operand up unchanged, exactly as the
    // staged formulation did.
    for (std::uint32_t a = 0; a < depth; ++a) {
        float v[kMaxLeaves];
        for (std::size_t i = 0; i < n; ++i)
            v[i] = leaf[i][a];
        std::size_t m = n;
        while (m > 1) {
            const std::size_t half = m / 2;
            for (std::size_t i = 0; i < half; ++i)
                v[i] = v[2 * i] + v[2 * i + 1];
            if (m % 2 == 1)
                v[half] = v[m - 1];
            m = half + (m % 2);
        }
        out[a] = v[0];
    }
}

} // namespace arch
} // namespace chason
