/**
 * @file
 * SoA fast path for the streaming phase of the cycle-level simulation.
 *
 * The straightforward simulator walks the AoS beat list and calls
 * Pe::process per slot, re-deriving the lane map, re-checking the x
 * window and re-selecting the destination bank for every non-zero. This
 * module restructures one channel-phase into struct-of-arrays staging:
 * a single *pack* pass over the beat list appends the valid slots of
 * each PE to flat value/column/address/bank arrays, then the *MAC* pass
 * multiplies against the x window as one dense loop over those arrays
 * (AVX2 gather+mul when the CPU supports it, portable scalar otherwise)
 * and accumulates the products in beat order through the exact same
 * AccumulatorBank::accumulate as the slow path — RAW checking included.
 *
 * The pack output depends only on the schedule and the geometry — not
 * on x — so a caller that streams the same schedule repeatedly (the
 * whole point of offline scheduling: one schedule, many SpMV calls) can
 * pack every channel-phase once into a StreamPlan and amortize the
 * beat-list traversal away entirely. simulateStreaming accepts an
 * optional plan; the per-run work then collapses to the dense multiply
 * and the checked accumulations.
 *
 * Bit-identity: a bank only ever receives products from its owning
 * (channel, PE) lane, and this path preserves the beat order within
 * each lane, so every bank sees the same additions in the same order as
 * the per-slot walk. Products are rounded to fp32 by an explicit
 * multiply before the add (never fused into an FMA), matching the
 * two-step multiply/accumulate of Pe::process. The cycle accounting is
 * untouched — this is purely a host-speed rewrite of the functional
 * model's inner loop.
 */

#ifndef CHASON_ARCH_STREAM_SOA_H_
#define CHASON_ARCH_STREAM_SOA_H_

#include <array>
#include <cstdint>
#include <vector>

#include "arch/peg.h"
#include "sched/schedule.h"

namespace chason {
namespace arch {

/** SoA staging for the valid slots one PE consumes in one phase. */
struct PackedLane
{
    std::vector<float> value;          ///< matrix values
    std::vector<std::uint32_t> winCol; ///< window-local column
    std::vector<std::uint32_t> addr;   ///< local URAM address
    std::vector<std::uint32_t> beat;   ///< beat offset within phase
    std::vector<std::uint8_t> bank;    ///< 0 = pvt, 1+... = shared

    void
    clear()
    {
        value.clear();
        winCol.clear();
        addr.clear();
        beat.clear();
        bank.clear();
    }
};

/** All PE lanes of one channel-phase. */
struct PackedChannel
{
    std::array<PackedLane, sched::kMaxPesPerGroup> lanes;
};

/** Reusable scratch for plan-less streaming: lanes + product buffer. */
struct StreamScratch
{
    PackedChannel packed;
    std::vector<float> product;
};

/**
 * Pack one channel's beat list of one phase into per-PE SoA lanes.
 * Performs every model check Pe::process would have made per slot
 * (window bounds, routing tags, bank reach). @p win_base / @p win_len
 * describe the x window the phase will stream against.
 */
void packChannel(const sched::ChannelWindowSchedule &cws,
                 const sched::SchedConfig &config, unsigned channel,
                 unsigned migration_depth, std::uint32_t win_base,
                 std::uint32_t win_len, PackedChannel &out);

/**
 * MAC pass over pre-packed lanes: dense multiply against @p x, then
 * in-order accumulation through @p peg's checked banks. @p product is
 * caller-provided scratch, resized per lane.
 */
void macPackedChannel(const PackedChannel &packed, Peg &peg,
                      const XWindowBuffer &x, std::int64_t beat_base,
                      const sched::SchedConfig &config,
                      std::vector<float> &product);

/**
 * Pack + MAC in one call (the plan-less path): stream one channel's
 * beat list of one phase into @p peg. Performs the same multiplies,
 * accumulations and model checks as calling Pe::process on every slot,
 * in the same per-bank order.
 */
void streamChannelSoa(const sched::ChannelWindowSchedule &cws, Peg &peg,
                      const XWindowBuffer &x, std::int64_t beat_base,
                      const sched::SchedConfig &config, unsigned channel,
                      unsigned migration_depth, StreamScratch &scratch);

/**
 * Every channel-phase of one schedule, packed once. Build a plan when
 * the same schedule is streamed more than once (repeated SpMV, DSE
 * sweeps, benchmarking); Accelerator::simulateStreaming then skips the
 * beat-list traversal and replays the packed lanes. The plan is
 * immutable after construction and safe to share across threads.
 *
 * The plan captures schedule *content*; it must be built from the same
 * schedule object (or a bit-identical copy) and the same migration
 * depth as the runs it accompanies — matches() spot-checks geometry.
 */
class StreamPlan
{
  public:
    StreamPlan(const sched::Schedule &schedule, unsigned migration_depth);

    /** Cheap consistency check against a schedule / depth pair. */
    bool matches(const sched::Schedule &schedule,
                 unsigned migration_depth) const;

    const PackedChannel &
    channel(std::size_t phase, unsigned ch) const
    {
        return packed_[phase * channels_ + ch];
    }

    unsigned migrationDepth() const { return migrationDepth_; }

  private:
    unsigned channels_ = 0;
    unsigned migrationDepth_ = 0;
    std::size_t phaseCount_ = 0;
    std::size_t nnz_ = 0;
    std::vector<PackedChannel> packed_; ///< [phase * channels + ch]
};

/** True when the AVX2 gather+mul kernel is compiled in and usable. */
bool streamSoaUsesAvx2();

} // namespace arch
} // namespace chason

#endif // CHASON_ARCH_STREAM_SOA_H_
