/**
 * @file
 * High-bandwidth memory device model.
 *
 * Models the HBM2 stacks of the AMD Xilinx Alveo U55c at the granularity
 * the streaming accelerators care about: independent pseudo channels, a
 * 512-bit AXI data path per channel (one "beat" per kernel clock cycle),
 * per-channel peak bandwidth, and byte/beat transfer accounting. The
 * paper's designs are fully streaming, so a channel is busy for exactly
 * one beat per 64-byte line it delivers; contention and row-buffer
 * effects inside the stack are abstracted into the per-channel peak
 * bandwidth (Section 5.1: 14.37 GB/s per channel, 460 GB/s aggregate).
 */

#ifndef CHASON_HBM_HBM_H_
#define CHASON_HBM_HBM_H_

#include <cstdint>
#include <string>
#include <vector>

namespace chason {
namespace hbm {

/** Static description of an HBM-equipped platform. */
struct HbmConfig
{
    /** Total pseudo channels exposed by the stacks. */
    unsigned totalChannels = 32;

    /** AXI data width per channel in bits (512 on the U55c). */
    unsigned channelBits = 512;

    /** Peak bandwidth per channel in GB/s. */
    double channelBandwidthGBps = 14.37;

    /** Capacity in GiB (16 on the U55c). */
    double capacityGiB = 16.0;

    /** Bytes moved by one beat. */
    unsigned bytesPerBeat() const { return channelBits / 8; }

    /** Aggregate peak bandwidth in GB/s. */
    double peakBandwidthGBps() const
    {
        return channelBandwidthGBps * totalChannels;
    }

    /** The Alveo U55c (the paper's platform). */
    static HbmConfig alveoU55c();

    /** The Alveo U280 (Serpens' original platform; 460 -> 273 GB/s). */
    static HbmConfig alveoU280();
};

/** Direction of a channel transfer. */
enum class Direction
{
    Read,
    Write,
};

/**
 * Transfer accounting for one pseudo channel. The simulators record one
 * beat per streamed 512-bit line; totals feed the bandwidth-efficiency
 * metric (Eq. 7) and the data-transfer-reduction results (Fig. 15).
 */
class ChannelCounter
{
  public:
    void recordBeats(Direction dir, std::uint64_t beats,
                     unsigned bytes_per_beat);

    std::uint64_t readBeats() const { return readBeats_; }
    std::uint64_t writeBeats() const { return writeBeats_; }
    std::uint64_t readBytes() const { return readBytes_; }
    std::uint64_t writeBytes() const { return writeBytes_; }
    std::uint64_t totalBytes() const { return readBytes_ + writeBytes_; }

    void reset();

  private:
    std::uint64_t readBeats_ = 0;
    std::uint64_t writeBeats_ = 0;
    std::uint64_t readBytes_ = 0;
    std::uint64_t writeBytes_ = 0;
};

/**
 * An HBM device: a bundle of channel counters plus the static config.
 * Channels are identified by index; the accelerator decides the role of
 * each (matrix stream, vector load, result writeback, instruction feed).
 */
class HbmDevice
{
  public:
    explicit HbmDevice(const HbmConfig &config);

    const HbmConfig &config() const { return config_; }
    unsigned channels() const
    {
        return static_cast<unsigned>(counters_.size());
    }

    /** Record @p beats 512-bit beats on channel @p ch. */
    void recordBeats(unsigned ch, Direction dir, std::uint64_t beats);

    const ChannelCounter &channel(unsigned ch) const;

    /** Total bytes moved across all channels. */
    std::uint64_t totalBytes() const;

    /** Total beats across all channels (read + write). */
    std::uint64_t totalBeats() const;

    /**
     * Achieved bandwidth in GB/s given the kernel ran for @p cycles at
     * @p frequency_mhz. Returns 0 for a zero-cycle run.
     */
    double achievedBandwidthGBps(std::uint64_t cycles,
                                 double frequency_mhz) const;

    /** Reset all counters (between runs). */
    void reset();

  private:
    HbmConfig config_;
    std::vector<ChannelCounter> counters_;
};

/**
 * Minimum kernel cycles needed to move @p bytes through @p used_channels
 * at @p frequency_mhz without exceeding per-channel peak bandwidth. The
 * streaming designs run at one beat/cycle, which stays under the HBM
 * peak whenever frequency * 64 B <= 14.37 GB/s; this helper lets tests
 * verify that claim for the paper's clock rates.
 */
std::uint64_t minCyclesForBytes(const HbmConfig &config, unsigned used_channels,
                                std::uint64_t bytes, double frequency_mhz);

} // namespace hbm
} // namespace chason

#endif // CHASON_HBM_HBM_H_
