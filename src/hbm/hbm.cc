/**
 * @file
 * HBM device model implementation.
 */

#include "hbm/hbm.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace chason {
namespace hbm {

HbmConfig
HbmConfig::alveoU55c()
{
    HbmConfig cfg;
    cfg.totalChannels = 32;
    cfg.channelBits = 512;
    cfg.channelBandwidthGBps = 14.37;
    cfg.capacityGiB = 16.0;
    return cfg;
}

HbmConfig
HbmConfig::alveoU280()
{
    HbmConfig cfg;
    cfg.totalChannels = 32;
    cfg.channelBits = 512;
    cfg.channelBandwidthGBps = 8.53; // 273 GB/s aggregate
    cfg.capacityGiB = 8.0;
    return cfg;
}

void
ChannelCounter::recordBeats(Direction dir, std::uint64_t beats,
                            unsigned bytes_per_beat)
{
    if (dir == Direction::Read) {
        readBeats_ += beats;
        readBytes_ += beats * bytes_per_beat;
    } else {
        writeBeats_ += beats;
        writeBytes_ += beats * bytes_per_beat;
    }
}

void
ChannelCounter::reset()
{
    *this = ChannelCounter();
}

HbmDevice::HbmDevice(const HbmConfig &config)
    : config_(config), counters_(config.totalChannels)
{
    chason_assert(config.totalChannels > 0, "HBM needs channels");
    chason_assert(config.channelBits % 8 == 0, "channel width in bits "
                  "must be byte aligned");
}

void
HbmDevice::recordBeats(unsigned ch, Direction dir, std::uint64_t beats)
{
    chason_assert(ch < counters_.size(), "channel %u out of range", ch);
    counters_[ch].recordBeats(dir, beats, config_.bytesPerBeat());
}

const ChannelCounter &
HbmDevice::channel(unsigned ch) const
{
    chason_assert(ch < counters_.size(), "channel %u out of range", ch);
    return counters_[ch];
}

std::uint64_t
HbmDevice::totalBytes() const
{
    std::uint64_t total = 0;
    for (const auto &counter : counters_)
        total += counter.totalBytes();
    return total;
}

std::uint64_t
HbmDevice::totalBeats() const
{
    std::uint64_t total = 0;
    for (const auto &counter : counters_)
        total += counter.readBeats() + counter.writeBeats();
    return total;
}

double
HbmDevice::achievedBandwidthGBps(std::uint64_t cycles,
                                 double frequency_mhz) const
{
    if (cycles == 0)
        return 0.0;
    const double seconds =
        static_cast<double>(cycles) / (frequency_mhz * 1e6);
    return static_cast<double>(totalBytes()) / seconds / 1e9;
}

void
HbmDevice::reset()
{
    for (auto &counter : counters_)
        counter.reset();
}

std::uint64_t
minCyclesForBytes(const HbmConfig &config, unsigned used_channels,
                  std::uint64_t bytes, double frequency_mhz)
{
    chason_assert(used_channels > 0 &&
                      used_channels <= config.totalChannels,
                  "bad channel count %u", used_channels);
    // A channel can issue one beat per cycle, but never more bytes per
    // second than its peak bandwidth allows.
    const double beat_rate_gbps =
        frequency_mhz * 1e6 * config.bytesPerBeat() / 1e9;
    const double per_channel_gbps =
        std::min(beat_rate_gbps, config.channelBandwidthGBps);
    const double seconds = static_cast<double>(bytes) /
        (per_channel_gbps * 1e9 * used_channels);
    return static_cast<std::uint64_t>(
        std::ceil(seconds * frequency_mhz * 1e6));
}

} // namespace hbm
} // namespace chason
