/**
 * @file
 * Admission-control implementation.
 */

#include "serve/admission.h"

namespace chason {
namespace serve {

Admission
AdmissionControl::tryAdmit(const std::string &tenant, double nowSeconds)
{
    common::MutexLock lock(mutex_);
    // Budget before queue: a flooding tenant must burn its own bucket,
    // not learn anything about global queue pressure first.
    if (options_.tokensPerSec > 0.0) {
        auto it = buckets_.find(tenant);
        if (it == buckets_.end())
            it = buckets_
                     .emplace(tenant,
                              TokenBucket(options_.tokensPerSec,
                                          options_.tokenBurst,
                                          nowSeconds))
                     .first;
        if (!it->second.tryTake(nowSeconds))
            return Admission::kOverBudget;
    }
    if (depth_ >= options_.queueCapacity)
        return Admission::kQueueFull;
    ++depth_;
    if (depth_ > maxDepth_)
        maxDepth_ = depth_;
    return Admission::kAdmitted;
}

void
AdmissionControl::release()
{
    common::MutexLock lock(mutex_);
    if (depth_ > 0)
        --depth_;
}

std::size_t
AdmissionControl::depth() const
{
    common::MutexLock lock(mutex_);
    return depth_;
}

std::size_t
AdmissionControl::maxDepth() const
{
    common::MutexLock lock(mutex_);
    return maxDepth_;
}

} // namespace serve
} // namespace chason
