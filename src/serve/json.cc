/**
 * @file
 * Recursive-descent JSON parser implementation.
 */

#include "serve/json.h"

#include <cmath>
#include <cstdlib>
#include <cstring>

namespace chason {
namespace serve {

namespace {

/** Parser state over one document; reports byte offsets on error. */
struct Parser
{
    const char *begin;
    const char *cursor;
    const char *end;
    std::string error;

    /** Hostile nesting must fail cleanly, not exhaust the stack. */
    static constexpr int kMaxDepth = 32;

    bool fail(const std::string &reason)
    {
        error = reason + " at offset " +
            std::to_string(static_cast<std::size_t>(cursor - begin));
        return false;
    }

    void skipSpace()
    {
        while (cursor < end &&
               (*cursor == ' ' || *cursor == '\t' || *cursor == '\n' ||
                *cursor == '\r'))
            ++cursor;
    }

    bool consume(char c)
    {
        if (cursor < end && *cursor == c) {
            ++cursor;
            return true;
        }
        return false;
    }

    bool literal(const char *word, std::size_t len)
    {
        if (static_cast<std::size_t>(end - cursor) < len ||
            std::memcmp(cursor, word, len) != 0)
            return false;
        cursor += len;
        return true;
    }

    /** Append one code point as UTF-8. */
    static void appendUtf8(std::string &out, unsigned cp)
    {
        if (cp < 0x80) {
            out.push_back(static_cast<char>(cp));
        } else if (cp < 0x800) {
            out.push_back(static_cast<char>(0xC0 | (cp >> 6)));
            out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
        } else {
            out.push_back(static_cast<char>(0xE0 | (cp >> 12)));
            out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
        }
    }

    bool parseHex4(unsigned &out)
    {
        if (end - cursor < 4)
            return false;
        unsigned value = 0;
        for (int i = 0; i < 4; ++i) {
            const char c = cursor[i];
            unsigned digit;
            if (c >= '0' && c <= '9')
                digit = static_cast<unsigned>(c - '0');
            else if (c >= 'a' && c <= 'f')
                digit = static_cast<unsigned>(c - 'a') + 10;
            else if (c >= 'A' && c <= 'F')
                digit = static_cast<unsigned>(c - 'A') + 10;
            else
                return false;
            value = (value << 4) | digit;
        }
        cursor += 4;
        out = value;
        return true;
    }

    bool parseString(std::string &out)
    {
        if (!consume('"'))
            return fail("expected '\"'");
        out.clear();
        while (cursor < end) {
            const char c = *cursor;
            if (c == '"') {
                ++cursor;
                return true;
            }
            if (static_cast<unsigned char>(c) < 0x20)
                return fail("unescaped control character in string");
            if (c != '\\') {
                out.push_back(c);
                ++cursor;
                continue;
            }
            ++cursor; // the backslash
            if (cursor >= end)
                return fail("truncated escape");
            const char esc = *cursor++;
            switch (esc) {
            case '"': out.push_back('"'); break;
            case '\\': out.push_back('\\'); break;
            case '/': out.push_back('/'); break;
            case 'b': out.push_back('\b'); break;
            case 'f': out.push_back('\f'); break;
            case 'n': out.push_back('\n'); break;
            case 'r': out.push_back('\r'); break;
            case 't': out.push_back('\t'); break;
            case 'u': {
                unsigned cp;
                if (!parseHex4(cp))
                    return fail("bad \\u escape");
                // Surrogate pairs are not needed by the protocol;
                // replace lone/paired surrogates with U+FFFD rather
                // than emit invalid UTF-8.
                if (cp >= 0xD800 && cp <= 0xDFFF)
                    cp = 0xFFFD;
                appendUtf8(out, cp);
                break;
            }
            default:
                return fail("unknown escape");
            }
        }
        return fail("unterminated string");
    }

    /** RFC 8259 grammar: -?(0|[1-9]\d*)(\.\d+)?([eE][+-]?\d+)? —
     *  stricter than strtod, which also takes "01", "+1" or "1.". */
    static bool numberGrammarOk(const char *s, const char *e)
    {
        if (s < e && *s == '-')
            ++s;
        if (s >= e)
            return false;
        if (*s == '0') {
            ++s;
        } else if (*s >= '1' && *s <= '9') {
            while (s < e && *s >= '0' && *s <= '9')
                ++s;
        } else {
            return false;
        }
        if (s < e && *s == '.') {
            ++s;
            if (s >= e || *s < '0' || *s > '9')
                return false;
            while (s < e && *s >= '0' && *s <= '9')
                ++s;
        }
        if (s < e && (*s == 'e' || *s == 'E')) {
            ++s;
            if (s < e && (*s == '+' || *s == '-'))
                ++s;
            if (s >= e || *s < '0' || *s > '9')
                return false;
            while (s < e && *s >= '0' && *s <= '9')
                ++s;
        }
        return s == e;
    }

    bool parseNumber(JsonValue &out)
    {
        const char *start = cursor;
        while (cursor < end &&
               ((*cursor >= '0' && *cursor <= '9') || *cursor == '.' ||
                *cursor == 'e' || *cursor == 'E' || *cursor == '+' ||
                *cursor == '-'))
            ++cursor;
        const std::string token(start, cursor);
        char *parsedEnd = nullptr;
        const double value = std::strtod(token.c_str(), &parsedEnd);
        if (!numberGrammarOk(start, start + token.size()) ||
            parsedEnd != token.c_str() + token.size() ||
            !std::isfinite(value)) {
            cursor = start;
            return fail("malformed number");
        }
        out.type = JsonValue::Type::Number;
        out.number = value;
        return true;
    }

    bool parseValue(JsonValue &out, int depth)
    {
        if (depth > kMaxDepth)
            return fail("nesting depth limit exceeded");
        skipSpace();
        if (cursor >= end)
            return fail("unexpected end of input");
        switch (*cursor) {
        case '{': {
            ++cursor;
            out.type = JsonValue::Type::Object;
            skipSpace();
            if (consume('}'))
                return true;
            for (;;) {
                skipSpace();
                std::string key;
                if (!parseString(key))
                    return false;
                skipSpace();
                if (!consume(':'))
                    return fail("expected ':'");
                JsonValue value;
                if (!parseValue(value, depth + 1))
                    return false;
                out.members.emplace_back(std::move(key),
                                         std::move(value));
                skipSpace();
                if (consume(','))
                    continue;
                if (consume('}'))
                    return true;
                return fail("expected ',' or '}'");
            }
        }
        case '[': {
            ++cursor;
            out.type = JsonValue::Type::Array;
            skipSpace();
            if (consume(']'))
                return true;
            for (;;) {
                JsonValue value;
                if (!parseValue(value, depth + 1))
                    return false;
                out.items.push_back(std::move(value));
                skipSpace();
                if (consume(','))
                    continue;
                if (consume(']'))
                    return true;
                return fail("expected ',' or ']'");
            }
        }
        case '"':
            out.type = JsonValue::Type::String;
            return parseString(out.text);
        case 't':
            if (!literal("true", 4))
                return fail("bad literal");
            out.type = JsonValue::Type::Bool;
            out.boolean = true;
            return true;
        case 'f':
            if (!literal("false", 5))
                return fail("bad literal");
            out.type = JsonValue::Type::Bool;
            out.boolean = false;
            return true;
        case 'n':
            if (!literal("null", 4))
                return fail("bad literal");
            out.type = JsonValue::Type::Null;
            return true;
        default:
            return parseNumber(out);
        }
    }
};

} // namespace

const JsonValue *
JsonValue::find(const std::string &key) const
{
    if (type != Type::Object)
        return nullptr;
    for (const auto &member : members) {
        if (member.first == key)
            return &member.second;
    }
    return nullptr;
}

bool
JsonValue::getUint(const std::string &key, std::uint64_t &out) const
{
    const JsonValue *value = find(key);
    if (value == nullptr || !value->isNumber())
        return false;
    const double n = value->number;
    if (n < 0.0 || n > 9007199254740992.0 /* 2^53 */ ||
        n != std::floor(n))
        return false;
    out = static_cast<std::uint64_t>(n);
    return true;
}

bool
JsonValue::getString(const std::string &key, std::string &out) const
{
    const JsonValue *value = find(key);
    if (value == nullptr || !value->isString())
        return false;
    out = value->text;
    return true;
}

bool
parseJson(const std::string &text, JsonValue &out, std::string &error)
{
    Parser parser{text.data(), text.data(), text.data() + text.size(),
                  {}};
    out = JsonValue();
    if (!parser.parseValue(out, 0)) {
        error = parser.error;
        return false;
    }
    parser.skipSpace();
    if (parser.cursor != parser.end) {
        parser.fail("trailing garbage");
        error = parser.error;
        return false;
    }
    return true;
}

} // namespace serve
} // namespace chason
