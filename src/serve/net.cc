/**
 * @file
 * Unix-domain-socket helper implementation.
 */

#include "serve/net.h"

#include <cerrno>
#include <cstring>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

namespace chason {
namespace serve {

int
connectUnixSocket(const std::string &path, std::string *error)
{
    sockaddr_un address{};
    if (path.size() >= sizeof(address.sun_path)) {
        if (error != nullptr)
            *error = "socket path too long: " + path;
        return -1;
    }
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) {
        if (error != nullptr)
            *error = std::string("socket(): ") + std::strerror(errno);
        return -1;
    }
    address.sun_family = AF_UNIX;
    std::memcpy(address.sun_path, path.c_str(), path.size() + 1);
    if (::connect(fd, reinterpret_cast<const sockaddr *>(&address),
                  sizeof(address)) != 0) {
        if (error != nullptr)
            *error = "connect(" + path + "): " + std::strerror(errno);
        ::close(fd);
        return -1;
    }
    return fd;
}

bool
sendAll(int fd, const std::string &data)
{
    std::size_t sent = 0;
    while (sent < data.size()) {
        const ssize_t n = ::send(fd, data.data() + sent,
                                 data.size() - sent, MSG_NOSIGNAL);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        sent += static_cast<std::size_t>(n);
    }
    return true;
}

bool
LineReader::readLine(std::string &line)
{
    for (;;) {
        const std::size_t newline = buffer_.find('\n');
        if (newline != std::string::npos) {
            line.assign(buffer_, 0, newline);
            buffer_.erase(0, newline + 1);
            return true;
        }
        if (eof_) {
            if (buffer_.empty())
                return false;
            line = std::move(buffer_);
            buffer_.clear();
            return true;
        }
        if (buffer_.size() > maxLineBytes_)
            return false;
        char chunk[4096];
        const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        if (n == 0) {
            eof_ = true;
            continue;
        }
        buffer_.append(chunk, static_cast<std::size_t>(n));
    }
}

} // namespace serve
} // namespace chason
