/**
 * @file
 * Serving-daemon implementation.
 */

#include "serve/daemon.h"

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <deque>
#include <utility>

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "common/rng.h"
#include "core/report_json.h"
#include "serve/net.h"
#include "sparse/dataset.h"
#include "sparse/generators.h"
#include "sparse/matrix_market.h"

namespace chason {
namespace serve {

namespace {

/**
 * Materialized matrices kept resident. The working set of a serving
 * deployment is a small catalog of named matrices, so a coarse bound
 * with arbitrary eviction is enough — evicted entries just pay one
 * regeneration on the next request.
 */
constexpr std::size_t kMaxCachedMatrices = 32;

} // namespace

/** One accepted client connection and its reader/writer pair. */
struct Daemon::Connection
{
    int fd = -1;
    std::thread reader;
    std::thread writer;

    common::Mutex mutex;
    /** Signaled whenever the queue grows or the reader exits. */
    common::CondVar ready;
    std::deque<PendingResponse> queue GUARDED_BY(mutex);
    bool readerDone GUARDED_BY(mutex) = false;

    /** Set by the writer as its very last step; enables reaping. */
    std::atomic<bool> finished{false};
};

Daemon::Daemon(DaemonOptions options)
    : options_(std::move(options)),
      engine_([&] {
          core::BatchOptions batch;
          batch.workers = options_.workers;
          batch.cacheBudgetBytes = options_.cacheBudgetBytes;
          batch.artifactDir = options_.artifactDir;
          batch.verifySchedules = options_.verifySchedules;
          return batch;
      }()),
      admission_([&] {
          AdmissionControl::Options control;
          control.queueCapacity = options_.queueCapacity;
          control.tokensPerSec = options_.tokensPerSec;
          control.tokenBurst = options_.tokenBurst;
          return control;
      }()),
      epoch_(std::chrono::steady_clock::now())
{
}

Daemon::~Daemon()
{
    shutdown();
}

double
Daemon::now() const
{
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         epoch_)
        .count();
}

bool
Daemon::start(std::string *error)
{
    sockaddr_un address{};
    if (options_.socketPath.empty() ||
        options_.socketPath.size() >= sizeof(address.sun_path)) {
        if (error != nullptr)
            *error = "invalid socket path '" + options_.socketPath + "'";
        return false;
    }
    listenFd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (listenFd_ < 0) {
        if (error != nullptr)
            *error = std::string("socket(): ") + std::strerror(errno);
        return false;
    }
    address.sun_family = AF_UNIX;
    std::memcpy(address.sun_path, options_.socketPath.c_str(),
                options_.socketPath.size() + 1);
    // A previous daemon that died hard leaves its socket file behind;
    // this daemon owns the path, so replace it.
    ::unlink(options_.socketPath.c_str());
    if (::bind(listenFd_, reinterpret_cast<const sockaddr *>(&address),
               sizeof(address)) != 0 ||
        ::listen(listenFd_, 64) != 0) {
        if (error != nullptr)
            *error = "bind/listen(" + options_.socketPath +
                "): " + std::strerror(errno);
        ::close(listenFd_);
        listenFd_ = -1;
        return false;
    }
    acceptThread_ = std::thread([this] { acceptLoop(); });
    return true;
}

void
Daemon::acceptLoop()
{
    while (!stopping_.load(std::memory_order_acquire)) {
        pollfd poller{};
        poller.fd = listenFd_;
        poller.events = POLLIN;
        const int ready = ::poll(&poller, 1, 200);
        reapFinished();
        if (ready <= 0)
            continue;
        const int fd = ::accept(listenFd_, nullptr, nullptr);
        if (fd < 0)
            continue;
        auto connection = std::make_unique<Connection>();
        connection->fd = fd;
        Connection *raw = connection.get();
        {
            common::MutexLock lock(connectionsMutex_);
            connections_.push_back(std::move(connection));
        }
        raw->reader = std::thread([this, raw] { readerLoop(raw); });
        raw->writer = std::thread([this, raw] { writerLoop(raw); });
    }
}

void
Daemon::reapFinished()
{
    common::MutexLock lock(connectionsMutex_);
    for (auto it = connections_.begin(); it != connections_.end();) {
        Connection &connection = **it;
        if (!connection.finished.load(std::memory_order_acquire)) {
            ++it;
            continue;
        }
        connection.reader.join();
        connection.writer.join();
        ::close(connection.fd);
        it = connections_.erase(it);
    }
}

void
Daemon::readerLoop(Connection *conn)
{
    LineReader reader(conn->fd);
    std::string line;
    while (reader.readLine(line)) {
        if (line.empty())
            continue;
        handleLine(*conn, line);
    }
    common::MutexLock lock(conn->mutex);
    conn->readerDone = true;
    conn->ready.notify_all();
}

void
Daemon::writerLoop(Connection *conn)
{
    for (;;) {
        PendingResponse item;
        {
            common::MutexLock lock(conn->mutex);
            while (conn->queue.empty() && !conn->readerDone)
                conn->ready.wait(conn->mutex);
            if (conn->queue.empty())
                break;
            item = std::move(conn->queue.front());
            conn->queue.pop_front();
        }
        if (!item.isJob) {
            // A dead peer is not an error worth acting on: keep
            // draining so admitted jobs still retire below.
            sendAll(conn->fd, item.line + "\n");
            continue;
        }
        // collect() blocks until the job is done and frees its slot —
        // this is what keeps the engine at O(in-flight) memory.
        const core::SpmvReport report = engine_.collect(item.jobIndex);
        const double serviceMs = (now() - item.admitSeconds) * 1000.0;
        const std::uint64_t digest = vectorDigest(*item.yOut);
        admission_.release();
        {
            common::MutexLock lock(statsMutex_);
            latency_.add(serviceMs);
            ++served_;
            ++tenants_[item.request.tenant].served;
        }
        sendAll(conn->fd,
                resultResponse(item.request, report, digest, serviceMs) +
                    "\n");
    }
    conn->finished.store(true, std::memory_order_release);
}

void
Daemon::push(Connection &conn, PendingResponse pending)
{
    common::MutexLock lock(conn.mutex);
    conn.queue.push_back(std::move(pending));
    conn.ready.notify_all();
}

void
Daemon::handleLine(Connection &conn, const std::string &line)
{
    {
        common::MutexLock lock(statsMutex_);
        ++received_;
    }

    PendingResponse pending;
    Request request;
    std::string error;
    if (!parseRequest(line, request, error)) {
        {
            common::MutexLock lock(statsMutex_);
            ++badRequests_;
        }
        pending.line = errorResponse(request.hasId, request.id,
                                     kErrBadRequest, error);
        push(conn, std::move(pending));
        return;
    }

    if (stopping_.load(std::memory_order_acquire)) {
        {
            common::MutexLock lock(statsMutex_);
            ++rejectedShutdown_;
            ++tenants_[request.tenant].rejected;
        }
        pending.line = errorResponse(request.hasId, request.id,
                                     kErrShuttingDown,
                                     "daemon is shutting down");
        push(conn, std::move(pending));
        return;
    }

    const double admitSeconds = now();
    const Admission verdict =
        admission_.tryAdmit(request.tenant, admitSeconds);
    if (verdict != Admission::kAdmitted) {
        const bool overBudget = verdict == Admission::kOverBudget;
        {
            common::MutexLock lock(statsMutex_);
            if (overBudget)
                ++rejectedOverBudget_;
            else
                ++rejectedQueueFull_;
            ++tenants_[request.tenant].rejected;
        }
        pending.line = errorResponse(
            request.hasId, request.id,
            overBudget ? kErrOverBudget : kErrQueueFull,
            overBudget ? "tenant token budget exhausted"
                       : "admission queue is full");
        push(conn, std::move(pending));
        return;
    }

    const std::shared_ptr<const sparse::CsrMatrix> matrix =
        materialize(request, error);
    if (matrix == nullptr) {
        admission_.release();
        {
            common::MutexLock lock(statsMutex_);
            ++badRequests_;
            ++tenants_[request.tenant].rejected;
        }
        pending.line = errorResponse(request.hasId, request.id,
                                     kErrBadRequest, error);
        push(conn, std::move(pending));
        return;
    }

    core::BatchJob job;
    job.dataset = request.matrixKey();
    job.matrix = *matrix;
    job.kind = request.kind;
    request.applyConfig(job.config);
    job.xSeed = request.xSeed;
    job.yOut = std::make_shared<std::vector<float>>();

    pending.isJob = true;
    pending.request = request;
    pending.yOut = job.yOut;
    pending.admitSeconds = admitSeconds;
    pending.jobIndex = engine_.submit(std::move(job));
    push(conn, std::move(pending));
}

std::shared_ptr<const sparse::CsrMatrix>
Daemon::materialize(const Request &request, std::string &error)
{
    const std::string key = request.matrixKey();
    {
        common::MutexLock lock(matrixMutex_);
        auto it = matrices_.find(key);
        if (it != matrices_.end())
            return it->second;
    }

    // Build outside the lock: generation is the expensive part and
    // must not serialize unrelated connections. Two readers racing the
    // same key build twice; both results are identical (every source
    // is deterministic) and the first insert wins.
    std::shared_ptr<const sparse::CsrMatrix> matrix;
    switch (request.source) {
    case Request::Source::Dataset: {
        const sparse::DatasetEntry *entry = nullptr;
        for (const auto &candidate : sparse::table2()) {
            if (candidate.id == request.dataset ||
                candidate.name == request.dataset) {
                entry = &candidate;
                break;
            }
        }
        if (entry == nullptr) {
            error = "unknown dataset '" + request.dataset + "'";
            return nullptr;
        }
        matrix = std::make_shared<sparse::CsrMatrix>(
            sparse::loadOrGenerate(*entry));
        break;
    }
    case Request::Source::Path: {
        // readMatrixMarketFile() is fatal() on malformed content, so
        // the path source is operator-trust-level (docs/SERVING.md);
        // only existence and readability are checked here.
        if (::access(request.path.c_str(), R_OK) != 0) {
            error = "cannot read matrix file '" + request.path + "'";
            return nullptr;
        }
        matrix = std::make_shared<sparse::CsrMatrix>(
            sparse::readMatrixMarketFile(request.path).toCsr());
        break;
    }
    case Request::Source::Rmat: {
        Rng rng(request.rmatSeed);
        matrix = std::make_shared<sparse::CsrMatrix>(sparse::rmat(
            request.rmatScale,
            static_cast<std::size_t>(request.rmatEdges), rng));
        break;
    }
    }

    common::MutexLock lock(matrixMutex_);
    const auto inserted = matrices_.emplace(key, matrix);
    if (!inserted.second)
        return inserted.first->second;
    if (matrices_.size() > kMaxCachedMatrices) {
        auto victim = matrices_.begin();
        if (victim->first == key)
            ++victim;
        matrices_.erase(victim);
    }
    return matrix;
}

std::string
Daemon::statsJson() const
{
    // Sibling locks are sampled before statsMutex_ — every mutex here
    // is a leaf, so there is no ordering to get wrong.
    const core::ScheduleCacheStats cache = engine_.cache().stats();
    const std::size_t queueDepth = admission_.depth();
    const std::size_t queueMaxDepth = admission_.maxDepth();
    const double uptime = now();

    common::MutexLock lock(statsMutex_);
    const bool haveLatency = !latency_.empty();
    char buffer[1024];
    std::string json = "{";
    std::snprintf(buffer, sizeof(buffer),
                  "\"uptime_s\":%.3f,\"workers\":%u,", uptime,
                  engine_.workers());
    json += buffer;
    std::snprintf(
        buffer, sizeof(buffer),
        "\"requests\":{\"received\":%llu,\"served\":%llu,"
        "\"bad_request\":%llu,\"over_budget\":%llu,"
        "\"queue_full\":%llu,\"shutting_down\":%llu},",
        static_cast<unsigned long long>(received_),
        static_cast<unsigned long long>(served_),
        static_cast<unsigned long long>(badRequests_),
        static_cast<unsigned long long>(rejectedOverBudget_),
        static_cast<unsigned long long>(rejectedQueueFull_),
        static_cast<unsigned long long>(rejectedShutdown_));
    json += buffer;
    // An idle daemon reports zeros: percentile() on an empty set is a
    // programmer error by contract, and a stats probe must never be.
    std::snprintf(
        buffer, sizeof(buffer),
        "\"latency_ms\":{\"count\":%zu,\"mean\":%.6g,\"min\":%.6g,"
        "\"max\":%.6g,\"p50\":%.6g,\"p95\":%.6g,\"p99\":%.6g},",
        latency_.count(), haveLatency ? latency_.mean() : 0.0,
        haveLatency ? latency_.min() : 0.0,
        haveLatency ? latency_.max() : 0.0,
        haveLatency ? latency_.percentile(50.0) : 0.0,
        haveLatency ? latency_.percentile(95.0) : 0.0,
        haveLatency ? latency_.percentile(99.0) : 0.0);
    json += buffer;
    std::snprintf(buffer, sizeof(buffer),
                  "\"queue\":{\"depth\":%zu,\"max_depth\":%zu,"
                  "\"capacity\":%zu},",
                  queueDepth, queueMaxDepth, options_.queueCapacity);
    json += buffer;
    const std::uint64_t diskProbes = cache.diskHits + cache.diskMisses;
    std::snprintf(
        buffer, sizeof(buffer),
        "\"cache\":{\"hits\":%llu,\"misses\":%llu,\"hit_rate\":%.6g,"
        "\"disk_hits\":%llu,\"disk_misses\":%llu,"
        "\"disk_hit_rate\":%.6g,\"persisted\":%llu,\"corrupt\":%llu,"
        "\"evictions\":%llu,\"entries\":%zu,\"bytes\":%zu,"
        "\"budget_bytes\":%zu},",
        static_cast<unsigned long long>(cache.hits),
        static_cast<unsigned long long>(cache.misses), cache.hitRate(),
        static_cast<unsigned long long>(cache.diskHits),
        static_cast<unsigned long long>(cache.diskMisses),
        diskProbes > 0
            ? static_cast<double>(cache.diskHits) /
                static_cast<double>(diskProbes)
            : 0.0,
        static_cast<unsigned long long>(cache.persisted),
        static_cast<unsigned long long>(cache.corrupt),
        static_cast<unsigned long long>(cache.evictions),
        cache.entries, cache.bytes, cache.budgetBytes);
    json += buffer;
    json += "\"tenants\":{";
    bool first = true;
    for (const auto &entry : tenants_) {
        std::snprintf(
            buffer, sizeof(buffer),
            "%s\"%s\":{\"served\":%llu,\"rejected\":%llu}",
            first ? "" : ",", core::jsonEscape(entry.first).c_str(),
            static_cast<unsigned long long>(entry.second.served),
            static_cast<unsigned long long>(entry.second.rejected));
        json += buffer;
        first = false;
    }
    json += "}}";
    return json;
}

void
Daemon::shutdown()
{
    if (shutdownDone_.exchange(true))
        return;
    stopping_.store(true, std::memory_order_release);
    if (acceptThread_.joinable())
        acceptThread_.join();
    if (listenFd_ >= 0) {
        ::close(listenFd_);
        listenFd_ = -1;
        ::unlink(options_.socketPath.c_str());
    }

    // The accept thread is gone, so connections_ is stable from here.
    common::MutexLock lock(connectionsMutex_);
    for (const auto &connection : connections_) {
        // EOF the read side: the reader exits at its next recv(), the
        // writer drains what was admitted and then follows.
        ::shutdown(connection->fd, SHUT_RD);
    }
    for (const auto &connection : connections_) {
        if (connection->reader.joinable())
            connection->reader.join();
        if (connection->writer.joinable())
            connection->writer.join();
        ::close(connection->fd);
    }
    connections_.clear();
}

} // namespace serve
} // namespace chason
