/**
 * @file
 * Admission control for the serving daemon: a bounded in-flight queue
 * plus per-tenant token-bucket QoS.
 *
 * Both checks happen synchronously at request-parse time so the
 * accept/read path never blocks on a full daemon: a request that does
 * not fit is rejected immediately with a typed error
 * (protocol.h kErrQueueFull / kErrOverBudget), and the connection
 * stays usable. Time is passed in by the caller (seconds on a
 * monotonic clock), which keeps the refill arithmetic deterministic
 * and unit-testable.
 */

#ifndef CHASON_SERVE_ADMISSION_H_
#define CHASON_SERVE_ADMISSION_H_

#include <cstddef>
#include <string>
#include <unordered_map>

#include "common/thread_annotations.h"

namespace chason {
namespace serve {

/**
 * Classic token bucket: refills at @p ratePerSec up to @p burst,
 * tryTake() spends one token. Not thread-safe by itself —
 * AdmissionControl serializes access.
 */
class TokenBucket
{
  public:
    TokenBucket(double ratePerSec, double burst, double nowSeconds)
        : rate_(ratePerSec), burst_(burst), tokens_(burst),
          lastRefill_(nowSeconds)
    {
    }

    /** Refill to @p nowSeconds, then spend one token if available. */
    bool tryTake(double nowSeconds)
    {
        if (nowSeconds > lastRefill_) {
            tokens_ += (nowSeconds - lastRefill_) * rate_;
            if (tokens_ > burst_)
                tokens_ = burst_;
            lastRefill_ = nowSeconds;
        }
        if (tokens_ < 1.0)
            return false;
        tokens_ -= 1.0;
        return true;
    }

    double tokens() const { return tokens_; }

  private:
    double rate_;
    double burst_;
    double tokens_;
    double lastRefill_;
};

/** Admission verdict, mapped 1:1 onto the protocol's typed errors. */
enum class Admission
{
    kAdmitted,
    kOverBudget, ///< the tenant's token bucket is empty
    kQueueFull,  ///< the daemon-wide in-flight bound is reached
};

/** Bounded queue + per-tenant QoS, shared by every connection. */
class AdmissionControl
{
  public:
    struct Options
    {
        /** In-flight requests the daemon accepts at once. */
        std::size_t queueCapacity = 64;

        /** Per-tenant sustained tokens/sec; <= 0 disables QoS. */
        double tokensPerSec = 0.0;

        /** Per-tenant burst allowance (bucket capacity). */
        double tokenBurst = 32.0;
    };

    explicit AdmissionControl(Options options) : options_(options) {}

    /**
     * Try to admit one request from @p tenant at @p nowSeconds. On
     * kAdmitted the caller owns one queue slot and must release() it
     * when the request retires (served or failed after admission).
     */
    Admission tryAdmit(const std::string &tenant, double nowSeconds)
        EXCLUDES(mutex_);

    /** Return an admitted request's queue slot. */
    void release() EXCLUDES(mutex_);

    /** Requests currently admitted and not yet released. */
    std::size_t depth() const EXCLUDES(mutex_);

    /** High-water mark of depth() since construction. */
    std::size_t maxDepth() const EXCLUDES(mutex_);

    const Options &options() const { return options_; }

  private:
    const Options options_;
    mutable common::Mutex mutex_;
    std::size_t depth_ GUARDED_BY(mutex_) = 0;
    std::size_t maxDepth_ GUARDED_BY(mutex_) = 0;
    /** One bucket per tenant, created on first sight. */
    std::unordered_map<std::string, TokenBucket>
        buckets_ GUARDED_BY(mutex_);
};

} // namespace serve
} // namespace chason

#endif // CHASON_SERVE_ADMISSION_H_
