/**
 * @file
 * Minimal JSON parser for the serving protocol.
 *
 * The daemon speaks newline-delimited JSON (docs/SERVING.md); requests
 * are small flat objects, so the parser is deliberately tiny — no
 * external dependency, mirroring core/report_json.h on the emit side.
 * It accepts strict RFC 8259 input (objects, arrays, strings with
 * escapes, numbers, booleans, null), rejects trailing garbage, and
 * caps nesting depth so hostile input cannot blow the stack.
 *
 * Numbers are held as double: every id/seed the protocol carries fits
 * in the 53-bit exact-integer range.
 */

#ifndef CHASON_SERVE_JSON_H_
#define CHASON_SERVE_JSON_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace chason {
namespace serve {

/** One parsed JSON value; a tagged tree. */
class JsonValue
{
  public:
    enum class Type
    {
        Null,
        Bool,
        Number,
        String,
        Array,
        Object,
    };

    Type type = Type::Null;
    bool boolean = false;
    double number = 0.0;
    std::string text;
    std::vector<JsonValue> items;                          ///< Array
    std::vector<std::pair<std::string, JsonValue>> members; ///< Object

    bool isNull() const { return type == Type::Null; }
    bool isBool() const { return type == Type::Bool; }
    bool isNumber() const { return type == Type::Number; }
    bool isString() const { return type == Type::String; }
    bool isArray() const { return type == Type::Array; }
    bool isObject() const { return type == Type::Object; }

    /** Member lookup (first match); null when absent or not an object. */
    const JsonValue *find(const std::string &key) const;

    /**
     * The member as a non-negative integer: present, a number, whole,
     * and in [0, 2^53]. Returns false (leaving @p out untouched) for
     * anything else — protocol fields must not round silently.
     */
    bool getUint(const std::string &key, std::uint64_t &out) const;

    /** The member as a string; false when absent or not a string. */
    bool getString(const std::string &key, std::string &out) const;
};

/**
 * Parse @p text (one complete JSON document) into @p out. On failure
 * returns false and puts a human-readable reason with a byte offset
 * into @p error.
 */
bool parseJson(const std::string &text, JsonValue &out,
               std::string &error);

} // namespace serve
} // namespace chason

#endif // CHASON_SERVE_JSON_H_
