/**
 * @file
 * chason_serve wire protocol: newline-delimited JSON requests and
 * responses (docs/SERVING.md has the full schema).
 *
 * One request per line. The matrix is named by exactly one of three
 * sources — a Table-2 dataset tag ("dataset"), a Matrix Market file
 * ("path"), or a deterministic R-MAT spec (an "rmat" object with
 * scale/edges/seed) — plus an optional x seed, engine selection and
 * scheduler-geometry overrides. Because every source is deterministic,
 * a client holding the same spec can recompute the exact run locally
 * and check the daemon's answer bit for bit (tools/chason_client does
 * exactly that with the y-vector digest).
 *
 * Responses are one JSON line per request, in request order per
 * connection: either a result line ("ok":true with the report fields)
 * or a typed error line ("ok":false, "error" one of kErrBadRequest /
 * kErrOverBudget / kErrQueueFull / kErrShuttingDown).
 */

#ifndef CHASON_SERVE_PROTOCOL_H_
#define CHASON_SERVE_PROTOCOL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/engine.h"

namespace chason {
namespace serve {

/** Typed error identifiers carried in the "error" response field. */
inline constexpr const char *kErrBadRequest = "bad_request";
inline constexpr const char *kErrOverBudget = "over_budget";
inline constexpr const char *kErrQueueFull = "queue_full";
inline constexpr const char *kErrShuttingDown = "shutting_down";

/** One parsed request. */
struct Request
{
    /** Client-chosen correlation id (echoed in the response). */
    std::uint64_t id = 0;
    bool hasId = false;

    /** QoS accounting bucket; every tenant gets its own budget. */
    std::string tenant = "default";

    enum class Source
    {
        Dataset, ///< Table-2 tag or collection name
        Path,    ///< Matrix Market file on the daemon's filesystem
        Rmat,    ///< deterministic synthetic R-MAT
    };
    Source source = Source::Dataset;
    std::string dataset;          ///< Source::Dataset
    std::string path;             ///< Source::Path
    std::uint32_t rmatScale = 0;  ///< Source::Rmat
    std::uint64_t rmatEdges = 0;  ///< Source::Rmat: nnz target
    std::uint64_t rmatSeed = 0;   ///< Source::Rmat

    /** Seed of the dense input vector x (BatchJob default). */
    std::uint64_t xSeed = 0x57EE9;

    core::Engine::Kind kind = core::Engine::Kind::Chason;

    /** Scheduler-geometry overrides; 0 keeps the ArchConfig default. */
    std::uint32_t channels = 0;
    std::uint32_t window = 0;
    std::uint32_t rowsPerLane = 0;
    std::uint32_t rawDistance = 0;
    std::uint32_t pes = 0;

    /**
     * Canonical matrix-source key — the daemon's matrix-cache key and
     * the dataset label reported back (engine/x/geometry excluded;
     * they do not change the matrix).
     */
    std::string matrixKey() const;

    /** Apply the geometry overrides to @p config. */
    void applyConfig(arch::ArchConfig &config) const;
};

/**
 * Parse one request line. Returns true and fills @p out, or false
 * with a reason in @p error (the daemon wraps it in a kErrBadRequest
 * response). When the line carried a parsable "id", @p out.id /
 * out.hasId are valid even on failure so the error can be correlated.
 */
bool parseRequest(const std::string &line, Request &out,
                  std::string &error);

/** FNV-1a over the raw float bits — the response's y-vector digest. */
std::uint64_t vectorDigest(const std::vector<float> &y);

/** Render a result response line (no trailing newline). */
std::string resultResponse(const Request &request,
                           const core::SpmvReport &report,
                           std::uint64_t ydigest, double serviceMs);

/**
 * Render a typed error response line (no trailing newline). A request
 * whose id never parsed gets "id":null.
 */
std::string errorResponse(bool hasId, std::uint64_t id,
                          const char *errorType,
                          const std::string &detail);

} // namespace serve
} // namespace chason

#endif // CHASON_SERVE_PROTOCOL_H_
