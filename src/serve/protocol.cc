/**
 * @file
 * Request parsing and response rendering for the serving protocol.
 */

#include "serve/protocol.h"

#include <cinttypes>
#include <cstdio>

#include "core/report_json.h"
#include "serve/json.h"

namespace chason {
namespace serve {

namespace {

/**
 * Geometry bounds enforced at parse time. SchedConfig::validate()
 * panics on nonsense, which would take the whole daemon down — a
 * hostile or buggy client must be stopped at the protocol boundary
 * with a typed error instead.
 */
constexpr std::uint64_t kMaxChannels = 64;
constexpr std::uint64_t kMaxPes = 8; // sched::kMaxPesPerGroup
constexpr std::uint64_t kMaxRawDistance = 256;
constexpr std::uint64_t kMaxWindow = std::uint64_t{1} << 20;
constexpr std::uint64_t kMaxRowsPerLane = 32768;
constexpr std::uint64_t kMaxRmatScale = 24;
constexpr std::uint64_t kMaxRmatEdges = std::uint64_t{1} << 28;
constexpr std::size_t kMaxTenantLength = 64;

bool
failParse(std::string &error, const std::string &reason)
{
    error = reason;
    return false;
}

/** Bounded uint field: absent keeps @p out, malformed fails. */
bool
boundedUint(const JsonValue &object, const char *key, std::uint64_t lo,
            std::uint64_t hi, std::uint64_t &out, std::string &error)
{
    if (object.find(key) == nullptr)
        return true;
    std::uint64_t value = 0;
    if (!object.getUint(key, value))
        return failParse(error, std::string("field '") + key +
                                    "' must be a non-negative integer");
    if (value < lo || value > hi)
        return failParse(error, std::string("field '") + key +
                                    "' out of range [" +
                                    std::to_string(lo) + ", " +
                                    std::to_string(hi) + "]");
    out = value;
    return true;
}

} // namespace

std::string
Request::matrixKey() const
{
    switch (source) {
    case Source::Dataset:
        return "dataset:" + dataset;
    case Source::Path:
        return "path:" + path;
    case Source::Rmat:
        break;
    }
    char buffer[96];
    std::snprintf(buffer, sizeof(buffer),
                  "rmat:s%" PRIu32 ":e%" PRIu64 ":seed%" PRIu64,
                  rmatScale, rmatEdges, rmatSeed);
    return buffer;
}

void
Request::applyConfig(arch::ArchConfig &config) const
{
    if (channels != 0)
        config.sched.channels = channels;
    if (window != 0)
        config.sched.windowCols = window;
    if (rowsPerLane != 0)
        config.sched.rowsPerLanePerPass = rowsPerLane;
    if (rawDistance != 0)
        config.sched.rawDistance = rawDistance;
    if (pes != 0)
        config.sched.pesOverride = pes;
}

bool
parseRequest(const std::string &line, Request &out, std::string &error)
{
    out = Request();
    JsonValue root;
    if (!parseJson(line, root, error))
        return false;
    if (!root.isObject())
        return failParse(error, "request must be a JSON object");

    if (root.find("id") != nullptr) {
        if (!root.getUint("id", out.id))
            return failParse(error,
                             "field 'id' must be a non-negative integer");
        out.hasId = true;
    } else {
        return failParse(error, "field 'id' is required");
    }

    // Strict key set: a typo must be a typed error, not a silently
    // ignored knob.
    for (const auto &member : root.members) {
        const std::string &key = member.first;
        if (key != "id" && key != "tenant" && key != "dataset" &&
            key != "path" && key != "rmat" && key != "xseed" &&
            key != "engine" && key != "config")
            return failParse(error, "unknown field '" + key + "'");
    }

    if (root.find("tenant") != nullptr) {
        if (!root.getString("tenant", out.tenant))
            return failParse(error, "field 'tenant' must be a string");
        if (out.tenant.empty() ||
            out.tenant.size() > kMaxTenantLength)
            return failParse(error, "field 'tenant' must be 1..64 chars");
    }

    const JsonValue *dataset = root.find("dataset");
    const JsonValue *path = root.find("path");
    const JsonValue *rmat = root.find("rmat");
    const int sources = (dataset != nullptr) + (path != nullptr) +
        (rmat != nullptr);
    if (sources != 1)
        return failParse(error, "exactly one of 'dataset', 'path', "
                                "'rmat' must name the matrix");
    if (dataset != nullptr) {
        out.source = Request::Source::Dataset;
        if (!root.getString("dataset", out.dataset) ||
            out.dataset.empty())
            return failParse(error,
                             "field 'dataset' must be a non-empty string");
    } else if (path != nullptr) {
        out.source = Request::Source::Path;
        if (!root.getString("path", out.path) || out.path.empty())
            return failParse(error,
                             "field 'path' must be a non-empty string");
    } else {
        out.source = Request::Source::Rmat;
        if (!rmat->isObject())
            return failParse(error, "field 'rmat' must be an object "
                                    "{scale, edges, seed}");
        std::uint64_t scale = 0;
        std::uint64_t edges = 0;
        if (!rmat->getUint("scale", scale) || scale < 1 ||
            scale > kMaxRmatScale)
            return failParse(error, "rmat.scale must be in [1, " +
                                        std::to_string(kMaxRmatScale) +
                                        "]");
        if (!rmat->getUint("edges", edges) || edges < 1 ||
            edges > kMaxRmatEdges)
            return failParse(error, "rmat.edges must be in [1, " +
                                        std::to_string(kMaxRmatEdges) +
                                        "]");
        out.rmatScale = static_cast<std::uint32_t>(scale);
        out.rmatEdges = edges;
        if (rmat->find("seed") != nullptr &&
            !rmat->getUint("seed", out.rmatSeed))
            return failParse(error,
                             "rmat.seed must be a non-negative integer");
        for (const auto &member : rmat->members) {
            if (member.first != "scale" && member.first != "edges" &&
                member.first != "seed")
                return failParse(error, "unknown rmat field '" +
                                            member.first + "'");
        }
    }

    if (root.find("xseed") != nullptr &&
        !root.getUint("xseed", out.xSeed))
        return failParse(error,
                         "field 'xseed' must be a non-negative integer");

    if (root.find("engine") != nullptr) {
        std::string engine;
        if (!root.getString("engine", engine))
            return failParse(error, "field 'engine' must be a string");
        if (engine == "chason")
            out.kind = core::Engine::Kind::Chason;
        else if (engine == "serpens")
            out.kind = core::Engine::Kind::Serpens;
        else
            return failParse(error, "field 'engine' must be 'chason' "
                                    "or 'serpens'");
    }

    const JsonValue *config = root.find("config");
    if (config != nullptr) {
        if (!config->isObject())
            return failParse(error, "field 'config' must be an object");
        for (const auto &member : config->members) {
            const std::string &key = member.first;
            if (key != "channels" && key != "window" &&
                key != "rows_per_lane" && key != "raw_distance" &&
                key != "pes")
                return failParse(error, "unknown config field '" + key +
                                            "'");
        }
        // migrationDepth defaults to 1, so channels needs >= 2.
        std::uint64_t value = 0;
        if (!boundedUint(*config, "channels", 2, kMaxChannels, value,
                         error))
            return false;
        out.channels = static_cast<std::uint32_t>(value);
        value = 0;
        if (!boundedUint(*config, "window", 1, kMaxWindow, value, error))
            return false;
        out.window = static_cast<std::uint32_t>(value);
        value = 0;
        if (!boundedUint(*config, "rows_per_lane", 1, kMaxRowsPerLane,
                         value, error))
            return false;
        out.rowsPerLane = static_cast<std::uint32_t>(value);
        value = 0;
        if (!boundedUint(*config, "raw_distance", 1, kMaxRawDistance,
                         value, error))
            return false;
        out.rawDistance = static_cast<std::uint32_t>(value);
        value = 0;
        if (!boundedUint(*config, "pes", 1, kMaxPes, value, error))
            return false;
        out.pes = static_cast<std::uint32_t>(value);
    }

    return true;
}

std::uint64_t
vectorDigest(const std::vector<float> &y)
{
    // FNV-1a over the raw float bits: bit-identical vectors — and only
    // those — share a digest, which is what the client's equivalence
    // check needs.
    std::uint64_t hash = 1469598103934665603ull;
    for (const float value : y) {
        std::uint32_t bits;
        static_assert(sizeof(bits) == sizeof(value));
        __builtin_memcpy(&bits, &value, sizeof(bits));
        for (int shift = 0; shift < 32; shift += 8) {
            hash ^= (bits >> shift) & 0xFFu;
            hash *= 1099511628211ull;
        }
    }
    return hash;
}

std::string
resultResponse(const Request &request, const core::SpmvReport &report,
               std::uint64_t ydigest, double serviceMs)
{
    char buffer[512];
    std::snprintf(
        buffer, sizeof(buffer),
        "{\"id\":%" PRIu64 ",\"ok\":true,\"dataset\":\"%s\","
        "\"accelerator\":\"%s\",\"rows\":%" PRIu32 ",\"cols\":%" PRIu32
        ",\"nnz\":%zu,\"cycles\":%" PRIu64
        ",\"latency_ms\":%.17g,\"gflops\":%.17g,"
        "\"functional_error\":%.17g,\"ydigest\":\"%016" PRIx64
        "\",\"service_ms\":%.3f}",
        request.id, core::jsonEscape(report.dataset).c_str(),
        core::jsonEscape(report.accelerator).c_str(), report.rows,
        report.cols, report.nnz, report.cycles, report.latencyMs,
        report.gflops, report.functionalError, ydigest, serviceMs);
    return buffer;
}

std::string
errorResponse(bool hasId, std::uint64_t id, const char *errorType,
              const std::string &detail)
{
    std::string line = "{\"id\":";
    line += hasId ? std::to_string(id) : "null";
    line += ",\"ok\":false,\"error\":\"";
    line += errorType;
    line += "\",\"detail\":\"";
    line += core::jsonEscape(detail);
    line += "\"}";
    return line;
}

} // namespace serve
} // namespace chason
