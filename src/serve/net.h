/**
 * @file
 * Small Unix-domain-socket helpers shared by the daemon, the
 * chason_client load generator and the serve tests.
 *
 * Everything is blocking; the protocol is newline-delimited, so the
 * only framing needed is a buffered line reader. Sends use
 * MSG_NOSIGNAL — a client that disappears mid-response must surface
 * as an error return, not SIGPIPE.
 */

#ifndef CHASON_SERVE_NET_H_
#define CHASON_SERVE_NET_H_

#include <cstddef>
#include <string>

namespace chason {
namespace serve {

/**
 * Connect to the Unix-domain stream socket at @p path. Returns the fd
 * or -1 with a reason in @p error.
 */
int connectUnixSocket(const std::string &path, std::string *error);

/** Send all of @p data; false on any send error. */
bool sendAll(int fd, const std::string &data);

/** Buffered blocking line reader over a socket fd. */
class LineReader
{
  public:
    /** Default bound on one line — beyond this the peer is cut off. */
    static constexpr std::size_t kDefaultMaxLineBytes = 1 << 20;

    explicit LineReader(int fd,
                        std::size_t maxLineBytes = kDefaultMaxLineBytes)
        : fd_(fd), maxLineBytes_(maxLineBytes)
    {
    }

    /**
     * Read the next '\n'-terminated line (terminator stripped) into
     * @p line. Returns false on EOF with an empty remainder, on a
     * read error, or when the peer sends more than maxLineBytes
     * without a newline (a flooding client must not grow the buffer
     * unboundedly); a non-empty final line without a terminator is
     * returned first.
     */
    bool readLine(std::string &line);

    /** Bytes buffered beyond the last returned line. */
    std::size_t buffered() const { return buffer_.size(); }

  private:
    int fd_;
    std::size_t maxLineBytes_;
    std::string buffer_;
    bool eof_ = false;
};

} // namespace serve
} // namespace chason

#endif // CHASON_SERVE_NET_H_
