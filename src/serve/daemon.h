/**
 * @file
 * The chason_serve daemon: a long-running Unix-domain-socket server
 * over core::BatchEngine.
 *
 * Thread architecture:
 *  - one accept thread polls the listening socket (200 ms tick, also
 *    the reaping cadence for finished connections) and spawns a
 *    reader/writer thread pair per connection;
 *  - the reader thread splits the byte stream into lines, parses and
 *    admission-checks each request, materializes the matrix and
 *    submits a BatchJob — it never waits for simulation, so a slow
 *    job cannot stall parsing of the next request;
 *  - the writer thread drains the connection's FIFO of pending
 *    responses: immediate typed errors are sent as-is, jobs block in
 *    BatchEngine::collect() which both yields the report and retires
 *    the job's slot (bounded steady-state memory).
 *
 * Responses therefore come back in request order per connection,
 * while jobs from different connections share the engine's worker
 * pool and schedule cache.
 *
 * Rejections (over_budget / queue_full / shutting_down / bad_request)
 * are decided synchronously in the reader with a typed error line —
 * nothing about an overloaded daemon ever blocks the accept loop or
 * an admitted request.
 *
 * Shutdown: stop the accept loop, shut down every connection's read
 * side, then join readers and writers — writers still collect() every
 * already-admitted job, so shutdown is graceful: admitted work is
 * answered, new work is refused with kErrShuttingDown.
 */

#ifndef CHASON_SERVE_DAEMON_H_
#define CHASON_SERVE_DAEMON_H_

#include <atomic>
#include <chrono>
#include <cstddef>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/stats.h"
#include "common/thread_annotations.h"
#include "core/batch_engine.h"
#include "serve/admission.h"
#include "serve/protocol.h"

namespace chason {
namespace serve {

/** Everything configurable about a daemon instance. */
struct DaemonOptions
{
    /** Filesystem path of the Unix-domain listening socket. */
    std::string socketPath;

    /** Worker threads; 0 selects ThreadPool::defaultWorkers(). */
    unsigned workers = 0;

    /** In-flight request bound (admission queue capacity). */
    std::size_t queueCapacity = 64;

    /** Per-tenant sustained tokens/sec; <= 0 disables QoS. */
    double tokensPerSec = 0.0;

    /** Per-tenant burst allowance. */
    double tokenBurst = 32.0;

    /** Schedule-cache byte budget. */
    std::size_t cacheBudgetBytes =
        core::ScheduleCache::kDefaultBudgetBytes;

    /** Two-tier cache artifact directory; empty = memory only. */
    std::string artifactDir;

    /** Statically verify every schedule (fatal on an illegal one). */
    bool verifySchedules = false;
};

/** The serving daemon. start() it, statsJson() it, shutdown() it. */
class Daemon
{
  public:
    explicit Daemon(DaemonOptions options);
    ~Daemon();

    Daemon(const Daemon &) = delete;
    Daemon &operator=(const Daemon &) = delete;

    /**
     * Bind the socket and start the accept loop. False (with a
     * reason) if the socket cannot be created; a stale socket file at
     * the path is replaced.
     */
    bool start(std::string *error);

    /**
     * Graceful stop, idempotent: refuse new work, answer every
     * admitted request, join all threads, remove the socket file.
     */
    void shutdown();

    /**
     * One JSON object describing the daemon right now: request
     * counters, latency percentiles (p50/p95/p99), admission-queue
     * depth, both schedule-cache tiers and per-tenant accounting.
     * Safe from any thread — the serve tool calls it from its signal
     * loop (SIGUSR1) and once more at SIGTERM.
     */
    std::string statsJson() const EXCLUDES(statsMutex_);

    const DaemonOptions &options() const { return options_; }
    core::BatchEngine &engine() { return engine_; }

  private:
    struct Connection;

    /** One queued response: either an error line or a pending job. */
    struct PendingResponse
    {
        bool isJob = false;
        std::size_t jobIndex = 0;  ///< isJob: BatchEngine index
        std::string line;          ///< !isJob: rendered error line
        Request request;           ///< isJob: for the result line
        std::shared_ptr<std::vector<float>> yOut; ///< isJob: y sink
        double admitSeconds = 0.0; ///< isJob: service-time start
    };

    /** Per-tenant served/rejected counters. */
    struct TenantCounters
    {
        std::uint64_t served = 0;
        std::uint64_t rejected = 0;
    };

    void acceptLoop();
    void readerLoop(Connection *conn);
    void writerLoop(Connection *conn);

    /** Parse, admit and submit (or reject) one request line. */
    void handleLine(Connection &conn, const std::string &line);

    /** Queue a response entry for the connection's writer. */
    void push(Connection &conn, PendingResponse pending);

    /** Join and drop connections whose writer has finished. */
    void reapFinished() EXCLUDES(connectionsMutex_);

    /**
     * Resolve the request's matrix through the bounded daemon-local
     * matrix cache (keyed by Request::matrixKey()); null with a
     * reason when the source cannot be resolved.
     */
    std::shared_ptr<const sparse::CsrMatrix>
    materialize(const Request &request, std::string &error)
        EXCLUDES(matrixMutex_);

    /** Monotonic seconds since the daemon was constructed. */
    double now() const;

    const DaemonOptions options_;
    core::BatchEngine engine_;
    AdmissionControl admission_;

    std::atomic<bool> stopping_{false};
    std::atomic<bool> shutdownDone_{false};
    int listenFd_ = -1;
    std::thread acceptThread_;

    /** Owned by the accept thread + shutdown(); reaped as they end. */
    common::Mutex connectionsMutex_;
    std::vector<std::unique_ptr<Connection>>
        connections_ GUARDED_BY(connectionsMutex_);

    /** Bounded materialized-matrix cache shared by all readers. */
    common::Mutex matrixMutex_;
    std::unordered_map<std::string,
                       std::shared_ptr<const sparse::CsrMatrix>>
        matrices_ GUARDED_BY(matrixMutex_);

    /** Leaf lock for every counter statsJson() reports. */
    mutable common::Mutex statsMutex_;
    SummaryStats latency_ GUARDED_BY(statsMutex_); ///< service ms
    std::uint64_t received_ GUARDED_BY(statsMutex_) = 0;
    std::uint64_t served_ GUARDED_BY(statsMutex_) = 0;
    std::uint64_t badRequests_ GUARDED_BY(statsMutex_) = 0;
    std::uint64_t rejectedOverBudget_ GUARDED_BY(statsMutex_) = 0;
    std::uint64_t rejectedQueueFull_ GUARDED_BY(statsMutex_) = 0;
    std::uint64_t rejectedShutdown_ GUARDED_BY(statsMutex_) = 0;
    // Ordered map: tenants render in stable order in the stats JSON.
    std::map<std::string, TenantCounters>
        tenants_ GUARDED_BY(statsMutex_);

    /** now()'s epoch, captured at construction. */
    const std::chrono::steady_clock::time_point epoch_;
};

} // namespace serve
} // namespace chason

#endif // CHASON_SERVE_DAEMON_H_
