/**
 * @file
 * Static schedule verifier implementation.
 *
 * The scan mirrors the streaming order of the hardware: phases in
 * sequence, channels in lockstep, beats in order, PEs within a beat —
 * so every diagnostic's location names the exact slot a simulator
 * would have mis-executed.
 */

#include "verify/verifier.h"

#include <algorithm>
#include <cstdarg>
#include <cstdio>
#include <unordered_map>
#include <unordered_set>

#include "common/logging.h"
#include "sched/analyzer.h"
#include "sched/element.h"
#include "verify/rules.h"

namespace chason {
namespace verify {

namespace {

using sched::Beat;
using sched::ChannelWindowSchedule;
using sched::ElementLayout;
using sched::LaneMap;
using sched::Schedule;
using sched::SchedConfig;
using sched::Slot;
using sched::WindowSchedule;

std::string
format(const char *fmt, ...)
{
    char buf[256];
    va_list args;
    va_start(args, fmt);
    std::vsnprintf(buf, sizeof(buf), fmt, args);
    va_end(args);
    return buf;
}

std::uint64_t
elementKey(std::uint32_t row, std::uint32_t col)
{
    return (static_cast<std::uint64_t>(row) << 32) | col;
}

/**
 * Pre-flight: the geometry invariants SchedConfig::validate() panics
 * on, reported as CHV014 instead. Returns false when the config is too
 * broken to scan the schedule safely (e.g. zero lanes).
 */
bool
checkConfig(const Schedule &schedule, DiagnosticEngine &engine)
{
    const SchedConfig &cfg = schedule.config;
    bool scannable = true;
    if (cfg.channels < 1) {
        engine.report(rule::kMetadata, Severity::kError, {},
                      "config has zero channels");
        scannable = false;
    }
    if (cfg.pesPerGroup() < 1 ||
        cfg.pesPerGroup() > sched::kMaxPesPerGroup) {
        engine.report(rule::kMetadata, Severity::kError, {},
                      format("config pesPerGroup %u out of [1,%u]",
                             cfg.pesPerGroup(), sched::kMaxPesPerGroup));
        scannable = false;
    }
    if (cfg.rawDistance < 1) {
        engine.report(rule::kMetadata, Severity::kError, {},
                      "config rawDistance must be >= 1");
    }
    if (cfg.windowCols < 1 || cfg.rowsPerLanePerPass < 1) {
        engine.report(rule::kMetadata, Severity::kError, {},
                      "config window/pass geometry must be >= 1");
        scannable = false;
    }
    if (cfg.channels >= 1 && cfg.migrationDepth >= cfg.channels) {
        engine.report(rule::kMetadata, Severity::kError, {},
                      format("config migrationDepth %u must be < "
                             "channels %u",
                             cfg.migrationDepth, cfg.channels));
    }
    return scannable;
}

/** Wire-format feasibility of the configured geometry (CHV010). */
void
checkEncoding(const Schedule &schedule, DiagnosticEngine &engine)
{
    const SchedConfig &cfg = schedule.config;
    if (cfg.windowCols > ElementLayout::maxLocalCol() + 1) {
        engine.report(rule::kEncodingOverflow, Severity::kWarning, {},
                      format("windowCols %u exceeds the %u-bit local "
                             "column field; the artifact is not "
                             "wire-encodable",
                             cfg.windowCols, ElementLayout::kColBits));
    }
    if (cfg.rowsPerLanePerPass > ElementLayout::maxLocalRow() + 1) {
        engine.report(rule::kEncodingOverflow, Severity::kWarning, {},
                      format("rowsPerLanePerPass %u exceeds the %u-bit "
                             "local row field; the artifact is not "
                             "wire-encodable",
                             cfg.rowsPerLanePerPass,
                             ElementLayout::kRowBits));
    }
    if (cfg.migrationDepth > 1) {
        engine.report(rule::kEncodingOverflow, Severity::kNote, {},
                      format("migrationDepth %u cannot be named by the "
                             "1-bit pvt flag; schedule_io rejects this "
                             "artifact (simulation is unaffected)",
                             cfg.migrationDepth));
    }
}

} // namespace

const Diagnostic *
VerifyResult::firstError() const
{
    for (const Diagnostic &d : diagnostics) {
        if (d.severity == Severity::kError)
            return &d;
    }
    return nullptr;
}

std::string
VerifyResult::summary() const
{
    char buf[160];
    if (clean()) {
        std::snprintf(buf, sizeof(buf),
                      "clean: %zu slots checked, %zu warnings, %zu notes",
                      checkedSlots, warnings, notes);
    } else {
        std::snprintf(buf, sizeof(buf),
                      "%zu errors, %zu warnings, %zu notes over %zu "
                      "slots (%zu findings suppressed)",
                      errors, warnings, notes, checkedSlots, suppressed);
    }
    return buf;
}

VerifyResult
verifySchedule(const Schedule &schedule, const VerifyOptions &options)
{
    DiagnosticEngine engine(options.maxDiagnosticsPerRule);
    VerifyResult result;

    const bool scannable = checkConfig(schedule, engine);
    if (scannable)
        checkEncoding(schedule, engine);

    const SchedConfig &cfg = schedule.config;
    std::size_t valid_slots = 0;

    if (scannable) {
        const LaneMap map(cfg);
        const unsigned pes = cfg.pesPerGroup();
        const unsigned channels = cfg.channels;

        // Ground truth for the completeness rules.
        std::unordered_map<std::uint64_t, float> expected;
        std::unordered_set<std::uint64_t> seen;
        const sparse::CsrMatrix *matrix = options.matrix;
        if (matrix != nullptr) {
            expected.reserve(matrix->nnz());
            seen.reserve(matrix->nnz());
            for (std::uint32_t r = 0; r < matrix->rows(); ++r) {
                for (std::size_t i = matrix->rowPtr()[r];
                     i < matrix->rowPtr()[r + 1]; ++i) {
                    expected[elementKey(r, matrix->colIdx()[i])] =
                        matrix->values()[i];
                }
            }
            if (schedule.rows != matrix->rows() ||
                schedule.cols != matrix->cols()) {
                engine.report(
                    rule::kMetadata, Severity::kError, {},
                    format("schedule header %ux%u does not match the "
                           "matrix %ux%u",
                           schedule.rows, schedule.cols, matrix->rows(),
                           matrix->cols()));
            }
        }

        if (options.capacityRowsPerLane != 0 &&
            cfg.rowsPerLanePerPass > options.capacityRowsPerLane) {
            engine.report(
                rule::kScugCapacity, Severity::kWarning, {},
                format("config allows %u rows per lane per pass but the "
                       "physical ScUG holds %u",
                       cfg.rowsPerLanePerPass,
                       options.capacityRowsPerLane));
        }

        // Phase ordering state.
        std::unordered_set<std::uint64_t> phase_keys;
        std::uint64_t prev_key = 0;
        bool have_prev = false;

        for (std::size_t ph = 0; ph < schedule.phases.size(); ++ph) {
            const WindowSchedule &phase = schedule.phases[ph];
            Location ploc;
            ploc.phase = static_cast<std::int64_t>(ph);
            ploc.pass = phase.pass;
            ploc.window = phase.window;

            const std::uint64_t key =
                (static_cast<std::uint64_t>(phase.pass) << 32) |
                phase.window;
            if (!phase_keys.insert(key).second) {
                engine.report(rule::kPhaseOrder, Severity::kError, ploc,
                              format("duplicate phase (pass %u, window "
                                     "%u)",
                                     phase.pass, phase.window));
            } else if (have_prev && key < prev_key) {
                engine.report(rule::kPhaseOrder, Severity::kWarning,
                              ploc,
                              format("phase (pass %u, window %u) is out "
                                     "of pass-major order",
                                     phase.pass, phase.window));
            }
            prev_key = key;
            have_prev = true;

            if (phase.channels.size() != channels) {
                engine.report(rule::kPhaseShape, Severity::kError, ploc,
                              format("phase has %zu channel lists, "
                                     "config says %u",
                                     phase.channels.size(), channels));
                continue; // shape too broken to scan slot-wise
            }

            std::size_t longest = 0;
            for (const ChannelWindowSchedule &ch : phase.channels)
                longest = std::max(longest, ch.length());
            if (phase.alignedBeats > longest) {
                engine.report(
                    rule::kPhaseShape, Severity::kWarning, ploc,
                    format("alignedBeats %zu exceeds the longest "
                           "channel list %zu (dead padding beats)",
                           phase.alignedBeats, longest));
            }

            const std::uint32_t col_lo = phase.window * cfg.windowCols;
            const std::uint32_t row_lo = phase.pass * cfg.rowsPerPass();
            const std::uint32_t pass_local_base =
                phase.pass * cfg.rowsPerLanePerPass;

            // bank -> last write beat within this phase. The bank is
            // physical: (streaming channel, PE slot, row) — pvt writes
            // go to the lane's own URAM, migrated writes to the shared
            // bank in the destination PEG (Section 4.5).
            std::unordered_map<std::uint64_t, std::size_t> last_write;

            for (unsigned ch = 0; ch < channels; ++ch) {
                const ChannelWindowSchedule &cws = phase.channels[ch];
                Location cloc = ploc;
                cloc.channel = ch;
                if (cws.length() > phase.alignedBeats) {
                    engine.report(
                        rule::kPhaseShape, Severity::kError, cloc,
                        format("channel list of %zu beats is longer "
                               "than the aligned length %zu",
                               cws.length(), phase.alignedBeats));
                }
                for (std::size_t t = 0; t < cws.length(); ++t) {
                    const Beat &beat = cws.beats[t];
                    for (unsigned p = pes; p < sched::kMaxPesPerGroup;
                         ++p) {
                        if (beat.slots[p].valid) {
                            Location sloc = cloc;
                            sloc.beat = static_cast<std::int64_t>(t);
                            sloc.pe = p;
                            engine.report(
                                rule::kPhaseShape, Severity::kError,
                                sloc,
                                format("valid slot in PE column %u "
                                       "beyond the %u active PEs",
                                       p, pes));
                        }
                    }
                    for (unsigned p = 0; p < pes; ++p) {
                        const Slot &slot = beat.slots[p];
                        if (!slot.valid)
                            continue;
                        ++valid_slots;
                        Location sloc = cloc;
                        sloc.beat = static_cast<std::int64_t>(t);
                        sloc.pe = p;

                        // Source mapping (Eq. 1-2).
                        if (map.channelOf(slot.row) != slot.chSrc ||
                            map.peOf(slot.row) != slot.peSrc) {
                            engine.report(
                                rule::kLaneMapping, Severity::kError,
                                sloc,
                                format("slot source (%u,%u) does not "
                                       "match row %u's lane (%u,%u)",
                                       slot.chSrc, slot.peSrc, slot.row,
                                       map.channelOf(slot.row),
                                       map.peOf(slot.row)));
                        } else if (slot.pvt) {
                            if (slot.chSrc != ch || slot.peSrc != p) {
                                engine.report(
                                    rule::kPvtFlag, Severity::kError,
                                    sloc,
                                    format("pvt slot for row %u "
                                           "streamed on (%u,%u)",
                                           slot.row, ch, p));
                            }
                        } else {
                            const unsigned dist =
                                (slot.chSrc + channels - ch) % channels;
                            if (dist < 1 ||
                                dist > cfg.migrationDepth) {
                                engine.report(
                                    rule::kMigrationDepth,
                                    Severity::kError, sloc,
                                    format("migrated slot from channel "
                                           "%u on channel %u exceeds "
                                           "depth %u",
                                           slot.chSrc, ch,
                                           cfg.migrationDepth));
                            }
                        }

                        // Window / pass residency.
                        const bool col_ok = slot.col >= col_lo &&
                            slot.col - col_lo < cfg.windowCols;
                        if (!col_ok) {
                            engine.report(
                                rule::kWindowBounds, Severity::kError,
                                sloc,
                                format("col %u outside window %u "
                                       "[%u,%u)",
                                       slot.col, phase.window, col_lo,
                                       col_lo + cfg.windowCols));
                        }
                        const bool row_ok = slot.row >= row_lo &&
                            slot.row - row_lo < cfg.rowsPerPass();
                        if (!row_ok) {
                            engine.report(
                                rule::kPassBounds, Severity::kError,
                                sloc,
                                format("row %u outside pass %u", slot.row,
                                       phase.pass));
                        } else if (options.capacityRowsPerLane != 0) {
                            const std::uint32_t local =
                                map.localRowOf(slot.row) -
                                pass_local_base;
                            if (local >= options.capacityRowsPerLane) {
                                engine.report(
                                    rule::kScugCapacity,
                                    Severity::kError, sloc,
                                    format("lane-local row %u exceeds "
                                           "the ScUG capacity of %u "
                                           "rows per pass",
                                           local,
                                           options.capacityRowsPerLane));
                            }
                        }

                        // RAW distance on the physical bank.
                        const std::uint64_t bank =
                            ((static_cast<std::uint64_t>(ch) * pes + p)
                             << 32) |
                            slot.row;
                        auto it = last_write.find(bank);
                        if (it != last_write.end() &&
                            it->second + cfg.rawDistance > t) {
                            engine.report(
                                rule::kRawHazard, Severity::kError,
                                sloc,
                                format("RAW violation: row %u written "
                                       "at beats %zu and %zu on "
                                       "(%u,%u), distance %u required",
                                       slot.row, it->second, t, ch, p,
                                       cfg.rawDistance));
                        }
                        last_write[bank] = t;

                        // Element accounting.
                        if (matrix != nullptr) {
                            const std::uint64_t ekey =
                                elementKey(slot.row, slot.col);
                            auto found = expected.find(ekey);
                            if (found == expected.end()) {
                                engine.report(
                                    rule::kDuplicateElement,
                                    Severity::kError, sloc,
                                    format("unexpected or duplicated "
                                           "element (%u,%u): not in "
                                           "the matrix",
                                           slot.row, slot.col));
                            } else if (!seen.insert(ekey).second) {
                                engine.report(
                                    rule::kDuplicateElement,
                                    Severity::kError, sloc,
                                    format("unexpected or duplicated "
                                           "element (%u,%u): scheduled "
                                           "more than once",
                                           slot.row, slot.col));
                            } else if (found->second != slot.value) {
                                engine.report(
                                    rule::kValueMismatch,
                                    Severity::kError, sloc,
                                    format("value mismatch at (%u,%u): "
                                           "schedule has %g, matrix "
                                           "has %g",
                                           slot.row, slot.col,
                                           slot.value, found->second));
                            }
                        }
                    }
                }
            }
        }

        // Completeness: everything expected must have been seen.
        if (matrix != nullptr && seen.size() != expected.size()) {
            for (const auto &[ekey, value] : expected) {
                if (seen.count(ekey) != 0)
                    continue;
                (void)value;
                engine.report(
                    rule::kMissingElement, Severity::kError, {},
                    format("element (%u,%u) missing: schedule covers "
                           "%zu of %zu non-zeros",
                           static_cast<std::uint32_t>(ekey >> 32),
                           static_cast<std::uint32_t>(ekey),
                           seen.size(), expected.size()));
            }
        }
    }

    // Metadata consistency (after the scan so CHV001 sorts first).
    if (scannable && schedule.nnz != valid_slots) {
        engine.report(rule::kMetadata, Severity::kError, {},
                      format("schedule header claims %zu non-zeros but "
                             "%zu valid slots are present",
                             schedule.nnz, valid_slots));
    }

    result.diagnostics = engine.diagnostics();
    result.errors = engine.errorCount();
    result.warnings = engine.warningCount();
    result.notes = engine.noteCount();
    result.suppressed = engine.suppressedCount();
    result.checkedSlots = valid_slots;
    return result;
}

} // namespace verify

namespace sched {

void
validateSchedule(const Schedule &schedule, const sparse::CsrMatrix &matrix)
{
    verify::VerifyOptions options;
    options.matrix = &matrix;
    options.maxDiagnosticsPerRule = 1;
    const verify::VerifyResult result =
        verify::verifySchedule(schedule, options);
    if (!result.clean()) {
        chason_panic("schedule verification failed: %s",
                     verify::toString(*result.firstError()).c_str());
    }
}

} // namespace sched
} // namespace chason
