/**
 * @file
 * The CHV*** rule catalog: every architectural invariant the static
 * schedule verifier checks, with its paper anchor.
 *
 * The catalog is data, not code, so the SARIF exporter can emit the
 * full `tool.driver.rules` array and docs/ARCHITECTURE.md can mirror
 * the same table. Checking logic lives in verify/verifier.cc.
 */

#ifndef CHASON_VERIFY_RULES_H_
#define CHASON_VERIFY_RULES_H_

#include <cstddef>

#include "verify/diagnostics.h"

namespace chason {
namespace verify {

/** Stable rule identifiers (indices into ruleCatalog()). */
namespace rule {
inline constexpr const char *kMissingElement = "CHV001";
inline constexpr const char *kDuplicateElement = "CHV002";
inline constexpr const char *kValueMismatch = "CHV003";
inline constexpr const char *kRawHazard = "CHV004";
inline constexpr const char *kLaneMapping = "CHV005";
inline constexpr const char *kPvtFlag = "CHV006";
inline constexpr const char *kMigrationDepth = "CHV007";
inline constexpr const char *kWindowBounds = "CHV008";
inline constexpr const char *kPassBounds = "CHV009";
inline constexpr const char *kEncodingOverflow = "CHV010";
inline constexpr const char *kPhaseShape = "CHV011";
inline constexpr const char *kScugCapacity = "CHV012";
inline constexpr const char *kPhaseOrder = "CHV013";
inline constexpr const char *kMetadata = "CHV014";
// Artifact admission (CHSA files; checked by verify/artifact_check.h).
inline constexpr const char *kArtifactMagic = "CHV015";
inline constexpr const char *kArtifactVersion = "CHV016";
inline constexpr const char *kArtifactChecksum = "CHV017";
inline constexpr const char *kArtifactStructure = "CHV018";
} // namespace rule

/** One catalog entry. */
struct RuleInfo
{
    const char *id;           ///< "CHV###"
    const char *name;         ///< PascalCase short name (SARIF rule.name)
    Severity defaultSeverity; ///< level when the invariant is violated
    const char *summary;      ///< one-line description
    const char *paperRef;     ///< section / equation the invariant models
};

/** All rules, ordered by ID. */
const RuleInfo *ruleCatalog(std::size_t *count);

/** Look up a rule by ID; nullptr if unknown. */
const RuleInfo *findRule(const char *id);

} // namespace verify
} // namespace chason

#endif // CHASON_VERIFY_RULES_H_
