/**
 * @file
 * CHSA artifact admission checks.
 */

#include "verify/artifact_check.h"

#include "verify/rules.h"

namespace chason {
namespace verify {

const char *
artifactStatusRule(sched::ArtifactStatus status)
{
    switch (status) {
    case sched::ArtifactStatus::kOk:
        return nullptr;
    case sched::ArtifactStatus::kIoError:
    case sched::ArtifactStatus::kBadMagic:
        return rule::kArtifactMagic;
    case sched::ArtifactStatus::kBadVersion:
        return rule::kArtifactVersion;
    case sched::ArtifactStatus::kBadChecksum:
        return rule::kArtifactChecksum;
    case sched::ArtifactStatus::kTruncated:
    case sched::ArtifactStatus::kBadStructure:
        return rule::kArtifactStructure;
    }
    return rule::kArtifactStructure;
}

VerifyResult
verifyArtifact(const std::string &path, bool deep)
{
    const auto reject = [](const sched::ArtifactError &error) {
        VerifyResult result;
        Diagnostic d;
        d.ruleId = artifactStatusRule(error.status);
        d.severity = Severity::kError;
        d.message = std::string(sched::artifactStatusName(error.status)) +
            ": " + error.detail;
        result.diagnostics.push_back(std::move(d));
        result.errors = 1;
        return result;
    };

    sched::ArtifactError error;
    const sched::ArtifactReader reader =
        sched::ArtifactReader::open(path, &error);
    if (!reader.ok())
        return reject(error);
    if (!reader.payloadIntact(&error))
        return reject(error);

    if (!deep) {
        VerifyResult result;
        // One "slot" of coverage per beat actually digested, so the
        // summary line reflects that the payload was checked.
        result.checkedSlots = static_cast<std::size_t>(
            reader.info().payloadBytes / sizeof(sched::Beat));
        return result;
    }
    return verifySchedule(reader.load());
}

} // namespace verify
} // namespace chason
