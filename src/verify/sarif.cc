/**
 * @file
 * SARIF 2.1.0 writer.
 *
 * Hand-rolled JSON emission in the repo's report_json tradition: the
 * document shape is fixed, so a serializer dependency would buy
 * nothing. Property order follows the SARIF spec's examples.
 */

#include "verify/sarif.h"

#include <cstdint>
#include <cstdio>

#include "common/buildinfo.h"
#include "verify/rules.h"

namespace chason {
namespace verify {

namespace {

constexpr const char *kSchemaUri =
    "https://json.schemastore.org/sarif-2.1.0.json";
constexpr const char *kToolName = "chason_verify";
constexpr const char *kToolVersion = "1.0.0";
constexpr const char *kInfoUri =
    "https://github.com/chason-sim/chason";

std::string
uriEscape(const std::string &uri)
{
    std::string out;
    out.reserve(uri.size());
    for (char c : uri) {
        if (c == ' ')
            out += "%20";
        else
            out += c;
    }
    return out;
}

void
appendQuoted(std::string &out, const std::string &text)
{
    out += '"';
    out += jsonEscape(text);
    out += '"';
}

/** One run object at the fixed "    " indent of the runs array. */
void
emitRun(std::string &out, const SarifRun &run)
{
    out += "    {\n";

    // tool.driver with the embedded rule table.
    out += "      \"tool\": {\n        \"driver\": {\n";
    out += "          \"name\": ";
    appendQuoted(out, run.toolName);
    if (!run.toolVersion.empty()) {
        out += ",\n          \"version\": ";
        appendQuoted(out, run.toolVersion);
    }
    if (!run.semanticVersion.empty()) {
        out += ",\n          \"semanticVersion\": ";
        appendQuoted(out, run.semanticVersion);
    }
    if (!run.informationUri.empty()) {
        out += ",\n          \"informationUri\": ";
        appendQuoted(out, run.informationUri);
    }
    if (!run.revision.empty()) {
        out += ",\n          \"properties\": {\"revision\": ";
        appendQuoted(out, run.revision);
        out += "}";
    }
    out += ",\n          \"rules\": [\n";
    for (std::size_t i = 0; i < run.rules.size(); ++i) {
        const SarifRule &r = run.rules[i];
        out += "            {\n              \"id\": ";
        appendQuoted(out, r.id);
        out += ",\n              \"name\": ";
        appendQuoted(out, r.name);
        out += ",\n              \"shortDescription\": {\"text\": ";
        appendQuoted(out, r.shortDescription);
        out += "},\n              \"fullDescription\": {\"text\": ";
        appendQuoted(out, r.fullDescription.empty() ? r.shortDescription
                                                    : r.fullDescription);
        out += "},\n              \"defaultConfiguration\": "
               "{\"level\": ";
        appendQuoted(out, r.level);
        out += "}\n            }";
        out += i + 1 < run.rules.size() ? ",\n" : "\n";
    }
    out += "          ]\n        }\n      },\n";

    // results.
    if (run.results.empty()) {
        out += "      \"results\": []\n    }";
        return;
    }
    out += "      \"results\": [\n";
    for (std::size_t i = 0; i < run.results.size(); ++i) {
        const SarifFinding &f = run.results[i];
        out += "        {\n          \"ruleId\": ";
        appendQuoted(out, f.ruleId);
        const int index = run.ruleIndexOf(f.ruleId);
        if (index >= 0) {
            char buf[48];
            std::snprintf(buf, sizeof(buf),
                          ",\n          \"ruleIndex\": %d", index);
            out += buf;
        }
        out += ",\n          \"level\": ";
        appendQuoted(out, f.level);
        out += ",\n          \"message\": {\"text\": ";
        appendQuoted(out, f.message);
        out += "},\n          \"locations\": [\n            {\n";
        out += "              \"physicalLocation\": {\n";
        out += "                \"artifactLocation\": {\"uri\": ";
        appendQuoted(out, uriEscape(f.uri));
        out += "}";
        if (f.line > 0) {
            char buf[96];
            if (f.column > 0) {
                std::snprintf(buf, sizeof(buf),
                              ",\n                \"region\": "
                              "{\"startLine\": %d, \"startColumn\": %d}",
                              f.line, f.column);
            } else {
                std::snprintf(buf, sizeof(buf),
                              ",\n                \"region\": "
                              "{\"startLine\": %d}",
                              f.line);
            }
            out += buf;
        }
        out += "\n              }";
        if (!f.logicalName.empty()) {
            out += ",\n              \"logicalLocations\": [\n";
            out += "                {\"fullyQualifiedName\": ";
            appendQuoted(out, f.logicalName);
            out += "}\n              ]";
        }
        out += "\n            }\n          ]";
        if (!f.fingerprint.empty()) {
            out += ",\n          \"partialFingerprints\": "
                   "{\"chasonLint/v1\": ";
            appendQuoted(out, f.fingerprint);
            out += "}";
        }
        out += "\n        }";
        out += i + 1 < run.results.size() ? ",\n" : "\n";
    }
    out += "      ]\n    }";
}

} // namespace

std::string
jsonEscape(const std::string &text)
{
    std::string out;
    out.reserve(text.size() + 8);
    for (unsigned char c : text) {
        switch (c) {
        case '"':
            out += "\\\"";
            break;
        case '\\':
            out += "\\\\";
            break;
        case '\n':
            out += "\\n";
            break;
        case '\r':
            out += "\\r";
            break;
        case '\t':
            out += "\\t";
            break;
        default:
            if (c < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += static_cast<char>(c);
            }
        }
    }
    return out;
}

int
SarifRun::addRule(const SarifRule &rule)
{
    const int existing = ruleIndexOf(rule.id);
    if (existing >= 0)
        return existing;
    rules.push_back(rule);
    return static_cast<int>(rules.size()) - 1;
}

int
SarifRun::ruleIndexOf(const std::string &ruleId) const
{
    for (std::size_t i = 0; i < rules.size(); ++i) {
        if (rules[i].id == ruleId)
            return static_cast<int>(i);
    }
    return -1;
}

std::size_t
SarifDocument::resultCount() const
{
    std::size_t n = 0;
    for (const SarifRun &run : runs_)
        n += run.results.size();
    return n;
}

std::string
SarifDocument::toJson() const
{
    std::string out;
    out.reserve(4096 + resultCount() * 256);
    out += "{\n";
    out += "  \"$schema\": \"";
    out += kSchemaUri;
    out += "\",\n  \"version\": \"2.1.0\",\n  \"runs\": [\n";
    for (std::size_t i = 0; i < runs_.size(); ++i) {
        emitRun(out, runs_[i]);
        out += i + 1 < runs_.size() ? ",\n" : "\n";
    }
    out += "  ]\n}\n";
    return out;
}

void
SarifLog::addResult(const VerifyResult &result,
                    const std::string &artifactUri)
{
    for (const Diagnostic &d : result.diagnostics)
        results_.push_back({d, artifactUri});
}

SarifRun
SarifLog::toRun() const
{
    SarifRun run;
    run.toolName = kToolName;
    run.toolVersion = kToolVersion;
    run.semanticVersion = kToolVersion;
    run.informationUri = kInfoUri;
    // The emitting revision: lets a stored document answer "which tree
    // produced these findings" (same stamp the BENCH reports carry).
    run.revision = common::gitRevision();

    std::size_t rule_count = 0;
    const RuleInfo *rules = ruleCatalog(&rule_count);
    for (std::size_t i = 0; i < rule_count; ++i) {
        const RuleInfo &r = rules[i];
        SarifRule rule;
        rule.id = r.id;
        rule.name = r.name;
        rule.shortDescription = r.summary;
        rule.fullDescription =
            std::string(r.summary) + " Models: " + r.paperRef + ".";
        rule.level = severityName(r.defaultSeverity);
        run.addRule(rule);
    }

    for (const Entry &e : results_) {
        SarifFinding f;
        f.ruleId = e.diagnostic.ruleId;
        f.level = severityName(e.diagnostic.severity);
        f.message = e.diagnostic.message;
        f.uri = e.artifactUri;
        f.logicalName = e.diagnostic.loc.qualifiedName();
        run.results.push_back(std::move(f));
    }
    return run;
}

std::string
SarifLog::toJson() const
{
    SarifDocument doc;
    doc.addRun(toRun());
    return doc.toJson();
}

std::string
lintFingerprint(const std::string &ruleId, const std::string &uri,
                const std::string &message)
{
    const std::string key = ruleId + "|" + uri + "|" + message;
    std::uint64_t h = 0xcbf29ce484222325ull;
    for (unsigned char c : key) {
        h ^= c;
        h *= 0x100000001b3ull;
    }
    char buf[24];
    std::snprintf(buf, sizeof(buf), "%016llx",
                  static_cast<unsigned long long>(h));
    return buf;
}

std::vector<std::string>
sarifFingerprints(const std::string &sarifJson)
{
    std::vector<std::string> out;
    const std::string needle = "\"chasonLint/v1\": \"";
    std::size_t pos = 0;
    while ((pos = sarifJson.find(needle, pos)) != std::string::npos) {
        pos += needle.size();
        const std::size_t end = sarifJson.find('"', pos);
        if (end == std::string::npos)
            break;
        out.push_back(sarifJson.substr(pos, end - pos));
        pos = end + 1;
    }
    return out;
}

} // namespace verify
} // namespace chason
