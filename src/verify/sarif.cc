/**
 * @file
 * SARIF 2.1.0 writer.
 *
 * Hand-rolled JSON emission in the repo's report_json tradition: the
 * document shape is fixed, so a serializer dependency would buy
 * nothing. Property order follows the SARIF spec's examples.
 */

#include "verify/sarif.h"

#include <cstdio>

#include "verify/rules.h"

namespace chason {
namespace verify {

namespace {

constexpr const char *kSchemaUri =
    "https://json.schemastore.org/sarif-2.1.0.json";
constexpr const char *kToolName = "chason_verify";
constexpr const char *kToolVersion = "1.0.0";
constexpr const char *kInfoUri =
    "https://github.com/chason-sim/chason";

/** Index of a rule ID within the catalog, or -1. */
int
ruleIndexOf(const std::string &id)
{
    std::size_t count = 0;
    const RuleInfo *rules = ruleCatalog(&count);
    for (std::size_t i = 0; i < count; ++i) {
        if (id == rules[i].id)
            return static_cast<int>(i);
    }
    return -1;
}

std::string
uriEscape(const std::string &uri)
{
    std::string out;
    out.reserve(uri.size());
    for (char c : uri) {
        if (c == ' ')
            out += "%20";
        else
            out += c;
    }
    return out;
}

} // namespace

std::string
jsonEscape(const std::string &text)
{
    std::string out;
    out.reserve(text.size() + 8);
    for (unsigned char c : text) {
        switch (c) {
        case '"':
            out += "\\\"";
            break;
        case '\\':
            out += "\\\\";
            break;
        case '\n':
            out += "\\n";
            break;
        case '\r':
            out += "\\r";
            break;
        case '\t':
            out += "\\t";
            break;
        default:
            if (c < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += static_cast<char>(c);
            }
        }
    }
    return out;
}

void
SarifLog::addResult(const VerifyResult &result,
                    const std::string &artifactUri)
{
    for (const Diagnostic &d : result.diagnostics)
        results_.push_back({d, artifactUri});
}

std::string
SarifLog::toJson() const
{
    std::string out;
    out.reserve(4096 + results_.size() * 256);
    out += "{\n";
    out += "  \"$schema\": \"";
    out += kSchemaUri;
    out += "\",\n  \"version\": \"2.1.0\",\n  \"runs\": [\n    {\n";

    // tool.driver with the embedded rule catalog.
    out += "      \"tool\": {\n        \"driver\": {\n";
    out += "          \"name\": \"";
    out += kToolName;
    out += "\",\n          \"version\": \"";
    out += kToolVersion;
    out += "\",\n          \"informationUri\": \"";
    out += kInfoUri;
    out += "\",\n          \"rules\": [\n";
    std::size_t rule_count = 0;
    const RuleInfo *rules = ruleCatalog(&rule_count);
    for (std::size_t i = 0; i < rule_count; ++i) {
        const RuleInfo &r = rules[i];
        out += "            {\n              \"id\": \"";
        out += r.id;
        out += "\",\n              \"name\": \"";
        out += r.name;
        out += "\",\n              \"shortDescription\": {\"text\": \"";
        out += jsonEscape(r.summary);
        out += "\"},\n              \"fullDescription\": {\"text\": \"";
        out += jsonEscape(std::string(r.summary) + " Models: " +
                          r.paperRef + ".");
        out += "\"},\n              \"defaultConfiguration\": "
               "{\"level\": \"";
        out += severityName(r.defaultSeverity);
        out += "\"}\n            }";
        out += i + 1 < rule_count ? ",\n" : "\n";
    }
    out += "          ]\n        }\n      },\n";

    // results.
    if (results_.empty()) {
        out += "      \"results\": []\n    }\n  ]\n}\n";
        return out;
    }
    out += "      \"results\": [\n";
    for (std::size_t i = 0; i < results_.size(); ++i) {
        const Entry &e = results_[i];
        out += "        {\n          \"ruleId\": \"";
        out += e.diagnostic.ruleId;
        const int index = ruleIndexOf(e.diagnostic.ruleId);
        if (index >= 0) {
            char buf[48];
            std::snprintf(buf, sizeof(buf),
                          "\",\n          \"ruleIndex\": %d", index);
            out += buf;
        } else {
            out += '"';
        }
        out += ",\n          \"level\": \"";
        out += severityName(e.diagnostic.severity);
        out += "\",\n          \"message\": {\"text\": \"";
        out += jsonEscape(e.diagnostic.message);
        out += "\"},\n          \"locations\": [\n            {\n";
        out += "              \"physicalLocation\": {\n";
        out += "                \"artifactLocation\": {\"uri\": \"";
        out += jsonEscape(uriEscape(e.artifactUri));
        out += "\"}\n              }";
        const std::string logical = e.diagnostic.loc.qualifiedName();
        if (!logical.empty()) {
            out += ",\n              \"logicalLocations\": [\n";
            out += "                {\"fullyQualifiedName\": \"";
            out += jsonEscape(logical);
            out += "\"}\n              ]";
        }
        out += "\n            }\n          ]\n        }";
        out += i + 1 < results_.size() ? ",\n" : "\n";
    }
    out += "      ]\n    }\n  ]\n}\n";
    return out;
}

} // namespace verify
} // namespace chason
