/**
 * @file
 * Corruption injection.
 */

#include "verify/mutate.h"

#include <algorithm>
#include <cstring>
#include <string>
#include <vector>

#include "verify/rules.h"

namespace chason {
namespace verify {

namespace {

using sched::Schedule;
using sched::Slot;

/** (phase, channel, beat, pe) of a slot. */
struct Site
{
    std::size_t phase;
    std::size_t channel;
    std::size_t beat;
    unsigned pe;
};

Slot &
slotAt(Schedule &schedule, const Site &site)
{
    return schedule.phases[site.phase]
        .channels[site.channel]
        .beats[site.beat]
        .slots[site.pe];
}

std::vector<Site>
validSites(Schedule &schedule)
{
    const unsigned pes = schedule.config.pesPerGroup();
    std::vector<Site> sites;
    for (std::size_t ph = 0; ph < schedule.phases.size(); ++ph) {
        auto &phase = schedule.phases[ph];
        for (std::size_t ch = 0; ch < phase.channels.size(); ++ch) {
            auto &beats = phase.channels[ch].beats;
            for (std::size_t t = 0; t < beats.size(); ++t) {
                for (unsigned p = 0; p < pes; ++p) {
                    if (beats[t].slots[p].valid)
                        sites.push_back({ph, ch, t, p});
                }
            }
        }
    }
    return sites;
}

/**
 * Flip the top mantissa bit: guaranteed to change any finite float,
 * and by enough (25-50% of the value) that the tampering also survives
 * float accumulation — a 1-ulp flip would be caught by CHV003's exact
 * compare but could round away in the simulated partial sums, which
 * the differential tests rely on not happening.
 */
float
perturb(float value)
{
    std::uint32_t bits;
    std::memcpy(&bits, &value, sizeof(bits));
    bits ^= 0x0040'0000u;
    float out;
    std::memcpy(&out, &bits, sizeof(out));
    return out;
}

bool
injectValueTamper(Schedule &schedule, std::uint64_t seed)
{
    std::vector<Site> sites = validSites(schedule);
    if (sites.empty())
        return false;
    Slot &slot = slotAt(schedule, sites[seed % sites.size()]);
    slot.value = perturb(slot.value);
    return true;
}

bool
injectDrop(Schedule &schedule, std::uint64_t seed)
{
    std::vector<Site> sites = validSites(schedule);
    if (sites.empty())
        return false;
    slotAt(schedule, sites[seed % sites.size()]) = Slot();
    return true;
}

bool
injectDuplicate(Schedule &schedule, std::uint64_t seed)
{
    const unsigned raw = schedule.config.rawDistance;
    std::vector<Site> sites = validSites(schedule);
    if (sites.empty())
        return false;
    // Prefer a stall slot at hazard-safe distance in the same channel
    // and PE column, so the duplicate trips CHV002 alone. Safe means
    // >= raw beats away from EVERY write of that row in the column —
    // the round-robin schedules the same row again every rawDistance
    // beats, so checking only the source beat is not enough.
    for (std::size_t attempt = 0; attempt < sites.size(); ++attempt) {
        const Site src = sites[(seed + attempt) % sites.size()];
        auto &beats =
            schedule.phases[src.phase].channels[src.channel].beats;
        const std::uint32_t row = slotAt(schedule, src).row;
        std::vector<std::size_t> writes;
        for (std::size_t t = 0; t < beats.size(); ++t) {
            const Slot &slot = beats[t].slots[src.pe];
            if (slot.valid && slot.row == row)
                writes.push_back(t);
        }
        for (std::size_t t = 0; t < beats.size(); ++t) {
            Slot &candidate = beats[t].slots[src.pe];
            if (candidate.valid)
                continue;
            const bool safe = std::all_of(
                writes.begin(), writes.end(), [&](std::size_t w) {
                    return (t > w ? t - w : w - t) >= raw;
                });
            if (safe) {
                candidate = slotAt(schedule, src);
                return true;
            }
        }
    }
    return false;
}

bool
injectRawViolation(Schedule &schedule, std::uint64_t seed)
{
    const unsigned pes = schedule.config.pesPerGroup();
    const unsigned raw = schedule.config.rawDistance;

    // An opportunity: two writes (t1 < t2) to the same row in the same
    // (phase, channel, PE column) with a free slot u in (t1, t1+raw).
    struct Opportunity
    {
        Site from; ///< the t2 write to relocate
        Site to;   ///< the free slot inside t1's hazard window
    };
    std::vector<Opportunity> opportunities;

    for (std::size_t ph = 0; ph < schedule.phases.size(); ++ph) {
        auto &phase = schedule.phases[ph];
        for (std::size_t ch = 0; ch < phase.channels.size(); ++ch) {
            auto &beats = phase.channels[ch].beats;
            for (unsigned p = 0; p < pes; ++p) {
                // row -> first write beat in this column.
                std::vector<std::pair<std::uint32_t, std::size_t>> first;
                for (std::size_t t = 0; t < beats.size(); ++t) {
                    const Slot &slot = beats[t].slots[p];
                    if (!slot.valid)
                        continue;
                    std::size_t t1 = SIZE_MAX;
                    for (const auto &[row, beat] : first) {
                        if (row == slot.row) {
                            t1 = beat;
                            break;
                        }
                    }
                    if (t1 == SIZE_MAX) {
                        first.emplace_back(slot.row, t);
                        continue;
                    }
                    // Found a (t1, t) same-row pair; look for a free
                    // slot strictly inside t1's hazard window.
                    const std::size_t lo = t1 + 1;
                    const std::size_t hi =
                        std::min<std::size_t>(t1 + raw, t);
                    for (std::size_t u = lo; u < hi; ++u) {
                        if (!beats[u].slots[p].valid) {
                            opportunities.push_back(
                                {{ph, ch, t, p}, {ph, ch, u, p}});
                            break;
                        }
                    }
                }
            }
        }
    }
    if (opportunities.empty())
        return false;
    const Opportunity &op =
        opportunities[seed % opportunities.size()];
    slotAt(schedule, op.to) = slotAt(schedule, op.from);
    slotAt(schedule, op.from) = Slot();
    return true;
}

} // namespace

const char *
corruptionName(Corruption kind)
{
    switch (kind) {
    case Corruption::kRawDistance:
        return "raw-distance";
    case Corruption::kDuplicateElement:
        return "duplicate";
    case Corruption::kDropElement:
        return "drop";
    case Corruption::kValueTamper:
        return "value";
    }
    return "unknown";
}

bool
parseCorruption(const char *name, Corruption *out)
{
    const std::string s(name);
    if (s == "raw-distance" || s == "raw") {
        *out = Corruption::kRawDistance;
    } else if (s == "duplicate" || s == "dup") {
        *out = Corruption::kDuplicateElement;
    } else if (s == "drop") {
        *out = Corruption::kDropElement;
    } else if (s == "value") {
        *out = Corruption::kValueTamper;
    } else {
        return false;
    }
    return true;
}

const char *
expectedRule(Corruption kind)
{
    switch (kind) {
    case Corruption::kRawDistance:
        return rule::kRawHazard;
    case Corruption::kDuplicateElement:
        return rule::kDuplicateElement;
    case Corruption::kDropElement:
        return rule::kMissingElement;
    case Corruption::kValueTamper:
        return rule::kValueMismatch;
    }
    return rule::kMetadata;
}

bool
corruptSchedule(Schedule &schedule, Corruption kind, std::uint64_t seed)
{
    switch (kind) {
    case Corruption::kRawDistance:
        return injectRawViolation(schedule, seed);
    case Corruption::kDuplicateElement:
        return injectDuplicate(schedule, seed);
    case Corruption::kDropElement:
        return injectDrop(schedule, seed);
    case Corruption::kValueTamper:
        return injectValueTamper(schedule, seed);
    }
    return false;
}

} // namespace verify
} // namespace chason
