/**
 * @file
 * Static schedule verifier: checks a sched::Schedule against the
 * architectural invariants of the paper *without running the cycle
 * simulator*, so an illegal CrHCS artifact is a compile-time error for
 * the repo instead of a wrong SpMV result hours later.
 *
 * Checked invariants (see verify/rules.h for the full catalog):
 *  - completeness: each matrix non-zero scheduled exactly once, none
 *    fabricated, values intact (CHV001-003; needs the matrix);
 *  - RAW hazard distance >= the accumulator pipeline depth on every
 *    physical bank (streaming lane x row) within a phase (CHV004);
 *  - lane mapping, pvt flag and migration-depth legality per slot
 *    (CHV005-007);
 *  - window/pass residency and wire-encoding field widths (CHV008-010);
 *  - per-channel payload alignment and phase shape (CHV011);
 *  - ScUG URAM capacity per pass when the caller supplies the physical
 *    capacity (CHV012);
 *  - phase ordering and metadata consistency (CHV013-014).
 *
 * verifySchedule() is a pure function and thread-safe; BatchEngine
 * calls it concurrently from its worker pool when --verify is on.
 */

#ifndef CHASON_VERIFY_VERIFIER_H_
#define CHASON_VERIFY_VERIFIER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "sched/schedule.h"
#include "sparse/formats.h"
#include "verify/diagnostics.h"

namespace chason {
namespace verify {

/** What to check and how much to report. */
struct VerifyOptions
{
    /**
     * Ground-truth matrix. When null the completeness rules
     * (CHV001-003) are skipped — a loaded artifact can still be checked
     * for hazards and structure on its own.
     */
    const sparse::CsrMatrix *matrix = nullptr;

    /**
     * Physical rows one lane's ScUG can hold per pass
     * (arch::ArchConfig::capacityRowsPerLane()). 0 skips CHV012; the
     * verifier deliberately does not depend on chason_arch, so the
     * caller supplies the number.
     */
    std::uint32_t capacityRowsPerLane = 0;

    /** Keep at most this many findings per rule (0 = unlimited). */
    std::size_t maxDiagnosticsPerRule = 8;
};

/** Verifier verdict: the diagnostics plus severity tallies. */
struct VerifyResult
{
    std::vector<Diagnostic> diagnostics;
    std::size_t errors = 0;
    std::size_t warnings = 0;
    std::size_t notes = 0;

    /** Findings dropped by the per-rule cap (counted in the tallies). */
    std::size_t suppressed = 0;

    /** Valid slots inspected (the verifier's coverage counter). */
    std::size_t checkedSlots = 0;

    /** Legal on the modeled hardware: no error-severity findings. */
    bool clean() const { return errors == 0; }

    /** First error-severity diagnostic, or nullptr when clean. */
    const Diagnostic *firstError() const;

    /** "clean: 1234 slots checked" or "3 errors, 1 warning ...". */
    std::string summary() const;
};

/** Statically verify @p schedule. Pure function; never panics. */
VerifyResult verifySchedule(const sched::Schedule &schedule,
                            const VerifyOptions &options = {});

} // namespace verify

namespace sched {

/**
 * Legacy strict entry point (declared in sched/analyzer.h, defined in
 * the chason_verify library): runs the static verifier and panics with
 * the first error-severity diagnostic. Kept so scheduler tests remain
 * one-line assertions.
 */
void validateSchedule(const Schedule &schedule,
                      const sparse::CsrMatrix &matrix);

} // namespace sched
} // namespace chason

#endif // CHASON_VERIFY_VERIFIER_H_
