/**
 * @file
 * Diagnostic collection and text rendering.
 */

#include "verify/diagnostics.h"

#include <cstdio>
#include <cstring>

namespace chason {
namespace verify {

const char *
severityName(Severity severity)
{
    switch (severity) {
    case Severity::kNote:
        return "note";
    case Severity::kWarning:
        return "warning";
    case Severity::kError:
        return "error";
    }
    return "error";
}

bool
Location::empty() const
{
    return phase < 0 && pass < 0 && window < 0 && channel < 0 &&
        beat < 0 && pe < 0;
}

std::string
Location::qualifiedName() const
{
    std::string out;
    char buf[96];
    if (phase >= 0) {
        if (pass >= 0 && window >= 0) {
            std::snprintf(buf, sizeof(buf),
                          "phase[%lld](pass %lld, window %lld)",
                          static_cast<long long>(phase),
                          static_cast<long long>(pass),
                          static_cast<long long>(window));
        } else {
            std::snprintf(buf, sizeof(buf), "phase[%lld]",
                          static_cast<long long>(phase));
        }
        out += buf;
    }
    if (channel >= 0) {
        std::snprintf(buf, sizeof(buf), "%schannel[%lld]",
                      out.empty() ? "" : ".",
                      static_cast<long long>(channel));
        out += buf;
    }
    if (beat >= 0) {
        std::snprintf(buf, sizeof(buf), "%sbeat[%lld]",
                      out.empty() ? "" : ".",
                      static_cast<long long>(beat));
        out += buf;
    }
    if (pe >= 0) {
        std::snprintf(buf, sizeof(buf), "%spe[%lld]",
                      out.empty() ? "" : ".", static_cast<long long>(pe));
        out += buf;
    }
    return out;
}

std::string
toString(const Diagnostic &diagnostic)
{
    std::string out = severityName(diagnostic.severity);
    out += ' ';
    out += diagnostic.ruleId;
    const std::string where = diagnostic.loc.qualifiedName();
    if (!where.empty()) {
        out += " at ";
        out += where;
    }
    out += ": ";
    out += diagnostic.message;
    return out;
}

void
DiagnosticEngine::report(const char *ruleId, Severity severity,
                         Location loc, std::string message)
{
    switch (severity) {
    case Severity::kError:
        ++errors_;
        break;
    case Severity::kWarning:
        ++warnings_;
        break;
    case Severity::kNote:
        ++notes_;
        break;
    }
    if (maxPerRule_ != 0 && perRuleCount(ruleId) >= maxPerRule_) {
        ++suppressed_;
        return;
    }
    Diagnostic d;
    d.ruleId = ruleId;
    d.severity = severity;
    d.message = std::move(message);
    d.loc = loc;
    diags_.push_back(std::move(d));
}

std::size_t
DiagnosticEngine::perRuleCount(const char *ruleId) const
{
    std::size_t count = 0;
    for (const Diagnostic &d : diags_) {
        if (d.ruleId == ruleId)
            ++count;
    }
    return count;
}

} // namespace verify
} // namespace chason
