/**
 * @file
 * Admission checks for CHSA schedule artifacts (CHV015-018).
 *
 * The on-disk store (sched/artifact.h) is untrusted input: files get
 * truncated by full disks, flipped by bad media, or written by newer
 * format versions. verifyArtifact() runs the full admission chain —
 * open/map, header magic + version, section structure, every checksum
 * including the beat payload — and reports each defect as a CHV
 * diagnostic so chason_verify can export it as SARIF and CI can gate
 * on it. The two-tier core::ScheduleCache runs the same underlying
 * checks inline; this wrapper is the reportable face of that gate.
 */

#ifndef CHASON_VERIFY_ARTIFACT_CHECK_H_
#define CHASON_VERIFY_ARTIFACT_CHECK_H_

#include <string>

#include "sched/artifact.h"
#include "verify/verifier.h"

namespace chason {
namespace verify {

/** The CHV rule an ArtifactStatus maps onto (nullptr for kOk). */
const char *artifactStatusRule(sched::ArtifactStatus status);

/**
 * Admission-check the CHSA artifact at @p path: structural validation
 * and every checksum, payload included. With @p deep set, a file that
 * passes admission is additionally loaded and run through the static
 * schedule verifier (CHV004-014, no matrix), so a well-formed file
 * carrying an illegal schedule is also rejected. Never panics on
 * malformed input; the verdict is the returned result's clean().
 */
VerifyResult verifyArtifact(const std::string &path, bool deep = false);

} // namespace verify
} // namespace chason

#endif // CHASON_VERIFY_ARTIFACT_CHECK_H_
