/**
 * @file
 * Deliberate schedule corruption, for negative-testing the verifier.
 *
 * Each Corruption kind injects exactly the defect class one CHV rule
 * exists to catch, so tests (and the `chason_verify --corrupt` CLI
 * mode used by the run_all.sh gate) can assert that a corrupted
 * artifact is flagged with the *right* rule ID — a verifier that cries
 * "error" for the wrong reason is as untrustworthy as a silent one.
 */

#ifndef CHASON_VERIFY_MUTATE_H_
#define CHASON_VERIFY_MUTATE_H_

#include <cstdint>

#include "sched/schedule.h"

namespace chason {
namespace verify {

/** Defect classes the injector can produce. */
enum class Corruption
{
    kRawDistance,      ///< move a write inside another's hazard window
    kDuplicateElement, ///< schedule one non-zero twice
    kDropElement,      ///< erase one scheduled non-zero
    kValueTamper,      ///< perturb one element's value
};

/** CLI spelling ("raw-distance", "duplicate", "drop", "value"). */
const char *corruptionName(Corruption kind);

/** Parse a CLI spelling; returns false if @p name is unknown. */
bool parseCorruption(const char *name, Corruption *out);

/** The rule ID the verifier must flag this corruption under. */
const char *expectedRule(Corruption kind);

/**
 * Inject @p kind into @p schedule, choosing the site from @p seed
 * deterministically. Returns false when the schedule offers no
 * opportunity (e.g. no two same-row writes share a lane for
 * kRawDistance); the schedule is unmodified in that case.
 */
bool corruptSchedule(sched::Schedule &schedule, Corruption kind,
                     std::uint64_t seed = 1);

} // namespace verify
} // namespace chason

#endif // CHASON_VERIFY_MUTATE_H_
