/**
 * @file
 * Rule catalog data.
 */

#include "verify/rules.h"

#include <cstring>

namespace chason {
namespace verify {

namespace {

constexpr RuleInfo kRules[] = {
    {rule::kMissingElement, "MissingElement", Severity::kError,
     "Every matrix non-zero must be scheduled exactly once; this one is "
     "absent from the schedule.",
     "Section 2.2 (completeness of the offline data list)"},
    {rule::kDuplicateElement, "DuplicateElement", Severity::kError,
     "A slot carries an element the matrix does not contain, or one "
     "that was already scheduled elsewhere.",
     "Section 2.2 (completeness of the offline data list)"},
    {rule::kValueMismatch, "ValueMismatch", Severity::kError,
     "A scheduled element's value differs from the matrix entry at its "
     "(row, col).",
     "Section 3.2 (64-bit element carries the FP32 value)"},
    {rule::kRawHazard, "RawHazard", Severity::kError,
     "Two writes to the same accumulator bank (streaming lane x row) "
     "closer than the FP accumulator pipeline depth.",
     "Section 2.2 (dependency distance), Section 4.1 (10-cycle adder)"},
    {rule::kLaneMapping, "LaneMapping", Severity::kError,
     "A slot's source (channel, PE) tag does not match the lane its row "
     "is statically mapped to.",
     "Eq. 1-2 (static row-to-lane mapping)"},
    {rule::kPvtFlag, "PvtFlag", Severity::kError,
     "A slot marked private (pvt=1) is streamed on a lane other than "
     "its own.",
     "Section 3.2 (pvt bit semantics)"},
    {rule::kMigrationDepth, "MigrationDepth", Severity::kError,
     "A migrated element's source channel is farther than the "
     "configured migration depth (or is the destination itself).",
     "Section 3.1 (migration to the previous channel), Section 6.1"},
    {rule::kWindowBounds, "WindowBounds", Severity::kError,
     "A slot's column falls outside its phase's column window.",
     "Section 4.1 (column window W = 8192)"},
    {rule::kPassBounds, "PassBounds", Severity::kError,
     "A slot's row falls outside its phase's row pass.",
     "Section 4.1 (rows per pass), Section 4.5"},
    {rule::kEncodingOverflow, "EncodingOverflow", Severity::kError,
     "A local index exceeds its wire-encoding field width (15-bit row, "
     "13-bit column, 3-bit PE_src), or the config makes that "
     "unavoidable.",
     "Section 3.2 (64-bit element layout)"},
    {rule::kPhaseShape, "PhaseShape", Severity::kError,
     "A phase's channel-list shape is inconsistent: wrong channel "
     "count, a channel longer than alignedBeats, alignedBeats shorter "
     "than the longest channel, or a valid slot beyond the active PEs.",
     "Section 3.1 (channels stream in lockstep per window)"},
    {rule::kScugCapacity, "ScugCapacity", Severity::kError,
     "A lane-local row address exceeds the physical ScUG URAM capacity "
     "for a pass (or the config nominally allows that).",
     "Section 4.5 (ScUG banking and URAM folding)"},
    {rule::kPhaseOrder, "PhaseOrder", Severity::kError,
     "Phases repeat a (pass, window) pair or run out of pass-major "
     "order (duplicate: error; out-of-order: warning).",
     "Section 3.1 (window-by-window execution)"},
    {rule::kMetadata, "Metadata", Severity::kError,
     "Schedule metadata (rows/cols/nnz/config) is internally "
     "inconsistent with the schedule contents.",
     "Section 3.2 (artifact header)"},
    {rule::kArtifactMagic, "ArtifactMagic", Severity::kError,
     "The file is not a CHSA schedule artifact (magic mismatch) or "
     "cannot be opened/mapped at all.",
     "docs/ARTIFACT_FORMAT.md (CHSA v1 header)"},
    {rule::kArtifactVersion, "ArtifactVersion", Severity::kError,
     "The artifact's format version is one this build does not speak; "
     "readers never guess across versions.",
     "docs/ARTIFACT_FORMAT.md (versioning policy)"},
    {rule::kArtifactChecksum, "ArtifactChecksum", Severity::kError,
     "A header or section digest does not match the stored bytes: the "
     "artifact is corrupt and must not be served.",
     "docs/ARTIFACT_FORMAT.md (checksum rules)"},
    {rule::kArtifactStructure, "ArtifactStructure", Severity::kError,
     "The artifact is truncated or structurally inconsistent (section "
     "table, meta ranges, beat counts, payload alignment).",
     "docs/ARTIFACT_FORMAT.md (section layout)"},
};

} // namespace

const RuleInfo *
ruleCatalog(std::size_t *count)
{
    if (count != nullptr)
        *count = sizeof(kRules) / sizeof(kRules[0]);
    return kRules;
}

const RuleInfo *
findRule(const char *id)
{
    for (const RuleInfo &r : kRules) {
        if (std::strcmp(r.id, id) == 0)
            return &r;
    }
    return nullptr;
}

} // namespace verify
} // namespace chason
