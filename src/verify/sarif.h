/**
 * @file
 * SARIF 2.1.0 export for verifier findings.
 *
 * The Static Analysis Results Interchange Format is what CI systems
 * (GitHub code scanning, Azure DevOps, VS Code SARIF viewers) ingest to
 * render findings inline. One SarifLog aggregates any number of
 * verified artifacts into a single run of the "chason_verify" driver;
 * the full CHV rule catalog is embedded as `tool.driver.rules`, and
 * each finding's schedule coordinates are exported as a SARIF
 * logicalLocation alongside the artifact URI.
 */

#ifndef CHASON_VERIFY_SARIF_H_
#define CHASON_VERIFY_SARIF_H_

#include <string>
#include <vector>

#include "verify/verifier.h"

namespace chason {
namespace verify {

/** Aggregates results from several artifacts into one SARIF run. */
class SarifLog
{
  public:
    /**
     * Append every diagnostic of @p result, attributed to the artifact
     * at @p artifactUri (a file path or a synthesized name like
     * "schedules/CM.crhcs"; spaces are percent-escaped).
     */
    void addResult(const VerifyResult &result,
                   const std::string &artifactUri);

    /** Findings added so far. */
    std::size_t size() const { return results_.size(); }

    /** Render the complete SARIF 2.1.0 JSON document. */
    std::string toJson() const;

  private:
    struct Entry
    {
        Diagnostic diagnostic;
        std::string artifactUri;
    };
    std::vector<Entry> results_;
};

/** Escape a string for embedding in a JSON string literal. */
std::string jsonEscape(const std::string &text);

} // namespace verify
} // namespace chason

#endif // CHASON_VERIFY_SARIF_H_
