/**
 * @file
 * SARIF 2.1.0 export for verifier and lint findings.
 *
 * The Static Analysis Results Interchange Format is what CI systems
 * (GitHub code scanning, Azure DevOps, VS Code SARIF viewers) ingest to
 * render findings inline. Two layers live here:
 *
 *  - SarifDocument / SarifRun: a generic multi-run writer. Each run
 *    carries its own tool.driver metadata (name, version,
 *    semanticVersion, informationUri and the emitting revision under
 *    properties.revision), a de-duplicated rule table, and results with
 *    optional source regions and stable partialFingerprints. This is
 *    the backend of tools/chason_lint, whose clang-tidy, thread-safety
 *    and invariant legs each contribute one run, merged into a single
 *    document the ratcheting baseline diff operates on.
 *
 *  - SarifLog: the original chason_verify facade. One SarifLog
 *    aggregates any number of verified artifacts into a single run of
 *    the "chason_verify" driver; the full CHV rule catalog is embedded
 *    as `tool.driver.rules`, and each finding's schedule coordinates
 *    are exported as a SARIF logicalLocation alongside the artifact
 *    URI. It renders through SarifDocument, so both emitters produce
 *    the same document shape.
 *
 * Baseline diffs compare fingerprints, not documents: lintFingerprint
 * hashes (ruleId, uri, message) — deliberately not the line number, so
 * unrelated edits that shift a finding a few lines do not churn the
 * baseline — and sarifFingerprints extracts the set back out of a
 * stored document without needing a JSON parser.
 */

#ifndef CHASON_VERIFY_SARIF_H_
#define CHASON_VERIFY_SARIF_H_

#include <string>
#include <vector>

#include "verify/verifier.h"

namespace chason {
namespace verify {

/** One reportingDescriptor of a run's tool.driver.rules table. */
struct SarifRule
{
    std::string id;              ///< stable rule id ("CHV004", "CHL001")
    std::string name;            ///< CamelCase rule name
    std::string shortDescription;
    std::string fullDescription; ///< falls back to shortDescription
    std::string level = "warning"; ///< defaultConfiguration.level
};

/** One result. Optional fields are omitted from the JSON when unset. */
struct SarifFinding
{
    std::string ruleId;
    std::string level = "warning"; ///< "error", "warning" or "note"
    std::string message;
    std::string uri;          ///< artifact location (spaces escaped)
    int line = 0;             ///< 1-based startLine; 0 = no region
    int column = 0;           ///< 1-based startColumn; 0 = omitted
    std::string logicalName;  ///< optional fullyQualifiedName
    /** Stable identity for baseline diffs; empty = no
     *  partialFingerprints object is emitted. */
    std::string fingerprint;
};

/** One SARIF run: a tool invocation with its rules and results. */
struct SarifRun
{
    std::string toolName;
    std::string toolVersion;
    std::string semanticVersion;  ///< optional
    std::string informationUri;   ///< optional
    std::string revision;         ///< optional; properties.revision

    std::vector<SarifRule> rules;
    std::vector<SarifFinding> results;

    /**
     * Add @p rule unless a rule with the same id is already present;
     * either way return the rule's (stable) index in `rules` — the
     * value results reference as ruleIndex.
     */
    int addRule(const SarifRule &rule);

    /** Index of @p ruleId in `rules`, or -1 when absent. */
    int ruleIndexOf(const std::string &ruleId) const;
};

/** A complete SARIF 2.1.0 document: one `runs` array, many runs. */
class SarifDocument
{
  public:
    void addRun(SarifRun run) { runs_.push_back(std::move(run)); }

    std::size_t runCount() const { return runs_.size(); }

    /** Total results across all runs. */
    std::size_t resultCount() const;

    /** Render the document as SARIF 2.1.0 JSON. */
    std::string toJson() const;

  private:
    std::vector<SarifRun> runs_;
};

/** Aggregates results from several artifacts into one SARIF run. */
class SarifLog
{
  public:
    /**
     * Append every diagnostic of @p result, attributed to the artifact
     * at @p artifactUri (a file path or a synthesized name like
     * "schedules/CM.crhcs"; spaces are percent-escaped).
     */
    void addResult(const VerifyResult &result,
                   const std::string &artifactUri);

    /** Findings added so far. */
    std::size_t size() const { return results_.size(); }

    /**
     * The findings as a single "chason_verify" run with the full CHV
     * catalog embedded — for callers merging verifier output into a
     * multi-run document.
     */
    SarifRun toRun() const;

    /** Render the complete SARIF 2.1.0 JSON document. */
    std::string toJson() const;

  private:
    struct Entry
    {
        Diagnostic diagnostic;
        std::string artifactUri;
    };
    std::vector<Entry> results_;
};

/** Escape a string for embedding in a JSON string literal. */
std::string jsonEscape(const std::string &text);

/**
 * Stable finding identity for baseline diffs: FNV-1a 64 over
 * "ruleId|uri|message", rendered as 16 hex digits. Line numbers are
 * deliberately excluded so edits elsewhere in a file do not re-key
 * every finding below them.
 */
std::string lintFingerprint(const std::string &ruleId,
                            const std::string &uri,
                            const std::string &message);

/**
 * Every "chasonLint/v1" partialFingerprint value in @p sarifJson, in
 * document order (duplicates preserved). A targeted scan, not a JSON
 * parse — the emitter above is the only producer of these documents.
 */
std::vector<std::string> sarifFingerprints(const std::string &sarifJson);

} // namespace verify
} // namespace chason

#endif // CHASON_VERIFY_SARIF_H_
