/**
 * @file
 * Structured diagnostics for the static schedule verifier.
 *
 * Every finding carries a stable rule ID (CHV001, CHV002, ...), a
 * severity, a human-readable message and a source location expressed in
 * schedule coordinates (phase / channel / beat / PE) — the moral
 * equivalent of file:line for an offline CrHCS artifact. Findings are
 * collected by a DiagnosticEngine so callers can render them as text,
 * panic on the first error (sched::validateSchedule), or export SARIF
 * for CI (verify/sarif.h).
 */

#ifndef CHASON_VERIFY_DIAGNOSTICS_H_
#define CHASON_VERIFY_DIAGNOSTICS_H_

#include <cstdint>
#include <string>
#include <vector>

namespace chason {
namespace verify {

/** Finding severity, ordered by weight. Maps 1:1 onto SARIF levels. */
enum class Severity
{
    kNote,    ///< informational (e.g. artifact not wire-serializable)
    kWarning, ///< questionable but not incorrect
    kError,   ///< the schedule is illegal on the modeled hardware
};

/** SARIF level string ("note", "warning", "error"). */
const char *severityName(Severity severity);

/**
 * Where in the schedule a finding points. Fields are -1 when the
 * coordinate does not apply (e.g. a config-level finding has none).
 */
struct Location
{
    std::int64_t phase = -1;   ///< index into Schedule::phases
    std::int64_t pass = -1;    ///< row pass of that phase
    std::int64_t window = -1;  ///< column window of that phase
    std::int64_t channel = -1; ///< matrix channel
    std::int64_t beat = -1;    ///< beat within the channel's list
    std::int64_t pe = -1;      ///< PE slot within the beat

    /** True if no coordinate is set. */
    bool empty() const;

    /** "phase[3](pass 0, window 1).channel[2].beat[17].pe[4]" or "". */
    std::string qualifiedName() const;
};

/** One verifier finding. */
struct Diagnostic
{
    std::string ruleId; ///< stable "CHV###" identifier
    Severity severity = Severity::kError;
    std::string message; ///< human-readable detail, no trailing newline
    Location loc;
};

/** "error CHV004 at phase[0].channel[1].beat[9].pe[2]: ..." */
std::string toString(const Diagnostic &diagnostic);

/**
 * Collects diagnostics with an optional per-rule cap: the first N
 * findings of each rule are kept verbatim, the rest only counted — a
 * corrupt artifact can otherwise produce one finding per non-zero.
 */
class DiagnosticEngine
{
  public:
    /** @p maxPerRule 0 means unlimited. */
    explicit DiagnosticEngine(std::size_t maxPerRule = 0)
        : maxPerRule_(maxPerRule)
    {
    }

    /** Report one finding (printf-style message already formatted). */
    void report(const char *ruleId, Severity severity, Location loc,
                std::string message);

    const std::vector<Diagnostic> &diagnostics() const { return diags_; }
    std::size_t errorCount() const { return errors_; }
    std::size_t warningCount() const { return warnings_; }
    std::size_t noteCount() const { return notes_; }

    /** Findings dropped by the per-rule cap (still counted above). */
    std::size_t suppressedCount() const { return suppressed_; }

  private:
    std::size_t perRuleCount(const char *ruleId) const;

    std::size_t maxPerRule_;
    std::vector<Diagnostic> diags_;
    std::size_t errors_ = 0;
    std::size_t warnings_ = 0;
    std::size_t notes_ = 0;
    std::size_t suppressed_ = 0;
};

} // namespace verify
} // namespace chason

#endif // CHASON_VERIFY_DIAGNOSTICS_H_
