/**
 * @file
 * Host-side execution model: what happens around the kernel.
 *
 * The paper's methodology (Section 5.2) runs 1000 iterations on the
 * FPGAs "to amortize the overhead associated with bitstream transfer
 * and FPGA reconfiguration" (10 on the GPUs, 100+100 on the CPU). This
 * module makes that quantitative: it models the PCIe Gen3 x16 link the
 * U55c hangs off (Section 5.1), the one-time bitstream configuration,
 * the one-time DMA of the scheduling artifact into HBM, the per-
 * iteration x upload / y download, and the kernel itself (from the
 * cycle estimator) — and reports how per-iteration latency converges to
 * kernel latency as the iteration count grows.
 */

#ifndef CHASON_RUNTIME_HOST_H_
#define CHASON_RUNTIME_HOST_H_

#include "arch/estimator.h"
#include "sched/schedule_io.h"

namespace chason {
namespace runtime {

/** The host link and one-time costs. */
struct HostPlatform
{
    /** Effective PCIe Gen3 x16 DMA bandwidth in GB/s. */
    double pcieBandwidthGBps = 12.0;

    /** Per-DMA software latency in microseconds (driver + descriptor). */
    double dmaLatencyUs = 10.0;

    /** One-time bitstream configuration in milliseconds. */
    double bitstreamLoadMs = 2200.0;

    /** Per-invocation kernel dispatch in microseconds. */
    double dispatchUs = 12.0;

    /** DMA time for @p bytes in microseconds. */
    double dmaUs(std::uint64_t bytes) const;
};

/**
 * End-to-end cost breakdown of an amortized measurement run.
 *
 * Units are in the field names: *Ms fields are wall milliseconds, *Us
 * fields wall microseconds (kernel cycles have already been converted
 * through the datapath clock by the estimator). Pure data + const
 * accessors: safe to build and read from concurrent batch workers.
 */
struct EndToEndReport
{
    unsigned iterations = 0;

    double bitstreamMs = 0.0;     ///< one-time
    double artifactDmaMs = 0.0;   ///< one-time: schedule lists into HBM
    double xUploadUs = 0.0;       ///< per iteration
    double yDownloadUs = 0.0;     ///< per iteration
    double dispatchUs = 0.0;      ///< per iteration
    double kernelUs = 0.0;        ///< per iteration (the paper's number)

    /** Wall time for the whole run in milliseconds. */
    double totalMs() const;

    /** Per-iteration latency including the amortized one-time costs. */
    double amortizedPerIterationUs() const;

    /** Per-iteration latency excluding one-time costs (steady state). */
    double steadyStatePerIterationUs() const
    {
        return xUploadUs + yDownloadUs + dispatchUs + kernelUs;
    }

    /**
     * Fraction of the amortized per-iteration time that is the kernel —
     * how close the measurement is to "raw performance of the SpMV
     * kernel itself" (Section 5.2).
     */
    double kernelShare() const;
};

/**
 * One prepared accelerator session: a schedule resident in HBM plus the
 * host-side cost model.
 *
 * Immutable after construction; measure() is const and deterministic,
 * so a session may be shared across batch workers — chason_sweep's
 * per-matrix end-to-end section calls it from the core::BatchEngine
 * pool against cache-resident schedules.
 */
class HostSession
{
  public:
    HostSession(arch::DatapathKind kind, HostPlatform platform = {},
                arch::ArchConfig config = {});

    /**
     * Model a measurement campaign of @p iterations invocations of the
     * schedule with fresh x each time.
     * @param include_bitstream also charge the one-time FPGA
     *        configuration; boards are normally configured once per
     *        session, not per matrix, so the default leaves it out.
     */
    EndToEndReport measure(const sched::Schedule &schedule,
                           unsigned iterations,
                           bool include_bitstream = false) const;

  private:
    arch::DatapathKind kind_;
    HostPlatform platform_;
    arch::ArchConfig config_;
};

} // namespace runtime
} // namespace chason

#endif // CHASON_RUNTIME_HOST_H_
