/**
 * @file
 * Host-side execution model implementation.
 */

#include "runtime/host.h"

#include "common/logging.h"

namespace chason {
namespace runtime {

double
HostPlatform::dmaUs(std::uint64_t bytes) const
{
    chason_assert(pcieBandwidthGBps > 0.0, "PCIe bandwidth must be set");
    return dmaLatencyUs +
        static_cast<double>(bytes) / (pcieBandwidthGBps * 1e3);
}

double
EndToEndReport::totalMs() const
{
    return bitstreamMs + artifactDmaMs +
        static_cast<double>(iterations) * steadyStatePerIterationUs() /
        1e3;
}

double
EndToEndReport::amortizedPerIterationUs() const
{
    chason_assert(iterations > 0, "no iterations to amortize over");
    return totalMs() * 1e3 / static_cast<double>(iterations);
}

double
EndToEndReport::kernelShare() const
{
    const double per_iter = amortizedPerIterationUs();
    return per_iter <= 0.0 ? 0.0 : kernelUs / per_iter;
}

HostSession::HostSession(arch::DatapathKind kind, HostPlatform platform,
                         arch::ArchConfig config)
    : kind_(kind), platform_(platform), config_(config)
{
    config_.validate();
}

EndToEndReport
HostSession::measure(const sched::Schedule &schedule,
                     unsigned iterations, bool include_bitstream) const
{
    chason_assert(iterations >= 1, "need at least one iteration");

    EndToEndReport report;
    report.iterations = iterations;
    report.bitstreamMs = include_bitstream ? platform_.bitstreamLoadMs
                                           : 0.0;

    // One-time: DMA the scheduling artifact (the padded channel data
    // lists) into HBM. This is where Serpens pays for its zeros twice:
    // once over PCIe and once per iteration out of HBM.
    report.artifactDmaMs =
        platform_.dmaUs(sched::scheduleArtifactBytes(schedule)) / 1e3;

    // Per iteration: x up, y down, dispatch, kernel.
    report.xUploadUs = platform_.dmaUs(
        static_cast<std::uint64_t>(schedule.cols) * sizeof(float));
    report.yDownloadUs = platform_.dmaUs(
        static_cast<std::uint64_t>(schedule.rows) * sizeof(float));
    report.dispatchUs = platform_.dispatchUs;
    report.kernelUs = arch::estimateLatencyUs(schedule, config_, kind_);
    return report;
}

} // namespace runtime
} // namespace chason
