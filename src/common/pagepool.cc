/**
 * @file
 * PagePool implementation.
 */

#include "common/pagepool.h"

#include <bit>
#include <cstdlib>
#include <vector>

#include "common/env.h"
#include "common/thread_annotations.h"

#if defined(__linux__)
#include <sys/mman.h>
#endif

// ASan defines __SANITIZE_ADDRESS__ under GCC; clang exposes it via
// __has_feature. Either way the pool steps aside so freed blocks reach
// the sanitizer's quarantine instead of being recycled.
#if defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
#define CHASON_POOL_SANITIZED 1
#endif
#endif
#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
#define CHASON_POOL_SANITIZED 1
#endif

namespace chason {
namespace common {

namespace {

/** Blocks below this go straight to malloc — they are cheap to fault
 *  and would bloat the class table. */
constexpr std::size_t kMinPooledBytes = std::size_t{1} << 12; // 4 KiB

/** Class i holds blocks of exactly 2^i bytes. 2^40 caps the table. */
constexpr unsigned kMinClass = 12;
constexpr unsigned kMaxClass = 40;

constexpr std::size_t kDefaultCapBytes = std::size_t{384} << 20;

unsigned
classOf(std::size_t bytes)
{
    const unsigned cls = static_cast<unsigned>(std::bit_width(bytes - 1));
    return cls < kMinClass ? kMinClass : cls;
}

/**
 * Lifetime of this thread's Pool. The pool is a function-local
 * thread_local, so its destructor can run *before* static objects
 * that still hold pool-backed memory (a static BatchEngine's schedule
 * cache, for example, is torn down inside exit() after TLS cleanup).
 * Touching the destroyed Pool from pagePoolFree would push into a
 * dead vector; instead, every entry point checks this state first and
 * degrades to plain malloc/free once the pool is gone. Blocks are
 * always malloc-compatible, so releasing a pooled-era block with
 * std::free after teardown is correct.
 */
enum class PoolState : unsigned char { kUninit, kLive, kDead };
thread_local PoolState g_pool_state = PoolState::kUninit;

/**
 * Cross-thread pool registry: how many threads currently hold a live
 * pool. Touched only in the Pool constructor/destructor (cold paths),
 * so the lock never shows up in an alloc/free; it exists so the
 * pool's one piece of shared state is capability-checked like every
 * other concurrent subsystem.
 */
Mutex g_registry_mutex;
std::size_t g_live_pools GUARDED_BY(g_registry_mutex) = 0;

struct Pool
{
    std::vector<void *> free[kMaxClass + 1];
    std::size_t held = 0;
    std::size_t cap;

    Pool()
    {
#if defined(CHASON_POOL_SANITIZED)
        cap = 0;
#else
        cap = static_cast<std::size_t>(
                  envUint("CHASON_POOL_MB", kDefaultCapBytes >> 20))
            << 20;
#endif
        g_pool_state = PoolState::kLive;
        MutexLock lock(g_registry_mutex);
        ++g_live_pools;
    }

    ~Pool()
    {
        trim();
        g_pool_state = PoolState::kDead;
        MutexLock lock(g_registry_mutex);
        --g_live_pools;
    }

    void
    trim() noexcept
    {
        for (auto &list : free) {
            for (void *p : list)
                std::free(p);
            list.clear();
        }
        held = 0;
    }
};

Pool &
pool()
{
    static thread_local Pool instance;
    return instance;
}

/** Huge-page threshold: blocks of at least one 2 MiB huge page. */
constexpr unsigned kHugeClass = 21;

/**
 * Fresh block for a size class. Classes of 2 MiB and up are allocated
 * huge-page aligned and advised MADV_HUGEPAGE: the beat storage these
 * classes back is streamed several times per schedule build, and with
 * the kernel's THP mode at "madvise" an unadvised malloc would pin it
 * to 4 KiB pages (one dTLB entry per 4 KiB vs per 2 MiB). The advice
 * is best-effort; the block is valid memory either way, and glibc
 * free() accepts aligned_alloc blocks.
 */
void *
allocBlock(unsigned cls)
{
    const std::size_t size = std::size_t{1} << cls;
#if defined(__linux__)
    if (cls >= kHugeClass) {
        void *block = std::aligned_alloc(std::size_t{1} << kHugeClass,
                                         size);
        if (block != nullptr) {
            (void)madvise(block, size, MADV_HUGEPAGE);
            return block;
        }
    }
#endif
    return std::malloc(size);
}

} // namespace

void *
pagePoolAlloc(std::size_t bytes)
{
    if (bytes == 0)
        bytes = 1;
    if (g_pool_state == PoolState::kDead)
        return std::malloc(bytes);
    Pool &p = pool();
    if (bytes < kMinPooledBytes || p.cap == 0)
        return std::malloc(bytes);
    const unsigned cls = classOf(bytes);
    if (cls > kMaxClass)
        return std::malloc(bytes);
    auto &list = p.free[cls];
    if (!list.empty()) {
        void *block = list.back();
        list.pop_back();
        p.held -= std::size_t{1} << cls;
        return block;
    }
    return allocBlock(cls);
}

void
pagePoolFree(void *ptr, std::size_t bytes) noexcept
{
    if (ptr == nullptr)
        return;
    if (g_pool_state != PoolState::kLive) {
        std::free(ptr); // before first alloc or after TLS teardown
        return;
    }
    if (bytes == 0)
        bytes = 1;
    Pool &p = pool();
    const unsigned cls = classOf(bytes);
    if (bytes < kMinPooledBytes || p.cap == 0 || cls > kMaxClass) {
        std::free(ptr);
        return;
    }
    const std::size_t size = std::size_t{1} << cls;
    if (p.held + size > p.cap) {
        std::free(ptr);
        return;
    }
    try {
        p.free[cls].push_back(ptr);
    } catch (...) {
        std::free(ptr); // freelist growth failed; just release the block
        return;
    }
    p.held += size;
}

std::size_t
pagePoolHeldBytes() noexcept
{
    if (g_pool_state != PoolState::kLive)
        return 0;
    return pool().held;
}

void
pagePoolTrim() noexcept
{
    if (g_pool_state != PoolState::kLive)
        return;
    pool().trim();
}

std::size_t
pagePoolLivePools()
{
    MutexLock lock(g_registry_mutex);
    return g_live_pools;
}

} // namespace common
} // namespace chason
