/**
 * @file
 * xoshiro256** implementation (public-domain algorithm by Blackman and
 * Vigna) plus the distribution helpers used by the workload generators.
 */

#include "common/rng.h"

#include <cmath>

#include "common/logging.h"

namespace chason {

std::uint64_t
splitMix64(std::uint64_t &state)
{
    std::uint64_t z = (state += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

namespace {

inline std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(std::uint64_t seed)
{
    std::uint64_t sm = seed;
    for (auto &word : s_)
        word = splitMix64(sm);
}

std::uint64_t
Rng::next()
{
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;

    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);

    return result;
}

std::uint64_t
Rng::nextBounded(std::uint64_t bound)
{
    chason_assert(bound > 0, "nextBounded requires a positive bound");
    // Rejection sampling on the top of the range avoids modulo bias.
    const std::uint64_t threshold = -bound % bound;
    for (;;) {
        const std::uint64_t r = next();
        if (r >= threshold)
            return r % bound;
    }
}

std::int64_t
Rng::nextRange(std::int64_t lo, std::int64_t hi)
{
    chason_assert(lo <= hi, "nextRange requires lo <= hi");
    const std::uint64_t span =
        static_cast<std::uint64_t>(hi - lo) + 1;
    if (span == 0) // full 64-bit range
        return static_cast<std::int64_t>(next());
    return lo + static_cast<std::int64_t>(nextBounded(span));
}

double
Rng::nextDouble()
{
    // 53 high-quality bits into the mantissa.
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

float
Rng::nextFloat(float lo, float hi)
{
    return lo + static_cast<float>(nextDouble()) * (hi - lo);
}

bool
Rng::nextBool(double p)
{
    return nextDouble() < p;
}

double
Rng::nextGaussian()
{
    if (hasSpareGaussian_) {
        hasSpareGaussian_ = false;
        return spareGaussian_;
    }
    double u, v, s;
    do {
        u = 2.0 * nextDouble() - 1.0;
        v = 2.0 * nextDouble() - 1.0;
        s = u * u + v * v;
    } while (s >= 1.0 || s == 0.0);
    const double factor = std::sqrt(-2.0 * std::log(s) / s);
    spareGaussian_ = v * factor;
    hasSpareGaussian_ = true;
    return u * factor;
}

std::uint64_t
Rng::nextZipf(std::uint64_t n, double s)
{
    chason_assert(n > 0, "nextZipf requires n > 0");
    chason_assert(s > 1.0, "nextZipf requires exponent s > 1");
    // Inverse-CDF via rejection (Devroye). Good enough for workload
    // generation; exactness of the distribution is not important, the
    // heavy tail is.
    const double b = std::pow(2.0, s - 1.0);
    for (;;) {
        const double u = nextDouble();
        const double v = nextDouble();
        const double x = std::floor(std::pow(u, -1.0 / (s - 1.0)));
        const double t = std::pow(1.0 + 1.0 / x, s - 1.0);
        if (v * x * (t - 1.0) / (b - 1.0) <= t / b) {
            const auto rank = static_cast<std::uint64_t>(x) - 1;
            if (rank < n)
                return rank;
        }
    }
}

Rng
Rng::split()
{
    return Rng(next() ^ 0xa0761d6478bd642full);
}

Rng
Rng::forStream(std::uint64_t seed, std::uint64_t stream)
{
    // Decorrelate seed and stream through separate SplitMix64 walks so
    // that neither adjacent seeds nor adjacent stream indices produce
    // related states.
    std::uint64_t state = seed;
    const std::uint64_t a = splitMix64(state);
    state ^= stream * 0x9e3779b97f4a7c15ull;
    const std::uint64_t b = splitMix64(state);
    return Rng(a ^ b);
}

} // namespace chason
