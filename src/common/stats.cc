/**
 * @file
 * Implementation of the statistics helpers.
 */

#include "common/stats.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <utility>

#include "common/logging.h"

namespace chason {

SummaryStats::SummaryStats(const SummaryStats &other)
    : samples_(other.samples_)
{
}

SummaryStats &
SummaryStats::operator=(const SummaryStats &other)
{
    if (this != &other) {
        samples_ = other.samples_;
        common::MutexLock lock(sortMutex_);
        sorted_.clear();
        sortedValid_ = false;
    }
    return *this;
}

SummaryStats::SummaryStats(SummaryStats &&other) noexcept
    : samples_(std::move(other.samples_))
{
}

SummaryStats &
SummaryStats::operator=(SummaryStats &&other) noexcept
{
    if (this != &other) {
        samples_ = std::move(other.samples_);
        common::MutexLock lock(sortMutex_);
        sorted_.clear();
        sortedValid_ = false;
    }
    return *this;
}

void
SummaryStats::add(double sample)
{
    samples_.push_back(sample);
    common::MutexLock lock(sortMutex_);
    sortedValid_ = false;
}

void
SummaryStats::add(const std::vector<double> &samples)
{
    samples_.insert(samples_.end(), samples.begin(), samples.end());
    common::MutexLock lock(sortMutex_);
    sortedValid_ = false;
}

const std::vector<double> &
SummaryStats::sorted() const
{
    // Concurrent const readers race only to *build* the cache: the
    // first one under the lock sorts, the rest see the valid flag. A
    // reference escaping the lock is safe because invalidation (add)
    // is exclusive by contract.
    common::MutexLock lock(sortMutex_);
    if (!sortedValid_) {
        sorted_ = samples_;
        std::sort(sorted_.begin(), sorted_.end());
        sortedValid_ = true;
    }
    return sorted_;
}

double
SummaryStats::min() const
{
    chason_assert(!empty(), "min of empty sample set");
    return sorted().front();
}

double
SummaryStats::max() const
{
    chason_assert(!empty(), "max of empty sample set");
    return sorted().back();
}

double
SummaryStats::sum() const
{
    return std::accumulate(samples_.begin(), samples_.end(), 0.0);
}

double
SummaryStats::mean() const
{
    chason_assert(!empty(), "mean of empty sample set");
    return sum() / static_cast<double>(count());
}

double
SummaryStats::geomean() const
{
    chason_assert(!empty(), "geomean of empty sample set");
    double log_sum = 0.0;
    for (double s : samples_) {
        chason_assert(s > 0.0, "geomean requires positive samples");
        log_sum += std::log(s);
    }
    return std::exp(log_sum / static_cast<double>(count()));
}

double
SummaryStats::stddev() const
{
    chason_assert(!empty(), "stddev of empty sample set");
    const double m = mean();
    double acc = 0.0;
    for (double s : samples_)
        acc += (s - m) * (s - m);
    return std::sqrt(acc / static_cast<double>(count()));
}

double
SummaryStats::percentile(double p) const
{
    chason_assert(!empty(), "percentile of empty sample set");
    chason_assert(p >= 0.0 && p <= 100.0, "percentile out of range");
    const auto &v = sorted();
    if (v.size() == 1)
        return v.front();
    const double pos = p / 100.0 * static_cast<double>(v.size() - 1);
    const auto idx = static_cast<std::size_t>(pos);
    const double frac = pos - static_cast<double>(idx);
    if (idx + 1 >= v.size())
        return v.back();
    return v[idx] * (1.0 - frac) + v[idx + 1] * frac;
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), width_((hi - lo) / static_cast<double>(bins)),
      counts_(bins, 0)
{
    chason_assert(hi > lo, "histogram range must be non-empty");
    chason_assert(bins > 0, "histogram needs at least one bin");
}

void
Histogram::add(double sample)
{
    // Edge samples are placed explicitly: anything at or below lo
    // lands in bin 0, anything at or above hi in the last bin. The
    // division path is only ever used strictly inside (lo, hi), where
    // rounding in (hi - lo) / bins can still push a sample just under
    // a bin boundary over it, so the result is clamped as well.
    std::size_t bin;
    if (sample <= lo_) {
        bin = 0;
    } else if (sample >= hi_) {
        bin = counts_.size() - 1;
    } else {
        bin = static_cast<std::size_t>((sample - lo_) / width_);
        if (bin >= counts_.size())
            bin = counts_.size() - 1;
    }
    ++counts_[bin];
    ++total_;
}

void
Histogram::add(const std::vector<double> &samples)
{
    for (double s : samples)
        add(s);
}

std::size_t
Histogram::count(std::size_t bin) const
{
    chason_assert(bin < counts_.size(), "histogram bin out of range");
    return counts_[bin];
}

double
Histogram::binCenter(std::size_t bin) const
{
    chason_assert(bin < counts_.size(), "histogram bin out of range");
    return lo_ + (static_cast<double>(bin) + 0.5) * width_;
}

double
Histogram::frequency(std::size_t bin) const
{
    if (total_ == 0)
        return 0.0;
    return static_cast<double>(count(bin)) / static_cast<double>(total_);
}

double
Histogram::density(std::size_t bin) const
{
    return frequency(bin) / width_;
}

std::size_t
Histogram::modeBin() const
{
    return static_cast<std::size_t>(
        std::max_element(counts_.begin(), counts_.end()) - counts_.begin());
}

KdePdf::KdePdf(std::vector<double> samples, double bandwidth)
    : samples_(std::move(samples)), bandwidth_(bandwidth)
{
    chason_assert(!samples_.empty(), "KDE over empty sample set");
    if (bandwidth_ <= 0.0) {
        // Silverman's rule of thumb: 1.06 * sigma * n^(-1/5).
        SummaryStats st;
        st.add(samples_);
        double sigma = st.stddev();
        if (sigma <= 0.0)
            sigma = 1.0; // degenerate sample set; any bandwidth works
        bandwidth_ = 1.06 * sigma *
            std::pow(static_cast<double>(samples_.size()), -0.2);
    }
}

double
KdePdf::density(double x) const
{
    const double inv_h = 1.0 / bandwidth_;
    const double norm =
        inv_h / (std::sqrt(2.0 * M_PI) * static_cast<double>(samples_.size()));
    double acc = 0.0;
    for (double s : samples_) {
        const double z = (x - s) * inv_h;
        acc += std::exp(-0.5 * z * z);
    }
    return acc * norm;
}

double
KdePdf::peak(double lo, double hi, std::size_t steps) const
{
    chason_assert(steps >= 2, "peak scan needs at least two points");
    double best_x = lo;
    double best_d = -1.0;
    for (std::size_t i = 0; i < steps; ++i) {
        const double x = lo + (hi - lo) * static_cast<double>(i) /
            static_cast<double>(steps - 1);
        const double d = density(x);
        if (d > best_d) {
            best_d = d;
            best_x = x;
        }
    }
    return best_x;
}

std::vector<std::pair<double, double>>
KdePdf::evaluate(double lo, double hi, std::size_t steps) const
{
    chason_assert(steps >= 2, "evaluate needs at least two points");
    std::vector<std::pair<double, double>> out;
    out.reserve(steps);
    for (std::size_t i = 0; i < steps; ++i) {
        const double x = lo + (hi - lo) * static_cast<double>(i) /
            static_cast<double>(steps - 1);
        out.emplace_back(x, density(x));
    }
    return out;
}

double
geomean(const std::vector<double> &values)
{
    SummaryStats st;
    st.add(values);
    return st.geomean();
}

} // namespace chason
