/**
 * @file
 * Bit-field extraction and insertion helpers.
 *
 * The CrHCS sparse-element encoding (Section 3.2 of the paper) packs a
 * 32-bit value, 15-bit row, 1-bit pvt flag, 3-bit PE_src and 13-bit column
 * into one 64-bit word; these helpers keep that packing readable and
 * checked.
 */

#ifndef CHASON_COMMON_BITFIELD_H_
#define CHASON_COMMON_BITFIELD_H_

#include <cstdint>

#include "common/logging.h"

namespace chason {

/** Mask with the low @p width bits set. Requires width in [0, 64]. */
constexpr std::uint64_t
maskBits(unsigned width)
{
    return width >= 64 ? ~0ull : ((1ull << width) - 1);
}

/** Extract @p width bits of @p word starting at bit @p lsb. */
constexpr std::uint64_t
extractBits(std::uint64_t word, unsigned lsb, unsigned width)
{
    return (word >> lsb) & maskBits(width);
}

/**
 * Return @p word with @p width bits at @p lsb replaced by the low bits of
 * @p value. Panics if @p value does not fit in @p width bits.
 */
inline std::uint64_t
insertBits(std::uint64_t word, unsigned lsb, unsigned width,
           std::uint64_t value)
{
    chason_assert((value & ~maskBits(width)) == 0,
                  "value 0x%llx does not fit in %u bits",
                  static_cast<unsigned long long>(value), width);
    const std::uint64_t mask = maskBits(width) << lsb;
    return (word & ~mask) | (value << lsb);
}

/** Reinterpret a float's bit pattern as uint32 (constexpr-free, safe). */
std::uint32_t floatToBits(float f);

/** Reinterpret a uint32 bit pattern as a float. */
float bitsToFloat(std::uint32_t bits);

} // namespace chason

#endif // CHASON_COMMON_BITFIELD_H_
