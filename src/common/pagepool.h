/**
 * @file
 * Thread-local recycling allocator for large, short-lived buffers.
 *
 * Scheduling builds and frees ~100 MB of beat storage, arena chunks and
 * scratch per large matrix. glibc returns blocks this size to the
 * kernel on free, so every schedule() pays the pages back as
 * first-touch faults plus kernel zeroing — measured as the single
 * largest cost of the placement write path on the large R-MAT tier.
 * The pool retains freed blocks in thread-local size-class freelists
 * (power-of-two classes, capped total), so steady-state scheduling and
 * the BatchEngine serving loop run entirely on warm, already-mapped
 * pages.
 *
 * Callers must pass the same byte count to pagePoolFree that they
 * passed to pagePoolAlloc (the std::allocator contract). Blocks may be
 * freed on a different thread than they were allocated on — they then
 * recycle through the freeing thread's pool.
 *
 * Pooling is disabled (every call falls through to malloc/free) under
 * ASan/TSan so the sanitizers keep their use-after-free quarantine,
 * and can be tuned with CHASON_POOL_MB (0 disables, default 384).
 */

#ifndef CHASON_COMMON_PAGEPOOL_H_
#define CHASON_COMMON_PAGEPOOL_H_

#include <cstddef>

namespace chason {
namespace common {

/** Allocate @p bytes (uninitialized; at least malloc-aligned). */
void *pagePoolAlloc(std::size_t bytes);

/** Return a pagePoolAlloc block of @p bytes to the pool (or free it). */
void pagePoolFree(void *ptr, std::size_t bytes) noexcept;

/** Bytes currently retained in this thread's freelists. */
std::size_t pagePoolHeldBytes() noexcept;

/** Release every retained block of this thread back to the system. */
void pagePoolTrim() noexcept;

/**
 * Threads whose pool is currently live (constructed, not yet torn
 * down) — the pool's only cross-thread state, kept behind an annotated
 * mutex. Everything else (freelists, the held-byte gauge, the
 * dead-pool flag) is thread-local and needs no capability: a guard on
 * state only one thread can reach would teach the analysis nothing.
 */
std::size_t pagePoolLivePools();

} // namespace common
} // namespace chason

#endif // CHASON_COMMON_PAGEPOOL_H_
