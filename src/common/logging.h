/**
 * @file
 * Status and error reporting helpers in the gem5 tradition.
 *
 * Severity levels:
 *  - panic():  an internal invariant was violated; this is a bug in the
 *              library itself. Aborts (may dump core).
 *  - fatal():  the simulation cannot continue because of a user-level
 *              problem (bad configuration, malformed input). Exits with
 *              status 1.
 *  - warn():   something is questionable but execution continues.
 *  - inform(): plain status output.
 */

#ifndef CHASON_COMMON_LOGGING_H_
#define CHASON_COMMON_LOGGING_H_

#include <cstdarg>
#include <string>

namespace chason {

/** Print an internal-bug message with source location and abort(). */
[[noreturn]] void panicImpl(const char *file, int line, const char *fmt, ...)
    __attribute__((format(printf, 3, 4)));

/** Print a user-error message with source location and exit(1). */
[[noreturn]] void fatalImpl(const char *file, int line, const char *fmt, ...)
    __attribute__((format(printf, 3, 4)));

/** Print a warning to stderr; execution continues. */
void warn(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Print a status message to stderr; execution continues. */
void inform(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Enable or disable inform() output (benches silence it). */
void setInformEnabled(bool enabled);

/**
 * Report a failed assertion condition (printed verbatim, so condition
 * text containing '%' is safe), then return so the caller can emit its
 * formatted detail and abort.
 */
void assertFailed(const char *file, int line, const char *condition);

} // namespace chason

#define chason_panic(...) \
    ::chason::panicImpl(__FILE__, __LINE__, __VA_ARGS__)

#define chason_fatal(...) \
    ::chason::fatalImpl(__FILE__, __LINE__, __VA_ARGS__)

/**
 * Always-on invariant check. Unlike assert() this is active in release
 * builds; the simulator relies on these checks for functional-correctness
 * guarantees.
 */
#define chason_assert(cond, ...)                                         \
    do {                                                                  \
        if (!(cond)) {                                                    \
            ::chason::assertFailed(__FILE__, __LINE__, #cond);            \
            ::chason::panicImpl(__FILE__, __LINE__, " " __VA_ARGS__);     \
        }                                                                 \
    } while (0)

#endif // CHASON_COMMON_LOGGING_H_
