/**
 * @file
 * TextTable implementation.
 */

#include "common/table.h"

#include <cstdio>
#include <sstream>

namespace chason {

void
TextTable::setHeader(std::vector<std::string> header)
{
    header_ = std::move(header);
}

void
TextTable::addRow(std::vector<std::string> row)
{
    rows_.push_back(std::move(row));
}

std::string
TextTable::toString() const
{
    // Determine per-column widths over header and all rows.
    std::vector<std::size_t> widths;
    auto grow = [&widths](const std::vector<std::string> &row) {
        if (row.size() > widths.size())
            widths.resize(row.size(), 0);
        for (std::size_t i = 0; i < row.size(); ++i)
            widths[i] = std::max(widths[i], row[i].size());
    };
    if (!header_.empty())
        grow(header_);
    for (const auto &row : rows_)
        grow(row);

    std::ostringstream out;
    auto emit = [&out, &widths](const std::vector<std::string> &row) {
        for (std::size_t i = 0; i < row.size(); ++i) {
            if (i)
                out << "  ";
            out << row[i];
            if (i + 1 < row.size())
                out << std::string(widths[i] - row[i].size(), ' ');
        }
        out << '\n';
    };

    if (!header_.empty()) {
        emit(header_);
        std::size_t total = 0;
        for (std::size_t i = 0; i < widths.size(); ++i)
            total += widths[i] + (i ? 2 : 0);
        out << std::string(total, '-') << '\n';
    }
    for (const auto &row : rows_)
        emit(row);
    return out.str();
}

void
TextTable::print() const
{
    std::fputs(toString().c_str(), stdout);
    std::fflush(stdout);
}

std::string
TextTable::num(double v, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
    return buf;
}

std::string
TextTable::pct(double v, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f%%", precision, v);
    return buf;
}

std::string
TextTable::speedup(double v, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*fx", precision, v);
    return buf;
}

} // namespace chason
