/**
 * @file
 * Environment-variable gateway implementation.
 */

#include "common/env.h"

#include <cerrno>
#include <cstdlib>

namespace chason {
namespace common {

namespace {

/**
 * The one std::getenv call in the tree. Sound because the process
 * never mutates its environment (no setenv/putenv anywhere; the
 * test_env binary setenv()s only while single-threaded), so the
 * returned pointer is stable; the value is copied out immediately
 * regardless.
 */
const char *
rawEnv(const char *name)
{
    return std::getenv(name); // NOLINT(concurrency-mt-unsafe)
}

} // namespace

std::string
envString(const char *name, const std::string &fallback)
{
    const char *value = rawEnv(name);
    return value != nullptr ? std::string(value) : fallback;
}

bool
envIsSet(const char *name)
{
    return rawEnv(name) != nullptr;
}

std::uint64_t
envUint(const char *name, std::uint64_t fallback)
{
    const char *value = rawEnv(name);
    if (value == nullptr || *value == '\0')
        return fallback;
    char *end = nullptr;
    errno = 0;
    const long long parsed = std::strtoll(value, &end, 10);
    // Any parse failure degrades to the documented fallback, never to
    // an accidental 0 that silently disables the knob: no digits,
    // trailing garbage past the number, out-of-range magnitudes
    // (strtoll saturates and sets ERANGE), or a negative value.
    if (end == value || *end != '\0')
        return fallback;
    if (errno == ERANGE || parsed < 0)
        return fallback;
    return static_cast<std::uint64_t>(parsed);
}

} // namespace common
} // namespace chason
