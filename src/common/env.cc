/**
 * @file
 * Environment-variable gateway implementation.
 */

#include "common/env.h"

#include <cstdlib>

namespace chason {
namespace common {

namespace {

/**
 * The one std::getenv call in the tree. Sound because the process
 * never mutates its environment (no setenv/putenv anywhere), so the
 * returned pointer is stable; the value is copied out immediately
 * regardless.
 */
const char *
rawEnv(const char *name)
{
    return std::getenv(name); // NOLINT(concurrency-mt-unsafe)
}

} // namespace

std::string
envString(const char *name, const std::string &fallback)
{
    const char *value = rawEnv(name);
    return value != nullptr ? std::string(value) : fallback;
}

bool
envIsSet(const char *name)
{
    return rawEnv(name) != nullptr;
}

std::uint64_t
envUint(const char *name, std::uint64_t fallback)
{
    const char *value = rawEnv(name);
    if (value == nullptr)
        return fallback;
    const long long parsed = std::strtoll(value, nullptr, 10);
    return parsed > 0 ? static_cast<std::uint64_t>(parsed) : 0;
}

} // namespace common
} // namespace chason
