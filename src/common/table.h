/**
 * @file
 * Plain-text table formatting for the benchmark harness.
 *
 * Every bench binary prints the rows of a paper table or the series of a
 * paper figure; TextTable renders them with aligned columns so the output
 * is directly comparable to the paper.
 */

#ifndef CHASON_COMMON_TABLE_H_
#define CHASON_COMMON_TABLE_H_

#include <cstddef>
#include <string>
#include <vector>

namespace chason {

/** Column-aligned text table with an optional header row. */
class TextTable
{
  public:
    /** Set the header row (rendered with a separator underneath). */
    void setHeader(std::vector<std::string> header);

    /** Append a data row; rows may have differing lengths. */
    void addRow(std::vector<std::string> row);

    /** Number of data rows so far. */
    std::size_t rows() const { return rows_.size(); }

    /** Render the table. */
    std::string toString() const;

    /** Render and write to stdout. */
    void print() const;

    /** Format helpers used throughout the benches. */
    static std::string num(double v, int precision = 3);
    static std::string pct(double v, int precision = 1);
    static std::string speedup(double v, int precision = 2);

  private:
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace chason

#endif // CHASON_COMMON_TABLE_H_
