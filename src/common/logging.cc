/**
 * @file
 * Implementation of the status and error reporting helpers.
 */

#include "common/logging.h"

#include <cstdio>
#include <cstdlib>

namespace chason {

namespace {

bool inform_enabled = true;

void
vreport(const char *tag, const char *file, int line, const char *fmt,
        va_list args)
{
    std::fflush(stdout);
    if (file) {
        std::fprintf(stderr, "%s: %s:%d: ", tag, file, line);
    } else {
        std::fprintf(stderr, "%s: ", tag);
    }
    std::vfprintf(stderr, fmt, args);
    std::fputc('\n', stderr);
    std::fflush(stderr);
}

} // namespace

void
panicImpl(const char *file, int line, const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    vreport("panic", file, line, fmt, args);
    va_end(args);
    std::abort();
}

void
fatalImpl(const char *file, int line, const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    vreport("fatal", file, line, fmt, args);
    va_end(args);
    std::exit(1);
}

void
warn(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    vreport("warn", nullptr, 0, fmt, args);
    va_end(args);
}

void
inform(const char *fmt, ...)
{
    if (!inform_enabled)
        return;
    va_list args;
    va_start(args, fmt);
    vreport("info", nullptr, 0, fmt, args);
    va_end(args);
}

void
setInformEnabled(bool enabled)
{
    inform_enabled = enabled;
}

void
assertFailed(const char *file, int line, const char *condition)
{
    std::fflush(stdout);
    std::fprintf(stderr, "panic: %s:%d: assertion '%s' failed.\n", file,
                 line, condition);
}

} // namespace chason
