/**
 * @file
 * Float <-> bit-pattern conversions (kept out of line so the header stays
 * free of <cstring>).
 */

#include "common/bitfield.h"

#include <cstring>

namespace chason {

std::uint32_t
floatToBits(float f)
{
    std::uint32_t bits;
    std::memcpy(&bits, &f, sizeof(bits));
    return bits;
}

float
bitsToFloat(std::uint32_t bits)
{
    float f;
    std::memcpy(&f, &bits, sizeof(f));
    return f;
}

} // namespace chason
