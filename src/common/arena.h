/**
 * @file
 * Bump (arena) allocator for scheduling scratch data.
 *
 * The offline schedulers build millions of tiny, identically-shaped
 * records per matrix (row runs, donor entries, per-lane tables). Giving
 * each record its own heap vector made allocation — and, worse,
 * deallocation — the dominant scheduling cost on large matrices. An
 * Arena hands out raw storage by bumping a cursor through large chunks
 * and frees everything at once when destroyed, so per-record cost drops
 * to a pointer increment and teardown is O(chunks).
 *
 * Only trivially-destructible element types are supported (the arena
 * never runs destructors); this is enforced at compile time. Alignment
 * is per-allocation. Arenas are movable but not copyable, and are NOT
 * thread-safe — each scheduling job owns its own arena.
 */

#ifndef CHASON_COMMON_ARENA_H_
#define CHASON_COMMON_ARENA_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <type_traits>
#include <vector>

namespace chason {
namespace common {

/**
 * Non-owning contiguous view, the shape arena allocations are handed
 * out as. Deliberately minimal: pointer + length with container-style
 * accessors, so consumers can range-for and index without caring that
 * the storage lives in an arena.
 */
template <typename T>
struct Span
{
    T *ptr = nullptr;
    std::size_t count = 0;

    T *begin() const { return ptr; }
    T *end() const { return ptr + count; }
    T &operator[](std::size_t i) const { return ptr[i]; }
    std::size_t size() const { return count; }
    bool empty() const { return count == 0; }
    T &front() const { return ptr[0]; }
    T &back() const { return ptr[count - 1]; }

    /** Implicit const view (Span<T> -> Span<const T>). */
    operator Span<const T>() const { return {ptr, count}; }
};

/** Chunked bump allocator; frees all storage at once on destruction. */
class Arena
{
  public:
    /** @param chunk_bytes granularity of the backing allocations. */
    explicit Arena(std::size_t chunk_bytes = kDefaultChunkBytes);

    Arena(Arena &&) = default;
    Arena &operator=(Arena &&) = default;
    Arena(const Arena &) = delete;
    Arena &operator=(const Arena &) = delete;

    /**
     * Allocate an uninitialized array of @p n elements of T. Returns a
     * valid (dangling-safe, unique) pointer even for n == 0.
     */
    template <typename T>
    T *
    allocate(std::size_t n)
    {
        static_assert(std::is_trivially_destructible_v<T>,
                      "arena storage is freed without running destructors");
        return static_cast<T *>(allocateRaw(n * sizeof(T), alignof(T)));
    }

    /** Allocate and value-initialize a Span of @p n elements of T. */
    template <typename T>
    Span<T>
    allocateSpan(std::size_t n)
    {
        T *p = allocate<T>(n);
        for (std::size_t i = 0; i < n; ++i)
            new (p + i) T();
        return {p, n};
    }

    /** Bytes handed out so far (excludes chunk slack). */
    std::size_t allocatedBytes() const { return allocated_; }

    /** Backing chunks currently held. */
    std::size_t chunks() const { return chunks_.size(); }

    /**
     * Drop the bump cursors but keep the first chunk for reuse, so a
     * per-job arena can be recycled across phases without returning to
     * the system allocator. Previously handed-out pointers become
     * invalid.
     */
    void reset();

    static constexpr std::size_t kDefaultChunkBytes = 1u << 20;

  private:
    void *allocateRaw(std::size_t bytes, std::size_t align);

    /** Returns a chunk's storage to the PagePool it came from. */
    struct ChunkDeleter
    {
        // No default member initializer: GCC rejects one here, since
        // the nested class's NSDMI is not yet usable when Chunk's
        // implicit constructors are declared.
        ChunkDeleter() : size(0) {}
        explicit ChunkDeleter(std::size_t s) : size(s) {}

        std::size_t size;
        void operator()(std::byte *p) const noexcept;
    };

    struct Chunk
    {
        std::unique_ptr<std::byte[], ChunkDeleter> data;
        std::size_t size = 0;
        std::size_t used = 0;
    };

    std::size_t chunkBytes_;
    std::size_t allocated_ = 0;
    std::vector<Chunk> chunks_;
};

} // namespace common
} // namespace chason

#endif // CHASON_COMMON_ARENA_H_
