/**
 * @file
 * Arena implementation.
 */

#include "common/arena.h"

#include "common/logging.h"

namespace chason {
namespace common {

Arena::Arena(std::size_t chunk_bytes) : chunkBytes_(chunk_bytes)
{
    chason_assert(chunk_bytes > 0, "arena chunk size must be positive");
}

void
Arena::reset()
{
    if (chunks_.size() > 1)
        chunks_.resize(1);
    if (!chunks_.empty())
        chunks_.front().used = 0;
    allocated_ = 0;
}

void *
Arena::allocateRaw(std::size_t bytes, std::size_t align)
{
    chason_assert(align > 0 && (align & (align - 1)) == 0,
                  "alignment %zu is not a power of two", align);
    if (chunks_.empty() ||
        chunks_.back().used + bytes + align > chunks_.back().size) {
        Chunk chunk;
        chunk.size = std::max(chunkBytes_, bytes + align);
        chunk.data = std::make_unique<std::byte[]>(chunk.size);
        chunks_.push_back(std::move(chunk));
    }
    Chunk &chunk = chunks_.back();
    const auto base = reinterpret_cast<std::uintptr_t>(chunk.data.get());
    std::uintptr_t cursor = base + chunk.used;
    cursor = (cursor + align - 1) & ~static_cast<std::uintptr_t>(align - 1);
    chunk.used = (cursor - base) + bytes;
    allocated_ += bytes;
    return reinterpret_cast<void *>(cursor);
}

} // namespace common
} // namespace chason
