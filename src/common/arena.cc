/**
 * @file
 * Arena implementation.
 */

#include "common/arena.h"

#include "common/logging.h"
#include "common/pagepool.h"

namespace chason {
namespace common {

void
Arena::ChunkDeleter::operator()(std::byte *p) const noexcept
{
    pagePoolFree(p, size);
}

Arena::Arena(std::size_t chunk_bytes) : chunkBytes_(chunk_bytes)
{
    chason_assert(chunk_bytes > 0, "arena chunk size must be positive");
}

void
Arena::reset()
{
    if (chunks_.size() > 1)
        chunks_.resize(1);
    if (!chunks_.empty())
        chunks_.front().used = 0;
    allocated_ = 0;
}

void *
Arena::allocateRaw(std::size_t bytes, std::size_t align)
{
    chason_assert(align > 0 && (align & (align - 1)) == 0,
                  "alignment %zu is not a power of two", align);
    if (chunks_.empty() ||
        chunks_.back().used + bytes + align > chunks_.back().size) {
        Chunk chunk;
        chunk.size = std::max(chunkBytes_, bytes + align);
        // PagePool storage: uninitialized (arena clients value-init
        // what they need — make_unique would zero the whole chunk) and
        // recycled across phase-work builds instead of re-faulted.
        chunk.data = std::unique_ptr<std::byte[], ChunkDeleter>(
            static_cast<std::byte *>(pagePoolAlloc(chunk.size)),
            ChunkDeleter{chunk.size});
        chunks_.push_back(std::move(chunk));
    }
    Chunk &chunk = chunks_.back();
    const auto base = reinterpret_cast<std::uintptr_t>(chunk.data.get());
    std::uintptr_t cursor = base + chunk.used;
    cursor = (cursor + align - 1) & ~static_cast<std::uintptr_t>(align - 1);
    chunk.used = (cursor - base) + bytes;
    allocated_ += bytes;
    return reinterpret_cast<void *>(cursor);
}

} // namespace common
} // namespace chason
