/**
 * @file
 * Revision-stamp implementation.
 */

#include "common/buildinfo.h"

#include <cstdio>
#include <cstring>

#include "common/env.h"
#include "common/thread_annotations.h"

namespace chason {
namespace common {

namespace {

/** First line of @p command's output, or "" on any failure. */
std::string
commandLine(const char *command)
{
#if defined(__unix__) || defined(__APPLE__)
    if (FILE *p = popen(command, "r")) {
        char buf[128] = {0};
        const bool got = std::fgets(buf, sizeof(buf), p) != nullptr;
        pclose(p);
        if (got) {
            buf[std::strcspn(buf, "\r\n")] = '\0';
            return buf;
        }
    }
#else
    (void)command;
#endif
    return "";
}

std::string
resolveRevision()
{
    // Explicit override first: CI pipelines that measure an exported
    // tree (no .git) stamp the revision they checked out.
    const std::string env = envString("CHASON_GIT_REV");
    if (!env.empty())
        return env;
    std::string rev =
        commandLine("git rev-parse --short HEAD 2>/dev/null");
    if (!rev.empty()) {
        // A dirty tree holds code that HEAD does not contain; an
        // unmarked HEAD stamp would attribute the output to the wrong
        // revision. Mark it rather than lie.
        if (!commandLine(
                 "git status --porcelain 2>/dev/null | head -n 1")
                 .empty()) {
            rev += "-dirty";
        }
        return rev;
    }
#ifdef CHASON_GIT_REV
    return CHASON_GIT_REV; // configure-time fallback (no git at runtime)
#else
    return "unknown";
#endif
}

// The cached stamp is process-global shared state: benches stamp from
// worker threads, chason_lint stamps from its parallel tidy legs. The
// capability annotation is what makes a lockless future access a
// compile error instead of a rare double-popen.
Mutex g_revision_mutex;
bool g_revision_cached GUARDED_BY(g_revision_mutex) = false;
std::string g_revision GUARDED_BY(g_revision_mutex);

} // namespace

std::string
gitRevision()
{
    MutexLock lock(g_revision_mutex);
    if (!g_revision_cached) {
        g_revision = resolveRevision();
        g_revision_cached = true;
    }
    return g_revision;
}

} // namespace common
} // namespace chason
