/**
 * @file
 * Deterministic random number generation for reproducible workloads.
 *
 * Every synthetic matrix and every sweep in the benchmark harness is driven
 * by a seeded Rng so that runs are bit-for-bit reproducible. The generator
 * is xoshiro256** seeded through SplitMix64, which is both fast and has
 * well-studied statistical quality.
 *
 * Determinism rule for concurrent code (core::BatchEngine, the bench
 * parallelFor loops): there is deliberately no process-global generator
 * in this module, and none may be introduced. Each job/worker derives a
 * private Rng from stable inputs — its own seed field, or
 * forStream(baseSeed, jobIndex) — never by drawing from a stream shared
 * across jobs, whose interleaving would depend on thread timing. Under
 * this rule, the same seed and the same job set produce bit-identical
 * results for any worker count (`--jobs N` == `--jobs 1`), which
 * tests/core/test_batch_engine.cc asserts.
 */

#ifndef CHASON_COMMON_RNG_H_
#define CHASON_COMMON_RNG_H_

#include <cstdint>

namespace chason {

/** SplitMix64 step; used for seeding and for cheap hash mixing. */
std::uint64_t splitMix64(std::uint64_t &state);

/**
 * xoshiro256** pseudo random number generator.
 *
 * Satisfies the essentials of the UniformRandomBitGenerator concept so it
 * can also be plugged into <random> distributions if ever needed, but the
 * member helpers below are preferred because their results are identical
 * across standard library implementations.
 */
class Rng
{
  public:
    using result_type = std::uint64_t;

    /** Construct from a 64-bit seed (expanded via SplitMix64). */
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull);

    /** Next raw 64-bit value. */
    std::uint64_t next();

    std::uint64_t operator()() { return next(); }

    static constexpr std::uint64_t min() { return 0; }
    static constexpr std::uint64_t max() { return ~0ull; }

    /** Uniform integer in [0, bound). Requires bound > 0. */
    std::uint64_t nextBounded(std::uint64_t bound);

    /** Uniform integer in [lo, hi] inclusive. Requires lo <= hi. */
    std::int64_t nextRange(std::int64_t lo, std::int64_t hi);

    /** Uniform double in [0, 1). */
    double nextDouble();

    /** Uniform float in [lo, hi). */
    float nextFloat(float lo, float hi);

    /** Bernoulli trial with probability p of returning true. */
    bool nextBool(double p);

    /** Standard normal variate (Box-Muller, deterministic). */
    double nextGaussian();

    /**
     * Zipf-like integer in [0, n): rank r drawn with probability
     * proportional to 1 / (r + 1)^s. Used for power-law graph degrees.
     */
    std::uint64_t nextZipf(std::uint64_t n, double s);

    /** Fork an independent stream (deterministic function of this one). */
    Rng split();

    /**
     * An independent generator for job @p stream of a run seeded with
     * @p seed — the shared-nothing per-worker construction of the
     * determinism rule above. Pure function of its arguments:
     * forStream(s, i) is the same generator on every thread, every
     * run, every worker count.
     */
    static Rng forStream(std::uint64_t seed, std::uint64_t stream);

  private:
    std::uint64_t s_[4];
    bool hasSpareGaussian_ = false;
    double spareGaussian_ = 0.0;
};

} // namespace chason

#endif // CHASON_COMMON_RNG_H_
