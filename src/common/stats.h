/**
 * @file
 * Summary statistics, histograms and kernel-density estimates.
 *
 * The paper reports several results as probability density functions over
 * matrix corpora (Figs. 3, 11, 12); KdePdf reproduces those curves. The
 * speedup figures use geometric means, provided by SummaryStats.
 */

#ifndef CHASON_COMMON_STATS_H_
#define CHASON_COMMON_STATS_H_

#include <cstddef>
#include <vector>

#include "common/thread_annotations.h"

namespace chason {

/**
 * Accumulates samples and answers the usual descriptive questions.
 * Percentile queries sort a copy lazily; cheap at corpus scale.
 *
 * Thread safety: the const accessors (min/max/percentile/mean/...) may
 * be called concurrently from any number of threads — the lazily
 * sorted cache they share is guarded by an internal mutex, so a shared
 * instance can feed several reporter threads (the serving daemon reads
 * p50/p95/p99 this way). add() is a mutation and needs external
 * synchronization against both other add()s and concurrent readers,
 * like any container.
 */
class SummaryStats
{
  public:
    SummaryStats() = default;

    // The cache mutex is identity, not state: copies/moves transfer
    // the samples and drop the cache (it re-sorts on first query).
    SummaryStats(const SummaryStats &other);
    SummaryStats &operator=(const SummaryStats &other);
    SummaryStats(SummaryStats &&other) noexcept;
    SummaryStats &operator=(SummaryStats &&other) noexcept;

    /** Add one sample. */
    void add(double sample);

    /** Add a batch of samples. */
    void add(const std::vector<double> &samples);

    std::size_t count() const { return samples_.size(); }
    bool empty() const { return samples_.empty(); }

    double min() const;
    double max() const;
    double sum() const;
    double mean() const;

    /** Geometric mean; all samples must be positive. */
    double geomean() const;

    /** Population standard deviation. */
    double stddev() const;

    /** Linear-interpolated percentile; p in [0, 100]. */
    double percentile(double p) const;

    double median() const { return percentile(50.0); }

    /** Read-only access to the raw samples in insertion order. */
    const std::vector<double> &samples() const { return samples_; }

  private:
    std::vector<double> samples_;
    /** Guards the lazy sort; taken only inside sorted(). */
    mutable common::Mutex sortMutex_;
    mutable std::vector<double> sorted_ GUARDED_BY(sortMutex_);
    mutable bool sortedValid_ GUARDED_BY(sortMutex_) = false;

    /**
     * The sorted view, built on first use after a mutation. Returning
     * a reference after dropping the lock is sound under the class
     * contract: only add() invalidates the cache, and add() may not
     * run concurrently with readers.
     */
    const std::vector<double> &sorted() const EXCLUDES(sortMutex_);
};

/** Fixed-width histogram over [lo, hi); out-of-range samples clamp. */
class Histogram
{
  public:
    Histogram(double lo, double hi, std::size_t bins);

    void add(double sample);
    void add(const std::vector<double> &samples);

    std::size_t bins() const { return counts_.size(); }
    std::size_t total() const { return total_; }
    std::size_t count(std::size_t bin) const;

    /** Center of a bin's interval. */
    double binCenter(std::size_t bin) const;

    /** Fraction of samples in a bin. */
    double frequency(std::size_t bin) const;

    /** Density (frequency / bin width), integrates to ~1. */
    double density(std::size_t bin) const;

    /** Index of the most populated bin. */
    std::size_t modeBin() const;

  private:
    double lo_;
    double hi_;
    double width_;
    std::vector<std::size_t> counts_;
    std::size_t total_ = 0;
};

/**
 * Gaussian kernel density estimate over a sample set, evaluated on a
 * uniform grid. Bandwidth defaults to Silverman's rule of thumb.
 */
class KdePdf
{
  public:
    /**
     * @param samples   the observations
     * @param bandwidth kernel bandwidth; <= 0 selects Silverman's rule
     */
    explicit KdePdf(std::vector<double> samples, double bandwidth = 0.0);

    /** Density at point x. */
    double density(double x) const;

    /** The bandwidth in use. */
    double bandwidth() const { return bandwidth_; }

    /** Location of the density peak over a scan of [lo, hi]. */
    double peak(double lo, double hi, std::size_t steps = 512) const;

    /**
     * Evaluate the density on a uniform grid of @p steps points spanning
     * [lo, hi]; returns (x, pdf(x)) pairs — the series plotted in the
     * paper's PDF figures.
     */
    std::vector<std::pair<double, double>>
    evaluate(double lo, double hi, std::size_t steps) const;

  private:
    std::vector<double> samples_;
    double bandwidth_;
};

/** Geometric mean of a vector (convenience wrapper). */
double geomean(const std::vector<double> &values);

} // namespace chason

#endif // CHASON_COMMON_STATS_H_
