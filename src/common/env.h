/**
 * @file
 * The tree's single gateway to process environment variables.
 *
 * std::getenv returns a pointer into the environment block, which a
 * concurrent setenv may invalidate — the reason clang-tidy's
 * concurrency-mt-unsafe flags every call site. Chasoň never calls
 * setenv, and every lookup happens at tool/bench startup or inside a
 * once-per-thread constructor, but rather than suppress the check
 * tree-wide (which would also hide a future rand() or strtok()), all
 * reads funnel through these helpers: the value is copied out under
 * the single audited call, and the suppression lives on exactly one
 * line.
 */

#ifndef CHASON_COMMON_ENV_H_
#define CHASON_COMMON_ENV_H_

#include <cstdint>
#include <string>

namespace chason {
namespace common {

/**
 * Value of environment variable @p name, or @p fallback when unset.
 * An empty value is returned as-is (callers that treat empty as unset
 * check .empty() themselves).
 */
std::string envString(const char *name, const std::string &fallback = "");

/** True when @p name is set, even to an empty string. */
bool envIsSet(const char *name);

/**
 * Numeric value of @p name, or @p fallback on any failure to produce
 * one. Parsed with base-10 strtoll; the whole value must be one
 * non-negative integer (leading whitespace allowed, nothing after the
 * digits). Unset, empty, garbage, trailing junk ("4x"), negative and
 * out-of-range values all return @p fallback — a broken knob must
 * degrade to the documented default, never to a silent 0 that turns
 * the feature off (CHASON_JOBS=garbage used to disable parallelism).
 */
std::uint64_t envUint(const char *name, std::uint64_t fallback);

} // namespace common
} // namespace chason

#endif // CHASON_COMMON_ENV_H_
