/**
 * @file
 * Build/revision identity shared by every artifact-stamping producer.
 *
 * The BENCH_*.json perf reports (bench/perf_emit) and the SARIF
 * documents (src/verify/sarif, tools/chason_lint) all record which
 * revision produced them, so a committed baseline can be traced back
 * to the code it measured. The resolution order and the dirty-tree
 * marking live here once, instead of being re-implemented per tool.
 */

#ifndef CHASON_COMMON_BUILDINFO_H_
#define CHASON_COMMON_BUILDINFO_H_

#include <string>

namespace chason {
namespace common {

/**
 * Short git revision of the tree, resolved once per process and
 * cached (the resolution shells out to git): the CHASON_GIT_REV env
 * var when set, else `git rev-parse --short HEAD` with a "-dirty"
 * suffix when the working tree has local changes, else the
 * CHASON_GIT_REV compile definition, else "unknown". Thread-safe; the
 * cache is guarded and the annotated-locking test of the perf_emit
 * shared state.
 */
std::string gitRevision();

} // namespace common
} // namespace chason

#endif // CHASON_COMMON_BUILDINFO_H_
