/**
 * @file
 * Clang thread-safety-analysis annotations and annotated lock types.
 *
 * The locking discipline that keeps CrHCS schedules bit-identical
 * across job counts is a compile-time contract here, not a runtime
 * hope: every concurrent subsystem (core::ThreadPool,
 * core::ScheduleCache, core::BatchEngine, trace::TraceSink, the
 * PagePool registry, the buildinfo revision cache) declares which
 * capability guards which member, and a Clang build with
 * -DCHASON_THREAD_SAFETY=ON (-Wthread-safety
 * -Werror=thread-safety-analysis) refuses to compile an access that
 * drops a lock. GCC does not implement the analysis; the macros
 * expand to nothing there and the annotated types behave exactly like
 * std::mutex / std::lock_guard / std::condition_variable.
 *
 * Conventions (see docs/STATIC_ANALYSIS.md):
 *  - guarded members carry GUARDED_BY(mutex_) on the declaration;
 *  - private *Locked() helpers carry REQUIRES(mutex_);
 *  - public entry points that take the lock carry EXCLUDES(mutex_);
 *  - condition waits are explicit `while (pred) cv.wait(mutex_)` loops
 *    in the locking function itself — a predicate lambda is analyzed
 *    as a separate function and would not see the held capability.
 */

#ifndef CHASON_COMMON_THREAD_ANNOTATIONS_H_
#define CHASON_COMMON_THREAD_ANNOTATIONS_H_

#include <condition_variable>
#include <mutex>

#if defined(__clang__)
#define CHASON_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define CHASON_THREAD_ANNOTATION(x) // no-op: GCC lacks the analysis
#endif

/** Marks a type as a lockable capability ("mutex", "role", ...). */
#define CAPABILITY(x) CHASON_THREAD_ANNOTATION(capability(x))

/** Marks an RAII type whose lifetime holds a capability. */
#define SCOPED_CAPABILITY CHASON_THREAD_ANNOTATION(scoped_lockable)

/** Data member readable/writable only with the capability held. */
#define GUARDED_BY(x) CHASON_THREAD_ANNOTATION(guarded_by(x))

/** Pointer member whose *pointee* is guarded by the capability. */
#define PT_GUARDED_BY(x) CHASON_THREAD_ANNOTATION(pt_guarded_by(x))

/** Lock-ordering edges, declared on the capability member itself. */
#define ACQUIRED_BEFORE(...) \
    CHASON_THREAD_ANNOTATION(acquired_before(__VA_ARGS__))
#define ACQUIRED_AFTER(...) \
    CHASON_THREAD_ANNOTATION(acquired_after(__VA_ARGS__))

/** Callee runs with the capabilities already held by the caller. */
#define REQUIRES(...) \
    CHASON_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/** Function acquires the capabilities and holds them on return. */
#define ACQUIRE(...) \
    CHASON_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

/** Function releases capabilities the caller held. */
#define RELEASE(...) \
    CHASON_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

/** Acquires the capabilities only when returning @p success. */
#define TRY_ACQUIRE(success, ...) \
    CHASON_THREAD_ANNOTATION(try_acquire_capability(success, __VA_ARGS__))

/** Caller must NOT hold the capabilities (non-reentrant entry point). */
#define EXCLUDES(...) CHASON_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/** Function returns a reference to the named capability. */
#define RETURN_CAPABILITY(x) CHASON_THREAD_ANNOTATION(lock_returned(x))

/** Escape hatch; every use needs a comment saying why it is sound. */
#define NO_THREAD_SAFETY_ANALYSIS \
    CHASON_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace chason {
namespace common {

/**
 * std::mutex as an annotated capability. libstdc++'s own mutex carries
 * no attributes, so the analysis cannot track it; this wrapper is the
 * lockable type every annotated subsystem declares.
 */
class CAPABILITY("mutex") Mutex
{
  public:
    Mutex() = default;
    Mutex(const Mutex &) = delete;
    Mutex &operator=(const Mutex &) = delete;

    void lock() ACQUIRE() { m_.lock(); }
    void unlock() RELEASE() { m_.unlock(); }
    bool try_lock() TRY_ACQUIRE(true) { return m_.try_lock(); }

    /** The wrapped std::mutex, for CondVar's adopt-lock dance. */
    std::mutex &native() { return m_; }

  private:
    std::mutex m_;
};

/**
 * Scoped lock of a Mutex — the annotated std::lock_guard. The analysis
 * treats the guarded capability as held for exactly this object's
 * lifetime.
 */
class SCOPED_CAPABILITY MutexLock
{
  public:
    explicit MutexLock(Mutex &mutex) ACQUIRE(mutex) : mutex_(mutex)
    {
        mutex_.lock();
    }

    ~MutexLock() RELEASE() { mutex_.unlock(); }

    MutexLock(const MutexLock &) = delete;
    MutexLock &operator=(const MutexLock &) = delete;

  private:
    Mutex &mutex_;
};

/**
 * Condition variable bound to Mutex. wait() REQUIRES the mutex, so a
 * caller that forgot the lock is a compile error; the wait itself
 * adopts the already-held native mutex, releases it inside
 * std::condition_variable, and re-owns it before returning — the
 * capability is continuously held from the analysis' point of view,
 * which models exactly the guarantee wait() gives the predicate loop
 * around it.
 */
class CondVar
{
  public:
    CondVar() = default;
    CondVar(const CondVar &) = delete;
    CondVar &operator=(const CondVar &) = delete;

    void wait(Mutex &mutex) REQUIRES(mutex)
    {
        std::unique_lock<std::mutex> lock(mutex.native(),
                                          std::adopt_lock);
        cv_.wait(lock);
        lock.release(); // ownership returns to the caller's MutexLock
    }

    void notify_one() { cv_.notify_one(); }
    void notify_all() { cv_.notify_all(); }

  private:
    std::condition_variable cv_;
};

} // namespace common
} // namespace chason

#endif // CHASON_COMMON_THREAD_ANNOTATIONS_H_
