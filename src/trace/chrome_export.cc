/**
 * @file
 * Trace exporter implementation.
 */

#include "trace/chrome_export.h"

#include <cstdio>
#include <fstream>
#include <set>
#include <sstream>

#include "common/logging.h"

namespace chason {
namespace trace {

namespace {

constexpr int kDevicePid = 1;
constexpr int kHostPid = 2;

/** JSON string escaping (same contract as core::jsonEscape; duplicated
 *  because the trace library sits below core). */
std::string
escape(const std::string &raw)
{
    std::string out;
    out.reserve(raw.size());
    for (unsigned char c : raw) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\r':
            out += "\\r";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            if (c < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += static_cast<char>(c);
            }
        }
    }
    return out;
}

void
appendNumber(std::string &out, double value)
{
    char buf[48];
    std::snprintf(buf, sizeof(buf), "%.9g", value);
    out += buf;
}

void
appendMetadata(std::string &out, const char *kind, int pid, int tid,
               const std::string &name, bool &first)
{
    if (!first)
        out += ',';
    first = false;
    char buf[64];
    std::snprintf(buf, sizeof(buf),
                  "{\"name\":\"%s\",\"ph\":\"M\",\"pid\":%d,", kind, pid);
    out += buf;
    if (tid >= 0) {
        std::snprintf(buf, sizeof(buf), "\"tid\":%d,", tid);
        out += buf;
    }
    out += "\"args\":{\"name\":\"" + escape(name) + "\"}}";
}

std::string
deviceTrackName(std::uint32_t track)
{
    if (track == kTrackSequencer)
        return "sequencer";
    char buf[24];
    std::snprintf(buf, sizeof(buf), "PEG %u", track);
    return buf;
}

} // namespace

std::string
chromeTraceJson(const TraceSink &sink)
{
    const auto spans = sink.spans();
    const auto instants = sink.instants();
    const auto samples = sink.samples();

    std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
    bool first = true;

    appendMetadata(out, "process_name", kDevicePid, -1,
                   "chason device (1 us = 1 kernel cycle)", first);
    appendMetadata(out, "process_name", kHostPid, -1, "chason host",
                   first);

    std::set<std::uint32_t> device_tracks, host_tracks;
    for (const SpanEvent &s : spans)
        (s.device ? device_tracks : host_tracks).insert(s.track);
    for (const InstantEvent &i : instants)
        host_tracks.insert(i.track);
    for (std::uint32_t t : device_tracks) {
        appendMetadata(out, "thread_name", kDevicePid,
                       static_cast<int>(t == kTrackSequencer ? 0xffff : t),
                       deviceTrackName(t), first);
    }
    for (std::uint32_t t : host_tracks) {
        char name[24];
        std::snprintf(name, sizeof(name), "host thread %u", t);
        appendMetadata(out, "thread_name", kHostPid, static_cast<int>(t),
                       name, first);
    }

    for (const SpanEvent &s : spans) {
        if (!first)
            out += ',';
        first = false;
        out += "{\"ph\":\"X\",\"name\":\"" + escape(s.name) +
            "\",\"cat\":\"";
        out += categoryName(s.cat);
        char buf[64];
        std::snprintf(buf, sizeof(buf), "\",\"pid\":%d,\"tid\":%u,",
                      s.device ? kDevicePid : kHostPid, s.track);
        out += buf;
        out += "\"ts\":";
        appendNumber(out, s.begin);
        out += ",\"dur\":";
        appendNumber(out, s.dur);
        if (s.argName0) {
            out += ",\"args\":{\"";
            out += s.argName0;
            out += "\":";
            appendNumber(out, static_cast<double>(s.argVal0));
            if (s.argName1) {
                out += ",\"";
                out += s.argName1;
                out += "\":";
                appendNumber(out, static_cast<double>(s.argVal1));
            }
            out += '}';
        }
        out += '}';
    }

    for (const InstantEvent &i : instants) {
        if (!first)
            out += ',';
        first = false;
        char buf[64];
        std::snprintf(buf, sizeof(buf),
                      "\",\"s\":\"t\",\"pid\":%d,\"tid\":%u,\"ts\":",
                      kHostPid, i.track);
        out += "{\"ph\":\"i\",\"name\":\"" + escape(i.name) + buf;
        appendNumber(out, i.tsUs);
        out += '}';
    }

    for (const CounterSample &c : samples) {
        if (!first)
            out += ',';
        first = false;
        char buf[48];
        std::snprintf(buf, sizeof(buf),
                      "\",\"pid\":%d,\"tid\":0,\"ts\":", kHostPid);
        out += "{\"ph\":\"C\",\"name\":\"" + escape(c.name) + buf;
        appendNumber(out, c.tsUs);
        out += ",\"args\":{\"value\":";
        appendNumber(out, c.value);
        out += "}}";
    }

    out += "]}";
    return out;
}

void
writeChromeTrace(const TraceSink &sink, std::ostream &out)
{
    out << chromeTraceJson(sink);
}

void
writeChromeTraceFile(const TraceSink &sink, const std::string &path)
{
    std::ofstream out(path);
    if (!out)
        chason_fatal("cannot create trace file '%s'", path.c_str());
    writeChromeTrace(sink, out);
    if (!out.good())
        chason_fatal("failed writing trace file '%s'", path.c_str());
}

std::string
countersJson(const TraceSink &sink)
{
    std::string out = "{\"counters\":{";
    bool first = true;
    for (const auto &[name, value] : sink.counters()) {
        if (!first)
            out += ',';
        first = false;
        out += '"' + escape(name) + "\":";
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%llu",
                      static_cast<unsigned long long>(value));
        out += buf;
    }
    out += "},\"category_cycles\":{";
    first = true;
    for (const auto &[name, value] : sink.categoryCycles()) {
        if (!first)
            out += ',';
        first = false;
        out += '"' + escape(name) + "\":";
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%llu",
                      static_cast<unsigned long long>(value));
        out += buf;
    }
    out += "},\"peg_matrix_stream_cycles\":[";
    first = true;
    for (const auto &[track, value] : sink.pegStreamCycles()) {
        (void)track;
        if (!first)
            out += ',';
        first = false;
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%llu",
                      static_cast<unsigned long long>(value));
        out += buf;
    }
    out += "]}";
    return out;
}

} // namespace trace
} // namespace chason
