/**
 * @file
 * TraceSink and scoped-activation implementation.
 */

#include "trace/trace.h"

#include <atomic>

namespace chason {
namespace trace {

const char *
categoryName(Category cat)
{
    switch (cat) {
      case Category::MatrixStream:
        return "matrix_stream";
      case Category::XLoad:
        return "x_load";
      case Category::PipelineFill:
        return "pipeline_fill";
      case Category::Reduction:
        return "reduction";
      case Category::Writeback:
        return "writeback";
      case Category::InstStream:
        return "inst_stream";
      case Category::Launch:
        return "launch";
      case Category::Host:
        return "host";
      case Category::kCount:
        break;
    }
    return "unknown";
}

TraceSink::TraceSink() : epoch_(std::chrono::steady_clock::now()) {}

double
TraceSink::nowUs() const
{
    return std::chrono::duration<double, std::micro>(
               std::chrono::steady_clock::now() - epoch_)
        .count();
}

void
TraceSink::recordSpan(SpanEvent event)
{
    common::MutexLock lock(mutex_);
    spans_.push_back(std::move(event));
}

void
TraceSink::recordInstant(std::string name, std::uint32_t track,
                         double ts_us)
{
    common::MutexLock lock(mutex_);
    instants_.push_back({std::move(name), track, ts_us});
}

void
TraceSink::addCounter(const std::string &name, std::uint64_t delta)
{
    common::MutexLock lock(mutex_);
    counters_[name] += delta;
}

void
TraceSink::sampleCounter(const std::string &name, double value)
{
    const double ts = nowUs();
    common::MutexLock lock(mutex_);
    samples_.push_back({name, ts, value});
}

std::vector<SpanEvent>
TraceSink::spans() const
{
    common::MutexLock lock(mutex_);
    return spans_;
}

std::vector<InstantEvent>
TraceSink::instants() const
{
    common::MutexLock lock(mutex_);
    return instants_;
}

std::vector<CounterSample>
TraceSink::samples() const
{
    common::MutexLock lock(mutex_);
    return samples_;
}

std::map<std::string, std::uint64_t>
TraceSink::counters() const
{
    common::MutexLock lock(mutex_);
    return counters_;
}

std::map<std::string, std::uint64_t>
TraceSink::categoryCycles() const
{
    common::MutexLock lock(mutex_);
    std::map<std::string, std::uint64_t> totals;
    for (unsigned c = 0;
         c < static_cast<unsigned>(Category::Host); ++c)
        totals[categoryName(static_cast<Category>(c))] = 0;
    for (const SpanEvent &s : spans_) {
        if (s.device && s.cat != Category::Host)
            totals[categoryName(s.cat)] +=
                static_cast<std::uint64_t>(s.dur);
    }
    return totals;
}

std::map<std::uint32_t, std::uint64_t>
TraceSink::pegStreamCycles() const
{
    common::MutexLock lock(mutex_);
    std::map<std::uint32_t, std::uint64_t> totals;
    for (const SpanEvent &s : spans_) {
        if (s.device && s.cat == Category::MatrixStream)
            totals[s.track] += static_cast<std::uint64_t>(s.dur);
    }
    return totals;
}

bool
TraceSink::empty() const
{
    common::MutexLock lock(mutex_);
    return spans_.empty() && instants_.empty() && samples_.empty() &&
        counters_.empty();
}

#if CHASON_TRACE_ENABLED

namespace {

thread_local TraceSink *tls_sink = nullptr;

std::uint32_t
nextHostTrack()
{
    static std::atomic<std::uint32_t> counter{0};
    return counter.fetch_add(1, std::memory_order_relaxed);
}

} // namespace

TraceSink *
activeSink()
{
    return tls_sink;
}

ScopedSink::ScopedSink(TraceSink &sink) : prev_(tls_sink)
{
    tls_sink = &sink;
}

ScopedSink::~ScopedSink()
{
    tls_sink = prev_;
}

std::uint32_t
hostTrack()
{
    thread_local std::uint32_t id = nextHostTrack();
    return id;
}

HostSpan::HostSpan(std::string name)
    : sink_(tls_sink), name_(std::move(name))
{
    if (sink_)
        beginUs_ = sink_->nowUs();
}

HostSpan::~HostSpan()
{
    if (!sink_)
        return;
    SpanEvent span;
    span.name = std::move(name_);
    span.cat = Category::Host;
    span.track = hostTrack();
    span.device = false;
    span.begin = beginUs_;
    span.dur = sink_->nowUs() - beginUs_;
    sink_->recordSpan(std::move(span));
}

#endif // CHASON_TRACE_ENABLED

} // namespace trace
} // namespace chason
