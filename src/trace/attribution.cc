/**
 * @file
 * Cycle-attribution checker implementation.
 */

#include "trace/attribution.h"

#include <cstdio>

namespace chason {
namespace trace {

namespace {

AttributionCheck
mismatch(const char *what, std::uint64_t traced, std::uint64_t expected)
{
    char buf[160];
    std::snprintf(buf, sizeof(buf),
                  "%s: traced %llu cycles, breakdown says %llu", what,
                  static_cast<unsigned long long>(traced),
                  static_cast<unsigned long long>(expected));
    return {false, buf};
}

} // namespace

AttributionCheck
checkCycleAttribution(const TraceSink &sink, const CycleTotals &expected,
                      unsigned pegTracks)
{
    const auto totals = sink.categoryCycles();
    const struct
    {
        Category cat;
        std::uint64_t want;
    } clauses[] = {
        {Category::MatrixStream, expected.matrixStream},
        {Category::XLoad, expected.xLoad},
        {Category::PipelineFill, expected.pipelineFill},
        {Category::Reduction, expected.reduction},
        {Category::Writeback, expected.writeback},
        {Category::InstStream, expected.instStream},
        {Category::Launch, expected.launch},
    };
    for (const auto &clause : clauses) {
        const char *name = categoryName(clause.cat);
        const auto it = totals.find(name);
        std::uint64_t got = it == totals.end() ? 0 : it->second;
        // Clause 1 counts matrix streaming once; the per-PEG spans
        // repeat it per channel, so normalize before comparing.
        if (clause.cat == Category::MatrixStream && pegTracks > 0)
            got /= pegTracks;
        if (got != clause.want)
            return mismatch(name, got, clause.want);
    }

    if (pegTracks > 0) {
        const auto per_peg = sink.pegStreamCycles();
        for (unsigned t = 0; t < pegTracks; ++t) {
            const auto it = per_peg.find(t);
            const std::uint64_t got =
                it == per_peg.end() ? 0 : it->second;
            if (got != expected.matrixStream) {
                char what[48];
                std::snprintf(what, sizeof(what), "PEG %u matrix_stream",
                              t);
                return mismatch(what, got, expected.matrixStream);
            }
        }
    }
    return {true, ""};
}

} // namespace trace
} // namespace chason
