/**
 * @file
 * Trace exporters: Chrome trace_event JSON and flat counters JSON.
 *
 * The Chrome format (loadable in chrome://tracing and Perfetto) gets
 * two processes: pid 1 is the device timeline, where one trace
 * microsecond renders one simulated kernel cycle and each PEG is a
 * named thread; pid 2 is the host timeline in real microseconds
 * (scheduler phases, batch jobs, counter samples). The flat counters
 * JSON carries the monotonic counters plus per-category cycle totals,
 * shaped for merging into report JSON (see docs/TRACE_SCHEMA.md).
 */

#ifndef CHASON_TRACE_CHROME_EXPORT_H_
#define CHASON_TRACE_CHROME_EXPORT_H_

#include <iosfwd>
#include <string>

#include "trace/trace.h"

namespace chason {
namespace trace {

/** The complete Chrome trace_event JSON document for @p sink. */
std::string chromeTraceJson(const TraceSink &sink);

/** Stream chromeTraceJson(@p sink) to @p out. */
void writeChromeTrace(const TraceSink &sink, std::ostream &out);

/** Write the Chrome trace to @p path; fatal() when unwritable. */
void writeChromeTraceFile(const TraceSink &sink, const std::string &path);

/**
 * Flat counters object: {"counters": {...}, "category_cycles": {...},
 * "peg_matrix_stream_cycles": [...]} — raw JSON suitable for embedding
 * in a report object.
 */
std::string countersJson(const TraceSink &sink);

} // namespace trace
} // namespace chason

#endif // CHASON_TRACE_CHROME_EXPORT_H_
