/**
 * @file
 * The cycle-attribution invariant.
 *
 * Every device span a simulator run emits carries a category mirroring
 * one arch::CycleBreakdown field. The invariant checked here is the
 * property the whole tracing layer is trusted for: nothing is counted
 * twice and nothing is dropped —
 *
 *   1. per category, the sum of device-span cycles equals the
 *      breakdown field;
 *   2. per PEG track, the matrix-stream spans (busy + stall) sum to
 *      the breakdown's matrixStream total (all PEGs stream in
 *      lockstep for alignedBeats, Section 3.1).
 *
 * The checker takes a plain CycleTotals mirror instead of
 * arch::CycleBreakdown so the trace library stays below arch in the
 * dependency order; callers copy the fields over (see chason_trace).
 */

#ifndef CHASON_TRACE_ATTRIBUTION_H_
#define CHASON_TRACE_ATTRIBUTION_H_

#include <cstdint>
#include <string>

#include "trace/trace.h"

namespace chason {
namespace trace {

/** Field-by-field mirror of arch::CycleBreakdown. */
struct CycleTotals
{
    std::uint64_t matrixStream = 0;
    std::uint64_t xLoad = 0;
    std::uint64_t pipelineFill = 0;
    std::uint64_t reduction = 0;
    std::uint64_t writeback = 0;
    std::uint64_t instStream = 0;
    std::uint64_t launch = 0;
};

/** Outcome of an attribution check. */
struct AttributionCheck
{
    bool ok = true;
    std::string message; ///< first mismatch, empty when ok
};

/**
 * Verify the attribution invariant of @p sink against @p expected.
 * @p pegTracks is the number of matrix channels (PEG tracks) the run
 * used; pass 0 to skip the per-PEG clause (e.g. for merged sinks that
 * aggregate several runs, where only clause 1 is meaningful).
 */
AttributionCheck checkCycleAttribution(const TraceSink &sink,
                                       const CycleTotals &expected,
                                       unsigned pegTracks);

} // namespace trace
} // namespace chason

#endif // CHASON_TRACE_ATTRIBUTION_H_
