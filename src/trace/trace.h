/**
 * @file
 * Cycle-level tracing and performance counters.
 *
 * The paper's argument is about *where* cycles go: CrHCS exists to fill
 * the stall slots PE-aware scheduling leaves behind (Fig. 2), and the
 * evaluation attributes every cycle to a pipeline activity (Eq. 4,
 * Figs. 11-13). This layer makes that attribution observable per run
 * instead of only as end-of-run aggregates: the simulator emits spans
 * on a simulated-cycle timeline (one track per PEG plus a sequencer
 * track), the host side emits wall-clock spans (scheduler phases,
 * batch-job lifecycle) and counters (schedule-cache hits/misses/
 * evictions, thread-pool queue depth), and exporters turn a sink into
 * Chrome trace_event JSON (chrome://tracing, Perfetto) or a flat
 * counters object merged into report JSON.
 *
 * Activation is scoped and thread-local: instrumentation sites do
 * nothing unless the current thread entered a trace::ScopedSink. With
 * -DCHASON_TRACE=OFF the activation query is a constexpr nullptr, so
 * every `if (auto *s = trace::activeSink())` block is dead code and
 * the hot loops compile exactly as before.
 *
 * Invariant (checked by trace/attribution.h and the chason_trace CLI):
 * the sum of device-span cycles per category equals the corresponding
 * arch::CycleBreakdown field, and every PEG track's matrix-stream
 * spans (busy + stall) sum to the breakdown's matrixStream total.
 *
 * Thread safety: TraceSink record/query methods may be called from any
 * number of threads. The active-sink registration itself is per-thread.
 */

#ifndef CHASON_TRACE_TRACE_H_
#define CHASON_TRACE_TRACE_H_

#include <chrono>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/thread_annotations.h"

/** Compile-time gate; the build sets CHASON_TRACE_ENABLED=0 for
 *  -DCHASON_TRACE=OFF trees. Default: enabled. */
#ifndef CHASON_TRACE_ENABLED
#define CHASON_TRACE_ENABLED 1
#endif

namespace chason {
namespace trace {

/** True when the library was built with tracing compiled in. */
constexpr bool kEnabled = CHASON_TRACE_ENABLED != 0;

/**
 * Span categories. The first seven mirror arch::CycleBreakdown field
 * by field — the cycle-attribution invariant is stated over them.
 * Host is the wall-clock category (scheduler phases, job lifecycle).
 */
enum class Category : unsigned
{
    MatrixStream, ///< matrix channel streaming (busy + stall)
    XLoad,        ///< dense vector window loads
    PipelineFill, ///< per-phase fill/drain (window switch)
    Reduction,    ///< ScUG reduction sweeps
    Writeback,    ///< y read + write streaming
    InstStream,   ///< instruction/descriptor channel
    Launch,       ///< host dispatch share
    Host,         ///< wall-clock host-side work
    kCount
};

/** Stable snake_case name, matching the report-JSON breakdown keys. */
const char *categoryName(Category cat);

/** Device track of the shared sequencer (x loader, fill, writeback). */
constexpr std::uint32_t kTrackSequencer = 0xffffu;

/**
 * One span. Device spans (`device == true`) carry simulated-cycle
 * timestamps (`begin`/`dur` in kernel cycles); host spans carry
 * microseconds since the sink's construction.
 */
struct SpanEvent
{
    std::string name;
    Category cat = Category::Host;
    std::uint32_t track = 0; ///< PEG index, kTrackSequencer, or host thread
    bool device = false;
    double begin = 0.0;
    double dur = 0.0;

    /** Optional numeric arguments (argName* null = absent). */
    const char *argName0 = nullptr;
    std::uint64_t argVal0 = 0;
    const char *argName1 = nullptr;
    std::uint64_t argVal1 = 0;
};

/** A zero-duration marker (cache hit/miss/evict, job enqueue). */
struct InstantEvent
{
    std::string name;
    std::uint32_t track = 0;
    double tsUs = 0.0;
};

/** One time-stamped sample of a sampled counter (queue depth). */
struct CounterSample
{
    std::string name;
    double tsUs = 0.0;
    double value = 0.0;
};

/**
 * Collects spans, instants, monotonic counters and counter samples.
 * Cheap to create; owns everything it records.
 */
class TraceSink
{
  public:
    TraceSink();

    /** Microseconds since this sink was constructed (steady clock). */
    double nowUs() const;

    void recordSpan(SpanEvent event) EXCLUDES(mutex_);
    void recordInstant(std::string name, std::uint32_t track, double ts_us)
        EXCLUDES(mutex_);

    /** Bump a named monotonic counter. */
    void addCounter(const std::string &name, std::uint64_t delta = 1)
        EXCLUDES(mutex_);

    /** Record one time-stamped sample of a sampled counter. */
    void sampleCounter(const std::string &name, double value)
        EXCLUDES(mutex_);

    std::vector<SpanEvent> spans() const EXCLUDES(mutex_);
    std::vector<InstantEvent> instants() const EXCLUDES(mutex_);
    std::vector<CounterSample> samples() const EXCLUDES(mutex_);
    std::map<std::string, std::uint64_t> counters() const
        EXCLUDES(mutex_);

    /** Total device-span cycles per category (Host excluded). */
    std::map<std::string, std::uint64_t> categoryCycles() const
        EXCLUDES(mutex_);

    /**
     * Per-track total of device MatrixStream span cycles, keyed by
     * track id — one entry per PEG that streamed.
     */
    std::map<std::uint32_t, std::uint64_t> pegStreamCycles() const
        EXCLUDES(mutex_);

    bool empty() const EXCLUDES(mutex_);

  private:
    // The sink's lock is a leaf: record methods are called with
    // ScheduleCache::mutex_ held (enforceBudgetLocked's eviction
    // counters), so nothing here may call back into the cache.
    mutable common::Mutex mutex_;
    std::chrono::steady_clock::time_point epoch_;
    /** The four event stores — the sink registry the exporters read. */
    std::vector<SpanEvent> spans_ GUARDED_BY(mutex_);
    std::vector<InstantEvent> instants_ GUARDED_BY(mutex_);
    std::vector<CounterSample> samples_ GUARDED_BY(mutex_);
    /** Monotonic counters, flushed into report JSON at export time. */
    std::map<std::string, std::uint64_t> counters_ GUARDED_BY(mutex_);
};

#if CHASON_TRACE_ENABLED

/** The sink the current thread records into; nullptr when inactive. */
TraceSink *activeSink();

/**
 * Activate @p sink on the constructing thread for the scope's
 * lifetime; restores the previous active sink on destruction. Worker
 * threads (core::BatchEngine) enter one per job.
 */
class ScopedSink
{
  public:
    explicit ScopedSink(TraceSink &sink);
    ~ScopedSink();

    ScopedSink(const ScopedSink &) = delete;
    ScopedSink &operator=(const ScopedSink &) = delete;

  private:
    TraceSink *prev_;
};

/**
 * RAII wall-clock span: records [construction, destruction) on the
 * sink active at construction time; inert when none is.
 */
class HostSpan
{
  public:
    explicit HostSpan(std::string name);
    ~HostSpan();

    HostSpan(const HostSpan &) = delete;
    HostSpan &operator=(const HostSpan &) = delete;

  private:
    TraceSink *sink_;
    std::string name_;
    double beginUs_ = 0.0;
};

/** Stable per-thread track id for host spans (0, 1, 2, ... in order of
 *  first use). */
std::uint32_t hostTrack();

#else // !CHASON_TRACE_ENABLED — every query folds to "no sink".

constexpr TraceSink *
activeSink()
{
    return nullptr;
}

class ScopedSink
{
  public:
    explicit ScopedSink(TraceSink &) {}
};

class HostSpan
{
  public:
    explicit HostSpan(std::string) {}
};

constexpr std::uint32_t
hostTrack()
{
    return 0;
}

#endif // CHASON_TRACE_ENABLED

} // namespace trace
} // namespace chason

#endif // CHASON_TRACE_TRACE_H_
