/**
 * @file
 * CHSA v1 artifact writer/reader implementation.
 */

#include "sched/artifact.h"

#include <bit>
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <thread>

#include "common/logging.h"

#if defined(__unix__) || defined(__APPLE__)
#define CHASON_ARTIFACT_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#else
#define CHASON_ARTIFACT_MMAP 0
#endif

namespace chason {
namespace sched {

// The format is defined little-endian and the payload is aliased, not
// swapped; a big-endian port would need a byte-swapping load path.
static_assert(std::endian::native == std::endian::little,
              "CHSA artifacts are little-endian");

namespace {

constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ull;
constexpr std::uint64_t kFnvPrime = 0x100000001b3ull;
constexpr std::uint64_t kLaneSalt = 0x9e3779b97f4a7c15ull;

inline std::uint64_t
loadWord(const std::byte *p)
{
    std::uint64_t w;
    std::memcpy(&w, p, sizeof(w));
    return w;
}

/**
 * Digest of one chunk (any length <= kArtifactChunkBytes). Four
 * independent multiply-xor lanes walk 32-byte stripes so the loop
 * pipelines at memory bandwidth instead of serializing on one
 * multiply chain; byte-at-a-time FNV would make payload verification
 * the dominant warm-start cost.
 */
std::uint64_t
chunkHash(const std::byte *p, std::size_t n)
{
    std::uint64_t lane[4];
    for (unsigned k = 0; k < 4; ++k)
        lane[k] = kFnvOffset ^ (kLaneSalt * (k + 1));

    std::size_t i = 0;
    for (; i + 32 <= n; i += 32) {
        lane[0] = (lane[0] ^ loadWord(p + i)) * kFnvPrime;
        lane[1] = (lane[1] ^ loadWord(p + i + 8)) * kFnvPrime;
        lane[2] = (lane[2] ^ loadWord(p + i + 16)) * kFnvPrime;
        lane[3] = (lane[3] ^ loadWord(p + i + 24)) * kFnvPrime;
    }
    unsigned k = 0;
    for (; i + 8 <= n; i += 8) {
        lane[k] = (lane[k] ^ loadWord(p + i)) * kFnvPrime;
        k = (k + 1) & 3;
    }
    if (i < n) {
        std::uint64_t w = 0;
        std::memcpy(&w, p + i, n - i);
        lane[k] = (lane[k] ^ w) * kFnvPrime;
    }

    std::uint64_t h = kFnvOffset ^ n;
    for (unsigned j = 0; j < 4; ++j) {
        h = (h ^ lane[j]) * kFnvPrime;
        h ^= h >> 29;
    }
    h *= kLaneSalt;
    h ^= h >> 32;
    return h;
}

/** Fold state for combining chunk digests in payload order. */
struct ChunkFold
{
    std::uint64_t h = kFnvOffset;
    std::uint64_t total = 0;

    void
    add(std::uint64_t chunk_digest, std::size_t chunk_bytes)
    {
        h = (h ^ chunk_digest) * kFnvPrime;
        h ^= h >> 31;
        total += chunk_bytes;
    }

    std::uint64_t
    finish() const
    {
        std::uint64_t out = (h ^ total) * kFnvPrime;
        out ^= out >> 32;
        return out;
    }
};

/**
 * Streaming hasher for the writer: buffers bytes into whole chunks so
 * scattered per-channel beat streams produce the identical digest the
 * reader computes over the contiguous mapped payload.
 */
class StreamHasher
{
  public:
    void
    update(const void *data, std::size_t n)
    {
        const std::byte *p = static_cast<const std::byte *>(data);
        while (n > 0) {
            if (buf_.empty() && n >= kArtifactChunkBytes) {
                // Fast path: a whole chunk straight from the source.
                fold_.add(chunkHash(p, kArtifactChunkBytes),
                          kArtifactChunkBytes);
                p += kArtifactChunkBytes;
                n -= kArtifactChunkBytes;
                continue;
            }
            const std::size_t want = kArtifactChunkBytes - buf_.size();
            const std::size_t take = n < want ? n : want;
            buf_.insert(buf_.end(), p, p + take);
            p += take;
            n -= take;
            if (buf_.size() == kArtifactChunkBytes) {
                fold_.add(chunkHash(buf_.data(), buf_.size()),
                          buf_.size());
                buf_.clear();
            }
        }
    }

    std::uint64_t
    finish()
    {
        if (!buf_.empty()) {
            fold_.add(chunkHash(buf_.data(), buf_.size()), buf_.size());
            buf_.clear();
        }
        return fold_.finish();
    }

  private:
    std::vector<std::byte> buf_;
    ChunkFold fold_;
};

bool
fail(ArtifactError *error, ArtifactStatus status, std::string detail)
{
    if (error != nullptr) {
        error->status = status;
        error->detail = std::move(detail);
    }
    return false;
}

} // namespace

std::uint64_t
artifactHash(const void *data, std::size_t bytes)
{
    const std::byte *p = static_cast<const std::byte *>(data);
    ChunkFold fold;
    for (std::size_t off = 0; off < bytes; off += kArtifactChunkBytes) {
        const std::size_t n = bytes - off < kArtifactChunkBytes
            ? bytes - off
            : kArtifactChunkBytes;
        fold.add(chunkHash(p + off, n), n);
    }
    return fold.finish();
}

std::string
artifactFileName(const ArtifactKey &key)
{
    char buf[80];
    std::snprintf(buf, sizeof(buf),
                  "chsa-%016" PRIx64 "%016" PRIx64 "-%016" PRIx64 ".chsa",
                  key.lo, key.hi, key.scheduler);
    return buf;
}

const char *
artifactStatusName(ArtifactStatus status)
{
    switch (status) {
    case ArtifactStatus::kOk:
        return "ok";
    case ArtifactStatus::kIoError:
        return "io-error";
    case ArtifactStatus::kBadMagic:
        return "bad-magic";
    case ArtifactStatus::kBadVersion:
        return "bad-version";
    case ArtifactStatus::kTruncated:
        return "truncated";
    case ArtifactStatus::kBadStructure:
        return "bad-structure";
    case ArtifactStatus::kBadChecksum:
        return "bad-checksum";
    }
    return "unknown";
}

// ---------------------------------------------------------------------------
// Writer

bool
writeArtifactFile(const Schedule &schedule, const ArtifactKey &key,
                  const std::string &path, ArtifactError *error)
{
    const SchedConfig &cfg = schedule.config;
    const std::uint32_t channels = cfg.channels;
    const std::uint32_t phase_count =
        static_cast<std::uint32_t>(schedule.phases.size());

    // Meta section.
    ArtifactMeta meta;
    meta.nnz = schedule.nnz;
    meta.channels = channels;
    meta.precisionBits = cfg.precision == Precision::Fp32 ? 32 : 64;
    meta.pesOverride = cfg.pesOverride;
    meta.rawDistance = cfg.rawDistance;
    meta.windowCols = cfg.windowCols;
    meta.rowsPerLanePerPass = cfg.rowsPerLanePerPass;
    meta.migrationDepth = cfg.migrationDepth;
    meta.rows = schedule.rows;
    meta.cols = schedule.cols;
    meta.phaseCount = phase_count;
    chason_assert(schedule.scheduler.size() < sizeof(meta.schedulerName),
                  "scheduler name too long for the artifact meta");
    meta.schedulerNameLen =
        static_cast<std::uint32_t>(schedule.scheduler.size());
    std::memcpy(meta.schedulerName, schedule.scheduler.data(),
                schedule.scheduler.size());

    // Phase section: records then the per-(phase, channel) beat counts.
    std::vector<ArtifactPhase> phases(phase_count);
    std::vector<std::uint64_t> counts(
        static_cast<std::size_t>(phase_count) * channels);
    std::uint64_t payload_beats = 0;
    for (std::uint32_t p = 0; p < phase_count; ++p) {
        const WindowSchedule &ws = schedule.phases[p];
        chason_assert(ws.channels.size() == channels,
                      "schedule phase %u has %zu channels, config says %u",
                      p, ws.channels.size(), channels);
        phases[p].pass = ws.pass;
        phases[p].window = ws.window;
        phases[p].alignedBeats = ws.alignedBeats;
        for (std::uint32_t ch = 0; ch < channels; ++ch) {
            const std::uint64_t n = ws.channels[ch].beats.size();
            counts[static_cast<std::size_t>(p) * channels + ch] = n;
            payload_beats += n;
        }
    }
    const std::uint64_t payload_bytes = payload_beats * sizeof(Beat);

    // Layout.
    ArtifactHeader header;
    header.headerBytes = sizeof(ArtifactHeader);
    header.keyLo = key.lo;
    header.keyHi = key.hi;
    header.keyScheduler = key.scheduler;
    header.sectionCount = 3;
    header.sectionEntryBytes = sizeof(ArtifactSectionEntry);

    const std::uint64_t table_off = sizeof(ArtifactHeader);
    const std::uint64_t meta_off =
        table_off + 3 * sizeof(ArtifactSectionEntry);
    const std::uint64_t phase_off = meta_off + sizeof(ArtifactMeta);
    const std::uint64_t phase_bytes =
        phase_count * sizeof(ArtifactPhase) +
        counts.size() * sizeof(std::uint64_t);
    std::uint64_t payload_off = phase_off + phase_bytes;
    payload_off = (payload_off + kArtifactPayloadAlign - 1) &
        ~static_cast<std::uint64_t>(kArtifactPayloadAlign - 1);
    header.fileBytes = payload_off + payload_bytes;

    // Section digests. The payload digest streams over the scattered
    // per-channel beat arrays in exactly the order they land on disk.
    ArtifactSectionEntry sections[3];
    sections[0] = {static_cast<std::uint32_t>(ArtifactSection::kMeta), 0,
                   meta_off, sizeof(ArtifactMeta),
                   artifactHash(&meta, sizeof(meta))};
    StreamHasher phase_hash;
    phase_hash.update(phases.data(),
                      phases.size() * sizeof(ArtifactPhase));
    phase_hash.update(counts.data(),
                      counts.size() * sizeof(std::uint64_t));
    sections[1] = {static_cast<std::uint32_t>(ArtifactSection::kPhases),
                   0, phase_off, phase_bytes, phase_hash.finish()};
    StreamHasher payload_hash;
    for (const WindowSchedule &ws : schedule.phases) {
        for (const ChannelWindowSchedule &ch : ws.channels) {
            payload_hash.update(ch.beats.data(),
                                ch.beats.size() * sizeof(Beat));
        }
    }
    sections[2] = {static_cast<std::uint32_t>(ArtifactSection::kBeats), 0,
                   payload_off, payload_bytes, payload_hash.finish()};

    header.headerChecksum = 0;
    header.headerChecksum = artifactHash(&header, sizeof(header));

    // Temp file + rename: concurrent writers of the same key race to an
    // identical result, and a crash never leaves a torn file behind.
    const std::string tmp = path + ".tmp";
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) {
        return fail(error, ArtifactStatus::kIoError,
                    "cannot create '" + tmp + "'");
    }
    const auto put = [&out](const void *data, std::size_t n) {
        out.write(static_cast<const char *>(data),
                  static_cast<std::streamsize>(n));
    };
    put(&header, sizeof(header));
    put(sections, sizeof(sections));
    put(&meta, sizeof(meta));
    put(phases.data(), phases.size() * sizeof(ArtifactPhase));
    put(counts.data(), counts.size() * sizeof(std::uint64_t));
    const char zeros[kArtifactPayloadAlign] = {};
    put(zeros, payload_off - (phase_off + phase_bytes));
    for (const WindowSchedule &ws : schedule.phases) {
        for (const ChannelWindowSchedule &ch : ws.channels)
            put(ch.beats.data(), ch.beats.size() * sizeof(Beat));
    }
    out.flush();
    if (!out) {
        out.close();
        std::remove(tmp.c_str());
        return fail(error, ArtifactStatus::kIoError,
                    "write failed for '" + tmp + "'");
    }
    out.close();
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
        std::remove(tmp.c_str());
        return fail(error, ArtifactStatus::kIoError,
                    "cannot rename '" + tmp + "' to '" + path + "'");
    }
    return true;
}

// ---------------------------------------------------------------------------
// Reader

struct ArtifactReader::Mapping
{
    const std::byte *data = nullptr;
    std::size_t bytes = 0;
#if CHASON_ARTIFACT_MMAP
    void *mapBase = nullptr;
    std::size_t mapBytes = 0;
#endif
    std::vector<std::byte> fallback;

    ~Mapping()
    {
#if CHASON_ARTIFACT_MMAP
        if (mapBase != nullptr)
            ::munmap(mapBase, mapBytes);
#endif
    }
};

ArtifactReader
ArtifactReader::open(const std::string &path, ArtifactError *error)
{
    ArtifactReader reader;
    if (error != nullptr)
        *error = {};

    auto mapping = std::make_shared<Mapping>();
#if CHASON_ARTIFACT_MMAP
    const int fd = ::open(path.c_str(), O_RDONLY);
    if (fd < 0) {
        fail(error, ArtifactStatus::kIoError,
             "cannot open '" + path + "'");
        return reader;
    }
    struct stat st;
    if (::fstat(fd, &st) != 0 || st.st_size < 0) {
        ::close(fd);
        fail(error, ArtifactStatus::kIoError,
             "cannot stat '" + path + "'");
        return reader;
    }
    mapping->bytes = static_cast<std::size_t>(st.st_size);
    if (mapping->bytes > 0) {
        void *base = ::mmap(nullptr, mapping->bytes, PROT_READ,
                            MAP_PRIVATE, fd, 0);
        ::close(fd);
        if (base == MAP_FAILED) {
            fail(error, ArtifactStatus::kIoError,
                 "cannot mmap '" + path + "'");
            return reader;
        }
        mapping->mapBase = base;
        mapping->mapBytes = mapping->bytes;
        mapping->data = static_cast<const std::byte *>(base);
    } else {
        ::close(fd);
    }
#else
    std::ifstream in(path, std::ios::binary | std::ios::ate);
    if (!in) {
        fail(error, ArtifactStatus::kIoError,
             "cannot open '" + path + "'");
        return reader;
    }
    const std::streamoff size = in.tellg();
    in.seekg(0);
    mapping->fallback.resize(static_cast<std::size_t>(size));
    in.read(reinterpret_cast<char *>(mapping->fallback.data()), size);
    if (!in) {
        fail(error, ArtifactStatus::kIoError,
             "cannot read '" + path + "'");
        return reader;
    }
    mapping->data = mapping->fallback.data();
    mapping->bytes = mapping->fallback.size();
#endif

    // chason-lint: begin-mmap-region (everything below reads bytes the
    // kernel may have mapped from a file another process can truncate
    // or corrupt: every typed view must be re-checked before the cast)
    const std::byte *base = mapping->data;
    const std::uint64_t size = mapping->bytes;

    // Header.
    if (size < sizeof(ArtifactHeader)) {
        fail(error, ArtifactStatus::kTruncated,
             "file smaller than the CHSA header");
        return reader;
    }
    ArtifactHeader header;
    std::memcpy(&header, base, sizeof(header));
    if (header.magic != kArtifactMagic) {
        fail(error, ArtifactStatus::kBadMagic, "not a CHSA artifact");
        return reader;
    }
    if (header.version != kArtifactVersion) {
        fail(error, ArtifactStatus::kBadVersion,
             "artifact version " + std::to_string(header.version) +
                 ", reader speaks " + std::to_string(kArtifactVersion));
        return reader;
    }
    if (header.headerBytes != sizeof(ArtifactHeader) ||
        header.sectionEntryBytes != sizeof(ArtifactSectionEntry) ||
        header.sectionCount != 3) {
        fail(error, ArtifactStatus::kBadStructure,
             "header geometry does not match CHSA v1");
        return reader;
    }
    if (size < header.fileBytes) {
        fail(error, ArtifactStatus::kTruncated,
             "file is " + std::to_string(size) + " bytes, header "
                 "declares " + std::to_string(header.fileBytes));
        return reader;
    }
    if (size > header.fileBytes) {
        fail(error, ArtifactStatus::kBadStructure,
             "trailing bytes after the declared end of file");
        return reader;
    }
    ArtifactHeader unsummed = header;
    unsummed.headerChecksum = 0;
    if (artifactHash(&unsummed, sizeof(unsummed)) !=
        header.headerChecksum) {
        fail(error, ArtifactStatus::kBadChecksum,
             "header checksum mismatch");
        return reader;
    }

    // Section table.
    const std::uint64_t table_end = sizeof(ArtifactHeader) +
        std::uint64_t{3} * sizeof(ArtifactSectionEntry);
    ArtifactSectionEntry entries[3];
    std::memcpy(entries, base + sizeof(ArtifactHeader), sizeof(entries));
    const ArtifactSectionEntry *meta_sec = nullptr;
    const ArtifactSectionEntry *phase_sec = nullptr;
    const ArtifactSectionEntry *beat_sec = nullptr;
    for (const ArtifactSectionEntry &e : entries) {
        if (e.offset < table_end || e.offset > header.fileBytes ||
            e.bytes > header.fileBytes - e.offset) {
            fail(error, ArtifactStatus::kBadStructure,
                 "section extends past the end of file");
            return reader;
        }
        switch (static_cast<ArtifactSection>(e.kind)) {
        case ArtifactSection::kMeta:
            meta_sec = &e;
            break;
        case ArtifactSection::kPhases:
            phase_sec = &e;
            break;
        case ArtifactSection::kBeats:
            beat_sec = &e;
            break;
        default:
            fail(error, ArtifactStatus::kBadStructure,
                 "unknown section kind " + std::to_string(e.kind));
            return reader;
        }
    }
    if (meta_sec == nullptr || phase_sec == nullptr ||
        beat_sec == nullptr) {
        fail(error, ArtifactStatus::kBadStructure,
             "missing meta/phase/beat section");
        return reader;
    }

    // Meta section.
    if (meta_sec->bytes != sizeof(ArtifactMeta) ||
        meta_sec->offset % alignof(ArtifactMeta) != 0) {
        fail(error, ArtifactStatus::kBadStructure,
             "meta section has the wrong size or alignment");
        return reader;
    }
    if (artifactHash(base + meta_sec->offset, meta_sec->bytes) !=
        meta_sec->checksum) {
        fail(error, ArtifactStatus::kBadChecksum,
             "meta section checksum mismatch");
        return reader;
    }
    ArtifactMeta meta;
    std::memcpy(&meta, base + meta_sec->offset, sizeof(meta));
    // Range checks mirror SchedConfig::validate() without its panics: a
    // corrupt artifact must be rejected, not crash the process.
    const unsigned pes = meta.pesOverride != 0
        ? meta.pesOverride
        : (meta.precisionBits == 32 ? 8u : 5u);
    if (meta.channels < 1 || meta.channels > 4096 ||
        (meta.precisionBits != 32 && meta.precisionBits != 64) ||
        pes < 1 || pes > kMaxPesPerGroup || meta.rawDistance < 1 ||
        meta.windowCols < 1 || meta.rowsPerLanePerPass < 1 ||
        meta.migrationDepth >= meta.channels ||
        meta.schedulerNameLen >= sizeof(meta.schedulerName) ||
        meta.phaseCount > (1u << 28)) {
        fail(error, ArtifactStatus::kBadStructure,
             "meta section carries an illegal configuration");
        return reader;
    }

    // Phase section.
    const std::uint64_t cell_count =
        std::uint64_t{meta.phaseCount} * meta.channels;
    const std::uint64_t want_phase_bytes =
        std::uint64_t{meta.phaseCount} * sizeof(ArtifactPhase) +
        cell_count * sizeof(std::uint64_t);
    if (phase_sec->bytes != want_phase_bytes ||
        phase_sec->offset % alignof(ArtifactPhase) != 0) {
        fail(error, ArtifactStatus::kBadStructure,
             "phase section size disagrees with the meta counts");
        return reader;
    }
    if (artifactHash(base + phase_sec->offset, phase_sec->bytes) !=
        phase_sec->checksum) {
        fail(error, ArtifactStatus::kBadChecksum,
             "phase section checksum mismatch");
        return reader;
    }
    // The section-table loop proved these bounds already; re-assert
    // them at the cast site so the typed views can never outlive a
    // refactor of the checks above.
    chason_assert(phase_sec->offset + phase_sec->bytes <= size,
                  "phase section bounds re-checked before typed view");
    const ArtifactPhase *phases =
        reinterpret_cast<const ArtifactPhase *>(base + phase_sec->offset);
    const std::uint64_t *counts = reinterpret_cast<const std::uint64_t *>(
        base + phase_sec->offset +
        std::uint64_t{meta.phaseCount} * sizeof(ArtifactPhase));

    // Beat section: counts must tile it exactly.
    if (beat_sec->offset % kArtifactPayloadAlign != 0) {
        fail(error, ArtifactStatus::kBadStructure,
             "beat payload is not 64-byte aligned");
        return reader;
    }
    const std::uint64_t max_beats = beat_sec->bytes / sizeof(Beat);
    std::uint64_t total_beats = 0;
    for (std::uint64_t c = 0; c < cell_count; ++c) {
        if (counts[c] > max_beats || total_beats > max_beats - counts[c]) {
            fail(error, ArtifactStatus::kBadStructure,
                 "beat counts overflow the payload section");
            return reader;
        }
        total_beats += counts[c];
    }
    if (total_beats * sizeof(Beat) != beat_sec->bytes) {
        fail(error, ArtifactStatus::kBadStructure,
             "beat counts do not tile the payload section");
        return reader;
    }
    for (std::uint32_t p = 0; p < meta.phaseCount; ++p) {
        for (std::uint32_t ch = 0; ch < meta.channels; ++ch) {
            if (counts[std::uint64_t{p} * meta.channels + ch] >
                phases[p].alignedBeats) {
                fail(error, ArtifactStatus::kBadStructure,
                     "phase shorter than one of its channel streams");
                return reader;
            }
        }
    }

    // Validated: publish the typed views.
    reader.info_.key = {header.keyLo, header.keyHi, header.keyScheduler};
    SchedConfig &cfg = reader.info_.config;
    cfg.channels = meta.channels;
    cfg.precision =
        meta.precisionBits == 32 ? Precision::Fp32 : Precision::Fp64;
    cfg.pesOverride = meta.pesOverride;
    cfg.rawDistance = meta.rawDistance;
    cfg.windowCols = meta.windowCols;
    cfg.rowsPerLanePerPass = meta.rowsPerLanePerPass;
    cfg.migrationDepth = meta.migrationDepth;
    reader.info_.scheduler.assign(meta.schedulerName,
                                  meta.schedulerNameLen);
    reader.info_.rows = meta.rows;
    reader.info_.cols = meta.cols;
    reader.info_.nnz = meta.nnz;
    reader.info_.phaseCount = meta.phaseCount;
    reader.info_.payloadBytes = beat_sec->bytes;
    reader.info_.fileBytes = header.fileBytes;
    reader.info_.sections.assign(entries, entries + 3);
    reader.phases_ = phases;
    reader.beatCounts_ = counts;
    chason_assert(beat_sec->offset + beat_sec->bytes <= size,
                  "beat section bounds re-checked before typed view");
    reader.payload_ =
        reinterpret_cast<const Beat *>(base + beat_sec->offset);
    reader.payloadChecksum_ = beat_sec->checksum;
    reader.mapping_ = std::move(mapping);
    // chason-lint: end-mmap-region
    return reader;
}

bool
ArtifactReader::payloadIntact(ArtifactError *error, unsigned jobs) const
{
    // chason-lint: begin-mmap-region (payload_ points into the mapped
    // file; the hash sweep below walks all of it)
    chason_assert(ok(), "payloadIntact() on a failed reader");
    if (payloadVerdict_ == 0) {
        const std::byte *p =
            reinterpret_cast<const std::byte *>(payload_);
        const std::uint64_t bytes = info_.payloadBytes;
        const std::size_t chunks = static_cast<std::size_t>(
            (bytes + kArtifactChunkBytes - 1) / kArtifactChunkBytes);
        std::vector<std::uint64_t> digests(chunks);

        unsigned workers = jobs != 0
            ? jobs
            : std::thread::hardware_concurrency();
        if (workers < 1)
            workers = 1;
        if (workers > chunks)
            workers = static_cast<unsigned>(chunks);
        if (workers > 16)
            workers = 16;

        const auto hash_stride = [&](unsigned worker) {
            for (std::size_t c = worker; c < chunks; c += workers) {
                const std::uint64_t off =
                    std::uint64_t{c} * kArtifactChunkBytes;
                const std::size_t n = static_cast<std::size_t>(
                    bytes - off < kArtifactChunkBytes
                        ? bytes - off
                        : kArtifactChunkBytes);
                digests[c] = chunkHash(p + off, n);
            }
        };
        if (workers <= 1) {
            hash_stride(0);
        } else {
            std::vector<std::thread> pool;
            pool.reserve(workers - 1);
            for (unsigned w = 1; w < workers; ++w)
                pool.emplace_back(hash_stride, w);
            hash_stride(0);
            for (std::thread &t : pool)
                t.join();
        }

        ChunkFold fold;
        for (std::size_t c = 0; c < chunks; ++c) {
            const std::uint64_t off =
                std::uint64_t{c} * kArtifactChunkBytes;
            fold.add(digests[c],
                     static_cast<std::size_t>(
                         bytes - off < kArtifactChunkBytes
                             ? bytes - off
                             : kArtifactChunkBytes));
        }
        payloadVerdict_ =
            fold.finish() == payloadChecksum_ ? 1 : 2;
    }
    // chason-lint: end-mmap-region
    if (payloadVerdict_ == 1)
        return true;
    return fail(error, ArtifactStatus::kBadChecksum,
                "beat payload checksum mismatch") ||
        false;
}

Schedule
ArtifactReader::load() const
{
    chason_assert(ok(), "load() on a failed reader");
    chason_assert(payloadVerdict_ == 1,
                  "load() requires a prior successful payloadIntact()");

    Schedule schedule;
    schedule.config = info_.config;
    schedule.scheduler = info_.scheduler;
    schedule.rows = info_.rows;
    schedule.cols = info_.cols;
    schedule.nnz = static_cast<std::size_t>(info_.nnz);
    schedule.phases.reserve(info_.phaseCount);

    const std::uint32_t channels = info_.config.channels;
    const Beat *cursor = payload_;
    for (std::uint32_t p = 0; p < info_.phaseCount; ++p) {
        WindowSchedule ws;
        ws.pass = phases_[p].pass;
        ws.window = phases_[p].window;
        ws.alignedBeats =
            static_cast<std::size_t>(phases_[p].alignedBeats);
        ws.channels.resize(channels);
        for (std::uint32_t ch = 0; ch < channels; ++ch) {
            const std::uint64_t n =
                beatCounts_[std::uint64_t{p} * channels + ch];
            ws.channels[ch].beats = BeatList::aliasing(
                cursor, static_cast<std::size_t>(n), mapping_);
            cursor += n;
        }
        schedule.phases.push_back(std::move(ws));
    }
    return schedule;
}

} // namespace sched
} // namespace chason
