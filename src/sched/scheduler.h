/**
 * @file
 * Abstract scheduler interface.
 *
 * A scheduler turns a CSR matrix into the per-channel beat lists the
 * streaming accelerators consume. Three implementations mirror the
 * paper's Section 2.2 / 3:
 *
 *  - RowBasedScheduler   (Fig. 2a): in-order, one row at a time;
 *  - PeAwareScheduler    (Fig. 2b): Serpens' intra-channel OoO scheme;
 *  - CrhcsScheduler      (Fig. 2c): the paper's cross-channel scheme.
 */

#ifndef CHASON_SCHED_SCHEDULER_H_
#define CHASON_SCHED_SCHEDULER_H_

#include <string>

#include "sched/config.h"
#include "sched/schedule.h"
#include "sparse/formats.h"

namespace chason {
namespace sched {

/**
 * Base class for the offline non-zero schedulers.
 *
 * Contract for every implementation:
 *  - schedule() is a *pure function* of (config, matrix): it touches no
 *    global or mutable member state, draws no randomness, and returns a
 *    bit-identical Schedule on every call — the property the schedule
 *    cache's content-addressed keying and the batch engine's
 *    determinism guarantee are built on;
 *  - schedule() is const, reentrant and thread-safe: one scheduler
 *    instance may serve any number of threads concurrently
 *    (core::BatchEngine workers do exactly this);
 *  - the result places every matrix non-zero exactly once, carries
 *    correct lane tags, and respects the RAW distance on every
 *    physical URAM bank (sched::validateSchedule enforces this).
 */
class Scheduler
{
  public:
    explicit Scheduler(const SchedConfig &config) : config_(config)
    {
        config_.validate();
    }

    virtual ~Scheduler() = default;

    /** Algorithm name for reports (also part of the cache key). */
    virtual std::string name() const = 0;

    /** Produce a schedule for @p matrix (pure; see class contract). */
    virtual Schedule schedule(const sparse::CsrMatrix &matrix) const = 0;

    const SchedConfig &config() const { return config_; }

  protected:
    SchedConfig config_;

    /** Shared epilogue: set metadata and align every phase. */
    Schedule
    finalize(const sparse::CsrMatrix &matrix, std::string name,
             std::vector<WindowSchedule> phases) const;
};

} // namespace sched
} // namespace chason

#endif // CHASON_SCHED_SCHEDULER_H_
