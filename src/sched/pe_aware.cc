/**
 * @file
 * PE-aware scheduler implementation.
 *
 * The round-robin row interleaving is implemented per lane with a ready
 * FIFO plus a pending FIFO of (wake beat, row) pairs. Because the RAW
 * distance is a constant, wake times are issued in non-decreasing order
 * and a FIFO suffices — this keeps scheduling O(1) per beat, which
 * matters for the 800-matrix corpus experiments.
 *
 * Both FIFOs are fixed-capacity rings over one scratch buffer: a run is
 * in exactly one of {ready, pending, retired} at any time, so each ring
 * never holds more than the lane's run count. The channel's beat list is
 * built append-only with all of its lanes advancing in lockstep, so
 * every 128-byte beat is written exactly once — the naive variant
 * (zero-resize the list, then revisit each beat per lane) moves the
 * whole multi-hundred-MB schedule through the cache twice. When every
 * lane is waiting out a RAW dependency the gap is bulk-appended as stall
 * beats in one resize and the sweep jumps to the earliest wake. Issue
 * beats are unchanged by either trick, so the produced schedule is
 * bit-identical to the original per-lane implementation.
 */

#include "sched/pe_aware.h"

#include <algorithm>
#include <limits>
#include <vector>

namespace chason {
namespace sched {

namespace {

/** A pending entry: run index waiting until `wake` to issue again. */
struct Pending
{
    std::size_t wake = 0;
    std::uint32_t idx = 0;
};

/** Round-robin FIFO state of one lane, over shared scratch storage. */
struct LaneState
{
    common::Span<const RowRun> runs;
    std::uint32_t *ready = nullptr; ///< ring of run indices, size nrun
    Pending *pending = nullptr;     ///< ring of waiting runs, size nrun
    std::uint32_t *cursor = nullptr; ///< per-run element position
    std::size_t nrun = 0;
    std::size_t rhead = 0, rsize = 0;
    std::size_t phead = 0, psize = 0;
    std::size_t remaining = 0; ///< elements not yet issued
};

} // namespace

WindowSchedule
PeAwareScheduler::schedulePhase(const PhaseWork &work,
                                const SchedConfig &config)
{
    const unsigned pes = config.pesPerGroup();
    const unsigned d = config.rawDistance;

    WindowSchedule ws;
    ws.pass = work.pass;
    ws.window = work.window;
    ws.channels.resize(config.channels);

    // Shared scratch, sized once to the widest channel (sum of its
    // lanes' run counts).
    std::size_t max_runs = 0;
    for (unsigned ch = 0; ch < config.channels; ++ch) {
        std::size_t total = 0;
        for (unsigned pe = 0; pe < pes; ++pe)
            total +=
                work.lanes[static_cast<std::size_t>(ch) * pes + pe].size();
        max_runs = std::max(max_runs, total);
    }
    std::vector<std::uint32_t> ready_buf(max_runs);
    std::vector<Pending> pending_buf(max_runs);
    std::vector<std::uint32_t> cursor_buf(max_runs);

    std::array<LaneState, kMaxPesPerGroup> lane;
    for (unsigned ch = 0; ch < config.channels; ++ch) {
        ChannelWindowSchedule &cws = ws.channels[ch];

        std::size_t base = 0;
        std::size_t ch_remaining = 0;
        std::size_t max_lane_remaining = 0;
        for (unsigned pe = 0; pe < pes; ++pe) {
            LaneState &ls = lane[pe];
            ls.runs = work.lanes[static_cast<std::size_t>(ch) * pes + pe];
            ls.nrun = ls.runs.size();
            ls.ready = ready_buf.data() + base;
            ls.pending = pending_buf.data() + base;
            ls.cursor = cursor_buf.data() + base;
            base += ls.nrun;
            ls.rhead = ls.phead = ls.psize = 0;
            ls.rsize = ls.nrun;
            ls.remaining = 0;
            for (std::size_t i = 0; i < ls.nrun; ++i) {
                ls.ready[i] = static_cast<std::uint32_t>(i);
                ls.cursor[i] = 0;
                ls.remaining += ls.runs[i].len;
            }
            ch_remaining += ls.remaining;
            max_lane_remaining =
                std::max(max_lane_remaining, ls.remaining);
        }
        if (ch_remaining == 0)
            continue;
        cws.beats.reserve(max_lane_remaining); // lower bound on length

        std::size_t t = 0;
        while (ch_remaining > 0) {
            cws.beats.emplace_back();
            Beat &beat = cws.beats.back();
            bool issued = false;
            for (unsigned pe = 0; pe < pes; ++pe) {
                LaneState &ls = lane[pe];
                if (ls.remaining == 0)
                    continue;
                while (ls.psize > 0 && ls.pending[ls.phead].wake <= t) {
                    std::size_t tail = ls.rhead + ls.rsize;
                    if (tail >= ls.nrun)
                        tail -= ls.nrun;
                    ls.ready[tail] = ls.pending[ls.phead].idx;
                    ++ls.rsize;
                    if (++ls.phead == ls.nrun)
                        ls.phead = 0;
                    --ls.psize;
                }
                if (ls.rsize == 0)
                    continue; // RAW wait: leave the slot as a stall
                const std::uint32_t idx = ls.ready[ls.rhead];
                if (++ls.rhead == ls.nrun)
                    ls.rhead = 0;
                --ls.rsize;
                const RowRun &run = ls.runs[idx];
                Slot &slot = beat.slots[pe];
                slot.valid = true;
                slot.value = work.val(run, ls.cursor[idx]);
                slot.row = run.row;
                slot.col = work.col(run, ls.cursor[idx]);
                slot.pvt = true;
                slot.peSrc = static_cast<std::uint8_t>(pe);
                slot.chSrc = static_cast<std::uint8_t>(ch);
                if (++ls.cursor[idx] < run.len) {
                    std::size_t tail = ls.phead + ls.psize;
                    if (tail >= ls.nrun)
                        tail -= ls.nrun;
                    ls.pending[tail] = {t + d, idx};
                    ++ls.psize;
                }
                --ls.remaining;
                --ch_remaining;
                issued = true;
            }
            ++t;
            if (!issued && ch_remaining > 0) {
                // Every active lane is waiting: bulk-append the stall
                // gap and jump to the earliest wake. (Wakes are
                // monotone per lane, so nothing can issue in between.)
                std::size_t next_wake =
                    std::numeric_limits<std::size_t>::max();
                for (unsigned pe = 0; pe < pes; ++pe) {
                    const LaneState &ls = lane[pe];
                    if (ls.remaining > 0 && ls.psize > 0)
                        next_wake =
                            std::min(next_wake, ls.pending[ls.phead].wake);
                }
                if (next_wake > t) {
                    cws.beats.resize(cws.beats.size() + (next_wake - t));
                    t = next_wake;
                }
            }
        }
    }
    return ws;
}

Schedule
PeAwareScheduler::schedule(const sparse::CsrMatrix &matrix) const
{
    std::vector<WindowSchedule> phases;
    for (const PhaseWork &work : buildPhaseWork(matrix, config_))
        phases.push_back(schedulePhase(work, config_));
    return finalize(matrix, name(), std::move(phases));
}

} // namespace sched
} // namespace chason
