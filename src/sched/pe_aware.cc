/**
 * @file
 * PE-aware scheduler implementation.
 *
 * The round-robin row interleaving is per lane, and lanes of a channel
 * never interact (each writes only its own slot column), so a lane is a
 * self-contained event stream: a single FIFO of (wake beat, run) pairs.
 * Because the RAW distance is a constant, re-queued wake times are
 * non-decreasing, so the FIFO head is always the next run to issue and
 * its issue beat is simply max(previous issue + 1, head wake). That
 * collapses the original beat-major sweep — which visited every beat of
 * every lane, stalls included — into one O(1)-per-*element* step, which
 * is what the 800-matrix corpus experiments need.
 *
 * The channel is then built in two passes. Pass A runs the queue per
 * lane purely arithmetically to learn the exact channel length (max
 * lane end + 1) — ~0.2% of phase time — so the beat list is allocated
 * and zero-filled exactly once, with no growth copies and no trailing
 * stall trim. Pass B replays the queues lane-major in cache-sized beat
 * blocks (a block of beats fits L2, each lane's queue suspends at the
 * block edge), so every 128-byte beat is touched while hot instead of
 * the beat-major order streaming the whole multi-hundred-MB schedule
 * through the cache once per issued element. Issue beats are unchanged
 * by any of this, so the produced schedule is bit-identical to the
 * original per-beat implementation.
 */

#include "sched/pe_aware.h"

#include <algorithm>
#include <vector>

namespace chason {
namespace sched {

namespace {


/** Beats per pass-B block: 4096 * sizeof(Beat) = 512 KiB, sized to sit
 *  in L2 while each lane's issues for the block are scattered into it. */
constexpr std::size_t kBlockBeats = 4096;

/**
 * A queued run: may issue again no earlier than beat `wake`, its next
 * element is at `off` in the phase's element arrays, `rem` elements
 * are left. Self-contained 16-byte entries keep the issue loop free of
 * side-array traffic — no per-run cursor update and no RowRun reload
 * per element. 32-bit fields cannot overflow: a 2^32-beat channel
 * would be a half-terabyte schedule, and a phase holds far fewer than
 * 2^32 elements.
 */
struct QueuedRun
{
    std::uint32_t wake = 0;
    std::uint32_t row = 0;
    std::uint32_t off = 0;
    std::uint32_t rem = 0;
};

/** Single-FIFO round-robin state of one lane, over shared scratch. */
struct LaneState
{
    common::Span<const RowRun> runs;
    QueuedRun *q = nullptr; ///< ring of queued runs, size nrun
    std::size_t nrun = 0;
    std::size_t head = 0, size = 0;
    std::size_t next = 0; ///< earliest beat the lane may issue at

    /** Reset to the initial all-runs-ready state. */
    void reset()
    {
        head = 0;
        size = nrun;
        next = 0;
        for (std::size_t i = 0; i < nrun; ++i) {
            const RowRun &run = runs[i];
            q[i] = {0, run.row, static_cast<std::uint32_t>(run.offset),
                    run.len};
        }
    }
};

/**
 * Pass A: dry-run one lane's queue to its end. Returns last issue beat
 * + 1 (the lane's contribution to the channel length); 0 for an empty
 * lane. Consumes the ring — callers reset() before pass B.
 */
std::size_t
laneEndBeat(LaneState &ls, unsigned d)
{
    std::size_t next = 0;
    while (ls.size > 0) {
        QueuedRun e = ls.q[ls.head];
        if (++ls.head == ls.nrun)
            ls.head = 0;
        --ls.size;
        const std::size_t t = e.wake > next ? e.wake : next;
        next = t + 1;
        if (--e.rem > 0) {
            std::size_t tail = ls.head + ls.size;
            if (tail >= ls.nrun)
                tail -= ls.nrun;
            e.wake = static_cast<std::uint32_t>(t + d);
            ls.q[tail] = e;
            ++ls.size;
        }
    }
    return next;
}

} // namespace

WindowSchedule
PeAwareScheduler::schedulePhase(const PhaseWork &work,
                                const SchedConfig &config)
{
    return schedulePhase(work, config, nullptr);
}

WindowSchedule
PeAwareScheduler::schedulePhase(const PhaseWork &work,
                                const SchedConfig &config,
                                FreeSlotMasks *freeMasks)
{
    const unsigned pes = config.pesPerGroup();
    const unsigned d = config.rawDistance;

    WindowSchedule ws;
    ws.pass = work.pass;
    ws.window = work.window;
    ws.channels.resize(config.channels);
    if (freeMasks != nullptr) {
        freeMasks->clear();
        freeMasks->resize(config.channels);
    }

    // Shared scratch, sized once to the widest channel (sum of its
    // lanes' run counts).
    std::size_t max_runs = 0;
    for (unsigned ch = 0; ch < config.channels; ++ch) {
        std::size_t total = 0;
        for (unsigned pe = 0; pe < pes; ++pe)
            total +=
                work.lanes[static_cast<std::size_t>(ch) * pes + pe].size();
        max_runs = std::max(max_runs, total);
    }
    // Thread-local so consecutive phases (and schedule() calls) reuse
    // the same warm pages instead of re-faulting half a megabyte of
    // scratch per phase. Single-FIFO state is re-reset per channel, so
    // persistence is invisible to the result.
    static thread_local std::vector<QueuedRun> queue_buf;
    queue_buf.resize(max_runs);
    // Per-block composition scratch, reused across blocks and channels
    // so it stays cache-resident: the stall template is refilled and
    // the block's issues scattered into it at L2 cost, then the
    // finished block lands in the (cold) beat list with one streaming
    // copy — instead of paying read-for-ownership traffic on the whole
    // multi-MB list twice (template fill + issue stores).
    static thread_local std::vector<Beat> block_buf;

    const std::uint8_t full_mask =
        static_cast<std::uint8_t>((1u << pes) - 1u);

    std::array<LaneState, kMaxPesPerGroup> lane;
    for (unsigned ch = 0; ch < config.channels; ++ch) {
        ChannelWindowSchedule &cws = ws.channels[ch];

        std::size_t base = 0;
        for (unsigned pe = 0; pe < pes; ++pe) {
            LaneState &ls = lane[pe];
            ls.runs = work.lanes[static_cast<std::size_t>(ch) * pes + pe];
            ls.nrun = ls.runs.size();
            ls.q = queue_buf.data() + base;
            base += ls.nrun;
        }

        // Pass A: exact channel length. The last appended beat of the
        // original sweep is always an issue beat, so the length is the
        // latest lane end with no trailing stalls.
        std::size_t len = 0;
        for (unsigned pe = 0; pe < pes; ++pe) {
            LaneState &ls = lane[pe];
            ls.reset();
            len = std::max(len, laneEndBeat(ls, d));
        }
        if (len == 0)
            continue;

        // One exact allocation up front (capacity only — the beats are
        // composed block by block in the scratch buffer and appended,
        // so the cold storage is written exactly once).
        cws.beats.reserve(len);
        std::uint8_t *mask = nullptr;
        if (freeMasks != nullptr) {
            (*freeMasks)[ch].assign(len, full_mask);
            mask = (*freeMasks)[ch].data();
        }

        for (unsigned pe = 0; pe < pes; ++pe)
            lane[pe].reset();

        // Pass B: lane-major fill in L2-sized beat blocks, composed in
        // the scratch buffer (template refill + issue stores both hit
        // cache) and streamed out once per block.
        const Beat stall_beat{};
        for (std::size_t block = 0; block < len; block += kBlockBeats) {
            const std::size_t block_end =
                std::min(len, block + kBlockBeats);
            block_buf.assign(block_end - block, stall_beat);
            Beat *bb = block_buf.data() - block; // indexed by absolute t
            for (unsigned pe = 0; pe < pes; ++pe) {
                LaneState &ls = lane[pe];
                while (ls.size > 0) {
                    QueuedRun e = ls.q[ls.head];
                    const std::size_t t =
                        e.wake > ls.next ? e.wake : ls.next;
                    if (t >= block_end)
                        break; // lane resumes in a later block
                    if (++ls.head == ls.nrun)
                        ls.head = 0;
                    --ls.size;
                    ls.next = t + 1;
                    // Whole-slot aggregate store: the compiler emits
                    // one 16-byte write instead of seven field stores.
                    bb[t].slots[pe] =
                        Slot{work.vals[e.off], e.row, work.cols[e.off],
                             true, true, static_cast<std::uint8_t>(pe),
                             static_cast<std::uint8_t>(ch)};
                    if (mask != nullptr)
                        mask[t] &=
                            static_cast<std::uint8_t>(~(1u << pe));
                    if (--e.rem > 0) {
                        std::size_t tail = ls.head + ls.size;
                        if (tail >= ls.nrun)
                            tail -= ls.nrun;
                        e.wake = static_cast<std::uint32_t>(t + d);
                        ++e.off;
                        ls.q[tail] = e;
                        ++ls.size;
                    }
                }
            }
            cws.beats.append(block_buf.data(), block_end - block);
        }
    }
    return ws;
}

Schedule
PeAwareScheduler::schedule(const sparse::CsrMatrix &matrix) const
{
    std::vector<WindowSchedule> phases;
    for (const PhaseWork &work : buildPhaseWork(matrix, config_))
        phases.push_back(schedulePhase(work, config_));
    return finalize(matrix, name(), std::move(phases));
}

} // namespace sched
} // namespace chason
