/**
 * @file
 * PE-aware scheduler implementation.
 *
 * The round-robin row interleaving is implemented with a ready FIFO plus
 * a pending FIFO of (wake beat, row) pairs. Because the RAW distance is a
 * constant, wake times are issued in non-decreasing order and a FIFO
 * suffices — this keeps scheduling O(1) per beat, which matters for the
 * 800-matrix corpus experiments.
 */

#include "sched/pe_aware.h"

#include <deque>

namespace chason {
namespace sched {

WindowSchedule
PeAwareScheduler::schedulePhase(const PhaseWork &work,
                                const SchedConfig &config)
{
    const unsigned pes = config.pesPerGroup();
    const unsigned d = config.rawDistance;

    WindowSchedule ws;
    ws.pass = work.pass;
    ws.window = work.window;
    ws.channels.resize(config.channels);

    for (unsigned lane = 0; lane < config.lanes(); ++lane) {
        const unsigned ch = lane / pes;
        const unsigned pe = lane % pes;
        const std::vector<RowRun> &runs = work.lanes[lane];
        if (runs.empty())
            continue;
        ChannelWindowSchedule &cws = ws.channels[ch];

        std::size_t remaining = 0;
        for (const RowRun &run : runs)
            remaining += run.elems.size();

        std::vector<std::size_t> cursor(runs.size(), 0);

        // Rows eligible to issue now, in round-robin order.
        std::deque<std::size_t> ready;
        for (std::size_t idx = 0; idx < runs.size(); ++idx)
            ready.push_back(idx);
        // Rows waiting out the RAW distance; wake beats are monotone.
        std::deque<std::pair<std::size_t, std::size_t>> pending;

        std::size_t t = 0;
        while (remaining > 0) {
            while (!pending.empty() && pending.front().first <= t) {
                ready.push_back(pending.front().second);
                pending.pop_front();
            }

            if (cws.beats.size() <= t)
                cws.beats.resize(t + 1);
            if (!ready.empty()) {
                const std::size_t idx = ready.front();
                ready.pop_front();
                const RowRun &run = runs[idx];
                Slot &slot = cws.beats[t].slots[pe];
                slot.valid = true;
                slot.value = run.elems[cursor[idx]].second;
                slot.row = run.row;
                slot.col = run.elems[cursor[idx]].first;
                slot.pvt = true;
                slot.peSrc = static_cast<std::uint8_t>(pe);
                slot.chSrc = static_cast<std::uint8_t>(ch);
                ++cursor[idx];
                if (cursor[idx] < run.elems.size())
                    pending.emplace_back(t + d, idx);
                --remaining;
            }
            // else: leave the slot invalid — an explicit zero / stall.
            ++t;
        }
    }
    return ws;
}

Schedule
PeAwareScheduler::schedule(const sparse::CsrMatrix &matrix) const
{
    std::vector<WindowSchedule> phases;
    for (const PhaseWork &work : buildPhaseWork(matrix, config_))
        phases.push_back(schedulePhase(work, config_));
    return finalize(matrix, name(), std::move(phases));
}

} // namespace sched
} // namespace chason
