/**
 * @file
 * Element encoding implementation.
 */

#include "sched/element.h"

#include "common/logging.h"

namespace chason {
namespace sched {

EncodedElement
EncodedElement::pack(const DecodedElement &e)
{
    chason_assert(e.localRow <= ElementLayout::maxLocalRow(),
                  "local row %u exceeds 15 bits", e.localRow);
    chason_assert(e.localCol <= ElementLayout::maxLocalCol(),
                  "local col %u exceeds 13 bits", e.localCol);
    chason_assert(e.peSrc <= ElementLayout::maxPeSrc(),
                  "PE_src %u exceeds 3 bits", e.peSrc);

    std::uint64_t word = 0;
    word = insertBits(word, ElementLayout::kColLsb, ElementLayout::kColBits,
                      e.localCol);
    word = insertBits(word, ElementLayout::kPeSrcLsb,
                      ElementLayout::kPeSrcBits, e.peSrc);
    word = insertBits(word, ElementLayout::kPvtLsb, ElementLayout::kPvtBits,
                      e.pvt ? 1 : 0);
    word = insertBits(word, ElementLayout::kRowLsb, ElementLayout::kRowBits,
                      e.localRow);
    word = insertBits(word, ElementLayout::kValueLsb,
                      ElementLayout::kValueBits, floatToBits(e.value));
    return EncodedElement(word);
}

DecodedElement
EncodedElement::unpack() const
{
    DecodedElement e;
    e.localCol = static_cast<std::uint32_t>(
        extractBits(word_, ElementLayout::kColLsb, ElementLayout::kColBits));
    e.peSrc = static_cast<unsigned>(extractBits(
        word_, ElementLayout::kPeSrcLsb, ElementLayout::kPeSrcBits));
    e.pvt = extractBits(word_, ElementLayout::kPvtLsb,
                        ElementLayout::kPvtBits) != 0;
    e.localRow = static_cast<std::uint32_t>(
        extractBits(word_, ElementLayout::kRowLsb, ElementLayout::kRowBits));
    e.value = bitsToFloat(static_cast<std::uint32_t>(extractBits(
        word_, ElementLayout::kValueLsb, ElementLayout::kValueBits)));
    return e;
}

} // namespace sched
} // namespace chason
