/**
 * @file
 * Configuration shared by the schedulers and the architecture model.
 *
 * The defaults reproduce the paper's implementation: 16 HBM channels for
 * the sparse matrix, 8 PEs per PEG (FP32), a RAW/accumulation dependency
 * distance of 10 cycles (the U55c floating-point adder pipeline), column
 * windows of W = 8192 (13-bit column index) and up to 2^15 rows per lane
 * per pass (15-bit row index) — see Sections 3.2 and 4.1.
 */

#ifndef CHASON_SCHED_CONFIG_H_
#define CHASON_SCHED_CONFIG_H_

#include <cstdint>

#include "common/logging.h"

namespace chason {
namespace sched {

/** Element precision; sets how many elements fit in a 512-bit beat. */
enum class Precision
{
    Fp32, ///< 32-bit value + 32-bit metadata: 8 elements per beat
    Fp64, ///< 64-bit value + 32-bit metadata: 5 elements per beat
};

/** Hard upper bound on PEs per group (the FP32 beat width). */
inline constexpr unsigned kMaxPesPerGroup = 8;

/** Scheduling and architecture geometry. */
struct SchedConfig
{
    /** HBM channels streaming the sparse matrix. */
    unsigned channels = 16;

    /** Element precision (determines pesPerGroup unless overridden). */
    Precision precision = Precision::Fp32;

    /** PEs per PEG; 0 selects the precision default (8 FP32 / 5 FP64). */
    unsigned pesOverride = 0;

    /** RAW / accumulation dependency distance in cycles (Section 2.2). */
    unsigned rawDistance = 10;

    /** Column window size W (Section 4.1). */
    std::uint32_t windowCols = 8192;

    /**
     * Rows a lane's URAM can hold per pass. The 15-bit row index allows
     * up to 32768; the shipped Chasoň folds two logical ScUG banks per
     * physical URAM (scugSize 4, Section 4.5), which caps a pass at 4096
     * rows per lane — 524288 matrix rows.
     */
    std::uint32_t rowsPerLanePerPass = 4096;

    /**
     * CrHCS: how many next channels may donate non-zeros. 0 degenerates
     * to PE-aware scheduling; the paper implements 1 (Section 3.1) and
     * discusses 2-3 as a future extension (Section 6.1).
     */
    unsigned migrationDepth = 1;

    /** Active PEs per group. */
    unsigned
    pesPerGroup() const
    {
        if (pesOverride != 0)
            return pesOverride;
        return precision == Precision::Fp32 ? 8 : 5;
    }

    /** Total lanes = channels x PEs per group. */
    unsigned lanes() const { return channels * pesPerGroup(); }

    /** Rows covered by one pass. */
    std::uint32_t
    rowsPerPass() const
    {
        return rowsPerLanePerPass * lanes();
    }

    /** Validate invariants; panics on misconfiguration. */
    void
    validate() const
    {
        chason_assert(channels >= 1, "need at least one channel");
        chason_assert(pesPerGroup() >= 1 &&
                          pesPerGroup() <= kMaxPesPerGroup,
                      "pesPerGroup %u out of [1,%u]", pesPerGroup(),
                      kMaxPesPerGroup);
        chason_assert(rawDistance >= 1, "rawDistance must be >= 1");
        chason_assert(windowCols >= 1, "windowCols must be >= 1");
        chason_assert(rowsPerLanePerPass >= 1, "rows per lane >= 1");
        chason_assert(migrationDepth < channels,
                      "migrationDepth must be < channels");
    }
};

/** Static row-to-lane mapping (Eq. 1-2 generalized to 16 channels). */
struct LaneMap
{
    unsigned channels;
    unsigned pes;

    explicit LaneMap(const SchedConfig &cfg)
        : channels(cfg.channels), pes(cfg.pesPerGroup())
    {
    }

    unsigned lanes() const { return channels * pes; }

    /** Global lane of a row. */
    unsigned laneOf(std::uint32_t row) const { return row % lanes(); }

    /** Channel of a row. */
    unsigned channelOf(std::uint32_t row) const { return laneOf(row) / pes; }

    /** PE (within its PEG) of a row. */
    unsigned peOf(std::uint32_t row) const { return laneOf(row) % pes; }

    /** Row index within the lane (the URAM address within a pass). */
    std::uint32_t localRowOf(std::uint32_t row) const
    {
        return row / lanes();
    }

    /** Inverse mapping. */
    std::uint32_t
    globalRowOf(unsigned channel, unsigned pe, std::uint32_t local_row) const
    {
        return local_row * lanes() + channel * pes + pe;
    }
};

} // namespace sched
} // namespace chason

#endif // CHASON_SCHED_CONFIG_H_
