/**
 * @file
 * Cross-HBM-channel out-of-order scheduling — CrHCS (Section 3).
 *
 * CrHCS starts from the PE-aware schedule and fills each channel's stalls
 * with non-zeros migrated from the next channel(s). Migrated elements are
 * tagged (pvt=0, PE_src) so the architecture can segregate their partial
 * sums into the destination PE's shared-channel URAM group and reduce
 * them later (Section 4.2). Migration respects the RAW distance in the
 * destination: two elements of the same row that accumulate in the same
 * physical URAM bank — same destination PE and same source-PE URAM —
 * must be at least rawDistance beats apart (Section 3.3).
 *
 * Implementation notes (where the paper under-specifies):
 *  - migration runs as one beat-synchronous sweep: all channels fill a
 *    beat position together, each pulling from its donor's *tail* only
 *    while the donor still reaches beyond that position. This shrinks
 *    sources naturally (Fig. 5's contiguous repacking), cascades refills
 *    in the same pass (Fig. 5c), and keeps the PEG loads balanced by
 *    construction (Fig. 5d's "minimal load imbalance") — crucial since
 *    an element migrates at most once (only pvt elements are donors; the
 *    wire format's single pvt bit names a single source);
 *  - the eligibility scan over skipped donors is bounded (kLookahead) to
 *    keep scheduling linear; in practice the head donor is almost always
 *    eligible, matching the paper's observation that CrHCS "never fails
 *    to find a RAW dependency-free value".
 */

#ifndef CHASON_SCHED_CRHCS_H_
#define CHASON_SCHED_CRHCS_H_

#include "sched/scheduler.h"

namespace chason {
namespace sched {

/**
 * How the migration pass traverses the channels.
 *
 * The paper describes migration channel by channel (Fig. 5). A faithful
 * sequential-greedy pass, however, lets the first destination absorb a
 * heavy neighbour's entire tail; since an element migrates only once,
 * that destination becomes an un-relievable bottleneck when *all*
 * channels carry serialized tails (e.g. mycielskian12). The
 * beat-synchronous traversal fixes this by advancing all channels
 * together, so load balances by construction. Both are kept: the
 * sequential variant is the ablation that motivates the default
 * (bench_ablation_strategy).
 */
enum class MigrationStrategy
{
    BeatSynchronous,  ///< default: all channels sweep positions together
    SequentialGreedy, ///< Fig. 5's channel-by-channel reading
};

/**
 * The paper's cross-channel scheduler. Honors the full Scheduler
 * contract: schedule() is pure, reentrant and thread-safe, and the
 * chosen MigrationStrategy is part of name() so cached CrHCS and
 * sequential-greedy schedules never alias in core::ScheduleCache.
 */
class CrhcsScheduler : public Scheduler
{
  public:
    /** Donors examined per stall before giving up on that slot. */
    static constexpr std::size_t kLookahead = 32;

    explicit CrhcsScheduler(const SchedConfig &config,
                            MigrationStrategy strategy =
                                MigrationStrategy::BeatSynchronous)
        : Scheduler(config), strategy_(strategy)
    {
    }

    std::string
    name() const override
    {
        return strategy_ == MigrationStrategy::BeatSynchronous
            ? "crhcs"
            : "crhcs-sequential";
    }

    MigrationStrategy strategy() const { return strategy_; }

    /**
     * Worker count for scheduling the independent (pass, window) phases
     * in parallel. 0 (the default) resolves to the CHASON_SCHED_JOBS
     * environment variable, then CHASON_JOBS (the bench harness's
     * worker knob), falling back to the hardware thread count;
     * 1 forces the sequential path. Deliberately NOT part of SchedConfig
     * or name(): the parallel path is bit-identical to the sequential
     * one, so the jobs knob must not fragment core::ScheduleCache keys.
     */
    void setJobs(unsigned jobs) { jobs_ = jobs; }
    unsigned jobs() const { return jobs_; }

    Schedule schedule(const sparse::CsrMatrix &matrix) const override;

    /**
     * Apply cross-channel migration in place to a PE-aware phase.
     * Exposed for unit tests and the scheduling explorer example.
     */
    static void migratePhase(WindowSchedule &phase,
                             const SchedConfig &config,
                             MigrationStrategy strategy =
                                 MigrationStrategy::BeatSynchronous);

  private:
    /**
     * Balanced (beat-synchronous) migration driven by the free-slot
     * masks placement emits, so the sweep walks holes directly instead
     * of revisiting every beat. @p masks must describe @p phase exactly
     * (one byte per beat, bit p set iff PE p's slot is a stall) and is
     * kept in sync as slots fill; the phase must carry no trailing
     * stall beats. @p donorMasks mirrors the layout with bit p set iff
     * the slot holds a donor (valid private element); with @p fresh
     * true the phase is a fresh placement — @p donorMasks may then be
     * empty (it is derived as the complement of @p masks) and the
     * final trim is O(1) instead of walking donated tails. With
     * @p jobs > 1 the per-channel donor-pool setup is sharded over the
     * scheduling pool; the schedule bytes are bit-identical for every
     * jobs value.
     */
    static void migrateWithMasks(WindowSchedule &phase,
                                 const SchedConfig &config,
                                 FreeSlotMasks &masks,
                                 FreeSlotMasks &donorMasks, bool fresh,
                                 unsigned jobs);

    MigrationStrategy strategy_;
    unsigned jobs_ = 0; ///< 0 = auto (CHASON_SCHED_JOBS, CHASON_JOBS, hw)
};

} // namespace sched
} // namespace chason

#endif // CHASON_SCHED_CRHCS_H_
