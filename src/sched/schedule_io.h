/**
 * @file
 * Schedule serialization: the offline preprocessing artifact.
 *
 * On the real system the host preprocesses a matrix once and stores the
 * per-channel 64-bit streams that are later DMA'd into HBM. This module
 * writes and reads exactly that artifact: a small header plus, per
 * (pass, window) phase and per channel, the wire-encoded element stream
 * of Section 3.2 (8 words per 512-bit beat, stalls as zero words).
 *
 * Because the on-wire encoding is the paper's — one pvt bit and a
 * 3-bit PE_src — serialization is only defined for migration depth <= 1;
 * reading the artifact back reconstructs a Schedule that simulates
 * identically, which is the proof that the 64-bit format carries all
 * the information the datapath needs.
 */

#ifndef CHASON_SCHED_SCHEDULE_IO_H_
#define CHASON_SCHED_SCHEDULE_IO_H_

#include <iosfwd>
#include <string>

#include "sched/schedule.h"

namespace chason {
namespace sched {

/** Serialize @p schedule to a binary stream. */
void writeSchedule(const Schedule &schedule, std::ostream &out);

/** Parse a schedule back; fatal() on a malformed stream. */
Schedule readSchedule(std::istream &in);

/** File convenience wrappers. */
void writeScheduleFile(const Schedule &schedule, const std::string &path);
Schedule readScheduleFile(const std::string &path);

/**
 * Total artifact size in bytes (what the host must DMA to HBM for the
 * matrix streams — the "data list" footprint the paper's transfer
 * numbers count).
 */
std::uint64_t scheduleArtifactBytes(const Schedule &schedule);

} // namespace sched
} // namespace chason

#endif // CHASON_SCHED_SCHEDULE_IO_H_
