/**
 * @file
 * The 64-bit CrHCS sparse-element encoding (Section 3.2).
 *
 * Layout (bit 63 down to bit 0):
 *
 *   [63:32] 32-bit FP32 value
 *   [31:17] 15-bit local row index (URAM address within the lane)
 *   [16]     1-bit pvt flag (1 = element belongs to this channel)
 *   [15:13]  3-bit PE_src (originating PE for migrated elements)
 *   [12:0]  13-bit local column index (offset inside the 8192 window)
 *
 * Eight such words form one 512-bit HBM beat; the i-th word in the beat
 * is consumed by PE i of the channel's PEG.
 */

#ifndef CHASON_SCHED_ELEMENT_H_
#define CHASON_SCHED_ELEMENT_H_

#include <cstdint>

#include "common/bitfield.h"

namespace chason {
namespace sched {

/** Bit geometry of the encoding. */
struct ElementLayout
{
    static constexpr unsigned kColLsb = 0;
    static constexpr unsigned kColBits = 13;
    static constexpr unsigned kPeSrcLsb = 13;
    static constexpr unsigned kPeSrcBits = 3;
    static constexpr unsigned kPvtLsb = 16;
    static constexpr unsigned kPvtBits = 1;
    static constexpr unsigned kRowLsb = 17;
    static constexpr unsigned kRowBits = 15;
    static constexpr unsigned kValueLsb = 32;
    static constexpr unsigned kValueBits = 32;

    static constexpr std::uint32_t maxLocalRow()
    {
        return (1u << kRowBits) - 1;
    }
    static constexpr std::uint32_t maxLocalCol()
    {
        return (1u << kColBits) - 1;
    }
    static constexpr unsigned maxPeSrc()
    {
        return (1u << kPeSrcBits) - 1;
    }
};

/** Decoded view of one element. */
struct DecodedElement
{
    float value = 0.0f;
    std::uint32_t localRow = 0;
    std::uint32_t localCol = 0;
    bool pvt = true;
    unsigned peSrc = 0;

    friend bool operator==(const DecodedElement &,
                           const DecodedElement &) = default;
};

/**
 * One packed 64-bit sparse element. The all-zero word doubles as the
 * explicit stall marker the HLS designs stream (a zero value makes the
 * MAC a no-op; see Section 2.2).
 */
class EncodedElement
{
  public:
    EncodedElement() = default;

    explicit EncodedElement(std::uint64_t word) : word_(word) {}

    /** Pack the fields; panics if an index exceeds its field width. */
    static EncodedElement pack(const DecodedElement &e);

    /** Unpack all fields. */
    DecodedElement unpack() const;

    std::uint64_t word() const { return word_; }

    /** True if this word is the explicit stall marker. */
    bool isStall() const { return word_ == 0; }

    friend bool operator==(const EncodedElement &,
                           const EncodedElement &) = default;

  private:
    std::uint64_t word_ = 0;
};

} // namespace sched
} // namespace chason

#endif // CHASON_SCHED_ELEMENT_H_
