/**
 * @file
 * Schedule container implementation: phase-work bucketing and the wire
 * encoding round trip.
 */

#include "sched/schedule.h"

#include <algorithm>
#include <bit>
#include <cstring>

#if defined(__SSE2__)
#include <emmintrin.h>
#endif

#include "common/logging.h"

namespace chason {
namespace sched {

void
BeatList::streamCopy(Beat *dst, const Beat *src, std::size_t n)
{
#if defined(__SSE2__)
    // Heap Beat arrays are 16-byte aligned in practice (operator new
    // aligns to max_align_t and a Beat is 8 x 16 bytes), but the copy
    // must not rely on it — fall through to memcpy when not.
    if (((reinterpret_cast<std::uintptr_t>(dst) |
          reinterpret_cast<std::uintptr_t>(src)) & 15u) == 0) {
        const auto *s = reinterpret_cast<const __m128i *>(src);
        auto *d = reinterpret_cast<__m128i *>(dst);
        const std::size_t words = n * (sizeof(Beat) / 16);
        for (std::size_t i = 0; i < words; ++i)
            _mm_stream_si128(d + i, _mm_load_si128(s + i));
        // Order the streamed beats before anything reads them back.
        _mm_sfence();
        return;
    }
#endif
    std::memcpy(dst, src, n * sizeof(Beat));
}

unsigned
Beat::validCount(unsigned pes) const
{
    chason_assert(pes <= kMaxPesPerGroup, "pes out of range");
    unsigned count = 0;
    for (unsigned p = 0; p < pes; ++p) {
        if (slots[p].valid)
            ++count;
    }
    return count;
}

std::size_t
ChannelWindowSchedule::validSlots(unsigned pes) const
{
    std::size_t count = 0;
    for (const Beat &beat : beats)
        count += beat.validCount(pes);
    return count;
}

void
ChannelWindowSchedule::trimTrailingStalls(unsigned pes)
{
    while (!beats.empty() && beats.back().allStall(pes))
        beats.pop_back();
}

void
WindowSchedule::realign()
{
    alignedBeats = 0;
    for (const ChannelWindowSchedule &ch : channels)
        alignedBeats = std::max(alignedBeats, ch.length());
}

std::size_t
Schedule::totalAlignedBeats() const
{
    std::size_t total = 0;
    for (const WindowSchedule &phase : phases)
        total += phase.alignedBeats;
    return total;
}

std::size_t
Schedule::memoryBytes() const
{
    std::size_t bytes = sizeof(Schedule);
    for (const WindowSchedule &phase : phases) {
        bytes += sizeof(WindowSchedule);
        for (const ChannelWindowSchedule &ch : phase.channels)
            bytes += sizeof(ChannelWindowSchedule) +
                ch.beats.capacity() * sizeof(Beat);
    }
    return bytes;
}

std::uint32_t
Schedule::windowsPerPass() const
{
    return (cols + config.windowCols - 1) / config.windowCols;
}

std::uint32_t
Schedule::passes() const
{
    return (rows + config.rowsPerPass() - 1) / config.rowsPerPass();
}

PhaseWorkList
buildPhaseWork(const sparse::CsrMatrix &matrix, const SchedConfig &config)
{
    config.validate();
    const LaneMap map(config);
    const std::uint32_t windows =
        (matrix.cols() + config.windowCols - 1) / config.windowCols;
    const std::uint32_t passes =
        (matrix.rows() + config.rowsPerPass() - 1) / config.rowsPerPass();
    chason_assert(windows >= 1 || matrix.nnz() == 0,
                  "matrix with nnz needs at least one window");

    const std::size_t lanes = map.lanes();
    // cell index = (pass * windows + window) * lanes + lane
    const std::size_t phase_count =
        static_cast<std::size_t>(passes) * windows;
    const std::size_t cells = phase_count * lanes;

    const auto &row_ptr = matrix.rowPtr();
    const auto &col_idx = matrix.colIdx();
    const auto &values = matrix.values();
    const std::uint32_t wc = config.windowCols;
    const std::uint32_t rows_per_pass = config.rowsPerPass();
    // Power-of-two window widths (the common case) resolve the
    // per-segment window index with a shift; the hardware divide
    // otherwise costs ~20 cycles on each of the millions of segments
    // the two passes visit.
    const int wshift =
        (wc & (wc - 1)) == 0 ? std::countr_zero(wc) : -1;
    const auto window_of = [wc, wshift](std::uint32_t col) {
        return wshift >= 0 ? col >> wshift : col / wc;
    };

    // Counting pass: exact run / nnz totals per cell and per phase.
    // Column indices are sorted within a row, so each row splits into
    // consecutive window segments; a segment is delimited by one upper
    // column bound instead of a per-element division.
    std::vector<std::uint32_t> run_count(cells, 0);
    std::vector<std::size_t> cell_nnz(cells, 0);
    std::vector<std::size_t> phase_nnz(phase_count, 0);
    // Rows are visited in order, so the lane cycles and the pass steps
    // at fixed row boundaries; running counters replace the per-row
    // modulo / divide of laneOf() and rowsPerPass().
    unsigned lane = 0;
    std::uint32_t pass = 0, pass_row = 0;
    for (std::uint32_t r = 0; r < matrix.rows(); ++r) {
        const std::size_t row_cell_base =
            (static_cast<std::size_t>(pass) * windows) * lanes + lane;
        std::size_t i = row_ptr[r];
        const std::size_t end = row_ptr[r + 1];
        while (i < end) {
            const std::uint32_t w = window_of(col_idx[i]);
            const std::uint64_t bound =
                (static_cast<std::uint64_t>(w) + 1) * wc;
            std::size_t j = i + 1;
            while (j < end && col_idx[j] < bound)
                ++j;
            const std::size_t c =
                row_cell_base + static_cast<std::size_t>(w) * lanes;
            ++run_count[c];
            cell_nnz[c] += j - i;
            phase_nnz[static_cast<std::size_t>(pass) * windows + w] += j - i;
            i = j;
        }
        if (++lane == lanes)
            lane = 0;
        if (++pass_row == rows_per_pass) {
            pass_row = 0;
            ++pass;
        }
    }

    // One arena block holds every run; cells own contiguous sub-ranges.
    // Element data is re-packed per phase in the same (lane, run) order,
    // so each cell also gets a data cursor into its phase's arrays.
    std::size_t total_runs = 0;
    std::vector<std::size_t> cursor(cells);
    for (std::size_t c = 0; c < cells; ++c) {
        cursor[c] = total_runs;
        total_runs += run_count[c];
    }

    PhaseWorkList list;
    RowRun *runs = list.arena_.allocate<RowRun>(total_runs);
    std::vector<float *> phase_vals(phase_count, nullptr);
    std::vector<std::uint32_t *> phase_cols(phase_count, nullptr);
    std::vector<std::size_t> data_cursor(cells, 0);

    // Phase descriptors (empty phases omitted), per-lane span tables and
    // per-phase element buffers.
    for (std::size_t p = 0; p < phase_count; ++p) {
        if (phase_nnz[p] == 0)
            continue;
        PhaseWork pw;
        pw.pass = static_cast<std::uint32_t>(p / windows);
        pw.window = static_cast<std::uint32_t>(p % windows);
        pw.nnz = phase_nnz[p];
        phase_vals[p] = list.arena_.allocate<float>(phase_nnz[p]);
        phase_cols[p] = list.arena_.allocate<std::uint32_t>(phase_nnz[p]);
        pw.vals = phase_vals[p];
        pw.cols = phase_cols[p];
        auto *table =
            list.arena_.allocate<common::Span<const RowRun>>(lanes);
        std::size_t data_off = 0;
        for (std::size_t lane = 0; lane < lanes; ++lane) {
            const std::size_t c = p * lanes + lane;
            table[lane] = {runs + cursor[c], run_count[c]};
            data_cursor[c] = data_off;
            data_off += cell_nnz[c];
        }
        pw.lanes = {table, lanes};
        list.phases_.push_back(pw);
    }

    // Fill pass: same segmentation, writing each run slice and copying
    // its elements into the phase's contiguous buffers.
    lane = 0;
    pass = 0;
    pass_row = 0;
    for (std::uint32_t r = 0; r < matrix.rows(); ++r) {
        const std::size_t row_cell_base =
            (static_cast<std::size_t>(pass) * windows) * lanes + lane;
        std::size_t i = row_ptr[r];
        const std::size_t end = row_ptr[r + 1];
        while (i < end) {
            const std::uint32_t w = window_of(col_idx[i]);
            const std::uint64_t bound =
                (static_cast<std::uint64_t>(w) + 1) * wc;
            std::size_t j = i + 1;
            while (j < end && col_idx[j] < bound)
                ++j;
            const std::size_t c =
                row_cell_base + static_cast<std::size_t>(w) * lanes;
            const std::size_t p =
                static_cast<std::size_t>(pass) * windows + w;
            RowRun &run = runs[cursor[c]++];
            run.row = r;
            run.len = static_cast<std::uint32_t>(j - i);
            run.offset = data_cursor[c];
            // Runs average a handful of elements, so plain loops beat
            // the library copy's memmove dispatch here.
            float *dv = phase_vals[p] + data_cursor[c];
            std::uint32_t *dc = phase_cols[p] + data_cursor[c];
            for (std::size_t k = i; k < j; ++k) {
                *dv++ = values[k];
                *dc++ = col_idx[k];
            }
            data_cursor[c] += j - i;
            i = j;
        }
        if (++lane == lanes)
            lane = 0;
        if (++pass_row == rows_per_pass) {
            pass_row = 0;
            ++pass;
        }
    }
    return list;
}

std::vector<EncodedElement>
encodeChannelStream(const Schedule &schedule, std::size_t phase,
                    unsigned channel)
{
    chason_assert(phase < schedule.phases.size(), "phase out of range");
    chason_assert(schedule.config.migrationDepth <= 1,
                  "wire encoding only names the immediate next channel");
    const WindowSchedule &ws = schedule.phases[phase];
    chason_assert(channel < ws.channels.size(), "channel out of range");

    const LaneMap map(schedule.config);
    const unsigned pes = schedule.config.pesPerGroup();
    const std::uint32_t pass_base =
        ws.pass * schedule.config.rowsPerPass();
    const std::uint32_t col_base =
        ws.window * schedule.config.windowCols;

    std::vector<EncodedElement> words;
    const ChannelWindowSchedule &ch = ws.channels[channel];
    words.reserve(ch.beats.size() * pes);
    for (const Beat &beat : ch.beats) {
        for (unsigned p = 0; p < pes; ++p) {
            const Slot &slot = beat.slots[p];
            if (!slot.valid) {
                words.emplace_back(); // explicit zero / stall word
                continue;
            }
            DecodedElement e;
            e.value = slot.value;
            chason_assert(slot.row >= pass_base, "row below pass base");
            e.localRow = map.localRowOf(slot.row) -
                map.localRowOf(pass_base);
            chason_assert(slot.col >= col_base, "col below window base");
            e.localCol = slot.col - col_base;
            e.pvt = slot.pvt;
            e.peSrc = slot.peSrc;
            words.push_back(EncodedElement::pack(e));
        }
    }
    return words;
}

ChannelWindowSchedule
decodeChannelStream(const SchedConfig &config,
                    const std::vector<EncodedElement> &words,
                    std::uint32_t pass, std::uint32_t window,
                    unsigned channel)
{
    const LaneMap map(config);
    const unsigned pes = config.pesPerGroup();
    chason_assert(words.size() % pes == 0,
                  "stream length %zu is not a whole number of beats",
                  words.size());
    const std::uint32_t pass_base_local =
        map.localRowOf(pass * config.rowsPerPass());
    const std::uint32_t col_base = window * config.windowCols;

    ChannelWindowSchedule ch;
    ch.beats.resize(words.size() / pes);
    for (std::size_t i = 0; i < words.size(); ++i) {
        const unsigned p = static_cast<unsigned>(i % pes);
        Slot &slot = ch.beats[i / pes].slots[p];
        if (words[i].isStall()) {
            slot = Slot();
            continue;
        }
        const DecodedElement e = words[i].unpack();
        slot.valid = true;
        slot.value = e.value;
        slot.pvt = e.pvt;
        slot.peSrc = static_cast<std::uint8_t>(e.peSrc);
        // A migrated element came from the immediate next channel.
        const unsigned src_ch =
            e.pvt ? channel : (channel + 1) % config.channels;
        slot.chSrc = static_cast<std::uint8_t>(src_ch);
        const unsigned src_pe = e.pvt ? p : e.peSrc;
        slot.row = map.globalRowOf(src_ch, src_pe,
                                   e.localRow + pass_base_local);
        slot.col = e.localCol + col_base;
    }
    return ch;
}

} // namespace sched
} // namespace chason
