/**
 * @file
 * Schedule container implementation: phase-work bucketing and the wire
 * encoding round trip.
 */

#include "sched/schedule.h"

#include <algorithm>

#include "common/logging.h"

namespace chason {
namespace sched {

unsigned
Beat::validCount(unsigned pes) const
{
    chason_assert(pes <= kMaxPesPerGroup, "pes out of range");
    unsigned count = 0;
    for (unsigned p = 0; p < pes; ++p) {
        if (slots[p].valid)
            ++count;
    }
    return count;
}

std::size_t
ChannelWindowSchedule::validSlots(unsigned pes) const
{
    std::size_t count = 0;
    for (const Beat &beat : beats)
        count += beat.validCount(pes);
    return count;
}

void
ChannelWindowSchedule::trimTrailingStalls(unsigned pes)
{
    while (!beats.empty() && beats.back().allStall(pes))
        beats.pop_back();
}

void
WindowSchedule::realign()
{
    alignedBeats = 0;
    for (const ChannelWindowSchedule &ch : channels)
        alignedBeats = std::max(alignedBeats, ch.length());
}

std::size_t
Schedule::totalAlignedBeats() const
{
    std::size_t total = 0;
    for (const WindowSchedule &phase : phases)
        total += phase.alignedBeats;
    return total;
}

std::size_t
Schedule::memoryBytes() const
{
    std::size_t bytes = sizeof(Schedule);
    for (const WindowSchedule &phase : phases) {
        bytes += sizeof(WindowSchedule);
        for (const ChannelWindowSchedule &ch : phase.channels)
            bytes += sizeof(ChannelWindowSchedule) +
                ch.beats.capacity() * sizeof(Beat);
    }
    return bytes;
}

std::uint32_t
Schedule::windowsPerPass() const
{
    return (cols + config.windowCols - 1) / config.windowCols;
}

std::uint32_t
Schedule::passes() const
{
    return (rows + config.rowsPerPass() - 1) / config.rowsPerPass();
}

std::vector<PhaseWork>
buildPhaseWork(const sparse::CsrMatrix &matrix, const SchedConfig &config)
{
    config.validate();
    const LaneMap map(config);
    const std::uint32_t windows =
        (matrix.cols() + config.windowCols - 1) / config.windowCols;
    const std::uint32_t passes =
        (matrix.rows() + config.rowsPerPass() - 1) / config.rowsPerPass();
    chason_assert(windows >= 1 || matrix.nnz() == 0,
                  "matrix with nnz needs at least one window");

    // phase index = pass * windows + window
    std::vector<PhaseWork> work(
        static_cast<std::size_t>(passes) * windows);
    for (std::uint32_t pass = 0; pass < passes; ++pass) {
        for (std::uint32_t w = 0; w < windows; ++w) {
            PhaseWork &pw = work[static_cast<std::size_t>(pass) * windows
                                 + w];
            pw.pass = pass;
            pw.window = w;
            pw.lanes.resize(map.lanes());
        }
    }

    const auto &row_ptr = matrix.rowPtr();
    const auto &col_idx = matrix.colIdx();
    const auto &values = matrix.values();
    for (std::uint32_t r = 0; r < matrix.rows(); ++r) {
        const unsigned lane = map.laneOf(r);
        const std::uint32_t pass = r / config.rowsPerPass();
        // Column indices are sorted within the row, so the row's entries
        // split into consecutive window segments.
        std::size_t i = row_ptr[r];
        while (i < row_ptr[r + 1]) {
            const std::uint32_t w = col_idx[i] / config.windowCols;
            PhaseWork &pw =
                work[static_cast<std::size_t>(pass) * windows + w];
            RowRun run;
            run.row = r;
            while (i < row_ptr[r + 1] &&
                   col_idx[i] / config.windowCols == w) {
                run.elems.emplace_back(col_idx[i], values[i]);
                ++i;
            }
            pw.nnz += run.elems.size();
            pw.lanes[lane].push_back(std::move(run));
        }
    }

    // Drop empty phases.
    std::vector<PhaseWork> result;
    result.reserve(work.size());
    for (PhaseWork &pw : work) {
        if (pw.nnz > 0)
            result.push_back(std::move(pw));
    }
    return result;
}

std::vector<EncodedElement>
encodeChannelStream(const Schedule &schedule, std::size_t phase,
                    unsigned channel)
{
    chason_assert(phase < schedule.phases.size(), "phase out of range");
    chason_assert(schedule.config.migrationDepth <= 1,
                  "wire encoding only names the immediate next channel");
    const WindowSchedule &ws = schedule.phases[phase];
    chason_assert(channel < ws.channels.size(), "channel out of range");

    const LaneMap map(schedule.config);
    const unsigned pes = schedule.config.pesPerGroup();
    const std::uint32_t pass_base =
        ws.pass * schedule.config.rowsPerPass();
    const std::uint32_t col_base =
        ws.window * schedule.config.windowCols;

    std::vector<EncodedElement> words;
    const ChannelWindowSchedule &ch = ws.channels[channel];
    words.reserve(ch.beats.size() * pes);
    for (const Beat &beat : ch.beats) {
        for (unsigned p = 0; p < pes; ++p) {
            const Slot &slot = beat.slots[p];
            if (!slot.valid) {
                words.emplace_back(); // explicit zero / stall word
                continue;
            }
            DecodedElement e;
            e.value = slot.value;
            chason_assert(slot.row >= pass_base, "row below pass base");
            e.localRow = map.localRowOf(slot.row) -
                map.localRowOf(pass_base);
            chason_assert(slot.col >= col_base, "col below window base");
            e.localCol = slot.col - col_base;
            e.pvt = slot.pvt;
            e.peSrc = slot.peSrc;
            words.push_back(EncodedElement::pack(e));
        }
    }
    return words;
}

ChannelWindowSchedule
decodeChannelStream(const SchedConfig &config,
                    const std::vector<EncodedElement> &words,
                    std::uint32_t pass, std::uint32_t window,
                    unsigned channel)
{
    const LaneMap map(config);
    const unsigned pes = config.pesPerGroup();
    chason_assert(words.size() % pes == 0,
                  "stream length %zu is not a whole number of beats",
                  words.size());
    const std::uint32_t pass_base_local =
        map.localRowOf(pass * config.rowsPerPass());
    const std::uint32_t col_base = window * config.windowCols;

    ChannelWindowSchedule ch;
    ch.beats.resize(words.size() / pes);
    for (std::size_t i = 0; i < words.size(); ++i) {
        const unsigned p = static_cast<unsigned>(i % pes);
        Slot &slot = ch.beats[i / pes].slots[p];
        if (words[i].isStall()) {
            slot = Slot();
            continue;
        }
        const DecodedElement e = words[i].unpack();
        slot.valid = true;
        slot.value = e.value;
        slot.pvt = e.pvt;
        slot.peSrc = static_cast<std::uint8_t>(e.peSrc);
        // A migrated element came from the immediate next channel.
        const unsigned src_ch =
            e.pvt ? channel : (channel + 1) % config.channels;
        slot.chSrc = static_cast<std::uint8_t>(src_ch);
        const unsigned src_pe = e.pvt ? p : e.peSrc;
        slot.row = map.globalRowOf(src_ch, src_pe,
                                   e.localRow + pass_base_local);
        slot.col = e.localCol + col_base;
    }
    return ch;
}

} // namespace sched
} // namespace chason
