/**
 * @file
 * PE-aware OoO non-zero scheduling — the Serpens/Sextans/LevelST scheme
 * (Section 2.2, Fig. 2b).
 *
 * Rows mapped to a lane are interleaved round-robin so that consecutive
 * elements of the same row are at least rawDistance beats apart. When no
 * row is eligible at a beat, an explicit zero (stall) is emitted to keep
 * the HLS pipeline at II=1. The scheme never looks outside a lane's own
 * rows — the intra-channel restriction CrHCS lifts.
 */

#ifndef CHASON_SCHED_PE_AWARE_H_
#define CHASON_SCHED_PE_AWARE_H_

#include "sched/scheduler.h"

namespace chason {
namespace sched {

/**
 * Serpens' intra-channel out-of-order scheduler. Honors the full
 * Scheduler contract: schedule() is pure, reentrant and thread-safe.
 */
class PeAwareScheduler : public Scheduler
{
  public:
    explicit PeAwareScheduler(const SchedConfig &config)
        : Scheduler(config)
    {
    }

    std::string name() const override { return "pe-aware"; }

    Schedule schedule(const sparse::CsrMatrix &matrix) const override;

    /**
     * Schedule one phase's lanes into per-channel beat lists. Shared
     * with CrhcsScheduler, which post-processes this result.
     */
    static WindowSchedule schedulePhase(const PhaseWork &work,
                                        const SchedConfig &config);

    /**
     * As above, additionally filling @p freeMasks (when non-null) with
     * the phase's per-channel free-slot bitmaps — one byte per beat,
     * bit p set iff PE p's slot is a stall. CrhcsScheduler's migration
     * pass consumes the masks so it never rescans placed beats.
     */
    static WindowSchedule schedulePhase(const PhaseWork &work,
                                        const SchedConfig &config,
                                        FreeSlotMasks *freeMasks);
};

} // namespace sched
} // namespace chason

#endif // CHASON_SCHED_PE_AWARE_H_
