/**
 * @file
 * Schedule analysis implementation.
 */

#include "sched/analyzer.h"

#include <algorithm>

namespace chason {
namespace sched {

double
ScheduleStats::meanPegUnderutilization() const
{
    if (perPegUnderutilization.empty())
        return 0.0;
    double sum = 0.0;
    for (double u : perPegUnderutilization)
        sum += u;
    return sum / static_cast<double>(perPegUnderutilization.size());
}

double
ScheduleStats::pegUnderutilizationSpread() const
{
    if (perPegUnderutilization.empty())
        return 0.0;
    const auto [lo, hi] = std::minmax_element(
        perPegUnderutilization.begin(), perPegUnderutilization.end());
    return *hi - *lo;
}

ScheduleStats
analyze(const Schedule &schedule)
{
    const unsigned pes = schedule.config.pesPerGroup();
    const unsigned channels = schedule.config.channels;

    ScheduleStats stats;
    stats.phases = schedule.phases.size();
    std::vector<std::size_t> valid_per_ch(channels, 0);
    std::vector<std::size_t> slots_per_ch(channels, 0);

    for (const WindowSchedule &phase : schedule.phases) {
        stats.streamBeatsPerChannel += phase.alignedBeats;
        for (unsigned ch = 0; ch < channels; ++ch) {
            valid_per_ch[ch] += phase.channels[ch].validSlots(pes);
            slots_per_ch[ch] += phase.alignedBeats * pes;
        }
    }

    for (unsigned ch = 0; ch < channels; ++ch) {
        stats.nnz += valid_per_ch[ch];
        stats.totalSlots += slots_per_ch[ch];
        const std::size_t stalls = slots_per_ch[ch] - valid_per_ch[ch];
        stats.stalls += stalls;
        stats.perPegUnderutilization.push_back(
            slots_per_ch[ch] == 0
                ? 0.0
                : 100.0 * static_cast<double>(stalls) /
                      static_cast<double>(slots_per_ch[ch]));
    }

    stats.underutilizationPercent =
        stats.totalSlots == 0
            ? 0.0
            : 100.0 * static_cast<double>(stats.stalls) /
                  static_cast<double>(stats.totalSlots);
    stats.matrixBeats =
        static_cast<std::uint64_t>(stats.streamBeatsPerChannel) * channels;
    stats.matrixBytes = stats.matrixBeats * 64;
    return stats;
}

// validateSchedule() is defined in verify/verifier.cc (library
// chason_verify): it is a strict wrapper over the static schedule
// verifier, which owns the single implementation of the architectural
// invariants. chason_sched cannot link chason_verify without a cycle,
// so the definition lives there.

} // namespace sched
} // namespace chason
