/**
 * @file
 * Schedule analysis implementation.
 */

#include "sched/analyzer.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "common/logging.h"

namespace chason {
namespace sched {

double
ScheduleStats::meanPegUnderutilization() const
{
    if (perPegUnderutilization.empty())
        return 0.0;
    double sum = 0.0;
    for (double u : perPegUnderutilization)
        sum += u;
    return sum / static_cast<double>(perPegUnderutilization.size());
}

double
ScheduleStats::pegUnderutilizationSpread() const
{
    if (perPegUnderutilization.empty())
        return 0.0;
    const auto [lo, hi] = std::minmax_element(
        perPegUnderutilization.begin(), perPegUnderutilization.end());
    return *hi - *lo;
}

ScheduleStats
analyze(const Schedule &schedule)
{
    const unsigned pes = schedule.config.pesPerGroup();
    const unsigned channels = schedule.config.channels;

    ScheduleStats stats;
    stats.phases = schedule.phases.size();
    std::vector<std::size_t> valid_per_ch(channels, 0);
    std::vector<std::size_t> slots_per_ch(channels, 0);

    for (const WindowSchedule &phase : schedule.phases) {
        stats.streamBeatsPerChannel += phase.alignedBeats;
        for (unsigned ch = 0; ch < channels; ++ch) {
            valid_per_ch[ch] += phase.channels[ch].validSlots(pes);
            slots_per_ch[ch] += phase.alignedBeats * pes;
        }
    }

    for (unsigned ch = 0; ch < channels; ++ch) {
        stats.nnz += valid_per_ch[ch];
        stats.totalSlots += slots_per_ch[ch];
        const std::size_t stalls = slots_per_ch[ch] - valid_per_ch[ch];
        stats.stalls += stalls;
        stats.perPegUnderutilization.push_back(
            slots_per_ch[ch] == 0
                ? 0.0
                : 100.0 * static_cast<double>(stalls) /
                      static_cast<double>(slots_per_ch[ch]));
    }

    stats.underutilizationPercent =
        stats.totalSlots == 0
            ? 0.0
            : 100.0 * static_cast<double>(stats.stalls) /
                  static_cast<double>(stats.totalSlots);
    stats.matrixBeats =
        static_cast<std::uint64_t>(stats.streamBeatsPerChannel) * channels;
    stats.matrixBytes = stats.matrixBeats * 64;
    return stats;
}

void
validateSchedule(const Schedule &schedule, const sparse::CsrMatrix &matrix)
{
    const SchedConfig &cfg = schedule.config;
    const LaneMap map(cfg);
    const unsigned pes = cfg.pesPerGroup();
    const unsigned channels = cfg.channels;

    // Expected elements: (row, col) -> value.
    std::unordered_map<std::uint64_t, float> expected;
    expected.reserve(matrix.nnz());
    for (std::uint32_t r = 0; r < matrix.rows(); ++r) {
        for (std::size_t i = matrix.rowPtr()[r]; i < matrix.rowPtr()[r + 1];
             ++i) {
            expected[(static_cast<std::uint64_t>(r) << 32) |
                     matrix.colIdx()[i]] = matrix.values()[i];
        }
    }

    std::size_t seen = 0;
    for (const WindowSchedule &phase : schedule.phases) {
        chason_assert(phase.channels.size() == channels,
                      "phase has %zu channels, config says %u",
                      phase.channels.size(), channels);
        // bank -> last write beat within this phase
        std::unordered_map<std::uint64_t, std::size_t> last_write;

        const std::uint32_t col_lo = phase.window * cfg.windowCols;
        const std::uint32_t row_lo = phase.pass * cfg.rowsPerPass();

        for (unsigned ch = 0; ch < channels; ++ch) {
            const ChannelWindowSchedule &cws = phase.channels[ch];
            chason_assert(cws.length() <= phase.alignedBeats,
                          "channel %u longer than aligned length", ch);
            for (std::size_t t = 0; t < cws.length(); ++t) {
                for (unsigned p = 0; p < pes; ++p) {
                    const Slot &slot = cws.beats[t].slots[p];
                    if (!slot.valid)
                        continue;

                    // Source mapping invariants.
                    chason_assert(map.channelOf(slot.row) == slot.chSrc &&
                                      map.peOf(slot.row) == slot.peSrc,
                                  "slot source (%u,%u) does not match row "
                                  "%u's lane", slot.chSrc, slot.peSrc,
                                  slot.row);
                    if (slot.pvt) {
                        chason_assert(slot.chSrc == ch && slot.peSrc == p,
                                      "pvt slot for row %u streamed on "
                                      "(%u,%u)", slot.row, ch, p);
                    } else {
                        const unsigned dist =
                            (slot.chSrc + channels - ch) % channels;
                        chason_assert(dist >= 1 &&
                                          dist <= cfg.migrationDepth,
                                      "migrated slot from %u on %u "
                                      "exceeds depth %u", slot.chSrc, ch,
                                      cfg.migrationDepth);
                    }

                    // Window / pass residency and encoding field widths.
                    chason_assert(slot.col >= col_lo &&
                                      slot.col - col_lo < cfg.windowCols,
                                  "col %u outside window %u", slot.col,
                                  phase.window);
                    chason_assert(slot.row >= row_lo &&
                                      slot.row - row_lo < cfg.rowsPerPass(),
                                  "row %u outside pass %u", slot.row,
                                  phase.pass);

                    // RAW distance on the physical accumulator bank.
                    const std::uint64_t bank =
                        ((static_cast<std::uint64_t>(ch) * pes + p)
                         << 32) | slot.row;
                    auto it = last_write.find(bank);
                    if (it != last_write.end()) {
                        chason_assert(it->second + cfg.rawDistance <= t,
                                      "RAW violation: row %u written at "
                                      "beats %zu and %zu on (%u,%u)",
                                      slot.row, it->second, t, ch, p);
                    }
                    last_write[bank] = t;

                    // Element accounting.
                    const std::uint64_t key =
                        (static_cast<std::uint64_t>(slot.row) << 32) |
                        slot.col;
                    auto found = expected.find(key);
                    chason_assert(found != expected.end(),
                                  "unexpected or duplicated element "
                                  "(%u,%u)", slot.row, slot.col);
                    chason_assert(found->second == slot.value,
                                  "value mismatch at (%u,%u)", slot.row,
                                  slot.col);
                    expected.erase(found);
                    ++seen;
                }
            }
        }
    }

    chason_assert(seen == matrix.nnz(),
                  "schedule covers %zu of %zu non-zeros", seen,
                  matrix.nnz());
    chason_assert(expected.empty(), "%zu elements missing from schedule",
                  expected.size());
}

} // namespace sched
} // namespace chason
