/**
 * @file
 * Schedule data structures: what an offline scheduler produces and the
 * architecture simulator consumes.
 *
 * A schedule is organized as (pass, window) phases. Within a phase every
 * matrix channel holds a list of 512-bit beats; a beat carries one slot
 * per PE of the channel's PEG. Invalid slots are the explicit zeros /
 * stalls of Section 2.2. Phases execute sequentially (the x window is
 * reloaded in between); inside a phase all channels stream in lockstep
 * for `alignedBeats` beats (channel lists are resized to the longest one,
 * Section 3.1).
 */

#ifndef CHASON_SCHED_SCHEDULE_H_
#define CHASON_SCHED_SCHEDULE_H_

#include <array>
#include <cstdint>
#include <memory>
#include <new>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/arena.h"
#include "common/pagepool.h"
#include "sched/config.h"
#include "sched/element.h"
#include "sparse/formats.h"

namespace chason {
namespace sched {

/** One PE-slot of a beat. */
struct Slot
{
    float value = 0.0f;
    std::uint32_t row = 0;  ///< global row index
    std::uint32_t col = 0;  ///< global column index
    bool valid = false;     ///< false = stall / explicit zero
    bool pvt = true;        ///< belongs to the channel it is streamed on
    std::uint8_t peSrc = 0; ///< originating PE (meaningful when !pvt)
    std::uint8_t chSrc = 0; ///< originating channel (== own channel if pvt)
};

/** One 512-bit beat: a slot for each PE of the PEG. */
struct Beat
{
    std::array<Slot, kMaxPesPerGroup> slots;

    /** Number of valid (non-stall) slots among the first @p pes. */
    unsigned validCount(unsigned pes) const;

    /** True if none of the first @p pes slots is valid. */
    bool allStall(unsigned pes) const { return validCount(pes) == 0; }
};

// The CHSA artifact format (sched/artifact.h) stores Beat arrays as raw
// bytes and the zero-copy loader aliases them straight out of the file
// mapping, so the in-memory layout IS the on-disk layout. These pins
// turn a layout drift into a compile error instead of a silently
// incompatible artifact.
static_assert(sizeof(Slot) == 16, "Slot layout is pinned by CHSA v1");
static_assert(sizeof(Beat) == 16 * kMaxPesPerGroup,
              "Beat layout is pinned by CHSA v1");
static_assert(std::is_trivially_copyable_v<Beat>,
              "beats are serialized as raw bytes");

namespace detail {

/**
 * std::allocator, except no-argument (default-)insertion constructs
 * nothing at all: BeatList grows its tail uninitialized and fills it
 * with one streaming copy (BeatList::append), instead of having the
 * vector pre-write the beats — which would drag every cache line
 * through read-for-ownership right before the copy overwrites it.
 * Restricted to the trivially copyable Beat, whose bytes carry no
 * invariants; every argumented insertion (copy, fill, assign)
 * constructs normally.
 *
 * Storage comes from common::PagePool: beat buffers are the bulk of a
 * schedule's footprint and dominate the process's page-fault bill, so
 * recycling them across phases and schedule() calls keeps the
 * placement write path on warm pages.
 */
template <class T>
struct NoInitAlloc
{
    using value_type = T;

    NoInitAlloc() = default;
    template <class U>
    NoInitAlloc(const NoInitAlloc<U> &) noexcept
    {
    }

    T *allocate(std::size_t n)
    {
        return static_cast<T *>(common::pagePoolAlloc(n * sizeof(T)));
    }
    void deallocate(T *p, std::size_t n)
    {
        common::pagePoolFree(p, n * sizeof(T));
    }

    template <class U>
    void construct(U *) noexcept
    {
    }
    template <class U, class... Args>
    void construct(U *p, Args &&...args)
    {
        ::new (static_cast<void *>(p)) U(std::forward<Args>(args)...);
    }

    template <class U>
    bool operator==(const NoInitAlloc<U> &) const noexcept
    {
        return true;
    }
    template <class U>
    bool operator!=(const NoInitAlloc<U> &) const noexcept
    {
        return false;
    }
};

} // namespace detail

/**
 * Beat storage that either owns a vector or aliases immutable external
 * memory (a CHSA artifact mapping). The vector-like API keeps every
 * scheduler/mutator call site unchanged: const accessors serve the
 * aliased view directly (the simulator and verifier never copy), while
 * any mutating call first detaches — copies the view into owned
 * storage — so a loaded schedule degrades gracefully to a private copy
 * the moment something writes to it (e.g. corruption injection in
 * tests). An aliasing list shares ownership of its backing mapping, so
 * it can never dangle even if copied out of its Schedule.
 */
class BeatList
{
  public:
    BeatList() = default;

    /** A list aliasing @p count beats at @p data, kept alive by
     *  @p backing (the artifact mapping). */
    static BeatList
    aliasing(const Beat *data, std::size_t count,
             std::shared_ptr<const void> backing)
    {
        BeatList list;
        list.view_ = data;
        list.viewCount_ = count;
        list.backing_ = std::move(backing);
        return list;
    }

    std::size_t size() const { return view_ ? viewCount_ : owned_.size(); }
    bool empty() const { return size() == 0; }

    /** Beats the storage can hold; for a view, its mapped extent. */
    std::size_t capacity() const
    {
        return view_ ? viewCount_ : owned_.capacity();
    }

    /** True while the beats alias external (artifact) memory. */
    bool aliased() const { return view_ != nullptr; }

    const Beat *data() const { return view_ ? view_ : owned_.data(); }
    const Beat *begin() const { return data(); }
    const Beat *end() const { return data() + size(); }
    const Beat &operator[](std::size_t i) const { return data()[i]; }
    const Beat &back() const { return data()[size() - 1]; }

    Beat *begin() { detach(); return owned_.data(); }
    Beat *end() { detach(); return owned_.data() + owned_.size(); }
    Beat &operator[](std::size_t i) { detach(); return owned_[i]; }
    Beat &back() { detach(); return owned_.back(); }

    void reserve(std::size_t n) { detach(); owned_.reserve(n); }

    /** Resize; beats appended by growth are zero-stall (Beat{}). */
    void resize(std::size_t n) { detach(); owned_.resize(n, Beat{}); }

    /**
     * Append @p n copies of @p beat. A fill-insert of the trivially
     * copyable Beat vectorizes to near-memcpy stores, an order of
     * magnitude faster than resize()'s per-slot value-init loop —
     * placement bulk-appends stall templates through this.
     */
    void append(std::size_t n, const Beat &beat)
    {
        detach();
        owned_.insert(owned_.end(), n, beat);
    }

    /**
     * Append @p n beats from @p src with non-temporal stores. The tail
     * is grown uninitialized (NoInitAlloc) and the copy streams past
     * the cache, so the cold storage takes pure write traffic — no
     * read-for-ownership and no eviction of the scratch the block was
     * composed in. The capacity must already cover the growth (one
     * exact reserve() up front); a reallocation here would re-copy
     * everything appended so far.
     */
    void append(const Beat *src, std::size_t n)
    {
        detach();
        const std::size_t old = owned_.size();
        owned_.resize(old + n); // default-insert: leaves beats raw
        streamCopy(owned_.data() + old, src, n);
    }

    Beat &emplace_back()
    {
        detach();
        owned_.push_back(Beat{});
        return owned_.back();
    }
    void push_back(const Beat &beat) { detach(); owned_.push_back(beat); }
    void pop_back() { detach(); owned_.pop_back(); }

    void clear()
    {
        owned_.clear();
        view_ = nullptr;
        viewCount_ = 0;
        backing_.reset();
    }

  private:
    /** Copy an aliased view into owned storage before mutation. */
    void detach()
    {
        if (view_ == nullptr)
            return;
        owned_.assign(view_, view_ + viewCount_);
        view_ = nullptr;
        viewCount_ = 0;
        backing_.reset();
    }

    /** memcpy via non-temporal stores (plain memcpy off x86-64). */
    static void streamCopy(Beat *dst, const Beat *src, std::size_t n);

    std::vector<Beat, detail::NoInitAlloc<Beat>> owned_;
    const Beat *view_ = nullptr;
    std::size_t viewCount_ = 0;
    std::shared_ptr<const void> backing_;
};

/**
 * Free-slot bitmap of one phase: masks[ch][t] has bit p set iff slot p
 * of channel ch's beat t is a stall (invalid slot). Placement emits it
 * as a byproduct so that migration can walk the holes directly instead
 * of rescanning every beat's slots.
 */
using FreeSlotMasks = std::vector<std::vector<std::uint8_t>>;

/** The beat list one channel streams during one phase. */
struct ChannelWindowSchedule
{
    BeatList beats;

    std::size_t length() const { return beats.size(); }

    /** Valid slots over the channel's own list. */
    std::size_t validSlots(unsigned pes) const;

    /** Drop trailing beats that carry no valid slot. */
    void trimTrailingStalls(unsigned pes);
};

/** One (pass, window) phase across all matrix channels. */
struct WindowSchedule
{
    std::uint32_t pass = 0;   ///< row pass index
    std::uint32_t window = 0; ///< column window index
    std::vector<ChannelWindowSchedule> channels;

    /**
     * Beats every channel streams this phase (channels shorter than this
     * are padded with stall beats on the wire).
     */
    std::size_t alignedBeats = 0;

    /** Recompute alignedBeats from the current channel lengths. */
    void realign();
};

/** A complete schedule for one matrix. */
struct Schedule
{
    SchedConfig config;
    std::string scheduler;   ///< producing algorithm, for reports
    std::uint32_t rows = 0;
    std::uint32_t cols = 0;
    std::size_t nnz = 0;
    std::vector<WindowSchedule> phases;

    /** Sum of alignedBeats over all phases. */
    std::size_t totalAlignedBeats() const;

    /**
     * Approximate resident size in bytes (struct overhead + beat
     * storage). Used by core::ScheduleCache to enforce its byte
     * budget; distinct from scheduleArtifactBytes(), which sizes the
     * *wire* artifact DMA'd to the device.
     */
    std::size_t memoryBytes() const;

    /** Column windows per pass. */
    std::uint32_t windowsPerPass() const;

    /** Number of row passes. */
    std::uint32_t passes() const;
};

/**
 * Serialize one channel's beats of one phase into the 64-bit stream the
 * hardware would read from HBM (8 words per beat, stall slots as zero
 * words). Local row/col indices are derived with the schedule's LaneMap
 * and window geometry. Only valid for migrationDepth <= 1 (the 1-bit pvt
 * flag cannot name a farther source).
 */
std::vector<EncodedElement>
encodeChannelStream(const Schedule &schedule, std::size_t phase,
                    unsigned channel);

/**
 * Inverse of encodeChannelStream: rebuild slots from the wire encoding.
 * Global row/col are reconstructed from (channel, pe, pass, window); used
 * by the simulator's encoded-input mode and by round-trip tests.
 */
ChannelWindowSchedule
decodeChannelStream(const SchedConfig &config,
                    const std::vector<EncodedElement> &words,
                    std::uint32_t pass, std::uint32_t window,
                    unsigned channel);

/**
 * One row's non-zeros inside one (pass, window, lane) bucket. The run is
 * a contiguous slice of the owning PhaseWork's cols/vals arrays: (row,
 * offset, length). Resolve elements through PhaseWork::col / ::val.
 */
struct RowRun
{
    std::uint32_t row = 0; ///< global row
    std::uint32_t len = 0; ///< non-zeros in this run
    std::size_t offset = 0; ///< first element in the phase's cols/vals
};

/**
 * Work for one (pass, window): per-lane row runs plus the phase's
 * element data, re-packed contiguously in (lane, run) order. The copy
 * pays one streaming pass up front so that placement — which visits
 * runs round-robin — reads values and columns sequentially instead of
 * gathering from phase-strided slices of the whole matrix (a measured
 * ~40% of placement time on the large R-MAT tier). Views into the
 * owning PhaseWorkList's arena.
 */
struct PhaseWork
{
    std::uint32_t pass = 0;
    std::uint32_t window = 0;
    common::Span<const common::Span<const RowRun>> lanes; ///< [lane] -> runs
    std::size_t nnz = 0;
    const std::uint32_t *cols = nullptr; ///< phase column indices
    const float *vals = nullptr;         ///< phase values

    /** Global column of element @p i of @p run. */
    std::uint32_t col(const RowRun &run, std::uint32_t i) const
    {
        return cols[run.offset + i];
    }

    /** Value of element @p i of @p run. */
    float val(const RowRun &run, std::uint32_t i) const
    {
        return vals[run.offset + i];
    }
};

/**
 * The phase-work decomposition of one matrix: phase descriptors plus the
 * arena that owns every RowRun table they point into. Move-only;
 * iterable like the vector it replaces.
 */
class PhaseWorkList
{
  public:
    PhaseWorkList() = default;
    PhaseWorkList(PhaseWorkList &&) = default;
    PhaseWorkList &operator=(PhaseWorkList &&) = default;

    std::size_t size() const { return phases_.size(); }
    bool empty() const { return phases_.empty(); }
    const PhaseWork &operator[](std::size_t i) const { return phases_[i]; }
    std::vector<PhaseWork>::const_iterator begin() const
    {
        return phases_.begin();
    }
    std::vector<PhaseWork>::const_iterator end() const
    {
        return phases_.end();
    }

  private:
    friend PhaseWorkList buildPhaseWork(const sparse::CsrMatrix &,
                                        const SchedConfig &);

    std::vector<PhaseWork> phases_;
    common::Arena arena_;
};

/**
 * Split a matrix into per-phase, per-lane work according to the config's
 * lane map, window size and pass height. Phases are ordered pass-major;
 * phases with no non-zeros are omitted (an empty window costs neither an
 * x reload nor stream beats).
 *
 * Two cache-friendly sequential passes over the CSR arrays: a counting
 * pass sizes every (phase, lane) run table exactly, then a fill pass
 * writes the RowRun slices and the re-packed element data into arena
 * blocks — no per-row or per-nz heap allocation. The result owns copies
 * of the element data it references and is independent of @p matrix's
 * lifetime.
 */
PhaseWorkList buildPhaseWork(const sparse::CsrMatrix &matrix,
                             const SchedConfig &config);

} // namespace sched
} // namespace chason

#endif // CHASON_SCHED_SCHEDULE_H_
