/**
 * @file
 * Schedule serialization implementation.
 *
 * Layout (little-endian):
 *   u64 magic "CHASONS1"
 *   u32 channels, u32 pes, u32 rawDistance, u32 windowCols,
 *   u32 rowsPerLanePerPass, u32 migrationDepth, u32 precision
 *   u32 rows, u32 cols, u64 nnz
 *   u32 scheduler-name length + bytes
 *   u32 phase count, then per phase:
 *     u32 pass, u32 window, u64 alignedBeats
 *     per channel: u64 word count + that many u64 wire words
 */

#include "sched/schedule_io.h"

#include <algorithm>
#include <fstream>
#include <istream>
#include <ostream>

#include "common/logging.h"

namespace chason {
namespace sched {

namespace {

constexpr std::uint64_t kMagic = 0x3153'4e4f'5341'4843ull; // "CHASONS1"

template <typename T>
void
put(std::ostream &out, T value)
{
    out.write(reinterpret_cast<const char *>(&value), sizeof(value));
}

template <typename T>
T
get(std::istream &in)
{
    T value{};
    in.read(reinterpret_cast<char *>(&value), sizeof(value));
    if (!in)
        chason_fatal("schedule artifact: truncated stream");
    return value;
}

} // namespace

void
writeSchedule(const Schedule &schedule, std::ostream &out)
{
    const SchedConfig &cfg = schedule.config;
    chason_assert(cfg.migrationDepth <= 1,
                  "the wire format only names the immediate next channel");

    put<std::uint64_t>(out, kMagic);
    put<std::uint32_t>(out, cfg.channels);
    put<std::uint32_t>(out, cfg.pesPerGroup());
    put<std::uint32_t>(out, cfg.rawDistance);
    put<std::uint32_t>(out, cfg.windowCols);
    put<std::uint32_t>(out, cfg.rowsPerLanePerPass);
    put<std::uint32_t>(out, cfg.migrationDepth);
    put<std::uint32_t>(out,
                       cfg.precision == Precision::Fp32 ? 32u : 64u);
    put<std::uint32_t>(out, schedule.rows);
    put<std::uint32_t>(out, schedule.cols);
    put<std::uint64_t>(out, schedule.nnz);

    put<std::uint32_t>(out,
                       static_cast<std::uint32_t>(
                           schedule.scheduler.size()));
    out.write(schedule.scheduler.data(),
              static_cast<std::streamsize>(schedule.scheduler.size()));

    put<std::uint32_t>(out,
                       static_cast<std::uint32_t>(schedule.phases.size()));
    for (std::size_t ph = 0; ph < schedule.phases.size(); ++ph) {
        const WindowSchedule &phase = schedule.phases[ph];
        put<std::uint32_t>(out, phase.pass);
        put<std::uint32_t>(out, phase.window);
        put<std::uint64_t>(out, phase.alignedBeats);
        for (unsigned ch = 0; ch < cfg.channels; ++ch) {
            const std::vector<EncodedElement> words =
                encodeChannelStream(schedule, ph, ch);
            put<std::uint64_t>(out, words.size());
            for (const EncodedElement &word : words)
                put<std::uint64_t>(out, word.word());
        }
    }
    if (!out)
        chason_fatal("schedule artifact: write failed");
}

Schedule
readSchedule(std::istream &in)
{
    if (get<std::uint64_t>(in) != kMagic)
        chason_fatal("schedule artifact: bad magic");

    Schedule schedule;
    SchedConfig &cfg = schedule.config;
    cfg.channels = get<std::uint32_t>(in);
    cfg.pesOverride = get<std::uint32_t>(in);
    cfg.rawDistance = get<std::uint32_t>(in);
    cfg.windowCols = get<std::uint32_t>(in);
    cfg.rowsPerLanePerPass = get<std::uint32_t>(in);
    cfg.migrationDepth = get<std::uint32_t>(in);
    cfg.precision = get<std::uint32_t>(in) == 32 ? Precision::Fp32
                                                 : Precision::Fp64;
    cfg.validate();
    schedule.rows = get<std::uint32_t>(in);
    schedule.cols = get<std::uint32_t>(in);
    schedule.nnz = get<std::uint64_t>(in);

    const auto name_len = get<std::uint32_t>(in);
    chason_assert(name_len < 256, "unreasonable scheduler name length");
    schedule.scheduler.resize(name_len);
    in.read(schedule.scheduler.data(), name_len);
    if (!in)
        chason_fatal("schedule artifact: truncated name");

    const auto phase_count = get<std::uint32_t>(in);
    schedule.phases.reserve(phase_count);
    for (std::uint32_t ph = 0; ph < phase_count; ++ph) {
        WindowSchedule phase;
        phase.pass = get<std::uint32_t>(in);
        phase.window = get<std::uint32_t>(in);
        phase.alignedBeats = get<std::uint64_t>(in);
        phase.channels.resize(cfg.channels);
        for (unsigned ch = 0; ch < cfg.channels; ++ch) {
            const std::uint64_t count = get<std::uint64_t>(in);
            std::vector<EncodedElement> words;
            // Cap the speculative reserve: count comes from the file,
            // and a corrupted header must not demand an exabyte up
            // front. A genuine oversized count then fails as a clean
            // "truncated stream" instead of a bad_alloc.
            words.reserve(static_cast<std::size_t>(
                std::min<std::uint64_t>(count, 1u << 20)));
            for (std::uint64_t i = 0; i < count; ++i)
                words.emplace_back(get<std::uint64_t>(in));
            phase.channels[ch] = decodeChannelStream(
                cfg, words, phase.pass, phase.window, ch);
        }
        std::size_t longest = 0;
        for (const auto &channel : phase.channels)
            longest = std::max(longest, channel.length());
        chason_assert(phase.alignedBeats >= longest,
                      "artifact phase shorter than its channels");
        schedule.phases.push_back(std::move(phase));
    }
    return schedule;
}

void
writeScheduleFile(const Schedule &schedule, const std::string &path)
{
    std::ofstream out(path, std::ios::binary);
    if (!out)
        chason_fatal("cannot create schedule artifact '%s'", path.c_str());
    writeSchedule(schedule, out);
}

Schedule
readScheduleFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        chason_fatal("cannot open schedule artifact '%s'", path.c_str());
    return readSchedule(in);
}

std::uint64_t
scheduleArtifactBytes(const Schedule &schedule)
{
    // The HBM-resident payload: every channel stores alignedBeats beats
    // of 64 bytes per phase (stall words included — this is exactly the
    // "data list" whose padding Serpens pays for and CrHCS trims).
    return static_cast<std::uint64_t>(schedule.totalAlignedBeats()) *
        schedule.config.channels * 64;
}

} // namespace sched
} // namespace chason
