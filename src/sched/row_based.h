/**
 * @file
 * Row-based non-zero scheduling (Section 2.2, Fig. 1 / Fig. 2a).
 *
 * All non-zeros of a row are issued to the row's PE back to back, so
 * consecutive elements of the same row serialize on the accumulator's
 * RAW distance: the pipeline sits idle for rawDistance-1 beats between
 * them. This is the weakest baseline and exists to reproduce the paper's
 * motivation numbers (0.10 non-zeros per cycle in the Fig. 2 example).
 */

#ifndef CHASON_SCHED_ROW_BASED_H_
#define CHASON_SCHED_ROW_BASED_H_

#include "sched/scheduler.h"

namespace chason {
namespace sched {

/**
 * In-order, one-row-at-a-time scheduler. Honors the full Scheduler
 * contract: schedule() is pure, reentrant and thread-safe.
 */
class RowBasedScheduler : public Scheduler
{
  public:
    explicit RowBasedScheduler(const SchedConfig &config)
        : Scheduler(config)
    {
    }

    std::string name() const override { return "row-based"; }

    Schedule schedule(const sparse::CsrMatrix &matrix) const override;
};

} // namespace sched
} // namespace chason

#endif // CHASON_SCHED_ROW_BASED_H_
