/**
 * @file
 * CrHCS implementation.
 *
 * Migration runs as one beat-synchronous pass over the PE-aware phase:
 * beat positions are visited in order, and at each position every
 * channel fills its free slots with elements pulled from the *tail* of
 * its donor channel(s), but only while the donor's remaining list is
 * still longer than the position being filled. Because all channels
 * advance together, load balances by construction: a channel keeps
 * absorbing exactly until it would become the new bottleneck, and a slot
 * freed by donation deeper in a list becomes fillable from the next
 * channel when the sweep reaches it — the cascading refill of Fig. 5
 * happens in the same pass. Elements migrate at most once (only pvt
 * elements are donors), matching the single pvt bit of the wire format.
 *
 * Performance notes. Donor pools are lazy: instead of snapshotting every
 * donor of a channel up front (an O(beats × pes) copy per phase), a pool
 * keeps a scan cursor walking the source from its tail and materializes
 * at most kLookahead candidates at a time. This is observationally
 * identical to the eager snapshot because a slot only ever transitions
 * pvt→cleared (donated, and removed from the pool in the same step) or
 * invalid→migrant (pvt=0, never a donor) during the sweep — both are
 * skipped by the scan either way. The sweep also skips a destination's
 * fill loop entirely when no donor reaches beyond the current beat, and
 * terminates as soon as every pool is exhausted; neither shortcut can
 * change the result, since every individual take is already guarded by
 * the same remaining-length test.
 *
 * The (pass, window) phases are mutually independent, so schedule()
 * fans them out over a shared core::ThreadPool when jobs > 1. Each
 * phase's placement + migration is a pure function of (PhaseWork,
 * config), and results land in a pre-sized vector slot keyed by phase
 * index — so the parallel path is bit-identical to the sequential one
 * and the Scheduler purity contract (and ScheduleCache keying) is
 * preserved. Trace sinks are thread-local; when one is active the
 * sequential path is used so span attribution stays complete.
 */

#include "sched/crhcs.h"

#include <algorithm>
#include <cstdlib>
#include <limits>
#include <vector>

#include "core/thread_pool.h"
#include "sched/pe_aware.h"
#include "trace/trace.h"

namespace chason {
namespace sched {

namespace {

/** A migratable element still sitting in its source channel. */
struct Donor
{
    std::size_t beat;
    unsigned pe;
    Slot slot;
};

/** Key for a destination RAW tracker: (row, destination PE). */
std::uint64_t
bankKey(std::uint32_t row, unsigned pe)
{
    return (static_cast<std::uint64_t>(row) << 3) | pe;
}

/**
 * Open-addressing (linear probe) map from bankKey to the last beat the
 * bank was written. The migration inner loop queries this once per
 * candidate donor, which made std::unordered_map's allocation-per-node
 * and pointer chasing a measurable slice of scheduling time; a flat
 * power-of-two table with Fibonacci hashing is 3-4x cheaper and needs
 * no per-entry allocation. bankKey is < 2^35, so ~0 (all ones) is a
 * safe empty marker.
 */
class RawTracker
{
  public:
    RawTracker() { rehash(kInitialSlots); }

    /** Last beat the bank was written, or nullptr if never. */
    const std::size_t *
    find(std::uint64_t key) const
    {
        std::size_t i = indexOf(key);
        while (keys_[i] != kEmpty) {
            if (keys_[i] == key)
                return &vals_[i];
            i = (i + 1) & mask_;
        }
        return nullptr;
    }

    void
    put(std::uint64_t key, std::size_t val)
    {
        std::size_t i = indexOf(key);
        while (keys_[i] != kEmpty) {
            if (keys_[i] == key) {
                vals_[i] = val;
                return;
            }
            i = (i + 1) & mask_;
        }
        keys_[i] = key;
        vals_[i] = val;
        if (++used_ * 4 > keys_.size() * 3)
            rehash(keys_.size() * 2);
    }

  private:
    static constexpr std::uint64_t kEmpty = ~std::uint64_t{0};
    static constexpr std::size_t kInitialSlots = 1024;

    std::size_t
    indexOf(std::uint64_t key) const
    {
        return static_cast<std::size_t>(
                   (key * 0x9E3779B97F4A7C15ull) >> 32) &
            mask_;
    }

    void
    rehash(std::size_t slots)
    {
        std::vector<std::uint64_t> old_keys = std::move(keys_);
        std::vector<std::size_t> old_vals = std::move(vals_);
        keys_.assign(slots, kEmpty);
        vals_.assign(slots, 0);
        mask_ = slots - 1;
        for (std::size_t i = 0; i < old_keys.size(); ++i) {
            if (old_keys[i] == kEmpty)
                continue;
            std::size_t j = indexOf(old_keys[i]);
            while (keys_[j] != kEmpty)
                j = (j + 1) & mask_;
            keys_[j] = old_keys[i];
            vals_[j] = old_vals[i];
        }
    }

    std::vector<std::uint64_t> keys_;
    std::vector<std::size_t> vals_;
    std::size_t mask_ = 0;
    std::size_t used_ = 0;
};

/**
 * Donor bookkeeping for one source channel: a lazy tail-first scan that
 * keeps at most `lookahead` candidates materialized. The window always
 * holds the deepest remaining donors in (beat desc, pe asc) order — the
 * exact order the eager snapshot used.
 *
 * Invariant: the window is refilled after construction and after every
 * take, so it is empty only when the channel has no donors left. That
 * makes empty() and remainingLength() — which the sweep calls once per
 * (beat, destination) — O(1) reads instead of scan re-entries.
 *
 * version() counts every mutation (donor materialized or taken). The
 * sweep uses it to memoize failed takes: as long as the version is
 * unchanged, the window holds the same candidates, and RAW stamps only
 * ever move later, so a take that failed at beat t must keep failing
 * until the earliest-unblock beat the failure reported.
 */
class DonorPool
{
  public:
    DonorPool(const ChannelWindowSchedule &ch, unsigned pes)
        : ch_(&ch), pes_(pes),
          scanBeat_(static_cast<std::ptrdiff_t>(ch.length()) - 1)
    {
        fill(1);
    }

    bool
    empty() const
    {
        return window_.empty();
    }

    /**
     * The source list's length if its trailing donated slots were
     * trimmed right now (deepest remaining donor + 1). The source may
     * also hold migrated-in elements it received during the sweep, but
     * those carry pvt=0 and are never donors, so the scan skips them.
     */
    std::size_t
    remainingLength() const
    {
        return window_.empty() ? 0 : window_.front().beat + 1;
    }

    /** Mutation counter; changes whenever the candidate set changes. */
    std::uint64_t
    version() const
    {
        return version_;
    }

    /**
     * Find, among the first @p lookahead donors (deepest first), one
     * whose row may be written on destination PE @p pe at beat @p t
     * given the RAW tracker @p last_place; remove and return it. On
     * failure, @p unblock_beat receives the earliest beat at which any
     * of the scanned candidates stops being RAW-blocked.
     */
    bool
    take(unsigned pe, std::size_t t, unsigned raw_distance,
         std::size_t lookahead, const RawTracker &last_place, Donor &out,
         std::size_t &unblock_beat)
    {
        fill(lookahead);
        const std::size_t limit = std::min(lookahead, window_.size());
        std::size_t unblock = std::numeric_limits<std::size_t>::max();
        for (std::size_t k = 0; k < limit; ++k) {
            const Donor &d = window_[k];
            const std::size_t *found =
                last_place.find(bankKey(d.slot.row, pe));
            if (found == nullptr || *found + raw_distance <= t) {
                out = d;
                window_.erase(window_.begin() +
                              static_cast<std::ptrdiff_t>(k));
                ++version_;
                fill(1);
                return true;
            }
            unblock = std::min(unblock, *found + raw_distance);
        }
        unblock_beat = unblock;
        return false;
    }

  private:
    /** Advance the tail scan until @p want donors are materialized. */
    void
    fill(std::size_t want)
    {
        while (window_.size() < want && scanBeat_ >= 0) {
            const Slot &slot =
                ch_->beats[static_cast<std::size_t>(scanBeat_)]
                    .slots[scanPe_];
            if (slot.valid && slot.pvt) {
                window_.push_back(
                    {static_cast<std::size_t>(scanBeat_), scanPe_, slot});
                ++version_;
            }
            if (++scanPe_ >= pes_) {
                scanPe_ = 0;
                --scanBeat_;
            }
        }
    }

    const ChannelWindowSchedule *ch_;
    unsigned pes_;
    std::ptrdiff_t scanBeat_; ///< next beat the scan will visit
    unsigned scanPe_ = 0;     ///< next pe the scan will visit
    std::uint64_t version_ = 0;
    std::vector<Donor> window_;
};

/**
 * Sequential-greedy traversal (the ablation): destinations are filled
 * one after the other, each draining its donors as far as the donor
 * remains longer. Kept for bench_ablation_strategy; see
 * MigrationStrategy for why this loses on uniformly-heavy inputs.
 */
void
migrateSequential(WindowSchedule &phase, const SchedConfig &config)
{
    const unsigned channels = config.channels;
    const unsigned pes = config.pesPerGroup();

    for (unsigned dst = 0; dst < channels; ++dst) {
        ChannelWindowSchedule &dst_ch = phase.channels[dst];
        RawTracker last_place;
        for (unsigned depth = 1; depth <= config.migrationDepth;
             ++depth) {
            const unsigned src = (dst + depth) % channels;
            if (src == dst)
                break;
            phase.channels[src].trimTrailingStalls(pes);
            DonorPool pool(phase.channels[src], pes);
            for (std::size_t t = 0; !pool.empty(); ++t) {
                if (t >= dst_ch.length()) {
                    if (pool.remainingLength() <= dst_ch.length())
                        break; // absorbing more just moves the bottleneck
                    dst_ch.beats.emplace_back();
                }
                for (unsigned p = 0; p < pes && !pool.empty(); ++p) {
                    Slot &slot = dst_ch.beats[t].slots[p];
                    if (slot.valid)
                        continue;
                    if (pool.remainingLength() <= t + 1)
                        break;
                    Donor donor;
                    std::size_t unblock = 0;
                    if (!pool.take(p, t, config.rawDistance,
                                   CrhcsScheduler::kLookahead,
                                   last_place, donor, unblock)) {
                        continue;
                    }
                    slot = donor.slot;
                    slot.pvt = false;
                    slot.peSrc = static_cast<std::uint8_t>(donor.pe);
                    slot.chSrc = static_cast<std::uint8_t>(src);
                    last_place.put(bankKey(slot.row, p), t);
                    phase.channels[src]
                        .beats[donor.beat]
                        .slots[donor.pe] = Slot();
                }
            }
            phase.channels[src].trimTrailingStalls(pes);
        }
        dst_ch.trimTrailingStalls(pes);
    }
}

/**
 * 0 = auto: CHASON_SCHED_JOBS, then CHASON_JOBS, then the hardware
 * thread count. CHASON_JOBS is the knob the bench harness documents
 * for every worker pool; honoring it here keeps one environment
 * variable in control of all parallelism (the more specific
 * CHASON_SCHED_JOBS still wins when both are set).
 */
unsigned
resolveJobs(unsigned jobs)
{
    if (jobs != 0)
        return jobs;
    for (const char *name : {"CHASON_SCHED_JOBS", "CHASON_JOBS"}) {
        if (const char *env = std::getenv(name)) {
            const long v = std::strtol(env, nullptr, 10);
            if (v > 0)
                return static_cast<unsigned>(v);
        }
    }
    return core::ThreadPool::defaultWorkers();
}

/**
 * Shared pool for phase fan-out. Separate from BatchEngine's pool on
 * purpose: a BatchEngine worker calling schedule() blocks in
 * parallelFor on *this* pool, which is safe, whereas recursively
 * waiting on its own pool would deadlock. Sized on first use, at least
 * as wide as the request that created it.
 */
core::ThreadPool &
schedulingPool(unsigned requested)
{
    static core::ThreadPool pool(
        std::max(requested, core::ThreadPool::defaultWorkers()));
    return pool;
}

} // namespace

void
CrhcsScheduler::migratePhase(WindowSchedule &phase,
                             const SchedConfig &config,
                             MigrationStrategy strategy)
{
    const unsigned channels = config.channels;
    const unsigned pes = config.pesPerGroup();
    if (config.migrationDepth == 0 || channels < 2) {
        for (ChannelWindowSchedule &ch : phase.channels)
            ch.trimTrailingStalls(pes);
        phase.realign();
        return;
    }

    for (ChannelWindowSchedule &ch : phase.channels)
        ch.trimTrailingStalls(pes);

    if (strategy == MigrationStrategy::SequentialGreedy) {
        migrateSequential(phase, config);
        for (ChannelWindowSchedule &ch : phase.channels)
            ch.trimTrailingStalls(pes);
        phase.realign();
        return;
    }

    // Donor pools and per-destination RAW trackers.
    std::vector<DonorPool> pool;
    pool.reserve(channels);
    for (unsigned ch = 0; ch < channels; ++ch)
        pool.emplace_back(phase.channels[ch], pes);
    std::vector<RawTracker> last_place(channels);

    // Failed-take memo per (destination, PE): a take that scanned its
    // whole lookahead and found every candidate RAW-blocked keeps
    // failing — with the identical result — until either the candidate
    // set changes (pool version) or the sweep reaches the earliest
    // unblock beat the failure reported. RAW stamps are monotone (puts
    // only ever store later beats), so skipping the re-scan cannot
    // change the outcome; it removes roughly half the tracker probes of
    // the sweep.
    std::vector<std::size_t> retry_beat(
        static_cast<std::size_t>(channels) * pes, 0);
    std::vector<std::uint64_t> retry_ver(
        static_cast<std::size_t>(channels) * pes,
        std::numeric_limits<std::uint64_t>::max());

    // Beat-synchronous sweep. At beat t a channel may (a) fill free
    // slots within its current list, or (b) append one beat — but only
    // while a donor channel's remaining list reaches beyond t, so no
    // channel ever grows past the emerging balanced makespan.
    for (std::size_t t = 0;; ++t) {
        bool any_open = false;
        for (unsigned dst = 0; dst < channels; ++dst) {
            ChannelWindowSchedule &dst_ch = phase.channels[dst];

            // Does any donor channel still have work beyond beat t?
            bool donor_beyond = false;
            for (unsigned depth = 1; depth <= config.migrationDepth;
                 ++depth) {
                const unsigned src = (dst + depth) % channels;
                if (src == dst)
                    break;
                if (pool[src].remainingLength() > t + 1) {
                    donor_beyond = true;
                    break;
                }
            }

            if (t >= dst_ch.length()) {
                if (!donor_beyond)
                    continue; // nothing to gain by extending
                dst_ch.beats.emplace_back();
            } else if (t + 1 < dst_ch.length()) {
                any_open = true; // own beats still ahead of the sweep
            }
            if (!donor_beyond)
                continue; // every take below would fail its length guard
            any_open = true;

            for (unsigned p = 0; p < pes; ++p) {
                Slot &slot = dst_ch.beats[t].slots[p];
                if (slot.valid)
                    continue;
                const std::size_t dp =
                    static_cast<std::size_t>(dst) * pes + p;
                std::uint64_t chain_ver = 0;
                for (unsigned depth = 1; depth <= config.migrationDepth;
                     ++depth) {
                    const unsigned s = (dst + depth) % channels;
                    if (s == dst)
                        break;
                    chain_ver += pool[s].version();
                }
                if (retry_ver[dp] == chain_ver && t < retry_beat[dp])
                    continue; // memoized failure still holds
                Donor donor;
                bool taken = false;
                unsigned src = 0;
                std::size_t unblock =
                    std::numeric_limits<std::size_t>::max();
                for (unsigned depth = 1;
                     depth <= config.migrationDepth && !taken; ++depth) {
                    src = (dst + depth) % channels;
                    if (src == dst)
                        break;
                    // Pull only while the donor list still reaches
                    // beyond this beat: otherwise moving the element
                    // cannot shrink the makespan.
                    if (pool[src].remainingLength() <= t + 1)
                        continue;
                    std::size_t pool_unblock =
                        std::numeric_limits<std::size_t>::max();
                    taken = pool[src].take(p, t, config.rawDistance,
                                           kLookahead, last_place[dst],
                                           donor, pool_unblock);
                    unblock = std::min(unblock, pool_unblock);
                }
                if (!taken) {
                    retry_ver[dp] = chain_ver;
                    retry_beat[dp] = unblock;
                    continue;
                }
                slot = donor.slot;
                slot.pvt = false;
                slot.peSrc = static_cast<std::uint8_t>(donor.pe);
                slot.chSrc = static_cast<std::uint8_t>(src);
                last_place[dst].put(bankKey(slot.row, p), t);
                phase.channels[src].beats[donor.beat].slots[donor.pe] =
                    Slot();
            }
        }
        if (!any_open)
            break;
        // Once every pool is dry no later beat can change anything —
        // skip the remaining (pure bookkeeping) sweep iterations.
        bool donors_left = false;
        for (unsigned ch = 0; ch < channels && !donors_left; ++ch)
            donors_left = !pool[ch].empty();
        if (!donors_left)
            break;
    }

    for (ChannelWindowSchedule &ch : phase.channels)
        ch.trimTrailingStalls(pes);
    phase.realign();
}

Schedule
CrhcsScheduler::schedule(const sparse::CsrMatrix &matrix) const
{
    // Scheduler phase timings: one host span per offline stage, plus
    // an aggregate split of the per-phase loop into its PE-aware
    // placement and cross-channel migration halves — the two costs the
    // preprocessing analysis (bench_preprocessing_cost) compares.
    trace::TraceSink *sink = trace::activeSink();
    double t0 = sink ? sink->nowUs() : 0.0;
    const PhaseWorkList work_list = buildPhaseWork(matrix, config_);
    if (sink) {
        trace::SpanEvent span;
        span.name = "crhcs.build_phase_work";
        span.begin = t0;
        span.dur = sink->nowUs() - t0;
        span.track = trace::hostTrack();
        sink->recordSpan(std::move(span));
        sink->addCounter("crhcs.phases", work_list.size());
    }

    std::vector<WindowSchedule> phases(work_list.size());
    const unsigned jobs = resolveJobs(jobs_);
    if (sink == nullptr && jobs > 1 && work_list.size() > 1) {
        // Phases are independent; order is restored by indexing, so
        // the result is bit-identical to the sequential loop below.
        schedulingPool(jobs).parallelFor(
            work_list.size(), [&](std::size_t i) {
                phases[i] =
                    PeAwareScheduler::schedulePhase(work_list[i], config_);
                migratePhase(phases[i], config_, strategy_);
            });
        return finalize(matrix, name(), std::move(phases));
    }

    double place_us = 0.0, migrate_us = 0.0;
    for (std::size_t i = 0; i < work_list.size(); ++i) {
        double p0 = sink ? sink->nowUs() : 0.0;
        phases[i] = PeAwareScheduler::schedulePhase(work_list[i],
                                                    config_);
        double p1 = sink ? sink->nowUs() : 0.0;
        migratePhase(phases[i], config_, strategy_);
        if (sink) {
            place_us += p1 - p0;
            migrate_us += sink->nowUs() - p1;
        }
    }
    if (sink) {
        trace::SpanEvent place;
        place.name = "crhcs.pe_aware_placement";
        place.begin = t0;
        place.dur = place_us;
        place.track = trace::hostTrack();
        sink->recordSpan(std::move(place));
        trace::SpanEvent migrate;
        migrate.name = "crhcs.migration";
        migrate.begin = t0 + place_us;
        migrate.dur = migrate_us;
        migrate.track = trace::hostTrack();
        sink->recordSpan(std::move(migrate));
    }
    return finalize(matrix, name(), std::move(phases));
}

} // namespace sched
} // namespace chason
