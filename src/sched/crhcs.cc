/**
 * @file
 * CrHCS implementation.
 *
 * Migration runs as one beat-synchronous pass over the PE-aware phase:
 * beat positions are visited in order, and at each position every
 * channel fills its free slots with elements pulled from the *tail* of
 * its donor channel(s), but only while the donor's remaining list is
 * still longer than the position being filled. Because all channels
 * advance together, load balances by construction: a channel keeps
 * absorbing exactly until it would become the new bottleneck, and a slot
 * freed by donation deeper in a list becomes fillable from the next
 * channel when the sweep reaches it — the cascading refill of Fig. 5
 * happens in the same pass. Elements migrate at most once (only pvt
 * elements are donors), matching the single pvt bit of the wire format.
 *
 * Performance notes. Donor pools are lazy: instead of snapshotting every
 * donor of a channel up front (an O(beats × pes) copy per phase), a pool
 * keeps a scan cursor walking the source from its tail and materializes
 * at most kLookahead candidates at a time. This is observationally
 * identical to the eager snapshot because a slot only ever transitions
 * pvt→cleared (donated, and removed from the pool in the same step) or
 * invalid→migrant (pvt=0, never a donor) during the sweep — both are
 * skipped by the scan either way. The sweep itself is event-driven: it
 * consumes the free-slot masks placement emits and jumps from hole to
 * hole (plus each channel's extension point) instead of crossing every
 * beat, visiting exactly the positions where the beat-synchronous
 * order could act — see migrateWithMasks for the equivalence argument,
 * including why a destination whose donors no longer reach beyond the
 * sweep can be dropped permanently and when a freed source slot is
 * visible to the remainder of the sweep.
 *
 * The (pass, window) phases are mutually independent, so schedule()
 * fans them out over a shared core::ThreadPool when jobs > 1. Each
 * phase's placement + migration is a pure function of (PhaseWork,
 * config), and results land in a pre-sized vector slot keyed by phase
 * index — so the parallel path is bit-identical to the sequential one
 * and the Scheduler purity contract (and ScheduleCache keying) is
 * preserved. Trace sinks are thread-local; when one is active the
 * sequential path is used so span attribution stays complete.
 */

#include "sched/crhcs.h"

#include <algorithm>
#include <bit>
#include <cstring>
#include <limits>
#include <vector>

#include "common/env.h"
#include "core/thread_pool.h"
#include "sched/pe_aware.h"
#include "trace/trace.h"

namespace chason {
namespace sched {

namespace {


/** A migratable element still sitting in its source channel. 32-bit
 *  indices keep the entry at 24 bytes (a 2^32-beat channel would be a
 *  half-terabyte schedule), so shifting the candidate window is cheap. */
struct Donor
{
    std::uint32_t beat;
    std::uint32_t pe;
    Slot slot;
};

/** Key for a destination RAW tracker: (row, destination PE). */
std::uint64_t
bankKey(std::uint32_t row, unsigned pe)
{
    return (static_cast<std::uint64_t>(row) << 3) | pe;
}

/**
 * Open-addressing (linear probe) map from bankKey to the last beat the
 * bank was written. The migration inner loop queries this once per
 * candidate donor, which made std::unordered_map's allocation-per-node
 * and pointer chasing a measurable slice of scheduling time; a flat
 * power-of-two table with Fibonacci hashing is 3-4x cheaper and needs
 * no per-entry allocation. bankKey is < 2^35, so ~0 (all ones) is a
 * safe empty marker.
 */
class RawTracker
{
  public:
    RawTracker() { rehash(kInitialSlots); }

    /** Last beat bank (row, pe) was written, or kNoBeat if never;
     *  @p t is unused (this tracker remembers everything — the
     *  sequential traversal revisits early beats, so nothing can be
     *  aged out). */
    std::uint64_t
    findLast(std::uint32_t row, unsigned pe, std::size_t) const
    {
        const std::uint64_t *found = find(bankKey(row, pe));
        return found != nullptr ? *found : ~std::uint64_t{0};
    }

    /** Last beat the bank was written, or nullptr if never. */
    const std::uint64_t *
    find(std::uint64_t key) const
    {
        std::size_t i = indexOf(key);
        while (entries_[i].key != kEmpty) {
            if (entries_[i].key == key)
                return &entries_[i].val;
            i = (i + 1) & mask_;
        }
        return nullptr;
    }

    void
    put(std::uint32_t row, unsigned pe, std::uint64_t val)
    {
        put(bankKey(row, pe), val);
    }

    void
    put(std::uint64_t key, std::uint64_t val)
    {
        std::size_t i = indexOf(key);
        while (entries_[i].key != kEmpty) {
            if (entries_[i].key == key) {
                entries_[i].val = val;
                return;
            }
            i = (i + 1) & mask_;
        }
        entries_[i] = {key, val};
        if (++used_ * 4 > (mask_ + 1) * 3)
            rehash((mask_ + 1) * 2);
    }

  private:
    /** Key and value side by side: a probe that finds its key reads the
     *  value from the same cache line, where split key/value arrays
     *  cost a second miss — half the tracker's memory stalls. */
    struct Entry
    {
        std::uint64_t key;
        std::uint64_t val;
    };

    static constexpr std::uint64_t kEmpty = ~std::uint64_t{0};
    static constexpr std::size_t kInitialSlots = 1024;

    std::size_t
    indexOf(std::uint64_t key) const
    {
        return static_cast<std::size_t>(
                   (key * 0x9E3779B97F4A7C15ull) >> 32) &
            mask_;
    }

    void
    rehash(std::size_t slots)
    {
        std::vector<Entry> old = std::move(entries_);
        entries_.assign(slots, {kEmpty, 0});
        mask_ = slots - 1;
        for (const Entry &e : old) {
            if (e.key == kEmpty)
                continue;
            std::size_t j = indexOf(e.key);
            while (entries_[j].key != kEmpty)
                j = (j + 1) & mask_;
            entries_[j] = e;
        }
    }

    std::vector<Entry> entries_;
    std::size_t mask_ = 0;
    std::size_t used_ = 0;
};

/** findLast() result when the bank was never written (recently). */
constexpr std::uint64_t kNoBeat = ~std::uint64_t{0};

/**
 * RAW tracker specialized for the balanced sweep, where each
 * destination's fill beats strictly increase: a placement older than
 * rawDistance beats can never block again, so only the most recent
 * rawDistance beats' placements — at most rawDistance * pes entries,
 * a few hundred bytes — need to be kept. Entries are appended in
 * non-decreasing beat order and aged by advancing a tail index, so a
 * lookup is a short linear scan of L1-resident keys instead of a probe
 * into a hash table that, at large-matrix scale, grows to megabytes
 * per destination and makes every probe a cache miss. Live keys are
 * unique (re-placing a key requires its previous placement to have
 * gone stale), so the scan can run forward and vectorize.
 */
class RecentRaw
{
  public:
    void init(unsigned rawDistance) { raw_ = rawDistance; }

    /** Last beat @p row was written within the blocking window of
     *  beat @p t, or kNoBeat. Queries must come with non-decreasing
     *  @p t (the sweep's per-destination order). */
    std::uint64_t
    findLast(std::uint32_t row, unsigned, std::size_t t)
    {
        while (tail_ < beats_.size() &&
               beats_[tail_] + std::size_t{raw_} <= t)
            ++tail_;
        for (std::size_t i = tail_; i < rows_.size(); ++i)
            if (rows_[i] == row)
                return beats_[i];
        return kNoBeat;
    }

    void
    put(std::uint32_t row, unsigned, std::size_t beat)
    {
        if (tail_ >= kCompactAt) {
            rows_.erase(rows_.begin(),
                        rows_.begin() + static_cast<std::ptrdiff_t>(tail_));
            beats_.erase(beats_.begin(),
                         beats_.begin() + static_cast<std::ptrdiff_t>(tail_));
            tail_ = 0;
        }
        rows_.push_back(row);
        beats_.push_back(static_cast<std::uint32_t>(beat));
    }

  private:
    /** Aged-out prefix kept before the buffers compact; amortizes the
     *  erase to O(1) per put. */
    static constexpr std::size_t kCompactAt = 4096;

    unsigned raw_ = 1;
    std::size_t tail_ = 0; ///< first still-live entry
    std::vector<std::uint32_t> rows_;
    std::vector<std::uint32_t> beats_;
};

/**
 * Donor bookkeeping for one source channel: a lazy tail-first scan that
 * keeps at most `lookahead` candidates materialized. The window always
 * holds the deepest remaining donors in (beat desc, pe asc) order — the
 * exact order the eager snapshot used.
 *
 * Invariant: the window is refilled after construction and after every
 * take, so it is empty only when the channel has no donors left. That
 * makes empty() and remainingLength() — which the sweep calls once per
 * (beat, destination) — O(1) reads instead of scan re-entries.
 *
 * version() counts every mutation (donor materialized or taken). The
 * sweep uses it to memoize failed takes: as long as the version is
 * unchanged, the window holds the same candidates, and RAW stamps only
 * ever move later, so a take that failed at beat t must keep failing
 * until the earliest-unblock beat the failure reported.
 */
class DonorPool
{
  public:
    /**
     * @p want donors are materialized up front; 0 defers every scan to
     * prefill()/take() so construction stays O(1) and a batch of pools
     * can run their first scans in parallel. When @p donorMask is given
     * (one byte per beat, bit p set iff slot p holds a donor — a valid
     * private element), the scan walks the mask with word-granular
     * skipping instead of touching the 128-byte beats; the mask only
     * needs to be accurate for the not-yet-scanned region, which never
     * changes during a sweep (donations clear slots behind the scan,
     * migrated-in elements land in free slots and are not donors).
     */
    DonorPool(const ChannelWindowSchedule &ch, unsigned pes,
              std::size_t want = 1,
              const std::uint8_t *donorMask = nullptr)
        : ch_(&ch), pes_(pes), mask_(donorMask),
          scanBeat_(static_cast<std::ptrdiff_t>(ch.length()) - 1)
    {
        fill(want);
    }

    /**
     * Materialize up to @p want donors now. Output-invariant: take()
     * fills to its lookahead on entry anyway, so prefetching candidates
     * early changes when the scan work happens, never what any take
     * returns.
     */
    void
    prefill(std::size_t want)
    {
        fill(want);
    }

    bool
    empty() const
    {
        return whead_ == window_.size();
    }

    /**
     * The source list's length if its trailing donated slots were
     * trimmed right now (deepest remaining donor + 1). The source may
     * also hold migrated-in elements it received during the sweep, but
     * those carry pvt=0 and are never donors, so the scan skips them.
     */
    std::size_t
    remainingLength() const
    {
        return empty() ? 0 : window_[whead_].beat + std::size_t{1};
    }

    /** Mutation counter; changes whenever the candidate set changes. */
    std::uint64_t
    version() const
    {
        return version_;
    }

    /**
     * Find, among the first @p lookahead donors (deepest first), one
     * whose row may be written on destination PE @p pe at beat @p t
     * given the RAW tracker @p last_place; remove and return it. On
     * failure, @p unblock_beat receives the earliest beat at which any
     * of the scanned candidates stops being RAW-blocked.
     */
    template <class RawT>
    bool
    take(unsigned pe, std::size_t t, unsigned raw_distance,
         std::size_t lookahead, RawT &last_place, Donor &out,
         std::size_t &unblock_beat)
    {
        fill(lookahead);
        const std::size_t limit =
            std::min(lookahead, window_.size() - whead_);
        std::size_t unblock = std::numeric_limits<std::size_t>::max();
        for (std::size_t k = 0; k < limit; ++k) {
            const Donor &d = window_[whead_ + k];
            const std::uint64_t found =
                last_place.findLast(d.slot.row, pe, t);
            if (found == kNoBeat || found + raw_distance <= t) {
                out = d;
                // The window is a deque over a growing buffer: shift
                // the k entries ahead of the hole (usually 0-2) one
                // slot right and bump the head — O(k) instead of the
                // old vector-erase's O(window) tail memmove, which
                // dominated the sweep's memory traffic.
                for (std::size_t i = whead_ + k; i > whead_; --i)
                    window_[i] = window_[i - 1];
                if (++whead_ >= kCompactAt) {
                    window_.erase(window_.begin(),
                                  window_.begin() +
                                      static_cast<std::ptrdiff_t>(whead_));
                    whead_ = 0;
                }
                ++version_;
                fill(1);
                return true;
            }
            unblock = std::min(unblock,
                               static_cast<std::size_t>(found) +
                                   raw_distance);
        }
        unblock_beat = unblock;
        return false;
    }

  private:
    /** Consumed entries kept before the deque compacts its buffer;
     *  amortizes the prefix erase to O(1) per take. */
    static constexpr std::size_t kCompactAt = 4096;

    /** Hint the descending scan's next beats into cache: placement
     *  streamed them past the hierarchy with non-temporal stores, so
     *  without the hint every materialization eats a full memory-
     *  latency read, and the backward stride defeats the hardware
     *  prefetcher until it locks on. */
    void
    prefetchBeat(std::ptrdiff_t b) const
    {
        if (b >= 0) {
            const char *q = reinterpret_cast<const char *>(
                &ch_->beats[static_cast<std::size_t>(b)]);
            __builtin_prefetch(q, 0, 1);
            __builtin_prefetch(q + 64, 0, 1);
        }
    }

    /** Advance the tail scan until @p want donors are materialized. */
    void
    fill(std::size_t want)
    {
        if (mask_ != nullptr) {
            fillFromMask(want);
            return;
        }
        while (window_.size() - whead_ < want && scanBeat_ >= 0) {
            prefetchBeat(scanBeat_ - 2);
            const Slot &slot =
                ch_->beats[static_cast<std::size_t>(scanBeat_)]
                    .slots[scanPe_];
            if (slot.valid && slot.pvt) {
                window_.push_back({static_cast<std::uint32_t>(scanBeat_),
                                   scanPe_, slot});
                ++version_;
            }
            if (++scanPe_ >= pes_) {
                scanPe_ = 0;
                --scanBeat_;
            }
        }
    }

    /** Mask-driven scan: identical materialization order (beat desc,
     *  pe asc), but donor-free beats cost one byte test and fully
     *  donated tails are skipped a 64-bit word at a time. */
    void
    fillFromMask(std::size_t want)
    {
        while (window_.size() - whead_ < want && scanBeat_ >= 0) {
            prefetchBeat(scanBeat_ - 2);
            const std::uint8_t bits = static_cast<std::uint8_t>(
                mask_[scanBeat_] & (0xFFu << scanPe_));
            if (bits == 0) {
                scanPe_ = 0;
                --scanBeat_;
                while (scanBeat_ >= 7) {
                    std::uint64_t w;
                    std::memcpy(&w, mask_ + (scanBeat_ - 7), 8);
                    if (w != 0)
                        break;
                    scanBeat_ -= 8;
                }
                continue;
            }
            const unsigned pe = static_cast<unsigned>(
                std::countr_zero(static_cast<unsigned>(bits)));
            window_.push_back(
                {static_cast<std::uint32_t>(scanBeat_), pe,
                 ch_->beats[static_cast<std::size_t>(scanBeat_)]
                     .slots[pe]});
            ++version_;
            if ((scanPe_ = pe + 1) >= pes_) {
                scanPe_ = 0;
                --scanBeat_;
            }
        }
    }

    const ChannelWindowSchedule *ch_;
    unsigned pes_;
    const std::uint8_t *mask_;
    std::ptrdiff_t scanBeat_; ///< next beat the scan will visit
    unsigned scanPe_ = 0;     ///< next pe the scan will visit
    std::uint64_t version_ = 0;
    std::vector<Donor> window_; ///< deque: live entries are [whead_, end)
    std::size_t whead_ = 0;
};

/**
 * Sequential-greedy traversal (the ablation): destinations are filled
 * one after the other, each draining its donors as far as the donor
 * remains longer. Kept for bench_ablation_strategy; see
 * MigrationStrategy for why this loses on uniformly-heavy inputs.
 */
void
migrateSequential(WindowSchedule &phase, const SchedConfig &config)
{
    const unsigned channels = config.channels;
    const unsigned pes = config.pesPerGroup();

    for (unsigned dst = 0; dst < channels; ++dst) {
        ChannelWindowSchedule &dst_ch = phase.channels[dst];
        RawTracker last_place;
        for (unsigned depth = 1; depth <= config.migrationDepth;
             ++depth) {
            const unsigned src = (dst + depth) % channels;
            if (src == dst)
                break;
            phase.channels[src].trimTrailingStalls(pes);
            DonorPool pool(phase.channels[src], pes);
            for (std::size_t t = 0; !pool.empty(); ++t) {
                if (t >= dst_ch.length()) {
                    if (pool.remainingLength() <= dst_ch.length())
                        break; // absorbing more just moves the bottleneck
                    dst_ch.beats.emplace_back();
                }
                for (unsigned p = 0; p < pes && !pool.empty(); ++p) {
                    Slot &slot = dst_ch.beats[t].slots[p];
                    if (slot.valid)
                        continue;
                    if (pool.remainingLength() <= t + 1)
                        break;
                    Donor donor;
                    std::size_t unblock = 0;
                    if (!pool.take(p, t, config.rawDistance,
                                   CrhcsScheduler::kLookahead,
                                   last_place, donor, unblock)) {
                        continue;
                    }
                    slot = donor.slot;
                    slot.pvt = false;
                    slot.peSrc = static_cast<std::uint8_t>(donor.pe);
                    slot.chSrc = static_cast<std::uint8_t>(src);
                    last_place.put(slot.row, p, t);
                    phase.channels[src]
                        .beats[donor.beat]
                        .slots[donor.pe] = Slot();
                }
            }
            phase.channels[src].trimTrailingStalls(pes);
        }
        dst_ch.trimTrailingStalls(pes);
    }
}

/**
 * 0 = auto: CHASON_SCHED_JOBS, then CHASON_JOBS, then the hardware
 * thread count. CHASON_JOBS is the knob the bench harness documents
 * for every worker pool; honoring it here keeps one environment
 * variable in control of all parallelism (the more specific
 * CHASON_SCHED_JOBS still wins when both are set).
 */
unsigned
resolveJobs(unsigned jobs)
{
    if (jobs != 0)
        return jobs;
    for (const char *name : {"CHASON_SCHED_JOBS", "CHASON_JOBS"}) {
        const std::uint64_t v = common::envUint(name, 0);
        if (v > 0)
            return static_cast<unsigned>(v);
    }
    return core::ThreadPool::defaultWorkers();
}

/**
 * Shared pool for phase fan-out. Separate from BatchEngine's pool on
 * purpose: a BatchEngine worker calling schedule() blocks in
 * parallelFor on *this* pool, which is safe, whereas recursively
 * waiting on its own pool would deadlock. Sized on first use, at least
 * as wide as the request that created it.
 */
core::ThreadPool &
schedulingPool(unsigned requested)
{
    static core::ThreadPool pool(
        std::max(requested, core::ThreadPool::defaultWorkers()));
    return pool;
}

} // namespace

void
CrhcsScheduler::migratePhase(WindowSchedule &phase,
                             const SchedConfig &config,
                             MigrationStrategy strategy)
{
    const unsigned channels = config.channels;
    const unsigned pes = config.pesPerGroup();
    if (config.migrationDepth == 0 || channels < 2) {
        for (ChannelWindowSchedule &ch : phase.channels)
            ch.trimTrailingStalls(pes);
        phase.realign();
        return;
    }

    for (ChannelWindowSchedule &ch : phase.channels)
        ch.trimTrailingStalls(pes);

    if (strategy == MigrationStrategy::SequentialGreedy) {
        migrateSequential(phase, config);
        for (ChannelWindowSchedule &ch : phase.channels)
            ch.trimTrailingStalls(pes);
        phase.realign();
        return;
    }

    // Rebuild the free-slot and donor bitmaps the hot path receives
    // straight from placement; this entry point accepts arbitrary
    // phases (possibly already carrying migrated-in pvt=0 elements), so
    // it pays one scan over the beats to recover both.
    FreeSlotMasks masks(channels);
    FreeSlotMasks donor_masks(channels);
    for (unsigned ch = 0; ch < channels; ++ch) {
        const ChannelWindowSchedule &cws = phase.channels[ch];
        std::vector<std::uint8_t> &m = masks[ch];
        std::vector<std::uint8_t> &dm = donor_masks[ch];
        m.resize(cws.length());
        dm.resize(cws.length());
        for (std::size_t t = 0; t < m.size(); ++t) {
            std::uint8_t bits = 0;
            std::uint8_t donors = 0;
            for (unsigned p = 0; p < pes; ++p) {
                const Slot &slot = cws.beats[t].slots[p];
                if (!slot.valid)
                    bits |= static_cast<std::uint8_t>(1u << p);
                else if (slot.pvt)
                    donors |= static_cast<std::uint8_t>(1u << p);
            }
            m[t] = bits;
            dm[t] = donors;
        }
    }
    migrateWithMasks(phase, config, masks, donor_masks, false, 1);
}

void
CrhcsScheduler::migrateWithMasks(WindowSchedule &phase,
                                 const SchedConfig &config,
                                 FreeSlotMasks &masks,
                                 FreeSlotMasks &donorMasks, bool fresh,
                                 unsigned jobs)
{
    const unsigned channels = config.channels;
    const unsigned pes = config.pesPerGroup();
    constexpr std::size_t kDoneCh = std::numeric_limits<std::size_t>::max();
    const std::uint8_t full_mask =
        static_cast<std::uint8_t>((1u << pes) - 1u);

    // Donor pools and per-destination RAW trackers. Construction is
    // deferred (want = 0) so the per-channel setup — deriving the donor
    // bitmap and running the first tail scans — runs sharded across the
    // scheduling pool when jobs > 1. Each pool's candidate window is
    // its own buffer and the merge is just the pools vector indexed by
    // channel, so the sharded setup is deterministic; the prefill
    // itself is output-invariant (take() fills to the lookahead on
    // entry anyway), merely moving scan work earlier.
    if (fresh) {
        // Fresh placement: every valid slot is private, so the donor
        // bitmap is exactly the complement of the free bitmap. Sized
        // here (pointer-stable), bytes computed in the sharded setup.
        donorMasks.resize(channels);
        for (unsigned ch = 0; ch < channels; ++ch)
            donorMasks[ch].resize(masks[ch].size());
    }
    std::vector<DonorPool> pool;
    pool.reserve(channels);
    for (unsigned ch = 0; ch < channels; ++ch)
        pool.emplace_back(phase.channels[ch], pes, 0,
                          donorMasks[ch].data());
    const auto setupChannel = [&](std::size_t ch) {
        if (fresh) {
            const std::vector<std::uint8_t> &fm = masks[ch];
            std::vector<std::uint8_t> &dm = donorMasks[ch];
            for (std::size_t t = 0; t < fm.size(); ++t)
                dm[t] = static_cast<std::uint8_t>(full_mask & ~fm[t]);
        }
        pool[ch].prefill(kLookahead);
    };
    if (jobs > 1 && channels > 1) {
        schedulingPool(jobs).parallelForDynamic(channels, 1,
                                                setupChannel);
    } else {
        for (unsigned ch = 0; ch < channels; ++ch)
            setupChannel(ch);
    }
    // One tracker per (destination, PE) bank rather than per
    // destination: a take only ever queries keys of its own PE, so the
    // split cuts each lookup's scan to the handful of that bank's
    // placements within the RAW window.
    std::vector<RecentRaw> last_place(
        static_cast<std::size_t>(channels) * pes);
    for (RecentRaw &raw : last_place)
        raw.init(config.rawDistance);

    // Failed-take memo per (destination, PE): a take that scanned its
    // whole lookahead and found every candidate RAW-blocked keeps
    // failing — with the identical result — until either the candidate
    // set changes (pool version) or the sweep reaches the earliest
    // unblock beat the failure reported. RAW stamps are monotone (puts
    // only ever store later beats), so skipping the re-scan cannot
    // change the outcome; it removes roughly half the tracker probes of
    // the sweep.
    struct RetryMemo
    {
        std::uint64_t ver = std::numeric_limits<std::uint64_t>::max();
        std::size_t beat = 0;
    };
    std::vector<RetryMemo> retry(
        static_cast<std::size_t>(channels) * pes);

    // Event-driven sweep, equivalent to the beat-synchronous one (all
    // channels advance through beat positions together, each pulling
    // from its donors only while they reach beyond the position) but
    // visiting only the beats where something can happen: next_t[dst]
    // is the earliest unswept beat of dst holding a free slot, or its
    // length (the extension point). Everything in between is fully
    // valid and the original sweep crossed it without effect. kDoneCh
    // marks a destination whose donors no longer reach beyond the
    // sweep; remainingLength() is monotone non-increasing (donation
    // only removes donors, and migrated-in elements are never donors)
    // and the sweep position only grows, so that state is permanent
    // and the destination is dropped for good.
    std::vector<std::size_t> next_t(channels, 0);
    // Deepest migrated-in fill per channel (+1); with the pools'
    // deepest-remaining-donor view this yields each channel's trimmed
    // length at the end without rescanning its tail.
    std::vector<std::size_t> fill_len(channels, 0);
    auto advance = [&masks, &next_t](unsigned ch, std::size_t from) {
        const std::vector<std::uint8_t> &m = masks[ch];
        const std::size_t len = m.size();
        std::size_t b = from;
        while (b < len && m[b] == 0)
            ++b;
        next_t[ch] = b; // b == len: the extension event
    };
    for (unsigned ch = 0; ch < channels; ++ch)
        advance(ch, 0);

    for (;;) {
        std::size_t t = kDoneCh;
        for (unsigned ch = 0; ch < channels; ++ch)
            t = std::min(t, next_t[ch]);
        if (t == kDoneCh)
            break;
        // Visit this beat's destinations in channel order, re-reading
        // next_t as we go: a donation can free a slot at this very
        // beat in a not-yet-visited channel, and the beat-synchronous
        // order would have seen it.
        for (unsigned dst = 0; dst < channels; ++dst) {
            if (next_t[dst] != t)
                continue;
            ChannelWindowSchedule &dst_ch = phase.channels[dst];
            if (t < dst_ch.length()) {
                // The fill below writes this beat's slots; warm both
                // of its cache lines while the donor checks run.
                const char *q =
                    reinterpret_cast<const char *>(&dst_ch.beats[t]);
                __builtin_prefetch(q, 1, 1);
                __builtin_prefetch(q + 64, 1, 1);
            }

            // Does any donor channel still have work beyond beat t?
            bool donor_beyond = false;
            for (unsigned depth = 1; depth <= config.migrationDepth;
                 ++depth) {
                const unsigned src = (dst + depth) % channels;
                if (src == dst)
                    break;
                if (pool[src].remainingLength() > t + 1) {
                    donor_beyond = true;
                    break;
                }
            }
            if (!donor_beyond) {
                next_t[dst] = kDoneCh;
                continue;
            }
            if (t >= dst_ch.length()) {
                dst_ch.beats.emplace_back();
                masks[dst].push_back(full_mask);
            }

            // Walk the beat's free slots off its mask byte instead of
            // reading slot.valid out of the 128-byte beat: the mask is
            // hot, while the beat itself was streamed to memory by
            // placement and costs a cold read. The mask mirrors
            // validity exactly (placement emits it, every fill clears
            // its bit), and only this destination's own fills can
            // change it at this beat, so iterating a snapshot of the
            // byte visits the same slots in the same order.
            std::uint8_t free_bits = masks[dst][t];
            while (free_bits != 0) {
                const unsigned p = static_cast<unsigned>(
                    std::countr_zero(static_cast<unsigned>(free_bits)));
                free_bits &= static_cast<std::uint8_t>(free_bits - 1u);
                const std::size_t dp =
                    static_cast<std::size_t>(dst) * pes + p;
                std::uint64_t chain_ver = 0;
                for (unsigned depth = 1; depth <= config.migrationDepth;
                     ++depth) {
                    const unsigned s = (dst + depth) % channels;
                    if (s == dst)
                        break;
                    chain_ver += pool[s].version();
                }
                if (retry[dp].ver == chain_ver && t < retry[dp].beat)
                    continue; // memoized failure still holds
                Donor donor;
                bool taken = false;
                unsigned src = 0;
                std::size_t unblock =
                    std::numeric_limits<std::size_t>::max();
                for (unsigned depth = 1;
                     depth <= config.migrationDepth && !taken; ++depth) {
                    src = (dst + depth) % channels;
                    if (src == dst)
                        break;
                    // Pull only while the donor list still reaches
                    // beyond this beat: otherwise moving the element
                    // cannot shrink the makespan.
                    if (pool[src].remainingLength() <= t + 1)
                        continue;
                    std::size_t pool_unblock =
                        std::numeric_limits<std::size_t>::max();
                    taken = pool[src].take(p, t, config.rawDistance,
                                           kLookahead, last_place[dp],
                                           donor, pool_unblock);
                    unblock = std::min(unblock, pool_unblock);
                }
                if (!taken) {
                    retry[dp] = {chain_ver, unblock};
                    continue;
                }
                Slot &slot = dst_ch.beats[t].slots[p];
                slot = donor.slot;
                slot.pvt = false;
                slot.peSrc = static_cast<std::uint8_t>(donor.pe);
                slot.chSrc = static_cast<std::uint8_t>(src);
                last_place[dp].put(slot.row, p, t);
                masks[dst][t] &=
                    static_cast<std::uint8_t>(~(1u << p));
                if (t + 1 > fill_len[dst])
                    fill_len[dst] = t + 1;
                phase.channels[src].beats[donor.beat].slots[donor.pe] =
                    Slot();
                // Donation visibility: the freed source slot becomes a
                // fillable hole only where the beat-synchronous order
                // had not passed it yet — at a later beat, or at this
                // beat in a channel still ahead of dst this round.
                if (next_t[src] != kDoneCh &&
                    (donor.beat > t ||
                     (donor.beat == t && src > dst))) {
                    masks[src][donor.beat] |=
                        static_cast<std::uint8_t>(1u << donor.pe);
                    if (donor.beat < next_t[src])
                        next_t[src] = donor.beat;
                }
            }
            advance(dst, t + 1);
        }
    }

    if (fresh) {
        // O(1) trim: a fresh placement has no trailing stalls and only
        // private slots, so after the sweep each channel's deepest
        // valid slot is the deeper of its deepest remaining donor
        // (window front of its pool) and its deepest migrated-in fill
        // — no need to walk the donated tail beat by beat.
        for (unsigned ch = 0; ch < channels; ++ch) {
            const std::size_t new_len =
                std::max(pool[ch].remainingLength(), fill_len[ch]);
            ChannelWindowSchedule &cws = phase.channels[ch];
            if (new_len < cws.length())
                cws.beats.resize(new_len);
        }
    } else {
        // Arbitrary input phases may hold pvt=0 elements deeper than
        // any donor, which the pools do not see; fall back to the
        // beat-walking trim.
        for (ChannelWindowSchedule &ch : phase.channels)
            ch.trimTrailingStalls(pes);
    }
    phase.realign();
}

Schedule
CrhcsScheduler::schedule(const sparse::CsrMatrix &matrix) const
{
    // Scheduler phase timings: one host span per offline stage, plus
    // an aggregate split of the per-phase loop into its PE-aware
    // placement and cross-channel migration halves — the two costs the
    // preprocessing analysis (bench_preprocessing_cost) compares.
    trace::TraceSink *sink = trace::activeSink();
    double t0 = sink ? sink->nowUs() : 0.0;
    const PhaseWorkList work_list = buildPhaseWork(matrix, config_);
    if (sink) {
        trace::SpanEvent span;
        span.name = "crhcs.build_phase_work";
        span.begin = t0;
        span.dur = sink->nowUs() - t0;
        span.track = trace::hostTrack();
        sink->recordSpan(std::move(span));
        sink->addCounter("crhcs.phases", work_list.size());
    }

    std::vector<WindowSchedule> phases(work_list.size());
    const unsigned jobs = resolveJobs(jobs_);
    // The balanced strategy takes the mask-carrying fast path:
    // placement emits the free-slot bitmaps as a byproduct and the
    // migration sweep walks them directly, never rescanning beats.
    const bool balanced =
        strategy_ == MigrationStrategy::BeatSynchronous &&
        config_.migrationDepth > 0 && config_.channels >= 2;
    const auto runPhase = [&](std::size_t i, unsigned phaseJobs) {
        if (balanced) {
            FreeSlotMasks masks;
            phases[i] = PeAwareScheduler::schedulePhase(work_list[i],
                                                        config_, &masks);
            FreeSlotMasks donor_masks;
            migrateWithMasks(phases[i], config_, masks, donor_masks,
                             true, phaseJobs);
        } else {
            phases[i] =
                PeAwareScheduler::schedulePhase(work_list[i], config_);
            migratePhase(phases[i], config_, strategy_);
        }
    };
    if (sink == nullptr && jobs > 1 && work_list.size() > 1) {
        // Dynamic fan-out, heaviest phases first: with chunk-of-one
        // claiming, a large phase picked up late can no longer strand
        // the pool behind a static split's tail. Results land in slots
        // keyed by the original phase index, so the output is
        // bit-identical to the sequential loop below at every jobs
        // value.
        std::vector<std::uint32_t> order(work_list.size());
        for (std::uint32_t i = 0; i < order.size(); ++i)
            order[i] = i;
        std::sort(order.begin(), order.end(),
                  [&work_list](std::uint32_t a, std::uint32_t b) {
                      if (work_list[a].nnz != work_list[b].nnz)
                          return work_list[a].nnz > work_list[b].nnz;
                      return a < b;
                  });
        schedulingPool(jobs).parallelForDynamic(
            work_list.size(), 1,
            [&](std::size_t k) { runPhase(order[k], jobs); });
        return finalize(matrix, name(), std::move(phases));
    }

    double place_us = 0.0, migrate_us = 0.0;
    for (std::size_t i = 0; i < work_list.size(); ++i) {
        double p0 = sink ? sink->nowUs() : 0.0;
        double p1 = p0;
        if (balanced) {
            FreeSlotMasks masks;
            phases[i] = PeAwareScheduler::schedulePhase(work_list[i],
                                                        config_, &masks);
            p1 = sink ? sink->nowUs() : 0.0;
            FreeSlotMasks donor_masks;
            migrateWithMasks(phases[i], config_, masks, donor_masks,
                             true, sink ? 1u : jobs);
        } else {
            phases[i] = PeAwareScheduler::schedulePhase(work_list[i],
                                                        config_);
            p1 = sink ? sink->nowUs() : 0.0;
            migratePhase(phases[i], config_, strategy_);
        }
        if (sink) {
            place_us += p1 - p0;
            migrate_us += sink->nowUs() - p1;
        }
    }
    if (sink) {
        trace::SpanEvent place;
        place.name = "crhcs.pe_aware_placement";
        place.begin = t0;
        place.dur = place_us;
        place.track = trace::hostTrack();
        sink->recordSpan(std::move(place));
        trace::SpanEvent migrate;
        migrate.name = "crhcs.migration";
        migrate.begin = t0 + place_us;
        migrate.dur = migrate_us;
        migrate.track = trace::hostTrack();
        sink->recordSpan(std::move(migrate));
    }
    return finalize(matrix, name(), std::move(phases));
}

} // namespace sched
} // namespace chason
