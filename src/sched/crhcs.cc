/**
 * @file
 * CrHCS implementation.
 *
 * Migration runs as one beat-synchronous pass over the PE-aware phase:
 * beat positions are visited in order, and at each position every
 * channel fills its free slots with elements pulled from the *tail* of
 * its donor channel(s), but only while the donor's remaining list is
 * still longer than the position being filled. Because all channels
 * advance together, load balances by construction: a channel keeps
 * absorbing exactly until it would become the new bottleneck, and a slot
 * freed by donation deeper in a list becomes fillable from the next
 * channel when the sweep reaches it — the cascading refill of Fig. 5
 * happens in the same pass. Elements migrate at most once (only pvt
 * elements are donors), matching the single pvt bit of the wire format.
 */

#include "sched/crhcs.h"

#include <deque>
#include <unordered_map>

#include "sched/pe_aware.h"
#include "trace/trace.h"

namespace chason {
namespace sched {

namespace {

/** A migratable element still sitting in its source channel. */
struct Donor
{
    std::size_t beat;
    unsigned pe;
    Slot slot;
};

/** Key for a destination RAW tracker: (row, destination PE). */
std::uint64_t
bankKey(std::uint32_t row, unsigned pe)
{
    return (static_cast<std::uint64_t>(row) << 3) | pe;
}

/** Donor bookkeeping for one source channel. */
class DonorPool
{
  public:
    DonorPool(const ChannelWindowSchedule &ch, unsigned pes)
    {
        for (std::size_t b = ch.length(); b-- > 0;) {
            for (unsigned p = 0; p < pes; ++p) {
                const Slot &slot = ch.beats[b].slots[p];
                if (slot.valid && slot.pvt)
                    donors_.push_back({b, p, slot});
            }
        }
    }

    bool empty() const { return donors_.empty(); }

    /**
     * The source list's length if its trailing donated slots were
     * trimmed right now (deepest remaining donor + 1). The source may
     * also hold migrated-in elements it received during the sweep, but
     * those only ever land at positions the sweep has already passed,
     * which are below any remaining donor.
     */
    std::size_t remainingLength() const
    {
        return donors_.empty() ? 0 : donors_.front().beat + 1;
    }

    /**
     * Find, among the first @p lookahead donors (deepest first), one
     * whose row may be written on destination PE @p pe at beat @p t
     * given the RAW tracker @p last_place; remove and return it.
     */
    bool
    take(unsigned pe, std::size_t t, unsigned raw_distance,
         std::size_t lookahead,
         const std::unordered_map<std::uint64_t, std::size_t> &last_place,
         Donor &out)
    {
        std::size_t scanned = 0;
        for (auto it = donors_.begin();
             it != donors_.end() && scanned < lookahead; ++it, ++scanned) {
            const auto found = last_place.find(bankKey(it->slot.row, pe));
            if (found == last_place.end() ||
                found->second + raw_distance <= t) {
                out = *it;
                donors_.erase(it);
                return true;
            }
        }
        return false;
    }

  private:
    std::deque<Donor> donors_;
};

/**
 * Sequential-greedy traversal (the ablation): destinations are filled
 * one after the other, each draining its donors as far as the donor
 * remains longer. Kept for bench_ablation_strategy; see
 * MigrationStrategy for why this loses on uniformly-heavy inputs.
 */
void
migrateSequential(WindowSchedule &phase, const SchedConfig &config)
{
    const unsigned channels = config.channels;
    const unsigned pes = config.pesPerGroup();

    for (unsigned dst = 0; dst < channels; ++dst) {
        ChannelWindowSchedule &dst_ch = phase.channels[dst];
        std::unordered_map<std::uint64_t, std::size_t> last_place;
        for (unsigned depth = 1; depth <= config.migrationDepth;
             ++depth) {
            const unsigned src = (dst + depth) % channels;
            if (src == dst)
                break;
            phase.channels[src].trimTrailingStalls(pes);
            DonorPool pool(phase.channels[src], pes);
            for (std::size_t t = 0; !pool.empty(); ++t) {
                if (t >= dst_ch.length()) {
                    if (pool.remainingLength() <= dst_ch.length())
                        break; // absorbing more just moves the bottleneck
                    dst_ch.beats.emplace_back();
                }
                for (unsigned p = 0; p < pes && !pool.empty(); ++p) {
                    Slot &slot = dst_ch.beats[t].slots[p];
                    if (slot.valid)
                        continue;
                    if (pool.remainingLength() <= t + 1)
                        break;
                    Donor donor;
                    if (!pool.take(p, t, config.rawDistance,
                                   CrhcsScheduler::kLookahead,
                                   last_place, donor)) {
                        continue;
                    }
                    slot = donor.slot;
                    slot.pvt = false;
                    slot.peSrc = static_cast<std::uint8_t>(donor.pe);
                    slot.chSrc = static_cast<std::uint8_t>(src);
                    last_place[bankKey(slot.row, p)] = t;
                    phase.channels[src]
                        .beats[donor.beat]
                        .slots[donor.pe] = Slot();
                }
            }
            phase.channels[src].trimTrailingStalls(pes);
        }
        dst_ch.trimTrailingStalls(pes);
    }
}

} // namespace

void
CrhcsScheduler::migratePhase(WindowSchedule &phase,
                             const SchedConfig &config,
                             MigrationStrategy strategy)
{
    const unsigned channels = config.channels;
    const unsigned pes = config.pesPerGroup();
    if (config.migrationDepth == 0 || channels < 2) {
        for (ChannelWindowSchedule &ch : phase.channels)
            ch.trimTrailingStalls(pes);
        phase.realign();
        return;
    }

    for (ChannelWindowSchedule &ch : phase.channels)
        ch.trimTrailingStalls(pes);

    if (strategy == MigrationStrategy::SequentialGreedy) {
        migrateSequential(phase, config);
        for (ChannelWindowSchedule &ch : phase.channels)
            ch.trimTrailingStalls(pes);
        phase.realign();
        return;
    }

    // Donor pools and per-destination RAW trackers.
    std::vector<DonorPool> pool;
    pool.reserve(channels);
    for (unsigned ch = 0; ch < channels; ++ch)
        pool.emplace_back(phase.channels[ch], pes);
    std::vector<std::unordered_map<std::uint64_t, std::size_t>> last_place(
        channels);

    // Beat-synchronous sweep. At beat t a channel may (a) fill free
    // slots within its current list, or (b) append one beat — but only
    // while a donor channel's remaining list reaches beyond t, so no
    // channel ever grows past the emerging balanced makespan.
    for (std::size_t t = 0;; ++t) {
        bool any_open = false;
        for (unsigned dst = 0; dst < channels; ++dst) {
            ChannelWindowSchedule &dst_ch = phase.channels[dst];

            // Does any donor channel still have work beyond beat t?
            bool donor_beyond = false;
            for (unsigned depth = 1; depth <= config.migrationDepth;
                 ++depth) {
                const unsigned src = (dst + depth) % channels;
                if (src == dst)
                    break;
                if (pool[src].remainingLength() > t + 1) {
                    donor_beyond = true;
                    break;
                }
            }

            if (t >= dst_ch.length()) {
                if (!donor_beyond)
                    continue; // nothing to gain by extending
                dst_ch.beats.emplace_back();
            } else if (t + 1 < dst_ch.length()) {
                any_open = true; // own beats still ahead of the sweep
            }
            if (donor_beyond)
                any_open = true;

            for (unsigned p = 0; p < pes; ++p) {
                Slot &slot = dst_ch.beats[t].slots[p];
                if (slot.valid)
                    continue;
                Donor donor;
                bool taken = false;
                unsigned src = 0;
                for (unsigned depth = 1;
                     depth <= config.migrationDepth && !taken; ++depth) {
                    src = (dst + depth) % channels;
                    if (src == dst)
                        break;
                    // Pull only while the donor list still reaches
                    // beyond this beat: otherwise moving the element
                    // cannot shrink the makespan.
                    if (pool[src].remainingLength() <= t + 1)
                        continue;
                    taken = pool[src].take(p, t, config.rawDistance,
                                           kLookahead, last_place[dst],
                                           donor);
                }
                if (!taken)
                    continue;
                slot = donor.slot;
                slot.pvt = false;
                slot.peSrc = static_cast<std::uint8_t>(donor.pe);
                slot.chSrc = static_cast<std::uint8_t>(src);
                last_place[dst][bankKey(slot.row, p)] = t;
                phase.channels[src].beats[donor.beat].slots[donor.pe] =
                    Slot();
            }
        }
        if (!any_open)
            break;
    }

    for (ChannelWindowSchedule &ch : phase.channels)
        ch.trimTrailingStalls(pes);
    phase.realign();
}

Schedule
CrhcsScheduler::schedule(const sparse::CsrMatrix &matrix) const
{
    // Scheduler phase timings: one host span per offline stage, plus
    // an aggregate split of the per-phase loop into its PE-aware
    // placement and cross-channel migration halves — the two costs the
    // preprocessing analysis (bench_preprocessing_cost) compares.
    trace::TraceSink *sink = trace::activeSink();
    double t0 = sink ? sink->nowUs() : 0.0;
    const std::vector<PhaseWork> work_list = buildPhaseWork(matrix,
                                                            config_);
    if (sink) {
        trace::SpanEvent span;
        span.name = "crhcs.build_phase_work";
        span.begin = t0;
        span.dur = sink->nowUs() - t0;
        span.track = trace::hostTrack();
        sink->recordSpan(std::move(span));
        sink->addCounter("crhcs.phases", work_list.size());
    }

    std::vector<WindowSchedule> phases;
    double place_us = 0.0, migrate_us = 0.0;
    for (const PhaseWork &work : work_list) {
        double p0 = sink ? sink->nowUs() : 0.0;
        WindowSchedule phase = PeAwareScheduler::schedulePhase(work,
                                                               config_);
        double p1 = sink ? sink->nowUs() : 0.0;
        migratePhase(phase, config_, strategy_);
        if (sink) {
            place_us += p1 - p0;
            migrate_us += sink->nowUs() - p1;
        }
        phases.push_back(std::move(phase));
    }
    if (sink) {
        trace::SpanEvent place;
        place.name = "crhcs.pe_aware_placement";
        place.begin = t0;
        place.dur = place_us;
        place.track = trace::hostTrack();
        sink->recordSpan(std::move(place));
        trace::SpanEvent migrate;
        migrate.name = "crhcs.migration";
        migrate.begin = t0 + place_us;
        migrate.dur = migrate_us;
        migrate.track = trace::hostTrack();
        sink->recordSpan(std::move(migrate));
    }
    return finalize(matrix, name(), std::move(phases));
}

} // namespace sched
} // namespace chason
