/**
 * @file
 * CHSA v1: the versioned on-disk schedule artifact.
 *
 * CrHCS is one-shot offline preprocessing amortized over millions of
 * SpMV launches, so a cold process should never pay the scheduling
 * cost for a matrix that was already scheduled — it should mmap the
 * stored artifact and serve it. CHSA ("CHasoň Schedule Artifact") is
 * that store: a fixed little-endian layout whose beat payload is the
 * *in-memory* `Beat` array byte-for-byte (the layout pins in
 * sched/schedule.h enforce this), so loading is O(header) validation
 * plus page faults, not a parse. Unlike the wire format of
 * sched/schedule_io.h — which proves the paper's 64-bit element
 * encoding carries everything the datapath needs, and is therefore
 * restricted to migrationDepth <= 1 — CHSA stores full slots and
 * round-trips any schedule bit-exactly.
 *
 * File layout (all integers little-endian, docs/ARTIFACT_FORMAT.md has
 * the byte-level reference):
 *
 *   ArtifactHeader                 64 B, checksummed with the field
 *                                  itself zeroed
 *   SectionEntry[sectionCount]     32 B each: kind, offset, bytes,
 *                                  checksum
 *   meta section                   ArtifactMeta (config + shape + key)
 *   phase section                  ArtifactPhase[phaseCount], then
 *                                  u64 beatCount[phaseCount*channels]
 *   beat section                   64-byte-aligned concatenation of
 *                                  every (phase, channel) beat stream
 *                                  in phase-major order
 *
 * Every section carries a checksum over its bytes: artifactHash(), a
 * 4-lane FNV-style multiply-xor digest folded over fixed 4 MiB chunks.
 * The chunking makes payload verification embarrassingly parallel
 * (ArtifactReader::payloadIntact fans chunks across threads) while the
 * digest stays independent of the thread count.
 *
 * Failure model: ArtifactReader::open never panics on a malformed
 * file — every defect maps to an ArtifactStatus so callers (the
 * two-tier core::ScheduleCache, the chason_verify admission gate) can
 * reject the artifact and fall back to rescheduling. Writing uses a
 * temp-file + rename so a crashed writer never leaves a torn artifact
 * under the final name.
 */

#ifndef CHASON_SCHED_ARTIFACT_H_
#define CHASON_SCHED_ARTIFACT_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "sched/schedule.h"

namespace chason {
namespace sched {

/** "CHSA-ART" as a little-endian u64. */
inline constexpr std::uint64_t kArtifactMagic = 0x5452'412d'4153'4843ull;

/** Current (and only) format version. */
inline constexpr std::uint32_t kArtifactVersion = 1;

/** Fixed checksum chunk size; part of the format, not a tunable. */
inline constexpr std::size_t kArtifactChunkBytes = std::size_t{4} << 20;

/** Alignment of the beat payload section. */
inline constexpr std::size_t kArtifactPayloadAlign = 64;

/** Section kinds of the v1 section table. */
enum class ArtifactSection : std::uint32_t
{
    kMeta = 1,   ///< ArtifactMeta
    kPhases = 2, ///< phase records + per-(phase, channel) beat counts
    kBeats = 3,  ///< raw Beat payload
};

/** Fixed 64-byte file header. */
struct ArtifactHeader
{
    std::uint64_t magic = kArtifactMagic;
    std::uint32_t version = kArtifactVersion;
    std::uint32_t headerBytes = 0; ///< sizeof(ArtifactHeader)
    std::uint64_t fileBytes = 0;   ///< total file size, for truncation
    std::uint64_t keyLo = 0;       ///< matrix fingerprint, low word
    std::uint64_t keyHi = 0;       ///< matrix fingerprint, high word
    std::uint64_t keyScheduler = 0; ///< scheduler identity/config hash
    std::uint32_t sectionCount = 0;
    std::uint32_t sectionEntryBytes = 0; ///< sizeof(ArtifactSectionEntry)
    std::uint64_t headerChecksum = 0; ///< artifactHash, this field zeroed
};
static_assert(sizeof(ArtifactHeader) == 64, "CHSA v1 header is 64 bytes");

/** One section-table entry. */
struct ArtifactSectionEntry
{
    std::uint32_t kind = 0; ///< ArtifactSection
    std::uint32_t reserved = 0;
    std::uint64_t offset = 0; ///< from file start
    std::uint64_t bytes = 0;
    std::uint64_t checksum = 0; ///< artifactHash over the section bytes
};
static_assert(sizeof(ArtifactSectionEntry) == 32,
              "CHSA v1 section entries are 32 bytes");

/** Shape + config metadata (the meta section). */
struct ArtifactMeta
{
    std::uint64_t nnz = 0;
    std::uint32_t channels = 0;
    std::uint32_t precisionBits = 0; ///< 32 or 64
    std::uint32_t pesOverride = 0;
    std::uint32_t rawDistance = 0;
    std::uint32_t windowCols = 0;
    std::uint32_t rowsPerLanePerPass = 0;
    std::uint32_t migrationDepth = 0;
    std::uint32_t rows = 0;
    std::uint32_t cols = 0;
    std::uint32_t phaseCount = 0;
    std::uint32_t schedulerNameLen = 0;
    std::uint32_t reserved = 0;
    char schedulerName[64] = {};
};
static_assert(sizeof(ArtifactMeta) == 120, "CHSA v1 meta is 120 bytes");

/** One phase record of the phase section. */
struct ArtifactPhase
{
    std::uint32_t pass = 0;
    std::uint32_t window = 0;
    std::uint64_t alignedBeats = 0;
};
static_assert(sizeof(ArtifactPhase) == 16,
              "CHSA v1 phase records are 16 bytes");

/**
 * The cache identity an artifact is stored under: matrix fingerprint
 * plus scheduler identity/config hash. Mirrors core::ScheduleKey
 * without depending on chason_core (which sits above this library).
 */
struct ArtifactKey
{
    std::uint64_t lo = 0;
    std::uint64_t hi = 0;
    std::uint64_t scheduler = 0;

    friend bool operator==(const ArtifactKey &,
                           const ArtifactKey &) = default;
};

/** "chsa-<lo><hi>-<scheduler>.chsa", the canonical store filename. */
std::string artifactFileName(const ArtifactKey &key);

/** Why an artifact was rejected. */
enum class ArtifactStatus
{
    kOk,
    kIoError,       ///< cannot open/map/stat the file
    kBadMagic,      ///< not a CHSA file
    kBadVersion,    ///< a version this reader does not speak
    kTruncated,     ///< file shorter than the header declares
    kBadStructure,  ///< section table / meta / phase table inconsistent
    kBadChecksum,   ///< header or section digest mismatch
};

/** Stable lowercase name ("ok", "bad-checksum", ...). */
const char *artifactStatusName(ArtifactStatus status);

/** Status plus human-readable detail. */
struct ArtifactError
{
    ArtifactStatus status = ArtifactStatus::kOk;
    std::string detail;
};

/**
 * The 4-lane multiply-xor digest every CHSA checksum uses, folded over
 * kArtifactChunkBytes chunks. Deterministic for a given byte string;
 * the chunk folding lets verifiers hash chunks on several threads and
 * combine without changing the digest.
 */
std::uint64_t artifactHash(const void *data, std::size_t bytes);

/** Everything open() learns without touching the payload. */
struct ArtifactInfo
{
    ArtifactKey key;
    SchedConfig config;
    std::string scheduler;
    std::uint32_t rows = 0;
    std::uint32_t cols = 0;
    std::uint64_t nnz = 0;
    std::uint32_t phaseCount = 0;
    std::uint64_t payloadBytes = 0; ///< beat section size
    std::uint64_t fileBytes = 0;
    std::vector<ArtifactSectionEntry> sections; ///< for inspection
};

/**
 * Write @p schedule as a CHSA v1 artifact at @p path (temp file +
 * atomic rename). Returns false (with @p error filled) on an I/O
 * failure; never panics on one. Works for every schedule, including
 * migrationDepth > 1 (unlike the wire serializer).
 */
bool writeArtifactFile(const Schedule &schedule, const ArtifactKey &key,
                       const std::string &path,
                       ArtifactError *error = nullptr);

/**
 * Maps a CHSA artifact and materializes schedules whose beat storage
 * aliases the mapping. Move-only; the mapping itself is shared with
 * every Schedule load() hands out, so the reader may be destroyed
 * first.
 */
class ArtifactReader
{
  public:
    ArtifactReader() = default;
    ArtifactReader(ArtifactReader &&) = default;
    ArtifactReader &operator=(ArtifactReader &&) = default;

    /**
     * Map @p path and validate everything except the beat payload:
     * magic, version, truncation, header checksum, section table,
     * meta/phase-table checksums and structural consistency (counts,
     * bounds, alignment, config ranges). On failure the returned
     * reader is !ok() and @p error says why.
     */
    static ArtifactReader open(const std::string &path,
                               ArtifactError *error = nullptr);

    bool ok() const { return mapping_ != nullptr; }
    const ArtifactInfo &info() const { return info_; }

    /**
     * Verify the beat-payload digest, hashing chunks on up to @p jobs
     * threads (0 = one per hardware thread, capped by the chunk
     * count). Idempotent: the verdict is computed once and cached.
     * This is the only load-path step that touches every payload page.
     */
    bool payloadIntact(ArtifactError *error = nullptr,
                       unsigned jobs = 0) const;

    /**
     * Materialize the schedule. Beat storage aliases the mapping
     * (BeatList::aliased()), which stays alive for as long as any
     * returned Schedule (or copy of one) does. Requires a prior
     * successful payloadIntact() — loading unverified bytes is a
     * contract violation, not an error path.
     */
    Schedule load() const;

  private:
    struct Mapping;

    std::shared_ptr<const Mapping> mapping_;
    ArtifactInfo info_;
    const ArtifactPhase *phases_ = nullptr;  ///< into the mapping
    const std::uint64_t *beatCounts_ = nullptr; ///< phaseCount*channels
    const Beat *payload_ = nullptr;
    std::uint64_t payloadChecksum_ = 0; ///< expected beat-section digest
    // Payload verdict cache: 0 unknown, 1 intact, 2 corrupt.
    mutable std::uint8_t payloadVerdict_ = 0;
};

} // namespace sched
} // namespace chason

#endif // CHASON_SCHED_ARTIFACT_H_
