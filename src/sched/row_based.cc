/**
 * @file
 * Row-based scheduler implementation.
 */

#include "sched/row_based.h"

#include <algorithm>

namespace chason {
namespace sched {

Schedule
RowBasedScheduler::schedule(const sparse::CsrMatrix &matrix) const
{
    const LaneMap map(config_);
    const unsigned pes = config_.pesPerGroup();
    const unsigned d = config_.rawDistance;

    std::vector<WindowSchedule> phases;
    for (const PhaseWork &pw : buildPhaseWork(matrix, config_)) {
        WindowSchedule ws;
        ws.pass = pw.pass;
        ws.window = pw.window;
        ws.channels.resize(config_.channels);

        for (unsigned lane = 0; lane < map.lanes(); ++lane) {
            const unsigned ch = lane / pes;
            const unsigned pe = lane % pes;
            ChannelWindowSchedule &cws = ws.channels[ch];

            // Issue rows strictly in order; within a row, consecutive
            // elements must be rawDistance beats apart. Switching to a
            // different row has no constraint (different accumulator).
            std::size_t t = 0;
            for (const RowRun &run : pw.lanes[lane]) {
                for (std::uint32_t i = 0; i < run.len; ++i) {
                    if (i > 0)
                        t += d; // wait out the RAW dependency
                    if (cws.beats.size() <= t)
                        cws.beats.resize(t + 1);
                    Slot &slot = cws.beats[t].slots[pe];
                    slot.valid = true;
                    slot.value = pw.val(run, i);
                    slot.row = run.row;
                    slot.col = pw.col(run, i);
                    slot.pvt = true;
                    slot.peSrc = static_cast<std::uint8_t>(pe);
                    slot.chSrc = static_cast<std::uint8_t>(ch);
                    if (i + 1 == run.len)
                        ++t; // next row may issue on the next beat
                }
            }
        }
        phases.push_back(std::move(ws));
    }
    return finalize(matrix, name(), std::move(phases));
}

} // namespace sched
} // namespace chason
