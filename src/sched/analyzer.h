/**
 * @file
 * Schedule analysis: stall counts, PE underutilization (Eq. 4) and
 * data-transfer volumes.
 *
 * PE underutilization is a pure property of the offline schedule — every
 * explicit zero in a channel's (aligned) data list is one idle PE-cycle
 * (Section 5.3). The same accounting yields the HBM traffic of the
 * streaming designs, since stalls are physically transferred as zero
 * words.
 */

#ifndef CHASON_SCHED_ANALYZER_H_
#define CHASON_SCHED_ANALYZER_H_

#include <cstdint>
#include <vector>

#include "sched/schedule.h"

namespace chason {
namespace sched {

/**
 * Aggregate statistics of one schedule.
 *
 * Units: slot/beat counts are *kernel clock cycles* (one beat is
 * streamed per channel per cycle at II=1), not wall time; convert via
 * the accelerator's frequencyMhz(). Byte counts are bytes on the HBM
 * wire (64 B per beat). analyze() is a pure function and thread-safe.
 */
struct ScheduleStats
{
    std::size_t nnz = 0;          ///< valid slots across all phases
    std::size_t totalSlots = 0;   ///< aligned beats x channels x PEs
    std::size_t stalls = 0;       ///< totalSlots - nnz

    /** Eq. 4: stalls / (nnz + stalls) x 100. */
    double underutilizationPercent = 0.0;

    /** Per-PEG underutilization % (per matrix channel). */
    std::vector<double> perPegUnderutilization;

    /** Aligned beats summed over phases (per-channel stream length). */
    std::size_t streamBeatsPerChannel = 0;

    /** Matrix-stream beats over all channels. */
    std::uint64_t matrixBeats = 0;

    /** Matrix-stream bytes over all channels (64 B per beat). */
    std::uint64_t matrixBytes = 0;

    /** Number of (pass, window) phases with work. */
    std::size_t phases = 0;

    /** Mean of the per-PEG underutilization values. */
    double meanPegUnderutilization() const;

    /** Max - min of the per-PEG underutilization (fairness, Fig. 13). */
    double pegUnderutilizationSpread() const;
};

/** Compute the statistics of @p schedule. */
ScheduleStats analyze(const Schedule &schedule);

/**
 * Verify a schedule is well-formed and RAW-safe:
 *  - every valid slot's row maps to the slot's source (channel, PE);
 *  - migrated slots come from a channel within migrationDepth;
 *  - two writes to the same URAM bank (destination PE x source lane x
 *    row) in one phase are at least rawDistance beats apart;
 *  - every matrix non-zero appears exactly once.
 * Panics with a diagnostic on the first violation. Used by tests and by
 * the simulator's paranoid mode.
 *
 * This is the strict facade over verify::verifySchedule (see
 * verify/verifier.h), which reports *all* violations as structured
 * CHV*** diagnostics instead of panicking. The definition lives in the
 * chason_verify library; link it (chason_core already does) to use
 * this function.
 */
void validateSchedule(const Schedule &schedule,
                      const sparse::CsrMatrix &matrix);

} // namespace sched
} // namespace chason

#endif // CHASON_SCHED_ANALYZER_H_
