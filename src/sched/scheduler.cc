/**
 * @file
 * Shared scheduler epilogue.
 */

#include "sched/scheduler.h"

namespace chason {
namespace sched {

Schedule
Scheduler::finalize(const sparse::CsrMatrix &matrix, std::string name,
                    std::vector<WindowSchedule> phases) const
{
    Schedule schedule;
    schedule.config = config_;
    schedule.scheduler = std::move(name);
    schedule.rows = matrix.rows();
    schedule.cols = matrix.cols();
    schedule.nnz = matrix.nnz();
    schedule.phases = std::move(phases);
    for (WindowSchedule &phase : schedule.phases)
        phase.realign();
    return schedule;
}

} // namespace sched
} // namespace chason
