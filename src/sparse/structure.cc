/**
 * @file
 * Structural analysis implementation.
 */

#include "sparse/structure.h"

#include <algorithm>
#include <cstdio>
#include <numeric>

#include "common/logging.h"

namespace chason {
namespace sparse {

double
StructureProfile::serializationRatio(unsigned lanes,
                                     unsigned raw_distance) const
{
    chason_assert(lanes > 0 && raw_distance > 0, "bad geometry");
    if (nnz == 0)
        return 0.0;
    // Perfect packing: nnz spread over all lanes, one per beat.
    const double packing =
        static_cast<double>(nnz) / static_cast<double>(lanes);
    // The heaviest row alone serializes at the RAW distance.
    const double serial = static_cast<double>(maxRowNnz) *
        static_cast<double>(raw_distance);
    return serial / packing;
}

std::string
StructureProfile::describe() const
{
    char buf[160];
    std::snprintf(buf, sizeof(buf),
                  "%ux%u nnz=%zu meanRow=%.1f maxRow=%zu empty=%u "
                  "gini=%.2f top1%%=%.1f%% bandwidth=%u",
                  rows, cols, nnz, meanRowNnz, maxRowNnz, emptyRows,
                  rowGini, 100.0 * top1PercentShare, bandwidth);
    return buf;
}

StructureProfile
analyzeStructure(const CsrMatrix &a)
{
    StructureProfile p;
    p.rows = a.rows();
    p.cols = a.cols();
    p.nnz = a.nnz();
    if (a.rows() == 0)
        return p;

    std::vector<std::size_t> lengths(a.rows());
    for (std::uint32_t r = 0; r < a.rows(); ++r) {
        lengths[r] = a.rowNnz(r);
        p.maxRowNnz = std::max(p.maxRowNnz, lengths[r]);
        if (lengths[r] == 0)
            ++p.emptyRows;
        for (std::size_t i = a.rowPtr()[r]; i < a.rowPtr()[r + 1]; ++i) {
            const std::uint32_t c = a.colIdx()[i];
            const std::uint32_t dist = c > r ? c - r : r - c;
            p.bandwidth = std::max(p.bandwidth, dist);
        }
    }
    p.meanRowNnz = static_cast<double>(p.nnz) /
        static_cast<double>(p.rows);

    // Counting sort over the bounded key space [0, maxRowNnz]: row
    // lengths are small integers, so this is O(rows + maxRowNnz)
    // sequential traffic instead of a comparator sort, and — keys
    // being indistinguishable — yields the exact array std::sort
    // would. Degenerate shapes (a few very long rows) would make the
    // histogram dominate, so those fall back to the comparator.
    if (p.maxRowNnz <= lengths.size() * 4) {
        std::vector<std::size_t> hist(p.maxRowNnz + 1, 0);
        for (const std::size_t len : lengths)
            ++hist[len];
        std::size_t out = 0;
        for (std::size_t len = 0; len < hist.size(); ++len)
            for (std::size_t c = 0; c < hist[len]; ++c)
                lengths[out++] = len;
    } else {
        std::sort(lengths.begin(), lengths.end());
    }

    // Gini via the sorted-sum formula:
    // G = (2 * sum_i i*x_i) / (n * sum x) - (n + 1) / n, i is 1-based.
    if (p.nnz > 0) {
        long double weighted = 0.0L;
        for (std::size_t i = 0; i < lengths.size(); ++i) {
            weighted += static_cast<long double>(i + 1) *
                static_cast<long double>(lengths[i]);
        }
        const long double n = static_cast<long double>(lengths.size());
        const long double total = static_cast<long double>(p.nnz);
        p.rowGini = static_cast<double>(2.0L * weighted / (n * total) -
                                        (n + 1.0L) / n);

        // Share of the heaviest ceil(1%) rows.
        const std::size_t top =
            std::max<std::size_t>(1, (lengths.size() + 99) / 100);
        std::size_t top_sum = 0;
        for (std::size_t i = lengths.size() - top; i < lengths.size();
             ++i) {
            top_sum += lengths[i];
        }
        p.top1PercentShare = static_cast<double>(top_sum) /
            static_cast<double>(p.nnz);
    }
    return p;
}

} // namespace sparse
} // namespace chason
