/**
 * @file
 * Deterministic synthetic sparse matrix generators.
 *
 * The paper evaluates on SuiteSparse and SNAP matrices, which are not
 * shipped with this repository. Each generator below reproduces the
 * sparsity-structure class of one of the evaluated domains:
 *
 *  - rmat / preferentialAttachment: SNAP social / web graphs (power-law
 *    degree distribution, heavy row imbalance);
 *  - banded / trajectoryBlock: optimal-control matrices
 *    (dynamicSoaringProblem, lowThrust, hangGlider, reorientation);
 *  - blockDiagonal: power-grid OPF matrices (TSC_OPF_300);
 *  - mycielskian: the *exact* Mycielski graph (mycielskian12 matches the
 *    paper's NNZ of 407200 bit-for-bit in structure);
 *  - poisson2d: scientific-computing stencils;
 *  - erdosRenyi / zipfRows: unstructured and imbalance-controlled fillers
 *    for the 800-matrix sweep corpus.
 *
 * All generators are pure functions of their arguments and the Rng seed.
 * Non-zero values default to uniform [0.1, 1.0); positive values keep the
 * FP32 accumulation well-conditioned so functional checks against the
 * double-precision reference are meaningful at tight tolerances.
 */

#ifndef CHASON_SPARSE_GENERATORS_H_
#define CHASON_SPARSE_GENERATORS_H_

#include <cstdint>

#include "common/rng.h"
#include "sparse/formats.h"

namespace chason {
namespace sparse {

/** How generator values are drawn. */
enum class ValueDistribution
{
    PositiveUniform, ///< uniform [0.1, 1.0) — default, cancellation-free
    SignedUniform,   ///< uniform [-1.0, 1.0)
    Ones,            ///< all 1.0 (pattern matrices)
};

/** Draw one value according to @p dist. */
float drawValue(Rng &rng, ValueDistribution dist);

/**
 * Uniform random matrix: @p nnz_target entries at uniformly random
 * positions (duplicates merged, so the final count can be slightly lower).
 */
CsrMatrix erdosRenyi(std::uint32_t rows, std::uint32_t cols,
                     std::size_t nnz_target, Rng &rng,
                     ValueDistribution dist =
                         ValueDistribution::PositiveUniform);

/**
 * Recursive-matrix (R-MAT) graph in the Graph500 style; reproduces the
 * skewed degree distributions of SNAP graphs. Partition probabilities
 * (a, b, c, d) must sum to ~1; Graph500 uses (0.57, 0.19, 0.19, 0.05).
 */
CsrMatrix rmat(std::uint32_t scale, std::size_t nnz_target, Rng &rng,
               double a = 0.57, double b = 0.19, double c = 0.19,
               ValueDistribution dist = ValueDistribution::PositiveUniform);

/**
 * Barabási–Albert preferential attachment digraph over @p nodes vertices
 * with ~@p edges_per_node out-edges each; models citation/vote networks
 * (wiki-Vote, soc-Slashdot).
 */
CsrMatrix preferentialAttachment(std::uint32_t nodes,
                                 std::uint32_t edges_per_node, Rng &rng,
                                 ValueDistribution dist =
                                     ValueDistribution::PositiveUniform);

/**
 * Banded matrix with stochastic fill inside the band; the structure of
 * collocation-based trajectory-optimization problems.
 * @param fill probability that a position inside the band is non-zero
 */
CsrMatrix banded(std::uint32_t n, std::uint32_t bandwidth, double fill,
                 Rng &rng,
                 ValueDistribution dist =
                     ValueDistribution::PositiveUniform);

/**
 * Banded matrix with a dense border: @p dense_rows evenly spaced rows are
 * fully populated. This is the arrowhead/KKT structure of trajectory-
 * optimization matrices (objective and phase-coupling constraints touch
 * every variable) and is what drives the extreme PE underutilization of
 * intra-channel scheduling: a dense row serializes on one accumulator at
 * the RAW distance once its lane's other rows are exhausted.
 */
CsrMatrix arrowBanded(std::uint32_t n, std::uint32_t bandwidth, double fill,
                      std::uint32_t dense_rows, Rng &rng,
                      ValueDistribution dist =
                          ValueDistribution::PositiveUniform);

/**
 * Repeated dense-ish diagonal blocks plus sparse off-block coupling;
 * the structure of multi-phase optimal-control and OPF matrices.
 */
CsrMatrix blockDiagonal(std::uint32_t n, std::uint32_t block_size,
                        double block_fill, double coupling_fill, Rng &rng,
                        ValueDistribution dist =
                            ValueDistribution::PositiveUniform);

/**
 * Exact Mycielski graph M_k as a symmetric adjacency matrix.
 * M_2 = K_2; vertices(M_k) = 2^(k-1) + 2^(k-2) - 1... built iteratively:
 * n' = 2n+1, e' = 3e+n. mycielskian(12) is 3071x3071 with 407200
 * stored entries, exactly the paper's MY matrix.
 */
CsrMatrix mycielskian(unsigned k,
                      ValueDistribution dist = ValueDistribution::Ones);

/** 5-point 2-D Poisson stencil on a grid x grid mesh (SPD, diagonal 4). */
CsrMatrix poisson2d(std::uint32_t grid);

/**
 * Matrix with Zipf-distributed row lengths (exponent @p s > 1) and random
 * column positions; used to sweep row-imbalance in the 800-matrix corpus.
 */
CsrMatrix zipfRows(std::uint32_t rows, std::uint32_t cols,
                   std::size_t nnz_target, double s, Rng &rng,
                   ValueDistribution dist =
                       ValueDistribution::PositiveUniform);

/** Dense random vector of length @p n with values in [0.1, 1). */
std::vector<float> randomVector(std::uint32_t n, Rng &rng);

} // namespace sparse
} // namespace chason

#endif // CHASON_SPARSE_GENERATORS_H_
