/**
 * @file
 * CSC implementation.
 */

#include "sparse/csc.h"

#include <algorithm>

#include "common/logging.h"

namespace chason {
namespace sparse {

CscMatrix
CscMatrix::fromCsr(const CsrMatrix &csr)
{
    CscMatrix out;
    out.rows_ = csr.rows();
    out.cols_ = csr.cols();
    out.colPtr_ = columnPointers(csr);
    out.rowIdx_.resize(csr.nnz());
    out.values_.resize(csr.nnz());
    // Counting-sort scatter (cache-blocked above a size threshold); row
    // indices come out sorted within each column because the scatter
    // walks CSR rows in ascending order.
    scatterByColumn(csr, out.colPtr_, out.rowIdx_.data(),
                    out.values_.data());
    return out;
}

std::size_t
CscMatrix::colNnz(std::uint32_t col) const
{
    chason_assert(col < cols_, "column %u out of range", col);
    return colPtr_[col + 1] - colPtr_[col];
}

std::size_t
CscMatrix::maxColNnz() const
{
    std::size_t best = 0;
    for (std::uint32_t c = 0; c < cols_; ++c)
        best = std::max(best, colNnz(c));
    return best;
}

CsrMatrix
CscMatrix::toCsr() const
{
    CooMatrix coo(rows_, cols_);
    for (std::uint32_t c = 0; c < cols_; ++c) {
        for (std::size_t i = colPtr_[c]; i < colPtr_[c + 1]; ++i)
            coo.add(rowIdx_[i], c, values_[i]);
    }
    return coo.toCsr();
}

std::vector<float>
CscMatrix::spmv(const std::vector<float> &x) const
{
    chason_assert(x.size() == cols_, "x has %zu entries, matrix has %u "
                  "columns", x.size(), cols_);
    std::vector<float> y(rows_, 0.0f);
    for (std::uint32_t c = 0; c < cols_; ++c) {
        const float xc = x[c];
        if (xc == 0.0f)
            continue;
        for (std::size_t i = colPtr_[c]; i < colPtr_[c + 1]; ++i)
            y[rowIdx_[i]] += values_[i] * xc;
    }
    return y;
}

std::vector<float>
CscMatrix::spmvTransposed(const std::vector<float> &x) const
{
    chason_assert(x.size() == rows_, "x has %zu entries, A^T has %u "
                  "columns", x.size(), rows_);
    std::vector<float> y(cols_, 0.0f);
    for (std::uint32_t c = 0; c < cols_; ++c) {
        float acc = 0.0f;
        for (std::size_t i = colPtr_[c]; i < colPtr_[c + 1]; ++i)
            acc += values_[i] * x[rowIdx_[i]];
        y[c] = acc;
    }
    return y;
}

} // namespace sparse
} // namespace chason
