/**
 * @file
 * CSC implementation.
 */

#include "sparse/csc.h"

#include <algorithm>

#include "common/logging.h"

namespace chason {
namespace sparse {

CscMatrix
CscMatrix::fromCsr(const CsrMatrix &csr)
{
    CscMatrix out;
    out.rows_ = csr.rows();
    out.cols_ = csr.cols();
    out.colPtr_.assign(static_cast<std::size_t>(csr.cols()) + 1, 0);
    out.rowIdx_.resize(csr.nnz());
    out.values_.resize(csr.nnz());

    // Counting sort by column: count, prefix-sum, scatter. Row indices
    // come out sorted within each column because CSR iterates rows in
    // ascending order.
    for (std::size_t i = 0; i < csr.nnz(); ++i)
        ++out.colPtr_[csr.colIdx()[i] + 1];
    for (std::uint32_t c = 0; c < csr.cols(); ++c)
        out.colPtr_[c + 1] += out.colPtr_[c];

    std::vector<std::size_t> cursor(out.colPtr_.begin(),
                                    out.colPtr_.end() - 1);
    for (std::uint32_t r = 0; r < csr.rows(); ++r) {
        for (std::size_t i = csr.rowPtr()[r]; i < csr.rowPtr()[r + 1];
             ++i) {
            const std::uint32_t c = csr.colIdx()[i];
            out.rowIdx_[cursor[c]] = r;
            out.values_[cursor[c]] = csr.values()[i];
            ++cursor[c];
        }
    }
    return out;
}

std::size_t
CscMatrix::colNnz(std::uint32_t col) const
{
    chason_assert(col < cols_, "column %u out of range", col);
    return colPtr_[col + 1] - colPtr_[col];
}

std::size_t
CscMatrix::maxColNnz() const
{
    std::size_t best = 0;
    for (std::uint32_t c = 0; c < cols_; ++c)
        best = std::max(best, colNnz(c));
    return best;
}

CsrMatrix
CscMatrix::toCsr() const
{
    CooMatrix coo(rows_, cols_);
    for (std::uint32_t c = 0; c < cols_; ++c) {
        for (std::size_t i = colPtr_[c]; i < colPtr_[c + 1]; ++i)
            coo.add(rowIdx_[i], c, values_[i]);
    }
    return coo.toCsr();
}

std::vector<float>
CscMatrix::spmv(const std::vector<float> &x) const
{
    chason_assert(x.size() == cols_, "x has %zu entries, matrix has %u "
                  "columns", x.size(), cols_);
    std::vector<float> y(rows_, 0.0f);
    for (std::uint32_t c = 0; c < cols_; ++c) {
        const float xc = x[c];
        if (xc == 0.0f)
            continue;
        for (std::size_t i = colPtr_[c]; i < colPtr_[c + 1]; ++i)
            y[rowIdx_[i]] += values_[i] * xc;
    }
    return y;
}

std::vector<float>
CscMatrix::spmvTransposed(const std::vector<float> &x) const
{
    chason_assert(x.size() == rows_, "x has %zu entries, A^T has %u "
                  "columns", x.size(), rows_);
    std::vector<float> y(cols_, 0.0f);
    for (std::uint32_t c = 0; c < cols_; ++c) {
        float acc = 0.0f;
        for (std::size_t i = colPtr_[c]; i < colPtr_[c + 1]; ++i)
            acc += values_[i] * x[rowIdx_[i]];
        y[c] = acc;
    }
    return y;
}

} // namespace sparse
} // namespace chason
