/**
 * @file
 * Matrix Market reader/writer implementation.
 */

#include "sparse/matrix_market.h"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <limits>
#include <sstream>

#include "common/logging.h"

namespace chason {
namespace sparse {

namespace {

std::string
lower(std::string s)
{
    std::transform(s.begin(), s.end(), s.begin(),
                   [](unsigned char c) { return std::tolower(c); });
    return s;
}

/**
 * getline tolerating CRLF files: strips one trailing '\r' so that a
 * Windows-written .mtx parses identically to a Unix one. Token reads
 * (operator>>) already treat '\r' as whitespace; only the getline'd
 * header/comment lines need the trim.
 */
bool
getlineTrimCr(std::istream &in, std::string &line)
{
    if (!std::getline(in, line))
        return false;
    if (!line.empty() && line.back() == '\r')
        line.pop_back();
    return true;
}

/** Index of the first non-blank character, or npos for blank lines. */
std::size_t
firstNonBlank(const std::string &line)
{
    return line.find_first_not_of(" \t\v\f");
}

} // namespace

CooMatrix
readMatrixMarket(std::istream &in)
{
    std::string line;
    if (!getlineTrimCr(in, line))
        chason_fatal("matrix market: empty stream");

    std::istringstream banner(line);
    std::string tag, object, format, field, symmetry;
    banner >> tag >> object >> format >> field >> symmetry;
    if (lower(tag) != "%%matrixmarket")
        chason_fatal("matrix market: missing %%%%MatrixMarket banner");
    object = lower(object);
    format = lower(format);
    field = lower(field);
    symmetry = lower(symmetry);
    if (object != "matrix" || format != "coordinate")
        chason_fatal("matrix market: only 'matrix coordinate' supported, "
                     "got '%s %s'", object.c_str(), format.c_str());
    if (field != "real" && field != "integer" && field != "pattern")
        chason_fatal("matrix market: unsupported field '%s'", field.c_str());
    if (symmetry != "general" && symmetry != "symmetric" &&
        symmetry != "skew-symmetric") {
        chason_fatal("matrix market: unsupported symmetry '%s'",
                     symmetry.c_str());
    }

    // Skip comments. Real-world writers also leave blank lines and
    // indent comments, so the size line is the first line whose first
    // non-blank character is not '%'.
    bool haveSizeLine = false;
    while (getlineTrimCr(in, line)) {
        const std::size_t pos = firstNonBlank(line);
        if (pos == std::string::npos || line[pos] == '%')
            continue;
        haveSizeLine = true;
        break;
    }
    if (!haveSizeLine)
        chason_fatal("matrix market: truncated before size line");

    std::istringstream dims(line);
    long long rows = 0, cols = 0, entries = 0;
    if (!(dims >> rows >> cols >> entries) || rows <= 0 || cols <= 0 ||
        entries < 0) {
        chason_fatal("matrix market: bad size line '%s'", line.c_str());
    }
    // Indices are stored as uint32_t; a matrix that does not fit would
    // silently alias rows/columns after the cast below.
    constexpr long long kMaxDim =
        std::numeric_limits<std::uint32_t>::max();
    if (rows > kMaxDim || cols > kMaxDim) {
        chason_fatal("matrix market: dimensions %lldx%lld overflow "
                     "32-bit indices", rows, cols);
    }

    const bool pattern = field == "pattern";
    const bool symmetric = symmetry != "general";
    const bool skew = symmetry == "skew-symmetric";

    CooMatrix coo(static_cast<std::uint32_t>(rows),
                  static_cast<std::uint32_t>(cols));
    for (long long i = 0; i < entries; ++i) {
        long long r = 0, c = 0;
        double v = 1.0;
        if (!(in >> r >> c))
            chason_fatal("matrix market: truncated at entry %lld", i);
        if (!pattern) {
            // Via strtod rather than operator>>: C writers emit "nan"
            // and "inf", which libstdc++ streams refuse to parse at
            // all. Accept the spelling, then reject the value — a
            // non-finite entry would silently poison every partial sum
            // its row touches.
            std::string token;
            if (!(in >> token))
                chason_fatal("matrix market: missing value at entry %lld",
                             i);
            char *end = nullptr;
            v = std::strtod(token.c_str(), &end);
            if (end == token.c_str() || *end != '\0')
                chason_fatal("matrix market: bad value '%s' at entry %lld",
                             token.c_str(), i);
            if (!std::isfinite(v))
                chason_fatal("matrix market: non-finite value '%s' at "
                             "entry %lld", token.c_str(), i);
        }
        if (r < 1 || r > rows || c < 1 || c > cols)
            chason_fatal("matrix market: entry (%lld,%lld) out of bounds",
                         r, c);
        const auto row = static_cast<std::uint32_t>(r - 1);
        const auto col = static_cast<std::uint32_t>(c - 1);
        coo.add(row, col, static_cast<float>(v));
        if (symmetric && row != col)
            coo.add(col, row, static_cast<float>(skew ? -v : v));
    }
    return coo;
}

CooMatrix
readMatrixMarketFile(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        chason_fatal("cannot open matrix market file '%s'", path.c_str());
    return readMatrixMarket(in);
}

void
writeMatrixMarket(const CooMatrix &matrix, std::ostream &out)
{
    out << "%%MatrixMarket matrix coordinate real general\n";
    out << matrix.rows() << ' ' << matrix.cols() << ' ' << matrix.nnz()
        << '\n';
    for (const Triplet &t : matrix.entries())
        out << (t.row + 1) << ' ' << (t.col + 1) << ' ' << t.value << '\n';
}

void
writeMatrixMarketFile(const CooMatrix &matrix, const std::string &path)
{
    std::ofstream out(path);
    if (!out)
        chason_fatal("cannot create matrix market file '%s'", path.c_str());
    writeMatrixMarket(matrix, out);
}

} // namespace sparse
} // namespace chason
