/**
 * @file
 * Structural analysis of sparse matrices.
 *
 * The paper's whole argument is structural: PE-aware scheduling stalls
 * when rows mapped to a lane run dry while a long row serializes, so
 * the speedup CrHCS delivers is a function of row-length imbalance.
 * This module quantifies that structure — row-length statistics, Gini
 * coefficient of the row-length distribution, the serialization bound
 * of the heaviest row, matrix bandwidth — so benches can correlate
 * structure with measured speedup and users can predict what Chasoň
 * will buy them on their own matrices.
 */

#ifndef CHASON_SPARSE_STRUCTURE_H_
#define CHASON_SPARSE_STRUCTURE_H_

#include <string>

#include "sparse/formats.h"

namespace chason {
namespace sparse {

/** Structural profile of one matrix. */
struct StructureProfile
{
    std::uint32_t rows = 0;
    std::uint32_t cols = 0;
    std::size_t nnz = 0;

    double meanRowNnz = 0.0;
    std::size_t maxRowNnz = 0;
    std::uint32_t emptyRows = 0;

    /**
     * Gini coefficient of the row-length distribution in [0, 1):
     * 0 = perfectly uniform rows, -> 1 = all mass in few rows.
     */
    double rowGini = 0.0;

    /** Share of all non-zeros held by the heaviest 1% of rows. */
    double top1PercentShare = 0.0;

    /** Matrix bandwidth: max |row - col| over the non-zeros. */
    std::uint32_t bandwidth = 0;

    /**
     * The heaviest row's serialization bound relative to the perfect
     * packing bound for a given lane/PE geometry: values >> 1 mean the
     * matrix is tail-dominated and intra-channel scheduling will stall
     * (the regime where CrHCS wins most).
     */
    double serializationRatio(unsigned lanes,
                              unsigned raw_distance) const;

    /** One-line human-readable summary. */
    std::string describe() const;
};

/** Compute the profile of @p a. */
StructureProfile analyzeStructure(const CsrMatrix &a);

} // namespace sparse
} // namespace chason

#endif // CHASON_SPARSE_STRUCTURE_H_
