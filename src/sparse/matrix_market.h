/**
 * @file
 * Matrix Market (coordinate format) reader and writer.
 *
 * SuiteSparse and SNAP matrices ship as .mtx files; this module lets the
 * library load real matrices when they are present on disk, while the
 * benchmark harness falls back to synthetic equivalents (see
 * sparse/dataset.h) when they are not.
 *
 * Supported header variants: "matrix coordinate {real|integer|pattern}
 * {general|symmetric|skew-symmetric}". Pattern entries get value 1.0.
 */

#ifndef CHASON_SPARSE_MATRIX_MARKET_H_
#define CHASON_SPARSE_MATRIX_MARKET_H_

#include <iosfwd>
#include <string>

#include "sparse/formats.h"

namespace chason {
namespace sparse {

/** Parse a Matrix Market stream. Calls fatal() on malformed input. */
CooMatrix readMatrixMarket(std::istream &in);

/** Load a .mtx file from disk. Calls fatal() if it cannot be opened. */
CooMatrix readMatrixMarketFile(const std::string &path);

/** Serialize in "matrix coordinate real general" form (1-based). */
void writeMatrixMarket(const CooMatrix &matrix, std::ostream &out);

/** Write a .mtx file to disk. Calls fatal() if it cannot be created. */
void writeMatrixMarketFile(const CooMatrix &matrix,
                           const std::string &path);

} // namespace sparse
} // namespace chason

#endif // CHASON_SPARSE_MATRIX_MARKET_H_
