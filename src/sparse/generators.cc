/**
 * @file
 * Synthetic generator implementations.
 */

#include "sparse/generators.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace chason {
namespace sparse {

float
drawValue(Rng &rng, ValueDistribution dist)
{
    switch (dist) {
      case ValueDistribution::PositiveUniform:
        return rng.nextFloat(0.1f, 1.0f);
      case ValueDistribution::SignedUniform:
        return rng.nextFloat(-1.0f, 1.0f);
      case ValueDistribution::Ones:
        return 1.0f;
    }
    chason_panic("unreachable value distribution");
}

CsrMatrix
erdosRenyi(std::uint32_t rows, std::uint32_t cols, std::size_t nnz_target,
           Rng &rng, ValueDistribution dist)
{
    chason_assert(rows > 0 && cols > 0, "empty matrix shape");
    CooMatrix coo(rows, cols);
    for (std::size_t i = 0; i < nnz_target; ++i) {
        const auto r = static_cast<std::uint32_t>(rng.nextBounded(rows));
        const auto c = static_cast<std::uint32_t>(rng.nextBounded(cols));
        coo.add(r, c, drawValue(rng, dist));
    }
    return coo.toCsr();
}

CsrMatrix
rmat(std::uint32_t scale, std::size_t nnz_target, Rng &rng, double a,
     double b, double c, ValueDistribution dist)
{
    chason_assert(scale >= 1 && scale <= 26, "rmat scale out of range");
    const double d = 1.0 - a - b - c;
    chason_assert(d >= 0.0, "rmat probabilities exceed 1");
    const std::uint32_t n = 1u << scale;

    CooMatrix coo(n, n);
    for (std::size_t i = 0; i < nnz_target; ++i) {
        std::uint32_t row = 0, col = 0;
        for (std::uint32_t bit = n >> 1; bit > 0; bit >>= 1) {
            const double p = rng.nextDouble();
            if (p < a) {
                // top-left quadrant: nothing to add
            } else if (p < a + b) {
                col |= bit;
            } else if (p < a + b + c) {
                row |= bit;
            } else {
                row |= bit;
                col |= bit;
            }
        }
        coo.add(row, col, drawValue(rng, dist));
    }
    return coo.toCsr();
}

CsrMatrix
preferentialAttachment(std::uint32_t nodes, std::uint32_t edges_per_node,
                       Rng &rng, ValueDistribution dist)
{
    chason_assert(nodes >= 2, "need at least two nodes");
    chason_assert(edges_per_node >= 1, "need at least one edge per node");

    // Repeated-targets list implements the degree-proportional sampling.
    std::vector<std::uint32_t> targets;
    targets.reserve(static_cast<std::size_t>(nodes) * edges_per_node * 2);
    targets.push_back(0);

    CooMatrix coo(nodes, nodes);
    for (std::uint32_t v = 1; v < nodes; ++v) {
        // Out-degrees follow a truncated Pareto (shape 1.25) so rows are
        // heavy-tailed like real SNAP graphs: hubs reach into the
        // hundreds-to-thousands (wiki-Vote's max out-degree is ~900),
        // which is what drives intra-channel scheduling stalls.
        const double u = std::max(rng.nextDouble(), 1e-9);
        const double pareto =
            (static_cast<double>(edges_per_node) * 0.3) /
            std::pow(u, 1.0 / 1.25);
        const auto drawn = static_cast<std::uint32_t>(
            std::min(pareto, static_cast<double>(nodes) / 3.0));
        const std::uint32_t fanout =
            std::min({std::max(drawn, 1u), v, nodes / 3 + 1});
        for (std::uint32_t e = 0; e < fanout; ++e) {
            const std::uint32_t t =
                targets[rng.nextBounded(targets.size())];
            coo.add(v, t, drawValue(rng, dist));
            targets.push_back(t);
        }
        targets.push_back(v);
    }
    return coo.toCsr();
}

CsrMatrix
banded(std::uint32_t n, std::uint32_t bandwidth, double fill, Rng &rng,
       ValueDistribution dist)
{
    chason_assert(n > 0, "empty matrix");
    chason_assert(fill >= 0.0 && fill <= 1.0, "fill out of [0,1]");
    CooMatrix coo(n, n);
    for (std::uint32_t r = 0; r < n; ++r) {
        const std::uint32_t lo = r >= bandwidth ? r - bandwidth : 0;
        const std::uint32_t hi = std::min<std::uint64_t>(
            static_cast<std::uint64_t>(r) + bandwidth, n - 1);
        for (std::uint32_t c = lo; c <= hi; ++c) {
            if (c == r || rng.nextBool(fill))
                coo.add(r, c, drawValue(rng, dist));
        }
    }
    return coo.toCsr();
}

CsrMatrix
arrowBanded(std::uint32_t n, std::uint32_t bandwidth, double fill,
            std::uint32_t dense_rows, Rng &rng, ValueDistribution dist)
{
    chason_assert(dense_rows <= n, "more dense rows than rows");
    CooMatrix coo(n, n);
    // Dense border rows, evenly spaced so they land on distinct lanes.
    std::vector<bool> is_dense(n, false);
    for (std::uint32_t k = 0; k < dense_rows; ++k) {
        const std::uint32_t r = static_cast<std::uint32_t>(
            (static_cast<std::uint64_t>(k) * n + n / 2) / dense_rows) %
            n;
        is_dense[r] = true;
    }
    for (std::uint32_t r = 0; r < n; ++r) {
        if (is_dense[r]) {
            for (std::uint32_t c = 0; c < n; ++c)
                coo.add(r, c, drawValue(rng, dist));
            continue;
        }
        const std::uint32_t lo = r >= bandwidth ? r - bandwidth : 0;
        const std::uint32_t hi = std::min<std::uint64_t>(
            static_cast<std::uint64_t>(r) + bandwidth, n - 1);
        for (std::uint32_t c = lo; c <= hi; ++c) {
            if (c == r || rng.nextBool(fill))
                coo.add(r, c, drawValue(rng, dist));
        }
    }
    return coo.toCsr();
}

CsrMatrix
blockDiagonal(std::uint32_t n, std::uint32_t block_size, double block_fill,
              double coupling_fill, Rng &rng, ValueDistribution dist)
{
    chason_assert(n > 0 && block_size > 0, "bad block-diagonal shape");
    CooMatrix coo(n, n);
    for (std::uint32_t r = 0; r < n; ++r) {
        const std::uint32_t block = r / block_size;
        const std::uint32_t b_lo = block * block_size;
        const std::uint32_t b_hi =
            std::min<std::uint64_t>(
                static_cast<std::uint64_t>(b_lo) + block_size, n) - 1;
        for (std::uint32_t c = b_lo; c <= b_hi; ++c) {
            if (c == r || rng.nextBool(block_fill))
                coo.add(r, c, drawValue(rng, dist));
        }
        // Sparse coupling to the neighbouring block (phase linkage).
        if (b_hi + 1 < n) {
            const std::uint32_t next_hi = std::min<std::uint64_t>(
                static_cast<std::uint64_t>(b_hi) + 1 + block_size, n) - 1;
            for (std::uint32_t c = b_hi + 1; c <= next_hi; ++c) {
                if (rng.nextBool(coupling_fill))
                    coo.add(r, c, drawValue(rng, dist));
            }
        }
    }
    return coo.toCsr();
}

CsrMatrix
mycielskian(unsigned k, ValueDistribution dist)
{
    chason_assert(k >= 2 && k <= 14, "mycielskian order out of range");

    // Edge list of M_2 = K_2.
    std::vector<std::pair<std::uint32_t, std::uint32_t>> edges = {{0, 1}};
    std::uint32_t n = 2;

    for (unsigned step = 2; step < k; ++step) {
        // Vertices: originals v_0..v_{n-1}, shadows u_i = n + i, apex
        // w = 2n.
        std::vector<std::pair<std::uint32_t, std::uint32_t>> next;
        next.reserve(edges.size() * 3 + n);
        for (auto [x, y] : edges) {
            next.emplace_back(x, y);         // original edge
            next.emplace_back(n + x, y);     // shadow of x to neighbour y
            next.emplace_back(x, n + y);     // shadow of y to neighbour x
        }
        const std::uint32_t w = 2 * n;
        for (std::uint32_t i = 0; i < n; ++i)
            next.emplace_back(n + i, w);
        edges = std::move(next);
        n = 2 * n + 1;
    }

    Rng value_rng(0x4d59u + k); // deterministic per order
    CooMatrix coo(n, n);
    for (auto [x, y] : edges)
        coo.addSymmetric(x, y, drawValue(value_rng, dist));
    return coo.toCsr();
}

CsrMatrix
poisson2d(std::uint32_t grid)
{
    chason_assert(grid >= 2, "poisson2d needs a grid of at least 2x2");
    const std::uint32_t n = grid * grid;
    CooMatrix coo(n, n);
    auto idx = [grid](std::uint32_t i, std::uint32_t j) {
        return i * grid + j;
    };
    for (std::uint32_t i = 0; i < grid; ++i) {
        for (std::uint32_t j = 0; j < grid; ++j) {
            const std::uint32_t me = idx(i, j);
            coo.add(me, me, 4.0f);
            if (i > 0)
                coo.add(me, idx(i - 1, j), -1.0f);
            if (i + 1 < grid)
                coo.add(me, idx(i + 1, j), -1.0f);
            if (j > 0)
                coo.add(me, idx(i, j - 1), -1.0f);
            if (j + 1 < grid)
                coo.add(me, idx(i, j + 1), -1.0f);
        }
    }
    return coo.toCsr();
}

CsrMatrix
zipfRows(std::uint32_t rows, std::uint32_t cols, std::size_t nnz_target,
         double s, Rng &rng, ValueDistribution dist)
{
    chason_assert(rows > 0 && cols > 0, "empty matrix shape");
    CooMatrix coo(rows, cols);
    for (std::size_t i = 0; i < nnz_target; ++i) {
        const auto r =
            static_cast<std::uint32_t>(rng.nextZipf(rows, s));
        const auto c = static_cast<std::uint32_t>(rng.nextBounded(cols));
        coo.add(r, c, drawValue(rng, dist));
    }
    return coo.toCsr();
}

std::vector<float>
randomVector(std::uint32_t n, Rng &rng)
{
    std::vector<float> v(n);
    for (auto &e : v)
        e = rng.nextFloat(0.1f, 1.0f);
    return v;
}

} // namespace sparse
} // namespace chason
