/**
 * @file
 * Table 2 registry and sweep-corpus construction.
 *
 * Shapes and NNZ targets follow the published matrices. Two notes:
 *  - The paper's Table 2 uses the tag "RE" twice (reorientation_4 and
 *    Reuters911); Reuters911 is tagged "RT" here to keep lookups unique.
 *  - c52's Table 2 density is inconsistent with its NNZ; we honour the
 *    in-text statement that C5 has ~23 K columns (Section 6.2.2), i.e. the
 *    real c-52 dimension of 23948.
 */

#include "sparse/dataset.h"

#include <cstdio>
#include <filesystem>

#include "common/logging.h"
#include "common/rng.h"
#include "sparse/generators.h"
#include "sparse/matrix_market.h"

namespace chason {
namespace sparse {

namespace {

/** Deterministic per-entry seed so every matrix is reproducible. */
std::uint64_t
entrySeed(const std::string &name)
{
    std::uint64_t h = 0xcbf29ce484222325ull;
    for (char c : name) {
        h ^= static_cast<unsigned char>(c);
        h *= 0x100000001b3ull;
    }
    return h;
}

CsrMatrix
genArrow(const std::string &name, std::uint32_t n, std::uint32_t band,
         double fill, std::uint32_t dense_rows)
{
    Rng rng(entrySeed(name));
    return arrowBanded(n, band, fill, dense_rows, rng);
}

CsrMatrix
genZipf(const std::string &name, std::uint32_t n, std::size_t nnz, double s)
{
    Rng rng(entrySeed(name));
    return zipfRows(n, n, nnz, s, rng);
}

CsrMatrix
genPa(const std::string &name, std::uint32_t n, std::uint32_t epn)
{
    Rng rng(entrySeed(name));
    return preferentialAttachment(n, epn, rng);
}

} // namespace

const std::vector<DatasetEntry> &
table2()
{
    static const std::vector<DatasetEntry> entries = {
        // --- SuiteSparse ------------------------------------------------
        {"DY", "dynamicSoaringProblem_8", Collection::SuiteSparse, 38136,
         0.303, [] { return genArrow("DY", 3548, 24, 0.120, 4); }},
        {"RE", "reorientation_4", Collection::SuiteSparse, 33630, 0.455,
         [] { return genArrow("RE", 2719, 28, 0.132, 4); }},
        {"C5", "c52", Collection::SuiteSparse, 20278, 0.00035,
         [] { return genZipf("C5", 23948, 20278, 1.4); }},
        {"MY", "mycielskian12", Collection::SuiteSparse, 407200, 4.31,
         [] { return mycielskian(12); }},
        {"VS", "vsp_c_30_data_data", Collection::SuiteSparse, 124368, 0.102,
         [] { return genPa("VS", 11042, 14); }},
        {"TS", "TSC_OPF_300", Collection::SuiteSparse, 820783, 0.859,
         [] { return genArrow("TS", 9774, 84, 0.447, 8); }},
        {"LO", "lowThrust_7", Collection::SuiteSparse, 211561, 0.0700,
         [] { return genArrow("LO", 17378, 27, 0.133, 4); }},
        {"HA", "hangGlider_3", Collection::SuiteSparse, 92703, 0.0880,
         [] { return genArrow("HA", 10260, 20, 0.126, 3); }},
        {"TR", "trans5", Collection::SuiteSparse, 749800, 0.00541,
         [] { return genZipf("TR", 116835, 749800, 1.15); }},
        {"CK", "ckt11752_dc_1", Collection::SuiteSparse, 333029, 0.0138,
         [] { return genZipf("CK", 49702, 333029, 1.2); }},
        // --- SNAP -------------------------------------------------------
        {"WI", "wiki-Vote", Collection::Snap, 103689, 0.1506,
         [] { return genPa("WI", 7115, 20); }},
        {"EM", "email-Enron", Collection::Snap, 367332, 0.0272,
         [] { return genPa("EM", 36692, 11); }},
        {"AS", "as-caida", Collection::Snap, 106762, 0.0108,
         [] { return genPa("AS", 26475, 4); }},
        {"OR", "Oregon-2", Collection::Snap, 65406, 0.0469,
         [] { return genPa("OR", 11806, 6); }},
        {"WK", "wiki-RfA", Collection::Snap, 188077, 0.145,
         [] { return genPa("WK", 10835, 25); }},
        {"SC", "soc-Slashdot0811", Collection::Snap, 905468, 0.0151,
         [] { return genPa("SC", 77360, 14); }},
        {"A7", "as-735", Collection::Snap, 26467, 0.0444,
         [] { return genPa("A7", 7716, 4); }},
        {"CM", "CollegeMsg", Collection::Snap, 20296, 0.562,
         [] { return genPa("CM", 1899, 14); }},
        {"WB", "wb-cs-stanford", Collection::Snap, 36854, 0.0374,
         [] { return genPa("WB", 9914, 4); }},
        {"RT", "Reuters911", Collection::Snap, 296076, 0.1667,
         [] { return genPa("RT", 13332, 45); }},
    };
    return entries;
}

const DatasetEntry &
table2ByTag(const std::string &tag)
{
    for (const DatasetEntry &e : table2()) {
        if (e.id == tag)
            return e;
    }
    chason_fatal("unknown Table 2 tag '%s'", tag.c_str());
}

CsrMatrix
loadOrGenerate(const DatasetEntry &entry, const std::string &mtx_dir)
{
    if (!mtx_dir.empty()) {
        const std::filesystem::path path =
            std::filesystem::path(mtx_dir) / (entry.name + ".mtx");
        if (std::filesystem::exists(path)) {
            inform("loading %s from %s", entry.name.c_str(),
                   path.string().c_str());
            return readMatrixMarketFile(path.string()).toCsr();
        }
    }
    return entry.generate();
}

std::vector<SweepEntry>
serpensDozen()
{
    std::vector<SweepEntry> dozen;
    auto add = [&dozen](const char *name,
                        std::function<CsrMatrix()> gen) {
        dozen.push_back({name, std::move(gen)});
    };

    // Web-style graphs (large, moderately skewed).
    add("web_small", [] {
        Rng rng(entrySeed("web_small"));
        return preferentialAttachment(300000, 8, rng);
    });
    add("web_large", [] {
        Rng rng(entrySeed("web_large"));
        return preferentialAttachment(700000, 6, rng);
    });
    add("social", [] {
        Rng rng(entrySeed("social"));
        return rmat(19, 4000000, rng);
    });
    // FEM / mesh matrices (very balanced).
    add("mesh_2d", [] { return poisson2d(1200); });
    add("mesh_banded", [] {
        Rng rng(entrySeed("mesh_banded"));
        return banded(800000, 3, 0.9, rng);
    });
    add("mesh_wide", [] {
        Rng rng(entrySeed("mesh_wide"));
        return banded(400000, 8, 0.6, rng);
    });
    // cage-style DNA electrophoresis chains (regular, ~9 nnz/row).
    add("cage_small", [] {
        Rng rng(entrySeed("cage_small"));
        return banded(500000, 5, 0.8, rng);
    });
    add("cage_large", [] {
        Rng rng(entrySeed("cage_large"));
        return banded(900000, 4, 0.9, rng);
    });
    // Circuits / P2P graphs (mildly irregular).
    add("circuit_a", [] {
        Rng rng(entrySeed("circuit_a"));
        return zipfRows(400000, 400000, 2400000, 1.05, rng);
    });
    add("p2p", [] {
        Rng rng(entrySeed("p2p"));
        return erdosRenyi(250000, 250000, 2000000, rng);
    });
    // Block-structured multiphysics.
    add("block_fem", [] {
        Rng rng(entrySeed("block_fem"));
        return blockDiagonal(300000, 24, 0.6, 0.02, rng);
    });
    add("stencil_3d", [] {
        Rng rng(entrySeed("stencil_3d"));
        return banded(600000, 6, 0.7, rng);
    });
    return dozen;
}

std::vector<SweepEntry>
sweepCorpus(std::size_t count)
{
    std::vector<SweepEntry> corpus;
    corpus.reserve(count);

    // Deterministic family / size / fill grid. Densities span roughly
    // 1e-5 % .. 10 % and NNZ 1e3 .. 1e6 as in Section 5.4.
    for (std::size_t i = 0; corpus.size() < count; ++i) {
        const std::size_t family = i % 8;
        const std::size_t size_step = (i / 8) % 7;
        const std::size_t deg_step = (i / 56) % 5;
        const std::uint64_t seed = 0x5eed0000ull + i;

        const std::uint32_t rows = 1024u << size_step;    // 1 K .. 64 K
        const std::uint32_t avg_deg = 2u + 4u * deg_step; // 2 .. 18

        char buf[96];
        switch (family) {
          case 0: {
            // Moderately heavy-tailed graph rows (Pareto out-degrees),
            // the most common class in the collections.
            std::snprintf(buf, sizeof(buf), "graph_%zu", i);
            const std::uint32_t epn = avg_deg;
            corpus.push_back({buf, [rows, epn, seed] {
                Rng rng(seed);
                return preferentialAttachment(rows, epn, rng);
            }});
            break;
          }
          case 1: {
            std::snprintf(buf, sizeof(buf), "rmat_%zu", i);
            const std::uint32_t scale = 10 + size_step;
            const std::size_t nnz =
                static_cast<std::size_t>(1u << scale) * avg_deg;
            corpus.push_back({buf, [scale, nnz, seed] {
                Rng rng(seed);
                return rmat(scale, nnz, rng);
            }});
            break;
          }
          case 2: {
            std::snprintf(buf, sizeof(buf), "zipf_%zu", i);
            const std::size_t nnz =
                static_cast<std::size_t>(rows) * avg_deg;
            const double s = 1.1 + 0.1 * static_cast<double>(deg_step);
            corpus.push_back({buf, [rows, nnz, s, seed] {
                Rng rng(seed);
                return zipfRows(rows, rows, nnz, s, rng);
            }});
            break;
          }
          case 3: {
            // Trajectory-optimization arrowhead: banded plus dense
            // border rows.
            std::snprintf(buf, sizeof(buf), "arrow_%zu", i);
            const std::uint32_t band = 4u + 8u * deg_step;
            const std::uint32_t dense =
                1u + static_cast<std::uint32_t>(deg_step);
            corpus.push_back({buf, [rows, band, dense, seed] {
                Rng rng(seed);
                return arrowBanded(rows, band, 0.25, dense, rng);
            }});
            break;
          }
          case 4: {
            std::snprintf(buf, sizeof(buf), "blockdiag_%zu", i);
            const std::uint32_t block = 16u + 16u * deg_step;
            corpus.push_back({buf, [rows, block, seed] {
                Rng rng(seed);
                return blockDiagonal(rows, block, 0.4, 0.05, rng);
            }});
            break;
          }
          case 5: {
            std::snprintf(buf, sizeof(buf), "er_%zu", i);
            const std::size_t nnz =
                static_cast<std::size_t>(rows) * avg_deg;
            corpus.push_back({buf, [rows, nnz, seed] {
                Rng rng(seed);
                return erdosRenyi(rows, rows, nnz, rng);
            }});
            break;
          }
          case 6: {
            std::snprintf(buf, sizeof(buf), "poisson_%zu", i);
            const std::uint32_t grid = 32u << size_step; // 32 .. 2048
            const std::uint32_t capped = std::min(grid, 512u);
            corpus.push_back({buf, [capped] {
                return poisson2d(capped);
            }});
            break;
          }
          default: {
            std::snprintf(buf, sizeof(buf), "mixed_%zu", i);
            const std::size_t nnz =
                static_cast<std::size_t>(rows) * avg_deg / 2;
            corpus.push_back({buf, [rows, nnz, seed] {
                Rng rng(seed);
                CooMatrix coo(rows, rows);
                // diagonal + uniform noise: circuit-like structure
                for (std::uint32_t r = 0; r < rows; ++r)
                    coo.add(r, r, drawValue(
                        rng, ValueDistribution::PositiveUniform));
                for (std::size_t e = 0; e < nnz; ++e) {
                    coo.add(static_cast<std::uint32_t>(
                                rng.nextBounded(rows)),
                            static_cast<std::uint32_t>(
                                rng.nextBounded(rows)),
                            drawValue(
                                rng, ValueDistribution::PositiveUniform));
                }
                return coo.toCsr();
            }});
            break;
          }
        }
    }
    return corpus;
}

} // namespace sparse
} // namespace chason
