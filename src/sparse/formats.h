/**
 * @file
 * Sparse matrix containers used throughout the library.
 *
 * CooMatrix is the construction/interchange format (what the generators
 * and the Matrix Market reader produce); CsrMatrix is the canonical
 * compute format consumed by the schedulers and the reference kernels.
 */

#ifndef CHASON_SPARSE_FORMATS_H_
#define CHASON_SPARSE_FORMATS_H_

#include <cstdint>
#include <string>
#include <vector>

namespace chason {
namespace sparse {

/** One non-zero element in coordinate form. */
struct Triplet
{
    std::uint32_t row = 0;
    std::uint32_t col = 0;
    float value = 0.0f;

    friend bool operator==(const Triplet &, const Triplet &) = default;
};

class CsrMatrix;

/**
 * Coordinate-format sparse matrix. Entries may arrive in any order and
 * with duplicates; canonicalize() sorts row-major and sums duplicates.
 */
class CooMatrix
{
  public:
    CooMatrix() = default;

    /** Create an empty rows x cols matrix. */
    CooMatrix(std::uint32_t rows, std::uint32_t cols);

    std::uint32_t rows() const { return rows_; }
    std::uint32_t cols() const { return cols_; }
    std::size_t nnz() const { return entries_.size(); }

    /** Fraction of positions that are populated, in percent. */
    double densityPercent() const;

    /** Append one entry; indices must be in range. */
    void add(std::uint32_t row, std::uint32_t col, float value);

    /** Append an entry and its transpose twin (for symmetric inputs). */
    void addSymmetric(std::uint32_t row, std::uint32_t col, float value);

    const std::vector<Triplet> &entries() const { return entries_; }

    /** Sort row-major (row, then col) and combine duplicate coordinates. */
    void canonicalize();

    /** Convert to CSR (canonicalizes a copy internally). */
    CsrMatrix toCsr() const;

  private:
    std::uint32_t rows_ = 0;
    std::uint32_t cols_ = 0;
    std::vector<Triplet> entries_;
};

/**
 * Compressed sparse row matrix. Immutable after construction; column
 * indices within each row are sorted and unique.
 */
class CsrMatrix
{
  public:
    CsrMatrix() = default;

    /**
     * Build from canonical (sorted, deduplicated) triplets.
     * Validated with always-on assertions.
     */
    CsrMatrix(std::uint32_t rows, std::uint32_t cols,
              const std::vector<Triplet> &canonical_entries);

    std::uint32_t rows() const { return rows_; }
    std::uint32_t cols() const { return cols_; }
    std::size_t nnz() const { return values_.size(); }

    double densityPercent() const;

    const std::vector<std::size_t> &rowPtr() const { return rowPtr_; }
    const std::vector<std::uint32_t> &colIdx() const { return colIdx_; }
    const std::vector<float> &values() const { return values_; }

    /** Number of non-zeros in one row. */
    std::size_t rowNnz(std::uint32_t row) const;

    /** Longest row length (0 for an empty matrix). */
    std::size_t maxRowNnz() const;

    /** Number of rows with no non-zeros. */
    std::uint32_t emptyRows() const;

    /** Transpose (used by tests and the SpMM extension). */
    CsrMatrix transpose() const;

    /** Back to coordinate form. */
    CooMatrix toCoo() const;

    /** Short human-readable description ("512x512, 4096 nnz, 1.56%"). */
    std::string describe() const;

  private:
    std::uint32_t rows_ = 0;
    std::uint32_t cols_ = 0;
    std::vector<std::size_t> rowPtr_;   // size rows_ + 1
    std::vector<std::uint32_t> colIdx_; // size nnz
    std::vector<float> values_;         // size nnz
};

/**
 * Exclusive prefix sums of the per-column non-zero counts of @p a
 * (size cols + 1): the row pointers of A^T, or CSC column pointers.
 */
std::vector<std::size_t> columnPointers(const CsrMatrix &a);

/**
 * Counting-sort scatter of a CSR matrix into column-major order.
 * @p col_ptr must come from columnPointers(a). For each non-zero, in
 * (column, row) order, writes the source row to @p idx_out and the
 * value to @p val_out (both sized a.nnz()). Backs both
 * CsrMatrix::transpose and CscMatrix::fromCsr.
 *
 * The scatter writes land at col_ptr-derived cursors, i.e. randomly
 * across the whole output for a sequential input walk. Above a size
 * threshold the entries are first partitioned (stably) into runs of
 * @p block_cols consecutive columns, so the second pass touches only a
 * cache-sized cursor slice and output region at a time. The blocked
 * and direct paths produce byte-identical arrays; @p block_cols is
 * rounded up to a power of two, 0 picks the size heuristically, and
 * any value >= a.cols() forces the direct path.
 */
void scatterByColumn(const CsrMatrix &a,
                     const std::vector<std::size_t> &col_ptr,
                     std::uint32_t *idx_out, float *val_out,
                     std::uint32_t block_cols = 0);

/**
 * Reference SpMV in double precision: y = A x. This is the golden model
 * every accelerator simulation is checked against.
 */
std::vector<double> spmvReference(const CsrMatrix &a,
                                  const std::vector<float> &x);

/**
 * Single-precision CPU SpMV with row-major accumulation order (the
 * natural CSR loop); used to bound the accumulation-order error of the
 * accelerators in tests.
 */
std::vector<float> spmvFloat(const CsrMatrix &a,
                             const std::vector<float> &x);

/**
 * Compare a float result vector against the double-precision reference
 * with a mixed absolute/relative tolerance.
 * @return the largest violation ratio (<= 1 means "within tolerance").
 */
double maxRelativeError(const std::vector<float> &result,
                        const std::vector<double> &reference,
                        double rel_tol = 1e-3, double abs_tol = 1e-4);

} // namespace sparse
} // namespace chason

#endif // CHASON_SPARSE_FORMATS_H_
