/**
 * @file
 * Compressed sparse column format.
 *
 * The schedulers consume CSR (row-major order matches the row-to-lane
 * mapping), but downstream users of a sparse library routinely need the
 * column view: building A^T x products, transition matrices (PageRank),
 * and the column-major traversals of interior-point solvers. CscMatrix
 * mirrors CsrMatrix's interface and converts losslessly in both
 * directions.
 */

#ifndef CHASON_SPARSE_CSC_H_
#define CHASON_SPARSE_CSC_H_

#include "sparse/formats.h"

namespace chason {
namespace sparse {

/** Compressed sparse column matrix; rows sorted within each column. */
class CscMatrix
{
  public:
    CscMatrix() = default;

    /** Build from any CSR matrix. */
    static CscMatrix fromCsr(const CsrMatrix &csr);

    std::uint32_t rows() const { return rows_; }
    std::uint32_t cols() const { return cols_; }
    std::size_t nnz() const { return values_.size(); }

    const std::vector<std::size_t> &colPtr() const { return colPtr_; }
    const std::vector<std::uint32_t> &rowIdx() const { return rowIdx_; }
    const std::vector<float> &values() const { return values_; }

    /** Non-zeros in one column. */
    std::size_t colNnz(std::uint32_t col) const;

    /** Longest column (0 for an empty matrix). */
    std::size_t maxColNnz() const;

    /** Convert back to CSR (exact round trip). */
    CsrMatrix toCsr() const;

    /**
     * y = A x computed column-major (scatter order): the same result as
     * the CSR kernel up to FP32 association.
     */
    std::vector<float> spmv(const std::vector<float> &x) const;

    /** y = A^T x without materializing the transpose. */
    std::vector<float> spmvTransposed(const std::vector<float> &x) const;

  private:
    std::uint32_t rows_ = 0;
    std::uint32_t cols_ = 0;
    std::vector<std::size_t> colPtr_;   // size cols_ + 1
    std::vector<std::uint32_t> rowIdx_; // size nnz
    std::vector<float> values_;         // size nnz
};

} // namespace sparse
} // namespace chason

#endif // CHASON_SPARSE_CSC_H_
