/**
 * @file
 * Evaluation dataset registry.
 *
 * Two corpora drive the paper's evaluation:
 *
 *  1. the 20 named matrices of Table 2 (10 SuiteSparse + 10 SNAP). Each
 *     entry here reproduces the published matrix's dimensions and NNZ
 *     using the generator that matches its domain (see
 *     sparse/generators.h). mycielskian12 is reproduced exactly; the
 *     others are structural stand-ins with matching shape, NNZ target and
 *     imbalance class, since the real collections cannot be downloaded in
 *     this environment.
 *
 *  2. an 800-matrix sweep corpus spanning density 1e-5 % .. 10 % and NNZ
 *     1e3 .. 1e6 (Figs. 3, 11, 14), built from a deterministic family x
 *     size x imbalance grid.
 *
 * If real .mtx files are available, place them under a directory and call
 * loadOrGenerate() with it; entries fall back to synthesis otherwise.
 */

#ifndef CHASON_SPARSE_DATASET_H_
#define CHASON_SPARSE_DATASET_H_

#include <functional>
#include <string>
#include <vector>

#include "sparse/formats.h"

namespace chason {
namespace sparse {

/** Which collection a Table 2 matrix came from. */
enum class Collection
{
    SuiteSparse,
    Snap,
};

/** One named matrix of Table 2. */
struct DatasetEntry
{
    std::string id;          ///< the paper's two-letter tag (DY, RE, ...)
    std::string name;        ///< the collection name (dynamicSoaring...)
    Collection collection;   ///< SuiteSparse or SNAP
    std::size_t paperNnz;    ///< NNZ reported in Table 2
    double paperDensity;     ///< density % reported in Table 2
    std::function<CsrMatrix()> generate; ///< synthetic reproduction
};

/** The 20 matrices of Table 2, in paper order. */
const std::vector<DatasetEntry> &table2();

/** Look up a Table 2 entry by tag; fatal() if unknown. */
const DatasetEntry &table2ByTag(const std::string &tag);

/**
 * Either load "<dir>/<name>.mtx" if present or synthesize the entry.
 * Passing an empty dir always synthesizes.
 */
CsrMatrix loadOrGenerate(const DatasetEntry &entry,
                         const std::string &mtx_dir = "");

/** One matrix of the sweep corpus. */
struct SweepEntry
{
    std::string name;        ///< family + parameters, e.g. "rmat_s14_e8_i3"
    std::function<CsrMatrix()> generate;
};

/**
 * The sweep corpus used for the 800-matrix experiments. @p count can be
 * reduced for quick runs; entries are a deterministic prefix, so
 * sweepCorpus(100) is the first 100 entries of sweepCorpus(800).
 */
std::vector<SweepEntry> sweepCorpus(std::size_t count = 800);

/**
 * Stand-ins for "the 12 matrices listed in the Serpens paper"
 * (Section 6.2.2): large matrices — web graphs, meshes, cage DNA
 * electrophoresis chains, circuits — whose ample per-lane row supply
 * leaves PE-aware scheduling with few stalls, so Chasoň's advantage
 * shrinks to the ~1.17x geomean the paper reports there. The Chasoň
 * paper does not name the twelve, so these reproduce the class (large,
 * comparatively balanced) rather than specific entries.
 */
std::vector<SweepEntry> serpensDozen();

} // namespace sparse
} // namespace chason

#endif // CHASON_SPARSE_DATASET_H_
