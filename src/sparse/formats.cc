/**
 * @file
 * CooMatrix / CsrMatrix implementation and the reference kernels.
 */

#include "sparse/formats.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "common/logging.h"

namespace chason {
namespace sparse {

CooMatrix::CooMatrix(std::uint32_t rows, std::uint32_t cols)
    : rows_(rows), cols_(cols)
{
}

double
CooMatrix::densityPercent() const
{
    if (rows_ == 0 || cols_ == 0)
        return 0.0;
    return 100.0 * static_cast<double>(nnz()) /
        (static_cast<double>(rows_) * static_cast<double>(cols_));
}

void
CooMatrix::add(std::uint32_t row, std::uint32_t col, float value)
{
    chason_assert(row < rows_, "row %u out of range (rows=%u)", row, rows_);
    chason_assert(col < cols_, "col %u out of range (cols=%u)", col, cols_);
    entries_.push_back({row, col, value});
}

void
CooMatrix::addSymmetric(std::uint32_t row, std::uint32_t col, float value)
{
    add(row, col, value);
    if (row != col)
        add(col, row, value);
}

void
CooMatrix::canonicalize()
{
    std::sort(entries_.begin(), entries_.end(),
              [](const Triplet &a, const Triplet &b) {
                  if (a.row != b.row)
                      return a.row < b.row;
                  return a.col < b.col;
              });
    // Merge duplicates by summation (Matrix Market semantics).
    std::size_t out = 0;
    for (std::size_t i = 0; i < entries_.size(); ++i) {
        if (out > 0 && entries_[out - 1].row == entries_[i].row &&
            entries_[out - 1].col == entries_[i].col) {
            entries_[out - 1].value += entries_[i].value;
        } else {
            entries_[out++] = entries_[i];
        }
    }
    entries_.resize(out);
}

CsrMatrix
CooMatrix::toCsr() const
{
    CooMatrix copy = *this;
    copy.canonicalize();
    return CsrMatrix(rows_, cols_, copy.entries());
}

CsrMatrix::CsrMatrix(std::uint32_t rows, std::uint32_t cols,
                     const std::vector<Triplet> &canonical_entries)
    : rows_(rows), cols_(cols)
{
    rowPtr_.assign(static_cast<std::size_t>(rows_) + 1, 0);
    colIdx_.reserve(canonical_entries.size());
    values_.reserve(canonical_entries.size());

    std::uint32_t prev_row = 0;
    bool first = true;
    for (const Triplet &t : canonical_entries) {
        chason_assert(t.row < rows_ && t.col < cols_,
                      "entry (%u,%u) out of %ux%u", t.row, t.col, rows_,
                      cols_);
        if (!first) {
            chason_assert(t.row > prev_row ||
                              (t.row == prev_row && t.col > colIdx_.back()),
                          "entries are not canonical at (%u,%u)", t.row,
                          t.col);
        }
        ++rowPtr_[t.row + 1];
        colIdx_.push_back(t.col);
        values_.push_back(t.value);
        prev_row = t.row;
        first = false;
    }
    for (std::uint32_t r = 0; r < rows_; ++r)
        rowPtr_[r + 1] += rowPtr_[r];
}

double
CsrMatrix::densityPercent() const
{
    if (rows_ == 0 || cols_ == 0)
        return 0.0;
    return 100.0 * static_cast<double>(nnz()) /
        (static_cast<double>(rows_) * static_cast<double>(cols_));
}

std::size_t
CsrMatrix::rowNnz(std::uint32_t row) const
{
    chason_assert(row < rows_, "row %u out of range", row);
    return rowPtr_[row + 1] - rowPtr_[row];
}

std::size_t
CsrMatrix::maxRowNnz() const
{
    std::size_t best = 0;
    for (std::uint32_t r = 0; r < rows_; ++r)
        best = std::max(best, rowNnz(r));
    return best;
}

std::uint32_t
CsrMatrix::emptyRows() const
{
    std::uint32_t count = 0;
    for (std::uint32_t r = 0; r < rows_; ++r) {
        if (rowNnz(r) == 0)
            ++count;
    }
    return count;
}

CsrMatrix
CsrMatrix::transpose() const
{
    // A^T in CSR is exactly the column-major scatter of A: the row
    // pointers of the transpose are the column pointers of A, and a
    // stable (row-order) scatter leaves each transposed row's column
    // indices sorted. No sort, no COO round trip.
    CsrMatrix out;
    out.rows_ = cols_;
    out.cols_ = rows_;
    out.rowPtr_ = columnPointers(*this);
    out.colIdx_.resize(nnz());
    out.values_.resize(nnz());
    scatterByColumn(*this, out.rowPtr_, out.colIdx_.data(),
                    out.values_.data());
    return out;
}

CooMatrix
CsrMatrix::toCoo() const
{
    CooMatrix coo(rows_, cols_);
    for (std::uint32_t r = 0; r < rows_; ++r) {
        for (std::size_t i = rowPtr_[r]; i < rowPtr_[r + 1]; ++i)
            coo.add(r, colIdx_[i], values_[i]);
    }
    return coo;
}

std::string
CsrMatrix::describe() const
{
    char buf[96];
    std::snprintf(buf, sizeof(buf), "%ux%u, %zu nnz, %.4g%%", rows_, cols_,
                  nnz(), densityPercent());
    return buf;
}

std::vector<std::size_t>
columnPointers(const CsrMatrix &a)
{
    std::vector<std::size_t> col_ptr(static_cast<std::size_t>(a.cols()) +
                                         1,
                                     0);
    for (std::uint32_t c : a.colIdx())
        ++col_ptr[c + 1];
    for (std::uint32_t c = 0; c < a.cols(); ++c)
        col_ptr[c + 1] += col_ptr[c];
    return col_ptr;
}

namespace {

/** Smallest power of two >= v (v >= 1). */
std::uint32_t
ceilPow2(std::uint32_t v)
{
    std::uint32_t p = 1;
    while (p < v)
        p <<= 1;
    return p;
}

/** log2 of a power of two. */
unsigned
log2Pow2(std::uint32_t v)
{
    unsigned s = 0;
    while ((1u << s) < v)
        ++s;
    return s;
}

/**
 * Default column-block width: 2^15 columns keep the active cursor slice
 * at 256 KiB (size_t cursors), inside L2 alongside the output region.
 */
constexpr std::uint32_t kDefaultBlockCols = 1u << 15;

/** Below this the whole cursor array fits in cache anyway. */
constexpr std::size_t kBlockedScatterMinNnz = 1u << 20;

void
scatterDirect(const CsrMatrix &a, const std::vector<std::size_t> &col_ptr,
              std::uint32_t *idx_out, float *val_out)
{
    const auto &row_ptr = a.rowPtr();
    const auto &col_idx = a.colIdx();
    const auto &values = a.values();
    std::vector<std::size_t> cursor(col_ptr.begin(), col_ptr.end() - 1);
    for (std::uint32_t r = 0; r < a.rows(); ++r) {
        for (std::size_t i = row_ptr[r]; i < row_ptr[r + 1]; ++i) {
            const std::uint32_t c = col_idx[i];
            idx_out[cursor[c]] = r;
            val_out[cursor[c]] = values[i];
            ++cursor[c];
        }
    }
}

} // namespace

void
scatterByColumn(const CsrMatrix &a,
                const std::vector<std::size_t> &col_ptr,
                std::uint32_t *idx_out, float *val_out,
                std::uint32_t block_cols)
{
    chason_assert(col_ptr.size() ==
                      static_cast<std::size_t>(a.cols()) + 1,
                  "col_ptr has %zu entries for %u columns",
                  col_ptr.size(), a.cols());
    const std::size_t nnz = a.nnz();
    const bool auto_block = block_cols == 0;
    if (auto_block)
        block_cols = kDefaultBlockCols;
    block_cols = ceilPow2(block_cols);
    if (block_cols >= a.cols() ||
        (auto_block && nnz < kBlockedScatterMinNnz)) {
        scatterDirect(a, col_ptr, idx_out, val_out);
        return;
    }

    // Pass 1: stable counting sort of the entries by column block, so
    // pass 2 reads each block's entries contiguously and still sees
    // them in ascending row order (which keeps rows sorted within each
    // output column, exactly like the direct scatter).
    const unsigned shift = log2Pow2(block_cols);
    const std::uint32_t blocks = (a.cols() + block_cols - 1) / block_cols;
    const auto &row_ptr = a.rowPtr();
    const auto &col_idx = a.colIdx();
    const auto &values = a.values();

    std::vector<std::size_t> block_start(blocks + 1, 0);
    for (std::uint32_t c : col_idx)
        ++block_start[(c >> shift) + 1];
    for (std::uint32_t b = 0; b < blocks; ++b)
        block_start[b + 1] += block_start[b];

    std::vector<std::uint32_t> part_row(nnz);
    std::vector<std::uint32_t> part_col(nnz);
    std::vector<float> part_val(nnz);
    {
        std::vector<std::size_t> bcur(block_start.begin(),
                                      block_start.end() - 1);
        for (std::uint32_t r = 0; r < a.rows(); ++r) {
            for (std::size_t i = row_ptr[r]; i < row_ptr[r + 1]; ++i) {
                const std::uint32_t c = col_idx[i];
                const std::size_t pos = bcur[c >> shift]++;
                part_row[pos] = r;
                part_col[pos] = c;
                part_val[pos] = values[i];
            }
        }
    }

    // Pass 2: scatter block by block. All cursor and output accesses
    // of one block stay inside its column range.
    std::vector<std::size_t> cursor(col_ptr.begin(), col_ptr.end() - 1);
    for (std::uint32_t b = 0; b < blocks; ++b) {
        for (std::size_t k = block_start[b]; k < block_start[b + 1];
             ++k) {
            const std::uint32_t c = part_col[k];
            idx_out[cursor[c]] = part_row[k];
            val_out[cursor[c]] = part_val[k];
            ++cursor[c];
        }
    }
}

std::vector<double>
spmvReference(const CsrMatrix &a, const std::vector<float> &x)
{
    chason_assert(x.size() == a.cols(), "x has %zu entries, matrix has %u "
                  "columns", x.size(), a.cols());
    std::vector<double> y(a.rows(), 0.0);
    const auto &row_ptr = a.rowPtr();
    const auto &col_idx = a.colIdx();
    const auto &values = a.values();
    for (std::uint32_t r = 0; r < a.rows(); ++r) {
        double acc = 0.0;
        for (std::size_t i = row_ptr[r]; i < row_ptr[r + 1]; ++i)
            acc += static_cast<double>(values[i]) *
                static_cast<double>(x[col_idx[i]]);
        y[r] = acc;
    }
    return y;
}

std::vector<float>
spmvFloat(const CsrMatrix &a, const std::vector<float> &x)
{
    chason_assert(x.size() == a.cols(), "x has %zu entries, matrix has %u "
                  "columns", x.size(), a.cols());
    std::vector<float> y(a.rows(), 0.0f);
    const auto &row_ptr = a.rowPtr();
    const auto &col_idx = a.colIdx();
    const auto &values = a.values();
    for (std::uint32_t r = 0; r < a.rows(); ++r) {
        float acc = 0.0f;
        for (std::size_t i = row_ptr[r]; i < row_ptr[r + 1]; ++i)
            acc += values[i] * x[col_idx[i]];
        y[r] = acc;
    }
    return y;
}

double
maxRelativeError(const std::vector<float> &result,
                 const std::vector<double> &reference, double rel_tol,
                 double abs_tol)
{
    chason_assert(result.size() == reference.size(),
                  "result/reference size mismatch: %zu vs %zu",
                  result.size(), reference.size());
    double worst = 0.0;
    for (std::size_t i = 0; i < result.size(); ++i) {
        const double err =
            std::abs(static_cast<double>(result[i]) - reference[i]);
        const double allowed = abs_tol + rel_tol * std::abs(reference[i]);
        worst = std::max(worst, err / allowed);
    }
    return worst;
}

} // namespace sparse
} // namespace chason
