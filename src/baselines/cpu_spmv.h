/**
 * @file
 * Executable CPU SpMV baseline.
 *
 * A multithreaded CSR kernel in the style of what MKL does for balanced
 * matrices: rows are partitioned by non-zero count (not row count) so
 * heavy rows do not serialize a thread. This is the runnable counterpart
 * of the analytical i9/MKL model — examples use it to cross-check the
 * accelerators' functional output and to measure a real host-side
 * latency on the build machine.
 */

#ifndef CHASON_BASELINES_CPU_SPMV_H_
#define CHASON_BASELINES_CPU_SPMV_H_

#include <cstdint>
#include <vector>

#include "sparse/formats.h"

namespace chason {
namespace baselines {

/** Multithreaded CSR SpMV engine. */
class CpuSpmv
{
  public:
    /** @param threads worker count; 0 = hardware concurrency. */
    explicit CpuSpmv(unsigned threads = 0);

    unsigned threads() const { return threads_; }

    /** y = A x, single precision. */
    std::vector<float> run(const sparse::CsrMatrix &a,
                           const std::vector<float> &x) const;

    /**
     * Measure the kernel on this machine: @p warmup unmeasured runs then
     * the average wall latency of @p iterations runs, in microseconds.
     */
    double measureLatencyUs(const sparse::CsrMatrix &a,
                            const std::vector<float> &x,
                            unsigned warmup = 3,
                            unsigned iterations = 10) const;

  private:
    unsigned threads_;

    /** NNZ-balanced row ranges, one per worker. */
    std::vector<std::pair<std::uint32_t, std::uint32_t>>
    partition(const sparse::CsrMatrix &a) const;
};

} // namespace baselines
} // namespace chason

#endif // CHASON_BASELINES_CPU_SPMV_H_
