/**
 * @file
 * Multithreaded CPU SpMV implementation.
 */

#include "baselines/cpu_spmv.h"

#include <chrono>
#include <thread>

#include "common/logging.h"

namespace chason {
namespace baselines {

CpuSpmv::CpuSpmv(unsigned threads) : threads_(threads)
{
    if (threads_ == 0) {
        threads_ = std::thread::hardware_concurrency();
        if (threads_ == 0)
            threads_ = 1;
    }
}

std::vector<std::pair<std::uint32_t, std::uint32_t>>
CpuSpmv::partition(const sparse::CsrMatrix &a) const
{
    std::vector<std::pair<std::uint32_t, std::uint32_t>> ranges;
    const std::size_t per_worker =
        (a.nnz() + threads_ - 1) / std::max(1u, threads_);
    std::uint32_t start = 0;
    while (start < a.rows()) {
        std::uint32_t end = start;
        std::size_t grabbed = 0;
        while (end < a.rows() && (grabbed < per_worker || end == start)) {
            grabbed += a.rowNnz(end);
            ++end;
        }
        ranges.emplace_back(start, end);
        start = end;
    }
    if (ranges.empty())
        ranges.emplace_back(0, 0);
    return ranges;
}

std::vector<float>
CpuSpmv::run(const sparse::CsrMatrix &a, const std::vector<float> &x) const
{
    chason_assert(x.size() == a.cols(), "x size mismatch");
    std::vector<float> y(a.rows(), 0.0f);
    const auto ranges = partition(a);

    auto worker = [&a, &x, &y](std::uint32_t lo, std::uint32_t hi) {
        const auto &row_ptr = a.rowPtr();
        const auto &col_idx = a.colIdx();
        const auto &values = a.values();
        for (std::uint32_t r = lo; r < hi; ++r) {
            float acc = 0.0f;
            for (std::size_t i = row_ptr[r]; i < row_ptr[r + 1]; ++i)
                acc += values[i] * x[col_idx[i]];
            y[r] = acc;
        }
    };

    if (ranges.size() == 1) {
        worker(ranges[0].first, ranges[0].second);
        return y;
    }
    std::vector<std::thread> pool;
    pool.reserve(ranges.size());
    for (auto [lo, hi] : ranges)
        pool.emplace_back(worker, lo, hi);
    for (std::thread &t : pool)
        t.join();
    return y;
}

double
CpuSpmv::measureLatencyUs(const sparse::CsrMatrix &a,
                          const std::vector<float> &x, unsigned warmup,
                          unsigned iterations) const
{
    chason_assert(iterations > 0, "need at least one iteration");
    for (unsigned i = 0; i < warmup; ++i)
        (void)run(a, x);
    const auto begin = std::chrono::steady_clock::now();
    for (unsigned i = 0; i < iterations; ++i)
        (void)run(a, x);
    const auto end = std::chrono::steady_clock::now();
    const double total_us =
        std::chrono::duration<double, std::micro>(end - begin).count();
    return total_us / iterations;
}

} // namespace baselines
} // namespace chason
